package dbest_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dbest"
)

// newStreamEngine builds an engine over a simple (x, y) table with a
// trained model, sized so retrains are fast enough for refresher tests.
func newStreamEngine(tb testing.TB, rows int) *dbest.Engine {
	tb.Helper()
	eng := dbest.New(nil)
	if err := eng.RegisterTable(streamTable(rows, 1)); err != nil {
		tb.Fatal(err)
	}
	if _, err := eng.Train("stream", []string{"x"}, "y",
		&dbest.TrainOptions{SampleSize: 1000, Seed: 1}); err != nil {
		tb.Fatal(err)
	}
	return eng
}

// streamTable generates rows of x uniform in [0, 1000) with y = 2x + noise.
func streamTable(rows int, seed int64) *dbest.Table {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, rows)
	ys := make([]float64, rows)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = 2*xs[i] + rng.NormFloat64()
	}
	t := dbest.NewTable("stream")
	t.AddFloatColumn("x", xs)
	t.AddFloatColumn("y", ys)
	return t
}

// streamRows generates Append-shaped rows with the same distribution.
func streamRows(n int, seed int64) [][]interface{} {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]interface{}, n)
	for i := range rows {
		x := rng.Float64() * 1000
		rows[i] = []interface{}{x, 2*x + rng.NormFloat64()}
	}
	return rows
}

func TestAppendValidation(t *testing.T) {
	eng := newStreamEngine(t, 2000)

	if _, err := eng.Append("nope", streamRows(1, 1)); err == nil {
		t.Fatal("Append to unknown table should fail")
	}

	// Bad rows are rejected individually with their input positions; good
	// rows still land.
	rows := [][]interface{}{
		{1.0, 2.0},       // ok
		{"bad", 2.0},     // type mismatch
		{1.0},            // arity
		{3.0, 4.0},       // ok
		{1.0, 2.0, 3.0},  // arity
		{5.0, "not-a-y"}, // type mismatch
		{6.0, int64(12)}, // ok: int64 into FLOAT64
	}
	res, err := eng.Append("stream", rows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 3 || res.Rejected != 4 {
		t.Fatalf("Appended=%d Rejected=%d, want 3/4", res.Appended, res.Rejected)
	}
	if res.NumRows != 2003 {
		t.Fatalf("NumRows = %d, want 2003", res.NumRows)
	}
	wantBad := []int{1, 2, 4, 5}
	if len(res.Errors) != len(wantBad) {
		t.Fatalf("Errors = %v", res.Errors)
	}
	for i, re := range res.Errors {
		if re.Row != wantBad[i] || re.Err == "" {
			t.Fatalf("Errors[%d] = %+v, want row %d", i, re, wantBad[i])
		}
	}
}

func TestAppendVisibleToExactPath(t *testing.T) {
	eng := newStreamEngine(t, 1000)
	// z is untrained, so COUNT(z)-style queries go down the exact path.
	count := func() float64 {
		res, err := eng.Query("SELECT COUNT(*) FROM stream WHERE y BETWEEN -10000 AND 10000")
		if err != nil {
			t.Fatal(err)
		}
		if res.Source != "exact" {
			t.Fatalf("source = %q, want exact", res.Source)
		}
		return res.Aggregates[0].Value
	}
	if got := count(); got != 1000 {
		t.Fatalf("pre-append exact COUNT = %g, want 1000", got)
	}
	if _, err := eng.Append("stream", streamRows(500, 2)); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 1500 {
		t.Fatalf("post-append exact COUNT = %g, want 1500", got)
	}
}

func TestModelStalenessLedger(t *testing.T) {
	eng := newStreamEngine(t, 4000)
	sts := eng.ModelStaleness()
	if len(sts) != 1 {
		t.Fatalf("ModelStaleness len = %d, want 1", len(sts))
	}
	if sts[0].BaseRows != 4000 || sts[0].Score != 0 {
		t.Fatalf("fresh staleness: %+v", sts[0])
	}
	if _, err := eng.Append("stream", streamRows(1000, 3)); err != nil {
		t.Fatal(err)
	}
	s := eng.ModelStaleness()[0]
	if s.IngestedRows != 1000 {
		t.Fatalf("IngestedRows = %d, want 1000", s.IngestedRows)
	}
	if s.FracIngested != 0.25 {
		t.Fatalf("FracIngested = %g, want 0.25", s.FracIngested)
	}
	if s.ReservoirReplaced == 0 || s.ReservoirSize != 1000 {
		t.Fatalf("reservoir not maintained: %+v", s)
	}
	if s.Score < 0.25 {
		t.Fatalf("Score = %g, want >= 0.25", s.Score)
	}
}

// The acceptance-criteria round trip: ingest past the staleness threshold,
// the background refresher retrains, the plan cache wipes on the catalog
// generation bump, and a repeated query reflects the new data — all while
// the read path keeps answering.
func TestIngestRefreshQueryRoundTrip(t *testing.T) {
	const base = 4000
	eng := newStreamEngine(t, base)
	defer eng.StopRefresher()

	countSQL := "SELECT COUNT(*) FROM stream WHERE x BETWEEN 0 AND 1000"
	query := func() float64 {
		res, err := eng.Query(countSQL)
		if err != nil {
			t.Fatal(err)
		}
		if res.Source != "model" {
			t.Fatalf("source = %q, want model", res.Source)
		}
		return res.Aggregates[0].Value
	}
	before := query()
	if relErr(before, base) > 0.15 {
		t.Fatalf("pre-ingest model COUNT = %g, want ~%d", before, base)
	}
	wipesBefore := eng.PlanCacheStats().GenerationWipes

	if err := eng.StartRefresher(&dbest.RefreshOptions{
		Interval:  5 * time.Millisecond,
		Threshold: 0.5,
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.StartRefresher(nil); err == nil {
		t.Fatal("second StartRefresher should fail")
	}

	// Ingest a full table's worth: staleness 1.0 >= threshold 0.5.
	if _, err := eng.Append("stream", streamRows(base, 9)); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for eng.RefreshStats().Refreshes == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background refresher never retrained; staleness: %+v", eng.ModelStaleness())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The retrained model must see the doubled table.
	after := query()
	if relErr(after, 2*base) > 0.15 {
		t.Fatalf("post-refresh model COUNT = %g, want ~%d", after, 2*base)
	}

	// The refresh invalidated the cached plan via the generation bump.
	if wipes := eng.PlanCacheStats().GenerationWipes; wipes <= wipesBefore {
		t.Fatalf("GenerationWipes = %d, want > %d after background retrain", wipes, wipesBefore)
	}

	// The ledger reset and recorded the refresh.
	s := eng.ModelStaleness()[0]
	if s.Refreshes == 0 {
		t.Fatalf("ledger Refreshes = 0 after refresh: %+v", s)
	}
	if s.BaseRows != 2*base {
		t.Fatalf("ledger BaseRows = %d after refresh, want %d", s.BaseRows, 2*base)
	}
	if s.LastError != "" {
		t.Fatalf("ledger LastError = %q", s.LastError)
	}

	st := eng.RefreshStats()
	if !st.Running || st.TrackedModels != 1 || st.TotalRetrain == 0 {
		t.Fatalf("RefreshStats = %+v", st)
	}
	eng.StopRefresher()
	if st := eng.RefreshStats(); st.Running {
		t.Fatal("RefreshStats.Running after StopRefresher")
	} else if st.Refreshes == 0 {
		t.Fatal("refresh counters lost by StopRefresher")
	}
}

// Satellite: re-registering a table under an existing name must invalidate
// cached plans (generation bump) and force-stale its models, instead of
// silently serving models bound to the data that was replaced.
func TestRegisterTableReplacementInvalidates(t *testing.T) {
	eng := newStreamEngine(t, 2000)
	sql := "SELECT AVG(y) FROM stream WHERE x BETWEEN 100 AND 900"
	if _, err := eng.Query(sql); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(sql); err != nil { // cached now
		t.Fatal(err)
	}
	st0 := eng.PlanCacheStats()
	if st0.Hits == 0 {
		t.Fatalf("expected a plan-cache hit before re-registration: %+v", st0)
	}

	// Replace the table wholesale.
	if err := eng.RegisterTable(streamTable(3000, 99)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(sql); err != nil {
		t.Fatal(err)
	}
	st1 := eng.PlanCacheStats()
	if st1.GenerationWipes != st0.GenerationWipes+1 {
		t.Fatalf("GenerationWipes = %d, want %d: re-registration must invalidate cached plans",
			st1.GenerationWipes, st0.GenerationWipes+1)
	}
	if st1.Misses != st0.Misses+1 {
		t.Fatalf("Misses = %d, want %d (replan after re-registration)", st1.Misses, st0.Misses+1)
	}

	// And the model over the replaced data is marked maximally stale.
	if s := eng.ModelStaleness()[0]; s.Score != 1 {
		t.Fatalf("staleness Score = %g after re-registration, want 1", s.Score)
	}

	// Registering a brand-new name must NOT invalidate anything.
	other := streamTable(100, 5)
	other.Name = "other"
	if err := eng.RegisterTable(other); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(sql); err != nil {
		t.Fatal(err)
	}
	if st2 := eng.PlanCacheStats(); st2.GenerationWipes != st1.GenerationWipes {
		t.Fatalf("registering a new name bumped GenerationWipes: %+v", st2)
	}
}

// The -race stress leg: concurrent Append, QueryBatch and background
// refresh must not trip the race detector or corrupt answers.
func TestConcurrentAppendQueryRefresh(t *testing.T) {
	eng := newStreamEngine(t, 3000)
	defer eng.StopRefresher()
	if err := eng.StartRefresher(&dbest.RefreshOptions{
		Interval:  2 * time.Millisecond,
		Threshold: 0.05,
		Workers:   2,
	}); err != nil {
		t.Fatal(err)
	}

	sqls := []string{
		"SELECT COUNT(*) FROM stream WHERE x BETWEEN 0 AND 1000",
		"SELECT AVG(y) FROM stream WHERE x BETWEEN 100 AND 900",
		"SELECT SUM(y) FROM stream WHERE x BETWEEN 200 AND 800",
		"SELECT COUNT(*) FROM stream WHERE x BETWEEN 0 AND 1000", // duplicate shape
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(seed int64) { // appender
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := eng.Append("stream", streamRows(50, seed+int64(i))); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(g) * 1000)
		go func() { // querier
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, br := range eng.QueryBatch(sqls) {
					if br.Err != nil {
						errCh <- fmt.Errorf("%s: %w", br.SQL, br.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// The table must end exactly 4*20*50 rows larger — appends are atomic.
	if got := eng.Table("stream").NumRows(); got != 3000+4*20*50 {
		t.Fatalf("NumRows = %d, want %d", got, 3000+4*20*50)
	}
}

// The acceptance-criteria benchmark pair: query latency with the engine
// idle vs. during continuous background refresh. Refresh swaps models
// atomically, so the read path should see no blocking — only CPU sharing.
func BenchmarkQueryIdle(b *testing.B) {
	eng := newStreamEngine(b, 20000)
	sql := "SELECT AVG(y) FROM stream WHERE x BETWEEN 100 AND 900"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryDuringRefresh(b *testing.B) {
	eng := newStreamEngine(b, 20000)
	if err := eng.StartRefresher(&dbest.RefreshOptions{
		Interval:  time.Millisecond,
		Threshold: 0.01,
	}); err != nil {
		b.Fatal(err)
	}
	defer eng.StopRefresher()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // keep the model permanently stale so refresh never idles
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Append("stream", streamRows(500, i)); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	sql := "SELECT AVG(y) FROM stream WHERE x BETWEEN 100 AND 900"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// Drop-then-re-register must behave like replacement: the models trained
// over the old data are force-staled and cached plans invalidated, even
// though the name was briefly unregistered.
func TestDropThenReRegisterInvalidates(t *testing.T) {
	eng := newStreamEngine(t, 2000)
	sql := "SELECT AVG(y) FROM stream WHERE x BETWEEN 100 AND 900"
	if _, err := eng.Query(sql); err != nil {
		t.Fatal(err)
	}
	st0 := eng.PlanCacheStats()

	eng.DropTable("stream")
	if err := eng.RegisterTable(streamTable(2500, 42)); err != nil {
		t.Fatal(err)
	}
	if s := eng.ModelStaleness()[0]; s.Score != 1 {
		t.Fatalf("staleness Score = %g after drop+re-register, want 1", s.Score)
	}
	if _, err := eng.Query(sql); err != nil {
		t.Fatal(err)
	}
	if st1 := eng.PlanCacheStats(); st1.GenerationWipes != st0.GenerationWipes+1 {
		t.Fatalf("GenerationWipes = %d, want %d: drop+re-register must invalidate cached plans",
			st1.GenerationWipes, st0.GenerationWipes+1)
	}
	// And a running refresher now rebuilds the model from the new table.
	if err := eng.StartRefresher(&dbest.RefreshOptions{Interval: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer eng.StopRefresher()
	deadline := time.Now().Add(30 * time.Second)
	for eng.RefreshStats().Refreshes == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("refresher never rebuilt the force-staled model: %+v", eng.ModelStaleness())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s := eng.ModelStaleness()[0]; s.BaseRows != 2500 {
		t.Fatalf("BaseRows = %d after rebuild, want 2500", s.BaseRows)
	}
}

func TestEngineAppendTable(t *testing.T) {
	eng := newStreamEngine(t, 1000)
	n, err := eng.AppendTable("stream", streamTable(250, 7))
	if err != nil {
		t.Fatal(err)
	}
	if n != 250 {
		t.Fatalf("AppendTable = %d, want 250", n)
	}
	if got := eng.Table("stream").NumRows(); got != 1250 {
		t.Fatalf("NumRows = %d, want 1250", got)
	}
	if s := eng.ModelStaleness()[0]; s.IngestedRows != 250 {
		t.Fatalf("ledger IngestedRows = %d, want 250", s.IngestedRows)
	}
	if _, err := eng.AppendTable("nope", streamTable(1, 1)); err == nil {
		t.Fatal("AppendTable to unknown table should fail")
	}
	bad := dbest.NewTable("stream")
	bad.AddFloatColumn("x", []float64{1})
	if _, err := eng.AppendTable("stream", bad); err == nil {
		t.Fatal("AppendTable with mismatched schema should fail")
	}
}
