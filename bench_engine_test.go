package dbest_test

import (
	"sync"
	"testing"

	"dbest"
	"dbest/internal/datagen"
)

// benchEngine is built once and shared by the query micro-benchmarks.
var (
	benchEngOnce sync.Once
	benchEng     *dbest.Engine
	benchEngErr  error
)

func engineForBench() (*dbest.Engine, error) {
	benchEngOnce.Do(func() {
		tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 200_000, Seed: 1})
		benchEng = dbest.New(nil)
		if err := benchEng.RegisterTable(tb); err != nil {
			benchEngErr = err
			return
		}
		_, benchEngErr = benchEng.Train("store_sales",
			[]string{"ss_list_price"}, "ss_wholesale_cost",
			&dbest.TrainOptions{SampleSize: 10_000, Seed: 1})
	})
	return benchEng, benchEngErr
}

func benchQuery(b *testing.B, sql string) {
	b.Helper()
	eng, err := engineForBench()
	if err != nil {
		b.Fatal(err)
	}
	// Warm parse + one evaluation outside the timer.
	if _, err := eng.Query(sql); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}
