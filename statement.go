package dbest

import (
	"context"
	"fmt"
	"strings"
	"time"

	"dbest/internal/sqlparse"
)

// Statement execution: Engine.Exec runs one top-level statement — a SELECT
// query or one of the model-definition statements — through the same
// parse → plan → execute path. It is the single front door the CLI stdin
// loop and the HTTP server feed raw statements to, so training is as
// declarative as querying:
//
//	CREATE MODEL revenue ON sales(date; price) SHARDS 8 SAMPLE 10000
//	CREATE SKETCH buyers ON sales(customer_id) TYPE HLL PRECISION 14
//	SHOW MODELS
//	DROP MODEL revenue
//	SELECT AVG(price) FROM sales WHERE date BETWEEN 100 AND 200
//	SELECT COUNT(DISTINCT customer_id) FROM sales

// StmtResult is the outcome of one Exec call; exactly the fields for its
// Kind are set.
type StmtResult struct {
	// Kind is "select", "create-model", "create-sketch", "drop-model" or
	// "show-models".
	Kind string
	// Query is the SELECT result.
	Query *Result
	// Train reports what CREATE MODEL / CREATE SKETCH built.
	Train *TrainInfo
	// Spec is the validated spec CREATE MODEL / CREATE SKETCH executed.
	Spec *ModelSpec
	// Dropped lists the catalog keys DROP MODEL removed.
	Dropped []string
	// Models is the SHOW MODELS listing.
	Models []ModelInfo

	Elapsed time.Duration
}

// Exec parses and executes one statement (see ExecContext).
func (e *Engine) Exec(sql string) (*StmtResult, error) {
	return e.ExecContext(context.Background(), sql)
}

// ExecContext parses and executes one statement. SELECT queries go through
// the plan cache exactly as Engine.Query; CREATE MODEL lowers the parsed
// statement to a ModelSpec and executes it via CreateModel under ctx (a
// canceled context aborts the training at the next fit boundary); DROP
// MODEL and SHOW MODELS hit the catalog directly.
func (e *Engine) ExecContext(ctx context.Context, sql string) (*StmtResult, error) {
	t0 := time.Now()
	st, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	res := &StmtResult{}
	switch {
	case st.Select != nil:
		res.Kind = "select"
		// Re-enter through Prepare rather than planning st.Select directly:
		// repeated query shapes must keep hitting the plan cache.
		p, err := e.Prepare(sql)
		if err != nil {
			return nil, err
		}
		if res.Query, err = p.Run(); err != nil {
			return nil, err
		}
	case st.CreateModel != nil:
		res.Kind = "create-model"
		spec := specFromStatement(st.CreateModel)
		if res.Train, err = e.CreateModel(ctx, spec); err != nil {
			return nil, err
		}
		res.Spec = spec
	case st.CreateSketch != nil:
		res.Kind = "create-sketch"
		spec := specFromSketchStatement(st.CreateSketch)
		if res.Train, err = e.CreateModel(ctx, spec); err != nil {
			return nil, err
		}
		res.Spec = spec
	case st.DropModel != nil:
		res.Kind = "drop-model"
		if res.Dropped, err = e.DropModel(st.DropModel.Name); err != nil {
			return nil, err
		}
	case st.ShowModels:
		res.Kind = "show-models"
		res.Models = e.Models()
	default:
		return nil, fmt.Errorf("dbest: unsupported statement %q", sql)
	}
	res.Elapsed = time.Since(t0)
	return res, nil
}

// specFromStatement lowers a parsed CREATE MODEL statement to the spec
// CreateModel executes; Validate does the semantic checking.
func specFromStatement(cm *sqlparse.CreateModelStmt) *ModelSpec {
	spec := &ModelSpec{
		Name:       cm.Name,
		Table:      cm.Table,
		XCols:      append([]string(nil), cm.XCols...),
		YCol:       cm.YCol,
		GroupBy:    cm.GroupBy,
		NominalBy:  cm.NominalBy,
		Shards:     cm.Shards,
		SampleSize: cm.Sample,
		Seed:       cm.Seed,
		GridKnots:  cm.Grid,
	}
	if cm.Join != nil {
		spec.Join = &JoinSpec{
			Table:    cm.Join.Table,
			LeftKey:  cm.Join.LeftKey,
			RightKey: cm.Join.RightKey,
		}
		if cm.FracDen != 0 {
			spec.Join.Sampled = true
			spec.Join.SampleNum, spec.Join.SampleDenom = cm.FracNum, cm.FracDen
		}
	}
	return spec
}

// specFromSketchStatement lowers a parsed CREATE SKETCH statement to a
// sketch spec; Validate does the semantic checking. An omitted TYPE
// defaults to HLL.
func specFromSketchStatement(cs *sqlparse.CreateSketchStmt) *ModelSpec {
	typ := cs.Type
	if typ == "" {
		typ = "hll"
	}
	return &ModelSpec{
		Name:      cs.Name,
		Table:     cs.Table,
		XCols:     []string{cs.Col},
		Sketch:    strings.ToLower(typ),
		Precision: cs.Precision,
		TopK:      cs.K,
	}
}
