package dbest_test

import (
	"strings"
	"testing"
	"time"

	"dbest"
)

// Engine-level grid lifecycle tests: the evaluation grid must survive gob
// persistence, be rebuilt by the background refresher on retrain, and be
// absent (with the quadrature fallback serving) when trained GRID OFF.

// explainKernel returns the kernel= tag of the plan for sql.
func explainKernel(t *testing.T, eng *dbest.Engine, sql string) string {
	t.Helper()
	plan, err := eng.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	i := strings.Index(plan.Tree, "kernel=")
	if i < 0 {
		t.Fatalf("plan has no kernel tag:\n%s", plan.Tree)
	}
	rest := plan.Tree[i+len("kernel="):]
	if j := strings.IndexAny(rest, " \n"); j >= 0 {
		rest = rest[:j]
	}
	return rest
}

// queryKernelDelta runs sql and returns how far the grid-hit and
// grid-fallback counters moved. The counters are process-wide, so the
// delta is only meaningful because tests in one binary run sequentially.
func queryKernelDelta(t *testing.T, eng *dbest.Engine, sql string) (hits, fallbacks uint64) {
	t.Helper()
	before := eng.EvalKernelStats()
	res, err := eng.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q, want model", res.Source)
	}
	after := eng.EvalKernelStats()
	return after.GridHits - before.GridHits, after.GridFallbacks - before.GridFallbacks
}

// TestGridSurvivesPersistence saves a grid-bearing model with SaveModels
// and reloads it into a fresh engine: the reloaded model must keep serving
// from the grid, not silently fall back to quadrature.
func TestGridSurvivesPersistence(t *testing.T) {
	eng := newStreamEngine(t, 4000)
	sumSQL := "SELECT SUM(y) FROM stream WHERE x BETWEEN 100 AND 900"
	if k := explainKernel(t, eng, sumSQL); k != "grid" {
		t.Fatalf("pre-save kernel = %q, want grid", k)
	}
	want, err := eng.Query(sumSQL)
	if err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/models.gob"
	if err := eng.SaveModels(path); err != nil {
		t.Fatal(err)
	}
	eng2 := dbest.New(nil)
	if err := eng2.RegisterTable(streamTable(4000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := eng2.LoadModels(path); err != nil {
		t.Fatal(err)
	}
	if k := explainKernel(t, eng2, sumSQL); k != "grid" {
		t.Fatalf("reloaded kernel = %q, want grid", k)
	}
	hits, fallbacks := queryKernelDelta(t, eng2, sumSQL)
	if hits == 0 || fallbacks != 0 {
		t.Fatalf("reloaded query moved hits=%d fallbacks=%d, want grid-only", hits, fallbacks)
	}
	got, err := eng2.Query(sumSQL)
	if err != nil {
		t.Fatal(err)
	}
	if got.Aggregates[0].Value != want.Aggregates[0].Value {
		t.Fatalf("reloaded SUM = %g, original %g — grid tables changed across gob",
			got.Aggregates[0].Value, want.Aggregates[0].Value)
	}
}

// TestGridOffTrainsAndServesOnQuadrature covers the GridKnots escape hatch
// end to end: EXPLAIN reports the quad kernel and queries move only the
// fallback counter.
func TestGridOffTrainsAndServesOnQuadrature(t *testing.T) {
	eng := dbest.New(nil)
	if err := eng.RegisterTable(streamTable(3000, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("stream", []string{"x"}, "y",
		&dbest.TrainOptions{SampleSize: 1000, Seed: 1, GridKnots: -1}); err != nil {
		t.Fatal(err)
	}
	avgSQL := "SELECT AVG(y) FROM stream WHERE x BETWEEN 200 AND 800"
	if k := explainKernel(t, eng, avgSQL); k != "quad" {
		t.Fatalf("kernel = %q, want quad", k)
	}
	hits, fallbacks := queryKernelDelta(t, eng, avgSQL)
	if fallbacks == 0 || hits != 0 {
		t.Fatalf("GRID OFF query moved hits=%d fallbacks=%d, want quadrature-only", hits, fallbacks)
	}
}

// TestRefresherRebuildsGrid verifies a background retrain produces a model
// that still serves from a grid — the rebuild rides the trainPair funnel,
// so a refresh must not degrade the ensemble to the quadrature path.
func TestRefresherRebuildsGrid(t *testing.T) {
	const base = 4000
	eng := newStreamEngine(t, base)
	defer eng.StopRefresher()
	sumSQL := "SELECT SUM(y) FROM stream WHERE x BETWEEN 100 AND 900"
	if k := explainKernel(t, eng, sumSQL); k != "grid" {
		t.Fatalf("pre-refresh kernel = %q, want grid", k)
	}

	if err := eng.StartRefresher(&dbest.RefreshOptions{
		Interval:  5 * time.Millisecond,
		Threshold: 0.5,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Append("stream", streamRows(base, 17)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for eng.RefreshStats().Refreshes == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background refresher never retrained; staleness: %+v", eng.ModelStaleness())
		}
		time.Sleep(2 * time.Millisecond)
	}
	eng.StopRefresher()

	if k := explainKernel(t, eng, sumSQL); k != "grid" {
		t.Fatalf("post-refresh kernel = %q, want grid", k)
	}
	hits, fallbacks := queryKernelDelta(t, eng, sumSQL)
	if hits == 0 || fallbacks != 0 {
		t.Fatalf("post-refresh query moved hits=%d fallbacks=%d, want grid-only", hits, fallbacks)
	}
}
