package dbest_test

import (
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dbest"
	"dbest/internal/datagen"
	"dbest/internal/exact"
)

// newShardedEngine trains a K-shard ensemble on [ss_sold_date_sk →
// ss_sales_price] over a fresh StoreSales table.
func newShardedEngine(t *testing.T, rows, k int) (*dbest.Engine, *dbest.Table) {
	t.Helper()
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: rows, Seed: 1})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	info, err := eng.TrainSharded("store_sales", "ss_sold_date_sk", "ss_sales_price", k,
		&dbest.TrainOptions{SampleSize: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != k {
		t.Fatalf("trained %d shards, want %d", info.Shards, k)
	}
	return eng, tb
}

func TestShardedQueryMatchesExact(t *testing.T) {
	eng, tb := newShardedEngine(t, 40000, 8)
	for _, q := range []struct {
		af     exact.AggFunc
		sql    string
		lb, ub float64
		tol    float64
	}{
		{exact.Avg, "AVG(ss_sales_price)", 200, 600, 0.05},
		{exact.Sum, "SUM(ss_sales_price)", 200, 600, 0.08},
		{exact.Count, "COUNT(*)", 200, 600, 0.08},
		{exact.Avg, "AVG(ss_sales_price)", 0, 1823, 0.05}, // full domain: all shards merge
	} {
		res, err := eng.Query("SELECT " + q.sql + " FROM store_sales WHERE ss_sold_date_sk BETWEEN " +
			fmtF(q.lb) + " AND " + fmtF(q.ub))
		if err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		if res.Source != "model" {
			t.Fatalf("%s: source = %q, want model", q.sql, res.Source)
		}
		want := exactAnswer(t, tb, q.af, "ss_sales_price", "ss_sold_date_sk", q.lb, q.ub)
		if re := relErr(res.Aggregates[0].Value, want); re > q.tol {
			t.Fatalf("%s over [%g,%g]: got %v, want %v (rel err %.3f)",
				q.sql, q.lb, q.ub, res.Aggregates[0].Value, want, re)
		}
	}
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// TestNarrowQueryPrunesShards is the acceptance criterion: a range query
// covering ≤ 1/K of the domain over a K=16 ensemble evaluates only the
// overlapping shards, asserted through both the operator tree and the
// engine's shard counters.
func TestNarrowQueryPrunesShards(t *testing.T) {
	eng, _ := newShardedEngine(t, 40000, 16)
	before := eng.ShardStats()
	// The day domain spans 0..1823; 40 days is well under 1/16 of it.
	sql := `SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 900 AND 940`
	plan, err := eng.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Tree, "ShardMerge") {
		t.Fatalf("tree missing ShardMerge:\n%s", plan.Tree)
	}
	if !strings.Contains(plan.Tree, "/16") {
		t.Fatalf("tree missing shard count:\n%s", plan.Tree)
	}
	if len(plan.ModelKeys) != 1 || !strings.Contains(plan.ModelKeys[0], "@16-shards") {
		t.Fatalf("model keys = %v", plan.ModelKeys)
	}
	if _, err := eng.Query(sql); err != nil {
		t.Fatal(err)
	}
	after := eng.ShardStats()
	evaluated := after.Evaluated - before.Evaluated
	pruned := after.Pruned - before.Pruned
	// A 40-day window can straddle at most one quantile cut.
	if evaluated > 2 {
		t.Fatalf("narrow query evaluated %d shards, want <= 2", evaluated)
	}
	if evaluated+pruned != 16 {
		t.Fatalf("evaluated %d + pruned %d != 16 shards", evaluated, pruned)
	}
}

func TestShardedPercentileMerges(t *testing.T) {
	eng, tb := newShardedEngine(t, 40000, 8)
	res, err := eng.Query(`SELECT PERCENTILE(ss_sold_date_sk, 0.5) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 100 AND 1500`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := exact.Query(tb, exact.Request{AF: exact.Percentile, Y: "ss_sold_date_sk", P: 0.5,
		Predicates: []exact.Range{{Column: "ss_sold_date_sk", Lb: 100, Ub: 1500}}})
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(res.Aggregates[0].Value, r.Value); re > 0.05 {
		t.Fatalf("merged median = %v, exact = %v (rel err %.3f)", res.Aggregates[0].Value, r.Value, re)
	}
}

func TestShardedEmptyRegionErrors(t *testing.T) {
	eng, _ := newShardedEngine(t, 20000, 4)
	// AVG over a region with no density support errors like the unsharded path.
	_, err := eng.Query(`SELECT AVG(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 900000 AND 900001`)
	if err == nil || !strings.Contains(err.Error(), "empty region") {
		t.Fatalf("err = %v, want empty-region error", err)
	}
	// COUNT answers ~0 instead of erroring, like SQL over empty sets.
	res, err := eng.Query(`SELECT COUNT(*) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 900000 AND 900001`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregates[0].Value > 1 {
		t.Fatalf("COUNT over empty region = %v, want ~0", res.Aggregates[0].Value)
	}
}

// TestShardedSaveLoadRoundTrip is the satellite fix's happy path: a saved
// sharded catalog reloads as a complete ensemble and keeps answering.
func TestShardedSaveLoadRoundTrip(t *testing.T) {
	eng, tb := newShardedEngine(t, 20000, 4)
	path := filepath.Join(t.TempDir(), "models.gob")
	if err := eng.SaveModels(path); err != nil {
		t.Fatal(err)
	}
	fresh := dbest.New(nil)
	if err := fresh.LoadModels(path); err != nil {
		t.Fatal(err)
	}
	if got := len(fresh.ModelKeys()); got != 4 {
		t.Fatalf("loaded %d model sets, want 4", got)
	}
	// No base table registered: the answer must come from the models alone.
	res, err := fresh.Query(`SELECT AVG(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 200 AND 600`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q, want model", res.Source)
	}
	want := exactAnswer(t, tb, exact.Avg, "ss_sales_price", "ss_sold_date_sk", 200, 600)
	if re := relErr(res.Aggregates[0].Value, want); re > 0.05 {
		t.Fatalf("loaded ensemble AVG = %v, want %v (rel err %.3f)", res.Aggregates[0].Value, want, re)
	}
}

// TestTrainShardedReplacesOldEnsemble: retraining with a different K must
// not leave the old ensemble (or a plain model for the pair) behind.
func TestTrainShardedReplacesOldEnsemble(t *testing.T) {
	eng, _ := newShardedEngine(t, 20000, 4)
	if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price",
		&dbest.TrainOptions{SampleSize: 1000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TrainSharded("store_sales", "ss_sold_date_sk", "ss_sales_price", 8,
		&dbest.TrainOptions{SampleSize: 1000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	keys := eng.ModelKeys()
	if len(keys) != 8 {
		t.Fatalf("catalog keys = %v, want exactly the 8 new shard keys", keys)
	}
	for _, k := range keys {
		if !strings.Contains(k, "/8") {
			t.Fatalf("stale key %q survived the re-shard", k)
		}
	}
	if p := eng.TablePartitioning("store_sales"); p == nil || p.Shards() != 8 {
		t.Fatalf("table partition = %+v, want 8 shards on ss_sold_date_sk", p)
	}
}

// TestShardedRefreshRetrainsOnlyDirtyShard: appends concentrated in one
// shard's range must background-retrain that shard alone.
func TestShardedRefreshRetrainsOnlyDirtyShard(t *testing.T) {
	eng, _ := newShardedEngine(t, 8000, 4)
	if err := eng.StartRefresher(&dbest.RefreshOptions{
		Interval: 10 * time.Millisecond, Threshold: 0.2, MinRows: 1,
	}); err != nil {
		t.Fatal(err)
	}
	defer eng.StopRefresher()

	// Find the last shard's range start from the partition metadata and
	// flood it: every appended day lands in the final shard.
	part := eng.TablePartitioning("store_sales")
	if part == nil || part.Shards() != 4 {
		t.Fatalf("partition = %+v", part)
	}
	hi := part.Bounds[len(part.Bounds)-1]
	rows := make([][]interface{}, 800)
	for i := range rows {
		rows[i] = []interface{}{int64(hi) + 1, int64(3), 2.0, 10.0, 14.0, 12.0, 1.5, 3.0, "store"}
	}
	if _, err := eng.Append("store_sales", rows); err != nil {
		t.Fatal(err)
	}
	eng.RefreshNow()

	deadline := time.Now().Add(10 * time.Second)
	for {
		refreshed := 0
		for _, st := range eng.ModelStaleness() {
			if st.Shards != 4 {
				t.Fatalf("staleness entry missing shard metadata: %+v", st)
			}
			if st.Shard != 3 && st.Refreshes > 0 {
				t.Fatalf("clean shard %d was retrained: %+v", st.Shard, st)
			}
			if st.Shard == 3 && st.Refreshes > 0 && !st.Refreshing {
				refreshed++
			}
		}
		if refreshed == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dirty shard never refreshed: %+v", eng.ModelStaleness())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
