// Package dbest is a model-based approximate query processing (AQP) engine:
// a Go implementation of "DBEst: Revisiting Approximate Query Processing
// Engines with Machine Learning Models" (Ma & Triantafillou, SIGMOD 2019).
//
// Instead of retaining data or samples, DBEst trains a pair of machine
// learning models per column set of interest — a kernel density estimator
// D(x) over the range-predicate attribute and a regression model R(x) from
// that attribute to the aggregate attribute — from a small uniform sample,
// then answers COUNT, SUM, AVG, VARIANCE, STDDEV and PERCENTILE queries
// (with range predicates, GROUP BY and joins) purely from the models via
// numerical integration. Samples are discarded after training; the models
// are orders of magnitude smaller and faster to query.
//
// Basic usage:
//
//	eng := dbest.New(nil)
//	eng.RegisterTable(tbl)
//	eng.Train("sales", []string{"date"}, "price", nil)
//	res, err := eng.Query("SELECT AVG(price) FROM sales WHERE date BETWEEN 100 AND 200")
package dbest

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"sync"
	"time"

	"dbest/internal/catalog"
	"dbest/internal/core"
	"dbest/internal/exec"
	"dbest/internal/ingest"
	"dbest/internal/sample"
	"dbest/internal/sqlparse"
	"dbest/internal/table"
)

// Table re-exports the columnar table type used to feed the engine.
type Table = table.Table

// NewTable creates an empty named table.
func NewTable(name string) *Table { return table.New(name) }

// LoadCSV loads a table from a CSV file with a header row.
func LoadCSV(name, path string) (*Table, error) { return table.LoadCSV(name, path) }

// TrainOptions configures sampling and model training. The zero value (or
// nil) uses a 10k-row sample, auto-sized boosted trees, and binned KDE.
type TrainOptions struct {
	// SampleSize is the uniform (reservoir) sample size; with GroupBy it is
	// the per-group sample size. Default 10 000.
	SampleSize int
	// GroupBy builds one model pair per value of this Int64 column.
	GroupBy string
	// Scale is the logical rows represented per physical row, for
	// experiments that simulate billion-row tables. Default 1.
	Scale float64
	// Seed makes sampling and training deterministic.
	Seed int64
	// MinGroupModel: groups whose sample is smaller keep raw tuples instead
	// of models (answered exactly). Default 30.
	MinGroupModel int
	// Workers bounds parallel per-group training. 0 = GOMAXPROCS.
	Workers int
	// EnsemblePLR adds a piecewise-linear constituent to the regression
	// ensemble alongside the two boosted-tree models.
	EnsemblePLR bool
	// KDEBins is the density-estimator grid resolution. Default 1024.
	KDEBins int
	// Regressor selects the regression family: "" or "ensemble" (default),
	// or a single constituent "gboost", "xgboost", "plr".
	Regressor string
}

func (o *TrainOptions) toConfig() *core.TrainConfig {
	if o == nil {
		return nil
	}
	return &core.TrainConfig{
		SampleSize:    o.SampleSize,
		GroupBy:       o.GroupBy,
		Scale:         o.Scale,
		Seed:          o.Seed,
		MinGroupModel: o.MinGroupModel,
		Workers:       o.Workers,
		EnsemblePLR:   o.EnsemblePLR,
		Bins:          o.KDEBins,
		Regressor:     o.Regressor,
	}
}

// TrainInfo reports what a Train call built — the state-building overheads
// of the paper's Figs. 4, 12 and 16.
type TrainInfo struct {
	Key        string
	NumModels  int
	ModelBytes int
	SampleRows int
	SampleTime time.Duration
	TrainTime  time.Duration
	// Shards is the ensemble size for TrainSharded builds (0 for plain
	// training); Key is then the ensemble's base key.
	Shards int
}

// Options configures the engine.
type Options struct {
	// Workers bounds parallel per-group model evaluation at query time.
	// 0 = GOMAXPROCS; 1 = fully sequential (the paper's single-thread mode).
	Workers int
	// PlanCacheSize bounds the number of prepared queries kept by the plan
	// cache. 0 uses the default (1024); negative disables plan caching.
	PlanCacheSize int
}

// Engine is the DBEst AQP engine: a model catalog over registered tables
// with an exact query processor underneath (Fig. 1 of the paper).
type Engine struct {
	mu      sync.RWMutex
	tables  map[string]*table.Table
	catalog *catalog.Catalog
	workers int
	plans   *planCache

	// appendMu serializes all writers of the tables map (Append,
	// AppendTable, RegisterTable, DropTable). Appends build their
	// copy-on-write clone outside e.mu — so queries resolving tables are
	// never blocked behind batch validation — and appendMu is what makes
	// that safe: while an appender works on its clone of the head table, no
	// other writer can clone the same head or swap the map entry under it.
	// Lock order: appendMu before e.mu.
	appendMu sync.Mutex

	// ledger tracks per-model staleness as rows are ingested; refresher,
	// when started, retrains stale models in the background (ingest.go).
	ledger    *ingest.Ledger
	refMu     sync.Mutex
	refresher *ingest.Refresher
	refStats  ingest.RefreshStats // final counters of the last stopped refresher

	// shardCtrs accumulates shard-pruning counters across every ShardMerge
	// execution (sharding.go).
	shardCtrs exec.ShardCounters
}

// New creates an engine. opts may be nil.
func New(opts *Options) *Engine {
	w, cacheSize := 0, defaultPlanCacheSize
	if opts != nil {
		w = opts.Workers
		if opts.PlanCacheSize > 0 {
			cacheSize = opts.PlanCacheSize
		} else if opts.PlanCacheSize < 0 {
			cacheSize = 0
		}
	}
	return &Engine{
		tables:  make(map[string]*table.Table),
		catalog: catalog.New(),
		workers: w,
		plans:   newPlanCache(cacheSize),
		ledger:  ingest.NewLedger(),
	}
}

// RegisterTable makes tb available for training and exact fallback.
// Registering a name that already has a table — or that trained models
// still watch (drop-then-re-register) — replaces the data wholesale: the
// catalog generation is bumped so cached plans re-resolve instead of
// serving models bound to the old data, and every model trained over the
// name is marked maximally stale so a running refresher rebuilds it from
// the new rows.
func (e *Engine) RegisterTable(tb *Table) error {
	if tb.Name == "" {
		return errors.New("dbest: table must be named")
	}
	if err := tb.Validate(); err != nil {
		return err
	}
	e.appendMu.Lock()
	e.mu.Lock()
	_, replaced := e.tables[tb.Name]
	e.tables[tb.Name] = tb
	e.mu.Unlock()
	e.appendMu.Unlock()
	if stale := e.ledger.Invalidate(tb.Name); replaced || stale > 0 {
		e.catalog.Invalidate()
	}
	return nil
}

// Table returns a registered table, or nil.
func (e *Engine) Table(name string) *Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tables[name]
}

// DropTable removes a registered base table. Models trained from it are
// deliberately RETAINED in the catalog and keep answering model-path
// queries — DBEst needs only the models, which is the point (§3: samples
// and base data can be discarded after training). Only exact-path queries
// over the dropped name start failing, and background refreshes of its
// models fail (and back off) until a table is registered under the name
// again.
func (e *Engine) DropTable(name string) {
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.tables, name)
}

// ModelKeys lists the catalog keys of all trained model sets.
func (e *Engine) ModelKeys() []string { return e.catalog.Keys() }

// ModelBytes reports the total serialized size of all models — the memory
// footprint of DBEst's query-time state.
func (e *Engine) ModelBytes() int { return e.catalog.TotalBytes() }

// SaveModels / LoadModels persist the model catalog.
func (e *Engine) SaveModels(path string) error { return e.catalog.SaveFile(path) }

// LoadModels loads a catalog saved with SaveModels, replacing the current
// one. The staleness ledger is cleared: loaded models are not
// staleness-tracked (their training options are not persisted) until they
// are rebuilt through a Train call.
func (e *Engine) LoadModels(path string) error {
	if err := e.catalog.LoadFile(path); err != nil {
		return err
	}
	e.ledger.Clear()
	return nil
}

// Train builds models for AF(ycol) queries with range predicates on xcols
// over the registered table tbl, registers them in the catalog and returns
// build statistics. Pass one x column for univariate predicates, two for
// multivariate; set opts.GroupBy for per-group models.
func (e *Engine) Train(tbl string, xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	return e.TrainContext(context.Background(), tbl, xcols, ycol, opts)
}

// TrainContext is Train with cancellation: a canceled ctx aborts the build
// at the next model-fit boundary without touching the catalog. A server
// passes the request context so an abandoned client connection stops its
// training instead of burning CPU for nobody.
func (e *Engine) TrainContext(ctx context.Context, tbl string, xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	tb := e.Table(tbl)
	if tb == nil {
		return nil, fmt.Errorf("dbest: table %q is not registered", tbl)
	}
	ms, err := core.TrainContext(ctx, tb, xcols, ycol, opts.toConfig())
	if err != nil {
		return nil, err
	}
	e.catalog.Put(ms)
	opts = opts.clone()
	xc := append([]string(nil), xcols...)
	e.trackModel(ms, []string{tbl}, tb.NumRows(), opts, func(ctx context.Context) error {
		_, err := e.TrainContext(ctx, tbl, xc, ycol, opts)
		return err
	})
	return trainInfo(ms), nil
}

// trainInfo converts a trained model set's stats to the public TrainInfo.
func trainInfo(ms *core.ModelSet) *TrainInfo {
	return &TrainInfo{
		Key:        ms.Key(),
		NumModels:  ms.NumModels(),
		ModelBytes: ms.Stats.ModelBytes,
		SampleRows: ms.Stats.SampleRows,
		SampleTime: ms.Stats.SampleTime,
		TrainTime:  ms.Stats.TrainTime,
	}
}

// JoinName is the synthetic table name under which models trained over a
// join are registered and queried.
func JoinName(left, right string) string { return left + "_join_" + right }

// TrainJoin implements the paper's first join approach (§2.2): precompute
// the join result, sample it, train models over the sample, and discard
// both the join result and the sample. Only the models are retained. The
// models answer SQL queries phrased as "FROM left JOIN right ON lk = rk".
func (e *Engine) TrainJoin(left, right, leftKey, rightKey string, xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	return e.TrainJoinContext(context.Background(), left, right, leftKey, rightKey, xcols, ycol, opts)
}

// TrainJoinContext is TrainJoin with cancellation (see TrainContext).
func (e *Engine) TrainJoinContext(ctx context.Context, left, right, leftKey, rightKey string, xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	lt, rt := e.Table(left), e.Table(right)
	if lt == nil || rt == nil {
		return nil, fmt.Errorf("dbest: join tables %q, %q must both be registered", left, right)
	}
	t0 := time.Now()
	joined, err := table.EquiJoin(lt, rt, leftKey, rightKey)
	if err != nil {
		return nil, err
	}
	joinTime := time.Since(t0)
	joined.Name = JoinName(left, right)
	ms, err := core.TrainContext(ctx, joined, xcols, ycol, opts.toConfig())
	if err != nil {
		return nil, err
	}
	// The precomputation cost is part of state building, not query time.
	ms.Stats.SampleTime += joinTime
	e.catalog.Put(ms)
	opts = opts.clone()
	xc := append([]string(nil), xcols...)
	e.trackModel(ms, []string{left, right}, lt.NumRows()+rt.NumRows(), opts, func(ctx context.Context) error {
		_, err := e.TrainJoinContext(ctx, left, right, leftKey, rightKey, xc, ycol, opts)
		return err
	})
	return trainInfo(ms), nil
}

// TrainJoinSampled implements the paper's second join approach (§2.2),
// for joins of tables too large to precompute in full: each side is first
// reduced by hashed (universe) sampling on the join key with the same hash
// band — which preserves join pairs — the join is computed over the hashed
// samples, a small uniform sample is drawn from the sample-join, and
// models are trained from it. num/denom is the hash-band keep ratio
// (e.g. 1/4 keeps ≈ 25% of join-key values).
func (e *Engine) TrainJoinSampled(left, right, leftKey, rightKey string, num, denom uint64,
	xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	return e.TrainJoinSampledContext(context.Background(), left, right, leftKey, rightKey, num, denom, xcols, ycol, opts)
}

// TrainJoinSampledContext is TrainJoinSampled with cancellation (see
// TrainContext).
func (e *Engine) TrainJoinSampledContext(ctx context.Context, left, right, leftKey, rightKey string, num, denom uint64,
	xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	if num == 0 || denom == 0 {
		return nil, fmt.Errorf("dbest: hash-band keep ratio %d/%d must have nonzero numerator and denominator", num, denom)
	}
	if num > denom {
		return nil, fmt.Errorf("dbest: hash-band keep ratio %d/%d exceeds 1", num, denom)
	}
	lt, rt := e.Table(left), e.Table(right)
	if lt == nil || rt == nil {
		return nil, fmt.Errorf("dbest: join tables %q, %q must both be registered", left, right)
	}
	t0 := time.Now()
	seed := maphash.MakeSeed()
	li, err := sample.Hashed(lt, leftKey, num, denom, seed)
	if err != nil {
		return nil, err
	}
	ri, err := sample.Hashed(rt, rightKey, num, denom, seed)
	if err != nil {
		return nil, err
	}
	joined, err := table.EquiJoin(lt.SelectRows(li), rt.SelectRows(ri), leftKey, rightKey)
	if err != nil {
		return nil, err
	}
	prepTime := time.Since(t0)
	joined.Name = JoinName(left, right)

	cfg := opts.toConfig()
	if cfg == nil {
		cfg = &core.TrainConfig{}
	}
	// The hashed samples keep num/denom of the join-key universe, so the
	// sample-join under-counts the true join by denom/num: fold that into
	// the logical scale so COUNT/SUM report full-join magnitudes.
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	cfg.Scale *= float64(denom) / float64(num)
	ms, err := core.TrainContext(ctx, joined, xcols, ycol, cfg)
	if err != nil {
		return nil, err
	}
	ms.Stats.SampleTime += prepTime
	e.catalog.Put(ms)
	opts = opts.clone()
	xc := append([]string(nil), xcols...)
	e.trackModel(ms, []string{left, right}, lt.NumRows()+rt.NumRows(), opts, func(ctx context.Context) error {
		_, err := e.TrainJoinSampledContext(ctx, left, right, leftKey, rightKey, num, denom, xc, ycol, opts)
		return err
	})
	return trainInfo(ms), nil
}

// AggregateResult is the answer for one select-list aggregate, e.g.
// "AVG(ss_sales_price)" with its value and per-group answers for GROUP BY.
// It is produced by the physical execution layer (internal/exec).
type AggregateResult = exec.AggregateResult

// Result is the engine's answer to one SQL query.
type Result struct {
	Aggregates []AggregateResult
	// Source reports which path answered: "model" (DBEst models) or
	// "exact" (fallback to the exact QP engine below DBEst).
	Source  string
	Elapsed time.Duration
}

// Query parses, plans and answers one SQL query. If the catalog has models
// for the query's column sets the models answer it; otherwise the query
// falls through to the exact engine over the registered base tables, per
// the architecture of Fig. 1. Plans are cached by normalized SQL, so a
// repeated query shape skips the parser and the catalog scan entirely.
func (e *Engine) Query(sql string) (*Result, error) {
	t0 := time.Now()
	p, err := e.Prepare(sql)
	if err != nil {
		return nil, err
	}
	res, err := p.run()
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(t0)
	return res, nil
}

// Run plans and answers a pre-parsed query, bypassing the plan cache. It is
// a thin shim over the physical execution layer: plan once, run once.
func (e *Engine) Run(q *sqlparse.Query) (*Result, error) {
	p, err := e.plan(q, e.catalog.Generation())
	if err != nil {
		return nil, err
	}
	return p.Run()
}

// modelTable resolves which logical table name the catalog should be
// queried under.
func modelTable(q *sqlparse.Query) string {
	if q.Join != nil {
		return JoinName(q.Table, q.Join.Table)
	}
	return q.Table
}

// TrainNominal builds one model pair per distinct value of the String
// column nominalBy — the paper's nominal categorical support (§2.3). The
// models answer queries of the form
//
//	SELECT AF(ycol) FROM tbl WHERE nominalBy = 'v' AND xcol BETWEEN a AND b
func (e *Engine) TrainNominal(tbl, xcol, ycol, nominalBy string, opts *TrainOptions) (*TrainInfo, error) {
	return e.TrainNominalContext(context.Background(), tbl, xcol, ycol, nominalBy, opts)
}

// TrainNominalContext is TrainNominal with cancellation (see TrainContext).
func (e *Engine) TrainNominalContext(ctx context.Context, tbl, xcol, ycol, nominalBy string, opts *TrainOptions) (*TrainInfo, error) {
	tb := e.Table(tbl)
	if tb == nil {
		return nil, fmt.Errorf("dbest: table %q is not registered", tbl)
	}
	ms, err := core.TrainNominalContext(ctx, tb, xcol, ycol, nominalBy, opts.toConfig())
	if err != nil {
		return nil, err
	}
	e.catalog.Put(ms)
	opts = opts.clone()
	e.trackModel(ms, []string{tbl}, tb.NumRows(), opts, func(ctx context.Context) error {
		_, err := e.TrainNominalContext(ctx, tbl, xcol, ycol, nominalBy, opts)
		return err
	})
	return trainInfo(ms), nil
}

// Plan describes how the engine would answer a query, without running it.
type Plan struct {
	// Path is "model", "nominal-model", or "exact".
	Path string
	// ModelKeys lists the catalog keys of the model sets that would serve
	// each aggregate (empty on the exact path).
	ModelKeys []string
	// Reason explains an exact-path decision.
	Reason string
	// Tree is the physical operator tree that would execute, one operator
	// per line (Project, ModelEval, GroupMerge, ExactScan, ...).
	Tree string
}

// Explain reports the query plan for sql: which trained models would answer
// it (and through which physical operators), or why it would fall through
// to the exact engine.
func (e *Engine) Explain(sql string) (*Plan, error) {
	p, err := e.Prepare(sql)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Path: p.Path(), Reason: p.Reason(), Tree: p.Render()}
	if keys := p.ModelKeys(); len(keys) > 0 {
		plan.ModelKeys = keys
	}
	return plan, nil
}

// yColFor maps COUNT(*) and density-based aggregates onto the predicate
// column so the catalog lookup can use the density-only fallback.
func yColFor(agg sqlparse.Aggregate, xcol string) string {
	if agg.Column == "*" {
		return xcol
	}
	return agg.Column
}
