// Package dbest is a model-based approximate query processing (AQP) engine:
// a Go implementation of "DBEst: Revisiting Approximate Query Processing
// Engines with Machine Learning Models" (Ma & Triantafillou, SIGMOD 2019).
//
// Instead of retaining data or samples, DBEst trains a pair of machine
// learning models per column set of interest — a kernel density estimator
// D(x) over the range-predicate attribute and a regression model R(x) from
// that attribute to the aggregate attribute — from a small uniform sample,
// then answers COUNT, SUM, AVG, VARIANCE, STDDEV and PERCENTILE queries
// (with range predicates, GROUP BY and joins) purely from the models via
// numerical integration. Samples are discarded after training; the models
// are orders of magnitude smaller and faster to query.
//
// Basic usage:
//
//	eng := dbest.New(nil)
//	eng.RegisterTable(tbl)
//	eng.CreateModel(ctx, &dbest.ModelSpec{
//	    Table: "sales", XCols: []string{"date"}, YCol: "price",
//	})
//	res, err := eng.Query("SELECT AVG(price) FROM sales WHERE date BETWEEN 100 AND 200")
//
// Model definitions are declarative (spec.go): the same spec is available
// as a CREATE MODEL statement through Engine.Exec, is persisted with the
// models by SaveModels, and is re-executed by the background refresher
// when ingested rows make a model stale — including models reloaded via
// LoadModels.
package dbest

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dbest/internal/catalog"
	"dbest/internal/core"
	"dbest/internal/exec"
	"dbest/internal/ingest"
	"dbest/internal/sqlparse"
	"dbest/internal/table"
)

// Table re-exports the columnar table type used to feed the engine.
type Table = table.Table

// NewTable creates an empty named table.
func NewTable(name string) *Table { return table.New(name) }

// LoadCSV loads a table from a CSV file with a header row.
func LoadCSV(name, path string) (*Table, error) { return table.LoadCSV(name, path) }

// TrainOptions configures sampling and model training for the legacy
// Train* entry points. The zero value (or nil) uses a 10k-row sample,
// auto-sized boosted trees, and binned KDE.
//
// Deprecated: assemble a ModelSpec and call Engine.CreateModel instead —
// the spec carries the same fields, validates them centrally, and is
// persisted with the models so reloaded catalogs stay refreshable.
type TrainOptions struct {
	// SampleSize is the uniform (reservoir) sample size; with GroupBy it is
	// the per-group sample size. Default 10 000.
	SampleSize int
	// GroupBy builds one model pair per value of this Int64 column.
	GroupBy string
	// Scale is the logical rows represented per physical row, for
	// experiments that simulate billion-row tables. Default 1.
	Scale float64
	// Seed makes sampling and training deterministic.
	Seed int64
	// MinGroupModel: groups whose sample is smaller keep raw tuples instead
	// of models (answered exactly). Default 30.
	MinGroupModel int
	// Workers bounds parallel per-group training. 0 = GOMAXPROCS.
	Workers int
	// EnsemblePLR adds a piecewise-linear constituent to the regression
	// ensemble alongside the two boosted-tree models.
	EnsemblePLR bool
	// KDEBins is the density-estimator grid resolution. Default 1024.
	KDEBins int
	// Regressor selects the regression family: "" or "ensemble" (default),
	// or a single constituent "gboost", "xgboost", "plr".
	Regressor string
	// GridKnots is the base knot budget of the train-time evaluation grid
	// (0 = default, positive = explicit, negative = disable grids and
	// answer every integral through adaptive quadrature).
	GridKnots int
}

// TrainInfo reports what a CreateModel (or legacy Train*) call built — the
// state-building overheads of the paper's Figs. 4, 12 and 16.
type TrainInfo struct {
	Key        string
	NumModels  int
	ModelBytes int
	SampleRows int
	SampleTime time.Duration
	TrainTime  time.Duration
	// Shards is the ensemble size for TrainSharded builds (0 for plain
	// training); Key is then the ensemble's base key.
	Shards int
}

// Options configures the engine.
type Options struct {
	// Workers bounds parallel per-group model evaluation at query time.
	// 0 = GOMAXPROCS; 1 = fully sequential (the paper's single-thread mode).
	Workers int
	// PlanCacheSize bounds the number of prepared queries kept by the plan
	// cache. 0 uses the default (1024); negative disables plan caching.
	PlanCacheSize int
}

// Engine is the DBEst AQP engine: a model catalog over registered tables
// with an exact query processor underneath (Fig. 1 of the paper).
//
// Concurrency: the read path is lock-free. Every query captures one
// engineSnap — an immutable pairing of a catalog snapshot and a table map —
// from an atomic pointer, and plans, resolves tables, and executes entirely
// against it. Writers (table registration, appends, training, refresher
// swaps) mutate builder-side state under writer mutexes and publish fresh
// snapshots; in-flight queries keep their pinned snapshot until they
// finish, after which it becomes garbage.
type Engine struct {
	catalog *catalog.Catalog
	workers int
	plans   *planCache

	// snap is the epoch-published read-path snapshot. pubMu serializes
	// publishers (table writers and the catalog's OnPublish hook);
	// snapRebuilds counts publications for /stats.
	snap         atomic.Pointer[engineSnap]
	pubMu        sync.Mutex
	snapRebuilds atomic.Uint64

	// appendMu serializes all writers of the table map (Append,
	// AppendTable, RegisterTable, DropTable, setPartition). Appends build
	// their copy-on-write clone without blocking readers — queries resolve
	// tables through the published snapshot — and appendMu is what makes
	// that safe: while an appender works on its clone of the head table, no
	// other writer can clone the same head or swap the map entry under it.
	// Lock order: appendMu before pubMu.
	appendMu sync.Mutex

	// ledger tracks per-model staleness as rows are ingested; refresher,
	// when started, retrains stale models in the background (ingest.go).
	ledger    *ingest.Ledger
	refMu     sync.Mutex
	refresher *ingest.Refresher
	refStats  ingest.RefreshStats // final counters of the last stopped refresher

	// shardCtrs accumulates shard-pruning counters across every ShardMerge
	// execution (sharding.go).
	shardCtrs exec.ShardCounters

	// sketchHits counts queries answered from sketches; sketchUpdates counts
	// appended values absorbed into sketches in place (the zero-retrain
	// freshness path).
	sketchHits    atomic.Uint64
	sketchUpdates atomic.Uint64

	// router holds the error-budget router's counters and per-model
	// calibration rings (router.go).
	router routerState
}

// engineSnap is the read path's consistent view: one immutable catalog
// snapshot plus the table map published with it. A query captures one
// engineSnap and both plans and executes against it, so the catalog
// generation it binds and the tables it scans can never disagree. The
// table map is never mutated after publication (writers clone it), and it
// implements exec.TableResolver so execution resolves tables against the
// pinned view.
type engineSnap struct {
	cat    *catalog.Snapshot
	tables map[string]*table.Table
}

// Table implements exec.TableResolver against the snapshot's table map.
func (s *engineSnap) Table(name string) *table.Table { return s.tables[name] }

// New creates an engine. opts may be nil.
func New(opts *Options) *Engine {
	w, cacheSize := 0, defaultPlanCacheSize
	if opts != nil {
		w = opts.Workers
		if opts.PlanCacheSize > 0 {
			cacheSize = opts.PlanCacheSize
		} else if opts.PlanCacheSize < 0 {
			cacheSize = 0
		}
	}
	e := &Engine{
		catalog: catalog.New(),
		workers: w,
		plans:   newPlanCache(cacheSize),
		ledger:  ingest.NewLedger(),
	}
	e.snap.Store(&engineSnap{cat: e.catalog.Snapshot(), tables: make(map[string]*table.Table)})
	// Every catalog publication (training, refresher swaps, invalidations)
	// folds into the engine snapshot, so the read path observes catalog and
	// tables through one pointer. The hook runs under the catalog's writer
	// mutex, so snapshots arrive in generation order.
	e.catalog.OnPublish(func(s *catalog.Snapshot) { e.publish(s, nil) })
	return e
}

// publish installs a new read-path snapshot. A nil cat keeps the current
// catalog view, a nil tables keeps the current table map. A catalog
// snapshot older than the published one never replaces it (publishers can
// race only in the tables dimension; catalog publications arrive in order).
func (e *Engine) publish(cat *catalog.Snapshot, tables map[string]*table.Table) {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	cur := e.snap.Load()
	if cat == nil || (cur != nil && cat.Generation() < cur.cat.Generation()) {
		cat = cur.cat
	}
	if tables == nil {
		tables = cur.tables
	}
	e.snap.Store(&engineSnap{cat: cat, tables: tables})
	e.snapRebuilds.Add(1)
}

// setTable publishes a copy of the table map with name bound to tb (or
// removed, for nil tb). Caller must hold appendMu.
func (e *Engine) setTable(name string, tb *table.Table) {
	cur := e.snap.Load().tables
	next := make(map[string]*table.Table, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	if tb == nil {
		delete(next, name)
	} else {
		next[name] = tb
	}
	e.publish(nil, next)
}

// SnapshotStats reports the read path's snapshot counters: the catalog
// generation of the currently published snapshot and how many snapshots
// have been published — the write-side cost of lock-free serving.
type SnapshotStats struct {
	// Generation is the catalog generation queries are currently serving
	// under.
	Generation uint64
	// Rebuilds counts engine-snapshot publications (table swaps plus
	// catalog publications folded in).
	Rebuilds uint64
	// CatalogRebuilds counts catalog-snapshot builds (one per catalog
	// mutation).
	CatalogRebuilds uint64
}

// SnapshotStats returns the engine's snapshot counters. It never contends
// with serving.
func (e *Engine) SnapshotStats() SnapshotStats {
	return SnapshotStats{
		Generation: e.snap.Load().cat.Generation(),
		Rebuilds:   e.snapRebuilds.Load(),
		//lint:snapcapture monitoring-only: Rebuilds is a live atomic counter, not part of the published snapshot, and may legitimately run ahead of Generation
		CatalogRebuilds: e.catalog.Rebuilds(),
	}
}

// EvalKernelStats is a snapshot of the process-wide evaluation-kernel
// counters: how many model-path integrals were answered by a train-time
// prefix-integral grid vs by adaptive quadrature, and how many quadrature
// runs exhausted their subdivision budget and had their best estimate
// accepted (previously a silently swallowed condition).
type EvalKernelStats struct {
	GridHits         uint64 `json:"grid_hits"`
	GridFallbacks    uint64 `json:"grid_fallbacks"`
	QuadNonconverged uint64 `json:"quad_nonconverged"`
}

// EvalKernelStats returns the evaluation-kernel counters. They are
// process-wide (all engines in the process share them) and never contend
// with serving.
func (e *Engine) EvalKernelStats() EvalKernelStats {
	c := core.ReadEvalCounters()
	return EvalKernelStats{
		GridHits:         c.GridHits,
		GridFallbacks:    c.GridFallbacks,
		QuadNonconverged: c.QuadNonconverged,
	}
}

// SketchStats is a snapshot of the engine's sketch-serving counters:
// queries answered from sketches, appended values absorbed into sketches in
// place (with zero refresher retrains), and the serialized footprint of all
// registered sketches.
type SketchStats struct {
	Hits    uint64 `json:"sketch_hits"`
	Updates uint64 `json:"sketch_updates"`
	Bytes   int    `json:"sketch_bytes"`
}

// SketchStats returns the engine's sketch counters. Bytes is computed from
// the current snapshot, so the call never contends with serving.
func (e *Engine) SketchStats() SketchStats {
	bytes := 0
	e.snap.Load().cat.Scan(func(ms *core.ModelSet) bool {
		if ms.Sketch != nil {
			bytes += ms.Sketch.SizeBytes()
		}
		return true
	})
	return SketchStats{
		Hits:    e.sketchHits.Load(),
		Updates: e.sketchUpdates.Load(),
		Bytes:   bytes,
	}
}

// RegisterTable makes tb available for training and exact fallback.
// Registering a name that already has a table — or that trained models
// still watch (drop-then-re-register) — replaces the data wholesale: the
// catalog generation is bumped so cached plans re-resolve instead of
// serving models bound to the old data, and every model trained over the
// name is marked maximally stale so a running refresher rebuilds it from
// the new rows.
func (e *Engine) RegisterTable(tb *Table) error {
	if tb.Name == "" {
		return errors.New("dbest: table must be named")
	}
	if err := tb.Validate(); err != nil {
		return err
	}
	e.appendMu.Lock()
	_, replaced := e.snap.Load().tables[tb.Name]
	e.setTable(tb.Name, tb)
	e.appendMu.Unlock()
	if stale := e.ledger.Invalidate(tb.Name); replaced || stale > 0 {
		//lint:snapcapture writer-side: the snapshot read above ran under appendMu, and Invalidate publishes a fresh generation rather than answering from a stale one
		e.catalog.Invalidate()
	}
	return nil
}

// Table returns a registered table, or nil, as of the current snapshot.
func (e *Engine) Table(name string) *Table {
	return e.snap.Load().Table(name)
}

// DropTable removes a registered base table. Models trained from it are
// deliberately RETAINED in the catalog and keep answering model-path
// queries — DBEst needs only the models, which is the point (§3: samples
// and base data can be discarded after training). The retained models are
// force-staled: their base data is gone, so they are no longer
// refreshable, and a background refresher records a failure and backs off
// until a table is registered under the name again (re-registration then
// rebuilds them from the new rows). Exact-path queries over the dropped
// name start failing immediately. Use DropTableCascade to drop the
// dependent models along with the table.
func (e *Engine) DropTable(name string) {
	e.appendMu.Lock()
	e.setTable(name, nil)
	e.appendMu.Unlock()
	if e.ledger.Invalidate(name) > 0 {
		e.catalog.Invalidate()
	}
}

// DropTableCascade removes a registered base table AND every model trained
// from it — single-table models trained over the name, and join models
// whose persisted spec references it on either side. It returns the
// catalog keys of the dropped model sets. Unlike DropTable, nothing keeps
// answering queries for the name afterwards.
func (e *Engine) DropTableCascade(name string) []string {
	e.DropTable(name)
	removed := e.catalog.RemoveMatching(func(ms *core.ModelSet) bool {
		if ms.Table == name {
			return true
		}
		spec, err := decodeSpec(ms.Spec)
		if err != nil || spec == nil {
			return false
		}
		for _, t := range spec.watchTables() {
			if t == name {
				return true
			}
		}
		return false
	})
	for _, k := range removed {
		e.ledger.Drop(k)
	}
	return removed
}

// ModelKeys lists the raw catalog keys of all trained model sets,
// including the @s<i>/<K> member keys of sharded ensembles. Most callers
// want Models() instead, which reports one entry per logical model with
// its spec, size and staleness.
func (e *Engine) ModelKeys() []string { return e.catalog.Keys() }

// ModelBytes reports the total serialized size of all models — the memory
// footprint of DBEst's query-time state.
func (e *Engine) ModelBytes() int { return e.catalog.TotalBytes() }

// SaveModels / LoadModels persist the model catalog.
func (e *Engine) SaveModels(path string) error { return e.catalog.SaveFile(path) }

// LoadModels loads a catalog saved with SaveModels, replacing the current
// one. The staleness ledger is rebuilt from the persisted model specs:
// every model trained through CreateModel (or the Train* wrappers) is
// re-registered for staleness tracking with a retrain that re-executes its
// spec, so ingestion past the threshold keeps refreshing models across
// save/load cycles. Only models from catalogs saved before specs existed
// stay untracked until rebuilt through CreateModel.
func (e *Engine) LoadModels(path string) error {
	if err := e.catalog.LoadFile(path); err != nil {
		return err
	}
	e.ledger.Clear()
	e.retrackLoaded()
	return nil
}

// Train builds models for AF(ycol) queries with range predicates on xcols
// over the registered table tbl, registers them in the catalog and returns
// build statistics. Pass one x column for univariate predicates, two for
// multivariate; set opts.GroupBy for per-group models. It is a thin
// wrapper over CreateModel.
func (e *Engine) Train(tbl string, xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	return e.CreateModel(context.Background(), specFor(tbl, xcols, ycol, opts))
}

// TrainContext is Train with cancellation: a canceled ctx aborts the build
// at the next model-fit boundary without touching the catalog. A server
// passes the request context so an abandoned client connection stops its
// training instead of burning CPU for nobody.
func (e *Engine) TrainContext(ctx context.Context, tbl string, xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	return e.CreateModel(ctx, specFor(tbl, xcols, ycol, opts))
}

// trainInfo converts a trained model set's stats to the public TrainInfo.
func trainInfo(ms *core.ModelSet) *TrainInfo {
	return &TrainInfo{
		Key:        ms.Key(),
		NumModels:  ms.NumModels(),
		ModelBytes: ms.Stats.ModelBytes,
		SampleRows: ms.Stats.SampleRows,
		SampleTime: ms.Stats.SampleTime,
		TrainTime:  ms.Stats.TrainTime,
	}
}

// JoinName is the synthetic table name under which models trained over a
// join are registered and queried.
func JoinName(left, right string) string { return left + "_join_" + right }

// TrainJoin implements the paper's first join approach (§2.2): precompute
// the join result, sample it, train models over the sample, and discard
// both the join result and the sample. Only the models are retained. The
// models answer SQL queries phrased as "FROM left JOIN right ON lk = rk".
// It is a thin wrapper over CreateModel.
func (e *Engine) TrainJoin(left, right, leftKey, rightKey string, xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	return e.CreateModel(context.Background(), specFor(left, xcols, ycol, opts).withJoin(right, leftKey, rightKey))
}

// TrainJoinContext is TrainJoin with cancellation (see TrainContext).
func (e *Engine) TrainJoinContext(ctx context.Context, left, right, leftKey, rightKey string, xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	return e.CreateModel(ctx, specFor(left, xcols, ycol, opts).withJoin(right, leftKey, rightKey))
}

// TrainJoinSampled implements the paper's second join approach (§2.2),
// for joins of tables too large to precompute in full: each side is first
// reduced by hashed (universe) sampling on the join key with the same hash
// band — which preserves join pairs — the join is computed over the hashed
// samples, a small uniform sample is drawn from the sample-join, and
// models are trained from it. num/denom is the hash-band keep ratio
// (e.g. 1/4 keeps ≈ 25% of join-key values). It is a thin wrapper over
// CreateModel.
func (e *Engine) TrainJoinSampled(left, right, leftKey, rightKey string, num, denom uint64,
	xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	return e.CreateModel(context.Background(), specFor(left, xcols, ycol, opts).withSampledJoin(right, leftKey, rightKey, num, denom))
}

// TrainJoinSampledContext is TrainJoinSampled with cancellation (see
// TrainContext).
func (e *Engine) TrainJoinSampledContext(ctx context.Context, left, right, leftKey, rightKey string, num, denom uint64,
	xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	return e.CreateModel(ctx, specFor(left, xcols, ycol, opts).withSampledJoin(right, leftKey, rightKey, num, denom))
}

// AggregateResult is the answer for one select-list aggregate, e.g.
// "AVG(ss_sales_price)" with its value and per-group answers for GROUP BY.
// It is produced by the physical execution layer (internal/exec).
type AggregateResult = exec.AggregateResult

// Result is the engine's answer to one SQL query.
type Result struct {
	Aggregates []AggregateResult
	// Source reports which path answered: "model" (DBEst models), "sketch"
	// (registered sketch estimators) or "exact" (fallback to the exact QP
	// engine below DBEst).
	Source  string
	Elapsed time.Duration
}

// Query parses, plans and answers one SQL query. If the catalog has models
// for the query's column sets the models answer it; otherwise the query
// falls through to the exact engine over the registered base tables, per
// the architecture of Fig. 1. The whole call serves against one engine
// snapshot (a consistent catalog + tables view), without taking any lock.
// Plans are cached by normalized SQL, so a repeated query shape skips the
// parser and the catalog scan entirely; model-path shapes additionally
// memoize their result per catalog generation — model answers are
// deterministic until a retrain publishes a new generation — so a hot
// cached shape costs one normalization and two atomic loads.
func (e *Engine) Query(sql string) (*Result, error) {
	t0 := time.Now()
	var (
		res *Result
		err error
	)
	if e.plans.enabled() {
		res, err = e.serveNormalized(sqlparse.Normalize(sql), sql)
	} else {
		res, err = e.serveUncached(sql)
	}
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(t0)
	return res, nil
}

// serveUncached answers sql with the plan cache disabled: parse, plan and
// run against one snapshot.
func (e *Engine) serveUncached(sql string) (*Result, error) {
	snap := e.snap.Load()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	p, err := e.planSnap(q, snap)
	if err != nil {
		return nil, err
	}
	return p.runWith(snap)
}

// Run plans and answers a pre-parsed query, bypassing the plan cache. It is
// a thin shim over the physical execution layer: plan once, run once, both
// against one snapshot.
func (e *Engine) Run(q *sqlparse.Query) (*Result, error) {
	t0 := time.Now()
	snap := e.snap.Load()
	p, err := e.planSnap(q, snap)
	if err != nil {
		return nil, err
	}
	res, err := p.runWith(snap)
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(t0)
	return res, nil
}

// modelTable resolves which logical table name the catalog should be
// queried under.
func modelTable(q *sqlparse.Query) string {
	if q.Join != nil {
		return JoinName(q.Table, q.Join.Table)
	}
	return q.Table
}

// TrainNominal builds one model pair per distinct value of the String
// column nominalBy — the paper's nominal categorical support (§2.3). The
// models answer queries of the form
//
//	SELECT AF(ycol) FROM tbl WHERE nominalBy = 'v' AND xcol BETWEEN a AND b
//
// It is a thin wrapper over CreateModel.
func (e *Engine) TrainNominal(tbl, xcol, ycol, nominalBy string, opts *TrainOptions) (*TrainInfo, error) {
	return e.CreateModel(context.Background(), specFor(tbl, []string{xcol}, ycol, opts).withNominal(nominalBy))
}

// TrainNominalContext is TrainNominal with cancellation (see TrainContext).
func (e *Engine) TrainNominalContext(ctx context.Context, tbl, xcol, ycol, nominalBy string, opts *TrainOptions) (*TrainInfo, error) {
	return e.CreateModel(ctx, specFor(tbl, []string{xcol}, ycol, opts).withNominal(nominalBy))
}

// yColFor maps COUNT(*) and density-based aggregates onto the predicate
// column so the catalog lookup can use the density-only fallback.
func yColFor(agg sqlparse.Aggregate, xcol string) string {
	if agg.Column == "*" {
		return xcol
	}
	return agg.Column
}
