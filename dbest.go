// Package dbest is a model-based approximate query processing (AQP) engine:
// a Go implementation of "DBEst: Revisiting Approximate Query Processing
// Engines with Machine Learning Models" (Ma & Triantafillou, SIGMOD 2019).
//
// Instead of retaining data or samples, DBEst trains a pair of machine
// learning models per column set of interest — a kernel density estimator
// D(x) over the range-predicate attribute and a regression model R(x) from
// that attribute to the aggregate attribute — from a small uniform sample,
// then answers COUNT, SUM, AVG, VARIANCE, STDDEV and PERCENTILE queries
// (with range predicates, GROUP BY and joins) purely from the models via
// numerical integration. Samples are discarded after training; the models
// are orders of magnitude smaller and faster to query.
//
// Basic usage:
//
//	eng := dbest.New(nil)
//	eng.RegisterTable(tbl)
//	eng.Train("sales", []string{"date"}, "price", nil)
//	res, err := eng.Query("SELECT AVG(price) FROM sales WHERE date BETWEEN 100 AND 200")
package dbest

import (
	"errors"
	"fmt"
	"hash/maphash"
	"math"
	"strings"
	"sync"
	"time"

	"dbest/internal/catalog"
	"dbest/internal/core"
	"dbest/internal/exact"
	"dbest/internal/sample"
	"dbest/internal/sqlparse"
	"dbest/internal/table"
)

// Table re-exports the columnar table type used to feed the engine.
type Table = table.Table

// NewTable creates an empty named table.
func NewTable(name string) *Table { return table.New(name) }

// LoadCSV loads a table from a CSV file with a header row.
func LoadCSV(name, path string) (*Table, error) { return table.LoadCSV(name, path) }

// TrainOptions configures sampling and model training. The zero value (or
// nil) uses a 10k-row sample, auto-sized boosted trees, and binned KDE.
type TrainOptions struct {
	// SampleSize is the uniform (reservoir) sample size; with GroupBy it is
	// the per-group sample size. Default 10 000.
	SampleSize int
	// GroupBy builds one model pair per value of this Int64 column.
	GroupBy string
	// Scale is the logical rows represented per physical row, for
	// experiments that simulate billion-row tables. Default 1.
	Scale float64
	// Seed makes sampling and training deterministic.
	Seed int64
	// MinGroupModel: groups whose sample is smaller keep raw tuples instead
	// of models (answered exactly). Default 30.
	MinGroupModel int
	// Workers bounds parallel per-group training. 0 = GOMAXPROCS.
	Workers int
	// EnsemblePLR adds a piecewise-linear constituent to the regression
	// ensemble alongside the two boosted-tree models.
	EnsemblePLR bool
	// KDEBins is the density-estimator grid resolution. Default 1024.
	KDEBins int
	// Regressor selects the regression family: "" or "ensemble" (default),
	// or a single constituent "gboost", "xgboost", "plr".
	Regressor string
}

func (o *TrainOptions) toConfig() *core.TrainConfig {
	if o == nil {
		return nil
	}
	return &core.TrainConfig{
		SampleSize:    o.SampleSize,
		GroupBy:       o.GroupBy,
		Scale:         o.Scale,
		Seed:          o.Seed,
		MinGroupModel: o.MinGroupModel,
		Workers:       o.Workers,
		EnsemblePLR:   o.EnsemblePLR,
		Bins:          o.KDEBins,
		Regressor:     o.Regressor,
	}
}

// TrainInfo reports what a Train call built — the state-building overheads
// of the paper's Figs. 4, 12 and 16.
type TrainInfo struct {
	Key        string
	NumModels  int
	ModelBytes int
	SampleRows int
	SampleTime time.Duration
	TrainTime  time.Duration
}

// Options configures the engine.
type Options struct {
	// Workers bounds parallel per-group model evaluation at query time.
	// 0 = GOMAXPROCS; 1 = fully sequential (the paper's single-thread mode).
	Workers int
}

// Engine is the DBEst AQP engine: a model catalog over registered tables
// with an exact query processor underneath (Fig. 1 of the paper).
type Engine struct {
	mu      sync.RWMutex
	tables  map[string]*table.Table
	catalog *catalog.Catalog
	workers int
}

// New creates an engine. opts may be nil.
func New(opts *Options) *Engine {
	w := 0
	if opts != nil {
		w = opts.Workers
	}
	return &Engine{
		tables:  make(map[string]*table.Table),
		catalog: catalog.New(),
		workers: w,
	}
}

// RegisterTable makes tb available for training and exact fallback.
func (e *Engine) RegisterTable(tb *Table) error {
	if tb.Name == "" {
		return errors.New("dbest: table must be named")
	}
	if err := tb.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables[tb.Name] = tb
	return nil
}

// Table returns a registered table, or nil.
func (e *Engine) Table(name string) *Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tables[name]
}

// DropTable removes a registered base table. Models trained from it remain
// in the catalog — DBEst needs only the models to answer queries, which is
// the point (§3: samples and base data can be discarded after training).
func (e *Engine) DropTable(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.tables, name)
}

// ModelKeys lists the catalog keys of all trained model sets.
func (e *Engine) ModelKeys() []string { return e.catalog.Keys() }

// ModelBytes reports the total serialized size of all models — the memory
// footprint of DBEst's query-time state.
func (e *Engine) ModelBytes() int { return e.catalog.TotalBytes() }

// SaveModels / LoadModels persist the model catalog.
func (e *Engine) SaveModels(path string) error { return e.catalog.SaveFile(path) }

// LoadModels loads a catalog saved with SaveModels, replacing the current one.
func (e *Engine) LoadModels(path string) error { return e.catalog.LoadFile(path) }

// Train builds models for AF(ycol) queries with range predicates on xcols
// over the registered table tbl, registers them in the catalog and returns
// build statistics. Pass one x column for univariate predicates, two for
// multivariate; set opts.GroupBy for per-group models.
func (e *Engine) Train(tbl string, xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	tb := e.Table(tbl)
	if tb == nil {
		return nil, fmt.Errorf("dbest: table %q is not registered", tbl)
	}
	ms, err := core.Train(tb, xcols, ycol, opts.toConfig())
	if err != nil {
		return nil, err
	}
	e.catalog.Put(ms)
	return &TrainInfo{
		Key:        ms.Key(),
		NumModels:  ms.NumModels(),
		ModelBytes: ms.Stats.ModelBytes,
		SampleRows: ms.Stats.SampleRows,
		SampleTime: ms.Stats.SampleTime,
		TrainTime:  ms.Stats.TrainTime,
	}, nil
}

// JoinName is the synthetic table name under which models trained over a
// join are registered and queried.
func JoinName(left, right string) string { return left + "_join_" + right }

// TrainJoin implements the paper's first join approach (§2.2): precompute
// the join result, sample it, train models over the sample, and discard
// both the join result and the sample. Only the models are retained. The
// models answer SQL queries phrased as "FROM left JOIN right ON lk = rk".
func (e *Engine) TrainJoin(left, right, leftKey, rightKey string, xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	lt, rt := e.Table(left), e.Table(right)
	if lt == nil || rt == nil {
		return nil, fmt.Errorf("dbest: join tables %q, %q must both be registered", left, right)
	}
	t0 := time.Now()
	joined, err := table.EquiJoin(lt, rt, leftKey, rightKey)
	if err != nil {
		return nil, err
	}
	joinTime := time.Since(t0)
	joined.Name = JoinName(left, right)
	ms, err := core.Train(joined, xcols, ycol, opts.toConfig())
	if err != nil {
		return nil, err
	}
	// The precomputation cost is part of state building, not query time.
	ms.Stats.SampleTime += joinTime
	e.catalog.Put(ms)
	return &TrainInfo{
		Key:        ms.Key(),
		NumModels:  ms.NumModels(),
		ModelBytes: ms.Stats.ModelBytes,
		SampleRows: ms.Stats.SampleRows,
		SampleTime: ms.Stats.SampleTime,
		TrainTime:  ms.Stats.TrainTime,
	}, nil
}

// TrainJoinSampled implements the paper's second join approach (§2.2),
// for joins of tables too large to precompute in full: each side is first
// reduced by hashed (universe) sampling on the join key with the same hash
// band — which preserves join pairs — the join is computed over the hashed
// samples, a small uniform sample is drawn from the sample-join, and
// models are trained from it. num/denom is the hash-band keep ratio
// (e.g. 1/4 keeps ≈ 25% of join-key values).
func (e *Engine) TrainJoinSampled(left, right, leftKey, rightKey string, num, denom uint64,
	xcols []string, ycol string, opts *TrainOptions) (*TrainInfo, error) {
	lt, rt := e.Table(left), e.Table(right)
	if lt == nil || rt == nil {
		return nil, fmt.Errorf("dbest: join tables %q, %q must both be registered", left, right)
	}
	t0 := time.Now()
	seed := maphash.MakeSeed()
	li, err := sample.Hashed(lt, leftKey, num, denom, seed)
	if err != nil {
		return nil, err
	}
	ri, err := sample.Hashed(rt, rightKey, num, denom, seed)
	if err != nil {
		return nil, err
	}
	joined, err := table.EquiJoin(lt.SelectRows(li), rt.SelectRows(ri), leftKey, rightKey)
	if err != nil {
		return nil, err
	}
	prepTime := time.Since(t0)
	joined.Name = JoinName(left, right)

	cfg := opts.toConfig()
	if cfg == nil {
		cfg = &core.TrainConfig{}
	}
	// The hashed samples keep num/denom of the join-key universe, so the
	// sample-join under-counts the true join by denom/num: fold that into
	// the logical scale so COUNT/SUM report full-join magnitudes.
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	cfg.Scale *= float64(denom) / float64(num)
	ms, err := core.Train(joined, xcols, ycol, cfg)
	if err != nil {
		return nil, err
	}
	ms.Stats.SampleTime += prepTime
	e.catalog.Put(ms)
	return &TrainInfo{
		Key:        ms.Key(),
		NumModels:  ms.NumModels(),
		ModelBytes: ms.Stats.ModelBytes,
		SampleRows: ms.Stats.SampleRows,
		SampleTime: ms.Stats.SampleTime,
		TrainTime:  ms.Stats.TrainTime,
	}, nil
}

// AggregateResult is the answer for one select-list aggregate.
type AggregateResult struct {
	Name   string // e.g. "AVG(ss_sales_price)"
	Value  float64
	Groups []core.GroupAnswer // populated for GROUP BY queries
}

// Result is the engine's answer to one SQL query.
type Result struct {
	Aggregates []AggregateResult
	// Source reports which path answered: "model" (DBEst models) or
	// "exact" (fallback to the exact QP engine below DBEst).
	Source  string
	Elapsed time.Duration
}

// Query parses and answers one SQL query. If the catalog has models for the
// query's column sets the models answer it; otherwise the query falls
// through to the exact engine over the registered base tables, per the
// architecture of Fig. 1.
func (e *Engine) Query(sql string) (*Result, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Run(q)
}

// Run answers a pre-parsed query.
func (e *Engine) Run(q *sqlparse.Query) (*Result, error) {
	t0 := time.Now()
	res, err := e.runModels(q)
	if err == nil {
		res.Elapsed = time.Since(t0)
		return res, nil
	}
	if !errors.Is(err, errNoModel) {
		return nil, err
	}
	res, err = e.runExact(q)
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(t0)
	return res, nil
}

var errNoModel = errors.New("dbest: no model can answer the query")

// modelTable resolves which logical table name the catalog should be
// queried under.
func modelTable(q *sqlparse.Query) string {
	if q.Join != nil {
		return JoinName(q.Table, q.Join.Table)
	}
	return q.Table
}

// TrainNominal builds one model pair per distinct value of the String
// column nominalBy — the paper's nominal categorical support (§2.3). The
// models answer queries of the form
//
//	SELECT AF(ycol) FROM tbl WHERE nominalBy = 'v' AND xcol BETWEEN a AND b
func (e *Engine) TrainNominal(tbl, xcol, ycol, nominalBy string, opts *TrainOptions) (*TrainInfo, error) {
	tb := e.Table(tbl)
	if tb == nil {
		return nil, fmt.Errorf("dbest: table %q is not registered", tbl)
	}
	ms, err := core.TrainNominal(tb, xcol, ycol, nominalBy, opts.toConfig())
	if err != nil {
		return nil, err
	}
	e.catalog.Put(ms)
	return &TrainInfo{
		Key:        ms.Key(),
		NumModels:  ms.NumModels(),
		ModelBytes: ms.Stats.ModelBytes,
		SampleRows: ms.Stats.SampleRows,
		SampleTime: ms.Stats.SampleTime,
		TrainTime:  ms.Stats.TrainTime,
	}, nil
}

func (e *Engine) runModels(q *sqlparse.Query) (*Result, error) {
	if len(q.Equals) > 0 {
		return e.runNominal(q)
	}
	tbl := modelTable(q)
	xcols := make([]string, len(q.Where))
	lbs := make([]float64, len(q.Where))
	ubs := make([]float64, len(q.Where))
	for i, p := range q.Where {
		xcols[i] = p.Column
		lbs[i] = p.Lb
		ubs[i] = p.Ub
	}
	res := &Result{Source: "model"}
	for _, agg := range q.Aggregates {
		af, err := exact.ParseAggFunc(agg.Func)
		if err != nil {
			return nil, err
		}
		var ans *core.Answer
		switch {
		case len(xcols) == 0:
			// Predicate-free queries (PERCENTILE a la HIVE, or whole-table
			// aggregates): served by any model set over the aggregate column.
			ms := e.lookupAny(tbl, agg.Column, q.GroupBy)
			if ms == nil {
				return nil, errNoModel
			}
			yIsX := len(ms.XCols) == 1 && (agg.Column == ms.XCols[0] || agg.Column == "*")
			ans, err = ms.EvaluateUni(af, math.Inf(-1), math.Inf(1), yIsX,
				&core.EvalOptions{Workers: e.workers, P: agg.P})
		case len(xcols) == 1:
			ms := e.catalog.Lookup(tbl, xcols, yColFor(agg, xcols[0]), q.GroupBy)
			if ms == nil {
				return nil, errNoModel
			}
			yIsX := agg.Column == xcols[0] || agg.Column == "*"
			ans, err = ms.EvaluateUni(af, lbs[0], ubs[0], yIsX,
				&core.EvalOptions{Workers: e.workers, P: agg.P})
		default:
			ms := e.catalog.Lookup(tbl, xcols, agg.Column, q.GroupBy)
			lb, ub := lbs, ubs
			if ms == nil {
				// Predicate order need not match training order: try the
				// model set's own column order.
				ms, lb, ub = e.lookupPermuted(tbl, xcols, lbs, ubs, agg.Column, q.GroupBy)
			}
			if ms == nil {
				return nil, errNoModel
			}
			ans, err = ms.EvaluateMulti(af, lb, ub)
		}
		if err != nil {
			if errors.Is(err, core.ErrNoSupport) {
				return nil, fmt.Errorf("dbest: %s selects an empty region: %w", agg.Func, err)
			}
			return nil, err
		}
		res.Aggregates = append(res.Aggregates, AggregateResult{
			Name:   agg.Func + "(" + agg.Column + ")",
			Value:  ans.Value,
			Groups: ans.Groups,
		})
	}
	return res, nil
}

// Plan describes how the engine would answer a query, without running it.
type Plan struct {
	// Path is "model", "nominal-model", or "exact".
	Path string
	// ModelKeys lists the catalog keys of the model sets that would serve
	// each aggregate (empty on the exact path).
	ModelKeys []string
	// Reason explains an exact-path decision.
	Reason string
}

// Explain reports the query plan for sql: which trained models would answer
// it, or why it would fall through to the exact engine.
func (e *Engine) Explain(sql string) (*Plan, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if len(q.Equals) > 0 {
		if len(q.Equals) != 1 || len(q.Where) > 1 || q.GroupBy != "" || q.Join != nil {
			return &Plan{Path: "exact", Reason: "nominal predicates support one equality plus at most one range"}, nil
		}
		p := &Plan{Path: "nominal-model"}
		for _, agg := range q.Aggregates {
			lookupX := agg.Column
			if len(q.Where) == 1 {
				lookupX = q.Where[0].Column
			}
			ms := e.catalog.LookupNominal(q.Table, lookupX, yColFor(agg, lookupX), q.Equals[0].Column)
			if ms == nil {
				return &Plan{Path: "exact", Reason: "no nominal model for " + agg.Func + "(" + agg.Column + ")"}, nil
			}
			p.ModelKeys = append(p.ModelKeys, ms.Key())
		}
		return p, nil
	}
	tbl := modelTable(q)
	xcols := make([]string, len(q.Where))
	for i, pr := range q.Where {
		xcols[i] = pr.Column
	}
	p := &Plan{Path: "model"}
	for _, agg := range q.Aggregates {
		var ms *core.ModelSet
		switch {
		case len(xcols) == 0:
			ms = e.lookupAny(tbl, agg.Column, q.GroupBy)
		case len(xcols) == 1:
			ms = e.catalog.Lookup(tbl, xcols, yColFor(agg, xcols[0]), q.GroupBy)
		default:
			ms = e.catalog.Lookup(tbl, xcols, agg.Column, q.GroupBy)
			if ms == nil {
				ms, _, _ = e.lookupPermuted(tbl, xcols, make([]float64, len(xcols)), make([]float64, len(xcols)), agg.Column, q.GroupBy)
			}
		}
		if ms == nil {
			return &Plan{Path: "exact", Reason: "no model for " + agg.Func + "(" + agg.Column + ") on " + tbl}, nil
		}
		p.ModelKeys = append(p.ModelKeys, ms.Key())
	}
	return p, nil
}

// runNominal answers queries with a nominal equality predicate from
// per-value models. Supported shape: one equality on the nominal column
// plus exactly one range predicate (or none, for whole-domain aggregates).
func (e *Engine) runNominal(q *sqlparse.Query) (*Result, error) {
	if len(q.Equals) != 1 || len(q.Where) > 1 || q.GroupBy != "" || q.Join != nil {
		return nil, errNoModel
	}
	eqp := q.Equals[0]
	lb, ub := math.Inf(-1), math.Inf(1)
	xcol := ""
	if len(q.Where) == 1 {
		xcol = q.Where[0].Column
		lb, ub = q.Where[0].Lb, q.Where[0].Ub
	}
	res := &Result{Source: "model"}
	for _, agg := range q.Aggregates {
		af, err := exact.ParseAggFunc(agg.Func)
		if err != nil {
			return nil, err
		}
		lookupX := xcol
		if lookupX == "" {
			lookupX = agg.Column
		}
		ms := e.catalog.LookupNominal(q.Table, lookupX, yColFor(agg, lookupX), eqp.Column)
		if ms == nil {
			return nil, errNoModel
		}
		yIsX := agg.Column == ms.XCols[0] || agg.Column == "*"
		ans, err := ms.EvaluateNominal(af, eqp.Value, lb, ub, yIsX,
			&core.EvalOptions{Workers: e.workers, P: agg.P})
		if err != nil {
			return nil, err
		}
		res.Aggregates = append(res.Aggregates, AggregateResult{
			Name:  agg.Func + "(" + agg.Column + ")",
			Value: ans.Value,
		})
	}
	return res, nil
}

// yColFor maps COUNT(*) and density-based aggregates onto the predicate
// column so the catalog lookup can use the density-only fallback.
func yColFor(agg sqlparse.Aggregate, xcol string) string {
	if agg.Column == "*" {
		return xcol
	}
	return agg.Column
}

// lookupAny finds any univariate model set on tbl whose x or y column
// matches col (used by predicate-free queries).
func (e *Engine) lookupAny(tbl, col, groupBy string) *core.ModelSet {
	for _, key := range e.catalog.Keys() {
		ms := e.catalog.Get(key)
		if ms == nil || ms.Table != tbl || ms.GroupBy != groupBy || len(ms.XCols) != 1 {
			continue
		}
		if ms.XCols[0] == col || ms.YCol == col || col == "*" {
			return ms
		}
	}
	return nil
}

// lookupPermuted retries a multivariate lookup with predicate columns
// reordered to the training order.
func (e *Engine) lookupPermuted(tbl string, xcols []string, lbs, ubs []float64, ycol, groupBy string) (*core.ModelSet, []float64, []float64) {
	for _, key := range e.catalog.Keys() {
		ms := e.catalog.Get(key)
		if ms == nil || ms.Table != tbl || ms.GroupBy != groupBy || ms.YCol != ycol {
			continue
		}
		if len(ms.XCols) != len(xcols) {
			continue
		}
		pos := make(map[string]int, len(xcols))
		for i, c := range xcols {
			pos[c] = i
		}
		lb := make([]float64, len(xcols))
		ub := make([]float64, len(xcols))
		ok := true
		for j, c := range ms.XCols {
			i, found := pos[c]
			if !found {
				ok = false
				break
			}
			lb[j], ub[j] = lbs[i], ubs[i]
		}
		if ok {
			return ms, lb, ub
		}
	}
	return nil, nil, nil
}

// runExact answers q with the exact engine over registered base tables —
// the "Exact QP" path of Fig. 1.
func (e *Engine) runExact(q *sqlparse.Query) (*Result, error) {
	tb := e.Table(q.Table)
	if tb == nil {
		return nil, fmt.Errorf("dbest: no model for query and table %q is not registered", q.Table)
	}
	if q.Join != nil {
		rt := e.Table(q.Join.Table)
		if rt == nil {
			return nil, fmt.Errorf("dbest: no model for query and join table %q is not registered", q.Join.Table)
		}
		joined, err := table.EquiJoin(tb, rt, stripQualifier(q.Join.LeftKey), stripQualifier(q.Join.RightKey))
		if err != nil {
			return nil, err
		}
		tb = joined
	}
	res := &Result{Source: "exact"}
	for _, agg := range q.Aggregates {
		af, err := exact.ParseAggFunc(agg.Func)
		if err != nil {
			return nil, err
		}
		req := exact.Request{AF: af, Y: agg.Column, Group: q.GroupBy, P: agg.P}
		if agg.Column == "*" {
			if len(q.Where) > 0 {
				req.Y = q.Where[0].Column
			} else {
				// COUNT(*) needs some numeric column to stream through.
				for _, c := range tb.Columns {
					if c.Type != table.String {
						req.Y = c.Name
						break
					}
				}
			}
		}
		for _, p := range q.Where {
			req.Predicates = append(req.Predicates, exact.Range{Column: p.Column, Lb: p.Lb, Ub: p.Ub})
		}
		for _, eq := range q.Equals {
			req.Equals = append(req.Equals, exact.Equal{Column: eq.Column, Value: eq.Value})
		}
		r, err := exact.Query(tb, req)
		if err != nil {
			return nil, err
		}
		ar := AggregateResult{Name: agg.Func + "(" + agg.Column + ")", Value: r.Value}
		if r.Groups != nil {
			for g, v := range r.Groups {
				ar.Groups = append(ar.Groups, core.GroupAnswer{Group: g, Value: v})
			}
			sortGroupAnswers(ar.Groups)
		}
		res.Aggregates = append(res.Aggregates, ar)
	}
	return res, nil
}

func stripQualifier(col string) string {
	if i := strings.LastIndexByte(col, '.'); i >= 0 {
		return col[i+1:]
	}
	return col
}

func sortGroupAnswers(gs []core.GroupAnswer) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && gs[j].Group < gs[j-1].Group; j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}
