// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment from
// internal/experiments end-to-end (data generation is cached across
// benchmarks; training and query evaluation are measured). Run with
//
//	go test -bench=. -benchmem
//
// The first iteration of each benchmark prints the regenerated figure so a
// bench run doubles as a report; cmd/dbest-bench produces the same output
// at configurable scale.
package dbest_test

import (
	"os"
	"sync"
	"testing"

	"dbest/internal/experiments"
)

// benchCfg keeps each figure's regeneration in the seconds range. Use
// cmd/dbest-bench for paper-scale runs.
var benchCfg = experiments.Config{
	Rows:        120_000,
	SampleSizes: []int{5_000, 20_000},
	PerAF:       10,
	Seed:        1,
}

var (
	printedMu sync.Mutex
	printed   = map[string]bool{}
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	if testing.Short() {
		// The figure suite regenerates whole experiments per iteration;
		// CI's bench smoke leg (-benchtime=1x -short) skips it and keeps
		// the engine/operator micro-benchmarks.
		b.Skip("figure regeneration skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		fr, err := experiments.Run(id, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		printedMu.Lock()
		if !printed[id] {
			printed[id] = true
			fr.Print(os.Stdout)
		}
		printedMu.Unlock()
	}
}

func BenchmarkFig2SampleSizeError(b *testing.B)     { benchFigure(b, "fig2") }
func BenchmarkFig3SampleSizeTime(b *testing.B)      { benchFigure(b, "fig3") }
func BenchmarkFig4Overheads(b *testing.B)           { benchFigure(b, "fig4") }
func BenchmarkFig5RangeError(b *testing.B)          { benchFigure(b, "fig5") }
func BenchmarkFig6RangeTime(b *testing.B)           { benchFigure(b, "fig6") }
func BenchmarkFig7CCPPError10k(b *testing.B)        { benchFigure(b, "fig7") }
func BenchmarkFig8CCPPError100k(b *testing.B)       { benchFigure(b, "fig8") }
func BenchmarkFig9CCPPTime(b *testing.B)            { benchFigure(b, "fig9") }
func BenchmarkFig10TPCDSError(b *testing.B)         { benchFigure(b, "fig10") }
func BenchmarkFig11TPCDSTime(b *testing.B)          { benchFigure(b, "fig11") }
func BenchmarkFig12TPCDSOverheads(b *testing.B)     { benchFigure(b, "fig12") }
func BenchmarkFig13BeijingError(b *testing.B)       { benchFigure(b, "fig13") }
func BenchmarkFig14BeijingTime(b *testing.B)        { benchFigure(b, "fig14") }
func BenchmarkFig15GroupBy(b *testing.B)            { benchFigure(b, "fig15") }
func BenchmarkFig16GroupByOverheads(b *testing.B)   { benchFigure(b, "fig16") }
func BenchmarkFig17GroupHistogram(b *testing.B)     { benchFigure(b, "fig17") }
func BenchmarkFig18ParallelGroupBy(b *testing.B)    { benchFigure(b, "fig18") }
func BenchmarkFig19Throughput(b *testing.B)         { benchFigure(b, "fig19") }
func BenchmarkFig20JoinError(b *testing.B)          { benchFigure(b, "fig20") }
func BenchmarkFig21JoinPerf(b *testing.B)           { benchFigure(b, "fig21") }
func BenchmarkFig23aThroughputTPCDS(b *testing.B)   { benchFigure(b, "fig23a") }
func BenchmarkFig23bThroughputBeijing(b *testing.B) { benchFigure(b, "fig23b") }
func BenchmarkFig25MonetDBGroupBy(b *testing.B)     { benchFigure(b, "fig25") }
func BenchmarkFig26MonetDBCCPP(b *testing.B)        { benchFigure(b, "fig26") }
func BenchmarkFig27SkewedJoin(b *testing.B)         { benchFigure(b, "fig27") }
func BenchmarkFig28SkewedJoinTime(b *testing.B)     { benchFigure(b, "fig28") }
func BenchmarkFig29ComplexQueries(b *testing.B)     { benchFigure(b, "fig29") }
func BenchmarkModelBundles(b *testing.B)            { benchFigure(b, "bundles") }

// Micro-benchmarks of the engine's query path (no figure; these quantify
// the per-query costs the paper's response-time claims rest on).

func BenchmarkQueryAvg(b *testing.B) {
	benchQuery(b, "SELECT AVG(ss_wholesale_cost) FROM store_sales WHERE ss_list_price BETWEEN 40 AND 60")
}
func BenchmarkQueryCount(b *testing.B) {
	benchQuery(b, "SELECT COUNT(ss_wholesale_cost) FROM store_sales WHERE ss_list_price BETWEEN 40 AND 60")
}
func BenchmarkQuerySum(b *testing.B) {
	benchQuery(b, "SELECT SUM(ss_wholesale_cost) FROM store_sales WHERE ss_list_price BETWEEN 40 AND 60")
}
