module dbest

go 1.24
