package dbest_test

import (
	"fmt"
	"log"

	"dbest"
)

// ExampleEngine demonstrates the train-then-query workflow on a tiny
// deterministic table: y is exactly 2x, so the model's AVG over a range is
// predictable enough to print.
func ExampleEngine() {
	// A toy table: x = 0..9999, y = 2x.
	n := 10000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2 * float64(i)
	}
	tb := dbest.NewTable("toy")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)

	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Train("toy", []string{"x"}, "y",
		&dbest.TrainOptions{SampleSize: 4000, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	res, err := eng.Query("SELECT AVG(y) FROM toy WHERE x BETWEEN 4000 AND 6000")
	if err != nil {
		log.Fatal(err)
	}
	// E[y | 4000 <= x <= 6000] = 10000; the model answer is within ~1%.
	v := res.Aggregates[0].Value
	fmt.Println(res.Source, v > 9800 && v < 10200)
	// Output: model true
}

// ExampleEngine_Explain shows plan introspection: the engine reports which
// trained model would answer a query before running it.
func ExampleEngine_Explain() {
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i % 7)
	}
	tb := dbest.NewTable("t")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Train("t", []string{"x"}, "y",
		&dbest.TrainOptions{SampleSize: 500, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	p, err := eng.Explain("SELECT SUM(y) FROM t WHERE x BETWEEN 10 AND 90")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Path, p.ModelKeys[0])
	p2, err := eng.Explain("SELECT SUM(z) FROM t WHERE x BETWEEN 10 AND 90")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p2.Path)
	// Output:
	// model t|x|y|
	// exact
}

// ExampleSparkline renders a quick terminal visualization.
func ExampleSparkline() {
	fmt.Println(dbest.Sparkline([]float64{1, 2, 4, 8, 4, 2, 1}))
	// Output: ▁▂▄█▄▂▁
}
