package dbest_test

import (
	"fmt"
	"testing"

	"dbest"
	"dbest/internal/datagen"
)

// BenchmarkQuerySharded vs BenchmarkQueryUnsharded: the acceptance-criteria
// pair. Both engines get the same total sample budget (16k rows of state)
// over the same 60k-row table — one 16k-sample model vs sixteen 1k-sample
// shard models — and answer the same narrow-range workload (windows ≤ 1/16
// of the ss_sold_date_sk domain). The sharded ensemble prunes to 1–2
// shards per query and each shard's regressor is auto-sized smaller, so
// the integrand is cheaper exactly where narrow queries spend their time.

const benchShardTotalSample = 16000

func benchSalesTable() *dbest.Table {
	return datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 60000, Seed: 7})
}

// benchNarrowSQLs is the shared workload: 8 distinct ~40-day windows
// (domain 0..1823, so each is ~1/45 of it — well under 1/16).
func benchNarrowSQLs() []string {
	sqls := make([]string, 8)
	for i := range sqls {
		lo := 100 + 200*i
		sqls[i] = fmt.Sprintf(
			"SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN %d AND %d",
			lo, lo+40)
	}
	return sqls
}

func runNarrowWorkload(b *testing.B, eng *dbest.Engine) {
	b.Helper()
	sqls := benchNarrowSQLs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Query(sqls[i%len(sqls)])
		if err != nil {
			b.Fatal(err)
		}
		if res.Source != "model" {
			b.Fatalf("source = %q, want model", res.Source)
		}
	}
}

func BenchmarkQueryUnsharded(b *testing.B) {
	eng := dbest.New(nil)
	if err := eng.RegisterTable(benchSalesTable()); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price",
		&dbest.TrainOptions{SampleSize: benchShardTotalSample, Seed: 7}); err != nil {
		b.Fatal(err)
	}
	runNarrowWorkload(b, eng)
}

func BenchmarkQuerySharded(b *testing.B) {
	const k = 16
	eng := dbest.New(nil)
	if err := eng.RegisterTable(benchSalesTable()); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.TrainSharded("store_sales", "ss_sold_date_sk", "ss_sales_price", k,
		&dbest.TrainOptions{SampleSize: benchShardTotalSample / k, Seed: 7}); err != nil {
		b.Fatal(err)
	}
	runNarrowWorkload(b, eng)
}
