package dbest_test

import (
	"fmt"
	"strings"
	"testing"

	"dbest"
	"dbest/internal/datagen"
	"dbest/internal/exact"
)

// Error-budget router tests: a WITHIN <p>% query must serve from the
// models when the predicted relative error fits the budget, fall through
// to the exact scan when it doesn't (or when the bounds are unknown), and
// learn from each fallback's model-vs-exact ground truth.

// TestWithinServesHealthyModel: a wide-range COUNT has a tiny predicted
// error (the binomial law vanishes as coverage approaches the full
// domain), so a 2% budget is served from the model and counted as a hit.
func TestWithinServesHealthyModel(t *testing.T) {
	eng, tb := newSalesEngine(t, 50000)
	res, err := eng.Query(
		"SELECT COUNT(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 0 AND 1823 WITHIN 2%")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q, want model (healthy model within budget)", res.Source)
	}
	a := res.Aggregates[0]
	if a.PredRelErr <= 0 || a.PredRelErr > 0.02 {
		t.Fatalf("PredRelErr = %v, want in (0, 0.02]", a.PredRelErr)
	}
	want := exactAnswer(t, tb, exact.Count, "ss_sales_price", "ss_sold_date_sk", 0, 1823)
	if re := relErr(a.Value, want); re > 0.02 {
		t.Fatalf("served answer missed its own budget: rel err %v (got %v, want %v)", re, a.Value, want)
	}
	st := eng.RouterStats()
	if st.ModelHits != 1 || st.ExactFallbacks != 0 {
		t.Fatalf("RouterStats = %+v, want 1 hit / 0 fallbacks", st)
	}
}

// TestWithinFallsBackToExact: a budget deliberately set below the model's
// own predicted error must fall through to the exact scan — the answer is
// exact, the fallback counter moves, and the ground truth feeds the
// calibration ring.
func TestWithinFallsBackToExact(t *testing.T) {
	eng, tb := newSalesEngine(t, 50000)
	base := "SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 140"
	probe, err := eng.Query(base)
	if err != nil {
		t.Fatal(err)
	}
	pred := probe.Aggregates[0].PredRelErr
	if pred <= 0 {
		t.Fatalf("probe PredRelErr = %v, want > 0", pred)
	}

	res, err := eng.Query(fmt.Sprintf("%s WITHIN %g%%", base, pred*100/2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "exact" {
		t.Fatalf("source = %q, want exact (budget below predicted error)", res.Source)
	}
	want := exactAnswer(t, tb, exact.Avg, "ss_sales_price", "ss_sold_date_sk", 100, 140)
	if got := res.Aggregates[0].Value; got != want {
		t.Fatalf("fallback answer = %v, want exact %v", got, want)
	}
	st := eng.RouterStats()
	if st.ExactFallbacks != 1 {
		t.Fatalf("ExactFallbacks = %d, want 1", st.ExactFallbacks)
	}
	if st.Observations == 0 || st.TrackedModels != 1 {
		t.Fatalf("RouterStats = %+v, want the fallback's ground truth recorded", st)
	}
}

// TestWithinCalibrationLearning: when a model over-predicts its error,
// each fallback observes an observed/predicted ratio below 1 and the
// calibration factor drifts down — so a budget between the observed and
// predicted error is refused at first and served from the model once the
// router has learned the model is better than it claims.
func TestWithinCalibrationLearning(t *testing.T) {
	eng, tb := newSalesEngine(t, 50000)
	base := "SELECT COUNT(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 200 AND 900"
	probe, err := eng.Query(base)
	if err != nil {
		t.Fatal(err)
	}
	pred := probe.Aggregates[0].PredRelErr
	want := exactAnswer(t, tb, exact.Count, "ss_sales_price", "ss_sold_date_sk", 200, 900)
	obs := relErr(probe.Aggregates[0].Value, want)
	// The budget sits strictly between observed and predicted error, with
	// headroom on both sides so the learned factor (>= the 0.25 clamp) can
	// admit it. The seed data satisfies this by a wide margin; if it ever
	// stops to, the harness says so instead of silently passing.
	tol := pred / 2
	if m := obs * 1.25; m > tol {
		tol = m
	}
	if tol >= pred {
		t.Skipf("model under-predicts its error here (obs %v >= pred %v); no room to learn", obs, pred)
	}

	sql := fmt.Sprintf("%s WITHIN %g%%", base, tol*100)
	first, err := eng.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != "exact" {
		t.Fatalf("uncalibrated source = %q, want exact (tol %v < pred %v)", first.Source, tol, pred)
	}

	served := false
	for i := 0; i < 40 && !served; i++ {
		res, err := eng.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		served = res.Source == "model"
	}
	if !served {
		t.Fatalf("router never learned to serve tol %v (pred %v, obs %v): %+v",
			tol, pred, obs, eng.RouterStats())
	}
	st := eng.RouterStats()
	if st.ModelHits == 0 || st.ExactFallbacks == 0 || st.Observations == 0 {
		t.Fatalf("RouterStats = %+v, want hits, fallbacks and observations all > 0", st)
	}
}

// TestWithinUnknownBoundsFallsBack: multivariate answers carry no error
// bounds (PredRelErr == 0), and a budget nothing backs must never be
// served from the model — and must not feed the calibration ring.
func TestWithinUnknownBoundsFallsBack(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 30000, Seed: 5})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk", "ss_wholesale_cost"}, "ss_sales_price",
		&dbest.TrainOptions{SampleSize: 5000, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	sql := `SELECT AVG(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 100 AND 900 AND ss_wholesale_cost BETWEEN 5 AND 60 WITHIN 50%`
	res, err := eng.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "exact" {
		t.Fatalf("source = %q, want exact (unknown bounds never fit a budget)", res.Source)
	}
	st := eng.RouterStats()
	if st.ExactFallbacks != 1 {
		t.Fatalf("ExactFallbacks = %d, want 1", st.ExactFallbacks)
	}
	if st.Observations != 0 {
		t.Fatalf("Observations = %d, want 0 (no predicted error to calibrate against)", st.Observations)
	}
}

// TestWithinIgnoredOffModelPath: WITHIN on a query the planner routes to
// the exact scan anyway is a no-op — the router only arbitrates model-path
// plans, so its counters stay untouched.
func TestWithinIgnoredOffModelPath(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	res, err := eng.Query(
		"SELECT AVG(ss_quantity) FROM store_sales WHERE ss_wholesale_cost BETWEEN 5 AND 10 WITHIN 5%")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "exact" {
		t.Fatalf("source = %q, want exact (unmodeled column)", res.Source)
	}
	st := eng.RouterStats()
	if st.ModelHits != 0 || st.ExactFallbacks != 0 {
		t.Fatalf("RouterStats = %+v, want untouched off the model path", st)
	}
}

// TestWithinBatchNotMemoized: tolerance-routed answers must not be
// memoized into the per-generation result cache — the routing decision
// depends on live calibration state, so a later batch (or Query) hitting
// the same shape must re-run the router, not replay a cached verdict.
// (Duplicates inside one batch still share a single execution: that is
// shape dedup, and all copies of the shape get the same routed answer.)
func TestWithinBatchNotMemoized(t *testing.T) {
	eng, _ := newSalesEngine(t, 50000)
	sql := "SELECT COUNT(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 0 AND 1823 WITHIN 2%"
	for round := 1; round <= 3; round++ {
		got := eng.QueryBatch([]string{sql, sql})
		for i, br := range got {
			if br.Err != nil {
				t.Fatalf("round %d batch[%d]: %v", round, i, br.Err)
			}
			if br.Result.Source != "model" {
				t.Fatalf("round %d batch[%d] source = %q, want model", round, i, br.Result.Source)
			}
		}
		st := eng.RouterStats()
		if n := st.ModelHits + st.ExactFallbacks; n != uint64(round) {
			t.Fatalf("after round %d: %d routed queries, want %d (tolerance answers must not be memoized)",
				round, n, round)
		}
	}
}

// TestWithinParseErrors: malformed WITHIN clauses must be rejected at
// parse time, not silently dropped.
func TestWithinParseErrors(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	for _, sql := range []string{
		"SELECT COUNT(ss_sales_price) FROM store_sales WITHIN 2",    // missing %
		"SELECT COUNT(ss_sales_price) FROM store_sales WITHIN 0%",   // zero budget
		"SELECT COUNT(ss_sales_price) FROM store_sales WITHIN 101%", // > 100
	} {
		if _, err := eng.Query(sql); err == nil || !strings.Contains(err.Error(), "WITHIN") &&
			!strings.Contains(err.Error(), "expected") {
			t.Errorf("%q: err = %v, want a WITHIN parse error", sql, err)
		}
	}
}
