package dbest_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dbest"
	"dbest/internal/datagen"
	"dbest/internal/exact"
	"dbest/internal/table"
)

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// newSalesEngine builds an engine over a small TPC-DS-like table with a
// trained model on [ss_sold_date_sk → ss_sales_price].
func newSalesEngine(t *testing.T, rows int) (*dbest.Engine, *dbest.Table) {
	t.Helper()
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: rows, Seed: 1})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price",
		&dbest.TrainOptions{SampleSize: 5000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return eng, tb
}

func exactAnswer(t *testing.T, tb *dbest.Table, af exact.AggFunc, y, x string, lb, ub float64) float64 {
	t.Helper()
	r, err := exact.Query(tb, exact.Request{AF: af, Y: y,
		Predicates: []exact.Range{{Column: x, Lb: lb, Ub: ub}}})
	if err != nil {
		t.Fatal(err)
	}
	return r.Value
}

func TestRegisterTableValidation(t *testing.T) {
	eng := dbest.New(nil)
	if err := eng.RegisterTable(dbest.NewTable("")); err == nil {
		t.Fatal("want error for unnamed table")
	}
	bad := dbest.NewTable("bad")
	bad.AddFloatColumn("a", []float64{1, 2})
	bad.AddFloatColumn("b", []float64{1})
	if err := eng.RegisterTable(bad); err == nil {
		t.Fatal("want error for ragged table")
	}
}

func TestTrainUnknownTable(t *testing.T) {
	eng := dbest.New(nil)
	if _, err := eng.Train("ghost", []string{"x"}, "y", nil); err == nil {
		t.Fatal("want error for unregistered table")
	}
}

func TestQueryAnsweredByModel(t *testing.T) {
	eng, tb := newSalesEngine(t, 50000)
	res, err := eng.Query(`SELECT AVG(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 200 AND 600`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q, want model", res.Source)
	}
	want := exactAnswer(t, tb, exact.Avg, "ss_sales_price", "ss_sold_date_sk", 200, 600)
	if re := relErr(res.Aggregates[0].Value, want); re > 0.05 {
		t.Fatalf("AVG: got %v, want %v (rel err %v)", res.Aggregates[0].Value, want, re)
	}
	if res.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
	if res.Aggregates[0].Name != "AVG(ss_sales_price)" {
		t.Fatalf("aggregate name = %q", res.Aggregates[0].Name)
	}
}

func TestQueryMultipleAggregates(t *testing.T) {
	eng, tb := newSalesEngine(t, 50000)
	res, err := eng.Query(`SELECT COUNT(ss_sales_price), SUM(ss_sales_price), AVG(ss_sales_price)
		FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 900`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aggregates) != 3 {
		t.Fatalf("aggregates = %d", len(res.Aggregates))
	}
	for i, af := range []exact.AggFunc{exact.Count, exact.Sum, exact.Avg} {
		want := exactAnswer(t, tb, af, "ss_sales_price", "ss_sold_date_sk", 100, 900)
		if re := relErr(res.Aggregates[i].Value, want); re > 0.08 {
			t.Errorf("%v: got %v, want %v (rel err %v)", af, res.Aggregates[i].Value, want, re)
		}
	}
}

func TestQueryCountStar(t *testing.T) {
	eng, tb := newSalesEngine(t, 30000)
	res, err := eng.Query(`SELECT COUNT(*) FROM store_sales WHERE ss_sold_date_sk BETWEEN 300 AND 700`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q", res.Source)
	}
	want := exactAnswer(t, tb, exact.Count, "ss_sales_price", "ss_sold_date_sk", 300, 700)
	if re := relErr(res.Aggregates[0].Value, want); re > 0.05 {
		t.Fatalf("COUNT(*): rel err %v", re)
	}
}

func TestQueryFallsBackToExact(t *testing.T) {
	eng, tb := newSalesEngine(t, 20000)
	// No model exists for ss_quantity → must fall back and be exact.
	res, err := eng.Query(`SELECT AVG(ss_quantity) FROM store_sales WHERE ss_wholesale_cost BETWEEN 10 AND 30`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "exact" {
		t.Fatalf("source = %q, want exact", res.Source)
	}
	want := exactAnswer(t, tb, exact.Avg, "ss_quantity", "ss_wholesale_cost", 10, 30)
	if res.Aggregates[0].Value != want {
		t.Fatalf("exact fallback: got %v, want %v", res.Aggregates[0].Value, want)
	}
}

func TestQueryUnknownTable(t *testing.T) {
	eng := dbest.New(nil)
	if _, err := eng.Query("SELECT AVG(y) FROM ghost WHERE x BETWEEN 0 AND 1"); err == nil {
		t.Fatal("want error for unknown table with no model")
	}
}

func TestQueryBadSQL(t *testing.T) {
	eng := dbest.New(nil)
	if _, err := eng.Query("SELECT FROM"); err == nil {
		t.Fatal("want parse error")
	}
}

func TestGroupByQuery(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 60000, Stores: 10, Seed: 2})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	info, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price",
		&dbest.TrainOptions{SampleSize: 3000, Seed: 3, GroupBy: "ss_store_sk"})
	if err != nil {
		t.Fatal(err)
	}
	if info.NumModels != 10 {
		t.Fatalf("models = %d, want 10", info.NumModels)
	}
	res, err := eng.Query(`SELECT ss_store_sk, SUM(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 100 AND 1500 GROUP BY ss_store_sk`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q", res.Source)
	}
	groups := res.Aggregates[0].Groups
	if len(groups) != 10 {
		t.Fatalf("groups = %d, want 10", len(groups))
	}
	want, err := exact.Query(tb, exact.Request{AF: exact.Sum, Y: "ss_sales_price",
		Group:      "ss_store_sk",
		Predicates: []exact.Range{{Column: "ss_sold_date_sk", Lb: 100, Ub: 1500}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		if re := relErr(g.Value, want.Groups[g.Group]); re > 0.2 {
			t.Errorf("group %d: rel err %v", g.Group, re)
		}
	}
}

func TestJoinQueryViaModels(t *testing.T) {
	sales := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 60000, Stores: 20, Seed: 4})
	stores := datagen.Store(20, 4)
	eng := dbest.New(nil)
	if err := eng.RegisterTable(sales); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterTable(stores); err != nil {
		t.Fatal(err)
	}
	info, err := eng.TrainJoin("store_sales", "store", "ss_store_sk", "s_store_sk",
		[]string{"s_number_of_employees"}, "ss_net_profit",
		&dbest.TrainOptions{SampleSize: 8000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.Key, dbest.JoinName("store_sales", "store")) {
		t.Fatalf("key = %q", info.Key)
	}
	res, err := eng.Query(`SELECT AVG(ss_net_profit) FROM store_sales JOIN store
		ON ss_store_sk = s_store_sk
		WHERE s_number_of_employees BETWEEN 210 AND 280`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q, want model (join models trained)", res.Source)
	}
	joined, err := table.EquiJoin(sales, stores, "ss_store_sk", "s_store_sk")
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Query(joined, exact.Request{AF: exact.Avg, Y: "ss_net_profit",
		Predicates: []exact.Range{{Column: "s_number_of_employees", Lb: 210, Ub: 280}}})
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(res.Aggregates[0].Value, want.Value); re > 0.25 {
		t.Fatalf("join AVG: got %v, want %v (rel err %v)", res.Aggregates[0].Value, want.Value, re)
	}
}

func TestJoinQueryExactFallback(t *testing.T) {
	sales := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 5000, Stores: 5, Seed: 6})
	stores := datagen.Store(5, 6)
	eng := dbest.New(nil)
	_ = eng.RegisterTable(sales)
	_ = eng.RegisterTable(stores)
	res, err := eng.Query(`SELECT COUNT(ss_net_profit) FROM store_sales JOIN store
		ON ss_store_sk = s_store_sk WHERE s_number_of_employees BETWEEN 200 AND 300`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "exact" {
		t.Fatalf("source = %q, want exact", res.Source)
	}
	if res.Aggregates[0].Value != 5000 {
		t.Fatalf("join COUNT = %v, want 5000 (all employees in range)", res.Aggregates[0].Value)
	}
}

func TestMultivariateQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 30000
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	for i := range x1 {
		x1[i] = rng.Float64() * 10
		x2[i] = rng.Float64() * 10
		y[i] = x1[i] + 2*x2[i] + rng.NormFloat64()*0.3
	}
	tb := dbest.NewTable("mv")
	tb.AddFloatColumn("x1", x1)
	tb.AddFloatColumn("x2", x2)
	tb.AddFloatColumn("y", y)
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("mv", []string{"x1", "x2"}, "y",
		&dbest.TrainOptions{SampleSize: 4000, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(`SELECT AVG(y) FROM mv WHERE x1 BETWEEN 2 AND 8 AND x2 BETWEEN 3 AND 9`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q", res.Source)
	}
	want, _ := exact.Query(tb, exact.Request{AF: exact.Avg, Y: "y", Predicates: []exact.Range{
		{Column: "x1", Lb: 2, Ub: 8}, {Column: "x2", Lb: 3, Ub: 9}}})
	if re := relErr(res.Aggregates[0].Value, want.Value); re > 0.1 {
		t.Fatalf("multivariate AVG rel err = %v", re)
	}
	// Reversed predicate order must also hit the model.
	res2, err := eng.Query(`SELECT AVG(y) FROM mv WHERE x2 BETWEEN 3 AND 9 AND x1 BETWEEN 2 AND 8`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source != "model" {
		t.Fatalf("permuted predicates: source = %q", res2.Source)
	}
	if math.Abs(res2.Aggregates[0].Value-res.Aggregates[0].Value) > 1e-9 {
		t.Fatal("permuted predicates must give the same answer")
	}
}

func TestPercentileNoPredicate(t *testing.T) {
	eng, tb := newSalesEngine(t, 40000)
	res, err := eng.Query(`SELECT PERCENTILE(ss_sold_date_sk, 0.5) FROM store_sales`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q", res.Source)
	}
	want, err := exact.Query(tb, exact.Request{AF: exact.Percentile, Y: "ss_sold_date_sk", P: 0.5,
		Predicates: []exact.Range{{Column: "ss_sold_date_sk", Lb: math.Inf(-1), Ub: math.Inf(1)}}})
	if err != nil {
		t.Fatal(err)
	}
	// Date domain is ~1823 wide; accept 2% of domain.
	if math.Abs(res.Aggregates[0].Value-want.Value) > 40 {
		t.Fatalf("median: got %v, want %v", res.Aggregates[0].Value, want.Value)
	}
}

func TestDensityBasedVarianceQuery(t *testing.T) {
	eng, tb := newSalesEngine(t, 40000)
	// VARIANCE over the predicate column itself — density-based (Eq. 2).
	res, err := eng.Query(`SELECT VARIANCE(ss_sold_date_sk) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 100 AND 1700`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q", res.Source)
	}
	want := exactAnswer(t, tb, exact.Variance, "ss_sold_date_sk", "ss_sold_date_sk", 100, 1700)
	if re := relErr(res.Aggregates[0].Value, want); re > 0.1 {
		t.Fatalf("VARIANCE_x rel err = %v", re)
	}
}

func TestDropTableModelsSurvive(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	eng.DropTable("store_sales")
	// Model-served queries still work with the base table gone — DBEst's
	// defining property.
	res, err := eng.Query(`SELECT AVG(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 200 AND 900`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q", res.Source)
	}
	// But fallback queries now fail.
	if _, err := eng.Query(`SELECT AVG(ss_quantity) FROM store_sales
		WHERE ss_quantity BETWEEN 0 AND 10`); err == nil {
		t.Fatal("fallback should fail once the base table is dropped")
	}
}

func TestSaveLoadModels(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	path := t.TempDir() + "/models.gob"
	if err := eng.SaveModels(path); err != nil {
		t.Fatal(err)
	}
	eng2 := dbest.New(nil)
	if err := eng2.LoadModels(path); err != nil {
		t.Fatal(err)
	}
	if len(eng2.ModelKeys()) != 1 {
		t.Fatalf("keys = %v", eng2.ModelKeys())
	}
	res, err := eng2.Query(`SELECT AVG(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 200 AND 900`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" {
		t.Fatalf("source = %q", res.Source)
	}
	if eng2.ModelBytes() <= 0 {
		t.Fatal("ModelBytes must be positive")
	}
}

func TestScaledLogicalTable(t *testing.T) {
	// A 20k-row physical table trained with Scale 1e5 behaves like a
	// 2-billion-row logical table for COUNT.
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 20000, Seed: 9})
	eng := dbest.New(nil)
	_ = eng.RegisterTable(tb)
	if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price",
		&dbest.TrainOptions{SampleSize: 5000, Seed: 9, Scale: 1e5}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(`SELECT COUNT(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 0 AND 2000`)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(res.Aggregates[0].Value, 2e9); re > 0.02 {
		t.Fatalf("scaled COUNT = %v, want ≈ 2e9", res.Aggregates[0].Value)
	}
}
