package dbest

import (
	"errors"
	"fmt"

	"dbest/internal/core"
	"dbest/internal/ingest"
	"dbest/internal/table"
)

// Streaming ingestion (package internal/ingest): the engine's train-once
// pipeline becomes a lifecycle — rows arrive via Append, per-model
// staleness accrues in a ledger, a background refresher retrains stale
// models, and the catalog generation bump makes the plan cache drop plans
// bound to the replaced models. The query path is never blocked: Append
// swaps in a copy-on-write table snapshot and retrains swap whole model
// sets, so concurrent readers always see a consistent state.

// RowError reports why one row of an Append batch was rejected. Rows fail
// individually; the rest of the batch is still appended.
type RowError struct {
	Row int    `json:"row"`
	Err string `json:"error"`
}

// AppendResult summarizes one Append batch.
type AppendResult struct {
	Appended int        // rows appended
	Rejected int        // rows rejected (schema mismatch)
	Errors   []RowError // one entry per rejected row, in input order
	NumRows  int        // table row count after the append
}

// Append appends a batch of rows to the registered table tbl, with values
// in column order (see Table.AppendRow for the accepted types). Rows that
// fail schema validation are rejected individually and reported in the
// result; valid rows are appended atomically from the point of view of
// concurrent queries, which keep scanning the pre-append snapshot until
// the new one is swapped in. Every appended row feeds the staleness ledger
// of the models trained over tbl.
func (e *Engine) Append(tbl string, rows [][]interface{}) (*AppendResult, error) {
	// appendMu keeps the head table stable while the batch is validated and
	// appended OUTSIDE the engine lock, so concurrent queries resolving
	// tables never wait behind a large batch; e.mu is held only for the
	// head read and the final pointer swap.
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	tb := e.Table(tbl)
	if tb == nil {
		return nil, fmt.Errorf("dbest: table %q is not registered", tbl)
	}
	// Copy-on-write: append into a shallow clone and swap it in, so readers
	// holding the old *Table never observe a growing column.
	clone := tb.Clone()
	res := &AppendResult{}
	for i, row := range rows {
		if err := clone.AppendRow(row...); err != nil {
			res.Rejected++
			res.Errors = append(res.Errors, RowError{Row: i, Err: err.Error()})
			continue
		}
		res.Appended++
	}
	if res.Appended > 0 {
		e.setTable(tbl, clone)
		e.ledger.AppendValues(tbl, res.Appended,
			appendedVals(clone, tb.NumRows()), appendedStrs(clone, tb.NumRows()))
	}
	res.NumRows = clone.NumRows()
	return res, nil
}

// appendedVals builds the ledger's column accessor for the rows appended to
// clone past from: sharded ledger entries use it to route each appended row
// to its owning shard. Extraction is lazy and cached per column, so tables
// with no sharded models pay nothing.
func appendedVals(clone *Table, from int) func(col string) []float64 {
	cache := make(map[string][]float64)
	return func(col string) []float64 {
		if v, ok := cache[col]; ok {
			return v
		}
		c := clone.Column(col)
		var out []float64
		if c != nil && c.Type != table.String {
			out = make([]float64, 0, c.Len()-from)
			for i := from; i < c.Len(); i++ {
				out = append(out, c.Float(i))
			}
		}
		cache[col] = out
		return out
	}
}

// appendedStrs is appendedVals for string columns: it feeds the appended
// values of nominal attributes to the ledger's absorb entries (TOP-K
// sketches over string columns). Numeric columns yield nil here and their
// values through appendedVals instead.
func appendedStrs(clone *Table, from int) func(col string) []string {
	cache := make(map[string][]string)
	return func(col string) []string {
		if v, ok := cache[col]; ok {
			return v
		}
		c := clone.Column(col)
		var out []string
		if c != nil && c.Type == table.String {
			out = append(out, c.Strings[from:]...)
		}
		cache[col] = out
		return out
	}
}

// AppendTable appends every row of src to the registered table tbl (the
// bulk form of Append — e.g. a CSV micro-batch). The schemas must match
// exactly. It returns the number of rows appended.
func (e *Engine) AppendTable(tbl string, src *Table) (int, error) {
	if err := src.Validate(); err != nil {
		return 0, err
	}
	n := src.NumRows()
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	tb := e.Table(tbl)
	if tb == nil {
		return 0, fmt.Errorf("dbest: table %q is not registered", tbl)
	}
	clone := tb.Clone()
	if err := clone.AppendTable(src); err != nil {
		return 0, err
	}
	e.setTable(tbl, clone)
	e.ledger.AppendValues(tbl, n, appendedVals(clone, tb.NumRows()), appendedStrs(clone, tb.NumRows()))
	return n, nil
}

// Staleness is one model's drift report: rows ingested since its last
// train, the fraction of its training reservoir the new rows replaced, and
// the background refresher's history for it.
type Staleness = ingest.Staleness

// ModelStaleness reports the staleness ledger for every tracked model set,
// sorted by catalog key. Models loaded via LoadModels are not tracked
// until they are retrained through a Train call.
func (e *Engine) ModelStaleness() []Staleness { return e.ledger.Snapshot() }

// RefreshOptions tunes the background auto-refresher; see
// ingest.RefresherOptions for the defaults.
type RefreshOptions = ingest.RefresherOptions

// RefreshStats aggregates the background refresher's lifetime counters.
type RefreshStats = ingest.RefreshStats

// StartRefresher launches the background auto-refresher: a worker pool
// that periodically scans the staleness ledger and retrains models whose
// staleness score crosses the threshold, atomically swapping the new
// models into the catalog (the generation bump invalidates cached plans).
// opts may be nil for defaults. It fails if a refresher is already
// running.
func (e *Engine) StartRefresher(opts *RefreshOptions) error {
	e.refMu.Lock()
	defer e.refMu.Unlock()
	if e.refresher != nil {
		return errors.New("dbest: refresher already running")
	}
	r := ingest.NewRefresher(e.ledger, opts)
	r.Start()
	e.refresher = r
	return nil
}

// StopRefresher cancels any in-flight retrains and waits for the
// refresher to shut down. It is a no-op if none is running; cumulative
// refresh counters survive into RefreshStats.
func (e *Engine) StopRefresher() {
	e.refMu.Lock()
	r := e.refresher
	e.refresher = nil
	e.refMu.Unlock()
	if r == nil {
		return
	}
	r.Stop()
	st := r.Stats()
	e.refMu.Lock()
	e.refStats = st
	e.refMu.Unlock()
}

// RefreshNow asks a running refresher to scan the ledger immediately
// instead of waiting for its next tick. It never blocks.
func (e *Engine) RefreshNow() {
	e.refMu.Lock()
	r := e.refresher
	e.refMu.Unlock()
	if r != nil {
		r.Kick()
	}
}

// RefreshStats snapshots the background refresher's counters. After a
// StopRefresher it reports the stopped refresher's final counters with
// Running false.
func (e *Engine) RefreshStats() RefreshStats {
	e.refMu.Lock()
	r := e.refresher
	last := e.refStats
	e.refMu.Unlock()
	if r != nil {
		return r.Stats()
	}
	last.Running = false
	last.TrackedModels = e.ledger.Len()
	return last
}

// trackModel registers a freshly trained model set with the staleness
// ledger. Models trained from a single uniform reservoir (one base table,
// no GROUP BY, no nominal split) maintain an exact mirror of the training
// sampler — same capacity and seed, fast-forwarded over the base rows — so
// appended rows continue the training sample stream and FracReplaced
// reports real sample drift. Join, GROUP BY and nominal models sample
// per-group/per-value streams that a single mirror cannot represent, so
// they track ingested-row fractions only. Rows appended while the training
// ran are credited as already-ingested (curRows vs baseRows) instead of
// being silently dropped by the ledger reset. The registration runs under
// appendMu so the live row count and the Register are atomic with respect
// to concurrent Appends — otherwise an append landing between the two
// would be double-counted (curRows already has it, ledger.Append adds it
// again) or lost (notified on the entry Register is about to replace).
func (e *Engine) trackModel(ms *core.ModelSet, tables []string, baseRows int, opts *TrainOptions, retrain ingest.RetrainFunc) {
	resCap, seed := 0, int64(0)
	if opts != nil {
		seed = opts.Seed
	}
	if len(tables) == 1 && ms.GroupBy == "" && ms.NominalBy == "" {
		resCap = core.DefaultSampleSize
		if opts != nil && opts.SampleSize > 0 {
			resCap = opts.SampleSize
		}
	}
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	curRows := 0
	for _, t := range tables {
		if tb := e.Table(t); tb != nil {
			curRows += tb.NumRows()
		}
	}
	if curRows < baseRows {
		curRows = baseRows
	}
	e.ledger.Register(ms.Key(), tables, baseRows, curRows, resCap, seed, retrain)
}
