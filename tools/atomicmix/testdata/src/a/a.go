// Package a holds atomicmix fixtures that must be flagged.
package a

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	gauge  atomic.Int64
}

// atomically is the legitimate access style for every field above.
func atomically(c *counters) int64 {
	atomic.AddInt64(&c.hits, 1)
	c.gauge.Add(1)
	return atomic.LoadInt64(&c.misses)
}

// plainWrite races with atomically's AddInt64.
func plainWrite(c *counters) {
	c.hits++ // want `accessed with sync/atomic .* but with a plain write here`
}

// plainRead races with atomically's LoadInt64.
func plainRead(c *counters) int64 {
	return c.misses // want `accessed with sync/atomic .* but with a plain read here`
}

// copyTyped copies an atomic.Int64 by value, smuggling an unsynchronized
// snapshot of it.
func copyTyped(c *counters) int64 {
	g := c.gauge // want `has atomic type sync/atomic\.Int64 but its value is used plainly here`
	return g.Load()
}
