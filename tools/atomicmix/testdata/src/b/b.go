// Package b holds atomicmix fixtures that must stay clean: consistent
// atomic access, constructor initialization before sharing, address-taking,
// and an escape-hatch annotated plain read.
package b

import "sync/atomic"

type counters struct {
	hits  int64
	cold  int64
	gauge atomic.Int64
	head  atomic.Pointer[counters]
}

// newCounters initializes plainly before the value is shared: allowed.
func newCounters() *counters {
	c := &counters{}
	c.hits = 0
	return c
}

// consistent uses sync/atomic for hits everywhere else.
func consistent(c *counters) int64 {
	atomic.AddInt64(&c.hits, 1)
	c.gauge.Store(c.gauge.Load() + 1)
	c.head.Store(c)
	return atomic.LoadInt64(&c.hits)
}

// passThrough hands out the typed atomic by address, never by value.
func passThrough(c *counters) *atomic.Int64 {
	return &c.gauge
}

// plainOnly fields are fine: cold is never touched by sync/atomic.
func plainOnly(c *counters) {
	c.cold++
}

// sanctioned reads hits plainly under an external guarantee and says so.
func sanctioned(c *counters) int64 {
	//lint:atomicmix read under the engine's stop-the-world snapshot in tests
	return c.hits
}
