package atomicmix_test

import (
	"testing"

	"dbest/tools/atomicmix"
	"dbest/tools/internal/analysistest"
)

// TestFlagged checks the violation classes: plain write and plain read of a
// field accessed via sync/atomic elsewhere, and a by-value copy of a
// method-style atomic field.
func TestFlagged(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, "testdata/src/a")
}

// TestClean checks the non-flagging shapes: consistent atomic access,
// constructor initialization, address-taking, atomic-free fields, and the
// //lint:atomicmix escape hatch.
func TestClean(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, "testdata/src/b")
}
