// Package atomicmix flags struct fields that are accessed atomically in one
// place and with plain loads/stores in another — the engine's counter and
// pointer fields (~26 sites) are all-atomic by convention, and a single
// plain `e.n++` next to an `atomic.AddInt64(&e.n, 1)` is a data race the
// compiler happily accepts.
//
// Two field classes are checked:
//
//   - primitive fields (int64, uint64, ...) passed to sync/atomic functions
//     (`atomic.LoadInt64(&x.f)`): every other plain read or write of the
//     same field is reported, except writes inside constructor functions
//     (name starting with "new"/"New", or init), where the value is not yet
//     shared;
//   - fields of the method-style atomic types (atomic.Int64, atomic.Bool,
//     atomic.Pointer[T], atomic.Value, ...): any use of the field's value
//     other than a method call or taking its address is reported — copying
//     an atomic value smuggles a snapshot past the synchronization.
//
// The escape hatch is a "//lint:atomicmix <reason>" comment on the flagged
// line, the line above, or the enclosing function's doc comment.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dbest/tools/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "check that struct fields are not accessed both atomically and with plain loads/stores",
	Run:  run,
}

// atomicValueTypes are the method-style types in sync/atomic.
var atomicValueTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// A use is one access to a field.
type use struct {
	pos      token.Pos
	write    bool
	inCtor   bool
	funcName string
}

func run(pass *analysis.Pass) (interface{}, error) {
	atomicSites := make(map[*types.Var][]token.Pos) // via sync/atomic functions
	plainSites := make(map[*types.Var][]use)

	for _, f := range pass.NonTestFiles() {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			field, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}

			if atomicValueType(field.Type()) {
				switch classifyTypedUse(parents, sel) {
				case useMethod, useAddr:
					// fine: method call on the field, or passing *atomic.T
				default:
					pass.Reportf(sel.Sel.Pos(),
						"%s.%s has atomic type %s but its value is used plainly here: copying an atomic value bypasses the synchronization; call its methods instead",
						fieldOwner(field), field.Name(), field.Type())
				}
				return true
			}

			if pos, ok := atomicFuncArg(pass, parents, sel); ok {
				atomicSites[field] = append(atomicSites[field], pos)
				return true
			}
			if neutralUse(parents, sel) {
				return true
			}
			fn, write := enclosingFuncAndWrite(parents, sel)
			plainSites[field] = append(plainSites[field], use{
				pos:      sel.Sel.Pos(),
				write:    write,
				inCtor:   fn == "init" || strings.HasPrefix(fn, "new") || strings.HasPrefix(fn, "New"),
				funcName: fn,
			})
			return true
		})
	}

	for field, atomics := range atomicSites {
		for _, u := range plainSites[field] {
			if u.inCtor {
				continue // not yet shared: plain init before publication is fine
			}
			kind := "read"
			if u.write {
				kind = "write"
			}
			pass.Reportf(u.pos,
				"%s.%s is accessed with sync/atomic (e.g. at %s) but with a plain %s here: mixed atomic/plain access is a data race",
				fieldOwner(field), field.Name(), pass.Fset.Position(atomics[0]), kind)
		}
	}
	return nil, nil
}

func fieldOwner(field *types.Var) string {
	// Best effort: the field's package-qualified name is enough context.
	if p := field.Pkg(); p != nil {
		return p.Name()
	}
	return "?"
}

func atomicValueType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicValueTypes[obj.Name()]
}

type typedUse int

const (
	usePlain typedUse = iota
	useMethod
	useAddr
)

// classifyTypedUse decides how the value of an atomic-typed field selector
// is being used: as a method-call receiver, via its address, or plainly.
func classifyTypedUse(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) typedUse {
	switch p := parents[sel].(type) {
	case *ast.SelectorExpr:
		if p.X == sel {
			return useMethod // x.f.Load(): the outer selector is the method
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return useAddr
		}
	case *ast.IndexExpr:
		if p.X == sel {
			return useMethod // x.shards[i] handled at the element, not here
		}
	}
	return usePlain
}

// atomicFuncArg reports whether sel appears as &sel in an argument to a
// sync/atomic function call, returning the call position.
func atomicFuncArg(pass *analysis.Pass, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) (token.Pos, bool) {
	addr, ok := parents[sel].(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return token.NoPos, false
	}
	call, ok := parents[addr].(*ast.CallExpr)
	if !ok {
		return token.NoPos, false
	}
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return token.NoPos, false
	}
	obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return token.NoPos, false
	}
	return call.Pos(), true
}

// neutralUse filters selector uses that are neither plain value accesses nor
// atomic ones: being the base of a deeper selection (x.f.g), or having the
// address taken for something other than a sync/atomic call (the pointer's
// eventual use is out of scope here).
func neutralUse(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	switch p := parents[sel].(type) {
	case *ast.SelectorExpr:
		return p.X == sel
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.IndexExpr:
		return p.X == sel
	}
	return false
}

// enclosingFuncAndWrite finds the name of the function containing sel and
// whether the use is a store (assignment LHS or ++/--).
func enclosingFuncAndWrite(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) (string, bool) {
	write := false
	name := ""
	for n := ast.Node(sel); n != nil; n = parents[n] {
		switch p := parents[n].(type) {
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == n {
					write = true
				}
			}
		case *ast.IncDecStmt:
			if p.X == n {
				write = true
			}
		case *ast.FuncDecl:
			if name == "" {
				name = p.Name.Name
			}
		}
	}
	return name, write
}

// parentMap records each node's parent within one file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
