module dbest/tools

go 1.24
