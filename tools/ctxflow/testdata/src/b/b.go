// Package b holds ctxflow fixtures that must stay clean: ctx-less wrappers
// own their root context, closures may introduce their own ctx, and the
// escape hatch covers deliberate detachment.
package b

import "context"

func run(ctx context.Context) error { return ctx.Err() }

// wrapper has no ctx parameter: it is the root of its call tree and may mint
// one (this is exactly the shape of the engine's ctx-less Train wrappers).
func wrapper() error {
	return run(context.Background())
}

// freshScope's closure declares its own ctx; Background in the factory
// function itself is still rootless and fine.
func freshScope() func(context.Context) error {
	base := context.Background()
	_ = base
	return func(ctx context.Context) error { return ctx.Err() }
}

// detach starts a worker that must outlive the request and says so.
func detach(ctx context.Context) {
	//lint:ctxflow background worker deliberately outlives the caller's request
	go run(context.Background())
	_ = ctx.Err()
}
