// Package a holds ctxflow fixtures that must be flagged.
package a

import "context"

func process(ctx context.Context) error {
	c := context.Background() // want `context\.Background\(\) called where a ctx parameter is in scope`
	_ = c
	return ctx.Err()
}

func todo(ctx context.Context) error {
	c := context.TODO() // want `context\.TODO\(\) called where a ctx parameter is in scope`
	_ = c
	return ctx.Err()
}

// closures inherit the enclosing ctx parameter.
func inClosure(ctx context.Context) func() error {
	return func() error {
		c := context.Background() // want `context\.Background\(\) called where a ctx parameter is in scope`
		_ = c
		return ctx.Err()
	}
}

// anyName: the parameter type matters, not the name.
func anyName(parent context.Context) error {
	c := context.Background() // want `context\.Background\(\) called where a ctx parameter is in scope`
	_ = c
	return parent.Err()
}
