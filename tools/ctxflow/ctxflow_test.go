package ctxflow_test

import (
	"testing"

	"dbest/tools/ctxflow"
	"dbest/tools/internal/analysistest"
)

// TestFlagged checks that Background/TODO are reported whenever a
// context.Context parameter (of any name, including via an enclosing
// closure scope) is available.
func TestFlagged(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "testdata/src/a")
}

// TestClean checks the non-flagging shapes: ctx-less root wrappers,
// closure-local ctx parameters, and the //lint:ctxflow escape hatch.
func TestClean(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "testdata/src/b")
}
