// Package ctxflow protects the engine's context plumbing: every train/query
// boundary threads a context.Context (TrainContext, ExecContext, ...), and a
// library function that conjures context.Background() or context.TODO()
// while a perfectly good ctx parameter is in scope silently detaches its
// callees from cancellation and deadlines.
//
// A call to context.Background() or context.TODO() is reported when it
// appears in non-main, non-test code inside a function (or closure) whose
// own or enclosing signature has a context.Context parameter. Root-level
// helpers with no ctx parameter (the ctx-less Train wrappers, background
// worker startup) are untouched — there is no caller context to thread.
//
// The escape hatch is a "//lint:ctxflow <reason>" comment on the flagged
// line, the line above, or the enclosing function's doc comment.
package ctxflow

import (
	"go/ast"
	"go/types"

	"dbest/tools/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "check that library code threads in-scope ctx parameters instead of calling context.Background/TODO",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil // commands own their root contexts
	}
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(pass, fd.Body, hasCtxParam(pass, fd.Type))
		}
	}
	return nil, nil
}

// visit walks a function body; ctxInScope tracks whether this function or
// any enclosing one declares a context.Context parameter.
func visit(pass *analysis.Pass, n ast.Node, ctxInScope bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		visit(pass, n.Body, ctxInScope || hasCtxParam(pass, n.Type))
		return
	case *ast.CallExpr:
		if ctxInScope {
			if name, ok := backgroundOrTODO(pass, n); ok {
				pass.Reportf(n.Pos(),
					"context.%s() called where a ctx parameter is in scope: thread the caller's context so cancellation and deadlines propagate", name)
			}
		}
	}
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(pass, c, ctxInScope)
		}
		return false
	})
}

// backgroundOrTODO reports whether call is context.Background or
// context.TODO, resolved through the type checker (a local package that
// happens to be named "context" does not count).
func backgroundOrTODO(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Background" && name != "TODO" {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	return name, true
}

// hasCtxParam reports whether the signature declares a context.Context
// parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if n, ok := t.(*types.Named); ok {
			obj := n.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}
