// Package lockorder flags acquisitions of the engine's writer mutexes that
// violate the documented lock order
//
//	appendMu → Catalog.mu → pubMu
//
// (see the Engine struct docs and README "Concurrency model"). Locks must be
// taken in increasing rank: appendMu (rank 1) strictly before the catalog's
// writer mutex (rank 2) strictly before the snapshot-publication mutex
// pubMu (rank 3). Holding a higher-ranked lock while acquiring a lower or
// equal rank — directly, through a same-package call chain, or through a
// Catalog writer method such as Put/Remove/Invalidate that takes Catalog.mu
// internally — is reported. Re-acquiring a mutex already held (a
// self-deadlock, since these are not reentrant) is reported too.
//
// The escape hatch is a "//lint:lockorder <reason>" comment on the flagged
// line, the line above it, or the enclosing function's doc comment.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"dbest/tools/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "check that appendMu, Catalog.mu and pubMu are acquired in the documented order",
	Run:  run,
}

const orderDoc = "appendMu → Catalog.mu → pubMu"

// Lock ranks. Locks must be acquired in increasing rank order.
const (
	rankAppendMu = 1
	rankCatalog  = 2
	rankPubMu    = 3
)

var rankName = map[int]string{
	rankAppendMu: "appendMu",
	rankCatalog:  "Catalog.mu",
	rankPubMu:    "pubMu",
}

// catalogWriterMethods are the (*Catalog) methods that acquire Catalog.mu
// internally; calling one is a transient rank-2 acquisition at the call
// site. Kept in sync with internal/catalog (every method that takes c.mu).
var catalogWriterMethods = map[string]bool{
	"Put": true, "Remove": true, "RemoveMatching": true,
	"ReplaceShards": true, "ReplaceMember": true,
	"Invalidate": true, "Load": true, "LoadFile": true, "OnPublish": true,
}

// An event is one lock-relevant occurrence inside a function body.
type event struct {
	rank      int
	desc      string // human name: "appendMu", "Catalog.mu (via (*Catalog).Put)"
	transient bool   // acquired and released inside the same call
	release   bool   // Unlock/RUnlock rather than an acquisition
	pos       token.Pos
}

// A summary records every rank a function may acquire, directly or through
// same-package callees, with one sample chain for the diagnostic.
type summary map[int]string // rank -> call-chain description ("" = direct)

func run(pass *analysis.Pass) (interface{}, error) {
	files := pass.NonTestFiles()

	// Map function objects to their declarations so calls resolve to
	// summaries.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var order []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
			order = append(order, fd)
		}
	}

	// Phase 1: per-function acquisition summaries, then a transitive
	// fixpoint over the same-package call graph.
	direct := make(map[*ast.FuncDecl]summary)
	callees := make(map[*ast.FuncDecl]map[*ast.FuncDecl]bool)
	for _, fd := range order {
		direct[fd], callees[fd] = summarize(pass, decls, fd)
	}
	trans := make(map[*ast.FuncDecl]summary)
	for _, fd := range order {
		s := make(summary)
		for r, via := range direct[fd] {
			s[r] = via
		}
		trans[fd] = s
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range order {
			for callee := range callees[fd] {
				for r, via := range trans[callee] {
					if _, ok := trans[fd][r]; !ok {
						chain := callee.Name.Name
						if via != "" {
							chain += " → " + via
						}
						trans[fd][r] = chain
						changed = true
					}
				}
			}
		}
	}

	// Phase 2: ordered walk of every function body tracking held ranks.
	for _, fd := range order {
		s := &scanner{pass: pass, decls: decls, trans: trans, held: map[int]int{}}
		s.walk(fd.Body)
	}
	return nil, nil
}

// classify identifies the lock event (if any) a call expression represents.
func classify(pass *analysis.Pass, call *ast.CallExpr) (event, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return event{}, false
	}
	switch name := sel.Sel.Name; name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
		fs, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return event{}, false
		}
		rank := 0
		switch fs.Sel.Name {
		case "appendMu":
			rank = rankAppendMu
		case "pubMu":
			rank = rankPubMu
		case "mu":
			if isCatalog(pass.TypesInfo.TypeOf(fs.X)) {
				rank = rankCatalog
			}
		}
		if rank == 0 {
			return event{}, false
		}
		rel := name == "Unlock" || name == "RUnlock"
		return event{rank: rank, desc: rankName[rank], release: rel, pos: call.Pos()}, true
	default:
		if catalogWriterMethods[name] && isCatalog(pass.TypesInfo.TypeOf(sel.X)) {
			return event{
				rank:      rankCatalog,
				desc:      "Catalog.mu (via (*Catalog)." + name + ")",
				transient: true,
				pos:       call.Pos(),
			}, true
		}
	}
	return event{}, false
}

// isCatalog reports whether t (possibly a pointer) is a named type called
// Catalog. Name-based on purpose: the real internal/catalog.Catalog and the
// fixture Catalogs both qualify.
func isCatalog(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Catalog"
}

// callee resolves a call to a function or method declared in this package.
func callee(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) *ast.FuncDecl {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	if fn, ok := obj.(*types.Func); ok {
		return decls[fn]
	}
	return nil
}

// summarize collects the ranks fd may acquire directly (including transient
// Catalog writer calls) and its same-package callees. Bodies of function
// literals that run synchronously (immediately invoked, or deferred) are
// included; `go` bodies and stored callbacks are not — they run on their own
// goroutine or at an unknown later time, so their acquisitions are checked
// where they are written, not attributed to the enclosing function.
func summarize(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, fd *ast.FuncDecl) (summary, map[*ast.FuncDecl]bool) {
	s := make(summary)
	c := make(map[*ast.FuncDecl]bool)
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			return
		case *ast.FuncLit:
			return // handled at the call/defer sites below
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				visitChildren(lit.Body, visit)
			} else {
				visit(n.Call)
			}
			return
		case *ast.CallExpr:
			if ev, ok := classify(pass, n); ok && !ev.release {
				if _, have := s[ev.rank]; !have {
					s[ev.rank] = ""
				}
			} else if cd := callee(pass, decls, n); cd != nil && cd != fd {
				c[cd] = true
			}
			if lit, ok := n.Fun.(*ast.FuncLit); ok { // immediately invoked
				visitChildren(lit.Body, visit)
			}
			for _, arg := range n.Args {
				visit(arg)
			}
			return
		}
		visitChildren(n, visit)
	}
	visitChildren(fd.Body, visit)
	return s, c
}

// visitChildren applies visit to each direct child of n, in source order.
func visitChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

// scanner walks one function body in source order, tracking which ranked
// locks are held. Branches are walked with cloned held-sets and merged
// conservatively (a lock held in any branch counts as held afterwards).
type scanner struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	trans map[*ast.FuncDecl]summary
	held  map[int]int
}

func (s *scanner) clone() *scanner {
	h := make(map[int]int, len(s.held))
	for k, v := range s.held {
		h[k] = v
	}
	return &scanner{pass: s.pass, decls: s.decls, trans: s.trans, held: h}
}

// merge folds branch outcomes back: held after = max held in any branch.
func (s *scanner) merge(branches ...*scanner) {
	for _, b := range branches {
		for r, n := range b.held {
			if n > s.held[r] {
				s.held[r] = n
			}
		}
	}
}

func (s *scanner) maxHeld() int {
	m := 0
	for r, n := range s.held {
		if n > 0 && r > m {
			m = r
		}
	}
	return m
}

func (s *scanner) walk(n ast.Node) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.IfStmt:
		s.walk(n.Init)
		s.walk(n.Cond)
		then, els := s.clone(), s.clone()
		then.walk(n.Body)
		if n.Else != nil {
			els.walk(n.Else)
		}
		s.merge(then, els)
	case *ast.SwitchStmt:
		s.walk(n.Init)
		s.walk(n.Tag)
		s.walkClauses(n.Body)
	case *ast.TypeSwitchStmt:
		s.walk(n.Init)
		s.walk(n.Assign)
		s.walkClauses(n.Body)
	case *ast.SelectStmt:
		s.walkClauses(n.Body)
	case *ast.ForStmt:
		s.walk(n.Init)
		s.walk(n.Cond)
		s.walk(n.Body)
		s.walk(n.Post)
	case *ast.RangeStmt:
		s.walk(n.X)
		s.walk(n.Body)
	case *ast.GoStmt:
		// Arguments are evaluated synchronously; the body runs on a new
		// goroutine with no locks inherited.
		for _, arg := range n.Call.Args {
			s.walk(arg)
		}
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			fresh := &scanner{pass: s.pass, decls: s.decls, trans: s.trans, held: map[int]int{}}
			fresh.walk(lit.Body)
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the body.
		if ev, ok := classify(s.pass, n.Call); ok && ev.release {
			return
		}
		for _, arg := range n.Call.Args {
			s.walk(arg)
		}
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			s.clone().walk(lit.Body)
		} else {
			s.call(n.Call)
		}
	case *ast.FuncLit:
		// A stored callback: runs later with an unknown lock context;
		// check its body against an empty held-set.
		fresh := &scanner{pass: s.pass, decls: s.decls, trans: s.trans, held: map[int]int{}}
		fresh.walk(n.Body)
	case *ast.CallExpr:
		for _, arg := range n.Args {
			s.walk(arg)
		}
		if lit, ok := n.Fun.(*ast.FuncLit); ok { // immediately invoked
			s.walk(lit.Body)
			return
		}
		s.call(n)
	default:
		visitChildren(n, s.walk)
	}
}

func (s *scanner) walkClauses(body *ast.BlockStmt) {
	var outcomes []*scanner
	for _, stmt := range body.List {
		b := s.clone()
		visitChildren(stmt, b.walk) // the clause's statements
		outcomes = append(outcomes, b)
	}
	s.merge(outcomes...)
}

// call processes one call expression's lock event or callee summary.
func (s *scanner) call(n *ast.CallExpr) {
	if ev, ok := classify(s.pass, n); ok {
		if ev.release {
			if s.held[ev.rank] > 0 {
				s.held[ev.rank]--
			}
			return
		}
		if h := s.maxHeld(); h > ev.rank {
			s.pass.Reportf(ev.pos,
				"lock order violation: acquiring %s (rank %d) while holding %s (rank %d); the documented order is %s",
				ev.desc, ev.rank, rankName[h], h, orderDoc)
		} else if s.held[ev.rank] > 0 {
			s.pass.Reportf(ev.pos,
				"%s acquired while already held: these mutexes are not reentrant (self-deadlock)", ev.desc)
		}
		if !ev.transient {
			s.held[ev.rank]++
		}
		return
	}
	if cd := callee(s.pass, s.decls, n); cd != nil {
		for r, via := range s.trans[cd] {
			chain := cd.Name.Name
			if via != "" {
				chain += " → " + via
			}
			if h := s.maxHeld(); h > r {
				s.pass.Reportf(n.Pos(),
					"lock order violation: call to %s acquires %s (rank %d) while %s (rank %d) is held; the documented order is %s",
					chain, rankName[r], r, rankName[h], h, orderDoc)
			} else if s.held[r] > 0 {
				s.pass.Reportf(n.Pos(),
					"call to %s re-acquires %s, which is already held (self-deadlock)", chain, rankName[r])
			}
		}
	}
}
