// Package a holds lockorder fixtures that must be flagged.
package a

import "sync"

// Catalog mirrors internal/catalog.Catalog: mu is its rank-2 writer mutex,
// and Put is one of the writer methods that acquire it internally.
type Catalog struct {
	mu     sync.Mutex
	models map[string]int
}

func (c *Catalog) Put(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.models[k] = 1
}

// Engine mirrors the real engine's writer mutexes: appendMu (rank 1) before
// Catalog.mu (rank 2) before pubMu (rank 3).
type Engine struct {
	appendMu sync.Mutex
	pubMu    sync.Mutex
	catalog  *Catalog
}

// goodOrder takes every lock in documented order: no findings.
func (e *Engine) goodOrder() {
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	e.catalog.Put("k")
	e.pubMu.Lock()
	e.pubMu.Unlock()
}

// inverted acquires appendMu under pubMu: rank 1 under rank 3.
func (e *Engine) inverted() {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	e.appendMu.Lock() // want `acquiring appendMu \(rank 1\) while holding pubMu \(rank 3\)`
	e.appendMu.Unlock()
}

// catalogUnderPub mutates the catalog while holding pubMu: the Put call is
// a transient Catalog.mu acquisition, rank 2 under rank 3.
func (e *Engine) catalogUnderPub() {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	e.catalog.Put("k") // want `acquiring Catalog\.mu \(via \(\*Catalog\)\.Put\) \(rank 2\) while holding pubMu \(rank 3\)`
}

func (e *Engine) locksAppend() {
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
}

// transitive reaches the inversion through a same-package call.
func (e *Engine) transitive() {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	e.locksAppend() // want `call to locksAppend acquires appendMu \(rank 1\) while pubMu \(rank 3\) is held`
}

// reentrant re-acquires a mutex it already holds.
func (e *Engine) reentrant() {
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	e.appendMu.Lock() // want `appendMu acquired while already held`
	e.appendMu.Unlock()
}

// viaChain: two hops of same-package calls still surface the inversion.
func (e *Engine) viaChain() {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	e.hop() // want `call to hop → locksAppend acquires appendMu \(rank 1\) while pubMu \(rank 3\) is held`
}

func (e *Engine) hop() {
	e.locksAppend()
}
