// Package b holds lockorder fixtures that must stay clean: correct
// acquisition order, branch-local locking, callbacks, and an escape-hatch
// annotated inversion.
package b

import "sync"

type Catalog struct {
	mu     sync.Mutex
	models map[string]int
}

func (c *Catalog) Put(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.models[k] = 1
}

type Engine struct {
	appendMu sync.Mutex
	pubMu    sync.Mutex
	catalog  *Catalog
	hook     func()
}

// fullOrder takes all three ranks in order.
func (e *Engine) fullOrder() {
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	e.catalog.Put("k")
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
}

// branches lock the same mutex on two exclusive paths; the held-sets must
// not bleed across branches.
func (e *Engine) branches(swap bool) {
	if swap {
		e.appendMu.Lock()
		defer e.appendMu.Unlock()
		e.pubMu.Lock()
		e.pubMu.Unlock()
	} else {
		e.appendMu.Lock()
		e.appendMu.Unlock()
	}
}

// registerHook stores a callback that locks appendMu: the callback runs
// later with no locks inherited from here, so holding pubMu now is fine.
func (e *Engine) registerHook() {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	e.hook = func() {
		e.appendMu.Lock()
		defer e.appendMu.Unlock()
	}
}

// spawn evaluates nothing lock-relevant in its arguments and starts a
// goroutine with its own empty lock context.
func (e *Engine) spawn() {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	go func() {
		e.appendMu.Lock()
		defer e.appendMu.Unlock()
	}()
}

// sanctioned inverts the order deliberately (single-threaded bootstrap) and
// carries the escape hatch.
func (e *Engine) sanctioned() {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	//lint:lockorder single-threaded bootstrap: no concurrent writers exist yet
	e.appendMu.Lock()
	e.appendMu.Unlock()
}
