package lockorder_test

import (
	"testing"

	"dbest/tools/internal/analysistest"
	"dbest/tools/lockorder"
)

// TestFlagged checks every violation class: direct inversion, transient
// Catalog-writer acquisition under pubMu, transitive inversion through one
// and two same-package hops, and re-entrant acquisition.
func TestFlagged(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/src/a")
}

// TestClean checks the non-flagging shapes: documented order, branch-local
// lock/unlock, stored callbacks, goroutine bodies, and the
// //lint:lockorder escape hatch on a deliberate inversion.
func TestClean(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/src/b")
}
