// dbest-vet is the multichecker binary for dbest's invariant analyzers:
//
//	lockorder    appendMu → Catalog.mu → pubMu acquisition order
//	snapcapture  one engine-snapshot capture per read-path call
//	atomicmix    no mixed atomic/plain access to the same field
//	ctxflow      no context.Background/TODO where a ctx param is in scope
//
// It speaks the `go vet -vettool` protocol, so CI runs it as
//
//	go -C tools build -o ../dbest-vet ./cmd/dbest-vet
//	go vet -vettool=./dbest-vet ./...
//
// and for convenience it also accepts package patterns directly (it re-execs
// `go vet -vettool=<self>` for you), with -dir choosing the module to vet:
//
//	go -C tools run ./cmd/dbest-vet -dir .. ./...
package main

import (
	"dbest/tools/atomicmix"
	"dbest/tools/ctxflow"
	"dbest/tools/internal/unitchecker"
	"dbest/tools/lockorder"
	"dbest/tools/snapcapture"
)

func main() {
	unitchecker.Main(
		lockorder.Analyzer,
		snapcapture.Analyzer,
		atomicmix.Analyzer,
		ctxflow.Analyzer,
	)
}
