package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVet compiles the multichecker binary into a temp dir and returns its
// path.
func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dbest-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build dbest-vet: %v\n%s", err, out)
	}
	return bin
}

func runVet(t *testing.T, bin, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestVetCleanOverRepo builds the binary and runs it through `go vet
// -vettool` over the main module and the tools module: both must be clean
// (true positives are fixed, deliberate exceptions annotated).
func TestVetCleanOverRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide vet sweep skipped in -short mode")
	}
	bin := buildVet(t)
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{root, filepath.Join(root, "tools")} {
		if out, err := runVet(t, bin, dir); err != nil {
			t.Errorf("dbest-vet not clean over %s: %v\n%s", dir, err, out)
		}
	}
}

// TestVetFlagsScratchViolations writes a scratch module with one deliberate
// violation per analyzer and checks that each is reported and that the vet
// run fails — the acceptance scenario for wiring the analyzers into CI.
func TestVetFlagsScratchViolations(t *testing.T) {
	bin := buildVet(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "s.go"), `package scratch

import (
	"context"
	"sync"
	"sync/atomic"
)

type Engine struct {
	appendMu sync.Mutex
	pubMu    sync.Mutex
	snap     ptr
	hits     int64
}

type ptr struct{ v *int }

func (p *ptr) Load() *int { return p.v }

func (e *Engine) invert() {
	e.pubMu.Lock()
	e.appendMu.Lock()
	e.appendMu.Unlock()
	e.pubMu.Unlock()
}

func (e *Engine) doubleLoad() int {
	a := e.snap.Load()
	b := e.snap.Load()
	return *a + *b
}

func (e *Engine) mixed() int64 {
	atomic.AddInt64(&e.hits, 1)
	return e.hits
}

func (e *Engine) detached(ctx context.Context) context.Context {
	_ = ctx
	return context.Background()
}
`)
	out, err := runVet(t, bin, dir)
	if err == nil {
		t.Fatalf("go vet -vettool succeeded over scratch module with violations:\n%s", out)
	}
	for _, wantFrag := range []string{
		"acquiring appendMu (rank 1) while holding pubMu (rank 3)",
		"second snapshot capture in doubleLoad",
		"accessed with sync/atomic",
		"context.Background() called where a ctx parameter is in scope",
	} {
		if !strings.Contains(out, wantFrag) {
			t.Errorf("vet output missing %q:\n%s", wantFrag, out)
		}
	}
}

// TestFlagsProtocol checks the half of the vettool protocol cmd/go uses at
// startup: -flags must emit JSON and -V=full a "name version" line.
func TestFlagsProtocol(t *testing.T) {
	bin := buildVet(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	for _, name := range []string{"lockorder", "snapcapture", "atomicmix", "ctxflow"} {
		if !strings.Contains(string(out), `"Name":"`+name+`"`) {
			t.Errorf("-flags output missing analyzer %q: %s", name, out)
		}
	}
	out, err = exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.Contains(string(out), "dbest-vet version ") {
		t.Errorf("-V=full output %q lacks \"dbest-vet version\"", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
