// Package analysistest runs one analyzer over a fixture package and checks
// its diagnostics against expectations written in the fixture source, in the
// style of golang.org/x/tools/go/analysis/analysistest but stdlib-only.
//
// Expectations are comments of the form
//
//	x.f = 1 // want `plain (read|write)` "second pattern"
//
// Each back-quoted or double-quoted string is a regular expression that must
// match one diagnostic reported on that line; every diagnostic must in turn
// be matched by one expectation. Fixture packages live under
// testdata/src/<name> and may import standard-library packages only (they
// are type-checked offline with the stdlib source importer).
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"dbest/tools/internal/analysis"
)

// Run loads the fixture package in dir, applies a, and reports mismatches
// between its diagnostics and the fixture's want comments through t.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()

	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (err: %v)", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := tc.Check(filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", dir, err)
	}

	wants := collectWants(t, fset, files)

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, fset, files, pkg, info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := lineKey{p.Filename, p.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// wantRE pulls the quoted patterns out of a "// want ..." comment: Go
// double-quoted strings (unescaped via strconv) or raw back-quoted ones.
var (
	wantMarker = regexp.MustCompile(`^//\s*want\s`)
	wantArg    = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]*want {
	t.Helper()
	wants := make(map[lineKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !wantMarker.MatchString(c.Text) {
					continue
				}
				p := fset.Position(c.Pos())
				args := wantArg.FindAllString(c.Text, -1)
				if len(args) == 0 {
					t.Fatalf("%s: want comment with no quoted pattern", p)
				}
				for _, arg := range args {
					pat, err := strconv.Unquote(arg)
					if err != nil {
						t.Fatalf("%s: cannot unquote %s: %v", p, arg, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", p, pat, err)
					}
					key := lineKey{p.Filename, p.Line}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}
