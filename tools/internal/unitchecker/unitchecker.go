// Package unitchecker implements the `go vet -vettool` driver protocol for
// dbest's invariant analyzers, with the standard library only.
//
// cmd/go drives an external vet tool in three ways:
//
//   - `tool -flags` must print a JSON description of the tool's flags so the
//     go command can split `go vet` arguments between itself and the tool;
//   - `tool -V=full` must print a "name version ..." line used for build
//     caching;
//   - `tool [flags] <unit>.cfg` analyzes one compilation unit described by a
//     JSON config file, prints findings to stderr (or JSON to stdout under
//     -json), writes the facts file named by the config's VetxOutput, and
//     exits nonzero iff there were findings.
//
// As a convenience for humans, invoking the tool with package patterns
// instead of a .cfg file re-executes `go vet -vettool=<self> <patterns>` in
// -dir (default "."), so `dbest-vet ./...` just works.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"dbest/tools/internal/analysis"
)

// Config mirrors the JSON schema of the vet config files cmd/go writes; see
// buildVetConfig in cmd/go/internal/work. Fields this driver does not
// consult (fact inputs, gccgo support) are kept for decoding compatibility.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the driver. It does not return.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	var (
		flagsOut = flag.Bool("flags", false, "print analyzer flags in JSON (for the go command)")
		version  = flag.String("V", "", "print version and exit (use -V=full)")
		jsonOut  = flag.Bool("json", false, "emit JSON output")
		_        = flag.Int("c", -1, "display offending line with this many lines of context (accepted for compatibility)")
		dir      = flag.String("dir", ".", "standalone mode: directory to run `go vet` from")
	)
	enabled := make(map[string]*bool)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = flag.Bool(a.Name, false, "enable only the "+a.Name+" analysis: "+doc)
	}
	flag.Parse()

	if *flagsOut {
		printFlags(analyzers)
		os.Exit(0)
	}
	if *version != "" {
		printVersion(progname)
		os.Exit(0)
	}

	// If any enable flag was set, restrict to that subset (vet protocol:
	// no flags means run everything).
	var selected []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if selected == nil {
		selected = analyzers
	}

	args := flag.Args()
	switch {
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnit(args[0], selected, *jsonOut))
	case len(args) > 0:
		os.Exit(standalone(*dir, os.Args[1:]))
	default:
		log.Fatalf("usage: %s [flags] <unit>.cfg   (driven by go vet -vettool)\n"+
			"   or: %s [flags] ./...              (re-executes go vet -vettool=self)", progname, progname)
	}
}

// printFlags emits the JSON flag description the go command reads via
// `tool -flags`: name, whether the flag is boolean, and usage.
func printFlags(analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: doc})
	}
	out = append(out, jsonFlag{Name: "json", Bool: true, Usage: "emit JSON output"})
	data, err := json.Marshal(out)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// printVersion emits the "name version ..." line cmd/go's build cache keys
// on. The content hash of the executable stands in for a version string so
// rebuilding the tool invalidates cached vet results.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil)[:16])
}

// standalone re-executes `go vet -vettool=<self>` with the given arguments
// (minus any -dir flag, which configures the working directory instead).
func standalone(dir string, rawArgs []string) int {
	exe, err := os.Executable()
	if err != nil {
		log.Fatalf("cannot locate own executable for -vettool: %v", err)
	}
	vetArgs := []string{"vet", "-vettool=" + exe}
	skip := false
	for _, a := range rawArgs {
		switch {
		case skip:
			skip = false
		case a == "-dir" || a == "--dir":
			skip = true
		case strings.HasPrefix(a, "-dir=") || strings.HasPrefix(a, "--dir="):
		default:
			vetArgs = append(vetArgs, a)
		}
	}
	cmd := exec.Command("go", vetArgs...)
	cmd.Dir = dir
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		log.Fatalf("go vet: %v", err)
	}
	return 0
}

// A unitDiag is one diagnostic tagged with the analyzer that produced it.
type unitDiag struct {
	analyzer string
	diag     analysis.Diagnostic
}

// runUnit analyzes the single compilation unit described by cfgFile and
// returns the process exit code.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(cfg)
				return 0
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg)
			return 0
		}
		log.Fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}

	var diags []unitDiag
	for _, a := range analyzers {
		a := a
		pass := analysis.NewPass(a, fset, files, pkg, info, func(d analysis.Diagnostic) {
			diags = append(diags, unitDiag{a.Name, d})
		})
		if _, err := a.Run(pass); err != nil {
			log.Fatalf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].diag.Pos < diags[j].diag.Pos })

	// The facts file must exist even when empty: cmd/go caches it as the
	// unit's output.
	writeVetx(cfg)
	if cfg.VetxOnly {
		return 0
	}

	if jsonOut {
		printJSONDiags(cfg, fset, diags)
		return 0 // JSON mode never fails the build (matches x/tools)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.diag.Pos), d.diag.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printJSONDiags emits the two-level JSON object `go vet -json` merges:
// package ID -> analyzer name -> list of {posn, message}.
func printJSONDiags(cfg *Config, fset *token.FileSet, diags []unitDiag) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.analyzer] = append(byAnalyzer[d.analyzer],
			jsonDiag{fset.Position(d.diag.Pos).String(), d.diag.Message})
	}
	out := map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

func writeVetx(cfg *Config) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0666); err != nil {
		log.Fatal(err)
	}
}

// typecheck type-checks the unit's files against the export data the go
// command supplied: ImportMap resolves source import paths to canonical
// package paths, PackageFile locates each package's export data.
func typecheck(cfg *Config, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gcImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gcImporter.Import(path)
	})
	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	if v := parseGoVersion(cfg.GoVersion); v != "" {
		tc.GoVersion = v
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// parseGoVersion trims cfg.GoVersion to the "go1.N[.M]" language version
// go/types accepts, dropping toolchain suffixes like "go1.24.0 X:...".
func parseGoVersion(v string) string {
	v, _, _ = strings.Cut(v, " ")
	if strings.HasPrefix(v, "go1") {
		return v
	}
	return ""
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
