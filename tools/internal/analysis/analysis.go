// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface that dbest's invariant checkers
// need. The main repo is deliberately stdlib-only (its go.mod has no require
// block, and CI enforces that), and this tools module keeps the same
// discipline: Analyzer, Pass and Diagnostic mirror the upstream shapes so the
// four dbest analyzers could be ported to x/tools verbatim, but everything
// here builds with the standard library alone.
//
// One extension over upstream: escape-hatch suppression is built into the
// Pass. A comment of the form
//
//	//lint:<analyzer-name> <reason>
//
// on the flagged line, on the line immediately above it, or in the doc
// comment of the enclosing function suppresses that analyzer's diagnostics
// for that site (or the whole function, for doc comments). Every dbest
// analyzer documents its own annotation (e.g. //lint:lockorder) in its Doc.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static-analysis pass: a named invariant check
// that runs over a single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable flags and
	// escape-hatch annotations. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: first line is a one-sentence
	// summary used in -flags output.
	Doc string

	// Run applies the analyzer to a package. It reports findings via
	// pass.Report/Reportf; the result value is unused by this driver and
	// exists only for upstream API compatibility.
	Run func(*Pass) (interface{}, error)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass provides one analyzer with one type-checked package and a sink for
// diagnostics. All diagnostics are filtered through the escape-hatch
// suppression index before reaching the sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report   func(Diagnostic)
	suppress *suppressIndex
}

// NewPass assembles a Pass for one analyzer over one package, wiring the
// suppression index for the analyzer's escape-hatch annotation. report
// receives only unsuppressed diagnostics.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report:    report,
		suppress:  buildSuppressIndex(a.Name, fset, files),
	}
}

// Report emits a diagnostic unless an escape-hatch annotation covers its
// position.
func (p *Pass) Report(d Diagnostic) {
	if p.suppress.covers(p.Fset, d.Pos) {
		return
	}
	p.report(d)
}

// Reportf emits a formatted diagnostic through Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NonTestFiles returns the pass's files excluding _test.go files. All dbest
// analyzers check library invariants only; tests are free to, e.g., take
// several snapshots to compare generations.
func (p *Pass) NonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// suppressIndex records where one analyzer's escape-hatch annotations apply:
// individual source lines (annotation on the line or the line above) and
// whole function bodies (annotation in the func's doc comment).
type suppressIndex struct {
	lines  map[string]map[int]bool // filename -> suppressed lines
	ranges []posRange              // suppressed function bodies
}

type posRange struct{ lo, hi token.Pos }

// buildSuppressIndex scans every comment in files for "//lint:<name>"
// annotations (upstream staticcheck parses //lint: directives but ignores
// commands other than "ignore"/"file-ignore", so these coexist with it).
func buildSuppressIndex(name string, fset *token.FileSet, files []*ast.File) *suppressIndex {
	idx := &suppressIndex{lines: make(map[string]map[int]bool)}
	marker := "//lint:" + name
	matches := func(c *ast.Comment) bool {
		t := c.Text
		if !strings.HasPrefix(t, marker) {
			return false
		}
		rest := t[len(marker):]
		return rest == "" || rest[0] == ' ' || rest[0] == '\t'
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !matches(c) {
					continue
				}
				pos := fset.Position(c.Pos())
				fl := idx.lines[pos.Filename]
				if fl == nil {
					fl = make(map[int]bool)
					idx.lines[pos.Filename] = fl
				}
				// The annotation covers its own line (trailing comment) and
				// the next line (comment above the flagged statement).
				fl[pos.Line] = true
				fl[pos.Line+1] = true
			}
		}
		// Function-doc annotations cover the whole function.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if matches(c) {
					idx.ranges = append(idx.ranges, posRange{fd.Pos(), fd.End()})
					break
				}
			}
		}
	}
	return idx
}

func (idx *suppressIndex) covers(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	if fl := idx.lines[p.Filename]; fl != nil && fl[p.Line] {
		return true
	}
	for _, r := range idx.ranges {
		if pos >= r.lo && pos <= r.hi {
			return true
		}
	}
	return false
}
