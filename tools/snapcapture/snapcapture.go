// Package snapcapture enforces the read path's one-snapshot-per-call
// discipline: a function captures the engine snapshot (`e.snap.Load()` or a
// `snapshot()` helper) exactly once and answers entirely from that pinned,
// single-generation view.
//
// It reports, per function (closures are separate scopes):
//
//   - a second snapshot capture — two Loads can straddle a publication and
//     mix generations, the exact bug class TestPrepareTrainInterleave-
//     Consistency exists to catch dynamically;
//   - a snapshot capture inside a loop — each iteration would see a
//     different generation;
//   - a direct read of the live catalog (`e.catalog`) in a function that
//     also captures a snapshot — the live catalog can be generations ahead
//     of the pinned view.
//
// Writer-side functions that legitimately combine both (they serialize
// against other writers under appendMu) carry a "//lint:snapcapture
// <reason>" annotation on the line, the line above, or the function doc.
package snapcapture

import (
	"go/ast"
	"go/token"

	"dbest/tools/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "snapcapture",
	Doc:  "check that read-path functions capture the engine snapshot exactly once and don't mix it with live catalog reads",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScope(pass, fd.Name.Name, fd.Body)
		}
	}
	return nil, nil
}

// A capture records one snapshot-capture site.
type capture struct {
	pos    token.Pos
	inLoop bool
}

// checkScope analyzes one function scope. Nested function literals are
// separate scopes: a closure that captures its own snapshot once is fine,
// and its loop context does not leak in (each invocation re-captures).
func checkScope(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	var (
		captures    []capture
		catalogUses []token.Pos
	)
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkScope(pass, name+" (func literal)", n.Body)
			return
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
		case *ast.CallExpr:
			if isSnapshotCapture(n) {
				captures = append(captures, capture{n.Pos(), loopDepth > 0})
			}
		case *ast.SelectorExpr:
			// A bare `x.catalog` field read. `x.catalog.Foo()` parses as
			// Selector(Selector(x, catalog), Foo) so the inner selector is
			// still visited and recorded.
			if n.Sel.Name == "catalog" {
				catalogUses = append(catalogUses, n.Sel.Pos())
			}
		}
		first := true
		ast.Inspect(n, func(c ast.Node) bool {
			if first {
				first = false
				return true
			}
			if c != nil {
				walk(c, loopDepth)
			}
			return false
		})
	}
	walk(body, 0)

	for i, c := range captures {
		switch {
		case i > 0:
			pass.Reportf(c.pos,
				"second snapshot capture in %s: the read path must capture the engine snapshot exactly once per call so every answer is a single-generation view", name)
		case c.inLoop:
			pass.Reportf(c.pos,
				"snapshot capture inside a loop in %s: each iteration would pin a different generation; capture once before the loop", name)
		}
	}
	if len(captures) > 0 {
		for _, pos := range catalogUses {
			pass.Reportf(pos,
				"%s mixes a pinned snapshot with a live catalog read: answer from the captured snapshot, or annotate a writer-side exception with //lint:snapcapture", name)
		}
	}
}

// isSnapshotCapture recognizes `<expr>.snap.Load()` and `snapshot()` /
// `<expr>.snapshot()` calls.
func isSnapshotCapture(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "snapshot"
	case *ast.SelectorExpr:
		if fun.Sel.Name == "snapshot" {
			return true
		}
		if fun.Sel.Name != "Load" {
			return false
		}
		inner, ok := fun.X.(*ast.SelectorExpr)
		return ok && inner.Sel.Name == "snap"
	}
	return false
}
