// Package a holds snapcapture fixtures that must be flagged.
package a

type view struct{ gen uint64 }

type snapPtr struct{ v *view }

func (p *snapPtr) Load() *view { return p.v }

type catalogT struct{ gen uint64 }

func (c *catalogT) Generation() uint64 { return c.gen }

type engine struct {
	snap    snapPtr
	catalog *catalogT
}

// one captures exactly once: clean.
func one(e *engine) uint64 {
	v := e.snap.Load()
	return v.gen
}

// double captures twice: the two loads can straddle a publication and
// return views of different generations.
func double(e *engine) bool {
	a := e.snap.Load()
	b := e.snap.Load() // want `second snapshot capture in double`
	return a.gen == b.gen
}

// looped re-captures every iteration.
func looped(e *engine) uint64 {
	var g uint64
	for i := 0; i < 3; i++ {
		g = e.snap.Load().gen // want `snapshot capture inside a loop in looped`
	}
	return g
}

// mixed answers from a pinned snapshot but consults the live catalog too.
func mixed(e *engine) bool {
	v := e.snap.Load()
	return v.gen == e.catalog.Generation() // want `mixed mixes a pinned snapshot with a live catalog read`
}

// closureDouble: a closure is its own scope, but two captures inside it are
// still two captures.
func closureDouble(e *engine) func() bool {
	return func() bool {
		a := e.snap.Load()
		b := e.snap.Load() // want `second snapshot capture in closureDouble \(func literal\)`
		return a.gen == b.gen
	}
}
