// Package b holds snapcapture fixtures that must stay clean: single
// captures, closures with their own capture, catalog-only writers, and an
// escape-hatch annotated writer that mixes views deliberately.
package b

type view struct{ gen uint64 }

type snapPtr struct{ v *view }

func (p *snapPtr) Load() *view { return p.v }

type catalogT struct{ gen uint64 }

func (c *catalogT) Generation() uint64 { return c.gen }
func (c *catalogT) Invalidate()        { c.gen++ }

type engine struct {
	snap    snapPtr
	catalog *catalogT
}

// single is the canonical read path: one capture, all reads through it.
func single(e *engine) uint64 {
	v := e.snap.Load()
	return v.gen + v.gen
}

// perCall hands each closure invocation its own single capture; the loop in
// the caller does not make those captures "in a loop".
func perCall(e *engine) []uint64 {
	var out []uint64
	get := func() uint64 { return e.snap.Load().gen }
	for i := 0; i < 3; i++ {
		out = append(out, get())
	}
	return out
}

// writerOnly touches the live catalog without capturing a snapshot: that is
// the writer side's business, not snapcapture's.
func writerOnly(e *engine) {
	e.catalog.Invalidate()
}

// registerTable mirrors the real writer-side exception: it reads the
// current snapshot for bookkeeping and invalidates the live catalog, all
// serialized under the writer mutex.
//
//lint:snapcapture writer-side: serialized under appendMu, deliberately pairs a snapshot read with a live catalog mutation
func registerTable(e *engine) {
	v := e.snap.Load()
	_ = v.gen
	e.catalog.Invalidate()
}
