package snapcapture_test

import (
	"testing"

	"dbest/tools/internal/analysistest"
	"dbest/tools/snapcapture"
)

// TestFlagged checks the violation classes: double capture, capture in a
// loop, snapshot/live-catalog mixing, and double capture inside a closure.
func TestFlagged(t *testing.T) {
	analysistest.Run(t, snapcapture.Analyzer, "testdata/src/a")
}

// TestClean checks the non-flagging shapes: single capture, per-invocation
// closure captures under a caller loop, catalog-only writers, and the
// //lint:snapcapture escape hatch on a deliberate writer-side mix.
func TestClean(t *testing.T) {
	analysistest.Run(t, snapcapture.Analyzer, "testdata/src/b")
}
