package dbest_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dbest"
)

// TestConcurrentAppendSketchQueryRefresh is the sketch -race stress leg:
// appenders feeding novel values, sketch queriers, and the background
// refresher (kept busy by a regular model on the same table) all race.
// Sketch estimates must be monotone non-decreasing per querier (registers
// and counters only grow), every answer must come from a single sketch
// snapshot (a TOP listing never exceeds its K and never reports a zero
// count), absorbed-row counts must be monotone and land exactly on
// base+appended, and the refresher must never retrain a sketch.
func TestConcurrentAppendSketchQueryRefresh(t *testing.T) {
	eng := dbest.New(nil)
	base := shardStreamTable(8000, 7)
	channels := make([]string, 8000)
	for i := range channels {
		channels[i] = []string{"store", "web", "catalog"}[i%3]
	}
	base.AddStringColumn("c", channels)
	if err := eng.RegisterTable(base); err != nil {
		t.Fatal(err)
	}
	// A regular model keeps the refresher genuinely busy while sketches
	// absorb the same appends.
	if _, err := eng.Train("stream", []string{"x"}, "y", &dbest.TrainOptions{SampleSize: 1500, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("CREATE SKETCH dx ON stream(x) TYPE HLL"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("CREATE SKETCH tc ON stream(c) TYPE TOPK K 3"); err != nil {
		t.Fatal(err)
	}
	if err := eng.StartRefresher(&dbest.RefreshOptions{
		Interval:  2 * time.Millisecond,
		Threshold: 0.05,
		Workers:   2,
	}); err != nil {
		t.Fatal(err)
	}
	defer eng.StopRefresher()

	const (
		writers = 4
		batches = 15
		perB    = 40
	)
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for g := 0; g < writers; g++ {
		wg.Add(2)
		go func(g int) { // appender: every x value is brand new
			defer wg.Done()
			for i := 0; i < batches; i++ {
				rows := make([][]interface{}, perB)
				for j := range rows {
					x := float64(100000 + g*10000 + i*perB + j)
					rows[j] = []interface{}{x, 2 * x, []string{"store", "web", "catalog"}[j%3]}
				}
				if _, err := eng.Append("stream", rows); err != nil {
					fail(err)
					return
				}
			}
		}(g)
		go func() { // sketch querier: estimates must only grow
			defer wg.Done()
			prev := 0.0
			for i := 0; i < 25; i++ {
				res, err := eng.Query("SELECT COUNT(DISTINCT x) FROM stream")
				if err != nil {
					fail(err)
					return
				}
				if res.Source != "sketch" {
					t.Errorf("distinct source = %q, want sketch", res.Source)
					return
				}
				got := res.Aggregates[0].Value
				if got < prev-1e-6 {
					t.Errorf("distinct estimate went backwards: %v -> %v", prev, got)
					return
				}
				prev = got
				top, err := eng.Query("SELECT TOP 3(c) FROM stream")
				if err != nil {
					fail(err)
					return
				}
				entries := top.Aggregates[0].TopK
				if len(entries) != 3 {
					t.Errorf("TOP 3 returned %d entries", len(entries))
					return
				}
				for _, e := range entries {
					if e.Count == 0 {
						t.Errorf("TOP entry with zero count: %+v", entries)
						return
					}
				}
			}
		}()
	}
	// Absorbed-row poller: per-sketch counts never decrease.
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := map[string]uint64{}
		for i := 0; i < 50; i++ {
			for _, m := range eng.Models() {
				if m.Type == "" {
					continue
				}
				if m.AbsorbedRows < prev[m.Key] {
					t.Errorf("sketch %s absorbed count went backwards: %d -> %d",
						m.Key, prev[m.Key], m.AbsorbedRows)
					return
				}
				prev[m.Key] = m.AbsorbedRows
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Settle and check the final state: both sketches absorbed every
	// appended row, answers agree with exact scans of the final table,
	// and no sketch was ever retrained.
	eng.RefreshNow()
	const appended = writers * batches * perB
	res, err := eng.Query("SELECT COUNT(DISTINCT x) FROM stream")
	if err != nil {
		t.Fatal(err)
	}
	final := eng.Table("stream")
	wantDistinct, err := final.DistinctCount("x")
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(res.Aggregates[0].Value, float64(wantDistinct)); re > 0.02 {
		t.Fatalf("final COUNT(DISTINCT x) = %v, want %d (rel err %v)", res.Aggregates[0].Value, wantDistinct, re)
	}
	for _, m := range eng.Models() {
		if m.Type == "" {
			continue
		}
		if m.AbsorbedRows != 8000+appended {
			t.Fatalf("sketch %s absorbed %d rows, want %d", m.Key, m.AbsorbedRows, 8000+appended)
		}
	}
	for _, st := range eng.ModelStaleness() {
		if strings.Contains(st.Key, "sketch:") && st.Refreshes != 0 {
			t.Fatalf("sketch %s was retrained %d times", st.Key, st.Refreshes)
		}
	}
	if st := eng.SketchStats(); st.Updates != 2*appended {
		t.Fatalf("sketch_updates = %d, want %d (both sketches absorb every row)", st.Updates, 2*appended)
	}
}
