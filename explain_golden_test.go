package dbest_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dbest"
	"dbest/internal/datagen"
)

// Golden-file tests for the EXPLAIN operator-tree renderings: any change
// to plan shapes — a new operator, different details, reordered children —
// shows up as a reviewable diff against testdata/explain/*.golden.
// Regenerate with:
//
//	go test -run TestExplainGolden -update .
var updateGolden = flag.Bool("update", false, "rewrite the EXPLAIN golden files")

func TestExplainGolden(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 30000, Stores: 8, Seed: 12})
	store := datagen.Store(8, 12)
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterTable(store); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price",
		&dbest.TrainOptions{SampleSize: 3000, Seed: 12}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("store_sales", []string{"ss_list_price"}, "ss_net_profit",
		&dbest.TrainOptions{SampleSize: 2000, Seed: 12, GroupBy: "ss_store_sk"}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TrainNominal("store_sales", "ss_list_price", "ss_sales_price", "ss_channel",
		&dbest.TrainOptions{SampleSize: 2000, Seed: 12}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TrainSharded("store_sales", "ss_wholesale_cost", "ss_quantity", 8,
		&dbest.TrainOptions{SampleSize: 1000, Seed: 12}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("CREATE SKETCH dates ON store_sales(ss_sold_date_sk) TYPE HLL"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("CREATE SKETCH channels ON store_sales(ss_channel) TYPE TOPK K 5"); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		sql  string
	}{
		{"model_uni", `SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 200`},
		{"model_multi_agg", `SELECT COUNT(*), SUM(ss_sales_price), AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 200`},
		{"group_merge", `SELECT AVG(ss_net_profit) FROM store_sales WHERE ss_list_price BETWEEN 20 AND 80 GROUP BY ss_store_sk`},
		{"nominal", `SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_channel = 'web' AND ss_list_price BETWEEN 10 AND 50`},
		{"exact_scan", `SELECT AVG(ss_ext_discount_amt) FROM store_sales WHERE ss_quantity BETWEEN 5 AND 10`},
		{"exact_join", `SELECT AVG(ss_sales_price) FROM store_sales JOIN store ON ss_store_sk = s_store_sk WHERE s_number_of_employees BETWEEN 200 AND 250`},
		{"shard_merge_narrow", `SELECT AVG(ss_quantity) FROM store_sales WHERE ss_wholesale_cost BETWEEN 30 AND 34`},
		{"shard_merge_wide", `SELECT COUNT(*) FROM store_sales WHERE ss_wholesale_cost BETWEEN 5 AND 95`},
		{"shard_merge_percentile", `SELECT PERCENTILE(ss_wholesale_cost, 0.9) FROM store_sales`},
		{"sketch_distinct", `SELECT COUNT(DISTINCT ss_sold_date_sk) FROM store_sales`},
		{"sketch_topk", `SELECT TOP 3(ss_channel) FROM store_sales`},
		{"sketch_exact_fallback", `SELECT COUNT(DISTINCT ss_sold_date_sk) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 200`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plan, err := eng.Explain(tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			got := fmt.Sprintf("query: %s\npath: %s\n", tc.sql, plan.Path)
			if plan.Reason != "" {
				got += "reason: " + plan.Reason + "\n"
			}
			for _, k := range plan.ModelKeys {
				got += "model: " + k + "\n"
			}
			got += plan.Tree
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN rendering changed.\n--- got ---\n%s\n--- want (%s) ---\n%s\nRe-run with -update if intentional.",
					got, path, want)
			}
		})
	}
}
