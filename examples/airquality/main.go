// Airquality: hypothesis testing on the Beijing PM2.5 dataset (the paper's
// §4.5 workload) with multivariate range predicates (Eq. 10): how does
// pollution respond jointly to wind speed and temperature? The example also
// shows the engine's single-thread vs parallel GROUP BY evaluation.
//
// Run with: go run ./examples/airquality
package main

import (
	"fmt"
	"log"

	"dbest"
	"dbest/internal/datagen"
)

func main() {
	tb := datagen.Beijing(500_000, 11)
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		log.Fatal(err)
	}

	// Univariate models for single-predictor questions.
	for _, x := range []string{"IWS", "TEMP", "DEWP"} {
		if _, err := eng.Train("beijing", []string{x}, "PM25",
			&dbest.TrainOptions{SampleSize: 10_000, Seed: 11}); err != nil {
			log.Fatal(err)
		}
	}
	// A multivariate model for joint wind × temperature predicates.
	if _, err := eng.Train("beijing", []string{"IWS", "TEMP"}, "PM25",
		&dbest.TrainOptions{SampleSize: 8_000, Seed: 11}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Does wind disperse pollution? AVG(PM25) by wind-speed band:")
	for _, band := range [][2]float64{{0, 2}, {2, 5}, {5, 12}, {12, 40}} {
		sql := fmt.Sprintf("SELECT AVG(PM25) FROM beijing WHERE IWS BETWEEN %g AND %g", band[0], band[1])
		res, err := eng.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wind %5.1f-%5.1f m/s: PM2.5 ≈ %7.2f   (%v)\n",
			band[0], band[1], res.Aggregates[0].Value, res.Elapsed.Round(1000))
	}

	fmt.Println("\nJoint hypothesis (multivariate predicate, Eq. 10):")
	fmt.Println("  calm AND cold vs windy AND warm —")
	for _, c := range []struct {
		name           string
		w0, w1, t0, t1 float64
	}{
		{"calm & cold ", 0, 2, -10, 5},
		{"windy & warm", 8, 40, 15, 35},
	} {
		sql := fmt.Sprintf(`SELECT AVG(PM25) FROM beijing
			WHERE IWS BETWEEN %g AND %g AND TEMP BETWEEN %g AND %g`, c.w0, c.w1, c.t0, c.t1)
		res, err := eng.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		cnt, err := eng.Query(fmt.Sprintf(`SELECT COUNT(PM25) FROM beijing
			WHERE IWS BETWEEN %g AND %g AND TEMP BETWEEN %g AND %g`, c.w0, c.w1, c.t0, c.t1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: AVG(PM25) ≈ %7.2f over ≈ %9.0f hours (source=%s)\n",
			c.name, res.Aggregates[0].Value, cnt.Aggregates[0].Value, res.Source)
	}

	// What-if: the models can answer for hypothesized conditions with no
	// matching need for fresh data collection — one of the paper's
	// qualitative benefits (imputation / hypothesis support).
	fmt.Println("\nWhat-if: pollution level expected at a hypothetical steady 6 m/s wind:")
	res, err := eng.Query("SELECT AVG(PM25) FROM beijing WHERE IWS BETWEEN 5.9 AND 6.1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  PM2.5 ≈ %.2f\n", res.Aggregates[0].Value)
}
