// Channels: nominal categorical attributes (paper §2.3) and the model-only
// analytics API (paper §1, contributions i–v). One model pair per sales
// channel answers equality-predicate queries; the same models impute
// missing values, discover attribute relationships, and render subspace
// descriptions — all without touching the base data.
//
// Run with: go run ./examples/channels
package main

import (
	"fmt"
	"log"

	"dbest"
	"dbest/internal/datagen"
)

func main() {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 400_000, Seed: 9})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		log.Fatal(err)
	}

	// One (D, R) model pair per value of the nominal ss_channel column.
	info, err := eng.TrainNominal("store_sales", "ss_list_price", "ss_sales_price", "ss_channel",
		&dbest.TrainOptions{SampleSize: 10_000, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d per-channel models (%0.2f MB)\n\n",
		info.NumModels, float64(info.ModelBytes)/(1<<20))

	fmt.Println("Average selling price by channel for mid-priced items (list 40-80):")
	for _, ch := range []string{"store", "web", "catalog"} {
		res, err := eng.Query(fmt.Sprintf(
			`SELECT AVG(ss_sales_price), COUNT(ss_sales_price) FROM store_sales
			 WHERE ss_channel = '%s' AND ss_list_price BETWEEN 40 AND 80`, ch))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s avg ≈ %6.2f over ≈ %8.0f sales  (%v)\n",
			ch, res.Aggregates[0].Value, res.Aggregates[1].Value, res.Elapsed.Round(1000))
	}

	// The analytics API runs on any trained univariate model pair.
	if _, err := eng.Train("store_sales", []string{"ss_list_price"}, "ss_wholesale_cost",
		&dbest.TrainOptions{SampleSize: 10_000, Seed: 9}); err != nil {
		log.Fatal(err)
	}

	rel, err := eng.DiscoverRelationship("store_sales", "ss_list_price", "ss_wholesale_cost")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrelationship %s → %s: %s, model correlation %.3f, conditional mean spans [%.1f, %.1f]\n",
		rel.XCol, rel.YCol, rel.Direction, rel.Correlation, rel.YMin, rel.YMax)

	// Impute a missing wholesale cost for a hypothesized list price.
	for _, price := range []float64{25, 75, 150} {
		cost, err := eng.Impute("store_sales", "ss_list_price", "ss_wholesale_cost", price)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("imputed wholesale cost at list price %5.0f ≈ %6.2f\n", price, cost)
	}

	// Describe a data subspace from the models (Eqs. 1-9).
	d, err := eng.Describe("store_sales", "ss_list_price", "ss_wholesale_cost", 50, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubspace list price ∈ [%.0f, %.0f]:\n", d.Lb, d.Ub)
	fmt.Printf("  count ≈ %.0f   avg cost ≈ %.2f   stddev ≈ %.2f\n", d.Count, d.Avg, d.StdDev)
	fmt.Printf("  list-price quartiles within range: %.1f / %.1f / %.1f\n", d.XQ1, d.XMedian, d.XQ3)

	// Visualize the density and the fitted regression as sparklines.
	curve, err := eng.Curve("store_sales", "ss_list_price", "ss_wholesale_cost", 48)
	if err != nil {
		log.Fatal(err)
	}
	dens := make([]float64, len(curve))
	yhat := make([]float64, len(curve))
	for i, p := range curve {
		dens[i] = p.Density
		yhat[i] = p.YHat
	}
	fmt.Printf("\nD(list price):  %s\n", dbest.Sparkline(dens))
	fmt.Printf("R(list price):  %s\n", dbest.Sparkline(yhat))
	fmt.Printf("                %-10.0f ... %10.0f\n", curve[0].X, curve[len(curve)-1].X)
}
