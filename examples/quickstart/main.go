// Quickstart: train DBEst models over a synthetic sensor table and answer
// approximate aggregate queries from the models alone, comparing each
// answer with the exact result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dbest"
)

func main() {
	// 1. Build a table: one day of 1 Hz sensor readings — timestamp and a
	//    temperature that drifts sinusoidally with noise.
	const n = 500_000
	rng := rand.New(rand.NewSource(42))
	ts := make([]float64, n)
	temp := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i)
		hour := float64(i) / float64(n) * 24
		temp[i] = 15 + 8*math.Sin((hour-9)/24*2*math.Pi) + rng.NormFloat64()
	}
	tb := dbest.NewTable("sensor")
	tb.AddFloatColumn("ts", ts)
	tb.AddFloatColumn("temp", temp)

	// 2. Register the table and train a model pair for range predicates on
	//    ts with aggregates over temp, from a 10k-row uniform sample.
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		log.Fatal(err)
	}
	info, err := eng.Train("sensor", []string{"ts"}, "temp", &dbest.TrainOptions{
		SampleSize: 10_000,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s: %d bytes of model state (vs %d rows of data)\n",
		info.Key, info.ModelBytes, n)

	// 3. Ask questions. The models answer; the base table is only used
	//    here to show the exact answers next to the approximations.
	queries := []string{
		"SELECT COUNT(temp) FROM sensor WHERE ts BETWEEN 100000 AND 200000",
		"SELECT AVG(temp) FROM sensor WHERE ts BETWEEN 100000 AND 200000",
		"SELECT SUM(temp) FROM sensor WHERE ts BETWEEN 300000 AND 320000",
		"SELECT STDDEV(temp) FROM sensor WHERE ts BETWEEN 0 AND 500000",
		"SELECT PERCENTILE(ts, 0.9) FROM sensor",
	}
	for _, q := range queries {
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-78s => %12.4f  [%s, %v]\n",
			q, res.Aggregates[0].Value, res.Source, res.Elapsed.Round(1000))
	}

	// 4. Drop the base table: model-served queries keep working — DBEst
	//    needs no data at query time.
	eng.DropTable("sensor")
	res, err := eng.Query("SELECT AVG(temp) FROM sensor WHERE ts BETWEEN 50000 AND 60000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter dropping the table, AVG(temp) = %.4f (source=%s)\n",
		res.Aggregates[0].Value, res.Source)
}
