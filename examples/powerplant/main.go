// Powerplant: exploratory analytics on the Combined Cycle Power Plant
// dataset (the paper's §4.3 workload) — descriptive statistics of energy
// output across ambient-temperature subspaces, answered from models, with
// exact answers and relative errors printed for comparison.
//
// Run with: go run ./examples/powerplant
package main

import (
	"fmt"
	"log"
	"math"

	"dbest"
	"dbest/internal/datagen"
)

func main() {
	// The real CCPP set has 9 568 rows; the paper scales it up. We generate
	// a 2M-row statistically-shaped equivalent (see DESIGN.md §2).
	tb := datagen.ScaleUp(datagen.CCPP(0, 7), 2_000_000, 0.005, 7)

	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		log.Fatal(err)
	}
	// Train one model pair per predictor of interest.
	for _, x := range []string{"T", "AP", "RH"} {
		info, err := eng.Train("ccpp", []string{x}, "EP", &dbest.TrainOptions{
			SampleSize: 10_000, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model %-22s %8d bytes, built in %v\n",
			info.Key, info.ModelBytes, (info.SampleTime + info.TrainTime).Round(1e6))
	}

	fmt.Println("\nHow does energy output respond to ambient temperature?")
	fmt.Printf("%-14s %14s %14s %10s\n", "T range (°C)", "AVG(EP) model", "AVG(EP) exact", "rel err")
	for lo := 2.0; lo < 36; lo += 7 {
		hi := lo + 7
		sql := fmt.Sprintf("SELECT AVG(EP) FROM ccpp WHERE T BETWEEN %g AND %g", lo, hi)
		approx, err := eng.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		// Exact comparison: temporarily route around the model by querying
		// a column set with no model (COUNT over T is modeled, AVG(EP) by
		// exact scan through a second engine).
		exactEng := dbest.New(nil)
		if err := exactEng.RegisterTable(tb); err != nil {
			log.Fatal(err)
		}
		truth, err := exactEng.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		re := math.Abs(approx.Aggregates[0].Value-truth.Aggregates[0].Value) /
			math.Abs(truth.Aggregates[0].Value)
		fmt.Printf("[%4.0f, %4.0f)  %14.2f %14.2f %9.2f%%\n",
			lo, hi, approx.Aggregates[0].Value, truth.Aggregates[0].Value, 100*re)
	}

	fmt.Println("\nDescriptive statistics of EP for a hot afternoon (T in [28, 34]):")
	for _, af := range []string{"COUNT", "AVG", "SUM", "VARIANCE", "STDDEV"} {
		sql := fmt.Sprintf("SELECT %s(EP) FROM ccpp WHERE T BETWEEN 28 AND 34", af)
		res, err := eng.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s = %16.3f   (%v, source=%s)\n",
			af, res.Aggregates[0].Value, res.Elapsed.Round(1000), res.Source)
	}

	// Percentiles of the temperature distribution itself (density-based).
	fmt.Println("\nTemperature distribution percentiles (from the density estimator):")
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		sql := fmt.Sprintf("SELECT PERCENTILE(T, %g) FROM ccpp", p)
		res, err := eng.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  p%-4.0f = %6.2f °C\n", p*100, res.Aggregates[0].Value)
	}
}
