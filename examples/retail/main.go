// Retail: the paper's TPC-DS-style warehouse scenario — GROUP BY queries
// over per-store models (§4.6), a fact ⨝ dimension join answered from
// models trained on the precomputed join (§4.8), and catalog persistence:
// models are saved to disk, the engine restarted, and queries keep working
// without any base data.
//
// Run with: go run ./examples/retail
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dbest"
	"dbest/internal/datagen"
)

func main() {
	sales := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 1_000_000, Stores: 57, Seed: 3})
	stores := datagen.Store(57, 3)

	eng := dbest.New(nil)
	if err := eng.RegisterTable(sales); err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterTable(stores); err != nil {
		log.Fatal(err)
	}

	// Per-store models: one (D, R) pair per ss_store_sk value, trained in
	// parallel, sized ~2k sample rows per group.
	info, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price",
		&dbest.TrainOptions{SampleSize: 2_000, GroupBy: "ss_store_sk", Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d per-store models (%0.1f MB) in %v\n",
		info.NumModels, float64(info.ModelBytes)/(1<<20),
		(info.SampleTime + info.TrainTime).Round(1e6))

	// The paper's §2.2 example query: revenue per store for a date range.
	res, err := eng.Query(`SELECT ss_store_sk, SUM(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 400 AND 1200 GROUP BY ss_store_sk`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrevenue by store (date 400-1200), %d groups in %v:\n",
		len(res.Aggregates[0].Groups), res.Elapsed.Round(1000))
	for _, g := range res.Aggregates[0].Groups[:5] {
		fmt.Printf("  store %2d  ≈ %14.0f\n", g.Group, g.Value)
	}
	fmt.Println("  ... (first 5 of", len(res.Aggregates[0].Groups), "groups)")

	// Join support (§2.2 approach 1): precompute store_sales ⨝ store,
	// sample it, train, discard. Queries then range over the dimension
	// attribute without any join at query time.
	jinfo, err := eng.TrainJoin("store_sales", "store", "ss_store_sk", "s_store_sk",
		[]string{"s_number_of_employees"}, "ss_net_profit",
		&dbest.TrainOptions{SampleSize: 10_000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoin models: %0.2f MB built in %v (join precompute included)\n",
		float64(jinfo.ModelBytes)/(1<<20), (jinfo.SampleTime + jinfo.TrainTime).Round(1e6))

	jres, err := eng.Query(`SELECT AVG(ss_net_profit) FROM store_sales JOIN store
		ON ss_store_sk = s_store_sk WHERE s_number_of_employees BETWEEN 220 AND 260`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("avg profit at mid-sized stores ≈ %.2f (%v, source=%s)\n",
		jres.Aggregates[0].Value, jres.Elapsed.Round(1000), jres.Source)

	// Persistence: save the catalog, start a fresh engine with NO tables,
	// load the models, and answer the same queries.
	dir, err := os.MkdirTemp("", "dbest-retail")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "models.gob")
	if err := eng.SaveModels(path); err != nil {
		log.Fatal(err)
	}
	fresh := dbest.New(nil)
	if err := fresh.LoadModels(path); err != nil {
		log.Fatal(err)
	}
	res2, err := fresh.Query(`SELECT ss_store_sk, AVG(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 400 AND 1200 GROUP BY ss_store_sk`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrestarted engine with models only: %d groups answered in %v (no base data loaded)\n",
		len(res2.Aggregates[0].Groups), res2.Elapsed.Round(1000))
}
