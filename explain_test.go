package dbest_test

import (
	"strings"
	"testing"

	"dbest"
	"dbest/internal/datagen"
)

func TestExplainModelPath(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	p, err := eng.Explain(`SELECT AVG(ss_sales_price) FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 100 AND 200`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Path != "model" || len(p.ModelKeys) != 1 {
		t.Fatalf("plan = %+v", p)
	}
	if !strings.Contains(p.ModelKeys[0], "store_sales|ss_sold_date_sk|ss_sales_price") {
		t.Fatalf("key = %q", p.ModelKeys[0])
	}
}

func TestExplainExactPath(t *testing.T) {
	eng, _ := newSalesEngine(t, 20000)
	p, err := eng.Explain(`SELECT AVG(ss_quantity) FROM store_sales
		WHERE ss_wholesale_cost BETWEEN 5 AND 10`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Path != "exact" || p.Reason == "" {
		t.Fatalf("plan = %+v", p)
	}
}

func TestExplainNominal(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 20000, Seed: 61})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TrainNominal("store_sales", "ss_list_price", "ss_sales_price", "ss_channel",
		&dbest.TrainOptions{SampleSize: 2000, Seed: 61}); err != nil {
		t.Fatal(err)
	}
	p, err := eng.Explain(`SELECT AVG(ss_sales_price) FROM store_sales
		WHERE ss_channel = 'web' AND ss_list_price BETWEEN 10 AND 50`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Path != "nominal-model" || len(p.ModelKeys) != 1 {
		t.Fatalf("plan = %+v", p)
	}
	// Unsupported nominal shape: explained as exact with a reason.
	p2, err := eng.Explain(`SELECT AVG(ss_sales_price) FROM store_sales
		WHERE ss_channel = 'web' AND ss_list_price BETWEEN 10 AND 50
		AND ss_wholesale_cost BETWEEN 1 AND 5`)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Path != "exact" {
		t.Fatalf("plan = %+v", p2)
	}
}

func TestExplainParseError(t *testing.T) {
	eng := dbest.New(nil)
	if _, err := eng.Explain("SELECT"); err == nil {
		t.Fatal("want parse error")
	}
}

// TestExplainOperatorTrees: EXPLAIN renders the physical operator tree for
// the model, exact and group-by paths.
func TestExplainOperatorTrees(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 30000, Stores: 8, Seed: 12})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price",
		&dbest.TrainOptions{SampleSize: 3000, Seed: 12}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("store_sales", []string{"ss_sold_date_sk"}, "ss_sales_price",
		&dbest.TrainOptions{SampleSize: 2000, Seed: 12, GroupBy: "ss_store_sk"}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		sql  string
		want []string
	}{
		{"SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 200",
			[]string{"Project [model]", "ModelEval AVG(ss_sales_price)"}},
		{"SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 200 GROUP BY ss_store_sk",
			[]string{"Project [model]", "GroupMerge AVG(ss_sales_price)", "groupby=ss_store_sk"}},
		{"SELECT AVG(ss_quantity) FROM store_sales WHERE ss_wholesale_cost BETWEEN 5 AND 10",
			[]string{"Project [exact]", "ExactScan AVG(ss_quantity)", "TableScan store_sales"}},
	}
	for _, tc := range cases {
		p, err := eng.Explain(tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		for _, want := range tc.want {
			if !strings.Contains(p.Tree, want) {
				t.Fatalf("explain %q: tree missing %q:\n%s", tc.sql, want, p.Tree)
			}
		}
	}
}

// Model-definition statements explain without executing: the validated
// spec is rendered, no training runs, and invalid specs fail fast.
func TestExplainModelStatements(t *testing.T) {
	eng := dbest.New(nil)
	p, err := eng.Explain("CREATE MODEL m ON sales(date; price) SHARDS 8 SAMPLE 1000")
	if err != nil {
		t.Fatal(err)
	}
	if p.Path != "create-model" || !strings.Contains(p.Tree, "CreateModel(m: sales(date; price) SHARDS 8 SAMPLE 1000)") {
		t.Fatalf("explain CREATE MODEL = %+v", p)
	}
	if len(eng.ModelKeys()) != 0 {
		t.Fatal("EXPLAIN must not train anything")
	}
	if _, err := eng.Explain("CREATE MODEL m ON sales(a, b; y) SHARDS 2"); err == nil {
		t.Fatal("explaining an invalid spec should fail validation")
	}

	p, err = eng.Explain("DROP MODEL m")
	if err != nil || p.Path != "drop-model" || !strings.Contains(p.Tree, "DropModel(m)") {
		t.Fatalf("explain DROP MODEL = %+v, %v", p, err)
	}
	p, err = eng.Explain("SHOW MODELS")
	if err != nil || p.Path != "show-models" {
		t.Fatalf("explain SHOW MODELS = %+v, %v", p, err)
	}
}
