package dbest_test

import (
	"path/filepath"
	"strings"
	"testing"

	"dbest"
	"dbest/internal/datagen"
	"dbest/internal/exact"
)

// newSketchEngine builds an engine over StoreSales rows with an HLL sketch
// on ss_sold_date_sk and a TOP-K sketch on ss_channel, both created through
// the SQL front door.
func newSketchEngine(t *testing.T, rows int) (*dbest.Engine, *dbest.Table) {
	t.Helper()
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: rows, Seed: 3})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Exec("CREATE SKETCH dates ON store_sales(ss_sold_date_sk) TYPE HLL PRECISION 14")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "create-sketch" || res.Train == nil {
		t.Fatalf("create-sketch result = %+v", res)
	}
	if _, err := eng.Exec("CREATE SKETCH channels ON store_sales(ss_channel) TYPE TOPK K 3"); err != nil {
		t.Fatal(err)
	}
	return eng, tb
}

func TestSketchEndToEnd(t *testing.T) {
	eng, tb := newSketchEngine(t, 30000)

	res, err := eng.Query("SELECT COUNT(DISTINCT ss_sold_date_sk) FROM store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "sketch" {
		t.Fatalf("source = %q, want sketch", res.Source)
	}
	wantDistinct, err := tb.DistinctCount("ss_sold_date_sk")
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(res.Aggregates[0].Value, float64(wantDistinct)); re > 0.02 {
		t.Fatalf("COUNT(DISTINCT): got %v, want %d (rel err %v)", res.Aggregates[0].Value, wantDistinct, re)
	}

	res, err = eng.Query("SELECT TOP 3(ss_channel) FROM store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "sketch" {
		t.Fatalf("source = %q, want sketch", res.Source)
	}
	want, err := exact.TopValues(tb, "ss_channel", 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Aggregates[0].TopK
	if len(got) != len(want) {
		t.Fatalf("TOP 3 returned %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Value != want[i].Value {
			t.Fatalf("TOP rank %d: got %q, want %q (got %+v)", i, got[i].Value, want[i].Value, got)
		}
		if re := relErr(float64(got[i].Count), float64(want[i].Count)); re > 0.02 {
			t.Fatalf("TOP rank %d count: got %d, want %d", i, got[i].Count, want[i].Count)
		}
	}

	// EXPLAIN routes through SketchEval with the sketch kernel tag.
	plan, err := eng.Explain("SELECT COUNT(DISTINCT ss_sold_date_sk) FROM store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Path != dbest.PathSketch {
		t.Fatalf("explain path = %q, want sketch", plan.Path)
	}
	if !strings.Contains(plan.Tree, "SketchEval") || !strings.Contains(plan.Tree, "kernel=sketch") {
		t.Fatalf("explain tree missing SketchEval kernel=sketch:\n%s", plan.Tree)
	}

	st := eng.SketchStats()
	if st.Hits < 2 {
		t.Fatalf("sketch_hits = %d, want >= 2", st.Hits)
	}
	if st.Bytes <= 0 {
		t.Fatalf("sketch_bytes = %d, want > 0", st.Bytes)
	}

	// The catalog listing reports sketches with their kind and absorbed
	// rows, and no raw key suffixes.
	var hll, topk int
	for _, m := range eng.Models() {
		switch m.Type {
		case "hll":
			hll++
		case "topk":
			topk++
		default:
			continue
		}
		if m.AbsorbedRows != 30000 {
			t.Fatalf("model %s absorbed %d rows, want 30000", m.Key, m.AbsorbedRows)
		}
		if !m.Tracked {
			t.Fatalf("model %s not tracked", m.Key)
		}
		if strings.Contains(m.Key, "@") {
			t.Fatalf("sketch key %q leaks a shard suffix", m.Key)
		}
	}
	if hll != 1 || topk != 1 {
		t.Fatalf("models list: %d hll + %d topk sketches, want 1 + 1", hll, topk)
	}
}

// TestSketchAbsorbAppends is the freshness acceptance check: appended rows
// change sketch answers with zero refresher retrains.
func TestSketchAbsorbAppends(t *testing.T) {
	eng := dbest.New(nil)
	tb := dbest.NewTable("t")
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	tb.AddFloatColumn("x", xs)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("CREATE SKETCH xs ON t(x) TYPE HLL"); err != nil {
		t.Fatal(err)
	}
	if err := eng.StartRefresher(&dbest.RefreshOptions{Threshold: 0.01, MinRows: 1}); err != nil {
		t.Fatal(err)
	}
	defer eng.StopRefresher()

	// Append 1000 brand-new distinct values — far past any staleness
	// threshold for a model, but sketches absorb instead of staling.
	rows := make([][]interface{}, 1000)
	for i := range rows {
		rows[i] = []interface{}{float64(1000 + i)}
	}
	if _, err := eng.Append("t", rows); err != nil {
		t.Fatal(err)
	}
	eng.RefreshNow()

	res, err := eng.Query("SELECT COUNT(DISTINCT x) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(res.Aggregates[0].Value, 2000); re > 0.02 {
		t.Fatalf("COUNT(DISTINCT) after append: got %v, want 2000 (rel err %v)", res.Aggregates[0].Value, re)
	}
	if st := eng.SketchStats(); st.Updates != 1000 {
		t.Fatalf("sketch_updates = %d, want 1000", st.Updates)
	}
	if rs := eng.RefreshStats(); rs.Refreshes != 0 || rs.Failures != 0 {
		t.Fatalf("refresher retrained: %+v, want zero refreshes", rs)
	}
}

// TestSketchSaveLoadRoundTrip persists sketches with the catalog and checks
// a reloaded engine keeps answering AND keeps absorbing appends.
func TestSketchSaveLoadRoundTrip(t *testing.T) {
	eng, tb := newSketchEngine(t, 10000)
	before, err := eng.Query("SELECT COUNT(DISTINCT ss_sold_date_sk) FROM store_sales")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "models.bin")
	if err := eng.SaveModels(path); err != nil {
		t.Fatal(err)
	}

	eng2 := dbest.New(nil)
	if err := eng2.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if err := eng2.LoadModels(path); err != nil {
		t.Fatal(err)
	}
	after, err := eng2.Query("SELECT COUNT(DISTINCT ss_sold_date_sk) FROM store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if after.Source != "sketch" || after.Aggregates[0].Value != before.Aggregates[0].Value {
		t.Fatalf("reloaded answer = %v (%s), want %v (sketch)",
			after.Aggregates[0].Value, after.Source, before.Aggregates[0].Value)
	}

	// The reloaded sketch must keep absorbing: append rows with novel
	// channel values and check the TOP listing reflects them.
	rows := make([][]interface{}, 40000)
	for i := range rows {
		rows[i] = []interface{}{int64(1), int64(1), 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, "outlet"}
	}
	if _, err := eng2.Append("store_sales", rows); err != nil {
		t.Fatal(err)
	}
	res, err := eng2.Query("SELECT TOP 1(ss_channel) FROM store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "sketch" || len(res.Aggregates[0].TopK) != 1 || res.Aggregates[0].TopK[0].Value != "outlet" {
		t.Fatalf("after reload+append, TOP 1 = %+v (%s), want outlet via sketch",
			res.Aggregates[0].TopK, res.Source)
	}
}

// TestSketchExactFallback: predicates, missing sketches and mixed
// aggregates all fall through to the exact scan — and the exact DISTINCT /
// TOP answers are right.
func TestSketchExactFallback(t *testing.T) {
	eng, tb := newSketchEngine(t, 20000)

	res, err := eng.Query("SELECT COUNT(DISTINCT ss_sold_date_sk) FROM store_sales WHERE ss_sold_date_sk BETWEEN 100 AND 200")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "exact" {
		t.Fatalf("predicated distinct source = %q, want exact", res.Source)
	}
	want, err := exact.DistinctCount(tb, "ss_sold_date_sk",
		[]exact.Range{{Column: "ss_sold_date_sk", Lb: 100, Ub: 200}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregates[0].Value != want {
		t.Fatalf("exact distinct = %v, want %v", res.Aggregates[0].Value, want)
	}

	// No sketch on this column: exact fallback, not an error.
	res, err = eng.Query("SELECT TOP 2(ss_store_sk) FROM store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "exact" || len(res.Aggregates[0].TopK) != 2 {
		t.Fatalf("uncovered TOP = %+v (%s), want 2 exact entries", res.Aggregates[0].TopK, res.Source)
	}

	// Mixed sketch and model aggregates answer exactly so both see the
	// same rows.
	res, err = eng.Query("SELECT COUNT(DISTINCT ss_sold_date_sk), AVG(ss_sales_price) FROM store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "exact" {
		t.Fatalf("mixed aggregates source = %q, want exact", res.Source)
	}

	// GROUP BY is rejected at plan time.
	if _, err := eng.Query("SELECT COUNT(DISTINCT ss_sold_date_sk) FROM store_sales GROUP BY ss_store_sk"); err == nil {
		t.Fatal("want error for DISTINCT with GROUP BY")
	}
}

func TestDropSketch(t *testing.T) {
	eng, _ := newSketchEngine(t, 5000)
	res, err := eng.Exec("DROP SKETCH dates")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) != 1 {
		t.Fatalf("dropped %v, want one key", res.Dropped)
	}
	q, err := eng.Query("SELECT COUNT(DISTINCT ss_sold_date_sk) FROM store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if q.Source != "exact" {
		t.Fatalf("after drop, source = %q, want exact", q.Source)
	}
}
