package dbest

import (
	"fmt"
	"math"
	"strings"

	"dbest/internal/core"
)

// This file implements the paper's qualitative contributions (§1): beyond
// AQP, the trained models support (i) imputing missing attribute values,
// (ii) estimating a dependent variable for missing or hypothesized
// independent values, (iv) quickly discovering relationships between
// attributes, and (v) quickly visualizing descriptive statistics for the
// dependent attribute in data subspaces — all without touching base data.

// findUni locates a univariate, ungrouped model set for (tbl, xcol → ycol).
func (e *Engine) findUni(tbl, xcol, ycol string) (*core.ModelSet, error) {
	ms := e.catalog.Lookup(tbl, []string{xcol}, ycol, "")
	if ms == nil || ms.Uni == nil {
		return nil, fmt.Errorf("dbest: no univariate model for %s(%s→%s); Train it first", tbl, xcol, ycol)
	}
	return ms, nil
}

// Impute estimates the value of ycol for a row whose xcol value is known
// (or hypothesized) to be x — the regression model's point prediction.
// This is the paper's missing-value imputation / what-if primitive.
func (e *Engine) Impute(tbl, xcol, ycol string, x float64) (float64, error) {
	ms, err := e.findUni(tbl, xcol, ycol)
	if err != nil {
		return 0, err
	}
	return ms.Uni.R.Predict1(x), nil
}

// CurvePoint is one sample of the fitted relationship: the density of x and
// the regression estimate of y at x.
type CurvePoint struct {
	X       float64
	Density float64
	YHat    float64
}

// Curve samples the model pair on a uniform grid over the observed x
// domain — the raw material for "quickly visualizing descriptive
// statistics ... in data subspaces".
func (e *Engine) Curve(tbl, xcol, ycol string, points int) ([]CurvePoint, error) {
	ms, err := e.findUni(tbl, xcol, ycol)
	if err != nil {
		return nil, err
	}
	if points < 2 {
		points = 32
	}
	m := ms.Uni
	out := make([]CurvePoint, points)
	for i := 0; i < points; i++ {
		x := m.XLo + (m.XHi-m.XLo)*float64(i)/float64(points-1)
		out[i] = CurvePoint{X: x, Density: m.D.Density(x), YHat: m.R.Predict1(x)}
	}
	return out, nil
}

// Relationship summarizes the model-derived association between xcol and
// ycol: the density-weighted correlation between x and the conditional mean
// R(x), the direction, and the fraction of the y-variation the trend
// explains across the domain.
type Relationship struct {
	XCol, YCol string
	// Correlation of x and R(x) under the density D — a model-based analog
	// of Pearson correlation between x and y's systematic component.
	Correlation float64
	// Direction is "increasing", "decreasing", or "mixed" from the sign of
	// the trend over the central 90% of the density mass.
	Direction string
	// YRange is the spread of the conditional mean across the domain,
	// useful to judge practical significance.
	YMin, YMax float64
}

// DiscoverRelationship computes a Relationship report from the models only.
func (e *Engine) DiscoverRelationship(tbl, xcol, ycol string) (*Relationship, error) {
	ms, err := e.findUni(tbl, xcol, ycol)
	if err != nil {
		return nil, err
	}
	m := ms.Uni
	// Work on the central mass to avoid kernel-tail artifacts.
	lo := m.D.Quantile(0.05)
	hi := m.D.Quantile(0.95)
	const grid = 256
	var wSum, xMean, yMean float64
	xs := make([]float64, grid)
	ys := make([]float64, grid)
	ws := make([]float64, grid)
	for i := 0; i < grid; i++ {
		x := lo + (hi-lo)*float64(i)/float64(grid-1)
		w := m.D.Density(x)
		y := m.R.Predict1(x)
		xs[i], ys[i], ws[i] = x, y, w
		wSum += w
		xMean += w * x
		yMean += w * y
	}
	if wSum == 0 {
		return nil, fmt.Errorf("dbest: density has no mass on [%v, %v]", lo, hi)
	}
	xMean /= wSum
	yMean /= wSum
	var cxy, cxx, cyy float64
	for i := range xs {
		dx := xs[i] - xMean
		dy := ys[i] - yMean
		cxy += ws[i] * dx * dy
		cxx += ws[i] * dx * dx
		cyy += ws[i] * dy * dy
	}
	rel := &Relationship{XCol: xcol, YCol: ycol}
	if cxx > 0 && cyy > 0 {
		rel.Correlation = cxy / math.Sqrt(cxx*cyy)
	}
	ups, downs := 0, 0
	rel.YMin, rel.YMax = math.Inf(1), math.Inf(-1)
	for i := range ys {
		if ys[i] < rel.YMin {
			rel.YMin = ys[i]
		}
		if ys[i] > rel.YMax {
			rel.YMax = ys[i]
		}
		if i > 0 {
			switch {
			case ys[i] > ys[i-1]:
				ups++
			case ys[i] < ys[i-1]:
				downs++
			}
		}
	}
	switch {
	case ups >= 9*downs:
		rel.Direction = "increasing"
	case downs >= 9*ups:
		rel.Direction = "decreasing"
	default:
		rel.Direction = "mixed"
	}
	return rel, nil
}

// Description holds the full descriptive-statistics panel for the dependent
// attribute over a data subspace, computed from the models (Eqs. 1–9).
type Description struct {
	XCol, YCol string
	Lb, Ub     float64
	Count      float64
	Avg        float64
	Sum        float64
	Variance   float64
	StdDev     float64
	// Quartiles of the x distribution conditioned on the range.
	XQ1, XMedian, XQ3 float64
}

// Describe computes the panel for y over x ∈ [lb, ub].
func (e *Engine) Describe(tbl, xcol, ycol string, lb, ub float64) (*Description, error) {
	ms, err := e.findUni(tbl, xcol, ycol)
	if err != nil {
		return nil, err
	}
	m := ms.Uni
	d := &Description{XCol: xcol, YCol: ycol, Lb: lb, Ub: ub}
	d.Count = m.Count(lb, ub)
	if d.Avg, err = m.Avg(lb, ub); err != nil {
		return nil, err
	}
	if d.Sum, err = m.Sum(lb, ub); err != nil {
		return nil, err
	}
	if d.Variance, err = m.VarianceY(lb, ub); err != nil {
		return nil, err
	}
	d.StdDev = math.Sqrt(d.Variance)
	for _, q := range []struct {
		p   float64
		dst *float64
	}{{0.25, &d.XQ1}, {0.5, &d.XMedian}, {0.75, &d.XQ3}} {
		v, err := m.Percentile(q.p, lb, ub)
		if err != nil {
			return nil, err
		}
		*q.dst = v
	}
	return d, nil
}

// Sparkline renders values as a unicode sparkline — a terminal-friendly
// visualization for Curve output.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[i])
	}
	return b.String()
}
