package dbest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/maphash"
	"strings"
	"time"

	"dbest/internal/core"
	"dbest/internal/ingest"
	"dbest/internal/sample"
	"dbest/internal/sketch"
	"dbest/internal/table"
)

// Declarative model definitions: a ModelSpec is the first-class description
// of one trained model pair (or ensemble) — what it is trained over, which
// columns it covers, and how it is sampled — and Engine.CreateModel is the
// single entry point that executes one. The ten legacy Train* methods are
// thin wrappers that assemble a spec and call CreateModel.
//
// Because a spec is plain data (unlike the opaque retrain closures it
// replaces), it is persisted alongside the models in the catalog: a catalog
// reloaded via LoadModels re-registers every spec-carrying model with the
// staleness ledger, so background refresh keeps working across process
// restarts — the serving lifecycle the closure-based API could not support.
//
// The SQL front end exposes the same surface declaratively:
//
//	CREATE MODEL <name> ON <tbl>(x [, x2]; y)
//	    [JOIN <tbl2> ON lk = rk [FRACTION num/denom]]
//	    [GROUP BY c] [NOMINAL BY c] [SHARDS k] [SAMPLE n] [SEED s] [GRID knots | GRID OFF]
//	DROP MODEL <name>
//	SHOW MODELS
//
// via Engine.Exec, the cmd/dbest stdin loop and the dbest-serve HTTP API.

// JoinSpec describes a two-table equi-join model source (§2.2). With
// SampleNum/SampleDenom zero the join is precomputed in full before
// sampling (the paper's first join approach); with a nonzero keep ratio
// each side is first reduced by hashed (universe) sampling on the join key
// (the second approach, for joins too large to precompute).
type JoinSpec struct {
	Table    string `json:"table"`
	LeftKey  string `json:"left_key"`
	RightKey string `json:"right_key"`
	// Sampled selects the hashed-sampling approach explicitly; setting a
	// keep ratio implies it, so JSON bodies may give just the ratio.
	Sampled bool `json:"sampled,omitempty"`
	// SampleNum/SampleDenom is the hash-band keep ratio (e.g. 1/4 keeps
	// ≈ 25% of join-key values), required when sampling.
	SampleNum   uint64 `json:"sample_num,omitempty"`
	SampleDenom uint64 `json:"sample_denom,omitempty"`
}

// sampled reports whether the join source uses hashed join-key sampling.
func (j *JoinSpec) sampled() bool { return j.Sampled || j.SampleNum != 0 || j.SampleDenom != 0 }

// ModelSpec declares one model build: the source (a table, optionally
// joined to a second), the predicate columns XCols and aggregate column
// YCol, the model topology (GroupBy / NominalBy / Shards) and the sampling
// and training budget. The zero values of the optional fields mean
// "default" (10k-row sample, auto seed 0, scale 1, ensemble regressor).
//
// The JSON form of a spec is its wire and persistence format: POST /train
// accepts it as the request body, and every model trained through
// CreateModel carries its spec in the catalog so SaveModels/LoadModels
// round-trips it.
type ModelSpec struct {
	// Name is an optional user-facing handle for DROP MODEL / SHOW MODELS;
	// models remain addressable by their catalog key regardless.
	Name string `json:"name,omitempty"`
	// Table is the base (or join left-side) table.
	Table string `json:"table"`
	// Join, when set, trains over the equi-join of Table and Join.Table.
	Join *JoinSpec `json:"join,omitempty"`
	// XCols are the range-predicate columns (one for univariate, two or
	// more for multivariate box predicates).
	XCols []string `json:"xcols"`
	// YCol is the aggregate column.
	YCol string `json:"ycol"`
	// GroupBy builds one model pair per value of this Int64 column.
	GroupBy string `json:"groupby,omitempty"`
	// NominalBy builds one model pair per distinct value of this String
	// column (§2.3 categorical support). Requires a single x column.
	NominalBy string `json:"nominal_by,omitempty"`
	// Shards >= 1 builds a range-sharded ensemble of that many shards on
	// the single x column; 0 builds a plain model.
	Shards int `json:"shards,omitempty"`

	// Sketch selects a sketch build instead of a model pair: "hll" answers
	// COUNT(DISTINCT x), "topk" answers TOP k(x) (SQL: CREATE SKETCH). A
	// sketch spec covers exactly one x column and no y column, and none of
	// the model topology or sampling fields apply — the sketch absorbs every
	// row, and keeps absorbing appended rows with zero retrains.
	Sketch string `json:"sketch,omitempty"`
	// Precision is the HLL register precision (2^p registers), 4..18;
	// 0 uses the default (14, ~0.8% standard error).
	Precision int `json:"precision,omitempty"`
	// TopK is how many heavy-hitter candidates a topk sketch tracks;
	// 0 uses the default (10).
	TopK int `json:"topk,omitempty"`

	// SampleSize is the uniform (reservoir) sample budget; with GroupBy it
	// is per group. Default 10 000.
	SampleSize int `json:"sample_size,omitempty"`
	// Seed makes sampling and training deterministic.
	Seed int64 `json:"seed,omitempty"`
	// Scale is the logical rows represented per physical row. Default 1.
	Scale float64 `json:"scale,omitempty"`
	// MinGroupModel: groups whose sample is smaller keep raw tuples
	// instead of models. Default 30.
	MinGroupModel int `json:"min_group_model,omitempty"`
	// Workers bounds parallel per-group training. 0 = GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// EnsemblePLR adds a piecewise-linear constituent to the regression
	// ensemble.
	EnsemblePLR bool `json:"ensemble_plr,omitempty"`
	// KDEBins is the density-estimator grid resolution. Default 1024.
	KDEBins int `json:"kde_bins,omitempty"`
	// Regressor selects the regression family: "" or "ensemble" (default),
	// or a single constituent "gboost", "xgboost", "plr".
	Regressor string `json:"regressor,omitempty"`
	// GridKnots is the base knot budget of the train-time evaluation grid
	// that answers range aggregates in constant time (SQL: GRID <knots> |
	// GRID OFF). 0 uses the default budget, a positive value sets it, and a
	// negative value disables grids so every integral goes through adaptive
	// quadrature.
	GridKnots int `json:"grid_knots,omitempty"`
}

// regressorFamilies mirrors the families core's fitRegressor accepts, so a
// bad spec fails Validate instead of a training run.
var regressorFamilies = map[string]bool{
	"": true, "ensemble": true, "gboost": true, "xgboost": true, "plr": true,
}

// Validate centralizes every argument check the legacy Train* entry points
// scattered: a spec that validates is structurally executable (training can
// still fail on data conditions — unknown columns, empty tables).
func (s *ModelSpec) Validate() error {
	if s.Table == "" {
		return errors.New("dbest: model spec requires a table")
	}
	if s.Sketch != "" {
		return s.validateSketch()
	}
	if len(s.XCols) == 0 {
		return errors.New("dbest: model spec requires at least one x column")
	}
	seen := make(map[string]bool, len(s.XCols))
	for _, x := range s.XCols {
		if x == "" {
			return errors.New("dbest: model spec has an empty x column")
		}
		if seen[x] {
			return fmt.Errorf("dbest: model spec repeats x column %q", x)
		}
		seen[x] = true
	}
	if s.YCol == "" {
		return errors.New("dbest: model spec requires a y column")
	}
	if s.Shards < 0 {
		return fmt.Errorf("dbest: model spec shard count %d is negative", s.Shards)
	}
	if s.Shards >= 1 {
		if len(s.XCols) != 1 {
			return errors.New("dbest: sharded training requires exactly one x column")
		}
		if s.GroupBy != "" {
			return errors.New("dbest: sharded training does not support GROUP BY")
		}
		if s.NominalBy != "" {
			return errors.New("dbest: sharded training does not support NOMINAL BY")
		}
		if s.Join != nil {
			return errors.New("dbest: sharded training does not support joins")
		}
	}
	if s.NominalBy != "" {
		if len(s.XCols) != 1 {
			return errors.New("dbest: nominal training requires exactly one x column")
		}
		if s.GroupBy != "" {
			return errors.New("dbest: nominal training does not support GROUP BY")
		}
		if s.Join != nil {
			return errors.New("dbest: nominal training does not support joins")
		}
	}
	if j := s.Join; j != nil {
		if j.Table == "" || j.LeftKey == "" || j.RightKey == "" {
			return errors.New("dbest: join spec requires table, left_key and right_key")
		}
		if j.sampled() {
			if j.SampleNum == 0 || j.SampleDenom == 0 {
				return fmt.Errorf("dbest: hash-band keep ratio %d/%d must have nonzero numerator and denominator",
					j.SampleNum, j.SampleDenom)
			}
			if j.SampleNum > j.SampleDenom {
				return fmt.Errorf("dbest: hash-band keep ratio %d/%d exceeds 1", j.SampleNum, j.SampleDenom)
			}
		}
	}
	if s.SampleSize < 0 {
		return fmt.Errorf("dbest: model spec sample size %d is negative", s.SampleSize)
	}
	if s.Scale < 0 {
		return fmt.Errorf("dbest: model spec scale %g is negative", s.Scale)
	}
	if !regressorFamilies[s.Regressor] {
		return fmt.Errorf("dbest: unknown regressor %q", s.Regressor)
	}
	return nil
}

// validateSketch checks the sketch subset of the spec: one column, no
// aggregate column, and none of the model-only topology fields.
func (s *ModelSpec) validateSketch() error {
	if _, err := sketch.ParseKind(s.Sketch); err != nil {
		return err
	}
	if len(s.XCols) != 1 || s.XCols[0] == "" {
		return errors.New("dbest: sketch spec requires exactly one column")
	}
	if s.YCol != "" {
		return errors.New("dbest: sketch spec takes no y column")
	}
	if s.GroupBy != "" || s.NominalBy != "" || s.Shards != 0 || s.Join != nil {
		return errors.New("dbest: sketch spec does not support GROUP BY, NOMINAL BY, SHARDS or joins")
	}
	if s.Precision != 0 && (s.Precision < sketch.MinPrecision || s.Precision > sketch.MaxPrecision) {
		return fmt.Errorf("dbest: sketch precision %d outside [%d, %d]",
			s.Precision, sketch.MinPrecision, sketch.MaxPrecision)
	}
	if s.TopK < 0 || s.TopK > sketch.MaxK {
		return fmt.Errorf("dbest: sketch K %d outside [1, %d]", s.TopK, sketch.MaxK)
	}
	return nil
}

// clone deep-copies the spec so CreateModel (and the retrain closures it
// registers) are immune to caller mutation after the call returns.
func (s *ModelSpec) clone() *ModelSpec {
	c := *s
	c.XCols = append([]string(nil), s.XCols...)
	if s.Join != nil {
		j := *s.Join
		c.Join = &j
	}
	return &c
}

// config lowers the spec's sampling/training fields to a core.TrainConfig.
func (s *ModelSpec) config() *core.TrainConfig {
	return &core.TrainConfig{
		SampleSize:    s.SampleSize,
		GroupBy:       s.GroupBy,
		Scale:         s.Scale,
		Seed:          s.Seed,
		MinGroupModel: s.MinGroupModel,
		Workers:       s.Workers,
		EnsemblePLR:   s.EnsemblePLR,
		Bins:          s.KDEBins,
		Regressor:     s.Regressor,
		GridKnots:     s.GridKnots,
	}
}

// trainOptions projects the spec back onto the legacy options struct — the
// shape trackModel consumes for reservoir capacity and seed.
func (s *ModelSpec) trainOptions() *TrainOptions {
	return &TrainOptions{
		SampleSize:    s.SampleSize,
		GroupBy:       s.GroupBy,
		Scale:         s.Scale,
		Seed:          s.Seed,
		MinGroupModel: s.MinGroupModel,
		Workers:       s.Workers,
		EnsemblePLR:   s.EnsemblePLR,
		KDEBins:       s.KDEBins,
		Regressor:     s.Regressor,
		GridKnots:     s.GridKnots,
	}
}

// encode serializes the spec for catalog persistence. A ModelSpec is plain
// data, so the marshal cannot fail.
func (s *ModelSpec) encode() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		return nil
	}
	return b
}

// decodeSpec parses a persisted spec blob; a nil/empty blob (models trained
// before specs existed, or loaded from an old catalog file) decodes to nil.
func decodeSpec(b []byte) (*ModelSpec, error) {
	if len(b) == 0 {
		return nil, nil
	}
	var s ModelSpec
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("dbest: corrupt persisted model spec: %w", err)
	}
	return &s, nil
}

// specFor assembles the legacy Train* arguments into a ModelSpec — the
// shared constructor behind the ten wrapper methods.
func specFor(tbl string, xcols []string, ycol string, opts *TrainOptions) *ModelSpec {
	s := &ModelSpec{Table: tbl, XCols: append([]string(nil), xcols...), YCol: ycol}
	if opts != nil {
		s.GroupBy = opts.GroupBy
		s.SampleSize = opts.SampleSize
		s.Seed = opts.Seed
		s.Scale = opts.Scale
		s.MinGroupModel = opts.MinGroupModel
		s.Workers = opts.Workers
		s.EnsemblePLR = opts.EnsemblePLR
		s.KDEBins = opts.KDEBins
		s.Regressor = opts.Regressor
		s.GridKnots = opts.GridKnots
	}
	return s
}

// withJoin attaches a full-precompute join source.
func (s *ModelSpec) withJoin(right, leftKey, rightKey string) *ModelSpec {
	s.Join = &JoinSpec{Table: right, LeftKey: leftKey, RightKey: rightKey}
	return s
}

// withSampledJoin attaches a hash-sampled join source; the keep ratio is
// validated by Validate even when zero, preserving the legacy
// TrainJoinSampled contract that a 0/0 ratio is rejected.
func (s *ModelSpec) withSampledJoin(right, leftKey, rightKey string, num, denom uint64) *ModelSpec {
	s.Join = &JoinSpec{Table: right, LeftKey: leftKey, RightKey: rightKey,
		Sampled: true, SampleNum: num, SampleDenom: denom}
	return s
}

// withNominal attaches a nominal-categorical split column.
func (s *ModelSpec) withNominal(nominalBy string) *ModelSpec {
	s.NominalBy = nominalBy
	return s
}

// withShards attaches a range-shard count.
func (s *ModelSpec) withShards(shards int) *ModelSpec {
	s.Shards = shards
	return s
}

// Summary renders the spec in the CREATE MODEL clause syntax (minus the
// name) — the compact one-line definition used by EXPLAIN and SHOW MODELS.
func (s *ModelSpec) Summary() string {
	var b strings.Builder
	if s.Sketch != "" {
		fmt.Fprintf(&b, "%s(%s) TYPE %s", s.Table, s.XCols[0], strings.ToUpper(s.Sketch))
		if s.Precision > 0 {
			fmt.Fprintf(&b, " PRECISION %d", s.Precision)
		}
		if s.TopK > 0 {
			fmt.Fprintf(&b, " K %d", s.TopK)
		}
		return b.String()
	}
	b.WriteString(s.Table)
	b.WriteByte('(')
	b.WriteString(strings.Join(s.XCols, ","))
	b.WriteString("; ")
	b.WriteString(s.YCol)
	b.WriteByte(')')
	if j := s.Join; j != nil {
		fmt.Fprintf(&b, " JOIN %s ON %s = %s", j.Table, j.LeftKey, j.RightKey)
		if j.sampled() {
			fmt.Fprintf(&b, " FRACTION %d/%d", j.SampleNum, j.SampleDenom)
		}
	}
	if s.GroupBy != "" {
		b.WriteString(" GROUP BY " + s.GroupBy)
	}
	if s.NominalBy != "" {
		b.WriteString(" NOMINAL BY " + s.NominalBy)
	}
	if s.Shards >= 1 {
		fmt.Fprintf(&b, " SHARDS %d", s.Shards)
	}
	if s.SampleSize > 0 {
		fmt.Fprintf(&b, " SAMPLE %d", s.SampleSize)
	}
	if s.Seed != 0 {
		fmt.Fprintf(&b, " SEED %d", s.Seed)
	}
	switch {
	case s.GridKnots > 0:
		fmt.Fprintf(&b, " GRID %d", s.GridKnots)
	case s.GridKnots < 0:
		b.WriteString(" GRID OFF")
	}
	return b.String()
}

// specRetrain is the retrain closure registered with the staleness ledger:
// re-executing the spec rebuilds the models from the tables' current rows.
// Unlike the opaque closures it replaces, the same closure can be
// reconstructed from a reloaded catalog, which is what makes loaded models
// refreshable.
func (e *Engine) specRetrain(spec *ModelSpec) ingest.RetrainFunc {
	return func(ctx context.Context) error {
		_, err := e.CreateModel(ctx, spec)
		return err
	}
}

// CreateModel validates and executes one declarative model definition: it
// trains the models the spec describes, registers them in the catalog with
// the spec persisted alongside (SaveModels round-trips it), registers
// staleness tracking whose retrain re-executes the spec, and returns build
// statistics. It subsumes all ten legacy Train* methods, which remain as
// thin wrappers. A canceled ctx aborts the build at the next model-fit
// boundary without touching the catalog.
func (e *Engine) CreateModel(ctx context.Context, spec *ModelSpec) (*TrainInfo, error) {
	if spec == nil {
		return nil, errors.New("dbest: nil model spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.clone()
	switch {
	case spec.Sketch != "":
		return e.createSketch(ctx, spec)
	case spec.Shards >= 1:
		return e.createSharded(ctx, spec)
	case spec.NominalBy != "":
		return e.createNominal(ctx, spec)
	case spec.Join != nil:
		return e.createJoin(ctx, spec)
	default:
		return e.createPlain(ctx, spec)
	}
}

// createPlain trains a single-table model set (plain, GROUP BY, or
// multivariate, per the spec).
func (e *Engine) createPlain(ctx context.Context, spec *ModelSpec) (*TrainInfo, error) {
	tb := e.Table(spec.Table)
	if tb == nil {
		return nil, fmt.Errorf("dbest: table %q is not registered", spec.Table)
	}
	ms, err := core.TrainContext(ctx, tb, spec.XCols, spec.YCol, spec.config())
	if err != nil {
		return nil, err
	}
	ms.Spec = spec.encode()
	e.catalog.Put(ms)
	e.trackModel(ms, []string{spec.Table}, tb.NumRows(), spec.trainOptions(), e.specRetrain(spec))
	return trainInfo(ms), nil
}

// createNominal trains one model pair per distinct value of the spec's
// NominalBy column (§2.3).
func (e *Engine) createNominal(ctx context.Context, spec *ModelSpec) (*TrainInfo, error) {
	tb := e.Table(spec.Table)
	if tb == nil {
		return nil, fmt.Errorf("dbest: table %q is not registered", spec.Table)
	}
	ms, err := core.TrainNominalContext(ctx, tb, spec.XCols[0], spec.YCol, spec.NominalBy, spec.config())
	if err != nil {
		return nil, err
	}
	ms.Spec = spec.encode()
	e.catalog.Put(ms)
	e.trackModel(ms, []string{spec.Table}, tb.NumRows(), spec.trainOptions(), e.specRetrain(spec))
	return trainInfo(ms), nil
}

// createJoin trains over the equi-join of the spec's two tables: in full
// (paper's first join approach) or over hashed join-key samples whose
// under-count is folded into the logical scale (second approach).
func (e *Engine) createJoin(ctx context.Context, spec *ModelSpec) (*TrainInfo, error) {
	j := spec.Join
	lt, rt := e.Table(spec.Table), e.Table(j.Table)
	if lt == nil || rt == nil {
		return nil, fmt.Errorf("dbest: join tables %q, %q must both be registered", spec.Table, j.Table)
	}
	t0 := time.Now()
	jl, jr := lt, rt
	cfg := spec.config()
	if j.sampled() {
		seed := maphash.MakeSeed()
		li, err := sample.Hashed(lt, j.LeftKey, j.SampleNum, j.SampleDenom, seed)
		if err != nil {
			return nil, err
		}
		ri, err := sample.Hashed(rt, j.RightKey, j.SampleNum, j.SampleDenom, seed)
		if err != nil {
			return nil, err
		}
		jl, jr = lt.SelectRows(li), rt.SelectRows(ri)
		// The hashed samples keep num/denom of the join-key universe, so the
		// sample-join under-counts the true join by denom/num: fold that into
		// the logical scale so COUNT/SUM report full-join magnitudes.
		if cfg.Scale <= 0 {
			cfg.Scale = 1
		}
		cfg.Scale *= float64(j.SampleDenom) / float64(j.SampleNum)
	}
	joined, err := table.EquiJoin(jl, jr, j.LeftKey, j.RightKey)
	if err != nil {
		return nil, err
	}
	prepTime := time.Since(t0)
	joined.Name = JoinName(spec.Table, j.Table)
	ms, err := core.TrainContext(ctx, joined, spec.XCols, spec.YCol, cfg)
	if err != nil {
		return nil, err
	}
	// The precomputation cost is part of state building, not query time.
	ms.Stats.SampleTime += prepTime
	ms.Spec = spec.encode()
	e.catalog.Put(ms)
	e.trackModel(ms, []string{spec.Table, j.Table}, lt.NumRows()+rt.NumRows(),
		spec.trainOptions(), e.specRetrain(spec))
	return trainInfo(ms), nil
}

// CreateSketch is CreateModel for sketch specs under a friendlier name: it
// builds the sketch over every current row of the column, registers it in
// the catalog, and wires appended rows to be absorbed in place.
func (e *Engine) CreateSketch(ctx context.Context, spec *ModelSpec) (*TrainInfo, error) {
	if spec == nil {
		return nil, errors.New("dbest: nil sketch spec")
	}
	if spec.Sketch == "" {
		return nil, errors.New("dbest: spec selects no sketch type")
	}
	return e.CreateModel(ctx, spec)
}

// createSketch builds the sketch the spec describes from every current row
// of its column, registers it in the catalog like any model set, and
// registers an absorb entry with the ledger: appended values fold into the
// sketch in place, keeping it fresh with zero refresher retrains. The scan
// and the ledger registration run under appendMu so no concurrent append
// can land between them (it would be either scanned or absorbed, never
// both, never neither).
func (e *Engine) createSketch(ctx context.Context, spec *ModelSpec) (*TrainInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	kind, err := sketch.ParseKind(spec.Sketch)
	if err != nil {
		return nil, err
	}
	sk, err := sketch.New(kind, spec.Precision, spec.TopK)
	if err != nil {
		return nil, err
	}
	col := spec.XCols[0]
	t0 := time.Now()
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	tb := e.Table(spec.Table)
	if tb == nil {
		return nil, fmt.Errorf("dbest: table %q is not registered", spec.Table)
	}
	c := tb.Column(col)
	if c == nil {
		return nil, fmt.Errorf("dbest: table %q has no column %q", spec.Table, col)
	}
	if c.Type == table.String {
		sk.AddStrings(c.Strings)
	} else {
		fs := make([]float64, c.Len())
		for i := range fs {
			fs[i] = c.Float(i)
		}
		sk.AddFloats(fs)
	}
	ms := &core.ModelSet{Table: spec.Table, XCols: []string{col}, Sketch: sk}
	ms.Spec = spec.encode()
	ms.Stats.SampleRows = tb.NumRows()
	ms.Stats.TrainTime = time.Since(t0)
	ms.Stats.ModelBytes = sk.SizeBytes()
	e.catalog.Put(ms)
	e.registerAbsorb(ms, spec, sk, tb.NumRows())
	return trainInfo(ms), nil
}

// registerAbsorb wires one sketch into the staleness ledger in absorb mode:
// appended values of its column are folded in instead of accruing
// staleness. The retrain closure — invoked only when the base table is
// replaced wholesale — rebuilds the sketch from scratch by re-executing the
// spec. Caller must hold appendMu (createSketch) or be ordering-safe
// against appends (retrackLoaded, before serving starts).
func (e *Engine) registerAbsorb(ms *core.ModelSet, spec *ModelSpec, sk *sketch.Sketch, baseRows int) {
	absorb := func(fs []float64, ss []string) {
		if len(fs) > 0 {
			sk.AddFloats(fs)
		} else {
			sk.AddStrings(ss)
		}
		e.sketchUpdates.Add(uint64(len(fs) + len(ss)))
	}
	e.ledger.RegisterAbsorb(ms.Key(), []string{spec.Table}, spec.XCols[0], baseRows, absorb, e.specRetrain(spec))
}

// watchTables lists the base tables whose appends feed models built from
// this spec.
func (s *ModelSpec) watchTables() []string {
	if s.Join != nil {
		return []string{s.Table, s.Join.Table}
	}
	return []string{s.Table}
}

// retrackLoaded re-registers every loaded model set that carries a
// persisted spec with the staleness ledger, rebasing its retrain on spec
// re-execution — the step that makes a reloaded catalog refreshable.
// Models without a spec (catalogs saved before specs existed) stay
// untracked until rebuilt through CreateModel.
func (e *Engine) retrackLoaded() {
	type loaded struct {
		ms   *core.ModelSet
		spec *ModelSpec
	}
	var sets []loaded
	e.catalog.Scan(func(ms *core.ModelSet) bool {
		if spec, err := decodeSpec(ms.Spec); err == nil && spec != nil {
			sets = append(sets, loaded{ms, spec})
		}
		return true
	})
	for _, l := range sets {
		e.trackSpecSet(l.ms, l.spec)
	}
}

// ModelInfo is one logical trained model as reported by Engine.Models():
// a sharded ensemble collapses to a single entry under its base key, so
// the raw @s<i>/<K> member keys never leak to callers.
type ModelInfo struct {
	// Key is the base catalog key (shared by all members of an ensemble).
	Key string `json:"key"`
	// Name is the spec's user-facing handle ("" for unnamed models).
	Name string `json:"name,omitempty"`
	// Spec is the declarative definition the model was trained from; nil
	// for models from catalogs saved before specs existed.
	Spec *ModelSpec `json:"spec,omitempty"`
	// Shards is the ensemble size (0 for plain unsharded models).
	Shards int `json:"shards,omitempty"`
	// NumModels counts trained model pairs (per-group / per-nominal-value
	// models count individually, summed across shards).
	NumModels int `json:"num_models"`
	// Bytes is the serialized size of the model state.
	Bytes int `json:"bytes"`
	// Staleness is the model's staleness score (the max across ensemble
	// members); 0 when untracked.
	Staleness float64 `json:"staleness"`
	// Tracked reports whether the staleness ledger watches the model (and
	// a background refresher would retrain it).
	Tracked bool `json:"tracked"`
	// Type marks sketch entries with their kind, "hll" or "topk" ("" for
	// trained model sets).
	Type string `json:"type,omitempty"`
	// AbsorbedRows counts the values a sketch has absorbed — the initial
	// build scan plus every appended row since (0 for model sets).
	AbsorbedRows uint64 `json:"absorbed_rows,omitempty"`
}

// Models reports every logical trained model: base key, parsed spec,
// ensemble size, model count, serialized bytes, and staleness. It is the
// catalog listing behind SHOW MODELS and GET /models; unlike ModelKeys it
// never exposes raw shard-member keys.
func (e *Engine) Models() []ModelInfo {
	scores := make(map[string]Staleness)
	for _, st := range e.ledger.Snapshot() {
		scores[st.Key] = st
	}
	index := make(map[string]int)
	var out []ModelInfo
	e.catalog.Scan(func(ms *core.ModelSet) bool {
		base := ms.BaseKey()
		i, ok := index[base]
		if !ok {
			i = len(out)
			index[base] = i
			info := ModelInfo{Key: base}
			if spec, err := decodeSpec(ms.Spec); err == nil && spec != nil {
				info.Spec = spec
				info.Name = spec.Name
			}
			out = append(out, info)
		}
		inf := &out[i]
		if ms.Shards > 1 {
			inf.Shards = ms.Shards
		}
		if ms.Sketch != nil {
			inf.Type = string(ms.Sketch.Kind())
			inf.AbsorbedRows = ms.Sketch.Absorbed()
		}
		inf.NumModels += ms.NumModels()
		inf.Bytes += ms.SizeBytes()
		if st, ok := scores[ms.Key()]; ok {
			inf.Tracked = true
			if s := st.Score; s > inf.Staleness {
				inf.Staleness = s
			}
		}
		return true
	})
	return out // Scan visits keys sorted, so entries are ordered by base key
}

// DropModel removes trained models by model name (the spec's Name), base
// catalog key, or exact member key, along with their staleness-ledger
// entries, and returns the removed catalog keys. A match on any member of
// a sharded ensemble drops the whole ensemble — a partial ensemble could
// not serve queries or survive a save/load round trip.
func (e *Engine) DropModel(name string) ([]string, error) {
	if name == "" {
		return nil, errors.New("dbest: DropModel requires a model name or key")
	}
	// Pass 1: resolve the name to the base keys it addresses.
	bases := make(map[string]bool)
	e.catalog.Scan(func(ms *core.ModelSet) bool {
		if ms.BaseKey() == name || ms.Key() == name {
			bases[ms.BaseKey()] = true
			return true
		}
		if spec, err := decodeSpec(ms.Spec); err == nil && spec != nil && spec.Name != "" && spec.Name == name {
			bases[ms.BaseKey()] = true
		}
		return true
	})
	if len(bases) == 0 {
		return nil, fmt.Errorf("dbest: no model named %q", name)
	}
	// Pass 2: drop every member of the addressed models in one generation
	// bump. A model trained concurrently between the passes survives under
	// its own key; only the resolved base keys are dropped.
	removed := e.catalog.RemoveMatching(func(ms *core.ModelSet) bool {
		return bases[ms.BaseKey()]
	})
	for _, k := range removed {
		e.ledger.Drop(k)
	}
	return removed, nil
}

// trackSpecSet registers one model set (fresh from a catalog load) for
// staleness tracking according to its spec. Single-table training row
// counts are recovered exactly from the model's logical N; join models fall
// back to the watched tables' live row counts, so their staleness is
// measured relative to load time.
func (e *Engine) trackSpecSet(ms *core.ModelSet, spec *ModelSpec) {
	if ms.Sketch != nil {
		// A loaded sketch resumes absorbing exactly where it left off: the
		// hash functions are process-stable, so appended values keep landing
		// in the same registers and counters.
		if spec.Sketch != "" {
			e.registerAbsorb(ms, spec, ms.Sketch, int(ms.Sketch.Absorbed()))
		}
		return
	}
	if ms.Shards > 1 {
		// trackShard's rows0 is the TABLE row count at training start; rows
		// beyond it are credited to every shard as ingested-while-training.
		// For a loaded member that baseline is unknowable, so use the live
		// count: load time becomes the staleness epoch (extra = 0), instead
		// of the shard's own row count making every loaded ensemble look
		// (K-1)/K-stale and triggering a full retrain at startup.
		rows0 := 0
		if tb := e.Table(spec.Table); tb != nil {
			rows0 = tb.NumRows()
		}
		e.trackShard(ms, spec, rows0)
		return
	}
	baseRows := ms.PhysicalRows(spec.Scale)
	if spec.Join != nil {
		baseRows = 0
		for _, t := range spec.watchTables() {
			if tb := e.Table(t); tb != nil {
				baseRows += tb.NumRows()
			}
		}
	}
	e.trackModel(ms, spec.watchTables(), baseRows, spec.trainOptions(), e.specRetrain(spec))
}
