package dbest_test

import (
	"testing"

	"dbest"
)

// batchSQLs builds n same-shape queries (identical normalized SQL), the
// workload the batched API amortizes: one parse/plan for all n.
func batchSQLs(n int) []string {
	sqls := make([]string, n)
	for i := range sqls {
		sqls[i] = "SELECT AVG(ss_wholesale_cost) FROM store_sales WHERE ss_list_price BETWEEN 20 AND 80"
	}
	return sqls
}

// BenchmarkQuerySequential answers 64 same-shape queries one Engine.Query
// at a time — the baseline QueryBatch is measured against.
func BenchmarkQuerySequential(b *testing.B) {
	eng, err := engineForBench()
	if err != nil {
		b.Fatal(err)
	}
	sqls := batchSQLs(64)
	if _, err := eng.Query(sqls[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sql := range sqls {
			if _, err := eng.Query(sql); err != nil {
				b.Fatal(err)
			}
		}
	}
	reportPerQuery(b, 64)
}

// BenchmarkQueryBatch answers the same 64 queries through Engine.QueryBatch:
// one plan, parallel execution.
func BenchmarkQueryBatch(b *testing.B) {
	eng, err := engineForBench()
	if err != nil {
		b.Fatal(err)
	}
	sqls := batchSQLs(64)
	if _, err := eng.Query(sqls[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, br := range eng.QueryBatch(sqls) {
			if br.Err != nil {
				b.Fatal(br.Err)
			}
		}
	}
	reportPerQuery(b, 64)
}

// BenchmarkRunBatchSpans answers 64 parameter-varied ranges of one prepared
// query via PreparedQuery.RunBatch.
func BenchmarkRunBatchSpans(b *testing.B) {
	eng, err := engineForBench()
	if err != nil {
		b.Fatal(err)
	}
	p, err := eng.Prepare("SELECT AVG(ss_wholesale_cost) FROM store_sales WHERE ss_list_price BETWEEN 20 AND 80")
	if err != nil {
		b.Fatal(err)
	}
	spans := make([]dbest.Span, 64)
	for i := range spans {
		spans[i] = dbest.Span{Lb: float64(10 + i), Ub: float64(40 + i)}
	}
	if _, err := p.RunBatch(spans[:1]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := p.RunBatch(spans)
		if err != nil {
			b.Fatal(err)
		}
		for _, br := range out {
			if br.Err != nil {
				b.Fatal(br.Err)
			}
		}
	}
	reportPerQuery(b, 64)
}

func reportPerQuery(b *testing.B, queries int) {
	b.Helper()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*queries), "ns/query")
}
