package dbest

import (
	"fmt"
	"time"

	"dbest/internal/core"
	"dbest/internal/exec"
	"dbest/internal/parallel"
	"dbest/internal/sqlparse"
)

// BatchResult is one query's outcome in a batched execution. Errors are
// isolated per query: a malformed or unanswerable query fails alone without
// aborting the rest of the batch.
type BatchResult struct {
	// SQL is the input statement as submitted (empty for RunBatch, where
	// the inputs are parameter spans, not SQL strings).
	SQL    string
	Result *Result // nil when Err != nil
	Err    error
}

// Span re-exports the executor's range-parameter binding used by
// PreparedQuery.RunBatch: replacement [Lb, Ub] bounds for the query's
// range predicate.
type Span = exec.Span

// QueryBatch answers many SQL queries in one call. Each distinct normalized
// query shape is parsed, planned and executed exactly once — even with the
// plan cache disabled — with the distinct shapes fanning out over the
// engine's worker budget; duplicate instances then share that shape's
// answer, so a batch of N same-shape queries costs one execution, not N.
// The whole batch binds one engine snapshot: every shape sees the same
// catalog generation and the same table versions, so a batch is a
// consistent point-in-time read even while trains and appends land
// concurrently. Results are returned in input order with per-query error
// isolation: a malformed or unanswerable shape fails its own instances and
// nothing else.
func (e *Engine) QueryBatch(sqls []string) []BatchResult {
	out := make([]BatchResult, len(sqls))
	snap := e.snap.Load()
	type planned struct {
		p       *PreparedQuery
		ent     *cacheEntry
		err     error
		res     *Result
		elapsed time.Duration // this shape's execution (or memo-lookup) time
		memo    bool          // res is the cache's canonical copy; every instance clones
		served  bool
	}
	keys := make([]string, len(sqls))
	plans := make(map[string]*planned, len(sqls))
	order := make([]*planned, 0, len(sqls)) // distinct shapes, first-seen order
	for i, sql := range sqls {
		out[i].SQL = sql
		k := sqlparse.Normalize(sql)
		keys[i] = k
		if _, ok := plans[k]; !ok {
			pl := &planned{}
			if e.plans.enabled() {
				pl.p, pl.ent, pl.err = e.prepareSnap(k, sql, snap)
			} else {
				var q *sqlparse.Query
				q, pl.err = sqlparse.Parse(sql)
				if pl.err == nil {
					pl.p, pl.err = e.planSnap(q, snap)
				}
			}
			plans[k] = pl
			order = append(order, pl)
		}
	}
	// Execute each distinct shape once, in parallel across shapes. Shapes
	// whose result is already memoized for this generation skip execution
	// entirely.
	parallel.ForEach(len(order), e.workers, func(i int) {
		pl := order[i]
		if pl.err != nil {
			return
		}
		// Each shape stamps its own execution time: batch items must report
		// what their shape cost, not share one whole-batch elapsed (or, as
		// before this existed, report zero).
		t0 := time.Now()
		defer func() { pl.elapsed = time.Since(t0) }()
		if pl.ent != nil {
			if r := pl.ent.res.Load(); r != nil {
				pl.res, pl.memo = r, true
				return
			}
		}
		pl.res, pl.err = pl.p.runWith(snap)
		if pl.err == nil && pl.ent != nil &&
			pl.p.plan.Path != PathExact && pl.p.plan.Path != PathSketch && !pl.p.hasTol {
			// Same memoization rule as serveNormalized: exact and sketch
			// answers track the live tables, and tolerance-routed answers
			// track the calibration rings, so only plain model-path results
			// are deterministic per catalog generation.
			pl.ent.res.CompareAndSwap(nil, pl.res)
			pl.memo = true
		}
	})
	// Fan the shared answers out to every instance of each shape. Instances
	// get deep copies so callers may mutate one result without corrupting
	// another (or the cache's memoized copy); only a non-memoized shape may
	// hand its first instance the original.
	for i := range sqls {
		pl := plans[keys[i]]
		if pl.err != nil {
			out[i].Err = pl.err
			continue
		}
		if !pl.served && !pl.memo {
			out[i].Result = pl.res
			pl.served = true
		} else {
			out[i].Result = cloneResult(pl.res)
		}
		// Stamp after cloning: the memoized canonical copy must stay
		// untouched, and a later batch hitting it re-stamps its own time.
		out[i].Result.Elapsed = pl.elapsed
	}
	return out
}

// cloneResult deep-copies a Result so batch duplicates do not alias the
// original's aggregate and group slices.
func cloneResult(r *Result) *Result {
	out := *r
	out.Aggregates = append([]AggregateResult(nil), r.Aggregates...)
	for i := range out.Aggregates {
		if g := out.Aggregates[i].Groups; g != nil {
			out.Aggregates[i].Groups = append([]core.GroupAnswer(nil), g...)
		}
	}
	return &out
}

// RunBatch executes the prepared query once per span, substituting each
// span for the query's single range predicate — the parameter-varied form
// of batched execution: parse and plan once, run for many ranges in
// parallel. The query must have exactly one range predicate. Results are
// returned in span order with per-execution error isolation.
func (p *PreparedQuery) RunBatch(spans []Span) ([]BatchResult, error) {
	if len(p.query.Where) != 1 {
		return nil, fmt.Errorf("dbest: RunBatch needs a query with exactly one range predicate, got %d", len(p.query.Where))
	}
	// Materialize the exact-path source (base table or equi-join) once for
	// the whole batch instead of once per span, against one engine snapshot.
	baseEnv := exec.Env{Workers: p.eng.workers, Tables: p.eng.snap.Load(), Shards: &p.eng.shardCtrs}
	src, err := p.plan.OpenSource(&baseEnv)
	if err != nil {
		return nil, err
	}
	baseEnv.Src = src
	out := make([]BatchResult, len(spans))
	parallel.ForEach(len(spans), p.eng.workers, func(i int) {
		span := spans[i]
		env := baseEnv
		env.Span = &span
		t0 := time.Now()
		er, err := p.plan.Run(&env)
		if err != nil {
			out[i].Err = err
			return
		}
		out[i].Result = &Result{Aggregates: er.Aggregates, Source: er.Source, Elapsed: time.Since(t0)}
	})
	return out, nil
}
