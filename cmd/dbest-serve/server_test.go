package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"dbest"
)

// newTestEngine builds an engine over a synthetic 50k-row table with a
// trained model pair for (x → y) queries.
func newTestEngine(t *testing.T) *dbest.Engine {
	t.Helper()
	const n = 50_000
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, n)
	ys := make([]float64, n)
	zs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2*xs[i] + 50*rng.NormFloat64()
		zs[i] = math.Sin(xs[i]/1000) + rng.NormFloat64()
	}
	tb := dbest.NewTable("sensor")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	tb.AddFloatColumn("z", zs)
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("sensor", []string{"x"}, "y", &dbest.TrainOptions{SampleSize: 2000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return eng
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("bad JSON from %s: %v: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

func TestEndpoints(t *testing.T) {
	srv := httptest.NewServer(newHandler(newTestEngine(t)))
	defer srv.Close()

	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, health)
	}

	var qr queryResponse
	code := getJSON(t, srv.URL+"/query?sql="+
		"SELECT+AVG(y)+FROM+sensor+WHERE+x+BETWEEN+10000+AND+20000", &qr)
	if code != 200 {
		t.Fatalf("query status = %d", code)
	}
	if qr.Source != "model" {
		t.Fatalf("query source = %q, want model", qr.Source)
	}
	// y = 2x + noise, so AVG(y) over [10000, 20000] should be near 30000.
	if len(qr.Aggregates) != 1 || math.Abs(qr.Aggregates[0].Value-30000) > 1500 {
		t.Fatalf("query aggregates = %+v, want AVG(y) ≈ 30000", qr.Aggregates)
	}

	// POST body form of the same query.
	body, _ := json.Marshal(map[string]string{
		"sql": "SELECT COUNT(y) FROM sensor WHERE x BETWEEN 0 AND 24999",
	})
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var qr2 queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(qr2.Aggregates) != 1 {
		t.Fatalf("POST query = %d %+v", resp.StatusCode, qr2)
	}
	if v := qr2.Aggregates[0].Value; math.Abs(v-25000) > 2500 {
		t.Fatalf("COUNT over half the table = %v, want ≈ 25000", v)
	}

	var ex struct {
		Path      string   `json:"path"`
		ModelKeys []string `json:"model_keys"`
		Reason    string   `json:"reason"`
	}
	if code := getJSON(t, srv.URL+"/explain?sql=SELECT+AVG(y)+FROM+sensor+WHERE+x+BETWEEN+1+AND+2", &ex); code != 200 {
		t.Fatalf("explain status = %d", code)
	}
	if ex.Path != "model" || len(ex.ModelKeys) != 1 {
		t.Fatalf("explain = %+v, want model path with one key", ex)
	}
	if code := getJSON(t, srv.URL+"/explain?sql=SELECT+AVG(z)+FROM+sensor+WHERE+x+BETWEEN+1+AND+2", &ex); code != 200 {
		t.Fatalf("explain status = %d", code)
	}
	if ex.Path != "exact" || ex.Reason == "" {
		t.Fatalf("explain unmodeled column = %+v, want exact path with reason", ex)
	}

	var ts struct {
		ModelKeys  []string `json:"model_keys"`
		NumModels  int      `json:"num_model_sets"`
		TotalBytes int      `json:"total_bytes"`
	}
	if code := getJSON(t, srv.URL+"/train-status", &ts); code != 200 {
		t.Fatalf("train-status = %d", code)
	}
	if ts.NumModels != 1 || ts.TotalBytes <= 0 {
		t.Fatalf("train-status = %+v, want one model set with nonzero bytes", ts)
	}

	// Training a second model set over HTTP makes it show up in the status.
	trainBody, _ := json.Marshal(trainRequest{
		Table: "sensor", XCols: []string{"x"}, YCol: "z", SampleSize: 1000, Seed: 2,
	})
	resp, err = http.Post(srv.URL+"/train", "application/json", bytes.NewReader(trainBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("train status = %d", resp.StatusCode)
	}
	if code := getJSON(t, srv.URL+"/train-status", &ts); code != 200 || ts.NumModels != 2 {
		t.Fatalf("train-status after train = %d %+v, want 2 model sets", code, ts)
	}
	if code := getJSON(t, srv.URL+"/explain?sql=SELECT+AVG(z)+FROM+sensor+WHERE+x+BETWEEN+1+AND+2", &ex); code != 200 || ex.Path != "model" {
		t.Fatalf("explain after train = %d %+v, want model path", code, ex)
	}
}

func TestQueryErrors(t *testing.T) {
	srv := httptest.NewServer(newHandler(newTestEngine(t)))
	defer srv.Close()

	if code := getJSON(t, srv.URL+"/query", nil); code != http.StatusBadRequest {
		t.Fatalf("missing sql = %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/query?sql=NOT+SQL", nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad sql = %d, want 422", code)
	}
	if code := getJSON(t, srv.URL+"/query?sql=SELECT+AVG(y)+FROM+nosuch", nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown table = %d, want 422", code)
	}
}

// TestConcurrentLoad hammers /query from many goroutines while /train keeps
// mutating the catalog — the serving-layer contract the PR is about. Run
// under -race this doubles as the data-race check for the shared engine,
// plan cache and catalog generation counter.
func TestConcurrentLoad(t *testing.T) {
	srv := httptest.NewServer(newHandler(newTestEngine(t)))
	defer srv.Close()

	shapes := []string{
		"SELECT AVG(y) FROM sensor WHERE x BETWEEN %d AND %d",
		"SELECT COUNT(y) FROM sensor WHERE x BETWEEN %d AND %d",
		"SELECT SUM(y) FROM sensor WHERE x BETWEEN %d AND %d",
	}
	const (
		clients          = 8
		queriesPerClient = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < queriesPerClient; i++ {
				// Half the queries repeat one fixed shape to exercise cache
				// hits; the rest vary bounds to exercise misses.
				lo, hi := 1000, 30000
				if i%2 == 1 {
					lo = (c*queriesPerClient + i) % 20000
					hi = lo + 10000
				}
				sql := fmt.Sprintf(shapes[i%len(shapes)], lo, hi)
				body, _ := json.Marshal(map[string]string{"sql": sql})
				resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("query %q: status %d", sql, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	// One writer retraining concurrently: every Put bumps the catalog
	// generation and invalidates cached plans mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			body, _ := json.Marshal(trainRequest{
				Table: "sensor", XCols: []string{"x"}, YCol: "z",
				SampleSize: 500, Seed: int64(i),
			})
			resp, err := http.Post(srv.URL+"/train", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("train: status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var st struct {
		Hits   uint64 `json:"plan_cache_hits"`
		Misses uint64 `json:"plan_cache_misses"`
	}
	if code := getJSON(t, srv.URL+"/stats", &st); code != 200 {
		t.Fatalf("stats = %d", code)
	}
	if st.Hits == 0 {
		t.Fatalf("stats = %+v: repeated query shapes should hit the plan cache", st)
	}
}

// TestBatchEndpoint: /query/batch answers many queries in one request with
// per-query error isolation and input-order results.
func TestBatchEndpoint(t *testing.T) {
	srv := httptest.NewServer(newHandler(newTestEngine(t)))
	defer srv.Close()

	body, _ := json.Marshal(batchRequest{Queries: []string{
		"SELECT AVG(y) FROM sensor WHERE x BETWEEN 10000 AND 20000",
		"NOT SQL AT ALL",
		"SELECT COUNT(y) FROM sensor WHERE x BETWEEN 0 AND 24999",
	}})
	resp, err := http.Post(srv.URL+"/query/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(br.Results))
	}
	r0 := br.Results[0]
	if r0.Error != "" || r0.Source != "model" || len(r0.Aggregates) != 1 ||
		math.Abs(r0.Aggregates[0].Value-30000) > 1500 {
		t.Fatalf("results[0] = %+v, want AVG(y) ≈ 30000 from model", r0)
	}
	if br.Results[1].Error == "" || len(br.Results[1].Aggregates) != 0 {
		t.Fatalf("results[1] = %+v, want isolated error", br.Results[1])
	}
	r2 := br.Results[2]
	if r2.Error != "" || math.Abs(r2.Aggregates[0].Value-25000) > 2500 {
		t.Fatalf("results[2] = %+v, want COUNT ≈ 25000", r2)
	}

	// Error shapes: GET, empty batch, oversized batch.
	if code := getJSON(t, srv.URL+"/query/batch", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch = %d, want 405", code)
	}
	for _, bad := range []string{`{}`, `{"queries": []}`} {
		resp, err := http.Post(srv.URL+"/query/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("batch %q = %d, want 400", bad, resp.StatusCode)
		}
	}
	huge, _ := json.Marshal(batchRequest{Queries: make([]string, maxBatchQueries+1)})
	resp, err = http.Post(srv.URL+"/query/batch", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch = %d, want 400", resp.StatusCode)
	}
}

// TestBatchConcurrentWithTrain hammers /query/batch from several clients
// while /train keeps mutating the catalog. Under -race this is the data-race
// check for QueryBatch's shared prepared plans, the plan cache's wholesale
// wipes, and the catalog's lazily rebuilt per-table index.
func TestBatchConcurrentWithTrain(t *testing.T) {
	srv := httptest.NewServer(newHandler(newTestEngine(t)))
	defer srv.Close()

	clients, batchesPerClient, perBatch := 5, 8, 6
	if testing.Short() {
		clients, batchesPerClient = 3, 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < batchesPerClient; i++ {
				queries := make([]string, 0, perBatch)
				for k := 0; k < perBatch; k++ {
					lo := ((c+i+k)*3000)%40000 + 1
					queries = append(queries, fmt.Sprintf(
						"SELECT AVG(y) FROM sensor WHERE x BETWEEN %d AND %d", lo, lo+2000))
				}
				body, _ := json.Marshal(batchRequest{Queries: queries})
				resp, err := http.Post(srv.URL+"/query/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var br batchResponse
				err = json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != 200 || len(br.Results) != len(queries) {
					errs <- fmt.Errorf("batch: status %d, %d results", resp.StatusCode, len(br.Results))
					return
				}
				for _, item := range br.Results {
					if item.Error != "" {
						errs <- fmt.Errorf("batch item error: %s", item.Error)
						return
					}
				}
			}
		}(c)
	}
	// Concurrent writer: every /train bumps the catalog generation, wiping
	// cached plans out from under in-flight batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			body, _ := json.Marshal(trainRequest{
				Table: "sensor", XCols: []string{"x"}, YCol: "z",
				SampleSize: 300, Seed: int64(i),
			})
			resp, err := http.Post(srv.URL+"/train", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("train: status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Deterministic epilogue for the generation-wipe counter: the cache now
	// holds the batch shapes, so one more train followed by any prepared
	// query must wipe it — regardless of how the concurrent phase above
	// happened to interleave.
	body, _ := json.Marshal(trainRequest{
		Table: "sensor", XCols: []string{"x"}, YCol: "z", SampleSize: 300, Seed: 99,
	})
	resp, err := http.Post(srv.URL+"/train", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if code := getJSON(t, srv.URL+"/query?sql=SELECT+AVG(y)+FROM+sensor+WHERE+x+BETWEEN+1+AND+2000", nil); code != 200 {
		t.Fatalf("post-train query = %d", code)
	}

	// The new plan-cache counters are exposed via /stats.
	var st struct {
		Hits      uint64 `json:"plan_cache_hits"`
		Misses    uint64 `json:"plan_cache_misses"`
		Evictions uint64 `json:"plan_cache_evictions"`
		GenWipes  uint64 `json:"plan_cache_generation_wipes"`
	}
	if code := getJSON(t, srv.URL+"/stats", &st); code != 200 {
		t.Fatalf("stats = %d", code)
	}
	if st.Hits == 0 {
		t.Fatalf("stats = %+v: repeated batch shapes should hit the plan cache", st)
	}
	if st.GenWipes == 0 || st.Evictions == 0 {
		t.Fatalf("stats = %+v: training must wipe the populated plan cache", st)
	}
}

func postJSON(t *testing.T, url string, body interface{}, out interface{}) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad JSON from %s: %v: %s", url, err, data)
		}
	}
	return resp.StatusCode
}

func TestIngestAndStalenessEndpoints(t *testing.T) {
	srv := httptest.NewServer(newHandler(newTestEngine(t)))
	defer srv.Close()

	// A fresh model reports zero staleness.
	var stal struct {
		Models []struct {
			Key          string  `json:"key"`
			BaseRows     int     `json:"base_rows"`
			IngestedRows int     `json:"ingested_rows"`
			Score        float64 `json:"score"`
		} `json:"models"`
	}
	if code := getJSON(t, srv.URL+"/staleness", &stal); code != 200 {
		t.Fatalf("staleness = %d", code)
	}
	if len(stal.Models) != 1 || stal.Models[0].Score != 0 || stal.Models[0].BaseRows != 50_000 {
		t.Fatalf("staleness = %+v", stal)
	}

	// Ingest a batch with one bad row: per-row error reporting.
	var ing struct {
		Appended int `json:"appended"`
		Rejected int `json:"rejected"`
		NumRows  int `json:"num_rows"`
		Errors   []struct {
			Row   int    `json:"row"`
			Error string `json:"error"`
		} `json:"errors"`
	}
	req := map[string]interface{}{
		"table": "sensor",
		"rows": [][]interface{}{
			{1.5, 3.0, 0.1},
			{"bad", 3.0, 0.1},
			{2.5, 5.0, 0.2},
		},
	}
	if code := postJSON(t, srv.URL+"/ingest", req, &ing); code != 200 {
		t.Fatalf("ingest = %d", code)
	}
	if ing.Appended != 2 || ing.Rejected != 1 || ing.NumRows != 50_002 {
		t.Fatalf("ingest response = %+v", ing)
	}
	if len(ing.Errors) != 1 || ing.Errors[0].Row != 1 || ing.Errors[0].Error == "" {
		t.Fatalf("ingest errors = %+v", ing.Errors)
	}

	// The ledger saw the appended rows.
	if code := getJSON(t, srv.URL+"/staleness", &stal); code != 200 {
		t.Fatalf("staleness = %d", code)
	}
	if stal.Models[0].IngestedRows != 2 {
		t.Fatalf("staleness after ingest = %+v", stal.Models[0])
	}

	// Error shapes: unknown table, missing rows, GET.
	var e struct {
		Error string `json:"error"`
	}
	if code := postJSON(t, srv.URL+"/ingest",
		map[string]interface{}{"table": "nope", "rows": [][]interface{}{{1.0}}}, &e); code != 422 || e.Error == "" {
		t.Fatalf("unknown-table ingest = %d %+v", code, e)
	}
	if code := postJSON(t, srv.URL+"/ingest", map[string]interface{}{"table": "sensor"}, &e); code != 400 {
		t.Fatalf("empty ingest = %d", code)
	}
	if code := getJSON(t, srv.URL+"/ingest", &e); code != 405 {
		t.Fatalf("GET ingest = %d", code)
	}

	// /stats exposes the refresh counters (refresher not running here).
	var st struct {
		RefreshRunning bool `json:"refresh_running"`
		TrackedModels  int  `json:"tracked_models"`
	}
	if code := getJSON(t, srv.URL+"/stats", &st); code != 200 {
		t.Fatalf("stats = %d", code)
	}
	if st.RefreshRunning || st.TrackedModels != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// An abandoned /train request must abort the training instead of finishing
// it for nobody: the handler trains under the request context.
func TestTrainHonorsRequestCancellation(t *testing.T) {
	eng := newTestEngine(t)
	handler := newHandler(eng)

	before := eng.ModelKeys()
	body := `{"table": "sensor", "xcols": ["z"], "ycol": "x", "sample_size": 2000}`
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req := httptest.NewRequest(http.MethodPost, "/train", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("canceled train = %d, want 422", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "cancel") {
		t.Fatalf("canceled train body = %s", rec.Body.String())
	}
	// Nothing was added to the catalog.
	if got := eng.ModelKeys(); len(got) != len(before) {
		t.Fatalf("canceled train mutated the catalog: %v -> %v", before, got)
	}
}

// End-to-end over HTTP: ingest past the threshold and watch the background
// refresher retrain, with the new row count reflected in model answers.
func TestIngestTriggersBackgroundRefresh(t *testing.T) {
	eng := newTestEngine(t)
	if err := eng.StartRefresher(&dbest.RefreshOptions{
		Interval:  5 * time.Millisecond,
		Threshold: 0.5,
	}); err != nil {
		t.Fatal(err)
	}
	defer eng.StopRefresher()
	srv := httptest.NewServer(newHandler(eng))
	defer srv.Close()

	// Ingest 60k rows (staleness 1.2) in micro-batches.
	rng := rand.New(rand.NewSource(11))
	const batch, batches = 6000, 10
	for b := 0; b < batches; b++ {
		rows := make([][]interface{}, batch)
		for i := range rows {
			x := float64(rng.Intn(50_000))
			rows[i] = []interface{}{x, 2 * x, 0.0}
		}
		var ing struct {
			Appended int `json:"appended"`
		}
		if code := postJSON(t, srv.URL+"/ingest",
			map[string]interface{}{"table": "sensor", "rows": rows}, &ing); code != 200 || ing.Appended != batch {
			t.Fatalf("batch %d: code %d appended %d", b, code, ing.Appended)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	var st struct {
		Refreshes uint64 `json:"refreshes"`
		LastError string `json:"refresh_last_error"`
	}
	for {
		if code := getJSON(t, srv.URL+"/stats", &st); code != 200 {
			t.Fatalf("stats = %d", code)
		}
		if st.Refreshes >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no background refresh; stats = %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.LastError != "" {
		t.Fatalf("refresh error: %s", st.LastError)
	}
}

// TestShardedTrainAndStats: POST /train with a shards field builds a
// range-sharded ensemble; narrow queries prune shards, visible in /stats.
func TestShardedTrainAndStats(t *testing.T) {
	eng := newTestEngine(t)
	srv := httptest.NewServer(newHandler(eng))
	defer srv.Close()

	var tr struct {
		Key       string `json:"key"`
		NumModels int    `json:"num_models"`
		Shards    int    `json:"shards"`
	}
	if code := postJSON(t, srv.URL+"/train", map[string]interface{}{
		"table": "sensor", "xcols": []string{"x"}, "ycol": "z",
		"sample_size": 1000, "seed": 3, "shards": 8,
	}, &tr); code != 200 {
		t.Fatalf("sharded train status = %d", code)
	}
	if tr.Shards != 8 || tr.NumModels != 8 {
		t.Fatalf("train response = %+v, want 8 shards / 8 models", tr)
	}

	// A sharded train with multiple x columns or a groupby is a 400.
	if code := postJSON(t, srv.URL+"/train", map[string]interface{}{
		"table": "sensor", "xcols": []string{"x", "y"}, "ycol": "z", "shards": 4,
	}, nil); code != 400 {
		t.Fatalf("multivariate sharded train status = %d, want 400", code)
	}

	// EXPLAIN shows the ShardMerge operator.
	var ex struct {
		Path string `json:"path"`
		Tree string `json:"tree"`
	}
	sql := "SELECT AVG(z) FROM sensor WHERE x BETWEEN 1000 AND 2000"
	if code := getJSON(t, srv.URL+"/explain?sql="+strings.ReplaceAll(sql, " ", "+"), &ex); code != 200 {
		t.Fatalf("explain status = %d", code)
	}
	if ex.Path != "model" || !strings.Contains(ex.Tree, "ShardMerge") {
		t.Fatalf("explain = %+v", ex)
	}

	// Running the narrow query moves the shard counters, and /stats shows
	// far more pruned than evaluated.
	var qr queryResponse
	if code := getJSON(t, srv.URL+"/query?sql="+strings.ReplaceAll(sql, " ", "+"), &qr); code != 200 {
		t.Fatalf("query status = %d", code)
	}
	var st struct {
		ShardsEvaluated uint64 `json:"shards_evaluated"`
		ShardsPruned    uint64 `json:"shards_pruned"`
	}
	if code := getJSON(t, srv.URL+"/stats", &st); code != 200 {
		t.Fatalf("stats status = %d", code)
	}
	if st.ShardsEvaluated == 0 || st.ShardsPruned == 0 {
		t.Fatalf("shard counters = %+v, want both nonzero after a narrow query", st)
	}
	if st.ShardsEvaluated+st.ShardsPruned != 8 {
		t.Fatalf("counters %+v do not sum to the ensemble size", st)
	}

	// /staleness reports per-shard entries with shard metadata.
	var stale struct {
		Models []stalenessJSON `json:"models"`
	}
	if code := getJSON(t, srv.URL+"/staleness", &stale); code != 200 {
		t.Fatalf("staleness status = %d", code)
	}
	sharded := 0
	for _, m := range stale.Models {
		if m.Shards == 8 {
			sharded++
		}
	}
	if sharded != 8 {
		t.Fatalf("staleness lists %d sharded entries, want 8: %+v", sharded, stale.Models)
	}
}

// POST /train accepts a full declarative model spec — here a named sharded
// ensemble — and GET /models lists it with its spec and staleness, without
// leaking raw shard-member keys.
func TestTrainSpecBodyAndModelsEndpoint(t *testing.T) {
	eng := newTestEngine(t)
	srv := httptest.NewServer(newHandler(eng))
	defer srv.Close()

	var tr struct {
		Key    string `json:"key"`
		Name   string `json:"name"`
		Shards int    `json:"shards"`
	}
	if code := postJSON(t, srv.URL+"/train", map[string]interface{}{
		"name": "z_by_x", "table": "sensor", "xcols": []string{"x"}, "ycol": "z",
		"sample_size": 1000, "seed": 3, "shards": 4,
	}, &tr); code != 200 {
		t.Fatalf("spec train status = %d", code)
	}
	if tr.Name != "z_by_x" || tr.Shards != 4 {
		t.Fatalf("train response = %+v", tr)
	}

	var ml struct {
		Models []dbest.ModelInfo `json:"models"`
	}
	if code := getJSON(t, srv.URL+"/models", &ml); code != 200 {
		t.Fatalf("models status = %d", code)
	}
	if len(ml.Models) != 2 { // the seed x→y model plus z_by_x
		t.Fatalf("models = %+v, want 2 entries", ml.Models)
	}
	for _, m := range ml.Models {
		if strings.Contains(m.Key, "@s") {
			t.Fatalf("GET /models leaked a shard-member key: %q", m.Key)
		}
		if !m.Tracked || m.Bytes <= 0 {
			t.Fatalf("model entry = %+v, want tracked with nonzero bytes", m)
		}
	}
	var named *dbest.ModelInfo
	for i := range ml.Models {
		if ml.Models[i].Name == "z_by_x" {
			named = &ml.Models[i]
		}
	}
	if named == nil || named.Shards != 4 || named.Spec == nil || named.Spec.SampleSize != 1000 {
		t.Fatalf("named model entry = %+v, want spec round-tripped over the wire", named)
	}

	// The spec-trained ensemble answers queries.
	var qr queryResponse
	if code := getJSON(t, srv.URL+"/query?sql="+
		"SELECT+COUNT(*)+FROM+sensor+WHERE+x+BETWEEN+0+AND+9999", &qr); code != 200 {
		t.Fatalf("query status = %d", code)
	}
	if qr.Source != "model" {
		t.Fatalf("query source = %q, want model", qr.Source)
	}

	// Invalid specs are the client's fault: 400, not 422.
	if code := postJSON(t, srv.URL+"/train", map[string]interface{}{
		"table": "sensor", "xcols": []string{"x"}, "ycol": "z", "regressor": "forest",
	}, nil); code != 400 {
		t.Fatalf("bad regressor status = %d, want 400", code)
	}
	if code := postJSON(t, srv.URL+"/train", map[string]interface{}{
		"table": "sensor", "xcols": []string{"x"},
	}, nil); code != 400 {
		t.Fatalf("missing ycol status = %d, want 400", code)
	}
	// A valid spec over a bad column is a training failure: 422.
	if code := postJSON(t, srv.URL+"/train", map[string]interface{}{
		"table": "sensor", "xcols": []string{"nope"}, "ycol": "z",
	}, nil); code != 422 {
		t.Fatalf("unknown column status = %d, want 422", code)
	}
}

// TestSnapshotStatsAndPprof: /stats exposes the engine's snapshot counters
// and the pprof handlers are wired onto the server's mux.
func TestSnapshotStatsAndPprof(t *testing.T) {
	srv := httptest.NewServer(newHandler(newTestEngine(t)))
	defer srv.Close()

	var st struct {
		SnapshotGeneration uint64 `json:"snapshot_generation"`
		SnapshotRebuilds   uint64 `json:"snapshot_rebuilds"`
		CatalogRebuilds    uint64 `json:"catalog_rebuilds"`
	}
	if code := getJSON(t, srv.URL+"/stats", &st); code != 200 {
		t.Fatalf("stats = %d", code)
	}
	// newTestEngine registers a table and trains at least one model, so the
	// engine must have published snapshots past the initial empty one.
	if st.SnapshotGeneration == 0 || st.SnapshotRebuilds == 0 || st.CatalogRebuilds == 0 {
		t.Fatalf("stats = %+v: want non-zero snapshot counters after table+train", st)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/mutex?debug=1", "/debug/pprof/block?debug=1"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestSketchEndpoints drives the sketch lifecycle over HTTP: build sketches
// via POST /train (a sketch spec is just a ModelSpec), query COUNT(DISTINCT)
// and TOP-K through /query (TOP entries ride in the aggregate's topk field),
// ingest rows that the sketches absorb, and watch the /stats and /models
// counters move.
func TestSketchEndpoints(t *testing.T) {
	srv := httptest.NewServer(newHandler(newTestEngine(t)))
	defer srv.Close()

	var tr struct {
		Key        string `json:"key"`
		ModelBytes int    `json:"model_bytes"`
	}
	if code := postJSON(t, srv.URL+"/train",
		map[string]interface{}{"name": "dx", "table": "sensor", "xcols": []string{"x"}, "sketch": "hll"},
		&tr); code != 200 {
		t.Fatalf("sketch train = %d", code)
	}
	if !strings.Contains(tr.Key, "sketch:hll") || tr.ModelBytes <= 0 {
		t.Fatalf("sketch train response = %+v", tr)
	}
	if code := postJSON(t, srv.URL+"/train",
		map[string]interface{}{"name": "tx", "table": "sensor", "xcols": []string{"x"}, "sketch": "topk", "topk": 3},
		nil); code != 200 {
		t.Fatalf("topk train = %d", code)
	}

	var q queryResponse
	if code := getJSON(t, srv.URL+"/query?sql="+url.QueryEscape("SELECT COUNT(DISTINCT x) FROM sensor"), &q); code != 200 {
		t.Fatalf("distinct query = %d", code)
	}
	if q.Source != "sketch" {
		t.Fatalf("distinct source = %q, want sketch", q.Source)
	}
	if got := q.Aggregates[0].Value; got < 49000 || got > 51000 {
		t.Fatalf("COUNT(DISTINCT x) = %v, want ~50000", got)
	}
	if code := getJSON(t, srv.URL+"/query?sql="+url.QueryEscape("SELECT TOP 3(x) FROM sensor"), &q); code != 200 {
		t.Fatalf("top query = %d", code)
	}
	if q.Source != "sketch" || len(q.Aggregates[0].TopK) != 3 {
		t.Fatalf("TOP response = %+v (%s)", q.Aggregates[0], q.Source)
	}

	// Ingest feeds the absorb path; /stats and /models reflect it.
	rows := make([][]interface{}, 100)
	for i := range rows {
		rows[i] = []interface{}{float64(60000 + i), 1.0, 1.0}
	}
	if code := postJSON(t, srv.URL+"/ingest", map[string]interface{}{"table": "sensor", "rows": rows}, nil); code != 200 {
		t.Fatalf("ingest = %d", code)
	}
	if code := getJSON(t, srv.URL+"/query?sql="+url.QueryEscape("SELECT COUNT(DISTINCT x) FROM sensor"), &q); code != 200 {
		t.Fatalf("post-ingest query = %d", code)
	}
	var stats struct {
		SketchHits    uint64 `json:"sketch_hits"`
		SketchUpdates uint64 `json:"sketch_updates"`
		SketchBytes   int    `json:"sketch_bytes"`
	}
	if code := getJSON(t, srv.URL+"/stats", &stats); code != 200 {
		t.Fatalf("stats = %d", code)
	}
	if stats.SketchHits < 3 || stats.SketchUpdates != 200 || stats.SketchBytes <= 0 {
		t.Fatalf("sketch stats = %+v, want hits >= 3, updates == 200 (100 rows x 2 sketches), bytes > 0", stats)
	}

	var models struct {
		Models []dbest.ModelInfo `json:"models"`
	}
	if code := getJSON(t, srv.URL+"/models", &models); code != 200 {
		t.Fatalf("models = %d", code)
	}
	sketches := 0
	for _, m := range models.Models {
		if m.Type == "" {
			continue
		}
		sketches++
		if m.AbsorbedRows != 50_100 {
			t.Fatalf("sketch %s absorbed %d rows, want 50100", m.Key, m.AbsorbedRows)
		}
	}
	if sketches != 2 {
		t.Fatalf("models listed %d sketches, want 2", sketches)
	}
}
