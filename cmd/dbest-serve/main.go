// Command dbest-serve is the network front end of the DBEst engine: it
// loads CSV tables, trains (or loads) model catalogs at startup, then
// serves SQL aggregate queries over HTTP/JSON from one shared engine.
//
// Usage:
//
//	dbest-serve -addr :8080 \
//	    -table sales=sales.csv \
//	    -train 'sales:date:price'
//
//	dbest-serve -addr :8080 -load models.gob
//
// Endpoints (all JSON):
//
//	GET  /query?sql=...      answer a query (also POST {"sql": "..."})
//	POST /query/batch        answer many queries in one request
//	GET  /explain?sql=...    plan for a query without running it
//	POST /train              execute a declarative model spec (table, xcols,
//	                         ycol, and optionally join / nominal_by / shards
//	                         / sample_size / seed — see dbest.ModelSpec)
//	GET  /models             logical model listing: spec, size, staleness
//	GET  /train-status       catalog contents and memory footprint
//	POST /ingest             append rows to a registered table
//	GET  /staleness          per-model staleness ledger
//	GET  /stats              plan-cache + snapshot + refresh counters and uptime
//	GET  /healthz            liveness probe
//	GET  /debug/pprof/*      runtime profiles (cpu, heap, mutex, block);
//	                         enable contention sampling with -mutexprofile
//	                         and -blockprofile
//
// Unless -refresh 0 disables it, a background refresher retrains models
// whose staleness score (see /staleness) crosses -refresh-threshold, so a
// table fed through /ingest keeps its models current without anyone
// calling /train again.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strings"
	"time"

	"dbest"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var tables, trains multiFlag
	flag.Var(&tables, "table", "name=path.csv (repeatable)")
	flag.Var(&trains, "train", "table:xcol[,xcol2]:ycol[:groupby] (repeatable)")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		sampleSize = flag.Int("sample", 10000, "training sample size")
		seed       = flag.Int64("seed", 1, "RNG seed")
		load       = flag.String("load", "", "load models from this file")
		workers    = flag.Int("workers", 0, "query-time workers (0 = GOMAXPROCS)")

		refresh    = flag.Duration("refresh", 2*time.Second, "staleness scan interval for background model refresh (0 disables)")
		refreshThr = flag.Float64("refresh-threshold", 0.1, "staleness score that triggers a background retrain")
		refreshMin = flag.Int("refresh-min-rows", 1, "minimum ingested rows before a model is considered stale")
		refreshWrk = flag.Int("refresh-workers", 1, "concurrent background retrains")

		mutexProf = flag.Int("mutexprofile", 0, "mutex contention sampling rate for /debug/pprof/mutex (0 disables, 1 = every event)")
		blockProf = flag.Int("blockprofile", 0, "blocking-event sampling rate in ns for /debug/pprof/block (0 disables)")
	)
	flag.Parse()

	if *mutexProf > 0 {
		runtime.SetMutexProfileFraction(*mutexProf)
	}
	if *blockProf > 0 {
		runtime.SetBlockProfileRate(*blockProf)
	}

	eng := dbest.New(&dbest.Options{Workers: *workers})

	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("bad -table %q, want name=path.csv", spec)
		}
		tb, err := dbest.LoadCSV(name, path)
		if err != nil {
			log.Fatal(err)
		}
		tb.Name = name
		if err := eng.RegisterTable(tb); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %s: %d rows, %d columns", name, tb.NumRows(), len(tb.Columns))
	}
	if *load != "" {
		if err := eng.LoadModels(*load); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded models: %v", eng.ModelKeys())
	}
	for _, spec := range trains {
		parts := strings.Split(spec, ":")
		if len(parts) < 3 || len(parts) > 4 {
			log.Fatalf("bad -train %q, want table:xcols:ycol[:groupby]", spec)
		}
		opts := &dbest.TrainOptions{SampleSize: *sampleSize, Seed: *seed}
		if len(parts) == 4 {
			opts.GroupBy = parts[3]
		}
		info, err := eng.Train(parts[0], strings.Split(parts[1], ","), parts[2], opts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("trained %s: %d model(s), %d bytes", info.Key, info.NumModels, info.ModelBytes)
	}

	if *refresh > 0 {
		if err := eng.StartRefresher(&dbest.RefreshOptions{
			Interval:  *refresh,
			Threshold: *refreshThr,
			MinRows:   *refreshMin,
			Workers:   *refreshWrk,
		}); err != nil {
			log.Fatal(err)
		}
		defer eng.StopRefresher()
		log.Printf("background refresh: every %v at staleness >= %g (%d worker(s))",
			*refresh, *refreshThr, *refreshWrk)
	}

	log.Printf("dbest-serve listening on %s (%d model sets)", *addr, len(eng.ModelKeys()))
	if err := http.ListenAndServe(*addr, newHandler(eng)); err != nil {
		log.Fatal(fmt.Errorf("dbest-serve: %w", err))
	}
}
