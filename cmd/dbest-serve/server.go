package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"dbest"
)

// server exposes one shared dbest.Engine over HTTP/JSON. The engine is
// concurrency-safe, so every handler serves requests directly with no
// request queue in front.
type server struct {
	eng     *dbest.Engine
	started time.Time
}

// newHandler builds the HTTP routing for a shared engine.
func newHandler(eng *dbest.Engine) http.Handler {
	s := &server{eng: eng, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/query/batch", s.handleQueryBatch)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/train", s.handleTrain)
	mux.HandleFunc("/train-status", s.handleTrainStatus)
	mux.HandleFunc("/models", s.handleModels)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/staleness", s.handleStaleness)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	// Runtime profiling, wired explicitly because the server uses its own
	// mux rather than http.DefaultServeMux. /debug/pprof/mutex and
	// /debug/pprof/block only carry data when the corresponding sampling
	// rate flag (-mutexprofile / -blockprofile) is set.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

type groupJSON struct {
	Group int64   `json:"group"`
	Value float64 `json:"value"`
	// CI is the group's confidence interval [lo, hi] and PredRelErr its
	// predicted relative error; omitted when bounds are unknown.
	CI         []float64 `json:"ci,omitempty"`
	PredRelErr float64   `json:"pred_rel_err,omitempty"`
}

type topEntryJSON struct {
	Value string `json:"value"`
	Count uint64 `json:"count"`
}

type aggregateJSON struct {
	Name   string         `json:"name"`
	Value  float64        `json:"value"`
	Groups []groupJSON    `json:"groups,omitempty"`
	TopK   []topEntryJSON `json:"topk,omitempty"`
	// CI is the value's confidence interval [lo, hi] and PredRelErr the
	// predicted relative error from the model's train-time error predictor;
	// omitted when bounds are unknown (exact/sketch paths, old catalogs).
	CI         []float64 `json:"ci,omitempty"`
	PredRelErr float64   `json:"pred_rel_err,omitempty"`
}

type queryResponse struct {
	Aggregates []aggregateJSON `json:"aggregates"`
	Source     string          `json:"source"`
	ElapsedUs  int64           `json:"elapsed_us"`
}

type errorJSON struct {
	Error string `json:"error"`
}

// toAggregatesJSON converts engine aggregate results to their wire form —
// the one conversion shared by /query and /query/batch.
func toAggregatesJSON(aggs []dbest.AggregateResult) []aggregateJSON {
	out := make([]aggregateJSON, 0, len(aggs))
	for _, agg := range aggs {
		aj := aggregateJSON{Name: agg.Name, Value: agg.Value}
		if agg.PredRelErr > 0 {
			aj.CI = []float64{agg.CI[0], agg.CI[1]}
			aj.PredRelErr = agg.PredRelErr
		}
		for _, g := range agg.Groups {
			gj := groupJSON{Group: g.Group, Value: g.Value}
			if g.PredRelErr > 0 {
				gj.CI = []float64{g.CI[0], g.CI[1]}
				gj.PredRelErr = g.PredRelErr
			}
			aj.Groups = append(aj.Groups, gj)
		}
		for _, e := range agg.TopK {
			aj.TopK = append(aj.TopK, topEntryJSON{Value: e.Value, Count: e.Count})
		}
		out = append(out, aj)
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// readSQL extracts the SQL statement from a request: ?sql= on GET, a JSON
// body {"sql": "..."} (or raw SQL text) on POST. An optional error budget —
// ?tolerance= on GET, "tolerance" in the JSON body, in percent — is folded
// into the statement as a WITHIN clause, so the engine's router serves the
// query from a model only when its predicted error fits the budget.
func readSQL(r *http.Request) (string, error) {
	switch r.Method {
	case http.MethodGet:
		sql := r.URL.Query().Get("sql")
		if sql == "" {
			return "", errors.New("missing sql query parameter")
		}
		if tol := r.URL.Query().Get("tolerance"); tol != "" {
			v, err := strconv.ParseFloat(tol, 64)
			if err != nil {
				return "", fmt.Errorf("bad tolerance %q: %w", tol, err)
			}
			sql = withTolerance(sql, v)
		}
		return sql, nil
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			return "", err
		}
		var req struct {
			SQL       string  `json:"sql"`
			Tolerance float64 `json:"tolerance"`
		}
		if json.Unmarshal(body, &req) == nil && req.SQL != "" {
			if req.Tolerance > 0 {
				return withTolerance(req.SQL, req.Tolerance), nil
			}
			return req.SQL, nil
		}
		if sql := strings.TrimSpace(string(body)); sql != "" && !strings.HasPrefix(sql, "{") {
			return sql, nil
		}
		return "", errors.New(`missing sql: POST {"sql": "SELECT ..."}`)
	default:
		return "", fmt.Errorf("method %s not allowed", r.Method)
	}
}

// withTolerance appends a WITHIN <pct>% clause to sql (stripping a trailing
// semicolon first so the clause parses). A statement that already carries
// its own WITHIN clause is returned unchanged — the inline budget wins.
func withTolerance(sql string, pct float64) string {
	if strings.Contains(strings.ToUpper(sql), "WITHIN") {
		return sql
	}
	s := strings.TrimRight(strings.TrimSpace(sql), "; \t\r\n")
	return fmt.Sprintf("%s WITHIN %g%%", s, pct)
}

// handleQuery answers one SQL query from the shared engine.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sql, err := readSQL(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.eng.Query(sql)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := queryResponse{
		Aggregates: toAggregatesJSON(res.Aggregates),
		Source:     res.Source,
		ElapsedUs:  res.Elapsed.Microseconds(),
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxBatchQueries bounds one /query/batch request; larger workloads should
// split into multiple requests rather than pinning a worker pool this long.
const maxBatchQueries = 1024

type batchRequest struct {
	Queries []string `json:"queries"`
	// Tolerance, in percent, applies a WITHIN error budget to every query
	// in the batch (queries carrying their own WITHIN clause keep it).
	Tolerance float64 `json:"tolerance,omitempty"`
}

// batchItemJSON is one query's outcome: either a result or an error, never
// both — errors are isolated per query.
type batchItemJSON struct {
	Aggregates []aggregateJSON `json:"aggregates,omitempty"`
	Source     string          `json:"source,omitempty"`
	ElapsedUs  int64           `json:"elapsed_us,omitempty"`
	Error      string          `json:"error,omitempty"`
}

type batchResponse struct {
	Results   []batchItemJSON `json:"results"`
	ElapsedUs int64           `json:"elapsed_us"`
}

// handleQueryBatch answers many SQL queries in one request via
// Engine.QueryBatch: one parse/plan per distinct query shape, parallel
// execution, per-query error isolation. Results come back in input order.
func (s *server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req batchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New(`batch requires queries: POST {"queries": ["SELECT ..."]}`))
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d queries exceeds the limit of %d", len(req.Queries), maxBatchQueries))
		return
	}
	if req.Tolerance > 0 {
		for i, q := range req.Queries {
			req.Queries[i] = withTolerance(q, req.Tolerance)
		}
	}
	t0 := time.Now()
	results := s.eng.QueryBatch(req.Queries)
	resp := batchResponse{Results: make([]batchItemJSON, len(results))}
	for i, br := range results {
		if br.Err != nil {
			resp.Results[i].Error = br.Err.Error()
			continue
		}
		resp.Results[i] = batchItemJSON{
			Aggregates: toAggregatesJSON(br.Result.Aggregates),
			Source:     br.Result.Source,
			ElapsedUs:  br.Result.Elapsed.Microseconds(),
		}
	}
	resp.ElapsedUs = time.Since(t0).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

// handleExplain reports the plan for one SQL query without running it.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sql, err := readSQL(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := s.eng.Explain(sql)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Path      string   `json:"path"`
		ModelKeys []string `json:"model_keys,omitempty"`
		Reason    string   `json:"reason,omitempty"`
		Tree      string   `json:"tree"`
	}{plan.Path, plan.ModelKeys, plan.Reason, plan.Tree})
}

// trainRequest is the POST /train body: a full declarative model spec.
// Every spec field is accepted — joins ("join"), nominal categorical
// splits ("nominal_by"), sharded ensembles ("shards"), sampling budget and
// seed — and the legacy flat body (table/xcols/ycol/groupby/sample_size/
// seed/shards) remains valid because those are exactly the spec's core
// fields.
type trainRequest = dbest.ModelSpec

// handleTrain executes one declarative model spec over already-registered
// tables. Training runs synchronously; concurrent queries keep answering
// from the current catalog and pick the new models up when it completes.
func (s *server) handleTrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var spec trainRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Spec validation failures are the client's fault (400); training
	// failures over valid specs (unknown column, empty table) are 422.
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Train under the request context: an abandoned client connection
	// cancels it, aborting the training instead of finishing for nobody.
	info, err := s.eng.CreateModel(r.Context(), &spec)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Key        string `json:"key"`
		Name       string `json:"name,omitempty"`
		NumModels  int    `json:"num_models"`
		ModelBytes int    `json:"model_bytes"`
		SampleRows int    `json:"sample_rows"`
		SampleUs   int64  `json:"sample_us"`
		TrainUs    int64  `json:"train_us"`
		Shards     int    `json:"shards,omitempty"`
	}{info.Key, spec.Name, info.NumModels, info.ModelBytes, info.SampleRows,
		info.SampleTime.Microseconds(), info.TrainTime.Microseconds(), info.Shards})
}

// handleModels lists every logical trained model — base key, declarative
// spec, ensemble size, footprint and staleness — via Engine.Models, which
// never leaks raw shard-member keys.
func (s *server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Models []dbest.ModelInfo `json:"models"`
	}{s.eng.Models()})
}

// maxIngestRows bounds one /ingest request; a sustained stream should send
// micro-batches rather than one giant request.
const maxIngestRows = 65536

type ingestRequest struct {
	Table string          `json:"table"`
	Rows  [][]interface{} `json:"rows"`
}

type ingestResponse struct {
	Appended int `json:"appended"`
	Rejected int `json:"rejected"`
	NumRows  int `json:"num_rows"`
	// Errors reuses the engine's RowError, whose json tags already define
	// the wire shape ({"row": i, "error": "..."}).
	Errors []dbest.RowError `json:"errors,omitempty"`
}

// handleIngest appends a batch of rows to a registered table. Rows are
// arrays of values in column order; rows that fail schema validation are
// rejected individually and reported, the rest are appended. Every
// appended row feeds the staleness ledger, so sustained ingest eventually
// triggers the background refresher.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 32<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Table == "" || len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, errors.New(`ingest requires table and rows: POST {"table": "t", "rows": [[...], ...]}`))
		return
	}
	if len(req.Rows) > maxIngestRows {
		writeError(w, http.StatusBadRequest, fmt.Errorf("ingest of %d rows exceeds the limit of %d", len(req.Rows), maxIngestRows))
		return
	}
	res, err := s.eng.Append(req.Table, req.Rows)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Appended: res.Appended,
		Rejected: res.Rejected,
		NumRows:  res.NumRows,
		Errors:   res.Errors,
	})
}

type stalenessJSON struct {
	Key               string   `json:"key"`
	Tables            []string `json:"tables"`
	BaseRows          int      `json:"base_rows"`
	IngestedRows      int      `json:"ingested_rows"`
	ReservoirSize     int      `json:"reservoir_size,omitempty"`
	ReservoirReplaced int      `json:"reservoir_replaced,omitempty"`
	FracIngested      float64  `json:"frac_ingested"`
	FracReplaced      float64  `json:"frac_replaced"`
	Score             float64  `json:"score"`
	// Shard is meaningful only when Shards > 0 (shard 0 is a valid index,
	// so it cannot be omitempty).
	Shard             int    `json:"shard"`
	Shards            int    `json:"shards,omitempty"`
	LastTrainedUnixUs int64  `json:"last_trained_unix_us"`
	Refreshing        bool   `json:"refreshing,omitempty"`
	Refreshes         uint64 `json:"refreshes"`
	Failures          uint64 `json:"failures,omitempty"`
	LastError         string `json:"last_error,omitempty"`
	LastRetrainUs     int64  `json:"last_retrain_us,omitempty"`
}

// handleStaleness reports the per-model staleness ledger: how far each
// trained model has drifted from its table's live rows, and the background
// refresher's per-model history.
func (s *server) handleStaleness(w http.ResponseWriter, r *http.Request) {
	sts := s.eng.ModelStaleness()
	out := make([]stalenessJSON, 0, len(sts))
	for _, st := range sts {
		out = append(out, stalenessJSON{
			Key:               st.Key,
			Tables:            st.Tables,
			BaseRows:          st.BaseRows,
			IngestedRows:      st.IngestedRows,
			ReservoirSize:     st.ReservoirSize,
			ReservoirReplaced: st.ReservoirReplaced,
			FracIngested:      st.FracIngested,
			FracReplaced:      st.FracReplaced,
			Score:             st.Score,
			Shard:             st.Shard,
			Shards:            st.Shards,
			LastTrainedUnixUs: st.LastTrained.UnixMicro(),
			Refreshing:        st.Refreshing,
			Refreshes:         st.Refreshes,
			Failures:          st.Failures,
			LastError:         st.LastError,
			LastRetrainUs:     st.LastRetrain.Microseconds(),
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Models []stalenessJSON `json:"models"`
	}{out})
}

// handleTrainStatus reports what the catalog currently holds — the models
// available to answer queries and their total memory footprint.
func (s *server) handleTrainStatus(w http.ResponseWriter, r *http.Request) {
	keys := s.eng.ModelKeys()
	writeJSON(w, http.StatusOK, struct {
		ModelKeys  []string `json:"model_keys"`
		NumModels  int      `json:"num_model_sets"`
		TotalBytes int      `json:"total_bytes"`
	}{keys, len(keys), s.eng.ModelBytes()})
}

// handleStats reports serving-side counters: plan-cache effectiveness,
// snapshot publication, background-refresh activity and uptime. Every
// counter reads from atomics, so polling /stats never contends with
// serving.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.PlanCacheStats()
	rs := s.eng.RefreshStats()
	ss := s.eng.ShardStats()
	sn := s.eng.SnapshotStats()
	ek := s.eng.EvalKernelStats()
	sk := s.eng.SketchStats()
	rt := s.eng.RouterStats()
	writeJSON(w, http.StatusOK, struct {
		PlanCacheHits      uint64 `json:"plan_cache_hits"`
		PlanCacheMisses    uint64 `json:"plan_cache_misses"`
		PlanCacheEvictions uint64 `json:"plan_cache_evictions"`
		PlanCacheResets    uint64 `json:"plan_cache_resets"`
		PlanCacheGenWipes  uint64 `json:"plan_cache_generation_wipes"`
		PlanCacheEntries   int    `json:"plan_cache_entries"`
		SnapshotGeneration uint64 `json:"snapshot_generation"`
		SnapshotRebuilds   uint64 `json:"snapshot_rebuilds"`
		CatalogRebuilds    uint64 `json:"catalog_rebuilds"`
		RefreshRunning     bool   `json:"refresh_running"`
		RefreshScans       uint64 `json:"refresh_scans"`
		Refreshes          uint64 `json:"refreshes"`
		RefreshFailures    uint64 `json:"refresh_failures"`
		RefreshLastError   string `json:"refresh_last_error,omitempty"`
		RefreshTotalUs     int64  `json:"refresh_total_retrain_us"`
		RefreshLastUs      int64  `json:"refresh_last_retrain_us"`
		TrackedModels      int    `json:"tracked_models"`
		ShardsEvaluated    uint64 `json:"shards_evaluated"`
		ShardsPruned       uint64 `json:"shards_pruned"`
		GridHits           uint64 `json:"grid_hits"`
		GridFallbacks      uint64 `json:"grid_fallbacks"`
		QuadNonconverged   uint64 `json:"quad_nonconverged"`
		SketchHits         uint64 `json:"sketch_hits"`
		SketchUpdates      uint64 `json:"sketch_updates"`
		SketchBytes        int    `json:"sketch_bytes"`
		RouterModelHits    uint64 `json:"router_model_hits"`
		RouterFallbacks    uint64 `json:"router_exact_fallbacks"`
		RouterObservations uint64 `json:"router_observations"`
		RouterTracked      int    `json:"router_tracked_models"`
		UptimeSeconds      int64  `json:"uptime_seconds"`
	}{st.Hits, st.Misses, st.Evictions, st.Resets, st.GenerationWipes, st.Entries,
		sn.Generation, sn.Rebuilds, sn.CatalogRebuilds,
		rs.Running, rs.Scans, rs.Refreshes, rs.Failures, rs.LastError,
		rs.TotalRetrain.Microseconds(), rs.LastRetrain.Microseconds(),
		rs.TrackedModels, ss.Evaluated, ss.Pruned,
		ek.GridHits, ek.GridFallbacks, ek.QuadNonconverged,
		sk.Hits, sk.Updates, sk.Bytes,
		rt.ModelHits, rt.ExactFallbacks, rt.Observations, rt.TrackedModels,
		int64(time.Since(s.started).Seconds())})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}
