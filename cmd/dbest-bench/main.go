// Command dbest-bench regenerates the paper's evaluation figures. Each
// experiment prints the same series the corresponding figure plots (see
// DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured comparisons).
//
// Usage:
//
//	dbest-bench -list
//	dbest-bench -run fig2,fig3
//	dbest-bench -run all -rows 1000000 -samples 10000,100000 -peraf 50
//
// The load subcommand is the serving benchmark instead: a zipf-skewed
// query/ingest load harness sweeping worker counts and reporting
// throughput + latency percentiles as JSON (see load.go):
//
//	dbest-bench load -rows 200000 -shapes 60 -zipf 1.2 -ingest 0.02 \
//	    -workers 1,2,4,8,16 -dur 5s -out BENCH_1.json
//	dbest-bench load -smoke
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dbest/internal/experiments"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "load" {
		runLoad(os.Args[2:])
		return
	}
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		run     = flag.String("run", "", "comma-separated experiment IDs, or 'all'")
		rows    = flag.Int("rows", 400_000, "physical fact-table rows")
		scale   = flag.Float64("scale", 1, "logical rows per physical row")
		samples = flag.String("samples", "10000,100000", "comma-separated sample sizes")
		perAF   = flag.Int("peraf", 20, "random queries per aggregate function")
		seed    = flag.Int64("seed", 1, "deterministic RNG seed")
		workers = flag.Int("workers", 0, "parallel evaluation workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Describe(id))
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "dbest-bench: use -list to see experiments, -run <ids|all> to execute")
		os.Exit(2)
	}

	var sizes []int
	for _, s := range strings.Split(*samples, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "dbest-bench: bad sample size %q\n", s)
			os.Exit(2)
		}
		sizes = append(sizes, v)
	}
	cfg := experiments.Config{
		Rows: *rows, Scale: *scale, SampleSizes: sizes,
		PerAF: *perAF, Seed: *seed, Workers: *workers,
	}

	var ids []string
	if *run == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	failed := 0
	for _, id := range ids {
		fr, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbest-bench: %v\n", err)
			failed++
			continue
		}
		fr.Print(os.Stdout)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
