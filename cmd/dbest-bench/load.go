// The load subcommand is the serving-side benchmark driver: instead of
// regenerating paper figures it hammers one in-process engine with a
// zipf-skewed mix of cached query shapes plus a configurable fraction of
// ingest batches, sweeping worker counts and reporting throughput and
// latency percentiles as JSON — the perf trajectory record (BENCH_<n>.json)
// for the contention work on the read path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dbest"
	"dbest/internal/datagen"
	"dbest/internal/exact"
	"dbest/internal/table"
	"dbest/internal/workload"
)

// loadConfig is the harness configuration, echoed into the JSON report so a
// checked-in BENCH file is self-describing.
type loadConfig struct {
	Rows        int     `json:"rows"`
	SampleSize  int     `json:"sample_size"`
	Shapes      int     `json:"shapes"`
	ZipfS       float64 `json:"zipf_s"`
	IngestRatio float64 `json:"ingest_ratio"`
	IngestBatch int     `json:"ingest_batch"`
	// DistinctRatio is the fraction of query operations answered by the
	// sketch path — alternating COUNT(DISTINCT) and TOP-K shapes over
	// sketches built before the sweep. The shape-mix lever for measuring
	// how sketch reads and absorb-on-ingest writes mix with model serving.
	DistinctRatio float64 `json:"distinct_ratio"`
	DurationSec   float64 `json:"duration_sec"`
	Seed          int64   `json:"seed"`
	// UniqueSpans jitters every issued query's [lb, ub], so each query is
	// a distinct shape: the plan cache never hits and every evaluation
	// pays the cold model-integration path — the regime that separates
	// the grid kernel from per-query quadrature.
	UniqueSpans bool `json:"unique_spans"`
	// GridKnots is the evaluation-grid budget the serving model trains
	// with (0 default, -1 off) — the A/B lever for kernel comparisons.
	GridKnots int `json:"grid_knots"`
	// TolerancePct, when > 0, appends a WITHIN <p>% error budget to every
	// model-path query, exercising the error-budget router: queries whose
	// predicted error exceeds the budget fall through to the exact scan.
	TolerancePct float64 `json:"tolerance_pct,omitempty"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	GoVersion    string  `json:"go_version"`
}

// latencySummary reports percentiles over one run's per-query latencies.
type latencySummary struct {
	P50Us float64 `json:"p50_us"`
	P95Us float64 `json:"p95_us"`
	P99Us float64 `json:"p99_us"`
	MaxUs float64 `json:"max_us"`
}

// loadRun is one worker-count level of the sweep.
type loadRun struct {
	Workers     int            `json:"workers"`
	Queries     int            `json:"queries"`
	Ingests     int            `json:"ingests"`
	Errors      int            `json:"errors"`
	QueriesPerS float64        `json:"queries_per_sec"`
	OpsPerS     float64        `json:"ops_per_sec"`
	Latency     latencySummary `json:"query_latency"`
	CacheHits   uint64         `json:"plan_cache_hits"`
	CacheMisses uint64         `json:"plan_cache_misses"`
	// Evaluation-kernel counter deltas over the measured window: which
	// kernel actually served the integrals.
	GridHits         uint64 `json:"grid_hits"`
	GridFallbacks    uint64 `json:"grid_fallbacks"`
	QuadNonconverged uint64 `json:"quad_nonconverged"`
	// Sketch counter deltas over the measured window: queries the sketch
	// path answered and values the absorb path folded in from ingest.
	SketchHits    uint64 `json:"sketch_hits"`
	SketchUpdates uint64 `json:"sketch_updates"`
	// Error-budget router deltas over the measured window (all zero unless
	// -tolerance is set): tolerance queries served from the models vs
	// routed to the exact scan.
	RouterModelHits uint64 `json:"router_model_hits"`
	RouterFallbacks uint64 `json:"router_exact_fallbacks"`
}

// loadReport is the full JSON document the subcommand emits.
type loadReport struct {
	Bench     string     `json:"bench"`
	Timestamp string     `json:"timestamp"`
	Config    loadConfig `json:"config"`
	Runs      []loadRun  `json:"runs"`
}

// runLoad is the "dbest-bench load" entry point.
func runLoad(args []string) {
	fs := flag.NewFlagSet("dbest-bench load", flag.ExitOnError)
	var (
		rows    = fs.Int("rows", 200_000, "fact-table rows")
		sample  = fs.Int("sample", 10_000, "training sample size")
		shapes  = fs.Int("shapes", 60, "distinct query shapes (spread across COUNT/SUM/AVG/VARIANCE/STDDEV)")
		zipfS   = fs.Float64("zipf", 1.2, "zipf skew exponent for shape selection (> 1)")
		ingest  = fs.Float64("ingest", 0.02, "fraction of operations that are ingest batches")
		dstinct = fs.Float64("distinct", 0, "fraction of queries answered by sketches (COUNT(DISTINCT)/TOP-K shape mix)")
		batch   = fs.Int("batch", 64, "rows per ingest batch")
		workers = fs.String("workers", "1,2,4,8,16", "comma-separated worker counts to sweep")
		dur     = fs.Duration("dur", 5*time.Second, "measured duration per worker level")
		warmup  = fs.Duration("warmup", 500*time.Millisecond, "warmup before each measured run")
		seed    = fs.Int64("seed", 1, "deterministic RNG seed")
		unique  = fs.Bool("unique-spans", false, "jitter every query's range so no two queries share a shape (cold-path kernel benchmark)")
		grid    = fs.Int("grid", 0, "evaluation-grid knot budget for the serving model (0 default, -1 off)")
		tol     = fs.Float64("tolerance", 0, "WITHIN error budget in percent appended to every query (0 = off; exercises the model/exact router)")
		out     = fs.String("out", "", "also write the JSON report to this file")
		smoke   = fs.Bool("smoke", false, "small fast run for CI (overrides rows/dur/workers)")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *smoke {
		*rows, *dur, *warmup, *workers = 20_000, 2*time.Second, 200*time.Millisecond, "1,4"
	}
	if *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "dbest-bench load: -zipf must be > 1")
		os.Exit(2)
	}
	counts, err := parseWorkerList(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbest-bench load: %v\n", err)
		os.Exit(2)
	}

	report, err := loadBench(loadConfig{
		Rows: *rows, SampleSize: *sample, Shapes: *shapes, ZipfS: *zipfS,
		IngestRatio: *ingest, IngestBatch: *batch, DistinctRatio: *dstinct,
		DurationSec: dur.Seconds(),
		Seed:        *seed, UniqueSpans: *unique, GridKnots: *grid,
		TolerancePct: *tol,
		GoMaxProcs:   runtime.GOMAXPROCS(0), GoVersion: runtime.Version(),
	}, counts, *dur, *warmup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbest-bench load: %v\n", err)
		os.Exit(1)
	}
	enc, _ := json.MarshalIndent(report, "", "  ")
	enc = append(enc, '\n')
	os.Stdout.Write(enc)
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dbest-bench load: %v\n", err)
			os.Exit(1)
		}
	}
}

// parseWorkerList parses "1,2,4" into worker counts.
func parseWorkerList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -workers list")
	}
	return out, nil
}

// loadBench builds the engine, trains the serving model, generates the
// zipf-weighted shape population and runs the worker sweep.
func loadBench(cfg loadConfig, counts []int, dur, warmup time.Duration) (*loadReport, error) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: cfg.Rows, Seed: cfg.Seed})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		return nil, err
	}
	if _, err := eng.CreateModel(context.Background(), &dbest.ModelSpec{
		Table: tb.Name, XCols: []string{"ss_sold_date_sk"}, YCol: "ss_sales_price",
		SampleSize: cfg.SampleSize, Seed: cfg.Seed, GridKnots: cfg.GridKnots,
	}); err != nil {
		return nil, err
	}

	perAF := cfg.Shapes / 5
	if perAF < 1 {
		perAF = 1
	}
	qs, err := workload.Generate(tb, workload.Spec{
		XCol: "ss_sold_date_sk", YCol: "ss_sales_price",
		AFs:       []exact.AggFunc{exact.Count, exact.Sum, exact.Avg, exact.Variance, exact.StdDev},
		RangeFrac: 0.05, PerAF: perAF, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	sqls := make([]string, len(qs))
	for i, q := range qs {
		sqls[i] = q.SQL(tb.Name) + withinSuffix(cfg)
		res, err := eng.Query(sqls[i])
		if err != nil {
			return nil, fmt.Errorf("shape %q: %w", sqls[i], err)
		}
		// With a tolerance the router legitimately answers some shapes from
		// the exact scan — that split is what the run measures — so the
		// model-serving priming assertion only applies without one.
		if cfg.TolerancePct <= 0 && res.Source != "model" {
			return nil, fmt.Errorf("shape %q fell to the %s path; the harness measures model serving", sqls[i], res.Source)
		}
	}
	// Sketch shapes for the -distinct mix, over sketches built up front so
	// the sweep measures serving plus absorb, not sketch construction.
	var sketchSQLs []string
	if cfg.DistinctRatio > 0 {
		for _, stmt := range []string{
			"CREATE SKETCH bench_dates ON store_sales(ss_sold_date_sk) TYPE HLL",
			"CREATE SKETCH bench_channels ON store_sales(ss_channel) TYPE TOPK K 3",
		} {
			if _, err := eng.Exec(stmt); err != nil {
				return nil, err
			}
		}
		sketchSQLs = []string{
			"SELECT COUNT(DISTINCT ss_sold_date_sk) FROM store_sales",
			"SELECT TOP 3(ss_channel) FROM store_sales",
		}
		for _, sql := range sketchSQLs {
			res, err := eng.Query(sql)
			if err != nil {
				return nil, fmt.Errorf("sketch shape %q: %w", sql, err)
			}
			if res.Source != "sketch" {
				return nil, fmt.Errorf("sketch shape %q fell to the %s path", sql, res.Source)
			}
		}
	}
	// Jittered spans need the x domain to stay inside.
	xlo, xhi, err := columnDomain(tb, "ss_sold_date_sk")
	if err != nil {
		return nil, err
	}
	ingestRows := sampleRows(tb, cfg.IngestBatch, cfg.Seed)

	report := &loadReport{
		Bench:     "zipf-load",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Config:    cfg,
	}
	for _, w := range counts {
		run := sweepLevel(eng, tb.Name, qs, sqls, sketchSQLs, xlo, xhi, ingestRows, cfg, w, dur, warmup)
		report.Runs = append(report.Runs, run)
		fmt.Fprintf(os.Stderr, "workers=%-3d %10.0f q/s  p50=%.0fus p95=%.0fus p99=%.0fus  (%d queries, %d ingests, %d errors)\n",
			w, run.QueriesPerS, run.Latency.P50Us, run.Latency.P95Us, run.Latency.P99Us,
			run.Queries, run.Ingests, run.Errors)
	}
	return report, nil
}

// withinSuffix renders the WITHIN clause the -tolerance lever appends to
// every generated query ("" when the lever is off).
func withinSuffix(cfg loadConfig) string {
	if cfg.TolerancePct <= 0 {
		return ""
	}
	return fmt.Sprintf(" WITHIN %g%%", cfg.TolerancePct)
}

// sampleRows extracts n real rows from tb as AppendRow-shaped value slices,
// so ingest batches match the live schema exactly.
func sampleRows(tb *table.Table, n int, seed int64) [][]interface{} {
	rng := rand.New(rand.NewSource(seed + 97))
	rows := make([][]interface{}, n)
	for i := range rows {
		r := rng.Intn(tb.NumRows())
		row := make([]interface{}, len(tb.Columns))
		for j, c := range tb.Columns {
			switch c.Type {
			case table.Float64:
				row[j] = c.Float(r)
			case table.Int64:
				row[j] = c.Ints[r]
			default:
				row[j] = c.Str(r)
			}
		}
		rows[i] = row
	}
	return rows
}

// columnDomain returns the [min, max] of a float column.
func columnDomain(tb *table.Table, col string) (lo, hi float64, err error) {
	xs, err := tb.Floats(col)
	if err != nil {
		return 0, 0, err
	}
	lo, hi = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, nil
}

// sweepLevel runs one worker-count level: warmup, then a measured window in
// which every worker issues zipf-picked queries (and the configured fraction
// of ingest batches) in a closed loop. Under UniqueSpans the zipf pick only
// selects the aggregate/width template; the span itself is re-jittered per
// issued query, so every statement is a cold shape.
func sweepLevel(eng *dbest.Engine, tbl string, qs []workload.Query, sqls, sketchSQLs []string,
	xlo, xhi float64, ingestRows [][]interface{},
	cfg loadConfig, workers int, dur, warmup time.Duration) loadRun {
	type workerOut struct {
		lats             []time.Duration
		queries, ingests int
		errors           int
	}
	runWindow := func(window time.Duration, measure bool) []workerOut {
		outs := make([]workerOut, workers)
		deadline := time.Now().Add(window)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				o := &outs[w]
				seed := cfg.Seed + int64(w)*7919 + boolInt64(measure)
				if cfg.UniqueSpans {
					// Levels must not replay each other's span sequences:
					// a repeated span would hit the plan and result caches
					// and stop being a cold evaluation.
					seed += int64(workers) * 104729
				}
				rng := rand.New(rand.NewSource(seed))
				zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(sqls)-1))
				if measure {
					o.lats = make([]time.Duration, 0, 1<<16)
				}
				for time.Now().Before(deadline) {
					if cfg.IngestRatio > 0 && rng.Float64() < cfg.IngestRatio {
						if _, err := eng.Append(tbl, ingestRows); err != nil {
							o.errors++
						} else {
							o.ingests++
						}
						continue
					}
					if len(sketchSQLs) > 0 && rng.Float64() < cfg.DistinctRatio {
						t0 := time.Now()
						if _, err := eng.Query(sketchSQLs[rng.Intn(len(sketchSQLs))]); err != nil {
							o.errors++
							continue
						}
						if measure {
							o.lats = append(o.lats, time.Since(t0))
						}
						o.queries++
						continue
					}
					i := zipf.Uint64()
					sql := sqls[i]
					if cfg.UniqueSpans {
						q := qs[i]
						width := q.Ub - q.Lb
						q.Lb = xlo + rng.Float64()*(xhi-xlo-width)
						q.Ub = q.Lb + width
						sql = q.SQL(tbl) + withinSuffix(cfg)
					}
					t0 := time.Now()
					_, err := eng.Query(sql)
					if err != nil {
						o.errors++
						continue
					}
					if measure {
						o.lats = append(o.lats, time.Since(t0))
					}
					o.queries++
				}
			}(w)
		}
		wg.Wait()
		return outs
	}

	if warmup > 0 {
		runWindow(warmup, false)
	}
	stats0 := eng.PlanCacheStats()
	ek0 := eng.EvalKernelStats()
	sk0 := eng.SketchStats()
	rt0 := eng.RouterStats()
	t0 := time.Now()
	outs := runWindow(dur, true)
	elapsed := time.Since(t0).Seconds()
	stats1 := eng.PlanCacheStats()
	ek1 := eng.EvalKernelStats()
	sk1 := eng.SketchStats()
	rt1 := eng.RouterStats()

	run := loadRun{Workers: workers}
	var all []time.Duration
	for _, o := range outs {
		run.Queries += o.queries
		run.Ingests += o.ingests
		run.Errors += o.errors
		all = append(all, o.lats...)
	}
	run.QueriesPerS = float64(run.Queries) / elapsed
	run.OpsPerS = float64(run.Queries+run.Ingests) / elapsed
	run.Latency = summarizeLatencies(all)
	run.CacheHits = stats1.Hits - stats0.Hits
	run.CacheMisses = stats1.Misses - stats0.Misses
	run.GridHits = ek1.GridHits - ek0.GridHits
	run.GridFallbacks = ek1.GridFallbacks - ek0.GridFallbacks
	run.QuadNonconverged = ek1.QuadNonconverged - ek0.QuadNonconverged
	run.SketchHits = sk1.Hits - sk0.Hits
	run.SketchUpdates = sk1.Updates - sk0.Updates
	run.RouterModelHits = rt1.ModelHits - rt0.ModelHits
	run.RouterFallbacks = rt1.ExactFallbacks - rt0.ExactFallbacks
	return run
}

func boolInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// summarizeLatencies computes percentiles in microseconds.
func summarizeLatencies(lats []time.Duration) latencySummary {
	if len(lats) == 0 {
		return latencySummary{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pick := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Microsecond)
	}
	return latencySummary{
		P50Us: pick(0.50),
		P95Us: pick(0.95),
		P99Us: pick(0.99),
		MaxUs: float64(lats[len(lats)-1]) / float64(time.Microsecond),
	}
}
