// Command dbest-gen generates the synthetic evaluation datasets to CSV:
// the TPC-DS-shaped store_sales/store pair, the CCPP power-plant set, the
// Beijing PM2.5 set, and the Zipf-joined A/B pair of Appendix C.
//
// Usage:
//
//	dbest-gen -dataset storesales -rows 1000000 -out store_sales.csv
//	dbest-gen -dataset store -out store.csv
//	dbest-gen -dataset ccpp -rows 100000 -out ccpp.csv
//	dbest-gen -dataset beijing -out beijing.csv
//	dbest-gen -dataset zipfjoin -rows 500000 -out b.csv -out2 a.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"dbest/internal/datagen"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "storesales | store | ccpp | beijing | zipfjoin")
		rows    = flag.Int("rows", 0, "row count (0 = dataset default)")
		stores  = flag.Int("stores", 57, "distinct stores (storesales/store)")
		seed    = flag.Int64("seed", 1, "RNG seed")
		out     = flag.String("out", "", "output CSV path")
		out2    = flag.String("out2", "", "second output CSV path (zipfjoin writes A here)")
	)
	flag.Parse()
	if *dataset == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "dbest-gen: -dataset and -out are required")
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dbest-gen: %v\n", err)
		os.Exit(1)
	}
	switch *dataset {
	case "storesales":
		tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: *rows, Stores: *stores, Seed: *seed})
		if err := tb.SaveCSV(*out); err != nil {
			fail(err)
		}
	case "store":
		if err := datagen.Store(*stores, *seed).SaveCSV(*out); err != nil {
			fail(err)
		}
	case "ccpp":
		if err := datagen.CCPP(*rows, *seed).SaveCSV(*out); err != nil {
			fail(err)
		}
	case "beijing":
		if err := datagen.Beijing(*rows, *seed).SaveCSV(*out); err != nil {
			fail(err)
		}
	case "zipfjoin":
		if *out2 == "" {
			fmt.Fprintln(os.Stderr, "dbest-gen: zipfjoin needs -out (B) and -out2 (A)")
			os.Exit(2)
		}
		n := *rows
		if n <= 0 {
			n = 100_000
		}
		a, b := datagen.ZipfJoinPair(2000, n, 2, 1000, *seed)
		if err := b.SaveCSV(*out); err != nil {
			fail(err)
		}
		if err := a.SaveCSV(*out2); err != nil {
			fail(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "dbest-gen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
}
