package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dbest/internal/datagen"
)

// buildCLI compiles the dbest binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dbest")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	csv := filepath.Join(dir, "ccpp.csv")
	if err := datagen.CCPP(5000, 1).SaveCSV(csv); err != nil {
		t.Fatal(err)
	}

	// Train + one-shot query.
	out, err := exec.Command(bin,
		"-table", "ccpp="+csv,
		"-train", "ccpp:T:EP",
		"-sample", "2000",
		"-query", "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 20",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("cli: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "AVG(EP)") || !strings.Contains(s, "source=model") {
		t.Fatalf("unexpected output:\n%s", s)
	}

	// Save models, reload without the table, query again.
	models := filepath.Join(dir, "models.gob")
	if out, err := exec.Command(bin,
		"-table", "ccpp="+csv, "-train", "ccpp:T:EP", "-sample", "2000",
		"-save", models,
	).CombinedOutput(); err != nil {
		t.Fatalf("save: %v\n%s", err, out)
	}
	if _, err := os.Stat(models); err != nil {
		t.Fatal(err)
	}
	out2, err := exec.Command(bin,
		"-load", models,
		"-query", "SELECT COUNT(EP) FROM ccpp WHERE T BETWEEN 10 AND 20",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("load+query: %v\n%s", err, out2)
	}
	if !strings.Contains(string(out2), "COUNT(EP)") {
		t.Fatalf("unexpected output:\n%s", out2)
	}
}

func TestCLIBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	if _, err := exec.Command(bin, "-table", "nope").CombinedOutput(); err == nil {
		t.Fatal("want failure for malformed -table")
	}
	if _, err := exec.Command(bin, "-table", "x=/does/not/exist.csv").CombinedOutput(); err == nil {
		t.Fatal("want failure for missing csv")
	}
}

func TestCutExplain(t *testing.T) {
	cases := []struct {
		in   string
		rest string
		ok   bool
	}{
		{"EXPLAIN SELECT AVG(x) FROM t", "SELECT AVG(x) FROM t", true},
		{"  explain   SELECT 1", "SELECT 1", true},
		{"SELECT AVG(x) FROM t", "SELECT AVG(x) FROM t", false},
		{"EXPLAINSELECT", "EXPLAINSELECT", false},
		{"EXPLAIN", "EXPLAIN", false},
	}
	for _, tc := range cases {
		rest, ok := cutExplain(tc.in)
		if rest != tc.rest || ok != tc.ok {
			t.Errorf("cutExplain(%q) = %q, %v; want %q, %v", tc.in, rest, ok, tc.rest, tc.ok)
		}
	}
}

func TestCLIExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	csv := filepath.Join(dir, "ccpp.csv")
	if err := datagen.CCPP(5000, 1).SaveCSV(csv); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin,
		"-table", "ccpp="+csv,
		"-train", "ccpp:T:EP",
		"-sample", "2000",
		"-query", "EXPLAIN SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 20",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("cli: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"path: model", "Project [model]", "ModelEval AVG(EP)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("explain output missing %q:\n%s", want, s)
		}
	}
}
