package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dbest"
	"dbest/internal/datagen"
)

// buildCLI compiles the dbest binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dbest")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	csv := filepath.Join(dir, "ccpp.csv")
	if err := datagen.CCPP(5000, 1).SaveCSV(csv); err != nil {
		t.Fatal(err)
	}

	// Train + one-shot query.
	out, err := exec.Command(bin,
		"-table", "ccpp="+csv,
		"-train", "ccpp:T:EP",
		"-sample", "2000",
		"-query", "SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 20",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("cli: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "AVG(EP)") || !strings.Contains(s, "source=model") {
		t.Fatalf("unexpected output:\n%s", s)
	}

	// Save models, reload without the table, query again.
	models := filepath.Join(dir, "models.gob")
	if out, err := exec.Command(bin,
		"-table", "ccpp="+csv, "-train", "ccpp:T:EP", "-sample", "2000",
		"-save", models,
	).CombinedOutput(); err != nil {
		t.Fatalf("save: %v\n%s", err, out)
	}
	if _, err := os.Stat(models); err != nil {
		t.Fatal(err)
	}
	out2, err := exec.Command(bin,
		"-load", models,
		"-query", "SELECT COUNT(EP) FROM ccpp WHERE T BETWEEN 10 AND 20",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("load+query: %v\n%s", err, out2)
	}
	if !strings.Contains(string(out2), "COUNT(EP)") {
		t.Fatalf("unexpected output:\n%s", out2)
	}
}

func TestCLIBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	if _, err := exec.Command(bin, "-table", "nope").CombinedOutput(); err == nil {
		t.Fatal("want failure for malformed -table")
	}
	if _, err := exec.Command(bin, "-table", "x=/does/not/exist.csv").CombinedOutput(); err == nil {
		t.Fatal("want failure for missing csv")
	}
}

func TestCutExplain(t *testing.T) {
	cases := []struct {
		in   string
		rest string
		ok   bool
	}{
		{"EXPLAIN SELECT AVG(x) FROM t", "SELECT AVG(x) FROM t", true},
		{"  explain   SELECT 1", "SELECT 1", true},
		{"SELECT AVG(x) FROM t", "SELECT AVG(x) FROM t", false},
		{"EXPLAINSELECT", "EXPLAINSELECT", false},
		{"EXPLAIN", "EXPLAIN", false},
	}
	for _, tc := range cases {
		rest, ok := cutExplain(tc.in)
		if rest != tc.rest || ok != tc.ok {
			t.Errorf("cutExplain(%q) = %q, %v; want %q, %v", tc.in, rest, ok, tc.rest, tc.ok)
		}
	}
}

func TestCLIExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	csv := filepath.Join(dir, "ccpp.csv")
	if err := datagen.CCPP(5000, 1).SaveCSV(csv); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin,
		"-table", "ccpp="+csv,
		"-train", "ccpp:T:EP",
		"-sample", "2000",
		"-query", "EXPLAIN SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 20",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("cli: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"path: model", "Project [model]", "ModelEval AVG(EP)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("explain output missing %q:\n%s", want, s)
		}
	}
}

func TestParseRow(t *testing.T) {
	tb := datagen.CCPP(10, 1) // all-float table
	row, err := parseRow(tb, "1.5, 2, 3.25, 4, 5.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != len(tb.Columns) {
		t.Fatalf("row len = %d, want %d", len(row), len(tb.Columns))
	}
	if row[0] != 1.5 || row[1] != 2.0 {
		t.Fatalf("row = %v", row)
	}
	if _, err := parseRow(tb, "1.5, 2"); err == nil {
		t.Fatal("want arity error")
	}
	if _, err := parseRow(tb, "1.5, x, 3, 4, 5"); err == nil {
		t.Fatal("want parse error for non-numeric value")
	}
}

// The stdin loop accepts APPEND / INGEST / STALENESS statements alongside
// SQL; appended rows show up in exact-path answers immediately.
func TestCLIIngestStatements(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	csv := filepath.Join(dir, "ccpp.csv")
	base := datagen.CCPP(3000, 1)
	if err := base.SaveCSV(csv); err != nil {
		t.Fatal(err)
	}
	batch := filepath.Join(dir, "batch.csv")
	if err := datagen.CCPP(500, 2).SaveCSV(batch); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-table", "ccpp="+csv, "-train", "ccpp:T:EP", "-sample", "1000")
	cmd.Stdin = strings.NewReader(strings.Join([]string{
		"APPEND ccpp 20.0, 40.0, 1010.0, 70.0, 450.0",
		"INGEST ccpp " + batch,
		"STALENESS",
		"SELECT COUNT(*) FROM ccpp WHERE AP BETWEEN 0 AND 100000", // exact path: AP untrained as x
	}, "\n"))
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cli: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"appended 1 row to ccpp (3001 rows)",
		"ingested 500 rows into ccpp (3501 rows)",
		"ccpp|T|EP|: score=",
		"ingested=501/3000",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "3501") {
		t.Fatalf("exact COUNT should see the ingested rows:\n%s", s)
	}
}

// Quoted string values must survive APPEND parsing intact: CSV-style
// double quotes protect commas, and internal whitespace is preserved.
func TestParseRowQuotedStrings(t *testing.T) {
	tb := dbest.NewTable("cities")
	tb.AddStringColumn("name", []string{"seed"})
	tb.AddFloatColumn("pop", []float64{1})

	row, err := parseRow(tb, `"New  York, NY", 8.5`)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != "New  York, NY" {
		t.Fatalf("quoted string mangled: %q", row[0])
	}
	if row[1] != 8.5 {
		t.Fatalf("row = %v", row)
	}
	// Single-quote convenience for simple values.
	row, err = parseRow(tb, `'Paris', 2.1`)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != "Paris" {
		t.Fatalf("single-quoted string = %q", row[0])
	}
}

func TestCutToken(t *testing.T) {
	for _, tc := range []struct{ in, tok, rest string }{
		{"APPEND t 1,2", "APPEND", "t 1,2"},
		{"  APPEND   t   'a  b',2  ", "APPEND", "t   'a  b',2"},
		{"STALENESS", "STALENESS", ""},
		{"", "", ""},
	} {
		tok, rest := cutToken(tc.in)
		if tok != tc.tok || rest != tc.rest {
			t.Errorf("cutToken(%q) = %q, %q; want %q, %q", tc.in, tok, rest, tc.tok, tc.rest)
		}
	}
}

// INGEST must parse the batch against the registered schema: a FLOAT64
// column whose batch happens to start with an integral-looking value must
// not be re-inferred as INT64 and rejected.
func TestCLIIngestSchemaNotReinferred(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "base.csv")
	if err := os.WriteFile(base, []byte("x,y\n1.5,2.5\n3.5,4.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	batch := filepath.Join(dir, "batch.csv")
	// First values are integral: naive type inference would read INT64.
	if err := os.WriteFile(batch, []byte("x,y\n20,40\n21.5,41.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-table", "t="+base)
	cmd.Stdin = strings.NewReader("INGEST t " + batch + "\nSELECT COUNT(*) FROM t WHERE x BETWEEN 0 AND 100\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cli: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "ingested 2 rows into t (4 rows)") {
		t.Fatalf("integral-looking batch rejected:\n%s", s)
	}
	if !strings.Contains(s, "COUNT(*) = 4") {
		t.Fatalf("ingested rows not queryable:\n%s", s)
	}
}

// TestCLITrainSharded drives the stdin TRAIN ... SHARDS statement: train a
// sharded ensemble interactively, query through it, and inspect the
// per-shard staleness ledger.
func TestCLITrainSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	csv := filepath.Join(dir, "ccpp.csv")
	if err := datagen.CCPP(8000, 1).SaveCSV(csv); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-table", "ccpp="+csv, "-sample", "1000")
	cmd.Stdin = strings.NewReader(strings.Join([]string{
		"TRAIN ccpp:T:EP SHARDS 4",
		"EXPLAIN SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 12",
		"SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 12",
		"STALENESS",
		"TRAIN nonsense",
		"TRAIN ccpp:T:EP SHARDS zero",
	}, "\n"))
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cli: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"across 4 shards",
		"ShardMerge AVG(EP)",
		"source=model",
		"shard=0/4",
		"shard=3/4",
		"usage: TRAIN",
		"SHARDS wants a positive integer",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// The declarative model-definition statements work end to end through the
// stdin loop: CREATE MODEL trains a queryable sharded ensemble, SHOW
// MODELS lists it (base key only, no raw shard-member keys), DROP MODEL
// removes it.
func TestCLIModelStatements(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	csv := filepath.Join(dir, "ccpp.csv")
	if err := datagen.CCPP(4000, 1).SaveCSV(csv); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-table", "ccpp="+csv)
	cmd.Stdin = strings.NewReader(strings.Join([]string{
		"CREATE MODEL power ON ccpp(T; EP) SHARDS 4 SAMPLE 1000 SEED 1",
		"SHOW MODELS",
		"SELECT AVG(EP) FROM ccpp WHERE T BETWEEN 10 AND 20",
		"DROP MODEL power",
		"SHOW MODELS",
		"CREATE MODEL broken ON ccpp(T)", // parse error: missing "; y"
	}, "\n"))
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cli: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"created model power (ccpp|T|EP|): 4 model(s) across 4 shards",
		"name=power shards=4 models=4",
		"staleness=0.000",
		"source=model",
		"dropped 4 model set(s)",
		"no models",
		"between predicate and aggregate columns",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "@s0/4 ") {
		t.Fatalf("SHOW MODELS leaked raw shard-member keys:\n%s", s)
	}
}
