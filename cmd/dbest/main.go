// Command dbest is the interactive/one-shot client of the DBEst engine:
// it loads CSV tables, trains models for column sets of interest, persists
// and reloads model catalogs, and answers SQL queries — from the models
// when possible, from the exact engine otherwise.
//
// Usage:
//
//	dbest -table sales=sales.csv \
//	      -train 'sales:date:price' \
//	      -query 'SELECT AVG(price) FROM sales WHERE date BETWEEN 100 AND 200'
//
//	dbest -table sales=sales.csv -train 'sales:date:price:store' -save models.gob
//	dbest -load models.gob -query '...'
//
// With no -query, dbest reads statements from stdin, one per line. Besides
// SQL queries and EXPLAIN <sql>, the stdin loop accepts the declarative
// model-definition statements
//
//	CREATE MODEL <name> ON <tbl>(x[,x2]; y) [JOIN <tbl2> ON lk = rk
//	    [FRACTION n/d]] [GROUP BY c] [NOMINAL BY c] [SHARDS k]
//	    [SAMPLE n] [SEED s] [GRID g]  train models from a declarative spec
//	CREATE SKETCH <name> ON <tbl>(col) [TYPE HLL|TOPK] [PRECISION p] [K k]
//	                              build a mergeable sketch for
//	                              COUNT(DISTINCT col) / TOP k(col)
//	DROP MODEL <name>             drop a model or sketch by name or key
//	SHOW MODELS                   list models with spec, size and staleness
//
// and ingestion / legacy training statements:
//
//	APPEND <table> v1,v2,...     append one row (values in column order)
//	INGEST <table> <path.csv>    append a CSV micro-batch (schema must match)
//	STALENESS                    print the per-model staleness ledger
//	TRAIN <table>:<xcols>:<ycol>[:<groupby>] [SHARDS <k>]
//	                             legacy colon-separated form of CREATE MODEL
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dbest"
	"dbest/internal/table"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var tables, trains multiFlag
	flag.Var(&tables, "table", "name=path.csv (repeatable)")
	flag.Var(&trains, "train", "table:xcol[,xcol2]:ycol[:groupby] (repeatable)")
	var (
		sampleSize = flag.Int("sample", 10000, "training sample size")
		seed       = flag.Int64("seed", 1, "RNG seed")
		save       = flag.String("save", "", "save trained models to this file")
		load       = flag.String("load", "", "load models from this file")
		query      = flag.String("query", "", "one-shot SQL query (otherwise read stdin)")
		workers    = flag.Int("workers", 0, "query-time workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	eng := dbest.New(&dbest.Options{Workers: *workers})
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dbest: %v\n", err)
		os.Exit(1)
	}

	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fail(fmt.Errorf("bad -table %q, want name=path.csv", spec))
		}
		tb, err := dbest.LoadCSV(name, path)
		if err != nil {
			fail(err)
		}
		tb.Name = name
		if err := eng.RegisterTable(tb); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s: %d rows, %d columns\n", name, tb.NumRows(), len(tb.Columns))
	}
	if *load != "" {
		if err := eng.LoadModels(*load); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "loaded models: %v\n", eng.ModelKeys())
	}
	for _, spec := range trains {
		parts := strings.Split(spec, ":")
		if len(parts) < 3 || len(parts) > 4 {
			fail(fmt.Errorf("bad -train %q, want table:xcols:ycol[:groupby]", spec))
		}
		opts := &dbest.TrainOptions{SampleSize: *sampleSize, Seed: *seed}
		if len(parts) == 4 {
			opts.GroupBy = parts[3]
		}
		info, err := eng.Train(parts[0], strings.Split(parts[1], ","), parts[2], opts)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "trained %s: %d model(s), %d bytes, sample %v + train %v\n",
			info.Key, info.NumModels, info.ModelBytes,
			info.SampleTime.Round(1e6), info.TrainTime.Round(1e6))
	}
	if *save != "" {
		if err := eng.SaveModels(*save); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "saved models to %s\n", *save)
	}

	baseOpts := func() *dbest.TrainOptions {
		return &dbest.TrainOptions{SampleSize: *sampleSize, Seed: *seed}
	}
	runOne := func(sql string) {
		// Ingestion and training statements: APPEND / INGEST / STALENESS /
		// TRAIN.
		if handled := runIngestStatement(eng, sql, baseOpts()); handled {
			return
		}
		// EXPLAIN <query> prints the physical operator tree instead of
		// running the query.
		if rest, ok := cutExplain(sql); ok {
			plan, err := eng.Explain(rest)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				return
			}
			fmt.Printf("path: %s\n", plan.Path)
			if plan.Reason != "" {
				fmt.Printf("reason: %s\n", plan.Reason)
			}
			for _, k := range plan.ModelKeys {
				fmt.Printf("model: %s\n", k)
			}
			fmt.Print(plan.Tree)
			return
		}
		res, err := eng.Query(sql)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		for _, agg := range res.Aggregates {
			if len(agg.TopK) > 0 {
				fmt.Printf("%s:\n", agg.Name)
				for _, e := range agg.TopK {
					fmt.Printf("  %-16s %d\n", e.Value, e.Count)
				}
				continue
			}
			if len(agg.Groups) == 0 {
				fmt.Printf("%s = %.6g%s\n", agg.Name, agg.Value, boundsSuffix(agg.PredRelErr, agg.CI))
				continue
			}
			fmt.Printf("%s by group:\n", agg.Name)
			for _, g := range agg.Groups {
				fmt.Printf("  %8d  %.6g%s\n", g.Group, g.Value, boundsSuffix(g.PredRelErr, g.CI))
			}
		}
		fmt.Printf("-- source=%s elapsed=%v\n", res.Source, res.Elapsed.Round(1000))
	}

	if *query != "" {
		runOne(*query)
		return
	}
	if len(trains) == 0 && *load == "" && len(tables) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		runOne(line)
	}
}

// boundsSuffix renders a model answer's error bounds ("  ±1.2% [lo, hi]"),
// or "" when the answer carries none (exact/sketch paths, old catalogs).
func boundsSuffix(relErr float64, ci [2]float64) string {
	if relErr <= 0 {
		return ""
	}
	return fmt.Sprintf("  ±%.1f%% [%.6g, %.6g]", relErr*100, ci[0], ci[1])
}

// runIngestStatement handles the non-SQL statements of the stdin loop
// (ingestion and training), reporting whether line was one of them. opts
// carries the CLI's -sample/-seed defaults for TRAIN.
func runIngestStatement(eng *dbest.Engine, line string, opts *dbest.TrainOptions) bool {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false
	}
	switch strings.ToUpper(fields[0]) {
	case "CREATE", "DROP", "SHOW":
		// Declarative model-definition statements run through the engine's
		// parse → plan → execute path (Engine.Exec), like queries do. The
		// -sample/-seed flags do not apply here: the statement's own SAMPLE
		// and SEED clauses (or the engine defaults) govern.
		runModelStatement(eng, line)
		return true
	case "TRAIN":
		runTrainStatement(eng, fields[1:], opts)
		return true
	case "STALENESS":
		for _, st := range eng.ModelStaleness() {
			fmt.Printf("%s: score=%.3f ingested=%d/%d replaced=%d/%d refreshes=%d",
				st.Key, st.Score, st.IngestedRows, st.BaseRows,
				st.ReservoirReplaced, st.ReservoirSize, st.Refreshes)
			if st.Shards > 0 {
				fmt.Printf(" shard=%d/%d", st.Shard, st.Shards)
			}
			if st.LastError != "" {
				fmt.Printf(" last_error=%q", st.LastError)
			}
			fmt.Println()
		}
		return true
	case "APPEND":
		// Split off the keyword and table name but keep the value list
		// verbatim: whitespace inside quoted strings must survive.
		_, rest := cutToken(line)
		name, vals := cutToken(rest)
		if name == "" || vals == "" {
			fmt.Fprintln(os.Stderr, "error: usage: APPEND <table> v1,v2,...")
			return true
		}
		tb := eng.Table(name)
		if tb == nil {
			fmt.Fprintf(os.Stderr, "error: table %q is not registered\n", name)
			return true
		}
		row, err := parseRow(tb, vals)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return true
		}
		res, err := eng.Append(name, [][]interface{}{row})
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return true
		}
		if res.Rejected > 0 {
			fmt.Fprintf(os.Stderr, "error: %s\n", res.Errors[0].Err)
			return true
		}
		fmt.Printf("appended 1 row to %s (%d rows)\n", name, res.NumRows)
		return true
	case "INGEST":
		if len(fields) != 3 {
			fmt.Fprintln(os.Stderr, "error: usage: INGEST <table> <path.csv>")
			return true
		}
		name, path := fields[1], fields[2]
		tb := eng.Table(name)
		if tb == nil {
			fmt.Fprintf(os.Stderr, "error: table %q is not registered\n", name)
			return true
		}
		// Parse the CSV against the registered table's schema — re-inferring
		// types from the batch's first row would reject valid batches (e.g.
		// a FLOAT64 column whose first value happens to look integral).
		rows, err := readCSVRows(tb, path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return true
		}
		res, err := eng.Append(name, rows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return true
		}
		if res.Rejected > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d row(s) rejected (first: %s)\n",
				res.Rejected, res.Errors[0].Err)
		}
		fmt.Printf("ingested %d rows into %s (%d rows)\n", res.Appended, name, res.NumRows)
		return true
	}
	return false
}

// runModelStatement executes one CREATE MODEL / DROP MODEL / SHOW MODELS
// statement through Engine.Exec and prints its result.
func runModelStatement(eng *dbest.Engine, line string) {
	res, err := eng.Exec(line)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	switch res.Kind {
	case "create-model":
		info := res.Train
		suffix := ""
		if info.Shards > 1 {
			suffix = fmt.Sprintf(" across %d shards", info.Shards)
		}
		fmt.Printf("created model %s (%s): %d model(s)%s, %d bytes, sample %v + train %v\n",
			res.Spec.Name, info.Key, info.NumModels, suffix, info.ModelBytes,
			info.SampleTime.Round(1e6), info.TrainTime.Round(1e6))
	case "create-sketch":
		fmt.Printf("created sketch %s (%s): %d bytes over %d rows\n",
			res.Spec.Name, res.Train.Key, res.Train.ModelBytes, res.Train.SampleRows)
	case "drop-model":
		fmt.Printf("dropped %d model set(s): %s\n", len(res.Dropped), strings.Join(res.Dropped, ", "))
	case "show-models":
		if len(res.Models) == 0 {
			fmt.Println("no models")
			return
		}
		for _, m := range res.Models {
			fmt.Printf("%s", m.Key)
			if m.Name != "" {
				fmt.Printf(" name=%s", m.Name)
			}
			if m.Shards > 1 {
				fmt.Printf(" shards=%d", m.Shards)
			}
			if m.Type != "" {
				fmt.Printf(" type=%s absorbed=%d bytes=%d", m.Type, m.AbsorbedRows, m.Bytes)
				if m.Spec != nil {
					fmt.Printf(" def=%q", m.Spec.Summary())
				}
				fmt.Println()
				continue
			}
			fmt.Printf(" models=%d bytes=%d", m.NumModels, m.Bytes)
			if m.Tracked {
				fmt.Printf(" staleness=%.3f", m.Staleness)
			} else {
				fmt.Printf(" untracked")
			}
			if m.Spec != nil {
				fmt.Printf(" def=%q", m.Spec.Summary())
			}
			fmt.Println()
		}
	}
}

// runTrainStatement handles TRAIN <table>:<xcols>:<ycol>[:<groupby>]
// [SHARDS <k>]: plain (or grouped) training, or a k-shard range ensemble
// over a single x column.
func runTrainStatement(eng *dbest.Engine, args []string, opts *dbest.TrainOptions) {
	usage := "usage: TRAIN <table>:<xcols>:<ycol>[:<groupby>] [SHARDS <k>]"
	shards := 0
	switch len(args) {
	case 1:
	case 3:
		if !strings.EqualFold(args[1], "SHARDS") {
			fmt.Fprintf(os.Stderr, "error: %s\n", usage)
			return
		}
		k, err := strconv.Atoi(args[2])
		if err != nil || k < 1 {
			fmt.Fprintf(os.Stderr, "error: SHARDS wants a positive integer, got %q\n", args[2])
			return
		}
		shards = k
	default:
		fmt.Fprintf(os.Stderr, "error: %s\n", usage)
		return
	}
	parts := strings.Split(args[0], ":")
	if len(parts) < 3 || len(parts) > 4 {
		fmt.Fprintf(os.Stderr, "error: %s\n", usage)
		return
	}
	if len(parts) == 4 {
		opts.GroupBy = parts[3]
	}
	xcols := strings.Split(parts[1], ",")
	var (
		info *dbest.TrainInfo
		err  error
	)
	if shards > 0 {
		if len(xcols) != 1 || opts.GroupBy != "" {
			fmt.Fprintln(os.Stderr, "error: SHARDS requires a single x column and no group-by")
			return
		}
		info, err = eng.TrainSharded(parts[0], xcols[0], parts[2], shards, opts)
	} else {
		info, err = eng.Train(parts[0], xcols, parts[2], opts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	suffix := ""
	if info.Shards > 1 {
		suffix = fmt.Sprintf(" across %d shards", info.Shards)
	}
	fmt.Printf("trained %s: %d model(s)%s, %d bytes, sample %v + train %v\n",
		info.Key, info.NumModels, suffix, info.ModelBytes,
		info.SampleTime.Round(1e6), info.TrainTime.Round(1e6))
}

// readCSVRows reads a header-carrying CSV whose columns must match tb's
// schema by name and order, converting each record to an Append-shaped row
// typed per the table's columns.
func readCSVRows(tb *dbest.Table, path string) ([][]interface{}, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%s: read header: %v", path, err)
	}
	names := tb.ColumnNames()
	if len(header) != len(names) {
		return nil, fmt.Errorf("%s: %d columns, table %s has %d", path, len(header), tb.Name, len(names))
	}
	for j, h := range header {
		if h != names[j] {
			return nil, fmt.Errorf("%s: column %d is %q, table %s has %q", path, j, h, tb.Name, names[j])
		}
	}
	var rows [][]interface{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		row, err := convertRecord(tb, rec)
		if err != nil {
			return nil, fmt.Errorf("%s: row %d: %v", path, len(rows)+1, err)
		}
		rows = append(rows, row)
	}
}

// cutToken splits off the first whitespace-delimited token of s, returning
// it and the trimmed remainder.
func cutToken(s string) (tok, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}

// parseRow parses one comma-separated row against tb's column types, with
// CSV quoting rules: a value containing commas or meaningful whitespace
// can be double-quoted ("New York, NY"); a single-quoted string value has
// its quotes stripped as a convenience.
func parseRow(tb *dbest.Table, s string) ([]interface{}, error) {
	cr := csv.NewReader(strings.NewReader(s))
	cr.TrimLeadingSpace = true
	parts, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("parse row: %v", err)
	}
	return convertRecord(tb, parts)
}

// convertRecord types one CSV-split record against tb's columns.
func convertRecord(tb *dbest.Table, parts []string) ([]interface{}, error) {
	if len(parts) != len(tb.Columns) {
		return nil, fmt.Errorf("row has %d values, table %s has %d columns", len(parts), tb.Name, len(tb.Columns))
	}
	row := make([]interface{}, len(parts))
	for j, p := range parts {
		c := tb.Columns[j]
		switch c.Type {
		case table.Int64:
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("column %s: %v", c.Name, err)
			}
			row[j] = v
		case table.Float64:
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("column %s: %v", c.Name, err)
			}
			row[j] = v
		default:
			p = strings.TrimSpace(p)
			if len(p) >= 2 && p[0] == '\'' && p[len(p)-1] == '\'' {
				p = p[1 : len(p)-1]
			}
			row[j] = p
		}
	}
	return row, nil
}

// cutExplain strips a leading EXPLAIN keyword (any case) from sql,
// reporting whether it was present.
func cutExplain(sql string) (string, bool) {
	trimmed := strings.TrimSpace(sql)
	if len(trimmed) < 8 || !strings.EqualFold(trimmed[:7], "EXPLAIN") {
		return sql, false
	}
	rest := trimmed[7:]
	if rest[0] != ' ' && rest[0] != '\t' {
		return sql, false
	}
	return strings.TrimSpace(rest), true
}
