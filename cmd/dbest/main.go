// Command dbest is the interactive/one-shot client of the DBEst engine:
// it loads CSV tables, trains models for column sets of interest, persists
// and reloads model catalogs, and answers SQL queries — from the models
// when possible, from the exact engine otherwise.
//
// Usage:
//
//	dbest -table sales=sales.csv \
//	      -train 'sales:date:price' \
//	      -query 'SELECT AVG(price) FROM sales WHERE date BETWEEN 100 AND 200'
//
//	dbest -table sales=sales.csv -train 'sales:date:price:store' -save models.gob
//	dbest -load models.gob -query '...'
//
// With no -query, dbest reads queries from stdin, one per line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dbest"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var tables, trains multiFlag
	flag.Var(&tables, "table", "name=path.csv (repeatable)")
	flag.Var(&trains, "train", "table:xcol[,xcol2]:ycol[:groupby] (repeatable)")
	var (
		sampleSize = flag.Int("sample", 10000, "training sample size")
		seed       = flag.Int64("seed", 1, "RNG seed")
		save       = flag.String("save", "", "save trained models to this file")
		load       = flag.String("load", "", "load models from this file")
		query      = flag.String("query", "", "one-shot SQL query (otherwise read stdin)")
		workers    = flag.Int("workers", 0, "query-time workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	eng := dbest.New(&dbest.Options{Workers: *workers})
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "dbest: %v\n", err)
		os.Exit(1)
	}

	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fail(fmt.Errorf("bad -table %q, want name=path.csv", spec))
		}
		tb, err := dbest.LoadCSV(name, path)
		if err != nil {
			fail(err)
		}
		tb.Name = name
		if err := eng.RegisterTable(tb); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s: %d rows, %d columns\n", name, tb.NumRows(), len(tb.Columns))
	}
	if *load != "" {
		if err := eng.LoadModels(*load); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "loaded models: %v\n", eng.ModelKeys())
	}
	for _, spec := range trains {
		parts := strings.Split(spec, ":")
		if len(parts) < 3 || len(parts) > 4 {
			fail(fmt.Errorf("bad -train %q, want table:xcols:ycol[:groupby]", spec))
		}
		opts := &dbest.TrainOptions{SampleSize: *sampleSize, Seed: *seed}
		if len(parts) == 4 {
			opts.GroupBy = parts[3]
		}
		info, err := eng.Train(parts[0], strings.Split(parts[1], ","), parts[2], opts)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "trained %s: %d model(s), %d bytes, sample %v + train %v\n",
			info.Key, info.NumModels, info.ModelBytes,
			info.SampleTime.Round(1e6), info.TrainTime.Round(1e6))
	}
	if *save != "" {
		if err := eng.SaveModels(*save); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "saved models to %s\n", *save)
	}

	runOne := func(sql string) {
		// EXPLAIN <query> prints the physical operator tree instead of
		// running the query.
		if rest, ok := cutExplain(sql); ok {
			plan, err := eng.Explain(rest)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				return
			}
			fmt.Printf("path: %s\n", plan.Path)
			if plan.Reason != "" {
				fmt.Printf("reason: %s\n", plan.Reason)
			}
			for _, k := range plan.ModelKeys {
				fmt.Printf("model: %s\n", k)
			}
			fmt.Print(plan.Tree)
			return
		}
		res, err := eng.Query(sql)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		for _, agg := range res.Aggregates {
			if len(agg.Groups) == 0 {
				fmt.Printf("%s = %.6g\n", agg.Name, agg.Value)
				continue
			}
			fmt.Printf("%s by group:\n", agg.Name)
			for _, g := range agg.Groups {
				fmt.Printf("  %8d  %.6g\n", g.Group, g.Value)
			}
		}
		fmt.Printf("-- source=%s elapsed=%v\n", res.Source, res.Elapsed.Round(1000))
	}

	if *query != "" {
		runOne(*query)
		return
	}
	if len(trains) == 0 && *load == "" && len(tables) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		runOne(line)
	}
}

// cutExplain strips a leading EXPLAIN keyword (any case) from sql,
// reporting whether it was present.
func cutExplain(sql string) (string, bool) {
	trimmed := strings.TrimSpace(sql)
	if len(trimmed) < 8 || !strings.EqualFold(trimmed[:7], "EXPLAIN") {
		return sql, false
	}
	rest := trimmed[7:]
	if rest[0] != ' ' && rest[0] != '\t' {
		return sql, false
	}
	return strings.TrimSpace(rest), true
}
