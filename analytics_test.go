package dbest_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dbest"
)

// analyticsEngine trains a model on y = 3x + 20 + noise over x ∈ [0, 50].
func analyticsEngine(t *testing.T) *dbest.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(51))
	n := 60000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 50
		ys[i] = 3*xs[i] + 20 + rng.NormFloat64()
	}
	tb := dbest.NewTable("lin")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train("lin", []string{"x"}, "y",
		&dbest.TrainOptions{SampleSize: 10000, Seed: 51}); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestImpute(t *testing.T) {
	eng := analyticsEngine(t)
	for _, x := range []float64{5, 25, 45} {
		got, err := eng.Impute("lin", "x", "y", x)
		if err != nil {
			t.Fatal(err)
		}
		want := 3*x + 20
		if math.Abs(got-want) > 1.5 {
			t.Errorf("Impute(%v) = %v, want ≈ %v", x, got, want)
		}
	}
	if _, err := eng.Impute("lin", "x", "z", 1); err == nil {
		t.Fatal("want error for unmodeled column pair")
	}
}

func TestCurve(t *testing.T) {
	eng := analyticsEngine(t)
	pts, err := eng.Curve("lin", "x", "y", 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 64 {
		t.Fatalf("points = %d", len(pts))
	}
	// x grid is increasing; fitted y follows the upward trend.
	if pts[0].X >= pts[63].X {
		t.Fatal("grid not increasing")
	}
	if pts[63].YHat <= pts[0].YHat {
		t.Fatal("fitted curve should increase for y = 3x + 20")
	}
	for _, p := range pts {
		if p.Density < 0 {
			t.Fatal("negative density")
		}
	}
	// Default point count.
	pts2, err := eng.Curve("lin", "x", "y", 0)
	if err != nil || len(pts2) != 32 {
		t.Fatalf("default curve: %d, %v", len(pts2), err)
	}
}

func TestDiscoverRelationship(t *testing.T) {
	eng := analyticsEngine(t)
	rel, err := eng.DiscoverRelationship("lin", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Direction != "increasing" {
		t.Fatalf("direction = %q", rel.Direction)
	}
	if rel.Correlation < 0.99 {
		t.Fatalf("correlation = %v, want ≈ 1 for a linear trend", rel.Correlation)
	}
	if rel.YMax-rel.YMin < 100 {
		t.Fatalf("trend spread = %v, want ≈ 150 over x ∈ [0, 50]", rel.YMax-rel.YMin)
	}
}

func TestDiscoverRelationshipDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 30000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 10
		ys[i] = 100 - 7*xs[i] + rng.NormFloat64()*0.5
	}
	tb := dbest.NewTable("dec")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	eng := dbest.New(nil)
	_ = eng.RegisterTable(tb)
	if _, err := eng.Train("dec", []string{"x"}, "y",
		&dbest.TrainOptions{SampleSize: 8000, Seed: 52}); err != nil {
		t.Fatal(err)
	}
	rel, err := eng.DiscoverRelationship("dec", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Direction != "decreasing" || rel.Correlation > -0.99 {
		t.Fatalf("rel = %+v", rel)
	}
}

func TestDescribe(t *testing.T) {
	eng := analyticsEngine(t)
	d, err := eng.Describe("lin", "x", "y", 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	// x uniform on [0,50]: the window holds 40% of 60k rows.
	if re := relErr(d.Count, 24000); re > 0.05 {
		t.Fatalf("Count = %v", d.Count)
	}
	if re := relErr(d.Avg, 3*20+20); re > 0.03 {
		t.Fatalf("Avg = %v", d.Avg)
	}
	if re := relErr(d.Sum, d.Count*d.Avg); re > 1e-6 {
		t.Fatalf("Sum inconsistent: %v vs %v", d.Sum, d.Count*d.Avg)
	}
	if d.StdDev != math.Sqrt(d.Variance) {
		t.Fatal("StdDev != sqrt(Variance)")
	}
	// Conditional x quartiles of a uniform window.
	if math.Abs(d.XMedian-20) > 1 || math.Abs(d.XQ1-15) > 1 || math.Abs(d.XQ3-25) > 1 {
		t.Fatalf("quartiles = %v %v %v", d.XQ1, d.XMedian, d.XQ3)
	}
	if _, err := eng.Describe("lin", "x", "y", 400, 500); err == nil {
		t.Fatal("want error for empty region")
	}
}

func TestSparkline(t *testing.T) {
	s := dbest.Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if strings.Count(s, "") == 0 || len([]rune(s)) != 8 {
		t.Fatalf("sparkline = %q", s)
	}
	if []rune(s)[0] != '▁' || []rune(s)[7] != '█' {
		t.Fatalf("sparkline = %q", s)
	}
	if dbest.Sparkline(nil) != "" {
		t.Fatal("empty input should render empty")
	}
	flat := dbest.Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Fatalf("flat = %q", flat)
	}
}
