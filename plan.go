package dbest

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dbest/internal/catalog"
	"dbest/internal/core"
	"dbest/internal/exact"
	"dbest/internal/exec"
	"dbest/internal/sketch"
	"dbest/internal/sqlparse"
)

// Path values reported by PreparedQuery.Path and Plan.Path.
const (
	PathModel   = exec.PathModel
	PathNominal = exec.PathNominal
	PathSketch  = exec.PathSketch
	PathExact   = exec.PathExact
)

// PreparedQuery is a query planned once and executable many times: the
// parsed SQL compiled into a physical operator tree (package internal/exec)
// that either evaluates trained models or falls through to the exact
// engine. It is immutable after planning and safe for concurrent Run calls.
// A PreparedQuery snapshots the catalog at plan time; models trained
// afterwards are picked up by re-preparing (Engine.Query does this
// automatically via the plan cache's generation check).
type PreparedQuery struct {
	eng   *Engine
	query *sqlparse.Query
	plan  *exec.Plan
	gen   uint64 // catalog generation at plan time

	// Error-budget routing (router.go), set when the query carries a
	// WITHIN <p>% clause and plans onto a model path: the tolerance as a
	// fraction, the eagerly-planned exact fallback, and the calibration
	// key. hasTol stays false for exact/sketch plans — there is nothing to
	// route.
	tolerance float64
	hasTol    bool
	exactPlan *exec.Plan
	routerKey string
}

// Path reports which engine path the query is bound to: "model",
// "nominal-model", "sketch" or "exact".
func (p *PreparedQuery) Path() string { return p.plan.Path }

// Reason explains an exact-path decision; empty on model paths.
func (p *PreparedQuery) Reason() string { return p.plan.Reason }

// ModelKeys lists the catalog keys of the model sets bound to each
// aggregate (empty on the exact path).
func (p *PreparedQuery) ModelKeys() []string { return p.plan.ModelKeys() }

// Render returns the plan's physical operator tree, one operator per line —
// the EXPLAIN rendering.
func (p *PreparedQuery) Render() string { return p.plan.Render() }

// Run executes the prepared query and returns its result. Each Run
// captures the engine's current snapshot, so exact-path plans observe
// tables as of the call (and the whole execution sees one consistent
// view).
func (p *PreparedQuery) Run() (*Result, error) {
	t0 := time.Now()
	res, err := p.runWith(p.eng.snap.Load())
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(t0)
	return res, nil
}

// runWith executes the operator tree once against the given snapshot;
// Elapsed is left for the caller to stamp.
func (p *PreparedQuery) runWith(snap *engineSnap) (*Result, error) {
	if p.hasTol {
		return p.runTolerance(snap)
	}
	if p.plan.Path == PathSketch {
		// Flush pending append credits into the sketches so the estimate
		// reflects every append that completed before this query began.
		p.eng.ledger.Sync()
		p.eng.sketchHits.Add(1)
	}
	er, err := p.plan.Run(&exec.Env{Workers: p.eng.workers, Tables: snap, Shards: &p.eng.shardCtrs})
	if err != nil {
		return nil, err
	}
	return &Result{Aggregates: er.Aggregates, Source: er.Source}, nil
}

// Prepare parses and plans sql, consulting the engine's plan cache: a
// repeated query shape skips both the parser and the catalog lookups. The
// returned PreparedQuery may be shared with concurrent callers.
func (e *Engine) Prepare(sql string) (*PreparedQuery, error) {
	snap := e.snap.Load()
	if !e.plans.enabled() {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, err
		}
		return e.planSnap(q, snap)
	}
	p, _, err := e.prepareSnap(sqlparse.Normalize(sql), sql, snap)
	return p, err
}

// prepareSnap resolves one normalized shape against the plan cache under
// the given snapshot, planning (and caching) on a miss. It returns the
// prepared query plus its cache entry (nil when the plan was not cached,
// e.g. it raced a generation bump).
func (e *Engine) prepareSnap(key, sql string, snap *engineSnap) (*PreparedQuery, *cacheEntry, error) {
	gen := snap.cat.Generation()
	if ent := e.plans.get(key, gen); ent != nil {
		return ent.p, ent, nil
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	p, err := e.planSnap(q, snap)
	if err != nil {
		return nil, nil, err
	}
	return p, e.plans.put(key, p), nil
}

// serveNormalized answers one normalized query shape through the plan and
// result caches: capture a snapshot, resolve the cached plan, and — on the
// model paths, whose answers are deterministic for a fixed catalog
// generation — serve the memoized result without executing anything. The
// hot path takes no mutex: snapshot load, lock-free cache lookup, atomic
// result load. The caller stamps Elapsed.
func (e *Engine) serveNormalized(key, sql string) (*Result, error) {
	snap := e.snap.Load()
	p, ent, err := e.prepareSnap(key, sql, snap)
	if err != nil {
		return nil, err
	}
	if ent != nil {
		if r := ent.res.Load(); r != nil {
			return cloneResult(r), nil
		}
	}
	res, err := p.runWith(snap)
	if err != nil {
		return nil, err
	}
	if ent != nil && p.plan.Path != PathExact && p.plan.Path != PathSketch && !p.hasTol {
		// Memoize model-path results only: exact-path answers depend on the
		// base tables, which grow via Append without a generation bump, and
		// sketch answers absorb appended rows in place the same way.
		// Model answers can change only when the catalog publishes a new
		// generation — which drops this entry. Tolerance-routed answers are
		// excluded too: the routing decision moves with the calibration
		// rings and the live tables, not just the generation.
		ent.res.CompareAndSwap(nil, res)
		return cloneResult(res), nil
	}
	return res, nil
}

// planSnap resolves q against the snapshot's catalog, compiling every
// aggregate into a physical operator bound to a model set — or the whole
// query into an exact-path plan. Binding and generation tagging use the
// same snapshot, so a cached plan can never pin models from one generation
// under another generation's tag.
func (e *Engine) planSnap(q *sqlparse.Query, snap *engineSnap) (*PreparedQuery, error) {
	var (
		pl  *exec.Plan
		err error
	)
	switch {
	case hasSketchAggregates(q):
		pl, err = e.planSketch(q, snap.cat)
	case len(q.Equals) > 0:
		pl, err = e.planNominal(q, snap.cat)
	default:
		pl, err = e.planModel(q, snap.cat)
	}
	if err != nil {
		return nil, err
	}
	pq := &PreparedQuery{eng: e, query: q, plan: pl, gen: snap.cat.Generation()}
	if q.HasTolerance && (pl.Path == PathModel || pl.Path == PathNominal) {
		// Plan the exact fallback eagerly: routing happens per execution,
		// and the fallback must not pay a parse or catalog walk then.
		ep, err := exec.NewExactPlan(q, "WITHIN tolerance exceeded")
		if err != nil {
			return nil, err
		}
		pq.tolerance = q.Tolerance
		pq.hasTol = true
		pq.exactPlan = ep
		pq.routerKey = strings.Join(pl.ModelKeys(), "+")
	}
	return pq, nil
}

// hasSketchAggregates reports whether any select-list aggregate is a
// COUNT(DISTINCT x) or TOP k(x) — the shapes answered by registered
// sketches rather than trained density/regression models.
func hasSketchAggregates(q *sqlparse.Query) bool {
	for _, a := range q.Aggregates {
		if a.Distinct || strings.EqualFold(a.Func, "TOP") {
			return true
		}
	}
	return false
}

// planSketch binds COUNT(DISTINCT x) / TOP k(x) queries to registered
// sketches. Sketches summarize whole base tables, so any shape that narrows
// the rows — range or equality predicates, joins — falls through to the
// exact scan; GROUP BY is rejected outright. A query mixing sketch and
// model aggregates is answered exactly so all its aggregates see the same
// rows.
func (e *Engine) planSketch(q *sqlparse.Query, cat *catalog.Snapshot) (*exec.Plan, error) {
	if q.GroupBy != "" {
		return nil, fmt.Errorf("dbest: COUNT(DISTINCT) and TOP do not support GROUP BY")
	}
	if q.Join != nil {
		return exec.NewExactPlan(q, "sketches summarize base tables, not joins")
	}
	if len(q.Where) > 0 || len(q.Equals) > 0 {
		return exec.NewExactPlan(q, "predicates narrow rows a whole-table sketch cannot filter")
	}
	aggs := make([]exec.AggOperator, 0, len(q.Aggregates))
	for _, agg := range q.Aggregates {
		name := exec.DisplayName(agg)
		switch {
		case strings.EqualFold(agg.Func, "TOP"):
			ms := cat.LookupSketch(q.Table, agg.Column, string(sketch.KindTopK))
			if ms == nil || ms.Sketch == nil {
				return exec.NewExactPlan(q, "no topk sketch for "+name+" on "+q.Table)
			}
			if _, k := ms.Sketch.Params(); agg.K > k {
				return exec.NewExactPlan(q, fmt.Sprintf("sketch for %s tracks only %d candidates", name, k))
			}
			aggs = append(aggs, exec.NewSketchEval(name, ms, false, agg.K))
		case agg.Distinct && strings.EqualFold(agg.Func, "COUNT"):
			ms := cat.LookupSketch(q.Table, agg.Column, string(sketch.KindHLL))
			if ms == nil || ms.Sketch == nil {
				return exec.NewExactPlan(q, "no hll sketch for "+name+" on "+q.Table)
			}
			aggs = append(aggs, exec.NewSketchEval(name, ms, true, 0))
		default:
			return exec.NewExactPlan(q, "mixed sketch and model aggregates are answered exactly")
		}
	}
	return exec.NewPlan(PathSketch, "", exec.NewProject(PathSketch, aggs, nil)), nil
}

// planNominal binds queries with a nominal equality predicate to per-value
// models (§2.3). Supported shape: one equality on the nominal column plus
// at most one range predicate; anything else is answered exactly.
func (e *Engine) planNominal(q *sqlparse.Query, cat *catalog.Snapshot) (*exec.Plan, error) {
	if len(q.Equals) != 1 || len(q.Where) > 1 || q.GroupBy != "" || q.Join != nil {
		return exec.NewExactPlan(q, "nominal predicates support one equality plus at most one range")
	}
	eqp := q.Equals[0]
	lb, ub := math.Inf(-1), math.Inf(1)
	xcol := ""
	if len(q.Where) == 1 {
		xcol = q.Where[0].Column
		lb, ub = q.Where[0].Lb, q.Where[0].Ub
	}
	aggs := make([]exec.AggOperator, 0, len(q.Aggregates))
	for _, agg := range q.Aggregates {
		af, err := exact.ParseAggFunc(agg.Func)
		if err != nil {
			return nil, err
		}
		lookupX := xcol
		if lookupX == "" {
			lookupX = agg.Column
		}
		ms := cat.LookupNominal(q.Table, lookupX, yColFor(agg, lookupX), eqp.Column)
		if ms == nil {
			return exec.NewExactPlan(q, "no nominal model for "+agg.Func+"("+agg.Column+")")
		}
		aggs = append(aggs, exec.NewNominalEval(agg.Func+"("+agg.Column+")", af, ms,
			eqp.Value, lb, ub, agg.Column == ms.XCols[0] || agg.Column == "*", agg.P))
	}
	return exec.NewPlan(PathNominal, "", exec.NewProject(PathNominal, aggs, nil)), nil
}

// planModel binds range-predicate queries to trained model sets, falling to
// the exact path when any aggregate has no matching model. Every lookup
// resolves against the one catalog snapshot, so all aggregates of a query
// bind models of the same generation.
func (e *Engine) planModel(q *sqlparse.Query, cat *catalog.Snapshot) (*exec.Plan, error) {
	tbl := modelTable(q)
	xcols := make([]string, len(q.Where))
	lbs := make([]float64, len(q.Where))
	ubs := make([]float64, len(q.Where))
	for i, pr := range q.Where {
		xcols[i] = pr.Column
		lbs[i] = pr.Lb
		ubs[i] = pr.Ub
	}
	aggs := make([]exec.AggOperator, 0, len(q.Aggregates))
	for _, agg := range q.Aggregates {
		af, err := exact.ParseAggFunc(agg.Func)
		if err != nil {
			return nil, err
		}
		name := agg.Func + "(" + agg.Column + ")"
		var op exec.AggOperator
		switch {
		case len(xcols) == 0:
			// Predicate-free queries (PERCENTILE a la HIVE, or whole-table
			// aggregates): served by any model set over the aggregate column.
			if ms := lookupAny(cat, tbl, agg.Column, q.GroupBy); ms != nil {
				yIsX := len(ms.XCols) == 1 && (agg.Column == ms.XCols[0] || agg.Column == "*")
				op = exec.NewModelEval(name, af, ms,
					[]float64{math.Inf(-1)}, []float64{math.Inf(1)}, yIsX, agg.P)
				break
			}
			if q.GroupBy != "" {
				break
			}
			// Sharded fallback: a full-range merge over the whole ensemble.
			if sets := cat.LookupShardedAny(tbl, agg.Column); sets != nil {
				yIsX := agg.Column == sets[0].XCols[0] || agg.Column == "*"
				op = exec.NewShardMerge(name, af, sets, math.Inf(-1), math.Inf(1), yIsX, agg.P)
			}
		case len(xcols) == 1:
			if ms := cat.Lookup(tbl, xcols, yColFor(agg, xcols[0]), q.GroupBy); ms != nil {
				op = exec.NewModelEval(name, af, ms, lbs[:1], ubs[:1],
					agg.Column == xcols[0] || agg.Column == "*", agg.P)
				break
			}
			if q.GroupBy != "" {
				break
			}
			// Sharded fallback: bind the ensemble; execution prunes it to
			// the shards overlapping the (possibly Span-overridden) range.
			if sets := cat.LookupSharded(tbl, xcols[0], yColFor(agg, xcols[0])); sets != nil {
				op = exec.NewShardMerge(name, af, sets, lbs[0], ubs[0],
					agg.Column == xcols[0] || agg.Column == "*", agg.P)
			}
		default:
			ms := cat.Lookup(tbl, xcols, agg.Column, q.GroupBy)
			lb, ub := lbs, ubs
			if ms == nil {
				// Predicate order need not match training order: try the
				// model set's own column order.
				ms, lb, ub = lookupPermuted(cat, tbl, xcols, lbs, ubs, agg.Column, q.GroupBy)
			}
			if ms == nil {
				break
			}
			op = exec.NewModelEval(name, af, ms, lb, ub, false, agg.P)
		}
		if op == nil {
			return exec.NewExactPlan(q, "no model for "+agg.Func+"("+agg.Column+") on "+tbl)
		}
		aggs = append(aggs, op)
	}
	return exec.NewPlan(PathModel, "", exec.NewProject(PathModel, aggs, nil)), nil
}

// lookupAny finds any univariate model set on tbl whose x or y column
// matches col (used by predicate-free queries). The search is indexed by
// table, so its cost is O(models on tbl), not O(catalog).
func lookupAny(cat *catalog.Snapshot, tbl, col, groupBy string) *core.ModelSet {
	var found *core.ModelSet
	cat.ScanTable(tbl, func(ms *core.ModelSet) bool {
		// Shard members only ever serve through the ensemble merge, and
		// sketch sets carry no density model to aggregate over.
		if ms.Sketch != nil || ms.Shards > 1 || ms.GroupBy != groupBy || len(ms.XCols) != 1 {
			return true
		}
		if ms.XCols[0] == col || ms.YCol == col || col == "*" {
			found = ms
			return false
		}
		return true
	})
	return found
}

// lookupPermuted retries a multivariate lookup with predicate columns
// reordered to the training order, scanning only tbl's model sets.
func lookupPermuted(cat *catalog.Snapshot, tbl string, xcols []string, lbs, ubs []float64, ycol, groupBy string) (*core.ModelSet, []float64, []float64) {
	var (
		found    *core.ModelSet
		flb, fub []float64
	)
	cat.ScanTable(tbl, func(ms *core.ModelSet) bool {
		if ms.GroupBy != groupBy || ms.YCol != ycol {
			return true
		}
		if len(ms.XCols) != len(xcols) {
			return true
		}
		pos := make(map[string]int, len(xcols))
		for i, c := range xcols {
			pos[c] = i
		}
		lb := make([]float64, len(xcols))
		ub := make([]float64, len(xcols))
		for j, c := range ms.XCols {
			i, ok := pos[c]
			if !ok {
				return true
			}
			lb[j], ub[j] = lbs[i], ubs[i]
		}
		found, flb, fub = ms, lb, ub
		return false
	})
	return found, flb, fub
}

// Plan describes how the engine would answer a statement, without running
// it.
type Plan struct {
	// Path is "model", "nominal-model" or "exact" for queries, or the
	// statement kind ("create-model", "drop-model", "show-models") for
	// model-definition statements.
	Path string
	// ModelKeys lists the catalog keys of the model sets that would serve
	// each aggregate (empty on the exact path and for statements).
	ModelKeys []string
	// Reason explains an exact-path decision.
	Reason string
	// Tree is the physical operator tree that would execute, one operator
	// per line (Project, ModelEval, GroupMerge, ExactScan, ...); for model
	// definitions it shows the validated spec that CreateModel would run.
	Tree string
}

// Explain reports the plan for one statement. For queries: which trained
// models would answer it (and through which physical operators), or why it
// would fall through to the exact engine. For model-definition statements:
// the validated spec (or target) the statement would execute, so a CREATE
// MODEL can be checked without paying for the training.
func (e *Engine) Explain(sql string) (*Plan, error) {
	st, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	switch {
	case st.CreateModel != nil:
		spec := specFromStatement(st.CreateModel)
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		return &Plan{Path: "create-model", Tree: "CreateModel(" + spec.Name + ": " + spec.Summary() + ")\n"}, nil
	case st.CreateSketch != nil:
		spec := specFromSketchStatement(st.CreateSketch)
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		return &Plan{Path: "create-sketch", Tree: "CreateSketch(" + spec.Name + ": " + spec.Summary() + ")\n"}, nil
	case st.DropModel != nil:
		return &Plan{Path: "drop-model", Tree: "DropModel(" + st.DropModel.Name + ")\n"}, nil
	case st.ShowModels:
		return &Plan{Path: "show-models", Tree: "ShowModels\n"}, nil
	}
	// SELECT: go through Prepare so repeated explains share the plan cache.
	p, err := e.Prepare(sql)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Path: p.Path(), Reason: p.Reason(), Tree: p.Render()}
	if keys := p.ModelKeys(); len(keys) > 0 {
		plan.ModelKeys = keys
	}
	return plan, nil
}

// PlanCacheStats reports plan-cache effectiveness counters. Hits and Misses
// are cumulative for the engine's lifetime — a generation wipe or capacity
// reset never zeroes them.
type PlanCacheStats struct {
	Hits   uint64 // Prepare calls served from the cache
	Misses uint64 // Prepare calls that planned from scratch
	// Evictions counts every cached plan dropped, whichever way it went:
	// capacity resets or generation wipes.
	Evictions uint64
	// Resets counts capacity-triggered wholesale clears in put.
	Resets uint64
	// GenerationWipes counts whole-cache invalidations caused by catalog
	// mutations (Train / LoadModels / Remove bumping the generation).
	GenerationWipes uint64
	Entries         int // plans currently cached
}

// PlanCacheStats returns a snapshot of the engine's plan-cache counters.
// Every counter is atomic, so polling it (the /stats endpoint) never
// contends with serving.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	return e.plans.stats()
}

// defaultPlanCacheSize bounds the plan cache; production query workloads
// have far fewer distinct shapes than this.
const defaultPlanCacheSize = 1024

// planCacheShards is the shard fan-out of the plan cache. Shards bound the
// copy-on-write cost of a put to O(entries/shards); the lookup path is
// lock-free regardless.
const planCacheShards = 32

// cacheEntry is one cached shape: the prepared plan plus, on the model
// paths, the memoized result of its first execution. Model answers are
// deterministic for a fixed catalog generation (the models are immutable
// and only a retrain — which bumps the generation and drops this entry —
// changes them), so a repeated hot shape is served from res with no
// execution at all. res stays nil for exact-path plans, whose answers
// track the live tables.
type cacheEntry struct {
	p   *PreparedQuery
	res atomic.Pointer[Result]
}

// cacheMap is one shard's immutable key→entry map; writers replace it
// wholesale (copy-on-write) under the cache's writer mutex, readers load it
// with one atomic pointer read.
type cacheMap struct {
	entries map[string]*cacheEntry
}

// planCache maps normalized SQL to prepared queries (and memoized
// model-path results). Lookups are lock-free: a generation check on an
// atomic counter, one atomic shard-map load, one map read. Writers —
// planning misses and generation wipes — serialize on a single mutex and
// publish copy-on-write shard maps; the first lookup that observes a new
// catalog generation wipes every shard, which is how Train/LoadModels/
// Remove invalidate every stale plan (and release the model sets those
// plans pin) without the mutation path knowing about the cache. All
// counters are atomics, so stats() never touches the writer mutex either.
type planCache struct {
	max    int // <= 0 disables caching
	gen    atomic.Uint64
	count  atomic.Int64 // entries across all shards
	hits   atomic.Uint64
	misses atomic.Uint64
	// evictions counts every cached plan dropped, via capacity resets or
	// generation wipes; resets and wipes count the two wholesale clears.
	evictions atomic.Uint64
	resets    atomic.Uint64
	wipes     atomic.Uint64

	mu     sync.Mutex // serializes writers (put, generation advance)
	shards [planCacheShards]atomic.Pointer[cacheMap]
}

func newPlanCache(max int) *planCache {
	pc := &planCache{max: max}
	for i := range pc.shards {
		pc.shards[i].Store(&cacheMap{entries: map[string]*cacheEntry{}})
	}
	return pc
}

func (pc *planCache) enabled() bool { return pc.max > 0 }

// shardIndex picks the cache shard for a key (FNV-1a).
func shardIndex(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h % planCacheShards
}

// get returns the cached entry for key planned under exactly generation
// gen, or nil. The hit path takes no mutex. A caller observing a newer
// generation than the cache wipes it first (the one write on the read
// path, taken once per catalog mutation); a caller with an older
// generation than a cached entry simply misses.
func (pc *planCache) get(key string, gen uint64) *cacheEntry {
	// Only a newer generation wipes: a reader that loaded an older
	// generation before a concurrent Train committed must not destroy the
	// plans already cached for the new one (the per-entry check below
	// keeps it from being served a stale plan).
	if gen > pc.gen.Load() {
		pc.advance(gen)
	}
	m := pc.shards[shardIndex(key)].Load()
	e := m.entries[key]
	if e == nil || e.p.gen != gen {
		pc.misses.Add(1)
		return nil
	}
	pc.hits.Add(1)
	return e
}

// advance wipes every shard and moves the cache to generation gen. It runs
// at most once per catalog mutation.
func (pc *planCache) advance(gen uint64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if gen <= pc.gen.Load() {
		return // another reader advanced first
	}
	if n := pc.count.Swap(0); n > 0 {
		pc.evictions.Add(uint64(n))
		pc.wipes.Add(1)
		for i := range pc.shards {
			pc.shards[i].Store(&cacheMap{entries: map[string]*cacheEntry{}})
		}
	}
	pc.gen.Store(gen)
}

// put caches a freshly planned query and returns its entry (nil when the
// plan was discarded as stale or caching is disabled).
func (pc *planCache) put(key string, p *PreparedQuery) *cacheEntry {
	if !pc.enabled() {
		return nil
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if p.gen < pc.gen.Load() {
		// Planned under an older generation than the cache tracks: caching
		// it would overwrite (or pollute) the fresher working set only to
		// be evicted on first lookup.
		return nil
	}
	if int(pc.count.Load()) >= pc.max {
		// Wholesale reset: hot shapes re-plan with one parse each, and the
		// hit path stays a single map read with no LRU bookkeeping. The
		// reset is no longer silent — Resets/Evictions record the cost.
		pc.evictions.Add(uint64(pc.count.Swap(0)))
		pc.resets.Add(1)
		for i := range pc.shards {
			pc.shards[i].Store(&cacheMap{entries: map[string]*cacheEntry{}})
		}
	}
	i := shardIndex(key)
	cur := pc.shards[i].Load()
	next := make(map[string]*cacheEntry, len(cur.entries)+1)
	for k, v := range cur.entries {
		next[k] = v
	}
	e := &cacheEntry{p: p}
	if _, exists := next[key]; !exists {
		pc.count.Add(1)
	}
	next[key] = e
	pc.shards[i].Store(&cacheMap{entries: next})
	return e
}

func (pc *planCache) stats() PlanCacheStats {
	return PlanCacheStats{
		Hits:            pc.hits.Load(),
		Misses:          pc.misses.Load(),
		Evictions:       pc.evictions.Load(),
		Resets:          pc.resets.Load(),
		GenerationWipes: pc.wipes.Load(),
		Entries:         int(pc.count.Load()),
	}
}
