package dbest

import (
	"math"
	"sync"
	"time"

	"dbest/internal/core"
	"dbest/internal/exact"
	"dbest/internal/exec"
	"dbest/internal/sqlparse"
)

// Path values reported by PreparedQuery.Path and Plan.Path.
const (
	PathModel   = exec.PathModel
	PathNominal = exec.PathNominal
	PathExact   = exec.PathExact
)

// PreparedQuery is a query planned once and executable many times: the
// parsed SQL compiled into a physical operator tree (package internal/exec)
// that either evaluates trained models or falls through to the exact
// engine. It is immutable after planning and safe for concurrent Run calls.
// A PreparedQuery snapshots the catalog at plan time; models trained
// afterwards are picked up by re-preparing (Engine.Query does this
// automatically via the plan cache's generation check).
type PreparedQuery struct {
	eng   *Engine
	query *sqlparse.Query
	plan  *exec.Plan
	gen   uint64 // catalog generation at plan time
}

// Path reports which engine path the query is bound to: "model",
// "nominal-model" or "exact".
func (p *PreparedQuery) Path() string { return p.plan.Path }

// Reason explains an exact-path decision; empty on model paths.
func (p *PreparedQuery) Reason() string { return p.plan.Reason }

// ModelKeys lists the catalog keys of the model sets bound to each
// aggregate (empty on the exact path).
func (p *PreparedQuery) ModelKeys() []string { return p.plan.ModelKeys() }

// Render returns the plan's physical operator tree, one operator per line —
// the EXPLAIN rendering.
func (p *PreparedQuery) Render() string { return p.plan.Render() }

// Run executes the prepared query and returns its result.
func (p *PreparedQuery) Run() (*Result, error) {
	t0 := time.Now()
	res, err := p.run()
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(t0)
	return res, nil
}

// run executes the operator tree once; Elapsed is left for the caller to
// stamp.
func (p *PreparedQuery) run() (*Result, error) {
	er, err := p.plan.Run(&exec.Env{Workers: p.eng.workers, Tables: p.eng, Shards: &p.eng.shardCtrs})
	if err != nil {
		return nil, err
	}
	return &Result{Aggregates: er.Aggregates, Source: er.Source}, nil
}

// Prepare parses and plans sql, consulting the engine's plan cache: a
// repeated query shape skips both the parser and the catalog lookups. The
// returned PreparedQuery may be shared with concurrent callers.
func (e *Engine) Prepare(sql string) (*PreparedQuery, error) {
	if !e.plans.enabled() {
		return e.prepareNormalized("", sql)
	}
	return e.prepareNormalized(sqlparse.Normalize(sql), sql)
}

// prepareNormalized is Prepare with the normalized cache key precomputed by
// the caller (QueryBatch already derives it for dedup); key is ignored when
// caching is disabled.
func (e *Engine) prepareNormalized(key, sql string) (*PreparedQuery, error) {
	gen := e.catalog.Generation()
	if !e.plans.enabled() {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, err
		}
		return e.plan(q, gen)
	}
	if p := e.plans.get(key, gen); p != nil {
		return p, nil
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	p, err := e.plan(q, gen)
	if err != nil {
		return nil, err
	}
	e.plans.put(key, p)
	return p, nil
}

// plan resolves q against the catalog, compiling every aggregate into a
// physical operator bound to a model set — or the whole query into an
// exact-path plan.
func (e *Engine) plan(q *sqlparse.Query, gen uint64) (*PreparedQuery, error) {
	var (
		pl  *exec.Plan
		err error
	)
	if len(q.Equals) > 0 {
		pl, err = e.planNominal(q)
	} else {
		pl, err = e.planModel(q)
	}
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{eng: e, query: q, plan: pl, gen: gen}, nil
}

// planNominal binds queries with a nominal equality predicate to per-value
// models (§2.3). Supported shape: one equality on the nominal column plus
// at most one range predicate; anything else is answered exactly.
func (e *Engine) planNominal(q *sqlparse.Query) (*exec.Plan, error) {
	if len(q.Equals) != 1 || len(q.Where) > 1 || q.GroupBy != "" || q.Join != nil {
		return exec.NewExactPlan(q, "nominal predicates support one equality plus at most one range")
	}
	eqp := q.Equals[0]
	lb, ub := math.Inf(-1), math.Inf(1)
	xcol := ""
	if len(q.Where) == 1 {
		xcol = q.Where[0].Column
		lb, ub = q.Where[0].Lb, q.Where[0].Ub
	}
	aggs := make([]exec.AggOperator, 0, len(q.Aggregates))
	for _, agg := range q.Aggregates {
		af, err := exact.ParseAggFunc(agg.Func)
		if err != nil {
			return nil, err
		}
		lookupX := xcol
		if lookupX == "" {
			lookupX = agg.Column
		}
		ms := e.catalog.LookupNominal(q.Table, lookupX, yColFor(agg, lookupX), eqp.Column)
		if ms == nil {
			return exec.NewExactPlan(q, "no nominal model for "+agg.Func+"("+agg.Column+")")
		}
		aggs = append(aggs, exec.NewNominalEval(agg.Func+"("+agg.Column+")", af, ms,
			eqp.Value, lb, ub, agg.Column == ms.XCols[0] || agg.Column == "*", agg.P))
	}
	return exec.NewPlan(PathNominal, "", exec.NewProject(PathNominal, aggs, nil)), nil
}

// planModel binds range-predicate queries to trained model sets, falling to
// the exact path when any aggregate has no matching model.
func (e *Engine) planModel(q *sqlparse.Query) (*exec.Plan, error) {
	tbl := modelTable(q)
	xcols := make([]string, len(q.Where))
	lbs := make([]float64, len(q.Where))
	ubs := make([]float64, len(q.Where))
	for i, pr := range q.Where {
		xcols[i] = pr.Column
		lbs[i] = pr.Lb
		ubs[i] = pr.Ub
	}
	aggs := make([]exec.AggOperator, 0, len(q.Aggregates))
	for _, agg := range q.Aggregates {
		af, err := exact.ParseAggFunc(agg.Func)
		if err != nil {
			return nil, err
		}
		name := agg.Func + "(" + agg.Column + ")"
		var op exec.AggOperator
		switch {
		case len(xcols) == 0:
			// Predicate-free queries (PERCENTILE a la HIVE, or whole-table
			// aggregates): served by any model set over the aggregate column.
			if ms := e.lookupAny(tbl, agg.Column, q.GroupBy); ms != nil {
				yIsX := len(ms.XCols) == 1 && (agg.Column == ms.XCols[0] || agg.Column == "*")
				op = exec.NewModelEval(name, af, ms,
					[]float64{math.Inf(-1)}, []float64{math.Inf(1)}, yIsX, agg.P)
				break
			}
			if q.GroupBy != "" {
				break
			}
			// Sharded fallback: a full-range merge over the whole ensemble.
			if sets := e.catalog.LookupShardedAny(tbl, agg.Column); sets != nil {
				yIsX := agg.Column == sets[0].XCols[0] || agg.Column == "*"
				op = exec.NewShardMerge(name, af, sets, math.Inf(-1), math.Inf(1), yIsX, agg.P)
			}
		case len(xcols) == 1:
			if ms := e.catalog.Lookup(tbl, xcols, yColFor(agg, xcols[0]), q.GroupBy); ms != nil {
				op = exec.NewModelEval(name, af, ms, lbs[:1], ubs[:1],
					agg.Column == xcols[0] || agg.Column == "*", agg.P)
				break
			}
			if q.GroupBy != "" {
				break
			}
			// Sharded fallback: bind the ensemble; execution prunes it to
			// the shards overlapping the (possibly Span-overridden) range.
			if sets := e.catalog.LookupSharded(tbl, xcols[0], yColFor(agg, xcols[0])); sets != nil {
				op = exec.NewShardMerge(name, af, sets, lbs[0], ubs[0],
					agg.Column == xcols[0] || agg.Column == "*", agg.P)
			}
		default:
			ms := e.catalog.Lookup(tbl, xcols, agg.Column, q.GroupBy)
			lb, ub := lbs, ubs
			if ms == nil {
				// Predicate order need not match training order: try the
				// model set's own column order.
				ms, lb, ub = e.lookupPermuted(tbl, xcols, lbs, ubs, agg.Column, q.GroupBy)
			}
			if ms == nil {
				break
			}
			op = exec.NewModelEval(name, af, ms, lb, ub, false, agg.P)
		}
		if op == nil {
			return exec.NewExactPlan(q, "no model for "+agg.Func+"("+agg.Column+") on "+tbl)
		}
		aggs = append(aggs, op)
	}
	return exec.NewPlan(PathModel, "", exec.NewProject(PathModel, aggs, nil)), nil
}

// lookupAny finds any univariate model set on tbl whose x or y column
// matches col (used by predicate-free queries). The search is indexed by
// table, so its cost is O(models on tbl), not O(catalog).
func (e *Engine) lookupAny(tbl, col, groupBy string) *core.ModelSet {
	var found *core.ModelSet
	e.catalog.ScanTable(tbl, func(ms *core.ModelSet) bool {
		// Shard members only ever serve through the ensemble merge.
		if ms.Shards > 1 || ms.GroupBy != groupBy || len(ms.XCols) != 1 {
			return true
		}
		if ms.XCols[0] == col || ms.YCol == col || col == "*" {
			found = ms
			return false
		}
		return true
	})
	return found
}

// lookupPermuted retries a multivariate lookup with predicate columns
// reordered to the training order, scanning only tbl's model sets.
func (e *Engine) lookupPermuted(tbl string, xcols []string, lbs, ubs []float64, ycol, groupBy string) (*core.ModelSet, []float64, []float64) {
	var (
		found    *core.ModelSet
		flb, fub []float64
	)
	e.catalog.ScanTable(tbl, func(ms *core.ModelSet) bool {
		if ms.GroupBy != groupBy || ms.YCol != ycol {
			return true
		}
		if len(ms.XCols) != len(xcols) {
			return true
		}
		pos := make(map[string]int, len(xcols))
		for i, c := range xcols {
			pos[c] = i
		}
		lb := make([]float64, len(xcols))
		ub := make([]float64, len(xcols))
		for j, c := range ms.XCols {
			i, ok := pos[c]
			if !ok {
				return true
			}
			lb[j], ub[j] = lbs[i], ubs[i]
		}
		found, flb, fub = ms, lb, ub
		return false
	})
	return found, flb, fub
}

// Plan describes how the engine would answer a statement, without running
// it.
type Plan struct {
	// Path is "model", "nominal-model" or "exact" for queries, or the
	// statement kind ("create-model", "drop-model", "show-models") for
	// model-definition statements.
	Path string
	// ModelKeys lists the catalog keys of the model sets that would serve
	// each aggregate (empty on the exact path and for statements).
	ModelKeys []string
	// Reason explains an exact-path decision.
	Reason string
	// Tree is the physical operator tree that would execute, one operator
	// per line (Project, ModelEval, GroupMerge, ExactScan, ...); for model
	// definitions it shows the validated spec that CreateModel would run.
	Tree string
}

// Explain reports the plan for one statement. For queries: which trained
// models would answer it (and through which physical operators), or why it
// would fall through to the exact engine. For model-definition statements:
// the validated spec (or target) the statement would execute, so a CREATE
// MODEL can be checked without paying for the training.
func (e *Engine) Explain(sql string) (*Plan, error) {
	st, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	switch {
	case st.CreateModel != nil:
		spec := specFromStatement(st.CreateModel)
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		return &Plan{Path: "create-model", Tree: "CreateModel(" + spec.Name + ": " + spec.Summary() + ")\n"}, nil
	case st.DropModel != nil:
		return &Plan{Path: "drop-model", Tree: "DropModel(" + st.DropModel.Name + ")\n"}, nil
	case st.ShowModels:
		return &Plan{Path: "show-models", Tree: "ShowModels\n"}, nil
	}
	// SELECT: go through Prepare so repeated explains share the plan cache.
	p, err := e.Prepare(sql)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Path: p.Path(), Reason: p.Reason(), Tree: p.Render()}
	if keys := p.ModelKeys(); len(keys) > 0 {
		plan.ModelKeys = keys
	}
	return plan, nil
}

// PlanCacheStats reports plan-cache effectiveness counters. Hits and Misses
// are cumulative for the engine's lifetime — a generation wipe or capacity
// reset never zeroes them.
type PlanCacheStats struct {
	Hits   uint64 // Prepare calls served from the cache
	Misses uint64 // Prepare calls that planned from scratch
	// Evictions counts every cached plan dropped, whichever way it went:
	// capacity resets, generation wipes, or a stale entry deleted on read.
	Evictions uint64
	// Resets counts capacity-triggered wholesale clears in put.
	Resets uint64
	// GenerationWipes counts whole-map invalidations caused by catalog
	// mutations (Train / LoadModels / Remove bumping the generation).
	GenerationWipes uint64
	Entries         int // plans currently cached
}

// PlanCacheStats returns a snapshot of the engine's plan-cache counters.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	return e.plans.stats()
}

// defaultPlanCacheSize bounds the plan cache; production query workloads
// have far fewer distinct shapes than this.
const defaultPlanCacheSize = 1024

// planCache maps normalized SQL to prepared queries. Entries carry the
// catalog generation they were planned under; the first lookup that
// observes a new generation drops the whole map, which is how
// Train/LoadModels/Remove invalidate every stale plan (and release the
// model sets those plans pin) without the mutation path knowing about the
// cache. Hit/miss/eviction counters survive both kinds of wholesale drop.
type planCache struct {
	mu        sync.Mutex
	max       int // <= 0 disables caching
	entries   map[string]*PreparedQuery
	gen       uint64 // generation the current entries were planned under
	hits      uint64
	misses    uint64
	evictions uint64
	resets    uint64
	wipes     uint64
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, entries: make(map[string]*PreparedQuery)}
}

func (pc *planCache) enabled() bool { return pc.max > 0 }

func (pc *planCache) get(key string, gen uint64) *PreparedQuery {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	// Only a newer generation wipes: a reader that loaded an older
	// generation before a concurrent Train committed must not destroy the
	// plans already cached for the new one (the per-entry check below
	// keeps it from being served a stale plan).
	if gen > pc.gen {
		if n := len(pc.entries); n > 0 {
			pc.evictions += uint64(n)
			pc.wipes++
		}
		pc.entries = make(map[string]*PreparedQuery)
		pc.gen = gen
	}
	// The per-entry check still matters: a plan made under an older
	// generation can be put after a newer one wiped the map. Only a
	// genuinely stale entry (older than the caller's generation) is
	// deleted — a stale caller must not evict a fresher plan.
	p := pc.entries[key]
	if p == nil || p.gen != gen {
		if p != nil && p.gen < gen {
			delete(pc.entries, key)
			pc.evictions++
		}
		pc.misses++
		return nil
	}
	pc.hits++
	return p
}

func (pc *planCache) put(key string, p *PreparedQuery) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if p.gen < pc.gen {
		// Planned under an older generation than the cache tracks: caching
		// it would overwrite (or pollute) the fresher working set only to
		// be evicted on first lookup.
		return
	}
	if len(pc.entries) >= pc.max {
		// Wholesale reset: hot shapes re-plan with one parse each, and the
		// hit path stays a single map read with no LRU bookkeeping. The
		// reset is no longer silent — Resets/Evictions record the cost.
		pc.evictions += uint64(len(pc.entries))
		pc.resets++
		pc.entries = make(map[string]*PreparedQuery, pc.max)
	}
	pc.entries[key] = p
}

func (pc *planCache) stats() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{
		Hits:            pc.hits,
		Misses:          pc.misses,
		Evictions:       pc.evictions,
		Resets:          pc.resets,
		GenerationWipes: pc.wipes,
		Entries:         len(pc.entries),
	}
}
