package dbest

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"dbest/internal/core"
	"dbest/internal/exact"
	"dbest/internal/sqlparse"
)

// Path values reported by PreparedQuery.Path and Plan.Path.
const (
	PathModel   = "model"
	PathNominal = "nominal-model"
	PathExact   = "exact"
)

// bindMode selects which ModelSet evaluator a bound aggregate uses.
type bindMode int

const (
	bindUni bindMode = iota
	bindMulti
	bindNominal
)

// boundAggregate is one select-list aggregate resolved against the catalog:
// the parsed aggregate plus the model set, evaluation bounds and flags needed
// to answer it without touching the parser or the catalog again.
type boundAggregate struct {
	name    string // display name, e.g. "AVG(price)"
	af      exact.AggFunc
	mode    bindMode
	ms      *core.ModelSet
	lb, ub  []float64
	yIsX    bool
	p       float64
	eqValue string // nominal equality value (bindNominal)
}

// PreparedQuery is a query planned once and executable many times: the
// parsed SQL plus the resolved model bindings (or the decision to fall
// through to the exact engine). It is immutable after planning and safe for
// concurrent Run calls. A PreparedQuery snapshots the catalog at plan time;
// models trained afterwards are picked up by re-preparing (Engine.Query does
// this automatically via the plan cache's generation check).
type PreparedQuery struct {
	eng    *Engine
	query  *sqlparse.Query
	path   string
	reason string
	aggs   []boundAggregate
	gen    uint64 // catalog generation at plan time
}

// Path reports which engine path the query is bound to: "model",
// "nominal-model" or "exact".
func (p *PreparedQuery) Path() string { return p.path }

// Reason explains an exact-path decision; empty on model paths.
func (p *PreparedQuery) Reason() string { return p.reason }

// ModelKeys lists the catalog keys of the model sets bound to each
// aggregate (empty on the exact path).
func (p *PreparedQuery) ModelKeys() []string {
	keys := make([]string, 0, len(p.aggs))
	for _, b := range p.aggs {
		keys = append(keys, b.ms.Key())
	}
	return keys
}

// Run executes the prepared query and returns its result.
func (p *PreparedQuery) Run() (*Result, error) {
	t0 := time.Now()
	res, err := p.exec()
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(t0)
	return res, nil
}

func (p *PreparedQuery) exec() (*Result, error) {
	if p.path == PathExact {
		return p.eng.runExact(p.query)
	}
	res := &Result{Source: "model"}
	for _, b := range p.aggs {
		var ans *core.Answer
		var err error
		switch b.mode {
		case bindUni:
			ans, err = b.ms.EvaluateUni(b.af, b.lb[0], b.ub[0], b.yIsX,
				&core.EvalOptions{Workers: p.eng.workers, P: b.p})
		case bindMulti:
			ans, err = b.ms.EvaluateMulti(b.af, b.lb, b.ub)
		case bindNominal:
			ans, err = b.ms.EvaluateNominal(b.af, b.eqValue, b.lb[0], b.ub[0], b.yIsX,
				&core.EvalOptions{Workers: p.eng.workers, P: b.p})
		}
		if err != nil {
			if errors.Is(err, core.ErrNoSupport) {
				return nil, fmt.Errorf("dbest: %s selects an empty region: %w", b.name, err)
			}
			return nil, err
		}
		res.Aggregates = append(res.Aggregates, AggregateResult{
			Name:   b.name,
			Value:  ans.Value,
			Groups: ans.Groups,
		})
	}
	return res, nil
}

// Prepare parses and plans sql, consulting the engine's plan cache: a
// repeated query shape skips both the parser and the catalog scan. The
// returned PreparedQuery may be shared with concurrent callers.
func (e *Engine) Prepare(sql string) (*PreparedQuery, error) {
	gen := e.catalog.Generation()
	if !e.plans.enabled() {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, err
		}
		return e.plan(q, gen)
	}
	key := sqlparse.Normalize(sql)
	if p := e.plans.get(key, gen); p != nil {
		return p, nil
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	p, err := e.plan(q, gen)
	if err != nil {
		return nil, err
	}
	e.plans.put(key, p)
	return p, nil
}

// plan resolves q against the catalog, binding every aggregate to a model
// set or deciding on the exact path.
func (e *Engine) plan(q *sqlparse.Query, gen uint64) (*PreparedQuery, error) {
	p := &PreparedQuery{eng: e, query: q, gen: gen}
	if len(q.Equals) > 0 {
		return p, e.planNominal(p, q)
	}
	return p, e.planModel(p, q)
}

// planNominal binds queries with a nominal equality predicate to per-value
// models (§2.3). Supported shape: one equality on the nominal column plus
// at most one range predicate; anything else is answered exactly.
func (e *Engine) planNominal(p *PreparedQuery, q *sqlparse.Query) error {
	if len(q.Equals) != 1 || len(q.Where) > 1 || q.GroupBy != "" || q.Join != nil {
		p.path = PathExact
		p.reason = "nominal predicates support one equality plus at most one range"
		return nil
	}
	eqp := q.Equals[0]
	lb, ub := math.Inf(-1), math.Inf(1)
	xcol := ""
	if len(q.Where) == 1 {
		xcol = q.Where[0].Column
		lb, ub = q.Where[0].Lb, q.Where[0].Ub
	}
	p.path = PathNominal
	for _, agg := range q.Aggregates {
		af, err := exact.ParseAggFunc(agg.Func)
		if err != nil {
			return err
		}
		lookupX := xcol
		if lookupX == "" {
			lookupX = agg.Column
		}
		ms := e.catalog.LookupNominal(q.Table, lookupX, yColFor(agg, lookupX), eqp.Column)
		if ms == nil {
			p.path = PathExact
			p.reason = "no nominal model for " + agg.Func + "(" + agg.Column + ")"
			p.aggs = nil
			return nil
		}
		p.aggs = append(p.aggs, boundAggregate{
			name:    agg.Func + "(" + agg.Column + ")",
			af:      af,
			mode:    bindNominal,
			ms:      ms,
			lb:      []float64{lb},
			ub:      []float64{ub},
			yIsX:    agg.Column == ms.XCols[0] || agg.Column == "*",
			p:       agg.P,
			eqValue: eqp.Value,
		})
	}
	return nil
}

// planModel binds range-predicate queries to trained model sets, falling to
// the exact path when any aggregate has no matching model.
func (e *Engine) planModel(p *PreparedQuery, q *sqlparse.Query) error {
	tbl := modelTable(q)
	xcols := make([]string, len(q.Where))
	lbs := make([]float64, len(q.Where))
	ubs := make([]float64, len(q.Where))
	for i, pr := range q.Where {
		xcols[i] = pr.Column
		lbs[i] = pr.Lb
		ubs[i] = pr.Ub
	}
	p.path = PathModel
	for _, agg := range q.Aggregates {
		af, err := exact.ParseAggFunc(agg.Func)
		if err != nil {
			return err
		}
		b := boundAggregate{
			name: agg.Func + "(" + agg.Column + ")",
			af:   af,
			p:    agg.P,
		}
		switch {
		case len(xcols) == 0:
			// Predicate-free queries (PERCENTILE a la HIVE, or whole-table
			// aggregates): served by any model set over the aggregate column.
			ms := e.lookupAny(tbl, agg.Column, q.GroupBy)
			if ms == nil {
				break
			}
			b.mode = bindUni
			b.ms = ms
			b.lb, b.ub = []float64{math.Inf(-1)}, []float64{math.Inf(1)}
			b.yIsX = len(ms.XCols) == 1 && (agg.Column == ms.XCols[0] || agg.Column == "*")
		case len(xcols) == 1:
			ms := e.catalog.Lookup(tbl, xcols, yColFor(agg, xcols[0]), q.GroupBy)
			if ms == nil {
				break
			}
			b.mode = bindUni
			b.ms = ms
			b.lb, b.ub = lbs[:1], ubs[:1]
			b.yIsX = agg.Column == xcols[0] || agg.Column == "*"
		default:
			ms := e.catalog.Lookup(tbl, xcols, agg.Column, q.GroupBy)
			lb, ub := lbs, ubs
			if ms == nil {
				// Predicate order need not match training order: try the
				// model set's own column order.
				ms, lb, ub = e.lookupPermuted(tbl, xcols, lbs, ubs, agg.Column, q.GroupBy)
			}
			if ms == nil {
				break
			}
			b.mode = bindMulti
			b.ms = ms
			b.lb, b.ub = lb, ub
		}
		if b.ms == nil {
			p.path = PathExact
			p.reason = "no model for " + agg.Func + "(" + agg.Column + ") on " + tbl
			p.aggs = nil
			return nil
		}
		p.aggs = append(p.aggs, b)
	}
	return nil
}

// lookupAny finds any univariate model set on tbl whose x or y column
// matches col (used by predicate-free queries).
func (e *Engine) lookupAny(tbl, col, groupBy string) *core.ModelSet {
	var found *core.ModelSet
	e.catalog.Scan(func(ms *core.ModelSet) bool {
		if ms.Table != tbl || ms.GroupBy != groupBy || len(ms.XCols) != 1 {
			return true
		}
		if ms.XCols[0] == col || ms.YCol == col || col == "*" {
			found = ms
			return false
		}
		return true
	})
	return found
}

// lookupPermuted retries a multivariate lookup with predicate columns
// reordered to the training order.
func (e *Engine) lookupPermuted(tbl string, xcols []string, lbs, ubs []float64, ycol, groupBy string) (*core.ModelSet, []float64, []float64) {
	var (
		found    *core.ModelSet
		flb, fub []float64
	)
	e.catalog.Scan(func(ms *core.ModelSet) bool {
		if ms.Table != tbl || ms.GroupBy != groupBy || ms.YCol != ycol {
			return true
		}
		if len(ms.XCols) != len(xcols) {
			return true
		}
		pos := make(map[string]int, len(xcols))
		for i, c := range xcols {
			pos[c] = i
		}
		lb := make([]float64, len(xcols))
		ub := make([]float64, len(xcols))
		for j, c := range ms.XCols {
			i, ok := pos[c]
			if !ok {
				return true
			}
			lb[j], ub[j] = lbs[i], ubs[i]
		}
		found, flb, fub = ms, lb, ub
		return false
	})
	return found, flb, fub
}

// PlanCacheStats reports plan-cache effectiveness counters.
type PlanCacheStats struct {
	Hits    uint64 // Prepare calls served from the cache
	Misses  uint64 // Prepare calls that planned from scratch
	Entries int    // plans currently cached
}

// PlanCacheStats returns a snapshot of the engine's plan-cache counters.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	return e.plans.stats()
}

// defaultPlanCacheSize bounds the plan cache; production query workloads
// have far fewer distinct shapes than this.
const defaultPlanCacheSize = 1024

// planCache maps normalized SQL to prepared queries. Entries carry the
// catalog generation they were planned under; the first lookup that
// observes a new generation drops the whole map, which is how
// Train/LoadModels/Remove invalidate every stale plan (and release the
// model sets those plans pin) without the mutation path knowing about the
// cache.
type planCache struct {
	mu      sync.Mutex
	max     int // <= 0 disables caching
	entries map[string]*PreparedQuery
	gen     uint64 // generation the current entries were planned under
	hits    uint64
	misses  uint64
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, entries: make(map[string]*PreparedQuery)}
}

func (pc *planCache) enabled() bool { return pc.max > 0 }

func (pc *planCache) get(key string, gen uint64) *PreparedQuery {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if gen != pc.gen {
		pc.entries = make(map[string]*PreparedQuery)
		pc.gen = gen
	}
	// The per-entry check still matters: a plan made under an older
	// generation can be put after a newer one wiped the map.
	p := pc.entries[key]
	if p == nil || p.gen != gen {
		if p != nil {
			delete(pc.entries, key)
		}
		pc.misses++
		return nil
	}
	pc.hits++
	return p
}

func (pc *planCache) put(key string, p *PreparedQuery) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if len(pc.entries) >= pc.max {
		// Wholesale reset: hot shapes re-plan with one parse each, and the
		// hit path stays a single map read with no LRU bookkeeping.
		pc.entries = make(map[string]*PreparedQuery, pc.max)
	}
	pc.entries[key] = p
}

func (pc *planCache) stats() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{Hits: pc.hits, Misses: pc.misses, Entries: len(pc.entries)}
}
