package dbest_test

import (
	"testing"

	"dbest"
	"dbest/internal/datagen"
	"dbest/internal/exact"
	"dbest/internal/sqlparse"
)

func TestParseNominalEquality(t *testing.T) {
	q, err := sqlparse.Parse(`SELECT AVG(ss_sales_price) FROM store_sales
		WHERE ss_channel = 'web' AND ss_list_price BETWEEN 20 AND 80`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Equals) != 1 || q.Equals[0] != (sqlparse.Equality{Column: "ss_channel", Value: "web"}) {
		t.Fatalf("equals = %+v", q.Equals)
	}
	if len(q.Where) != 1 {
		t.Fatalf("where = %+v", q.Where)
	}
	// Escaped quote.
	q2, err := sqlparse.Parse(`SELECT COUNT(x) FROM t WHERE c = 'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Equals[0].Value != "it's" {
		t.Fatalf("value = %q", q2.Equals[0].Value)
	}
	// Unterminated string.
	if _, err := sqlparse.Parse(`SELECT COUNT(x) FROM t WHERE c = 'oops`); err == nil {
		t.Fatal("want error for unterminated literal")
	}
	// Equality to non-string.
	if _, err := sqlparse.Parse(`SELECT COUNT(x) FROM t WHERE c = 5`); err == nil {
		t.Fatal("want error for numeric equality (only nominal strings supported)")
	}
}

func nominalEngine(t *testing.T) (*dbest.Engine, *dbest.Table) {
	t.Helper()
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 60000, Seed: 31})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	info, err := eng.TrainNominal("store_sales", "ss_list_price", "ss_sales_price", "ss_channel",
		&dbest.TrainOptions{SampleSize: 6000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if info.NumModels != 3 {
		t.Fatalf("models = %d, want 3 (store, web, catalog)", info.NumModels)
	}
	return eng, tb
}

func TestNominalQueryMatchesExact(t *testing.T) {
	eng, tb := nominalEngine(t)
	for _, ch := range []string{"store", "web", "catalog"} {
		sql := `SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_channel = '` + ch +
			`' AND ss_list_price BETWEEN 30 AND 90`
		res, err := eng.Query(sql)
		if err != nil {
			t.Fatalf("%s: %v", ch, err)
		}
		if res.Source != "model" {
			t.Fatalf("%s: source = %q", ch, res.Source)
		}
		want, err := exact.Query(tb, exact.Request{AF: exact.Avg, Y: "ss_sales_price",
			Predicates: []exact.Range{{Column: "ss_list_price", Lb: 30, Ub: 90}},
			Equals:     []exact.Equal{{Column: "ss_channel", Value: ch}}})
		if err != nil {
			t.Fatal(err)
		}
		if re := relErr(res.Aggregates[0].Value, want.Value); re > 0.05 {
			t.Errorf("%s: AVG rel err %v (got %v want %v)", ch, re, res.Aggregates[0].Value, want.Value)
		}
	}
}

func TestNominalChannelsDiffer(t *testing.T) {
	// Web discounts more than in-store, so for the same price range the
	// per-channel models must produce different averages in the right order.
	eng, _ := nominalEngine(t)
	get := func(ch string) float64 {
		res, err := eng.Query(`SELECT AVG(ss_sales_price) FROM store_sales
			WHERE ss_channel = '` + ch + `' AND ss_list_price BETWEEN 40 AND 80`)
		if err != nil {
			t.Fatal(err)
		}
		return res.Aggregates[0].Value
	}
	if !(get("web") < get("store")) {
		t.Fatal("web channel should have lower average sales price than store")
	}
}

func TestNominalCountScaling(t *testing.T) {
	eng, tb := nominalEngine(t)
	res, err := eng.Query(`SELECT COUNT(ss_sales_price) FROM store_sales
		WHERE ss_channel = 'web' AND ss_list_price BETWEEN 0 AND 1000`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Query(tb, exact.Request{AF: exact.Count, Y: "ss_sales_price",
		Predicates: []exact.Range{{Column: "ss_list_price", Lb: 0, Ub: 1000}},
		Equals:     []exact.Equal{{Column: "ss_channel", Value: "web"}}})
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(res.Aggregates[0].Value, want.Value); re > 0.05 {
		t.Fatalf("nominal COUNT rel err %v", re)
	}
}

func TestNominalUnknownValueFalls(t *testing.T) {
	eng, _ := nominalEngine(t)
	// Unknown nominal value: no model — surfaces an error from the model
	// path (no silent wrong answers).
	if _, err := eng.Query(`SELECT AVG(ss_sales_price) FROM store_sales
		WHERE ss_channel = 'phone' AND ss_list_price BETWEEN 0 AND 100`); err == nil {
		t.Fatal("want error for unknown nominal value")
	}
}

func TestNominalFallbackWithoutModels(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 20000, Seed: 32})
	eng := dbest.New(nil)
	if err := eng.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(`SELECT COUNT(*) FROM store_sales WHERE ss_channel = 'web'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "exact" {
		t.Fatalf("source = %q, want exact fallback", res.Source)
	}
	want, err := exact.Query(tb, exact.Request{AF: exact.Count, Y: "ss_quantity",
		Equals: []exact.Equal{{Column: "ss_channel", Value: "web"}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregates[0].Value != want.Value {
		t.Fatalf("fallback COUNT = %v, want %v", res.Aggregates[0].Value, want.Value)
	}
}

func TestTrainNominalErrors(t *testing.T) {
	eng := dbest.New(nil)
	if _, err := eng.TrainNominal("ghost", "x", "y", "z", nil); err == nil {
		t.Fatal("want error for unregistered table")
	}
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 1000, Seed: 33})
	_ = eng.RegisterTable(tb)
	if _, err := eng.TrainNominal("store_sales", "nope", "ss_sales_price", "ss_channel", nil); err == nil {
		t.Fatal("want error for missing x column")
	}
	if _, err := eng.TrainNominal("store_sales", "ss_list_price", "ss_sales_price", "ss_store_sk", nil); err == nil {
		t.Fatal("want error for non-string nominal column")
	}
}
