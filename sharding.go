package dbest

import (
	"context"
	"fmt"

	"dbest/internal/core"
	"dbest/internal/table"
)

// Sharded model ensembles: a spec with Shards >= 1 partitions a table's
// x-domain into K contiguous range shards (quantile cut points, so shards
// hold near-equal row counts) and trains one independent model pair per
// shard. The planner binds range queries to a ShardMerge operator that
// evaluates only the shards overlapping [lb, ub] and merges their partial
// aggregates, so a narrow query stops paying for the whole domain; the
// staleness ledger routes appended rows to the owning shard, so the
// background refresher retrains only the dirty shard instead of the whole
// model.

// TablePartition re-exports the range-partition metadata attached to a
// table when a sharded ensemble is trained over it.
type TablePartition = table.Partition

// TrainSharded builds a K-shard model ensemble for AF(ycol) queries with a
// range predicate on xcol. It replaces any previous models for the same
// (table, xcol, ycol) — plain or sharded, whatever the old K — in one
// catalog generation bump. Heavy value ties in xcol can collapse cut
// points, so the ensemble may come out smaller than requested (a single
// surviving shard degenerates to a plain unsharded model). Sharding
// composes with neither GROUP BY nor multivariate predicates.
func (e *Engine) TrainSharded(tbl, xcol, ycol string, shards int, opts *TrainOptions) (*TrainInfo, error) {
	return e.CreateModel(context.Background(), specFor(tbl, []string{xcol}, ycol, opts).withShards(shards))
}

// TrainShardedContext is TrainSharded with cancellation (see TrainContext).
func (e *Engine) TrainShardedContext(ctx context.Context, tbl, xcol, ycol string, shards int, opts *TrainOptions) (*TrainInfo, error) {
	return e.CreateModel(ctx, specFor(tbl, []string{xcol}, ycol, opts).withShards(shards))
}

// createSharded executes a sharded spec: train the ensemble, swap it into
// the catalog under one generation bump, attach partition metadata to the
// table, and register per-shard staleness tracking.
func (e *Engine) createSharded(ctx context.Context, spec *ModelSpec) (*TrainInfo, error) {
	tb := e.Table(spec.Table)
	if tb == nil {
		return nil, fmt.Errorf("dbest: table %q is not registered", spec.Table)
	}
	rows0 := tb.NumRows()
	sets, err := core.TrainShardedContext(ctx, tb, spec.XCols[0], spec.YCol, spec.Shards, spec.config())
	if err != nil {
		return nil, err
	}
	enc := spec.encode()
	for _, ms := range sets {
		ms.Spec = enc
	}
	for _, k := range e.catalog.ReplaceShards(sets) {
		e.ledger.Drop(k)
	}
	bounds := make([]float64, 0, len(sets)+1)
	bounds = append(bounds, sets[0].ShardLo)
	for _, ms := range sets {
		bounds = append(bounds, ms.ShardHi)
	}
	e.setPartition(spec.Table, &table.Partition{Col: spec.XCols[0], Bounds: bounds})
	for _, ms := range sets {
		e.trackShard(ms, spec, rows0)
	}
	return shardedTrainInfo(sets), nil
}

// shardedTrainInfo folds the per-shard build statistics into one report.
// Times are summed across shards — the CPU cost of state building — even
// though shards train in parallel.
func shardedTrainInfo(sets []*core.ModelSet) *TrainInfo {
	info := &TrainInfo{Key: sets[0].BaseKey(), Shards: len(sets)}
	for _, ms := range sets {
		info.NumModels += ms.NumModels()
		info.ModelBytes += ms.Stats.ModelBytes
		info.SampleRows += ms.Stats.SampleRows
		info.SampleTime += ms.Stats.SampleTime
		info.TrainTime += ms.Stats.TrainTime
	}
	return info
}

// setPartition attaches range-partition metadata to the registered table
// through a copy-on-write swap, so concurrent readers of the old snapshot
// never observe a mutation.
func (e *Engine) setPartition(tbl string, p *table.Partition) {
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	tb := e.Table(tbl)
	if tb == nil {
		return
	}
	clone := tb.Clone()
	clone.Part = p
	e.setTable(tbl, clone)
}

// TablePartitioning reports the range-partition layout of the sharded
// ensemble most recently trained over a registered table, or nil.
func (e *Engine) TablePartitioning(tbl string) *TablePartition {
	tb := e.Table(tbl)
	if tb == nil {
		return nil
	}
	return tb.Part
}

// trackShard registers one shard's model set with the staleness ledger:
// appended rows landing in the shard's x-range accrue against it (and
// fast-forward its per-shard reservoir mirror), and its retrain closure
// rebuilds only this shard. spec is the sharded definition the ensemble
// was built from (spec.Shards is the requested K; the ensemble may have
// collapsed to fewer); rows0 is the table's row count when the training
// began — any rows that arrived since cannot be attributed to a shard
// after the fact, so they are credited to every shard, erring toward an
// eager retrain rather than a silently stale one.
func (e *Engine) trackShard(ms *core.ModelSet, spec *ModelSpec, rows0 int) {
	if ms.Shards <= 1 {
		// A collapsed single-shard ensemble is a plain model; track it like
		// one, with the retrain re-executing the sharded spec at the
		// originally requested K so a refresh re-shards once the column's
		// values diversify enough to support distinct quantile cuts.
		e.trackModel(ms, []string{spec.Table}, rows0, spec.trainOptions(), e.specRetrain(spec))
		return
	}
	resCap, scale := core.DefaultSampleSize, 1.0
	if spec.SampleSize > 0 {
		resCap = spec.SampleSize
	}
	if spec.Scale > 0 {
		scale = spec.Scale
	}
	shardIdx, shards := ms.Shard, ms.Shards
	lo, hi := ms.ShardLo, ms.ShardHi
	baseRows := ms.PhysicalRows(scale)
	retrain := func(ctx context.Context) error {
		return e.retrainShard(ctx, spec, shardIdx, shards, lo, hi)
	}
	e.appendMu.Lock()
	defer e.appendMu.Unlock()
	if e.catalog.Get(ms.Key()) != ms {
		// A concurrent sharded CreateModel replaced the ensemble between the
		// catalog swap and this registration; tracking the dead member
		// would leave a ghost ledger entry retraining a key that no longer
		// serves queries.
		return
	}
	cur := baseRows
	if tb := e.Table(spec.Table); tb != nil {
		if extra := tb.NumRows() - rows0; extra > 0 {
			cur += extra
		}
	}
	e.ledger.RegisterShard(ms.Key(), []string{spec.Table}, baseRows, cur, resCap,
		core.ShardSeed(spec.Seed, shardIdx), spec.XCols[0], shardIdx, shards, lo, hi, retrain)
}

// retrainShard rebuilds one member of a sharded ensemble from the table's
// current rows in the shard's range and swaps it into the catalog — the
// per-shard refresh: the ensemble's clean shards are untouched, and the
// generation bump invalidates cached plans bound to the old member. The
// swap is conditional: if a concurrent sharded CreateModel replaced the
// whole ensemble while this retrain ran (the member's key is gone), the
// result is discarded rather than resurrected as a stray key of a dead
// ensemble. The fresh member re-carries the spec, so a catalog saved after
// per-shard refreshes still round-trips its definition.
func (e *Engine) retrainShard(ctx context.Context, spec *ModelSpec, shardIdx, shards int, lo, hi float64) error {
	tb := e.Table(spec.Table)
	if tb == nil {
		return fmt.Errorf("dbest: table %q is not registered", spec.Table)
	}
	rows0 := tb.NumRows()
	ms, err := core.TrainShardModelContext(ctx, tb, spec.XCols[0], spec.YCol, shardIdx, shards, lo, hi, spec.config())
	if err != nil {
		return err
	}
	ms.Spec = spec.encode()
	if !e.catalog.ReplaceMember(ms) {
		return nil // ensemble replaced mid-retrain; its ledger entry is gone too
	}
	e.trackShard(ms, spec, rows0)
	return nil
}

// ShardStats reports cumulative shard-pruning counters across every query
// the engine has executed: Evaluated counts shard models that ShardMerge
// operators actually integrated, Pruned the ones skipped because their
// range did not overlap the predicate. A healthy narrow-range workload
// over a K-shard ensemble shows Pruned ≈ (K-1)·queries.
type ShardStats struct {
	Evaluated uint64
	Pruned    uint64
}

// ShardStats snapshots the engine's shard-pruning counters.
func (e *Engine) ShardStats() ShardStats {
	return ShardStats{
		Evaluated: e.shardCtrs.Evaluated.Load(),
		Pruned:    e.shardCtrs.Pruned.Load(),
	}
}
