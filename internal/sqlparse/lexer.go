// Package sqlparse implements the SQL front end for the query class DBEst
// supports (§2.2): SELECT lists of aggregate functions (plus grouping
// columns), FROM a table or a two-table equi-join, WHERE conjunctions of
// BETWEEN range predicates, GROUP BY, and the HIVE-style
// PERCENTILE(x, p) aggregate — plus the model-definition statements
// CREATE MODEL, DROP MODEL and SHOW MODELS (statement.go), so training is
// as declarative as querying. It is a hand-written lexer and
// recursive-descent parser over that grammar.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokSymbol // ( ) , = ; . * / %
	tokString // 'single-quoted literal'
)

type token struct {
	kind tokenKind
	text string  // upper-cased for keywords; verbatim for idents
	num  float64 // valid for tokNumber
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"BETWEEN": true, "GROUP": true, "BY": true, "JOIN": true,
	"ON": true, "AS": true, "INNER": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(' || c == ')' || c == ',' || c == '=' || c == ';' || c == '*' || c == '/' || c == '%':
			l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
			l.pos++
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '-' || c == '+' || c == '.' || (c >= '0' && c <= '9'):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		default:
			r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
			if !isIdentStart(r) {
				return nil, fmt.Errorf("sqlparse: unexpected character %q at position %d", r, l.pos)
			}
			l.lexWord()
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
		l.pos++
	}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' {
			l.pos++
			continue
		}
		if (c == '-' || c == '+') && l.pos > start &&
			(l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E') {
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return fmt.Errorf("sqlparse: bad number %q at position %d", text, start)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, num: v, pos: start})
	return nil
}

// lexString scans a single-quoted SQL string literal; ” escapes a quote.
func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var out []byte
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				out = append(out, '\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: string(out), pos: start})
			return nil
		}
		out = append(out, c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated string literal at position %d", start)
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
		return
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
}
