package sqlparse

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseCreateModel(t *testing.T) {
	cases := []struct {
		sql  string
		want CreateModelStmt
	}{
		{
			"CREATE MODEL m ON sales(date; price)",
			CreateModelStmt{Name: "m", Table: "sales", XCols: []string{"date"}, YCol: "price"},
		},
		{
			"create model m2 on sales ( a , b ; y ) sample 5000 seed 7",
			CreateModelStmt{Name: "m2", Table: "sales", XCols: []string{"a", "b"}, YCol: "y",
				Sample: 5000, Seed: 7, HasSeed: true},
		},
		{
			"CREATE MODEL shardy ON t(x; y) SHARDS 16;",
			CreateModelStmt{Name: "shardy", Table: "t", XCols: []string{"x"}, YCol: "y", Shards: 16},
		},
		{
			"CREATE MODEL g ON t(x; y) GROUP BY region",
			CreateModelStmt{Name: "g", Table: "t", XCols: []string{"x"}, YCol: "y", GroupBy: "region"},
		},
		{
			"CREATE MODEL n ON t(x; y) NOMINAL BY channel SAMPLE 100",
			CreateModelStmt{Name: "n", Table: "t", XCols: []string{"x"}, YCol: "y",
				NominalBy: "channel", Sample: 100},
		},
		{
			"CREATE MODEL j ON a(x; y) JOIN b ON k1 = k2",
			CreateModelStmt{Name: "j", Table: "a", XCols: []string{"x"}, YCol: "y",
				Join: &Join{Table: "b", LeftKey: "k1", RightKey: "k2"}},
		},
		{
			"CREATE MODEL js ON a(x; y) JOIN b ON k1 = k2 FRACTION 1/4 SEED -3",
			CreateModelStmt{Name: "js", Table: "a", XCols: []string{"x"}, YCol: "y",
				Join:    &Join{Table: "b", LeftKey: "k1", RightKey: "k2"},
				FracNum: 1, FracDen: 4, Seed: -3, HasSeed: true},
		},
		{
			// Clause order is free.
			"CREATE MODEL o ON t(x; y) SEED 1 SHARDS 2 SAMPLE 10",
			CreateModelStmt{Name: "o", Table: "t", XCols: []string{"x"}, YCol: "y",
				Shards: 2, Sample: 10, Seed: 1, HasSeed: true},
		},
		{
			"CREATE MODEL gk ON t(x; y) GRID 256",
			CreateModelStmt{Name: "gk", Table: "t", XCols: []string{"x"}, YCol: "y", Grid: 256},
		},
		{
			"CREATE MODEL goff ON t(x; y) grid off SAMPLE 100",
			CreateModelStmt{Name: "goff", Table: "t", XCols: []string{"x"}, YCol: "y",
				Grid: -1, Sample: 100},
		},
	}
	for _, c := range cases {
		st, err := ParseStatement(c.sql)
		if err != nil {
			t.Fatalf("%q: %v", c.sql, err)
		}
		if st.CreateModel == nil {
			t.Fatalf("%q: not parsed as CREATE MODEL: %+v", c.sql, st)
		}
		if !reflect.DeepEqual(*st.CreateModel, c.want) {
			t.Errorf("%q:\n got %+v\nwant %+v", c.sql, *st.CreateModel, c.want)
		}
	}
}

func TestParseCreateModelErrors(t *testing.T) {
	cases := []struct{ sql, wantErr string }{
		{"CREATE", "expected MODEL"},
		{"CREATE MODEL", "expected identifier"},
		{"CREATE MODEL m", "expected ON"},
		{"CREATE MODEL m ON t", `expected "("`},
		{"CREATE MODEL m ON t(x)", "between predicate and aggregate"},
		{"CREATE MODEL m ON t(x; y", `expected ")"`},
		{"CREATE MODEL m ON t(; y)", "expected identifier"},
		{"CREATE MODEL m ON t(x; y) SHARDS 0", "positive integer"},
		{"CREATE MODEL m ON t(x; y) SHARDS 2.5", "positive integer"},
		{"CREATE MODEL m ON t(x; y) SAMPLE -1", "positive integer"},
		{"CREATE MODEL m ON t(x; y) SEED 1.5", "SEED wants an integer"},
		{"CREATE MODEL m ON t(x; y) SHARDS 2 SHARDS 4", "duplicate SHARDS"},
		{"CREATE MODEL m ON t(x; y) GRID 0", "positive integer"},
		{"CREATE MODEL m ON t(x; y) GRID -64", "positive integer"},
		{"CREATE MODEL m ON t(x; y) GRID OFF GRID 128", "duplicate GRID"},
		{"CREATE MODEL m ON t(x; y) GROUP BY g GROUP BY h", "duplicate GROUP BY"},
		{"CREATE MODEL m ON t(x; y) JOIN b ON k = k JOIN c ON k = k", "duplicate JOIN"},
		{"CREATE MODEL m ON t(x; y) JOIN b ON k1 = k2 FRACTION 3/2", "FRACTION 3/2 exceeds 1"},
		{"CREATE MODEL m ON t(x; y) JOIN b ON k1 = k2 FRACTION 1", `expected "/"`},
		{"CREATE MODEL m ON t(x; y) trailing", "unexpected trailing input"},
	}
	for _, c := range cases {
		_, err := ParseStatement(c.sql)
		if err == nil {
			t.Fatalf("%q: want error containing %q, got nil", c.sql, c.wantErr)
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%q: error %q does not contain %q", c.sql, err, c.wantErr)
		}
	}
}

func TestParseDropShowStatements(t *testing.T) {
	st, err := ParseStatement("DROP MODEL m1;")
	if err != nil || st.DropModel == nil || st.DropModel.Name != "m1" {
		t.Fatalf("DROP MODEL: %+v, %v", st, err)
	}
	st, err = ParseStatement("show models")
	if err != nil || !st.ShowModels {
		t.Fatalf("SHOW MODELS: %+v, %v", st, err)
	}
	if _, err := ParseStatement("DROP MODEL"); err == nil {
		t.Fatal("DROP MODEL without a name should fail")
	}
	if _, err := ParseStatement("SHOW MODELS please"); err == nil {
		t.Fatal("trailing input after SHOW MODELS should fail")
	}
	if _, err := ParseStatement("DROP TABLE t"); err == nil {
		t.Fatal("DROP TABLE is not a supported statement")
	}
}

// ParseStatement must keep parsing plain SELECT queries, and soft keywords
// must stay usable as identifiers inside them.
func TestParseStatementSelectPassThrough(t *testing.T) {
	st, err := ParseStatement("SELECT AVG(sample) FROM model WHERE shards BETWEEN 1 AND 2")
	if err != nil {
		t.Fatal(err)
	}
	q := st.Select
	if q == nil || q.Table != "model" || q.Aggregates[0].Column != "sample" || q.Where[0].Column != "shards" {
		t.Fatalf("soft keywords must stay valid identifiers in queries: %+v", q)
	}
	if _, err := ParseStatement("SELEC COUNT(*) FROM t"); err == nil {
		t.Fatal("garbage statement should fail")
	}
}
