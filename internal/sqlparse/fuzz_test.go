package sqlparse

import (
	"strings"
	"testing"
)

// fuzzSeeds is the shared seed corpus: every supported query shape, plus
// inputs that historically exercise lexer/parser edges (escaped quotes,
// exponent numbers, unterminated literals, unicode identifiers, trailing
// junk). Checked-in regression inputs live under testdata/fuzz/.
var fuzzSeeds = []string{
	"SELECT COUNT(*) FROM t",
	"SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2",
	"SELECT COUNT(*), SUM(y), AVG(y) FROM t WHERE x BETWEEN -5 AND 1e3",
	"SELECT g, AVG(y) FROM t WHERE x BETWEEN 0 AND 1 GROUP BY g",
	"SELECT AVG(y) FROM a JOIN b ON k1 = k2 WHERE x BETWEEN 1 AND 2",
	"SELECT AVG(y) FROM a INNER JOIN b ON k1 = k2",
	"SELECT PERCENTILE(x, 0.5) FROM t",
	"SELECT PERCENTILE(x, 0.5) FROM t WHERE x BETWEEN 10 AND 20",
	"SELECT AVG(y) FROM t WHERE c = 'web' AND x BETWEEN 1 AND 2",
	"SELECT AVG(y) FROM t WHERE c = 'O''Brien'",
	"SELECT VARIANCE(y), STDDEV(y) FROM t WHERE x BETWEEN 1.5e-3 AND 2.5E+7;",
	"select avg ( y ) from t where x between 100.0 and 200",
	"SELECT AVG(ß) FROM tabelle WHERE größe BETWEEN 1 AND 2",
	"SELECT",
	"SELECT AVG(y FROM t",
	"SELECT AVG(y) FROM t WHERE x BETWEEN 2 AND 1",
	"SELECT AVG(y) FROM t WHERE c = 'unterminated",
	"SELECT AVG(y) FROM t trailing junk",
	"'';''",
	"--",
	"SELECT COUNT(*) FROM t WHERE x BETWEEN .5 AND 5.",
	// Model-definition statements (ParseStatement grammar): every clause,
	// soft keywords as identifiers, and malformed variants.
	"CREATE MODEL m ON sales(date; price)",
	"create model m2 on t ( a , b ; y ) sample 5000 seed -7",
	"CREATE MODEL s ON t(x; y) SHARDS 16;",
	"CREATE MODEL g ON t(x; y) GROUP BY region NOMINAL BY channel",
	"CREATE MODEL j ON a(x; y) JOIN b ON k1 = k2 FRACTION 1/4",
	"CREATE MODEL m ON t(x; y) SHARDS 2 SHARDS 4",
	"CREATE MODEL m ON t(x)",
	"CREATE MODEL m ON t(x; y) SEED 1.5",
	"DROP MODEL m1;",
	"SHOW MODELS",
	"SELECT AVG(sample) FROM model WHERE shards BETWEEN 1 AND 2",
	// Sketch estimators: COUNT(DISTINCT x), TOP k(x) and the CREATE SKETCH
	// statement grammar, plus soft-keyword and malformed variants.
	"SELECT COUNT(DISTINCT x) FROM t",
	"select count ( distinct x ) from t where x between 1 and 2",
	"SELECT COUNT(distinct) FROM t",
	"SELECT TOP 10(x) FROM t",
	"select top 3 ( city ) from t;",
	"SELECT TOP 0(x) FROM t",
	"SELECT top FROM t GROUP BY top",
	"SELECT COUNT(*), COUNT(DISTINCT x), TOP 5(x) FROM t",
	"CREATE SKETCH d ON sales(customer)",
	"create sketch hot on t ( city ) type topk k 20",
	"CREATE SKETCH d2 ON t(x) TYPE HLL PRECISION 12;",
	"CREATE SKETCH d3 ON t(x) TYPE HLL TYPE TOPK",
	"CREATE SKETCH d4 ON t(x) PRECISION 0",
	"CREATE SKETCH nope ON t(x; y)",
	"DROP SKETCH d",
	// WITHIN error-budget clause: soft keyword, percent symbol, spacing and
	// malformed variants (missing %, out-of-range, clause out of position).
	"SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 2 WITHIN 2%",
	"select count(*) from t within 0.5 % ;",
	"SELECT g, AVG(y) FROM t WHERE x BETWEEN 0 AND 1 GROUP BY g WITHIN 10%",
	"SELECT AVG(y) FROM t WITHIN 2",
	"SELECT AVG(y) FROM t WITHIN 0%",
	"SELECT AVG(y) FROM t WITHIN 200%",
	"SELECT AVG(within) FROM t GROUP BY within",
	"SELECT AVG(y) FROM t WITHIN 2% WHERE x BETWEEN 1 AND 2",
}

// FuzzParse: the lexer+parser must never panic, and a query that parses
// must keep parsing after Normalize rewrites it (the round-trip the plan
// cache depends on: Normalize output is re-parsed on a cache miss).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatal("Parse returned nil query with nil error")
		}
		n := Normalize(sql)
		q2, err := Parse(n)
		if err != nil {
			t.Fatalf("normalized form stopped parsing:\n  input: %q\n  normalized: %q\n  err: %v", sql, n, err)
		}
		// Normalization must not change what the query means: same table,
		// same aggregate count, same predicate count.
		if q2.Table != q.Table || len(q2.Aggregates) != len(q.Aggregates) ||
			len(q2.Where) != len(q.Where) || len(q2.Equals) != len(q.Equals) {
			t.Fatalf("normalization changed query structure:\n  input: %q -> %+v\n  normalized: %q -> %+v", sql, q, n, q2)
		}
	})
}

// FuzzParseStatement: the statement grammar (CREATE MODEL / DROP MODEL /
// SHOW MODELS / SELECT) must never panic, must set exactly one statement
// field, and must agree with Parse on the SELECT subset — ParseStatement
// is what the CLI and server front ends feed raw user input to.
func FuzzParseStatement(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := ParseStatement(sql)
		if err != nil {
			return
		}
		n := 0
		if st.Select != nil {
			n++
		}
		if st.CreateModel != nil {
			n++
		}
		if st.CreateSketch != nil {
			n++
		}
		if st.DropModel != nil {
			n++
		}
		if st.ShowModels {
			n++
		}
		if n != 1 {
			t.Fatalf("statement %q set %d fields, want exactly 1: %+v", sql, n, st)
		}
		switch {
		case st.Select != nil:
			// The SELECT subset must match the dedicated query parser.
			if _, err := Parse(sql); err != nil {
				t.Fatalf("ParseStatement accepted a SELECT that Parse rejects: %q: %v", sql, err)
			}
		case st.CreateModel != nil:
			cm := st.CreateModel
			if cm.Name == "" || cm.Table == "" || len(cm.XCols) == 0 || cm.YCol == "" {
				t.Fatalf("CREATE MODEL parsed with missing parts: %q -> %+v", sql, cm)
			}
			if (cm.FracNum != 0 || cm.FracDen != 0) && (cm.Join == nil || cm.FracNum == 0 || cm.FracDen < cm.FracNum) {
				t.Fatalf("CREATE MODEL parsed an invalid fraction: %q -> %+v", sql, cm)
			}
		case st.CreateSketch != nil:
			cs := st.CreateSketch
			if cs.Name == "" || cs.Table == "" || cs.Col == "" {
				t.Fatalf("CREATE SKETCH parsed with missing parts: %q -> %+v", sql, cs)
			}
			if cs.Precision < 0 || cs.K < 0 {
				t.Fatalf("CREATE SKETCH parsed negative parameters: %q -> %+v", sql, cs)
			}
		case st.DropModel != nil:
			if st.DropModel.Name == "" {
				t.Fatalf("DROP MODEL parsed without a name: %q", sql)
			}
		}
	})
}

// FuzzNormalize: Normalize must never panic and must be idempotent — it is
// the plan-cache key function, and a drifting key would split one query
// shape across cache entries.
func FuzzNormalize(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		n := Normalize(sql)
		if n2 := Normalize(n); n2 != n {
			t.Fatalf("Normalize is not idempotent:\n  input: %q\n  once: %q\n  twice: %q", sql, n, n2)
		}
		// A lexable input normalizes with no surrounding whitespace;
		// unlexable input passes through verbatim.
		if n != sql && strings.TrimSpace(n) != n {
			t.Fatalf("Normalize left surrounding whitespace: %q -> %q", sql, n)
		}
	})
}
