package sqlparse

import (
	"fmt"
	"math"
	"strings"
)

// Aggregate is one AF(column) item of the select list. For PERCENTILE the
// HIVE syntax PERCENTILE(col, p) sets P (and HasP). COUNT(DISTINCT col)
// sets Distinct, and the heavy-hitter form TOP <k>(col) sets K.
type Aggregate struct {
	Func     string // upper-case: COUNT, SUM, AVG, VARIANCE, STDDEV, PERCENTILE, TOP
	Column   string // "*" allowed for COUNT(*)
	P        float64
	HasP     bool
	Distinct bool // COUNT(DISTINCT col)
	K        int  // TOP <k>(col) rank count
}

// Join describes FROM a JOIN b ON a.k = b.k.
type Join struct {
	Table    string // right table
	LeftKey  string
	RightKey string
}

// Predicate is col BETWEEN Lb AND Ub.
type Predicate struct {
	Column string
	Lb, Ub float64
}

// Equality is col = 'value', the nominal-categorical selection operator of
// paper §2.3 ("Supporting Categorical Attributes").
type Equality struct {
	Column string
	Value  string
}

// Query is the parsed AST of a supported analytical query.
type Query struct {
	Aggregates []Aggregate
	SelectCols []string // non-aggregate select items (grouping columns)
	Table      string
	Join       *Join
	Where      []Predicate
	Equals     []Equality // nominal equality predicates
	GroupBy    string
	// Tolerance is the WITHIN <p>% error budget as a fraction (WITHIN 2%
	// stores 0.02); the engine serves from a model only when its predicted
	// relative error fits the budget, else falls through to the exact scan.
	Tolerance    float64
	HasTolerance bool
}

// KnownAggregates lists the aggregate function names the engine accepts.
var KnownAggregates = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true,
	"VARIANCE": true, "STDDEV": true, "PERCENTILE": true,
}

type parser struct {
	toks []token
	i    int
}

// Parse parses one supported SQL query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlparse: %s (near position %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return p.errfAt(t, "expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) errfAt(t token, format string, args ...interface{}) error {
	return fmt.Errorf("sqlparse: %s (near position %d)", fmt.Sprintf(format, args...), t.pos)
}

func (p *parser) expectSymbol(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return p.errfAt(t, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", p.errfAt(t, "expected identifier, got %q", t.text)
	}
	return t.text, nil
}

func (p *parser) expectNumber() (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, p.errfAt(t, "expected number, got %q", t.text)
	}
	return t.num, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	var err error
	q.Table, err = p.expectIdent()
	if err != nil {
		return nil, err
	}
	// Optional [INNER] JOIN t2 ON a = b, or comma-join with ON-style WHERE
	// equality not supported (the paper's join queries are explicit joins).
	if p.cur().kind == tokKeyword && (p.cur().text == "JOIN" || p.cur().text == "INNER") {
		if p.cur().text == "INNER" {
			p.next()
		}
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		j := &Join{}
		j.Table, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		j.LeftKey, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		j.RightKey, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
		q.Join = j
	}
	if p.cur().kind == tokKeyword && p.cur().text == "WHERE" {
		p.next()
		for {
			if err := p.parseCondition(q); err != nil {
				return nil, err
			}
			if p.cur().kind == tokKeyword && p.cur().text == "AND" {
				p.next()
				continue
			}
			break
		}
	}
	if p.cur().kind == tokKeyword && p.cur().text == "GROUP" {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		q.GroupBy, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	}
	// Optional WITHIN <p>% error-budget clause. WITHIN is a soft keyword —
	// only the number after it makes this the tolerance clause, so columns
	// named "within" keep working elsewhere in the grammar.
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, "WITHIN") &&
		p.toks[p.i+1].kind == tokNumber {
		p.next()
		v, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("%"); err != nil {
			return nil, err
		}
		if v <= 0 || v > 100 {
			return nil, fmt.Errorf("sqlparse: WITHIN tolerance %v%% outside (0, 100]", v)
		}
		q.Tolerance = v / 100
		q.HasTolerance = true
	}
	if p.cur().kind == tokSymbol && p.cur().text == ";" {
		p.next()
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	if len(q.Aggregates) == 0 {
		return nil, fmt.Errorf("sqlparse: query has no aggregate function")
	}
	// Non-aggregate select columns must match GROUP BY (standard SQL rule
	// restricted to the single grouping attribute DBEst supports).
	for _, c := range q.SelectCols {
		if c != q.GroupBy {
			return nil, fmt.Errorf("sqlparse: select column %q is not the GROUP BY attribute", c)
		}
	}
	return q, nil
}

func (p *parser) parseSelectList(q *Query) error {
	for {
		t := p.cur()
		if t.kind != tokIdent {
			return p.errf("expected select item, got %q", t.text)
		}
		upper := strings.ToUpper(t.text)
		if upper == "TOP" && p.toks[p.i+1].kind == tokNumber {
			// TOP <k>(col): TOP is a soft keyword — only the number after it
			// makes this the heavy-hitter aggregate, so columns named "top"
			// keep working as select items.
			p.next()
			agg, err := p.parseTopCall()
			if err != nil {
				return err
			}
			q.Aggregates = append(q.Aggregates, agg)
		} else if KnownAggregates[upper] {
			p.next()
			agg, err := p.parseAggregateCall(upper)
			if err != nil {
				return err
			}
			q.Aggregates = append(q.Aggregates, agg)
		} else {
			p.next()
			q.SelectCols = append(q.SelectCols, t.text)
		}
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) parseAggregateCall(fn string) (Aggregate, error) {
	agg := Aggregate{Func: fn}
	if err := p.expectSymbol("("); err != nil {
		return agg, err
	}
	t := p.next()
	switch {
	case t.kind == tokIdent && fn == "COUNT" && strings.EqualFold(t.text, "DISTINCT") && p.cur().kind == tokIdent:
		// COUNT(DISTINCT col). DISTINCT is soft: a lone COUNT(distinct)
		// still reads "distinct" as a column name.
		agg.Distinct = true
		agg.Column = p.next().text
	case t.kind == tokIdent:
		agg.Column = t.text
	case t.kind == tokSymbol && t.text == "*" && fn == "COUNT":
		agg.Column = "*"
	default:
		return agg, p.errfAt(t, "expected column in %s(...), got %q", fn, t.text)
	}
	if p.cur().kind == tokSymbol && p.cur().text == "," {
		if fn != "PERCENTILE" {
			return agg, p.errf("%s takes a single argument", fn)
		}
		p.next()
		v, err := p.expectNumber()
		if err != nil {
			return agg, err
		}
		if v < 0 || v > 1 {
			return agg, fmt.Errorf("sqlparse: percentile point %v outside [0, 1]", v)
		}
		agg.P = v
		agg.HasP = true
	} else if fn == "PERCENTILE" {
		return agg, p.errf("PERCENTILE requires a point argument: PERCENTILE(col, p)")
	}
	return agg, p.expectSymbol(")")
}

// parseTopCall parses the heavy-hitter aggregate TOP <k>(col) after the
// TOP word was consumed.
func (p *parser) parseTopCall() (Aggregate, error) {
	agg := Aggregate{Func: "TOP"}
	t := p.next()
	if t.kind != tokNumber || t.num != math.Trunc(t.num) || t.num < 1 || t.num > 1<<20 {
		return agg, p.errfAt(t, "TOP wants a positive integer rank count, got %q", t.text)
	}
	agg.K = int(t.num)
	if err := p.expectSymbol("("); err != nil {
		return agg, err
	}
	col, err := p.expectIdent()
	if err != nil {
		return agg, err
	}
	agg.Column = col
	return agg, p.expectSymbol(")")
}

// parseCondition parses one WHERE conjunct: either a BETWEEN range
// predicate or a nominal equality col = 'value'.
func (p *parser) parseCondition(q *Query) error {
	col, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.cur().kind == tokSymbol && p.cur().text == "=" {
		p.next()
		t := p.next()
		if t.kind != tokString {
			return p.errfAt(t, "expected string literal after %s =", col)
		}
		q.Equals = append(q.Equals, Equality{Column: col, Value: t.text})
		return nil
	}
	pred, err := p.parseBetween(col)
	if err != nil {
		return err
	}
	q.Where = append(q.Where, pred)
	return nil
}

func (p *parser) parseBetween(col string) (Predicate, error) {
	pred := Predicate{Column: col}
	var err error
	if err := p.expectKeyword("BETWEEN"); err != nil {
		return pred, err
	}
	pred.Lb, err = p.expectNumber()
	if err != nil {
		return pred, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return pred, err
	}
	pred.Ub, err = p.expectNumber()
	if err != nil {
		return pred, err
	}
	if pred.Ub < pred.Lb {
		return pred, fmt.Errorf("sqlparse: BETWEEN bounds reversed (%v > %v)", pred.Lb, pred.Ub)
	}
	return pred, nil
}
