package sqlparse

import "testing"

func lexKinds(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	return toks
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]float64{
		"42":      42,
		"-7":      -7,
		"+3.5":    3.5,
		"2.5e3":   2500,
		"1E-2":    0.01,
		"-1.5e+2": -150,
		".25":     0.25,
	}
	for src, want := range cases {
		toks := lexKinds(t, src)
		if toks[0].kind != tokNumber || toks[0].num != want {
			t.Errorf("lex(%q) = %+v, want %v", src, toks[0], want)
		}
	}
	if _, err := lex("1.2.3"); err == nil {
		t.Error("malformed number should fail")
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks := lexKinds(t, "select From WHERE beTWEEN and GROUP by join on as inner")
	for _, tok := range toks[:11] {
		if tok.kind != tokKeyword {
			t.Errorf("token %q should be a keyword", tok.text)
		}
	}
}

func TestLexIdentifiers(t *testing.T) {
	toks := lexKinds(t, "ss_sold_date_sk store.s_number_of_employees _x αβγ")
	for i := 0; i < 4; i++ {
		if toks[i].kind != tokIdent {
			t.Errorf("token %d = %+v, want identifier", i, toks[i])
		}
	}
	if toks[1].text != "store.s_number_of_employees" {
		t.Errorf("qualified ident = %q", toks[1].text)
	}
}

func TestLexSymbols(t *testing.T) {
	toks := lexKinds(t, "( ) , = ; *")
	want := []string{"(", ")", ",", "=", ";", "*"}
	for i, w := range want {
		if toks[i].kind != tokSymbol || toks[i].text != w {
			t.Errorf("token %d = %+v, want %q", i, toks[i], w)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks := lexKinds(t, "'hello' 'it''s' ''")
	want := []string{"hello", "it's", ""}
	for i, w := range want {
		if toks[i].kind != tokString || toks[i].text != w {
			t.Errorf("token %d = %+v, want %q", i, toks[i], w)
		}
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	for _, src := range []string{"@", "#", "`", "$"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestLexEOFPosition(t *testing.T) {
	toks := lexKinds(t, "a b")
	last := toks[len(toks)-1]
	if last.kind != tokEOF || last.pos != 3 {
		t.Errorf("EOF token = %+v", last)
	}
}

func TestLexWhitespaceHandling(t *testing.T) {
	toks := lexKinds(t, "  a\t\nb\r\nc  ")
	if len(toks) != 4 { // a, b, c, EOF
		t.Fatalf("got %d tokens", len(toks))
	}
}
