package sqlparse

import (
	"strconv"
	"strings"
)

// Normalize renders sql in a canonical form suitable for use as a plan-cache
// key: whitespace is collapsed to single separators, keywords and aggregate
// function names are upper-cased, numeric literals are re-formatted
// canonically (so "100.0" and "100" normalize alike) and string literals are
// re-quoted. Identifiers are kept verbatim — the engine treats table and
// column names case-sensitively. Input that does not lex is returned
// verbatim, so callers can still use the result as a (never-hit) key.
// Returning it unmodified — not trimmed — keeps Normalize idempotent:
// stripping whitespace could turn an unlexable input into a lexable one
// (e.g. a trailing form feed, which the lexer rejects but TrimSpace eats),
// and the second application would then produce a different key.
func Normalize(sql string) string {
	toks, err := lex(sql)
	if err != nil {
		return sql
	}
	var b strings.Builder
	b.Grow(len(sql))
	var prev *token // last emitted token; skipped semicolons are invisible
	for i, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if t.kind == tokSymbol && t.text == ";" {
			continue // a semicolon must not split the key space — or, by
			// acting as the spacing predecessor, glue its neighbors together
		}
		if prev != nil && needSpace(*prev, t) {
			b.WriteByte(' ')
		}
		prev = &toks[i]
		switch t.kind {
		case tokKeyword:
			b.WriteString(t.text) // already upper-cased by the lexer
		case tokIdent:
			// Aggregate names fold to upper case only in call position —
			// a column that happens to be named "avg" stays verbatim.
			upper := strings.ToUpper(t.text)
			callPos := toks[i+1].kind == tokSymbol && toks[i+1].text == "("
			if callPos && KnownAggregates[upper] {
				b.WriteString(upper)
			} else {
				b.WriteString(t.text)
			}
		case tokNumber:
			b.WriteString(strconv.FormatFloat(t.num, 'g', -1, 64))
		case tokString:
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			b.WriteByte('\'')
		case tokSymbol:
			b.WriteString(t.text)
		}
	}
	return b.String()
}

// needSpace reports whether the canonical rendering separates prev and cur
// with a space. Punctuation binds tightly; words and literals do not.
func needSpace(prev, cur token) bool {
	tight := func(t token) bool {
		return t.kind == tokSymbol && t.text != "=" && t.text != "*"
	}
	return !tight(prev) && !tight(cur)
}
