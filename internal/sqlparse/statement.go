package sqlparse

import (
	"fmt"
	"math"
	"strings"
)

// Model-definition statements: the declarative front end for creating,
// dropping and listing trained models, mirroring how queries are the
// declarative front end for evaluating them. The grammar is
//
//	CREATE MODEL <name> ON <table> ( x1 [, x2]* ; y )
//	    [JOIN <table2> ON lk = rk [FRACTION num / denom]]
//	    [GROUP BY col] [NOMINAL BY col]
//	    [SHARDS k] [SAMPLE n] [SEED s] [GRID knots | GRID OFF]
//	CREATE SKETCH <name> ON <table> ( x )
//	    [TYPE HLL | TOPK] [PRECISION p] [K k]
//	DROP MODEL <name>        (DROP SKETCH is accepted as an alias)
//	SHOW MODELS
//
// with the option clauses accepted in any order, each at most once.
//
// CREATE, MODEL and the clause heads are soft keywords: they are matched
// case-insensitively in statement position only, so columns or tables
// named "sample" or "shards" keep working everywhere identifiers are
// allowed, and the SELECT grammar is untouched.

// CreateModelStmt is the parsed CREATE MODEL statement. Zero values of the
// optional fields mean "not specified".
type CreateModelStmt struct {
	Name      string
	Table     string
	XCols     []string
	YCol      string
	Join      *Join  // non-nil for join sources
	FracNum   uint64 // hash-band keep ratio for sampled joins (0/0 = full)
	FracDen   uint64
	GroupBy   string
	NominalBy string
	Shards    int
	Sample    int
	Seed      int64
	HasSeed   bool
	// Grid is the evaluation-grid base knot budget: 0 = not specified
	// (engine default), positive = explicit budget, -1 = GRID OFF.
	Grid int
}

// CreateSketchStmt is the parsed CREATE SKETCH statement. Zero values of
// the optional fields mean "not specified" (engine defaults apply).
type CreateSketchStmt struct {
	Name      string
	Table     string
	Col       string
	Type      string // TYPE clause verbatim ("HLL", "TOPK"); "" = default
	Precision int    // HLL register precision
	K         int    // TOP-K slot count
}

// DropModelStmt is the parsed DROP MODEL statement; Name addresses a model
// by its spec name or catalog key. DROP SKETCH parses to the same
// statement — sketches live in the same catalog namespace.
type DropModelStmt struct {
	Name string
}

// Statement is one parsed top-level statement: exactly one field is set.
type Statement struct {
	Select       *Query
	CreateModel  *CreateModelStmt
	CreateSketch *CreateSketchStmt
	DropModel    *DropModelStmt
	ShowModels   bool
}

// ParseStatement parses one top-level statement: a SELECT query or one of
// the model-definition statements. Plain Parse remains the SELECT-only
// entry point (it is what the plan cache re-parses).
func ParseStatement(src string) (*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	switch {
	case p.peekWord("CREATE"):
		if p.peekWordAt(1, "SKETCH") {
			cs, err := p.parseCreateSketch()
			if err != nil {
				return nil, err
			}
			return &Statement{CreateSketch: cs}, nil
		}
		cm, err := p.parseCreateModel()
		if err != nil {
			return nil, err
		}
		return &Statement{CreateModel: cm}, nil
	case p.peekWord("DROP"):
		dm, err := p.parseDropModel()
		if err != nil {
			return nil, err
		}
		return &Statement{DropModel: dm}, nil
	case p.peekWord("SHOW"):
		if err := p.parseShowModels(); err != nil {
			return nil, err
		}
		return &Statement{ShowModels: true}, nil
	default:
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		return &Statement{Select: q}, nil
	}
}

// peekWord reports whether the current token is the given word, matched
// case-insensitively whether the lexer classified it as a keyword or an
// identifier (soft-keyword matching).
func (p *parser) peekWord(w string) bool {
	t := p.cur()
	return (t.kind == tokIdent || t.kind == tokKeyword) && strings.EqualFold(t.text, w)
}

// peekWordAt is peekWord at a lookahead offset from the current token.
func (p *parser) peekWordAt(off int, w string) bool {
	if p.i+off >= len(p.toks) {
		return false
	}
	t := p.toks[p.i+off]
	return (t.kind == tokIdent || t.kind == tokKeyword) && strings.EqualFold(t.text, w)
}

// acceptWord consumes the current token if it is the given soft keyword.
func (p *parser) acceptWord(w string) bool {
	if p.peekWord(w) {
		p.next()
		return true
	}
	return false
}

// expectWord consumes the given soft keyword or fails.
func (p *parser) expectWord(w string) error {
	if !p.acceptWord(w) {
		return p.errf("expected %s, got %q", w, p.cur().text)
	}
	return nil
}

// expectPosInt consumes a positive integer literal (for SHARDS, SAMPLE and
// FRACTION operands, which count things).
func (p *parser) expectPosInt(what string) (int64, error) {
	t := p.next()
	if t.kind != tokNumber || t.num != math.Trunc(t.num) || t.num < 1 || t.num > math.MaxInt64 {
		return 0, p.errfAt(t, "%s wants a positive integer, got %q", what, t.text)
	}
	return int64(t.num), nil
}

// finishStatement consumes an optional trailing semicolon and requires EOF.
func (p *parser) finishStatement() error {
	if p.cur().kind == tokSymbol && p.cur().text == ";" {
		p.next()
	}
	if p.cur().kind != tokEOF {
		return p.errf("unexpected trailing input %q", p.cur().text)
	}
	return nil
}

// parseCreateModel parses CREATE MODEL name ON table(x...; y) [clauses].
func (p *parser) parseCreateModel() (*CreateModelStmt, error) {
	p.next() // CREATE
	if err := p.expectWord("MODEL"); err != nil {
		return nil, err
	}
	cm := &CreateModelStmt{}
	var err error
	if cm.Name, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	if cm.Table, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.parseModelColumns(cm); err != nil {
		return nil, err
	}
	if err := p.parseModelClauses(cm); err != nil {
		return nil, err
	}
	if err := p.finishStatement(); err != nil {
		return nil, err
	}
	return cm, nil
}

// parseModelColumns parses the column set ( x1 [, x2]* ; y ).
func (p *parser) parseModelColumns(cm *CreateModelStmt) error {
	if err := p.expectSymbol("("); err != nil {
		return err
	}
	for {
		x, err := p.expectIdent()
		if err != nil {
			return err
		}
		cm.XCols = append(cm.XCols, x)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	// Peek instead of expectSymbol: the clearer error must not re-read the
	// token stream after an EOF token was already consumed.
	if p.cur().kind != tokSymbol || p.cur().text != ";" {
		return p.errf("expected ';' between predicate and aggregate columns, got %q", p.cur().text)
	}
	p.next()
	var err error
	if cm.YCol, err = p.expectIdent(); err != nil {
		return err
	}
	return p.expectSymbol(")")
}

// parseModelClauses parses the optional clauses in any order, rejecting
// duplicates.
func (p *parser) parseModelClauses(cm *CreateModelStmt) error {
	for {
		switch {
		case p.peekWord("JOIN"):
			if cm.Join != nil {
				return p.errf("duplicate JOIN clause")
			}
			p.next()
			if err := p.parseJoinClause(cm); err != nil {
				return err
			}
		case p.peekWord("GROUP"):
			if cm.GroupBy != "" {
				return p.errf("duplicate GROUP BY clause")
			}
			p.next()
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			var err error
			if cm.GroupBy, err = p.expectIdent(); err != nil {
				return err
			}
		case p.peekWord("NOMINAL"):
			if cm.NominalBy != "" {
				return p.errf("duplicate NOMINAL BY clause")
			}
			p.next()
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			var err error
			if cm.NominalBy, err = p.expectIdent(); err != nil {
				return err
			}
		case p.peekWord("SHARDS"):
			if cm.Shards != 0 {
				return p.errf("duplicate SHARDS clause")
			}
			p.next()
			k, err := p.expectPosInt("SHARDS")
			if err != nil {
				return err
			}
			cm.Shards = int(k)
		case p.peekWord("SAMPLE"):
			if cm.Sample != 0 {
				return p.errf("duplicate SAMPLE clause")
			}
			p.next()
			n, err := p.expectPosInt("SAMPLE")
			if err != nil {
				return err
			}
			cm.Sample = int(n)
		case p.peekWord("GRID"):
			if cm.Grid != 0 {
				return p.errf("duplicate GRID clause")
			}
			p.next()
			if p.acceptWord("OFF") {
				cm.Grid = -1
				continue
			}
			k, err := p.expectPosInt("GRID")
			if err != nil {
				return err
			}
			cm.Grid = int(k)
		case p.peekWord("SEED"):
			if cm.HasSeed {
				return p.errf("duplicate SEED clause")
			}
			p.next()
			t := p.next()
			if t.kind != tokNumber || t.num != math.Trunc(t.num) {
				return p.errfAt(t, "SEED wants an integer, got %q", t.text)
			}
			cm.Seed = int64(t.num)
			cm.HasSeed = true
		default:
			return nil
		}
	}
}

// parseJoinClause parses table2 ON lk = rk [FRACTION num / denom] after
// the JOIN soft keyword.
func (p *parser) parseJoinClause(cm *CreateModelStmt) error {
	j := &Join{}
	var err error
	if j.Table, err = p.expectIdent(); err != nil {
		return err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return err
	}
	if j.LeftKey, err = p.expectIdent(); err != nil {
		return err
	}
	if err := p.expectSymbol("="); err != nil {
		return err
	}
	if j.RightKey, err = p.expectIdent(); err != nil {
		return err
	}
	cm.Join = j
	if !p.acceptWord("FRACTION") {
		return nil
	}
	num, err := p.expectPosInt("FRACTION")
	if err != nil {
		return err
	}
	if err := p.expectSymbol("/"); err != nil {
		return err
	}
	den, err := p.expectPosInt("FRACTION")
	if err != nil {
		return err
	}
	if uint64(num) > uint64(den) {
		return fmt.Errorf("sqlparse: FRACTION %d/%d exceeds 1", num, den)
	}
	cm.FracNum, cm.FracDen = uint64(num), uint64(den)
	return nil
}

// parseCreateSketch parses CREATE SKETCH name ON table(col) [TYPE t]
// [PRECISION p] [K k], clauses in any order, each at most once.
func (p *parser) parseCreateSketch() (*CreateSketchStmt, error) {
	p.next() // CREATE
	p.next() // SKETCH
	cs := &CreateSketchStmt{}
	var err error
	if cs.Name, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	if cs.Table, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if cs.Col, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekWord("TYPE"):
			if cs.Type != "" {
				return nil, p.errf("duplicate TYPE clause")
			}
			p.next()
			if cs.Type, err = p.expectIdent(); err != nil {
				return nil, err
			}
		case p.peekWord("PRECISION"):
			if cs.Precision != 0 {
				return nil, p.errf("duplicate PRECISION clause")
			}
			p.next()
			n, err := p.expectPosInt("PRECISION")
			if err != nil {
				return nil, err
			}
			cs.Precision = int(n)
		case p.peekWord("K"):
			if cs.K != 0 {
				return nil, p.errf("duplicate K clause")
			}
			p.next()
			n, err := p.expectPosInt("K")
			if err != nil {
				return nil, err
			}
			cs.K = int(n)
		default:
			if err := p.finishStatement(); err != nil {
				return nil, err
			}
			return cs, nil
		}
	}
}

// parseDropModel parses DROP MODEL name (or DROP SKETCH — sketches share
// the model namespace, so the drop path is one).
func (p *parser) parseDropModel() (*DropModelStmt, error) {
	p.next() // DROP
	if !p.acceptWord("MODEL") && !p.acceptWord("SKETCH") {
		return nil, p.errf("expected MODEL or SKETCH, got %q", p.cur().text)
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.finishStatement(); err != nil {
		return nil, err
	}
	return &DropModelStmt{Name: name}, nil
}

// parseShowModels parses SHOW MODELS.
func (p *parser) parseShowModels() error {
	p.next() // SHOW
	if err := p.expectWord("MODELS"); err != nil {
		return err
	}
	return p.finishStatement()
}
