package sqlparse

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseBasicAggregate(t *testing.T) {
	q := mustParse(t, "SELECT AVG(y) FROM t WHERE x BETWEEN 1 AND 5;")
	if len(q.Aggregates) != 1 || q.Aggregates[0].Func != "AVG" || q.Aggregates[0].Column != "y" {
		t.Fatalf("aggregates = %+v", q.Aggregates)
	}
	if q.Table != "t" {
		t.Fatalf("table = %q", q.Table)
	}
	if len(q.Where) != 1 || q.Where[0] != (Predicate{"x", 1, 5}) {
		t.Fatalf("where = %+v", q.Where)
	}
}

func TestParsePaperExamples(t *testing.T) {
	// The exact queries quoted in §2.2 and §2.3 of the paper.
	q := mustParse(t, `SELECT ss_store_sk, SUM(ss_sales_price)
		FROM store_sales
		WHERE ss_sold_date_sk BETWEEN 2450815 AND 2451179
		GROUP BY ss_store_sk;`)
	if q.GroupBy != "ss_store_sk" {
		t.Fatalf("group by = %q", q.GroupBy)
	}
	if len(q.SelectCols) != 1 || q.SelectCols[0] != "ss_store_sk" {
		t.Fatalf("select cols = %v", q.SelectCols)
	}
	if q.Aggregates[0].Func != "SUM" {
		t.Fatalf("agg = %+v", q.Aggregates[0])
	}

	q2 := mustParse(t, "SELECT VARIANCE(x) FROM T WHERE x BETWEEN 0 AND 10")
	if q2.Aggregates[0].Func != "VARIANCE" || q2.Aggregates[0].Column != "x" {
		t.Fatalf("agg = %+v", q2.Aggregates[0])
	}
}

func TestParsePercentile(t *testing.T) {
	q := mustParse(t, "SELECT PERCENTILE(x, 0.95) FROM T;")
	a := q.Aggregates[0]
	if a.Func != "PERCENTILE" || a.Column != "x" || !a.HasP || a.P != 0.95 {
		t.Fatalf("agg = %+v", a)
	}
	if _, err := Parse("SELECT PERCENTILE(x) FROM T"); err == nil {
		t.Fatal("PERCENTILE without point must fail")
	}
	if _, err := Parse("SELECT PERCENTILE(x, 1.5) FROM T"); err == nil {
		t.Fatal("percentile point outside [0,1] must fail")
	}
	if _, err := Parse("SELECT AVG(x, 0.5) FROM T"); err == nil {
		t.Fatal("AVG with two args must fail")
	}
}

func TestParseCountStar(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(*) FROM t WHERE x BETWEEN 0 AND 1")
	if q.Aggregates[0].Column != "*" {
		t.Fatalf("agg = %+v", q.Aggregates[0])
	}
	if _, err := Parse("SELECT SUM(*) FROM t"); err == nil {
		t.Fatal("SUM(*) must fail")
	}
}

func TestParseJoin(t *testing.T) {
	q := mustParse(t, `SELECT COUNT(ss_net_profit), AVG(ss_net_profit)
		FROM store_sales JOIN store ON ss_store_sk = s_store_sk
		WHERE s_number_of_employees BETWEEN 200 AND 250;`)
	if q.Join == nil || q.Join.Table != "store" ||
		q.Join.LeftKey != "ss_store_sk" || q.Join.RightKey != "s_store_sk" {
		t.Fatalf("join = %+v", q.Join)
	}
	if len(q.Aggregates) != 2 {
		t.Fatalf("aggregates = %+v", q.Aggregates)
	}
	q2 := mustParse(t, "SELECT AVG(y) FROM a INNER JOIN b ON a.k = b.k WHERE x BETWEEN 0 AND 1")
	if q2.Join == nil || q2.Join.LeftKey != "a.k" {
		t.Fatalf("inner join = %+v", q2.Join)
	}
}

func TestParseMultiPredicate(t *testing.T) {
	q := mustParse(t, "SELECT AVG(y) FROM t WHERE x1 BETWEEN 1 AND 2 AND x2 BETWEEN 3 AND 4")
	if len(q.Where) != 2 {
		t.Fatalf("where = %+v", q.Where)
	}
	if q.Where[1] != (Predicate{"x2", 3, 4}) {
		t.Fatalf("where[1] = %+v", q.Where[1])
	}
}

func TestParseNumbers(t *testing.T) {
	q := mustParse(t, "SELECT AVG(y) FROM t WHERE x BETWEEN -1.5e2 AND 2.25")
	if q.Where[0].Lb != -150 || q.Where[0].Ub != 2.25 {
		t.Fatalf("where = %+v", q.Where[0])
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q := mustParse(t, "select avg(y) from t where x between 1 and 2 group by g")
	if q.Aggregates[0].Func != "AVG" || q.GroupBy != "g" {
		t.Fatalf("q = %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT y FROM t", // no aggregate
		"SELECT AVG(y) t", // missing FROM
		"SELECT AVG(y) FROM t WHERE x BETWEEN 5 AND 1", // reversed bounds
		"SELECT AVG(y) FROM t WHERE x > 5",             // unsupported operator
		"SELECT AVG(y) FROM t extra",                   // trailing input
		"SELECT AVG(y FROM t",                          // missing paren
		"SELECT AVG(y) FROM t JOIN",                    // incomplete join
		"SELECT AVG(y) FROM t JOIN s ON a b",           // missing =
		"SELECT z, AVG(y) FROM t GROUP BY g",           // select col not group col
		"SELECT AVG(y) FROM t WHERE x BETWEEN one AND 2",
		"SELECT AVG(y) FROM t GROUP g",
		"SELECT @bad FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorMessagesMentionPosition(t *testing.T) {
	_, err := Parse("SELECT AVG(y) FROM t WHERE x BETWEEN 5 AND")
	if err == nil || !strings.Contains(err.Error(), "sqlparse:") {
		t.Fatalf("err = %v", err)
	}
}

func TestQualifiedIdentifiers(t *testing.T) {
	q := mustParse(t, "SELECT AVG(store_sales.ss_net_profit) FROM store_sales WHERE store.s_number_of_employees BETWEEN 200 AND 300")
	if q.Aggregates[0].Column != "store_sales.ss_net_profit" {
		t.Fatalf("column = %q", q.Aggregates[0].Column)
	}
	if q.Where[0].Column != "store.s_number_of_employees" {
		t.Fatalf("pred column = %q", q.Where[0].Column)
	}
}

func TestNoSemicolonOK(t *testing.T) {
	mustParse(t, "SELECT COUNT(y) FROM t WHERE x BETWEEN 0 AND 1")
}
