package sqlparse

import "testing"

func TestNormalizeEquivalentForms(t *testing.T) {
	want := Normalize("SELECT AVG(price) FROM sales WHERE date BETWEEN 100 AND 200")
	equivalents := []string{
		"select avg(price) from sales where date between 100 and 200",
		"SELECT  AVG( price )\n\tFROM sales\n\tWHERE date BETWEEN 100.0 AND 2e2",
		"SELECT AVG(price) FROM sales WHERE date BETWEEN 100 AND 200;",
	}
	for _, sql := range equivalents {
		if got := Normalize(sql); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", sql, got, want)
		}
	}
}

func TestNormalizeDistinguishes(t *testing.T) {
	pairs := [][2]string{
		// Different bounds are different keys.
		{"SELECT AVG(p) FROM s WHERE d BETWEEN 1 AND 2",
			"SELECT AVG(p) FROM s WHERE d BETWEEN 1 AND 3"},
		// Identifiers are case-sensitive.
		{"SELECT AVG(price) FROM sales WHERE d BETWEEN 1 AND 2",
			"SELECT AVG(PRICE) FROM sales WHERE d BETWEEN 1 AND 2"},
		// Different string literals are different keys.
		{"SELECT COUNT(x) FROM s WHERE kind = 'a'",
			"SELECT COUNT(x) FROM s WHERE kind = 'b'"},
		// A column that happens to be named like an aggregate is an
		// identifier, not a function: case stays significant outside call
		// position.
		{"SELECT COUNT(x) FROM s WHERE avg BETWEEN 1 AND 2",
			"SELECT COUNT(x) FROM s WHERE AVG BETWEEN 1 AND 2"},
	}
	for _, p := range pairs {
		if Normalize(p[0]) == Normalize(p[1]) {
			t.Errorf("Normalize collides: %q vs %q", p[0], p[1])
		}
	}
}

func TestNormalizePreservesShapes(t *testing.T) {
	cases := []string{
		"SELECT COUNT(*) FROM t",
		"SELECT PERCENTILE(x, 0.5) FROM t",
		"SELECT SUM(y) FROM a JOIN b ON a.k = b.k WHERE x BETWEEN 1 AND 2",
		"SELECT g, AVG(y) FROM t WHERE x BETWEEN 1 AND 2 GROUP BY g",
		"SELECT COUNT(x) FROM t WHERE kind = 'it''s'",
	}
	for _, sql := range cases {
		n := Normalize(sql)
		if n == "" {
			t.Fatalf("Normalize(%q) = empty", sql)
		}
		// Normalization must be idempotent and the output must still parse
		// to the same query class.
		if again := Normalize(n); again != n {
			t.Errorf("not idempotent: %q -> %q -> %q", sql, n, again)
		}
		if _, err := Parse(n); err != nil {
			t.Errorf("normalized form %q no longer parses: %v", n, err)
		}
	}
}

func TestNormalizeUnlexable(t *testing.T) {
	// Unlexable input comes back verbatim — trimming could turn it into a
	// lexable string and break idempotence (see FuzzNormalize).
	if got := Normalize("  SELECT ? FROM t  "); got != "  SELECT ? FROM t  " {
		t.Errorf("unlexable input should be returned verbatim, got %q", got)
	}
	if got := Normalize("(0\f"); got != "(0\f" {
		t.Errorf("input lexable only after trimming should still return verbatim, got %q", got)
	}
}
