package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbest/internal/exact"
	"dbest/internal/table"
)

// linTable builds a table with x ~ U(0, 100), y = 2x + 10 + noise — smooth
// enough that model error should be small, so the Eq. 1–9 plumbing is what
// is under test.
func linTable(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = 2*xs[i] + 10 + rng.NormFloat64()*2
	}
	tb := table.New("lin")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	return tb
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func trainLin(t *testing.T, tb *table.Table, sampleSize int) *ModelSet {
	t.Helper()
	ms, err := Train(tb, []string{"x"}, "y", &TrainConfig{SampleSize: sampleSize, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func exactVal(t *testing.T, tb *table.Table, af exact.AggFunc, y string, lb, ub, p float64) float64 {
	t.Helper()
	r, err := exact.Query(tb, exact.Request{AF: af, Y: y,
		Predicates: []exact.Range{{Column: "x", Lb: lb, Ub: ub}}, P: p})
	if err != nil {
		t.Fatal(err)
	}
	return r.Value
}

func TestTrainErrors(t *testing.T) {
	tb := linTable(100, 1)
	if _, err := Train(tb, nil, "y", nil); err == nil {
		t.Fatal("want error for no predicate columns")
	}
	if _, err := Train(tb, []string{"nope"}, "y", nil); err == nil {
		t.Fatal("want error for missing x")
	}
	if _, err := Train(tb, []string{"x"}, "nope", nil); err == nil {
		t.Fatal("want error for missing y")
	}
	if _, err := Train(table.New("empty"), []string{"x"}, "y", nil); err == nil {
		t.Fatal("want error for empty table")
	}
	if _, err := Train(tb, []string{"x", "x"}, "y", &TrainConfig{GroupBy: "x"}); err == nil {
		t.Fatal("want error for multivariate GROUP BY")
	}
}

func TestCountMatchesExact(t *testing.T) {
	tb := linTable(50000, 2)
	ms := trainLin(t, tb, 10000)
	for _, iv := range [][2]float64{{10, 30}, {0, 100}, {45, 55}} {
		got, err := ms.EvaluateUni(exact.Count, iv[0], iv[1], false, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := exactVal(t, tb, exact.Count, "y", iv[0], iv[1], 0)
		if re := relErr(got.Value, want); re > 0.05 {
			t.Errorf("COUNT[%v]: got %v, want %v (rel err %v)", iv, got.Value, want, re)
		}
	}
}

func TestSumAvgMatchExact(t *testing.T) {
	tb := linTable(50000, 3)
	ms := trainLin(t, tb, 10000)
	for _, iv := range [][2]float64{{20, 40}, {5, 95}} {
		gotAvg, err := ms.EvaluateUni(exact.Avg, iv[0], iv[1], false, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantAvg := exactVal(t, tb, exact.Avg, "y", iv[0], iv[1], 0)
		if re := relErr(gotAvg.Value, wantAvg); re > 0.03 {
			t.Errorf("AVG[%v]: got %v, want %v (rel err %v)", iv, gotAvg.Value, wantAvg, re)
		}
		gotSum, err := ms.EvaluateUni(exact.Sum, iv[0], iv[1], false, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantSum := exactVal(t, tb, exact.Sum, "y", iv[0], iv[1], 0)
		if re := relErr(gotSum.Value, wantSum); re > 0.06 {
			t.Errorf("SUM[%v]: got %v, want %v (rel err %v)", iv, gotSum.Value, wantSum, re)
		}
	}
}

func TestSumEqualsCountTimesAvg(t *testing.T) {
	// Eq. 7 is literally COUNT × AVG; verify the implementation preserves it.
	tb := linTable(20000, 4)
	ms := trainLin(t, tb, 5000)
	lb, ub := 25.0, 60.0
	cnt, _ := ms.EvaluateUni(exact.Count, lb, ub, false, nil)
	avg, _ := ms.EvaluateUni(exact.Avg, lb, ub, false, nil)
	sum, _ := ms.EvaluateUni(exact.Sum, lb, ub, false, nil)
	if re := relErr(sum.Value, cnt.Value*avg.Value); re > 1e-6 {
		t.Fatalf("SUM %v != COUNT×AVG %v (rel err %v)", sum.Value, cnt.Value*avg.Value, re)
	}
}

func TestVarianceStdDevY(t *testing.T) {
	tb := linTable(50000, 5)
	ms := trainLin(t, tb, 10000)
	lb, ub := 10.0, 90.0
	got, err := ms.EvaluateUni(exact.Variance, lb, ub, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := exactVal(t, tb, exact.Variance, "y", lb, ub, 0)
	// Regression-based variance under-reports the residual noise (E[R²]
	// uses the conditional mean), so tolerance is looser; with y ≈ 2x the
	// structural variance dominates.
	if re := relErr(got.Value, want); re > 0.1 {
		t.Errorf("VARIANCE: got %v, want %v (rel err %v)", got.Value, want, re)
	}
	std, err := ms.EvaluateUni(exact.StdDev, lb, ub, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(std.Value, math.Sqrt(got.Value)); re > 1e-9 {
		t.Errorf("STDDEV %v != sqrt(VARIANCE %v)", std.Value, got.Value)
	}
}

func TestDensityBasedVarianceX(t *testing.T) {
	tb := linTable(50000, 6)
	ms := trainLin(t, tb, 10000)
	lb, ub := 0.0, 100.0
	got, err := ms.EvaluateUni(exact.Variance, lb, ub, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := exactVal(t, tb, exact.Variance, "x", lb, ub, 0)
	// Restricting the KDE to [lb, ub] truncates kernel tails at the domain
	// boundary, pulling mass inward; ~6% variance shrinkage is inherent.
	if re := relErr(got.Value, want); re > 0.10 {
		t.Errorf("VARIANCE_x: got %v, want %v (rel err %v)", got.Value, want, re)
	}
	std, err := ms.EvaluateUni(exact.StdDev, lb, ub, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(std.Value, math.Sqrt(got.Value)); re > 1e-9 {
		t.Errorf("STDDEV_x inconsistent with VARIANCE_x")
	}
	avgX, err := ms.EvaluateUni(exact.Avg, 20, 80, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantAvgX := exactVal(t, tb, exact.Avg, "x", 20, 80, 0)
	if re := relErr(avgX.Value, wantAvgX); re > 0.03 {
		t.Errorf("AVG_x: got %v, want %v", avgX.Value, wantAvgX)
	}
}

func TestPercentile(t *testing.T) {
	tb := linTable(50000, 7)
	ms := trainLin(t, tb, 10000)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		got, err := ms.EvaluateUni(exact.Percentile, math.Inf(-1), math.Inf(1), true, &EvalOptions{P: p})
		if err != nil {
			t.Fatal(err)
		}
		want := exactVal(t, tb, exact.Percentile, "x", -1e18, 1e18, p)
		if math.Abs(got.Value-want) > 2 { // x spans [0,100]; 2% of domain
			t.Errorf("PERCENTILE(%v): got %v, want %v", p, got.Value, want)
		}
	}
	// Conditional percentile within a range.
	got, err := ms.EvaluateUni(exact.Percentile, 20, 60, true, &EvalOptions{P: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got.Value < 35 || got.Value > 45 {
		t.Errorf("conditional median = %v, want ≈ 40", got.Value)
	}
	if _, err := ms.Uni.Percentile(1.5, 0, 1); err == nil {
		t.Fatal("want error for p outside [0,1]")
	}
}

func TestNoSupportRange(t *testing.T) {
	tb := linTable(10000, 8)
	ms := trainLin(t, tb, 2000)
	if _, err := ms.EvaluateUni(exact.Avg, 500, 600, false, nil); err == nil {
		t.Fatal("AVG over empty region should report ErrNoSupport")
	}
	sum, err := ms.EvaluateUni(exact.Sum, 500, 600, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Value != 0 {
		t.Fatalf("SUM over empty region = %v, want 0", sum.Value)
	}
	cnt, err := ms.EvaluateUni(exact.Count, 500, 600, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Value > float64(tb.NumRows())*1e-6 {
		t.Fatalf("COUNT over empty region = %v", cnt.Value)
	}
}

func TestScaleFactor(t *testing.T) {
	// A model trained with Scale=1000 must scale COUNT and SUM by 1000 but
	// leave AVG unchanged — this is how billion-row logical tables are
	// exercised at laptop scale.
	tb := linTable(20000, 9)
	base, err := Train(tb, []string{"x"}, "y", &TrainConfig{SampleSize: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Train(tb, []string{"x"}, "y", &TrainConfig{SampleSize: 5000, Seed: 1, Scale: 1000})
	if err != nil {
		t.Fatal(err)
	}
	lb, ub := 10.0, 50.0
	c1, _ := base.EvaluateUni(exact.Count, lb, ub, false, nil)
	c2, _ := scaled.EvaluateUni(exact.Count, lb, ub, false, nil)
	if re := relErr(c2.Value, c1.Value*1000); re > 1e-9 {
		t.Fatalf("scaled COUNT = %v, want %v", c2.Value, c1.Value*1000)
	}
	a1, _ := base.EvaluateUni(exact.Avg, lb, ub, false, nil)
	a2, _ := scaled.EvaluateUni(exact.Avg, lb, ub, false, nil)
	if re := relErr(a2.Value, a1.Value); re > 1e-9 {
		t.Fatalf("scaled AVG = %v, want %v", a2.Value, a1.Value)
	}
}

func TestModelSizeCompact(t *testing.T) {
	tb := linTable(50000, 10)
	ms := trainLin(t, tb, 10000)
	size := ms.SizeBytes()
	if size == 0 {
		t.Fatal("SizeBytes failed to encode")
	}
	// The defining property of DBEst: the model is much smaller than the
	// sample it was trained from (10k rows × 16 bytes = 160 KB just for the
	// two float columns).
	if size > 600_000 {
		t.Fatalf("model size = %d bytes; expected compact (< 600 KB)", size)
	}
	if ms.NumModels() != 1 {
		t.Fatalf("NumModels = %d", ms.NumModels())
	}
}

func TestKeyFormat(t *testing.T) {
	ms := &ModelSet{Table: "t", XCols: []string{"a", "b"}, YCol: "y", GroupBy: "g"}
	if ms.Key() != "t|a,b|y|g" {
		t.Fatalf("Key = %q", ms.Key())
	}
	if Key("t", []string{"x"}, "y", "") != "t|x|y|" {
		t.Fatalf("Key = %q", Key("t", []string{"x"}, "y", ""))
	}
}

// Property: COUNT is monotone in the range and bounded by N.
func TestCountMonotoneProperty(t *testing.T) {
	tb := linTable(20000, 11)
	ms := trainLin(t, tb, 4000)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lb := rng.Float64() * 50
		w1 := rng.Float64() * 25
		w2 := w1 + rng.Float64()*25
		c1, err1 := ms.EvaluateUni(exact.Count, lb, lb+w1, false, nil)
		c2, err2 := ms.EvaluateUni(exact.Count, lb, lb+w2, false, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return c1.Value <= c2.Value+1e-6 && c2.Value <= ms.N+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: AVG of y=2x+10 over any in-domain window is within a few
// percent of 2·midpoint+10 (the regression must track the trend).
func TestAvgTracksTrendProperty(t *testing.T) {
	tb := linTable(30000, 12)
	ms := trainLin(t, tb, 8000)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lb := 5 + rng.Float64()*70
		ub := lb + 5 + rng.Float64()*20
		if ub > 95 {
			ub = 95
		}
		got, err := ms.EvaluateUni(exact.Avg, lb, ub, false, nil)
		if err != nil {
			return false
		}
		// True E[y | x in window] ≈ 2·E[x|window]+10; window x is ~uniform.
		want := 2*(lb+ub)/2 + 10
		return relErr(got.Value, want) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
