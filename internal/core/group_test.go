package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dbest/internal/exact"
	"dbest/internal/table"
)

// groupTable builds a table with 5 groups of very different sizes: groups
// 0-2 are large (modeled), group 3 is small (raw tuples), group 4 tiny.
// Each group has its own linear y(x) so per-group models must differ.
func groupTable(seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	var xs, ys []float64
	var gs []int64
	add := func(g int64, n int, slope, icept float64) {
		for i := 0; i < n; i++ {
			x := rng.Float64() * 100
			xs = append(xs, x)
			ys = append(ys, slope*x+icept+rng.NormFloat64())
			gs = append(gs, g)
		}
	}
	add(0, 20000, 1, 0)
	add(1, 15000, 2, 5)
	add(2, 10000, -1, 100)
	add(3, 20, 3, 1)
	add(4, 5, 0.5, 2)
	tb := table.New("gt")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	tb.AddIntColumn("g", gs)
	return tb
}

func trainGroupedSet(t *testing.T, tb *table.Table) *ModelSet {
	t.Helper()
	ms, err := Train(tb, []string{"x"}, "y", &TrainConfig{
		SampleSize: 3000, Seed: 1, GroupBy: "g", MinGroupModel: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestGroupedTrainingSplitsModelsAndRaw(t *testing.T) {
	tb := groupTable(1)
	ms := trainGroupedSet(t, tb)
	if len(ms.Groups) != 3 {
		t.Fatalf("modeled groups = %d, want 3", len(ms.Groups))
	}
	if len(ms.Raw) != 2 {
		t.Fatalf("raw groups = %d, want 2", len(ms.Raw))
	}
	if ms.NumModels() != 3 {
		t.Fatalf("NumModels = %d", ms.NumModels())
	}
	// Per-group logical cardinalities must be recorded for scaling.
	if ms.GroupRows[0] != 20000 || ms.GroupRows[3] != 20 {
		t.Fatalf("GroupRows = %v", ms.GroupRows)
	}
}

func TestGroupByAnswersMatchExact(t *testing.T) {
	tb := groupTable(2)
	ms := trainGroupedSet(t, tb)
	lb, ub := 20.0, 80.0
	for _, af := range []exact.AggFunc{exact.Count, exact.Sum, exact.Avg} {
		got, err := ms.EvaluateUni(af, lb, ub, false, nil)
		if err != nil {
			t.Fatalf("%v: %v", af, err)
		}
		want, err := exact.Query(tb, exact.Request{AF: af, Y: "y",
			Predicates: []exact.Range{{Column: "x", Lb: lb, Ub: ub}}, Group: "g"})
		if err != nil {
			t.Fatal(err)
		}
		gotMap := map[int64]float64{}
		for _, ga := range got.Groups {
			gotMap[ga.Group] = ga.Value
		}
		for g, w := range want.Groups {
			gv, ok := gotMap[g]
			if !ok {
				t.Errorf("%v: group %d missing from model answer", af, g)
				continue
			}
			if re := relErr(gv, w); re > 0.15 {
				t.Errorf("%v group %d: got %v, want %v (rel err %v)", af, g, gv, w, re)
			}
		}
	}
}

func TestGroupAnswersSorted(t *testing.T) {
	tb := groupTable(3)
	ms := trainGroupedSet(t, tb)
	got, err := ms.EvaluateUni(exact.Avg, 10, 90, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got.Groups); i++ {
		if got.Groups[i].Group <= got.Groups[i-1].Group {
			t.Fatal("group answers must be sorted by group value")
		}
	}
}

func TestParallelGroupEvalMatchesSequential(t *testing.T) {
	tb := groupTable(4)
	ms := trainGroupedSet(t, tb)
	seq, err := ms.EvaluateUni(exact.Sum, 5, 95, false, &EvalOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ms.EvaluateUni(exact.Sum, 5, 95, false, &EvalOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Groups) != len(par.Groups) {
		t.Fatalf("group counts differ: %d vs %d", len(seq.Groups), len(par.Groups))
	}
	for i := range seq.Groups {
		if seq.Groups[i] != par.Groups[i] {
			t.Fatalf("group %d differs: %+v vs %+v", i, seq.Groups[i], par.Groups[i])
		}
	}
}

func TestRawGroupAggregates(t *testing.T) {
	rg := &RawGroup{
		X: []float64{1, 2, 3, 4, 5},
		Y: []float64{10, 20, 30, 40, 50},
	}
	// Whole range, logical rows = 2× sample (scale 2).
	if v, err := rg.aggregate(exact.Count, 0, 10, false, 0, 10); err != nil || v != 10 {
		t.Fatalf("COUNT = %v, %v", v, err)
	}
	if v, err := rg.aggregate(exact.Sum, 0, 10, false, 0, 10); err != nil || v != 300 {
		t.Fatalf("SUM = %v, %v", v, err)
	}
	if v, err := rg.aggregate(exact.Avg, 0, 10, false, 0, 10); err != nil || v != 30 {
		t.Fatalf("AVG = %v, %v", v, err)
	}
	if v, err := rg.aggregate(exact.Variance, 0, 10, false, 0, 10); err != nil || v != 200 {
		t.Fatalf("VARIANCE = %v, %v", v, err)
	}
	if v, err := rg.aggregate(exact.StdDev, 0, 10, false, 0, 10); err != nil || math.Abs(v-math.Sqrt(200)) > 1e-9 {
		t.Fatalf("STDDEV = %v, %v", v, err)
	}
	if v, err := rg.aggregate(exact.Percentile, 0, 10, false, 0.5, 10); err != nil || v != 30 {
		t.Fatalf("PERCENTILE = %v, %v", v, err)
	}
	// yIsX: aggregate over x values.
	if v, err := rg.aggregate(exact.Avg, 0, 10, true, 0, 10); err != nil || v != 3 {
		t.Fatalf("AVG(x) = %v, %v", v, err)
	}
	// Range filtering.
	if v, err := rg.aggregate(exact.Count, 2, 4, false, 0, 10); err != nil || v != 6 {
		t.Fatalf("COUNT[2,4] = %v, %v (3 rows × scale 2)", v, err)
	}
	// Empty selection.
	if _, err := rg.aggregate(exact.Avg, 100, 200, false, 0, 10); err != ErrNoSupport {
		t.Fatalf("err = %v, want ErrNoSupport", err)
	}
}

func TestGroupsOmittedWhenOutOfRange(t *testing.T) {
	// Group 3's raw x values are random in [0,100]; query far outside.
	tb := groupTable(5)
	ms := trainGroupedSet(t, tb)
	got, err := ms.EvaluateUni(exact.Avg, 200, 300, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Groups) != 0 {
		t.Fatalf("expected no groups, got %d", len(got.Groups))
	}
}

// brokenGroupSet builds a grouped model set by hand: raw groups 1 and 2
// answer normally, while the listed "broken" groups carry zero-valued
// models whose evaluation panics (nil density estimator) — the shape of a
// corrupt deserialized bundle.
func brokenGroupSet(broken ...int64) *ModelSet {
	ms := &ModelSet{
		Table: "t", XCols: []string{"x"}, YCol: "y", GroupBy: "g",
		Raw: map[int64]*RawGroup{
			1: {X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}},
			2: {X: []float64{4, 5, 6}, Y: []float64{40, 50, 60}},
		},
		Groups: map[int64]*UniModel{},
	}
	for _, g := range broken {
		ms.Groups[g] = &UniModel{}
	}
	return ms
}

// TestGroupEvalPartialFailure: failing groups must be reported by label
// while healthy groups evaluate; a panicking group model is contained as
// that group's error instead of crashing the query.
func TestGroupEvalPartialFailure(t *testing.T) {
	ms := brokenGroupSet(7)
	_, err := ms.EvaluateUni(exact.Avg, 0, 10, false, nil)
	if err == nil {
		t.Fatal("want error from broken group")
	}
	msg := err.Error()
	if !strings.Contains(msg, "1 of 3 groups failed") {
		t.Fatalf("err = %q, want failure count", msg)
	}
	if !strings.Contains(msg, "group 7:") || !strings.Contains(msg, "panic") {
		t.Fatalf("err = %q, want group label and contained panic", msg)
	}
}

// TestGroupEvalErrorCapDeterministic: with many failing groups the error
// names the first maxGroupErrors in ascending group order, counts the rest,
// and renders identically across runs and worker schedules.
func TestGroupEvalErrorCapDeterministic(t *testing.T) {
	ms := brokenGroupSet(9, 5, 8, 7, 6)
	var msgs []string
	for _, workers := range []int{1, 8, 8} {
		_, err := ms.EvaluateUni(exact.Avg, 0, 10, false, &EvalOptions{Workers: workers})
		if err == nil {
			t.Fatal("want error from broken groups")
		}
		msgs = append(msgs, err.Error())
	}
	msg := msgs[0]
	if !strings.Contains(msg, "5 of 7 groups failed") {
		t.Fatalf("err = %q, want failure count 5 of 7", msg)
	}
	for _, want := range []string{"group 5:", "group 6:", "group 7:"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("err = %q, want %q (first failures in group order)", msg, want)
		}
	}
	if strings.Contains(msg, "group 8:") || strings.Contains(msg, "group 9:") {
		t.Fatalf("err = %q: must cap at %d labeled groups", msg, maxGroupErrors)
	}
	if !strings.Contains(msg, "and 2 more") {
		t.Fatalf("err = %q, want capped-failure count", msg)
	}
	for i, m := range msgs[1:] {
		if m != msg {
			t.Fatalf("error message not deterministic:\nrun 0: %q\nrun %d: %q", msg, i+1, m)
		}
	}
}

func TestRawGroupPercentileRejectsBadP(t *testing.T) {
	rg := &RawGroup{X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}}
	for _, p := range []float64{-0.5, 1.5} {
		if _, err := rg.aggregate(exact.Percentile, 0, 10, false, p, 3); err == nil {
			t.Fatalf("p = %v: want error, not a panic or a value", p)
		}
	}
}
