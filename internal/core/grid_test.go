package core

import (
	"math"
	"math/rand"
	"testing"

	"dbest/internal/exact"
	"dbest/internal/quadrature"
	"dbest/internal/table"
)

// mixTable builds a bimodal table: two Gaussian clumps of x with a smooth
// nonlinear y — enough structure that mass-refined knots and per-range
// ensemble selection both matter.
func mixTable(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		if rng.Float64() < 0.6 {
			xs[i] = 30 + rng.NormFloat64()*5
		} else {
			xs[i] = 75 + rng.NormFloat64()*3
		}
		ys[i] = 0.05*xs[i]*xs[i] - 1.5*xs[i] + 40 + rng.NormFloat64()*3
	}
	tb := table.New("mix")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	return tb
}

// stripGrid returns a copy of m forced onto the quadrature path.
func stripGrid(m *UniModel) *UniModel {
	c := *m
	c.Grid = nil
	return &c
}

// withTightQuad raises the adaptive rule's budget for the duration of a
// test, so the quadrature baseline converges on the discontinuous D·R
// integrands and the comparison measures the grid's error, not the
// runtime fallback's subdivision cap.
func withTightQuad(t *testing.T) {
	t.Helper()
	old := quadOpts
	quadOpts = &quadrature.Options{AbsTol: 1e-12, RelTol: 1e-9, MaxIter: 4096, InitialPanels: 32}
	t.Cleanup(func() { quadOpts = old })
}

// gridRelErr is the equivalence bound the grid kernel must hold against
// the adaptive rule (the build-time gate is tighter, at gridErrBound).
const gridRelErrBound = 1e-4

// TestGridMatchesQuadrature compares every aggregate function over
// randomized spans between the grid kernel and the quadrature kernel on
// the same trained model.
func TestGridMatchesQuadrature(t *testing.T) {
	for _, tc := range []struct {
		name string
		tb   *table.Table
	}{
		{"linear", linTable(8000, 3)},
		{"bimodal", mixTable(8000, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			withTightQuad(t)
			ms, err := Train(tc.tb, []string{"x"}, "y", &TrainConfig{SampleSize: 1000, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			m := ms.Uni
			if !m.HasGrid() {
				t.Fatal("training did not build a validated grid")
			}
			q := stripGrid(m)
			lo, hi := m.D.Support()
			rng := rand.New(rand.NewSource(99))
			afs := []exact.AggFunc{exact.Count, exact.Sum, exact.Avg,
				exact.Variance, exact.StdDev, exact.Percentile}
			trials := 12
			if testing.Short() {
				trials = 3 // the tight-quadrature baseline dominates runtime
			}
			for trial := 0; trial < trials; trial++ {
				width := (hi - lo) * (0.02 + 0.5*rng.Float64())
				lb := lo + rng.Float64()*(hi-lo-width)
				ub := lb + width
				if m.D.Mass(lb, ub) < 0.01 {
					continue // tiny-mass spans answer ErrNoSupport anyway
				}
				p := 0.1 + 0.8*rng.Float64()
				for _, af := range afs {
					for _, yIsX := range []bool{false, true} {
						if af == exact.Percentile && yIsX {
							continue
						}
						got, gerr := m.Aggregate(af, lb, ub, yIsX, p)
						want, werr := q.Aggregate(af, lb, ub, yIsX, p)
						if (gerr == nil) != (werr == nil) {
							t.Fatalf("%v yIsX=%v [%g,%g]: grid err %v vs quad err %v",
								af, yIsX, lb, ub, gerr, werr)
						}
						if gerr != nil {
							continue
						}
						scale := math.Max(math.Abs(want), math.Abs(hi-lo))
						if af == exact.Count {
							scale = math.Max(math.Abs(want), 1)
						}
						if rel := math.Abs(got - want); rel/scale > gridRelErrBound {
							t.Errorf("%v yIsX=%v [%g,%g]: grid %g vs quad %g (rel %g)",
								af, yIsX, lb, ub, got, want, rel/scale)
						}
					}
				}
			}
		})
	}
}

// TestGridPartialMatchesQuadrature compares the shard-mergeable moment
// triples between kernels.
func TestGridPartialMatchesQuadrature(t *testing.T) {
	withTightQuad(t)
	tb := mixTable(8000, 11)
	ms, err := Train(tb, []string{"x"}, "y", &TrainConfig{SampleSize: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := ms.Uni
	if !m.HasGrid() {
		t.Fatal("training did not build a validated grid")
	}
	q := stripGrid(m)
	rng := rand.New(rand.NewSource(12))
	lo, hi := m.D.Support()
	for trial := 0; trial < 10; trial++ {
		width := (hi - lo) * (0.05 + 0.4*rng.Float64())
		lb := lo + rng.Float64()*(hi-lo-width)
		ub := lb + width
		for _, yIsX := range []bool{false, true} {
			gp, gerr := m.Partial(lb, ub, yIsX, true, true)
			qp, qerr := q.Partial(lb, ub, yIsX, true, true)
			if gerr != nil || qerr != nil {
				t.Fatalf("partial errors: grid %v quad %v", gerr, qerr)
			}
			if gp.Support != qp.Support {
				t.Fatalf("support mismatch: grid %v quad %v", gp.Support, qp.Support)
			}
			if !gp.Support {
				continue
			}
			for _, pair := range [][2]float64{{gp.Count, qp.Count}, {gp.Sum, qp.Sum}, {gp.SumSq, qp.SumSq}} {
				scale := math.Max(math.Abs(pair[1]), m.N)
				if math.Abs(pair[0]-pair[1])/scale > gridRelErrBound {
					t.Errorf("yIsX=%v [%g,%g]: partial grid %g vs quad %g", yIsX, lb, ub, pair[0], pair[1])
				}
			}
		}
	}
}

// TestGridDisabled verifies the GridKnots < 0 escape hatch (the A/B
// baseline) and the default-on behavior.
func TestGridDisabled(t *testing.T) {
	tb := linTable(5000, 8)
	off, err := Train(tb, []string{"x"}, "y", &TrainConfig{SampleSize: 2000, Seed: 1, GridKnots: -1})
	if err != nil {
		t.Fatal(err)
	}
	if off.Uni.HasGrid() {
		t.Fatal("GridKnots -1 still built a grid")
	}
	if off.EvalKernel() != "quad" {
		t.Fatalf("EvalKernel = %q, want quad", off.EvalKernel())
	}
	on, err := Train(tb, []string{"x"}, "y", &TrainConfig{SampleSize: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !on.Uni.HasGrid() {
		t.Fatal("default training did not build a grid")
	}
	if on.EvalKernel() != "grid" {
		t.Fatalf("EvalKernel = %q, want grid", on.EvalKernel())
	}
	if on.Uni.Grid.MaxRelErr > gridErrBound {
		t.Fatalf("validated grid reports MaxRelErr %g above the bound %g",
			on.Uni.Grid.MaxRelErr, gridErrBound)
	}
	if kn := len(on.Uni.Grid.Knots); kn < DefaultGridKnots/2 {
		t.Fatalf("default grid has %d knots, want at least %d", kn, DefaultGridKnots/2)
	}
}

// TestGridCustomKnots verifies the base knot budget flows through: the
// knot vector is budget-many base knots plus the ensemble's breakpoints,
// so a larger budget yields a strictly denser grid over the same model.
func TestGridCustomKnots(t *testing.T) {
	tb := linTable(5000, 9)
	small, err := Train(tb, []string{"x"}, "y", &TrainConfig{SampleSize: 2000, Seed: 1, GridKnots: 64})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Train(tb, []string{"x"}, "y", &TrainConfig{SampleSize: 2000, Seed: 1, GridKnots: 1024})
	if err != nil {
		t.Fatal(err)
	}
	gs, gl := small.Uni.Grid, large.Uni.Grid
	if !gs.Valid() || !gl.Valid() {
		t.Fatal("explicit knot budgets did not build grids")
	}
	if len(gs.Knots) >= len(gl.Knots) {
		t.Fatalf("budget 64 produced %d knots, budget 1024 produced %d — want the latter denser",
			len(gs.Knots), len(gl.Knots))
	}
}

// TestGridCounters verifies the kernel counters move on the expected paths.
func TestGridCounters(t *testing.T) {
	tb := linTable(5000, 10)
	on, err := Train(tb, []string{"x"}, "y", &TrainConfig{SampleSize: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ResetEvalCounters()
	if _, err := on.Uni.Sum(20, 60); err != nil {
		t.Fatal(err)
	}
	c := ReadEvalCounters()
	if c.GridHits == 0 || c.GridFallbacks != 0 {
		t.Fatalf("grid-path counters = %+v, want hits > 0 and no fallbacks", c)
	}
	ResetEvalCounters()
	if _, err := stripGrid(on.Uni).Sum(20, 60); err != nil {
		t.Fatal(err)
	}
	c = ReadEvalCounters()
	if c.GridFallbacks == 0 || c.GridHits != 0 {
		t.Fatalf("quad-path counters = %+v, want fallbacks > 0 and no hits", c)
	}
	ResetEvalCounters()
}
