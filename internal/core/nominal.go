package core

import (
	"context"
	"fmt"
	"time"

	"dbest/internal/exact"
	"dbest/internal/sample"
	"dbest/internal/table"
)

// Nominal categorical support (paper §2.3, "Supporting Categorical
// Attributes"): for nominal attributes "there is no simple way to transfer
// the values to meaningful numbers", so DBEst keeps one (D, R) model pair
// per nominal value, exactly like its GROUP BY treatment, and answers
// queries of the form
//
//	SELECT AF(y) FROM t WHERE z = 'value' AND x BETWEEN lb AND ub
//
// from the model trained on that value's rows.

// TrainNominal builds a ModelSet holding one model pair (xcol → ycol) per
// distinct value of the String column nominalBy. cfg.SampleSize applies per
// value; values whose sample is below cfg.MinGroupModel keep raw tuples.
func TrainNominal(tb *table.Table, xcol, ycol, nominalBy string, cfg *TrainConfig) (*ModelSet, error) {
	return TrainNominalContext(context.Background(), tb, xcol, ycol, nominalBy, cfg)
}

// TrainNominalContext is TrainNominal with cancellation: a canceled ctx
// aborts between per-value model fits and returns the context's error.
func TrainNominalContext(ctx context.Context, tb *table.Table, xcol, ycol, nominalBy string, cfg *TrainConfig) (*ModelSet, error) {
	c := cfg.withDefaults()
	if tb.NumRows() == 0 {
		return nil, fmt.Errorf("core: table %s is empty", tb.Name)
	}
	for _, col := range []string{xcol, ycol} {
		if !tb.HasColumn(col) {
			return nil, fmt.Errorf("core: table %s has no column %q", tb.Name, col)
		}
	}
	ms := &ModelSet{
		Table: tb.Name, XCols: []string{xcol}, YCol: ycol,
		NominalBy: nominalBy, N: float64(tb.NumRows()) * c.Scale,
	}
	t0 := time.Now()
	groups, counts, err := sample.ByNominal(tb, nominalBy, c.SampleSize, c.Seed)
	if err != nil {
		return nil, err
	}
	type vsample struct {
		v      string
		xs, ys []float64
	}
	var vss []vsample
	for v, idx := range groups {
		xs, ys, err := gatherPair(tb, xcol, ycol, idx)
		if err != nil {
			return nil, err
		}
		vss = append(vss, vsample{v, xs, ys})
		ms.Stats.SampleRows += len(idx)
	}
	ms.Stats.SampleTime = time.Since(t0)

	t1 := time.Now()
	ms.Nominal = make(map[string]*UniModel, len(vss))
	ms.NominalRows = make(map[string]float64, len(vss))
	ms.NominalRaw = make(map[string]*RawGroup)
	for i, vs := range vss {
		ms.NominalRows[vs.v] = float64(counts[vs.v]) * c.Scale
		if len(vs.xs) < c.MinGroupModel {
			ms.NominalRaw[vs.v] = &RawGroup{X: vs.xs, Y: vs.ys}
			continue
		}
		vcfg := c
		vcfg.Seed = c.Seed + int64(i)
		m, err := trainPair(ctx, xcol, ycol, vs.xs, vs.ys, ms.NominalRows[vs.v], vcfg)
		if err != nil {
			return nil, fmt.Errorf("nominal value %q: %w", vs.v, err)
		}
		ms.Nominal[vs.v] = m
	}
	ms.Stats.TrainTime = time.Since(t1)
	ms.Stats.ModelBytes = ms.SizeBytes()
	return ms, nil
}

// EvaluateNominal answers AF over rows with nominalBy = value and the range
// [lb, ub] on the model set's x column.
func (ms *ModelSet) EvaluateNominal(af exact.AggFunc, value string, lb, ub float64, yIsX bool, opts *EvalOptions) (*Answer, error) {
	var o EvalOptions
	if opts != nil {
		o = *opts
	}
	if m, ok := ms.Nominal[value]; ok {
		v, err := m.Aggregate(af, lb, ub, yIsX, o.P)
		if err != nil {
			return nil, err
		}
		ans := &Answer{Value: v}
		ans.stampBounds(m, af, lb, ub)
		return ans, nil
	}
	if rg, ok := ms.NominalRaw[value]; ok {
		v, err := rg.aggregate(af, lb, ub, yIsX, o.P, ms.NominalRows[value])
		if err != nil {
			return nil, err
		}
		return &Answer{Value: v}, nil
	}
	return nil, fmt.Errorf("core: no model for nominal value %q of %s", value, ms.NominalBy)
}

// NominalValues lists the nominal values the set has models or raw tuples
// for.
func (ms *ModelSet) NominalValues() []string {
	out := make([]string, 0, len(ms.Nominal)+len(ms.NominalRaw))
	for v := range ms.Nominal {
		out = append(out, v)
	}
	for v := range ms.NominalRaw {
		out = append(out, v)
	}
	return out
}
