package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"dbest/internal/boost"
	"dbest/internal/exact"
	"dbest/internal/kde"
	"dbest/internal/quadrature"
)

// MultiModel is the model pair for multivariate range predicates (paper
// §2.3, "Supporting Multivariate Selection Operators", Eq. 10): a
// d-dimensional product-kernel density estimator and a multivariate boosted
// regressor over the predicate columns.
type MultiModel struct {
	XCols []string
	YCol  string
	N     float64
	D     *kde.Multivariate
	R     *boost.GradientBoost
}

// Dim returns the number of predicate dimensions.
func (m *MultiModel) Dim() int { return len(m.XCols) }

// Count evaluates the multivariate Eq. 1: N × box mass (closed form for the
// Gaussian product kernel — no quadrature in any dimension).
func (m *MultiModel) Count(lb, ub []float64) (float64, error) {
	if len(lb) != m.Dim() || len(ub) != m.Dim() {
		return 0, fmt.Errorf("core: predicate dimension mismatch: got %d, model has %d", len(lb), m.Dim())
	}
	return m.N * m.D.Mass(lb, ub), nil
}

// Avg evaluates Eq. 10: ∫∫ D·R / ∫∫ D over the box. Tensor-product
// quadrature is implemented for d = 2 (the paper's example); COUNT works in
// any dimension.
func (m *MultiModel) Avg(lb, ub []float64) (float64, error) {
	num, den, err := m.integrals(lb, ub)
	if err != nil {
		return 0, err
	}
	if den < 1e-12 {
		return 0, ErrNoSupport
	}
	return num / den, nil
}

// Sum evaluates the multivariate Eq. 7: N · ∫∫ D·R.
func (m *MultiModel) Sum(lb, ub []float64) (float64, error) {
	num, den, err := m.integrals(lb, ub)
	if err != nil {
		return 0, err
	}
	if den < 1e-12 {
		return 0, nil
	}
	return m.N * num, nil
}

func (m *MultiModel) integrals(lb, ub []float64) (num, den float64, err error) {
	if len(lb) != m.Dim() || len(ub) != m.Dim() {
		return 0, 0, fmt.Errorf("core: predicate dimension mismatch: got %d, model has %d", len(lb), m.Dim())
	}
	if m.Dim() != 2 {
		return 0, 0, fmt.Errorf("core: regression-based multivariate aggregates support 2 dimensions, model has %d", m.Dim())
	}
	// Clip to support per dimension.
	slo, shi := m.D.Support()
	a0, b0 := maxf(lb[0], slo[0]), minf(ub[0], shi[0])
	a1, b1 := maxf(lb[1], slo[1]), minf(ub[1], shi[1])
	if b0 <= a0 || b1 <= a1 {
		return 0, 0, nil
	}
	den = m.D.Mass([]float64{a0, a1}, []float64{b0, b1})
	// A fixed (K15)² tensor rule bounds the quadrature cost: each integrand
	// evaluation is a full KDE sum, so the adaptive nested rule would cost
	// minutes where this costs milliseconds, at accuracy well below model
	// error (the integrand is a smooth product of Gaussians and a bounded
	// step function).
	pt := make([]float64, 2)
	num = quadrature.FixedTensor2D(func(x, y float64) float64 {
		pt[0], pt[1] = x, y
		return m.D.Density(pt) * m.R.Predict(pt)
	}, a0, b0, a1, b1, 2)
	return num, den, nil
}

// Aggregate dispatches the supported multivariate aggregates.
func (m *MultiModel) Aggregate(af exact.AggFunc, lb, ub []float64) (float64, error) {
	switch af {
	case exact.Count:
		return m.Count(lb, ub)
	case exact.Avg:
		return m.Avg(lb, ub)
	case exact.Sum:
		return m.Sum(lb, ub)
	default:
		return 0, fmt.Errorf("core: aggregate %v not supported with multivariate predicates", af)
	}
}

// SizeBytes reports the gob-serialized model size.
func (m *MultiModel) SizeBytes() int {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return 0
	}
	return buf.Len()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
