package core

import (
	"math/rand"
	"testing"

	"dbest/internal/exact"
	"dbest/internal/table"
)

// multiTable: y = x1 + 3·x2 + noise over independent uniforms.
func multiTable(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	ys := make([]float64, n)
	for i := range x1 {
		x1[i] = rng.Float64() * 10
		x2[i] = rng.Float64() * 10
		ys[i] = x1[i] + 3*x2[i] + rng.NormFloat64()*0.5
	}
	tb := table.New("mt")
	tb.AddFloatColumn("x1", x1)
	tb.AddFloatColumn("x2", x2)
	tb.AddFloatColumn("y", ys)
	return tb
}

func trainMultiSet(t *testing.T, tb *table.Table) *ModelSet {
	t.Helper()
	ms, err := Train(tb, []string{"x1", "x2"}, "y", &TrainConfig{SampleSize: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func exactMulti(t *testing.T, tb *table.Table, af exact.AggFunc, lb, ub []float64) float64 {
	t.Helper()
	r, err := exact.Query(tb, exact.Request{AF: af, Y: "y", Predicates: []exact.Range{
		{Column: "x1", Lb: lb[0], Ub: ub[0]},
		{Column: "x2", Lb: lb[1], Ub: ub[1]},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return r.Value
}

func TestMultiCount(t *testing.T) {
	tb := multiTable(40000, 1)
	ms := trainMultiSet(t, tb)
	lb := []float64{2, 3}
	ub := []float64{7, 8}
	got, err := ms.EvaluateMulti(exact.Count, lb, ub)
	if err != nil {
		t.Fatal(err)
	}
	want := exactMulti(t, tb, exact.Count, lb, ub)
	if re := relErr(got.Value, want); re > 0.08 {
		t.Fatalf("multivariate COUNT: got %v, want %v (rel err %v)", got.Value, want, re)
	}
}

func TestMultiAvgSum(t *testing.T) {
	tb := multiTable(40000, 2)
	ms := trainMultiSet(t, tb)
	lb := []float64{1, 2}
	ub := []float64{6, 9}
	gotAvg, err := ms.EvaluateMulti(exact.Avg, lb, ub)
	if err != nil {
		t.Fatal(err)
	}
	wantAvg := exactMulti(t, tb, exact.Avg, lb, ub)
	if re := relErr(gotAvg.Value, wantAvg); re > 0.08 {
		t.Fatalf("multivariate AVG: got %v, want %v (rel err %v)", gotAvg.Value, wantAvg, re)
	}
	gotSum, err := ms.EvaluateMulti(exact.Sum, lb, ub)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := exactMulti(t, tb, exact.Sum, lb, ub)
	if re := relErr(gotSum.Value, wantSum); re > 0.12 {
		t.Fatalf("multivariate SUM: got %v, want %v (rel err %v)", gotSum.Value, wantSum, re)
	}
}

func TestMultiUnsupported(t *testing.T) {
	tb := multiTable(5000, 3)
	ms := trainMultiSet(t, tb)
	lb := []float64{1, 1}
	ub := []float64{5, 5}
	if _, err := ms.EvaluateMulti(exact.Variance, lb, ub); err == nil {
		t.Fatal("multivariate VARIANCE should be unsupported")
	}
	if _, err := ms.EvaluateMulti(exact.Count, []float64{1}, []float64{5}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	if _, err := ms.EvaluateMulti(exact.Avg, []float64{1}, []float64{5}); err == nil {
		t.Fatal("dimension mismatch should error for AVG")
	}
	// Univariate eval on a multivariate-only set must fail cleanly.
	if _, err := ms.EvaluateUni(exact.Count, 0, 1, false, nil); err == nil {
		t.Fatal("univariate eval without Uni model should error")
	}
}

func TestMultiEmptyRegion(t *testing.T) {
	tb := multiTable(5000, 4)
	ms := trainMultiSet(t, tb)
	sum, err := ms.EvaluateMulti(exact.Sum, []float64{100, 100}, []float64{200, 200})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Value != 0 {
		t.Fatalf("SUM over empty box = %v", sum.Value)
	}
	if _, err := ms.EvaluateMulti(exact.Avg, []float64{100, 100}, []float64{200, 200}); err == nil {
		t.Fatal("AVG over empty box should error")
	}
}

func TestMultiModelCompact(t *testing.T) {
	tb := multiTable(30000, 5)
	ms := trainMultiSet(t, tb)
	if ms.Multi == nil {
		t.Fatal("no multivariate model trained")
	}
	if ms.Multi.Dim() != 2 {
		t.Fatalf("Dim = %d", ms.Multi.Dim())
	}
	if size := ms.Multi.SizeBytes(); size == 0 || size > 2_000_000 {
		t.Fatalf("multivariate model size = %d", size)
	}
}
