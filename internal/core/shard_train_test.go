package core

import (
	"math"
	"strings"
	"testing"

	"dbest/internal/datagen"
	"dbest/internal/exact"
	"dbest/internal/shard"
)

func TestTrainShardedEnsemble(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 20000, Seed: 5})
	sets, err := TrainSharded(tb, "ss_sold_date_sk", "ss_sales_price", 4,
		&TrainConfig{SampleSize: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 4 {
		t.Fatalf("got %d shards, want 4", len(sets))
	}
	var totalN float64
	for i, ms := range sets {
		if ms.Shard != i || ms.Shards != 4 || ms.Uni == nil {
			t.Fatalf("shard %d metadata = %+v", i, ms)
		}
		totalN += ms.N
		wantKey := ms.BaseKey() + "@s" + string(rune('0'+i)) + "/4"
		if ms.Key() != wantKey {
			t.Fatalf("shard %d key = %q, want %q", i, ms.Key(), wantKey)
		}
		if !strings.HasPrefix(ms.Key(), "store_sales|ss_sold_date_sk|ss_sales_price|") {
			t.Fatalf("key = %q", ms.Key())
		}
		if i > 0 && sets[i-1].ShardHi != ms.ShardLo {
			t.Fatalf("shard bounds not contiguous: %v vs %v", sets[i-1].ShardHi, ms.ShardLo)
		}
	}
	if int(totalN+0.5) != tb.NumRows() {
		t.Fatalf("shard N sums to %v, want %d", totalN, tb.NumRows())
	}
}

func TestTrainShardedRejectsGroupBy(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 2000, Seed: 5})
	if _, err := TrainSharded(tb, "ss_sold_date_sk", "ss_sales_price", 4,
		&TrainConfig{GroupBy: "ss_store_sk"}); err == nil {
		t.Fatal("want error for GROUP BY sharded training")
	}
}

// TestShardedPartialsMergeToUnshardedAnswer: merging the per-shard partials
// over a range spanning all shards must agree with the exact answer about
// as well as an unsharded model does.
func TestShardedPartialsMergeToUnshardedAnswer(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 30000, Seed: 9})
	sets, err := TrainSharded(tb, "ss_sold_date_sk", "ss_sales_price", 4,
		&TrainConfig{SampleSize: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	lb, ub := 200.0, 1400.0
	ps := make([]shard.Partial, 0, len(sets))
	for _, ms := range sets {
		p, err := ms.Uni.Partial(lb, ub, false, true, true)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	exactRes := func(af exact.AggFunc) float64 {
		r, err := exact.Query(tb, exact.Request{AF: af, Y: "ss_sales_price",
			Predicates: []exact.Range{{Column: "ss_sold_date_sk", Lb: lb, Ub: ub}}})
		if err != nil {
			t.Fatal(err)
		}
		return r.Value
	}
	check := func(name string, got, want, tol float64) {
		t.Helper()
		re := math.Abs(got-want) / math.Abs(want)
		if re > tol {
			t.Fatalf("%s = %v, want %v (rel err %.3f)", name, got, want, re)
		}
	}
	check("COUNT", MergeCountForTest(ps), exactRes(exact.Count), 0.05)
	check("SUM", shard.MergeSum(ps), exactRes(exact.Sum), 0.06)
	avg, ok := shard.MergeAvg(ps)
	if !ok {
		t.Fatal("avg merge reported no support")
	}
	check("AVG", avg, exactRes(exact.Avg), 0.05)
	// VARIANCE/STDDEV are the regression-based Eq. 8 forms (variance of the
	// conditional mean, not of y), so the right baseline is the unsharded
	// model's answer, not the exact engine's.
	uni, err := Train(tb, []string{"ss_sold_date_sk"}, "ss_sales_price",
		&TrainConfig{SampleSize: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wantSD, err := uni.Uni.StdDevY(lb, ub)
	if err != nil {
		t.Fatal(err)
	}
	sd, ok := shard.MergeStdDev(ps)
	if !ok {
		t.Fatal("stddev merge reported no support")
	}
	check("STDDEV", sd, wantSD, 0.25)
}

// MergeCountForTest keeps the test honest about which package owns the
// merge math.
func MergeCountForTest(ps []shard.Partial) float64 { return shard.MergeCount(ps) }

func TestTrainShardModelRetrainsOneShard(t *testing.T) {
	tb := datagen.StoreSales(&datagen.StoreSalesOptions{Rows: 10000, Seed: 3})
	sets, err := TrainSharded(tb, "ss_sold_date_sk", "ss_sales_price", 4,
		&TrainConfig{SampleSize: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ms := sets[2]
	re, err := TrainShardModelContext(t.Context(), tb, "ss_sold_date_sk", "ss_sales_price",
		ms.Shard, ms.Shards, ms.ShardLo, ms.ShardHi, &TrainConfig{SampleSize: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if re.Key() != ms.Key() {
		t.Fatalf("retrained key = %q, want %q", re.Key(), ms.Key())
	}
	// Same data, same seed, same filter: the retrain is a deterministic
	// reproduction of the original shard (same logical row count).
	if re.N != ms.N {
		t.Fatalf("retrained N = %v, want %v", re.N, ms.N)
	}
	if _, err := TrainShardModelContext(t.Context(), tb, "ss_sold_date_sk", "ss_sales_price",
		9, 4, 0, 1, nil); err == nil {
		t.Fatal("want error for out-of-range shard index")
	}
}
