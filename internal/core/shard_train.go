package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dbest/internal/parallel"
	"dbest/internal/sample"
	"dbest/internal/shard"
	"dbest/internal/table"
)

// ShardSeed derives the deterministic sampling/training seed for one shard
// of a sharded ensemble. The ingest ledger's maintained reservoir mirrors
// must derive the same seed to continue a shard's sample stream, so the
// derivation lives here rather than being duplicated.
func ShardSeed(seed int64, shardIdx int) int64 { return seed + int64(shardIdx)*7919 }

// TrainSharded partitions tb's rows into up to shards contiguous range
// shards on xcol (quantile cut points, so shards hold near-equal row
// counts) and trains one independent model pair per shard over a per-shard
// reservoir sample. Heavy value ties can collapse cut points, so the
// returned ensemble may be smaller than requested; with a single resulting
// shard the set is a plain unsharded model. Sharding composes with neither
// GROUP BY nor multivariate predicates.
func TrainSharded(tb *table.Table, xcol, ycol string, shards int, cfg *TrainConfig) ([]*ModelSet, error) {
	return TrainShardedContext(context.Background(), tb, xcol, ycol, shards, cfg)
}

// TrainShardedContext is TrainSharded with cancellation: a canceled ctx
// aborts at the next per-shard fit boundary.
func TrainShardedContext(ctx context.Context, tb *table.Table, xcol, ycol string, shards int, cfg *TrainConfig) ([]*ModelSet, error) {
	c := cfg.withDefaults()
	if c.GroupBy != "" {
		return nil, errors.New("core: sharded training does not support GROUP BY")
	}
	if tb.NumRows() == 0 {
		return nil, fmt.Errorf("core: table %s is empty", tb.Name)
	}
	if !tb.HasColumn(ycol) {
		return nil, fmt.Errorf("core: table %s has no column %q", tb.Name, ycol)
	}
	xs, err := tb.Floats(xcol)
	if err != nil {
		return nil, err
	}
	split, err := shard.Plan(xcol, xs, shards)
	if err != nil {
		return nil, err
	}
	parts := split.Partition(xs)
	sets := make([]*ModelSet, split.K())
	trainErr := parallel.FirstError(split.K(), c.Workers, func(i int) error {
		ms, err := trainShardFromRows(ctx, tb, xcol, ycol, parts[i], i, split.K(), split.Lo(i), split.Hi(i), c)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		sets[i] = ms
		return nil
	})
	if trainErr != nil {
		return nil, trainErr
	}
	return sets, nil
}

// TrainShardModelContext retrains a single member of a sharded ensemble
// from the table's current rows in the shard's range — the per-shard
// refresh primitive: only the dirty shard pays a retrain, the rest of the
// ensemble is untouched. shardIdx/shards/lo/hi must describe the same
// split the ensemble was trained under (edge shards are open-ended).
func TrainShardModelContext(ctx context.Context, tb *table.Table, xcol, ycol string, shardIdx, shards int, lo, hi float64, cfg *TrainConfig) (*ModelSet, error) {
	c := cfg.withDefaults()
	if shardIdx < 0 || shards < 1 || shardIdx >= shards {
		return nil, fmt.Errorf("core: shard %d of %d is out of range", shardIdx, shards)
	}
	xs, err := tb.Floats(xcol)
	if err != nil {
		return nil, err
	}
	var rows []int
	for i, x := range xs {
		if shard.Owns(shardIdx, shards, lo, hi, x) {
			rows = append(rows, i)
		}
	}
	ms, err := trainShardFromRows(ctx, tb, xcol, ycol, rows, shardIdx, shards, lo, hi, c)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", shardIdx, err)
	}
	return ms, nil
}

// trainShardFromRows trains one shard's model pair over a reservoir sample
// of the shard's rows. rows must be in table order: the reservoir is
// offered local stream positions (so the ingest ledger can mirror the
// sampler with the same capacity and ShardSeed) and admissions map back to
// global row indices.
func trainShardFromRows(ctx context.Context, tb *table.Table, xcol, ycol string, rows []int, shardIdx, shards int, lo, hi float64, c TrainConfig) (*ModelSet, error) {
	if len(rows) == 0 {
		return nil, errors.New("core: shard has no rows; reduce the shard count")
	}
	cfg := c
	cfg.Seed = ShardSeed(c.Seed, shardIdx)
	// Shard training fans out across workers; keep each member's grid
	// build sequential to avoid nested oversubscription.
	cfg.Workers = 1

	t0 := time.Now()
	res := sample.NewReservoir(cfg.SampleSize, cfg.Seed)
	for j := range rows {
		res.Offer(j)
	}
	locals := res.Indices()
	idx := make([]int, len(locals))
	for m, lp := range locals {
		idx[m] = rows[lp]
	}
	xsS, ysS, err := gatherPair(tb, xcol, ycol, idx)
	if err != nil {
		return nil, err
	}
	ms := &ModelSet{
		Table: tb.Name, XCols: []string{xcol}, YCol: ycol,
		N:     float64(len(rows)) * cfg.Scale,
		Shard: shardIdx, Shards: shards, ShardLo: lo, ShardHi: hi,
	}
	ms.Stats.SampleTime = time.Since(t0)
	ms.Stats.SampleRows = len(idx)

	t1 := time.Now()
	m, err := trainPair(ctx, xcol, ycol, xsS, ysS, ms.N, cfg)
	if err != nil {
		return nil, err
	}
	ms.Stats.TrainTime = time.Since(t1)
	ms.Uni = m
	ms.Stats.ModelBytes = ms.SizeBytes()
	return ms, nil
}

// PhysicalRows reports the physical base-row count the set was trained
// over (N is the logical count after Scale). It is what the ingest ledger
// tracks staleness against.
func (ms *ModelSet) PhysicalRows(scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	return int(ms.N/scale + 0.5)
}
