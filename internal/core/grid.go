package core

import (
	"math"
	"sort"
	"sync/atomic"

	"dbest/internal/kde"
	"dbest/internal/parallel"
	"dbest/internal/quadrature"
)

// Evaluation grids move the paper's integration cost (§3, Integral
// Evaluation) from query time to train time. Models are immutable between
// retrains, so every integral a range aggregate needs — ∫D·R, ∫D·R², ∫x·D,
// ∫x²·D and the CDF — can be tabulated once as a prefix-integral table over
// a knot grid spanning the density support. A range query then evaluates
// I(ub) − I(lb) with two interpolated lookups instead of an adaptive
// (G7, K15) quadrature run, and PERCENTILE inverts the cumulative-density
// table instead of bisecting the O(bins) CDF 200 times.
//
// The knot vector is the union of a base grid (half uniform over the
// support, half refined where the binned density carries mass) and every
// breakpoint of the regression ensemble's constituents. Tree-based
// constituents are piecewise constant and the piecewise-linear constituent
// is linear between breakpoints, so within any panel every R_c is exactly
// linear: R_c(x) = a·x + b. That turns the regression integrals into linear
// combinations of the density tables —
//
//	∫ D·R_c   = a·Δ(∫x·D)  + b·Δ(CDF)
//	∫ D·R_c²  = a²·Δ(∫x²·D) + 2ab·Δ(∫x·D) + b²·Δ(CDF)
//
// — so the grid stores only per-panel (a, b) plus prefix values at knots,
// and partial panels reuse the same interpolated CDF and x-moment lookups
// the density path uses. AVG of a range where the ensemble predicts a
// constant is exactly that constant: numerator and denominator share ΔCDF.
//
// The adaptive rule remains the runtime fallback: a grid that fails
// build-time validation (a constituent that is not piecewise linear over
// the panels, a degenerate support) is discarded and the model keeps
// answering through quadrature.

// DefaultGridKnots is the base knot budget used when TrainConfig.GridKnots
// is 0. Ensemble breakpoints are added on top; at default training sizes a
// grid costs on the order of 100 KB per model — within the paper's "a few
// 100s KBs" model budget.
const DefaultGridKnots = 512

// maxGridKnots bounds the knot vector against pathological breakpoint
// counts; beyond it breakpoints are thinned evenly (validation then decides
// whether the thinned grid is still accurate enough to keep).
const maxGridKnots = 32768

// gridErrBound gates build-time validation: the worst relative error of
// (a) the interpolated CDF against the closed-form CDF at panel midpoints
// and (b) the per-panel linear reconstruction of ∫D·R_c against a fused
// Gauss–Kronrod evaluation of the same panel. Both are ~1e-15 when the
// panel model holds, so anything near the bound means a constituent the
// grid cannot represent.
const gridErrBound = 1e-8

// Process-wide evaluation-kernel counters (exposed as /stats fields).
// gridHits/gridFallbacks count model-path integral evaluations answered by
// a grid vs by adaptive quadrature; quadNonconverged counts quadrature runs
// that exhausted their subdivision budget (ErrMaxIter) and had their best
// estimate silently accepted — previously invisible, now observable.
var (
	gridHits         atomic.Uint64
	gridFallbacks    atomic.Uint64
	quadNonconverged atomic.Uint64
)

// EvalCounters is a snapshot of the process-wide evaluation-kernel
// counters.
type EvalCounters struct {
	GridHits         uint64
	GridFallbacks    uint64
	QuadNonconverged uint64
}

// ReadEvalCounters snapshots the evaluation-kernel counters.
func ReadEvalCounters() EvalCounters {
	return EvalCounters{
		GridHits:         gridHits.Load(),
		GridFallbacks:    gridFallbacks.Load(),
		QuadNonconverged: quadNonconverged.Load(),
	}
}

// ResetEvalCounters zeroes the evaluation-kernel counters (tests and A/B
// benchmarks).
func ResetEvalCounters() {
	gridHits.Store(0)
	gridFallbacks.Store(0)
	quadNonconverged.Store(0)
}

// EvalGrid is a model's precomputed prefix-integral table set. The
// regression tables are per ensemble constituent — the ensemble selects a
// constituent per query range, so baking a single R into the grid would
// silently change selection semantics; instead the lookup picks the tables
// of the constituent ForRange resolves to.
//
// The density tables interpolate with cubic Hermite segments whose knot
// derivatives are exact (D for CumD, x·D for CumXD, x²·D for CumX2D):
// O(h⁴) between knots, exact at knots. CumD is anchored by the closed-form
// CDF at every knot, so the CDF tables carry no accumulated quadrature
// error.
type EvalGrid struct {
	Knots  []float64 // strictly increasing, spanning the density support
	DVal   []float64 // D(knot): derivative of CumD
	CumD   []float64 // closed-form CDF at knots
	CumXD  []float64 // prefix ∫ x·D
	CumX2D []float64 // prefix ∫ x²·D

	// Per-constituent panel coefficients (length len(Knots)−1): within
	// panel k, R_c(x) = RA[c][k]·x + RB[c][k].
	RA [][]float64
	RB [][]float64
	// Per-constituent prefix integrals at knots.
	CumDR  [][]float64 // prefix ∫ D·R_c
	CumDR2 [][]float64 // prefix ∫ D·R_c²

	// MaxRelErr is the worst relative error observed during build-time
	// validation.
	MaxRelErr float64
}

// Valid reports whether the grid can answer lookups. A nil receiver is
// valid to query (models from old catalogs decode with a nil grid).
func (g *EvalGrid) Valid() bool {
	return g != nil && len(g.Knots) >= 2 && len(g.CumD) == len(g.Knots)
}

// SizeBytes estimates the grid's in-memory table footprint.
func (g *EvalGrid) SizeBytes() int {
	if g == nil {
		return 0
	}
	per := 5 + 4*len(g.RA)
	return 8 * per * len(g.Knots)
}

// segment locates the panel containing x: the largest k with Knots[k] <= x,
// clamped to [0, len(Knots)-2].
func (g *EvalGrid) segment(x float64) int {
	k := sort.SearchFloat64s(g.Knots, x) - 1
	if k < 0 {
		k = 0
	}
	if k > len(g.Knots)-2 {
		k = len(g.Knots) - 2
	}
	return k
}

// hermite evaluates the cubic Hermite interpolant of the cumulative table
// cum at x, with exact knot derivatives d0, d1 supplied by the caller.
func hermite(x0, x1, c0, c1, d0, d1, x float64) float64 {
	h := x1 - x0
	if h <= 0 {
		return c0
	}
	t := (x - x0) / h
	t2 := t * t
	t3 := t2 * t
	return (2*t3-3*t2+1)*c0 + (t3-2*t2+t)*h*d0 + (-2*t3+3*t2)*c1 + (t3-t2)*h*d1
}

// momentXOnSegment interpolates the x-moment prefix (power 1 or 2) on panel
// k, using the exact integrand values at the knots as derivatives.
func (g *EvalGrid) momentXOnSegment(power, k int, x float64) float64 {
	x0, x1 := g.Knots[k], g.Knots[k+1]
	if power == 1 {
		return hermite(x0, x1, g.CumXD[k], g.CumXD[k+1], x0*g.DVal[k], x1*g.DVal[k+1], x)
	}
	return hermite(x0, x1, g.CumX2D[k], g.CumX2D[k+1], x0*x0*g.DVal[k], x1*x1*g.DVal[k+1], x)
}

// momentXAt interpolates the x-moment prefix at x, clamped to the knot span
// (the integrand vanishes outside the support).
func (g *EvalGrid) momentXAt(power int, x float64) float64 {
	n := len(g.Knots)
	cum := g.CumXD
	if power == 2 {
		cum = g.CumX2D
	}
	if x <= g.Knots[0] {
		return cum[0]
	}
	if x >= g.Knots[n-1] {
		return cum[n-1]
	}
	return g.momentXOnSegment(power, g.segment(x), x)
}

// cdfAt interpolates the CDF at x with Fritsch–Carlson-limited derivatives,
// which keeps the interpolant monotone within each panel — the property the
// percentile inversion leans on.
func (g *EvalGrid) cdfAt(x float64) float64 {
	n := len(g.Knots)
	if x <= g.Knots[0] {
		return g.CumD[0]
	}
	if x >= g.Knots[n-1] {
		return g.CumD[n-1]
	}
	return g.cdfOnSegment(g.segment(x), x)
}

// cdfOnSegment evaluates the monotone CDF interpolant on panel k.
func (g *EvalGrid) cdfOnSegment(k int, x float64) float64 {
	return fcHermiteCDF(g.Knots[k], g.Knots[k+1], g.CumD[k], g.CumD[k+1], g.DVal[k], g.DVal[k+1], x)
}

// fcHermiteCDF evaluates the cubic Hermite CDF interpolant on one panel
// with Fritsch–Carlson-limited derivatives — endpoint slopes clamped to
// [0, 3·secant], the sufficient condition for a monotone interpolant.
func fcHermiteCDF(x0, x1, c0, c1, dv0, dv1, x float64) float64 {
	h := x1 - x0
	if h <= 0 || c1 <= c0 {
		return c0
	}
	secant := (c1 - c0) / h
	d0 := math.Min(math.Max(dv0, 0), 3*secant)
	d1 := math.Min(math.Max(dv1, 0), 3*secant)
	return hermite(x0, x1, c0, c1, d0, d1, x)
}

// Mass returns ∫_lb^ub D from the cumulative-density table, clamping
// reversed bounds to zero mass like the closed-form CDF does.
func (g *EvalGrid) Mass(lb, ub float64) float64 {
	if ub <= lb {
		return 0
	}
	m := g.cdfAt(ub) - g.cdfAt(lb)
	if m < 0 {
		return 0
	}
	return m
}

// CDF returns the interpolated cumulative distribution at x.
func (g *EvalGrid) CDF(x float64) float64 { return g.cdfAt(x) }

// MomentX returns ∫_lb^ub x^power·D for power 1 or 2.
func (g *EvalGrid) MomentX(power int, lb, ub float64) float64 {
	return g.momentXAt(power, ub) - g.momentXAt(power, lb)
}

// Constituents returns how many per-constituent regression tables the grid
// carries.
func (g *EvalGrid) Constituents() int { return len(g.CumDR) }

// momentDRAt evaluates the ∫D·R_c^power prefix at x: the knot prefix of
// the containing panel plus the panel's linear-R contribution, expressed
// through the shared CDF and x-moment interpolants. Using the same cdfAt
// the Mass denominator uses keeps ratios of a constant prediction exact.
func (g *EvalGrid) momentDRAt(c, power int, x float64) float64 {
	n := len(g.Knots)
	cum := g.CumDR[c]
	if power == 2 {
		cum = g.CumDR2[c]
	}
	if x <= g.Knots[0] {
		return cum[0]
	}
	if x >= g.Knots[n-1] {
		return cum[n-1]
	}
	k := g.segment(x)
	a, b := g.RA[c][k], g.RB[c][k]
	dd := g.cdfOnSegment(k, x) - g.CumD[k]
	dxd := g.momentXOnSegment(1, k, x) - g.CumXD[k]
	if power == 1 {
		return cum[k] + a*dxd + b*dd
	}
	dx2d := g.momentXOnSegment(2, k, x) - g.CumX2D[k]
	return cum[k] + a*a*dx2d + 2*a*b*dxd + b*b*dd
}

// MomentDR returns ∫_lb^ub D·R_c^power for constituent c and power 1 or 2.
func (g *EvalGrid) MomentDR(c, power int, lb, ub float64) float64 {
	return g.momentDRAt(c, power, ub) - g.momentDRAt(c, power, lb)
}

// InvertCDF solves CDF(x) = p over the knot span: a binary search over the
// cumulative-density table finds the panel, then bisection on the monotone
// panel interpolant refines the root — O(log knots) cheap cubic
// evaluations, versus 200 O(bins) closed-form CDF sums for the bisection
// path it replaces.
func (g *EvalGrid) InvertCDF(p float64) float64 {
	n := len(g.Knots)
	if p <= g.CumD[0] {
		return g.Knots[0]
	}
	if p >= g.CumD[n-1] {
		return g.Knots[n-1]
	}
	// CumD is non-decreasing: find the first knot with CumD >= p.
	k := sort.Search(n, func(i int) bool { return g.CumD[i] >= p }) - 1
	if k < 0 {
		k = 0
	}
	if k > n-2 {
		k = n - 2
	}
	lo, hi := g.Knots[k], g.Knots[k+1]
	if g.CumD[k+1] <= g.CumD[k] {
		return lo // flat panel: any point matches
	}
	for i := 0; i < 64 && hi-lo > 1e-12*math.Max(1, math.Abs(hi)+math.Abs(lo)); i++ {
		mid := 0.5 * (lo + hi)
		if g.cdfOnSegment(k, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// breakpointer is the optional Regressor capability the grid builder uses
// to align panels with prediction discontinuities. A constituent that does
// not implement it (or whose breakpoints were thinned by maxGridKnots) is
// not necessarily linear within panels — validation then decides whether
// the grid still holds up or the model stays on quadrature.
type breakpointer interface{ Breakpoints() []float64 }

// gridKnots places the base knots over the density support — half uniform
// (so sparse regions are still covered) and half at equal increments of
// binned mass (so panels shrink where D concentrates) — then merges the
// ensemble breakpoints in. Returns nil when the support is degenerate.
func gridKnots(d *kde.Binned, n int, jumps []float64) []float64 {
	lo, hi := d.Support()
	if !(hi > lo) || n < 8 {
		return nil
	}
	half := n / 2
	pts := make([]float64, 0, n+2)
	for i := 0; i <= half; i++ {
		pts = append(pts, lo+(hi-lo)*float64(i)/float64(half))
	}
	if w := d.Weights; len(w) > 1 {
		step := (d.Hi - d.Lo) / float64(len(w)-1)
		total := 0.0
		for _, wi := range w {
			total += wi
		}
		cum, k := 0.0, 1
		for i, wi := range w {
			if wi == 0 {
				continue
			}
			cum += wi
			for k <= half && cum >= total*float64(k)/float64(half+1) {
				if x := d.Lo + float64(i)*step; x > lo && x < hi {
					pts = append(pts, x)
				}
				k++
			}
		}
	}
	sort.Float64s(pts)
	// Dedupe the base knots with a minimum separation so panels never
	// collapse to float64-resolution slivers.
	minSep := (hi - lo) / float64(4*n)
	base := pts[:1]
	for _, x := range pts[1:] {
		if x-base[len(base)-1] >= minSep {
			base = append(base, x)
		}
	}
	if last := base[len(base)-1]; last < hi {
		if hi-last >= minSep {
			base = append(base, hi)
		} else {
			base[len(base)-1] = hi
		}
	}

	// Merge breakpoints. These must land exactly where the predictions
	// jump, so they are kept verbatim (deduped only at float resolution)
	// and base knots within tinySep of a jump yield to it.
	inRange := jumps[:0]
	for _, j := range jumps {
		if j > lo && j < hi {
			inRange = append(inRange, j)
		}
	}
	if budget := maxGridKnots - len(base); len(inRange) > budget {
		if budget <= 0 {
			inRange = nil
		} else {
			thin := make([]float64, 0, budget)
			for i := 0; i < budget; i++ {
				thin = append(thin, inRange[i*len(inRange)/budget])
			}
			inRange = thin
		}
	}
	tinySep := (hi - lo) * 1e-12
	out := make([]float64, 0, len(base)+len(inRange))
	bi, ji := 0, 0
	for bi < len(base) || ji < len(inRange) {
		var x float64
		if ji >= len(inRange) || (bi < len(base) && base[bi] <= inRange[ji]) {
			x = base[bi]
			bi++
			// A base knot almost on top of the next jump yields to it.
			if ji < len(inRange) && inRange[ji]-x < tinySep {
				continue
			}
		} else {
			x = inRange[ji]
			ji++
		}
		if len(out) > 0 && x-out[len(out)-1] < tinySep {
			continue
		}
		out = append(out, x)
	}
	if len(out) < 2 {
		return nil
	}
	// The endpoints must stay exactly at the support bounds.
	out[0], out[len(out)-1] = lo, hi
	return out
}

// refineCDFKnots splits panels whose Fritsch–Carlson CDF interpolant
// misses the closed-form CDF at the panel midpoint, until every midpoint
// agrees within gridErrBound or the knot cap is reached. Wide panels in
// density valleys and panels where the monotonicity clamp bites are
// exactly the ones that get refined; each split costs one closed-form CDF
// evaluation. Returns the refined knot vector with the exact CDF and
// density tabulated at every knot — CumD carries no quadrature error.
func refineCDFKnots(d *kde.Binned, kn []float64) (knots, cumD, dVal []float64) {
	cd := make([]float64, len(kn))
	dv := make([]float64, len(kn))
	for i, x := range kn {
		cd[i] = d.CDF(x)
		dv[i] = d.Density(x)
	}
	scale := math.Max(cd[len(cd)-1]-cd[0], 1e-300)
	for round := 0; round < 24 && len(kn) < maxGridKnots; round++ {
		var nk, ncd, ndv []float64
		split := false
		for k := 0; k+1 < len(kn); k++ {
			nk = append(nk, kn[k])
			ncd = append(ncd, cd[k])
			ndv = append(ndv, dv[k])
			mid := 0.5 * (kn[k] + kn[k+1])
			if mid <= kn[k] || mid >= kn[k+1] {
				continue // float-resolution panel: cannot split further
			}
			want := d.CDF(mid)
			got := fcHermiteCDF(kn[k], kn[k+1], cd[k], cd[k+1], dv[k], dv[k+1], mid)
			if math.Abs(got-want)/math.Max(math.Abs(want), 1e-3*scale) > 0.5*gridErrBound {
				nk = append(nk, mid)
				ncd = append(ncd, want)
				ndv = append(ndv, d.Density(mid))
				split = true
			}
		}
		nk = append(nk, kn[len(kn)-1])
		ncd = append(ncd, cd[len(cd)-1])
		ndv = append(ndv, dv[len(dv)-1])
		kn, cd, dv = nk, ncd, ndv
		if !split {
			break
		}
	}
	return kn, cd, dv
}

// buildGrid tabulates the model's prefix-integral grid with the given base
// knot budget, validates it, and returns nil — leaving the model on the
// quadrature path — if the support is degenerate or validation fails.
func buildGrid(m *UniModel, knots, workers int) *EvalGrid {
	if m.D == nil || m.R == nil || len(m.R.Models) == 0 {
		return nil
	}
	nc := len(m.R.Models)
	var jumps []float64
	for _, reg := range m.R.Models {
		if bp, ok := reg.(breakpointer); ok {
			jumps = append(jumps, bp.Breakpoints()...)
		}
	}
	sort.Float64s(jumps)
	kn := gridKnots(m.D, knots, jumps)
	if kn == nil {
		return nil
	}
	kn, cumD, dVal := refineCDFKnots(m.D, kn)
	nk := len(kn)
	panels := nk - 1

	// One fused Gauss–Kronrod pass per panel: the KDE density is the
	// dominant factor cost and all integrands share it. The D·R prefix
	// rows are not stored on the grid — their panel deltas are the
	// validation reference for the linear-R reconstruction below.
	pref := quadrature.CumulativeGK15(func(x float64, out []float64) {
		d := m.D.Density(x)
		out[0] = x * d
		out[1] = x * x * d
		for c := 0; c < nc; c++ {
			r := m.R.Models[c].Predict1(x)
			out[2+2*c] = d * r
			out[3+2*c] = d * r * r
		}
	}, 2+2*nc, kn, workers)
	if pref == nil {
		return nil
	}

	g := &EvalGrid{
		Knots: kn, CumXD: pref[0], CumX2D: pref[1],
		DVal: dVal, CumD: cumD,
		RA: make([][]float64, nc), RB: make([][]float64, nc),
		CumDR: make([][]float64, nc), CumDR2: make([][]float64, nc),
	}
	// Per-panel linear coefficients from two strictly interior samples:
	// exact for piecewise-constant trees (a = 0) and for the piecewise
	// linear constituent once panels align with their breakpoints.
	for c := 0; c < nc; c++ {
		g.RA[c] = make([]float64, panels)
		g.RB[c] = make([]float64, panels)
	}
	parallel.ForEach(panels, workers, func(k int) {
		x0, x1 := kn[k], kn[k+1]
		h := x1 - x0
		xa, xb := x0+h/3, x1-h/3
		for c := 0; c < nc; c++ {
			ra := m.R.Models[c].Predict1(xa)
			rb := m.R.Models[c].Predict1(xb)
			var a float64
			if xb > xa {
				a = (rb - ra) / (xb - xa)
			}
			g.RA[c][k] = a
			g.RB[c][k] = ra - a*xa
		}
	})
	// Prefix regression integrals by the same identity the lookups use —
	// Δ∫D·R_c = a·Δ∫xD + b·ΔCDF per panel — so the prefix values and the
	// partial-panel interpolants are consistent by construction.
	for c := 0; c < nc; c++ {
		cdr := make([]float64, nk)
		cdr2 := make([]float64, nk)
		for k := 0; k < panels; k++ {
			a, b := g.RA[c][k], g.RB[c][k]
			dd := g.CumD[k+1] - g.CumD[k]
			dxd := g.CumXD[k+1] - g.CumXD[k]
			dx2d := g.CumX2D[k+1] - g.CumX2D[k]
			cdr[k+1] = cdr[k] + a*dxd + b*dd
			cdr2[k+1] = cdr2[k] + a*a*dx2d + 2*a*b*dxd + b*b*dd
		}
		g.CumDR[c] = cdr
		g.CumDR2[c] = cdr2
	}
	if !m.validateGrid(g, pref) {
		return nil
	}
	return g
}

// validateGrid checks the two places the grid could silently go wrong:
// the interpolated CDF against the closed-form CDF at panel midpoints, and
// the per-panel linear-R reconstruction of every ∫D·R_c panel against the
// fused Gauss–Kronrod panel integrals (deltas of pref rows 2+2c and 3+2c).
// A constituent that is not piecewise linear over the panels shows up
// here, and the model stays on quadrature.
func (m *UniModel) validateGrid(g *EvalGrid, pref [][]float64) bool {
	nk := len(g.Knots)
	panels := nk - 1
	nc := len(g.RA)
	worst := 0.0
	// Scale floors: relative error against the full-support integral
	// magnitude, so empty-tail panels do not divide by ~0.
	massScale := math.Max(g.CumD[nk-1]-g.CumD[0], 1e-300)
	drScale := make([]float64, nc)
	dr2Scale := make([]float64, nc)
	for c := 0; c < nc; c++ {
		drScale[c] = math.Max(math.Abs(g.CumDR[c][nk-1]), 1e-300)
		dr2Scale[c] = math.Max(math.Abs(g.CumDR2[c][nk-1]), 1e-300)
	}
	check := func(got, want, scale float64) bool {
		rel := math.Abs(got-want) / math.Max(math.Abs(want), 1e-3*scale)
		if rel > worst {
			worst = rel
		}
		return rel <= gridErrBound
	}
	// CDF midpoint spot checks (every panel is cheap enough: one closed
	// form CDF per panel, same order of work as the build pass itself).
	for k := 0; k < panels; k++ {
		mid := 0.5 * (g.Knots[k] + g.Knots[k+1])
		if !check(g.cdfAt(mid), m.D.CDF(mid), massScale) {
			return false
		}
	}
	for c := 0; c < nc; c++ {
		for k := 0; k < panels; k++ {
			a, b := g.RA[c][k], g.RB[c][k]
			dd := g.CumD[k+1] - g.CumD[k]
			dxd := pref[0][k+1] - pref[0][k]
			dx2d := pref[1][k+1] - pref[1][k]
			gk := pref[2+2*c][k+1] - pref[2+2*c][k]
			gk2 := pref[3+2*c][k+1] - pref[3+2*c][k]
			if !check(a*dxd+b*dd, gk, drScale[c]) {
				return false
			}
			if !check(a*a*dx2d+2*a*b*dxd+b*b*dd, gk2, dr2Scale[c]) {
				return false
			}
		}
	}
	g.MaxRelErr = worst
	return true
}
