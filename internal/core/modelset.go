package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
	"strings"

	"dbest/internal/exact"
	"dbest/internal/parallel"
)

// GroupAnswer is one group's approximate answer in a GROUP BY result.
// CI/PredRelErr carry the group model's error bounds; both zero when the
// group answered from raw tuples or a model without a fitted predictor.
type GroupAnswer struct {
	Group      int64
	Value      float64
	CI         [2]float64
	PredRelErr float64
}

// Answer is the approximate result of one aggregate evaluation. CI is the
// value's confidence interval [lo, hi] and PredRelErr the predicted
// relative error, both from the model's train-time error predictor;
// PredRelErr == 0 means the bounds are unknown (models persisted before
// error bounds existed, tiny samples, multivariate models). For GROUP BY
// answers the scalar CI is empty; PredRelErr is the worst group's.
type Answer struct {
	Value      float64       // scalar result (no GROUP BY)
	Groups     []GroupAnswer // sorted by group value (GROUP BY)
	CI         [2]float64
	PredRelErr float64
}

// stampBounds fills a's CI and predicted relative error for a scalar answer
// evaluated on m over [lb, ub]. Answers from models without a fitted
// predictor keep zero bounds.
func (a *Answer) stampBounds(m *UniModel, af exact.AggFunc, lb, ub float64) {
	re := m.PredictRelErr(af, lb, ub)
	if re <= 0 {
		return
	}
	a.PredRelErr = re
	h := math.Abs(a.Value) * re
	a.CI = [2]float64{a.Value - h, a.Value + h}
}

// SortGroupAnswers orders a GROUP BY result by group value — the one
// ordering contract shared by the model and exact answer paths.
func SortGroupAnswers(gs []GroupAnswer) {
	sort.Slice(gs, func(i, j int) bool { return gs[i].Group < gs[j].Group })
}

// EvalOptions controls model-set evaluation.
type EvalOptions struct {
	Workers int     // parallel per-group model evaluation (0 = GOMAXPROCS, 1 = sequential)
	P       float64 // percentile point for PERCENTILE
}

// EvaluateUni answers AF over a univariate predicate [lb, ub] on the model
// set's x column. yIsX must be set when the aggregated column equals the
// predicate column (density-based VARIANCE/STDDEV/AVG, §2.3.1).
func (ms *ModelSet) EvaluateUni(af exact.AggFunc, lb, ub float64, yIsX bool, opts *EvalOptions) (*Answer, error) {
	var o EvalOptions
	if opts != nil {
		o = *opts
	}
	if ms.GroupBy != "" {
		return ms.evaluateGroups(af, lb, ub, yIsX, o)
	}
	if ms.Uni == nil {
		return nil, fmt.Errorf("core: model set %s has no univariate model", ms.Key())
	}
	v, err := ms.Uni.Aggregate(af, lb, ub, yIsX, o.P)
	if err != nil {
		return nil, err
	}
	ans := &Answer{Value: v}
	ans.stampBounds(ms.Uni, af, lb, ub)
	return ans, nil
}

// EvaluateMulti answers AF over a multivariate box predicate.
func (ms *ModelSet) EvaluateMulti(af exact.AggFunc, lb, ub []float64) (*Answer, error) {
	if ms.Multi == nil {
		return nil, fmt.Errorf("core: model set %s has no multivariate model", ms.Key())
	}
	v, err := ms.Multi.Aggregate(af, lb, ub)
	if err != nil {
		return nil, err
	}
	return &Answer{Value: v}, nil
}

// maxGroupErrors caps how many failing groups a GROUP BY error reports;
// the rest are counted, not printed, so the fan-out of a pathological
// predicate over thousands of groups stays one bounded message.
const maxGroupErrors = 3

// evaluateGroups fans the evaluation out over all per-group models — the
// paper's GROUP BY strategy: "DBEst will call all models built for the z
// values, and the predictions from all models form the result" (§2.3).
// Model evaluation per group is embarrassingly parallel (§4.7.1).
//
// Failing groups are reported by group label, in ascending group order,
// capped at maxGroupErrors — deterministically, regardless of worker
// scheduling. A panicking group model (e.g. a corrupt deserialized bundle)
// is contained and reported as that group's failure instead of taking the
// whole process down.
func (ms *ModelSet) evaluateGroups(af exact.AggFunc, lb, ub float64, yIsX bool, o EvalOptions) (*Answer, error) {
	gvals := make([]int64, 0, len(ms.Groups)+len(ms.Raw))
	for g := range ms.Groups {
		gvals = append(gvals, g)
	}
	for g := range ms.Raw {
		gvals = append(gvals, g)
	}
	sort.Slice(gvals, func(i, j int) bool { return gvals[i] < gvals[j] })

	type res struct {
		ok  bool
		val float64
		re  float64 // predicted relative error; 0 = unknown
	}
	results := make([]res, len(gvals))
	errs := make([]error, len(gvals))
	parallel.ForEach(len(gvals), o.Workers, func(i int) {
		g := gvals[i]
		v, re, err := ms.evaluateGroup(g, af, lb, ub, yIsX, o.P)
		if err != nil {
			if err == ErrNoSupport {
				return // group empty under this predicate: omit, as SQL does
			}
			errs[i] = err
			return
		}
		results[i] = res{true, v, re}
	})
	if err := joinGroupErrors(gvals, errs); err != nil {
		return nil, err
	}
	ans := &Answer{}
	for i, g := range gvals {
		if !results[i].ok {
			continue
		}
		ga := GroupAnswer{Group: g, Value: results[i].val, PredRelErr: results[i].re}
		if ga.PredRelErr > 0 {
			h := math.Abs(ga.Value) * ga.PredRelErr
			ga.CI = [2]float64{ga.Value - h, ga.Value + h}
			// The answer-level prediction is the worst group's: a caller
			// routing on tolerance must hold every group to it.
			if ga.PredRelErr > ans.PredRelErr {
				ans.PredRelErr = ga.PredRelErr
			}
		}
		ans.Groups = append(ans.Groups, ga)
	}
	// gvals is sorted, so ans.Groups already satisfies the ordering
	// contract; keep the explicit sort as the single source of truth.
	SortGroupAnswers(ans.Groups)
	return ans, nil
}

// evaluateGroup answers one group, converting a panic in the group's model
// into an error so one bad group cannot crash a whole GROUP BY query. re is
// the group model's predicted relative error (0 = unknown; raw-tuple groups
// answer exactly from retained tuples and report 0 too).
func (ms *ModelSet) evaluateGroup(g int64, af exact.AggFunc, lb, ub float64, yIsX bool, p float64) (v, re float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic evaluating group model: %v", r)
		}
	}()
	if m, ok := ms.Groups[g]; ok {
		v, err = m.Aggregate(af, lb, ub, yIsX, p)
		if err == nil {
			re = m.PredictRelErr(af, lb, ub)
		}
		return v, re, err
	}
	v, err = ms.Raw[g].aggregate(af, lb, ub, yIsX, p, ms.GroupRows[g])
	return v, 0, err
}

// joinGroupErrors folds per-group failures into one error labeled with the
// failing groups. gvals must be sorted; errs is indexed parallel to it.
func joinGroupErrors(gvals []int64, errs []error) error {
	failed := make([]int, 0, maxGroupErrors)
	nFailed := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		nFailed++
		if len(failed) < maxGroupErrors {
			failed = append(failed, i)
		}
	}
	if nFailed == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "core: %d of %d groups failed: ", nFailed, len(gvals))
	wrapped := make([]error, 0, maxGroupErrors)
	for k, i := range failed {
		if k > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "group %d: %v", gvals[i], errs[i])
		wrapped = append(wrapped, errs[i])
	}
	if extra := nFailed - len(failed); extra > 0 {
		fmt.Fprintf(&b, "; and %d more", extra)
	}
	return &groupEvalError{msg: b.String(), errs: wrapped}
}

// groupEvalError carries the reported group failures so errors.Is/As still
// see the underlying causes through the capped summary message.
type groupEvalError struct {
	msg  string
	errs []error
}

func (e *groupEvalError) Error() string   { return e.msg }
func (e *groupEvalError) Unwrap() []error { return e.errs }

// aggregate answers AF exactly over the raw tuples of a small group,
// scaling COUNT/SUM by the group's logical-to-sample ratio.
func (rg *RawGroup) aggregate(af exact.AggFunc, lb, ub float64, yIsX bool, p, logicalRows float64) (float64, error) {
	var sel []float64
	for i, x := range rg.X {
		if x >= lb && x <= ub {
			if yIsX {
				sel = append(sel, x)
			} else {
				sel = append(sel, rg.Y[i])
			}
		}
	}
	if len(sel) == 0 {
		return 0, ErrNoSupport
	}
	scale := 1.0
	if len(rg.X) > 0 && logicalRows > 0 {
		scale = logicalRows / float64(len(rg.X))
	}
	switch af {
	case exact.Count:
		return float64(len(sel)) * scale, nil
	case exact.Sum:
		s := 0.0
		for _, v := range sel {
			s += v
		}
		return s * scale, nil
	case exact.Avg:
		s := 0.0
		for _, v := range sel {
			s += v
		}
		return s / float64(len(sel)), nil
	case exact.Variance, exact.StdDev:
		var s, ss float64
		for _, v := range sel {
			s += v
			ss += v * v
		}
		n := float64(len(sel))
		m := s / n
		v := ss/n - m*m
		if v < 0 {
			v = 0
		}
		if af == exact.StdDev {
			return math.Sqrt(v), nil
		}
		return v, nil
	case exact.Percentile:
		if p < 0 || p > 1 {
			return 0, fmt.Errorf("core: percentile point %v outside [0, 1]", p)
		}
		sorted := append([]float64(nil), sel...)
		sort.Float64s(sorted)
		pos := p * float64(len(sorted)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
	default:
		return 0, fmt.Errorf("core: unsupported aggregate %v", af)
	}
}

// SizeBytes reports the gob-serialized size of the whole model set — the
// state DBEst must keep in memory (or spill to SSD as a bundle) for this
// column set.
func (ms *ModelSet) SizeBytes() int {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ms); err != nil {
		return 0
	}
	return buf.Len()
}

// EvalKernel reports which integration kernel answers this set's
// model-path integrals: "grid" when every trained pair carries a validated
// prefix-integral grid, "quad" when none does (including multivariate
// sets, which always integrate adaptively), "mixed" otherwise. It is the
// kernel tag EXPLAIN renders on ModelEval and ShardMerge operators.
func (ms *ModelSet) EvalKernel() string {
	if ms.Sketch != nil {
		return "sketch"
	}
	total, with := 0, 0
	count := func(m *UniModel) {
		total++
		if m.HasGrid() {
			with++
		}
	}
	if ms.Uni != nil {
		count(ms.Uni)
	}
	for _, m := range ms.Groups {
		count(m)
	}
	for _, m := range ms.Nominal {
		count(m)
	}
	switch {
	case total == 0 || with == 0:
		return "quad"
	case with == total:
		return "grid"
	default:
		return "mixed"
	}
}

// NumModels counts the trained models in the set (per-group and
// per-nominal-value models count individually; raw groups are not models;
// a sketch counts as one).
func (ms *ModelSet) NumModels() int {
	n := 0
	if ms.Sketch != nil {
		n++
	}
	if ms.Uni != nil {
		n++
	}
	if ms.Multi != nil {
		n++
	}
	return n + len(ms.Groups) + len(ms.Nominal)
}
