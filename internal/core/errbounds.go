package core

import (
	"math"
	"math/rand"
	"sort"

	"dbest/internal/exact"
)

// Per-answer error bounds. A model answer is useless in production unless
// the caller knows how wrong it might be, so training fits a small error
// model alongside the (D, R) pair: a seeded bootstrap over the training
// sample measures, per aggregate family, how the relative half-width of a
// range aggregate scales with the selected mass fraction f, and the
// regression residuals contribute an analytic floor the bootstrap cannot
// see (systematic regressor bias is invisible to resampling). The fitted
// coefficients are a few float64s — they ride the gob bundle next to
// EvalGrid and cost two multiplies at query time.

const (
	// errBootstrapB is the number of bootstrap resamples. 32 keeps the
	// band estimate stable without noticeably extending training.
	errBootstrapB = 32
	// errSafety inflates the 95% bootstrap band: resampling measures
	// sampling variance only, while the served error also carries KDE and
	// regressor bias. Calibrated against the accuracy harness so true
	// values fall inside the reported CI on >= ~90% of spans.
	errSafety = 1.5
	// errMinRelErr / errMaxRelErr clamp predictions: no model answer is
	// ever promised better than 0.2% (KDE smoothing alone costs that), and
	// a prediction past 100% carries no more information than 100%.
	errMinRelErr = 0.002
	errMaxRelErr = 1.0
	// errMinSample is the smallest training sample worth bootstrapping;
	// below it the bands are noise and the model reports unknown bounds.
	errMinSample = 20
)

// ErrBounds is the per-model error predictor fitted at train time. The
// zero/nil value means "unknown" — models from catalogs persisted before
// error bounds existed decode with a nil ErrBounds and keep answering, just
// without a CI. Coefficients are per aggregate family: COUNT error follows
// binomial mass concentration (vanishing as f -> 1), the regression-backed
// families follow the 1/sqrt(f·n) law of a sample mean over the selection.
type ErrBounds struct {
	CountCoef float64 // COUNT: delta = CountCoef · sqrt((1-f)/f)
	SumCoef   float64 // SUM:   delta = SumCoef / sqrt(f)
	AvgCoef   float64 // AVG:   delta = AvgCoef / sqrt(f)
	VarCoef   float64 // VARIANCE: delta = VarCoef / sqrt(f); STDDEV halves it
	PctCoef   float64 // PERCENTILE: delta = PctCoef / sqrt(f)
	// ResidRel is the regression residual RMSE over the training sample
	// relative to the mean |y| — the analytic floor for the SUM/AVG
	// families, carrying the regressor bias the bootstrap cannot measure.
	ResidRel float64
	// SampleN is the training-sample size the bootstrap saw; it bounds the
	// smallest resolvable mass fraction to one sample row.
	SampleN int
}

// Valid reports whether the receiver carries a fitted predictor. Safe on a
// nil receiver, mirroring EvalGrid.
func (e *ErrBounds) Valid() bool { return e != nil && e.SampleN > 0 }

// RelErr predicts the relative error of aggregate family af over a range
// selecting mass fraction f of the model's density. Returns 0 when the
// predictor is absent or the family is not covered (the caller treats 0 as
// "unknown bounds").
func (e *ErrBounds) RelErr(af exact.AggFunc, f float64) float64 {
	if !e.Valid() {
		return 0
	}
	if f > 1 {
		f = 1
	}
	// One sample row is the smallest selection the bootstrap resolved.
	if fmin := 1.0 / float64(e.SampleN); f < fmin {
		f = fmin
	}
	var d float64
	switch af {
	case exact.Count:
		d = e.CountCoef * math.Sqrt((1-f)/f)
	case exact.Sum:
		d = e.SumCoef / math.Sqrt(f)
	case exact.Avg:
		d = e.AvgCoef / math.Sqrt(f)
	case exact.Variance:
		d = e.VarCoef / math.Sqrt(f)
	case exact.StdDev:
		// Var = Std², so d(Std)/Std ≈ d(Var)/(2·Var) to first order.
		d = e.VarCoef / (2 * math.Sqrt(f))
	case exact.Percentile:
		d = e.PctCoef / math.Sqrt(f)
	default:
		return 0
	}
	// Regression residuals floor the regression-backed families: however
	// small the sampling band, the fitted R(x) still misses each y by the
	// residual scale, and a fraction of that bias survives averaging.
	if af == exact.Sum || af == exact.Avg {
		if floor := e.ResidRel / math.Sqrt(f*float64(e.SampleN)); d < floor {
			d = floor
		}
	}
	return math.Min(math.Max(d, errMinRelErr), errMaxRelErr)
}

// buildErrBounds fits the error predictor over the training sample (xs,
// ys): errBootstrapB seeded resamples, probed at centered quantile windows
// of varying selectivity; each window/family pair yields one coefficient
// estimate via the family's scaling law, and the fit keeps the largest
// across windows (conservative — coverage beats tightness for a bound).
// predict is the already-fitted regressor, used for the residual floor; it
// may be nil. Returns nil for samples too small to bootstrap.
func buildErrBounds(xs, ys []float64, predict func(float64) float64, seed int64) *ErrBounds {
	n := len(xs)
	if n < errMinSample {
		return nil
	}
	sx := append([]float64(nil), xs...)
	sort.Float64s(sx)

	// Centered quantile windows at increasing target selectivity. The full
	// window is excluded: every family's error there is dominated by model
	// bias, not sampling, and COUNT's bootstrap variance is identically 0.
	type window struct{ lo, hi float64 }
	var wins []window
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.5, 0.8} {
		lo := sx[int((0.5-frac/2)*float64(n-1))]
		hi := sx[int((0.5+frac/2)*float64(n-1))]
		if hi > lo {
			wins = append(wins, window{lo, hi})
		}
	}
	if len(wins) == 0 {
		return nil
	}

	type moments struct {
		count, sum, sumSq float64
		inX               []float64 // in-window x values, for the percentile probe
	}
	boots := make([][]moments, len(wins))
	for w := range boots {
		boots[w] = make([]moments, errBootstrapB)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5bd1e995))
	for b := 0; b < errBootstrapB; b++ {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			x, y := xs[j], ys[j]
			for w, win := range wins {
				if x < win.lo || x > win.hi {
					continue
				}
				m := &boots[w][b]
				m.count++
				m.sum += y
				m.sumSq += y * y
				m.inX = append(m.inX, x)
			}
		}
	}

	eb := &ErrBounds{SampleN: n}
	for w := range wins {
		bs := boots[w]
		counts := make([]float64, 0, errBootstrapB)
		sums := make([]float64, 0, errBootstrapB)
		avgs := make([]float64, 0, errBootstrapB)
		vars := make([]float64, 0, errBootstrapB)
		meds := make([]float64, 0, errBootstrapB)
		for b := range bs {
			m := &bs[b]
			if m.count < 2 {
				continue
			}
			avg := m.sum / m.count
			v := m.sumSq/m.count - avg*avg
			if v < 0 {
				v = 0
			}
			counts = append(counts, m.count)
			sums = append(sums, m.sum)
			avgs = append(avgs, avg)
			vars = append(vars, v)
			sort.Float64s(m.inX)
			meds = append(meds, m.inX[len(m.inX)/2])
		}
		if len(counts) < errBootstrapB/2 {
			continue
		}
		f := mean(counts) / float64(n) // observed mass fraction of this window
		if f <= 0 || f >= 1 {
			continue
		}
		// Invert each family's scaling law at this window's f, keeping the
		// most conservative coefficient across windows.
		grow := func(coef *float64, rel, scale float64) {
			if scale <= 0 {
				return
			}
			if c := rel / scale; c > *coef {
				*coef = c
			}
		}
		grow(&eb.CountCoef, relHalfWidth(counts), math.Sqrt((1-f)/f))
		grow(&eb.SumCoef, relHalfWidth(sums), 1/math.Sqrt(f))
		grow(&eb.AvgCoef, relHalfWidth(avgs), 1/math.Sqrt(f))
		grow(&eb.VarCoef, relHalfWidth(vars), 1/math.Sqrt(f))
		grow(&eb.PctCoef, relHalfWidth(meds), 1/math.Sqrt(f))
	}
	if eb.CountCoef == 0 && eb.AvgCoef == 0 {
		return nil
	}
	eb.ResidRel = residRel(xs, ys, predict)
	return eb
}

// relHalfWidth is the safety-inflated 95% bootstrap band of vs, relative to
// the bootstrap mean: errSafety · 1.96 · std / |mean|. A near-zero mean
// (e.g. SUM of a signed column canceling) yields a huge relative band,
// which the clamp in RelErr caps at errMaxRelErr — honest: such answers
// really are unreliable in relative terms.
func relHalfWidth(vs []float64) float64 {
	m := mean(vs)
	var sq float64
	for _, v := range vs {
		d := v - m
		sq += d * d
	}
	std := math.Sqrt(sq / float64(len(vs)))
	den := math.Abs(m)
	if den < 1e-12 {
		return errMaxRelErr
	}
	return errSafety * 1.96 * std / den
}

func mean(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// residRel is the regression residual RMSE over the training sample,
// relative to the mean |y|: how far each y sits from the fitted R(x), the
// per-row scatter that systematically limits SUM/AVG accuracy. With no
// predictor it falls back to the y spread around its mean, which upper-
// bounds the residual and keeps the floor conservative.
func residRel(xs, ys []float64, predict func(float64) float64) float64 {
	if predict == nil {
		my := mean(ys)
		predict = func(float64) float64 { return my }
	}
	var sq, ab float64
	for i, y := range ys {
		d := y - predict(xs[i])
		sq += d * d
		ab += math.Abs(y)
	}
	n := float64(len(ys))
	if ab < 1e-12 {
		return 0
	}
	return math.Sqrt(sq/n) / (ab / n)
}
