package core

import (
	"math"
	"testing"

	"dbest/internal/exact"
	"dbest/internal/table"
)

// nominalTable: two channels with different y scales, plus a rare channel
// small enough to be kept raw.
func nominalTable() *table.Table {
	var xs, ys []float64
	var cs []string
	add := func(ch string, n int, scale float64) {
		for i := 0; i < n; i++ {
			x := float64(i%100) + 1
			xs = append(xs, x)
			ys = append(ys, scale*x)
			cs = append(cs, ch)
		}
	}
	add("a", 5000, 1)
	add("b", 3000, 10)
	add("rare", 10, 100)
	tb := table.New("nt")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	tb.AddStringColumn("ch", cs)
	return tb
}

func TestTrainNominalCore(t *testing.T) {
	tb := nominalTable()
	ms, err := TrainNominal(tb, "x", "y", "ch", &TrainConfig{SampleSize: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Nominal) != 2 || len(ms.NominalRaw) != 1 {
		t.Fatalf("nominal=%d raw=%d", len(ms.Nominal), len(ms.NominalRaw))
	}
	if ms.NumModels() != 2 {
		t.Fatalf("NumModels = %d", ms.NumModels())
	}
	vals := ms.NominalValues()
	if len(vals) != 3 {
		t.Fatalf("values = %v", vals)
	}
	if ms.Key() != "nt|x|y|#ch" {
		t.Fatalf("key = %q", ms.Key())
	}
	// Per-channel AVG over x in [40, 60]: E[y] = scale·50 (x uniform ints).
	for ch, scale := range map[string]float64{"a": 1, "b": 10} {
		ans, err := ms.EvaluateNominal(exact.Avg, ch, 40, 60, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ans.Value-scale*50)/(scale*50) > 0.05 {
			t.Errorf("channel %s AVG = %v, want ≈ %v", ch, ans.Value, scale*50)
		}
	}
	// Raw channel answered exactly from its tuples.
	ans, err := ms.EvaluateNominal(exact.Count, "rare", 0, 200, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Value != 10 {
		t.Fatalf("rare COUNT = %v, want 10", ans.Value)
	}
	// Unknown value.
	if _, err := ms.EvaluateNominal(exact.Avg, "ghost", 0, 1, false, nil); err == nil {
		t.Fatal("want error for unknown nominal value")
	}
}

func TestTrainNominalErrorsCore(t *testing.T) {
	tb := nominalTable()
	if _, err := TrainNominal(table.New("e"), "x", "y", "ch", nil); err == nil {
		t.Fatal("want error for empty table")
	}
	if _, err := TrainNominal(tb, "nope", "y", "ch", nil); err == nil {
		t.Fatal("want error for missing x")
	}
	if _, err := TrainNominal(tb, "x", "nope", "ch", nil); err == nil {
		t.Fatal("want error for missing y")
	}
	if _, err := TrainNominal(tb, "x", "y", "x", nil); err == nil {
		t.Fatal("want error for non-string nominal column")
	}
}

func TestNominalCountScalesWithScale(t *testing.T) {
	tb := nominalTable()
	ms, err := TrainNominal(tb, "x", "y", "ch", &TrainConfig{SampleSize: 2000, Seed: 1, Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ms.EvaluateNominal(exact.Count, "a", 0, 200, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans.Value-500_000)/500_000 > 0.02 {
		t.Fatalf("scaled nominal COUNT = %v, want ≈ 500000", ans.Value)
	}
}
