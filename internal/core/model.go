// Package core implements the paper's primary contribution: the DBEst
// model pair — a kernel density estimator D(x) and a regression model R(x)
// trained over a small uniform sample — and the evaluation of aggregate
// functions from those models alone (paper §2.3, Eqs. 1–10). No base data
// or samples are consulted at query time; samples are discarded after
// training (§3, Sampling).
package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"dbest/internal/boost"
	"dbest/internal/exact"
	"dbest/internal/kde"
	"dbest/internal/quadrature"
	"dbest/internal/shard"
)

func init() {
	// The ensemble regressor holds its constituents behind the
	// boost.Regressor interface; gob needs the concrete types registered
	// for model serialization (catalog persistence and model bundles).
	gob.Register(&boost.GradientBoost{})
	gob.Register(&boost.XGBoost{})
	gob.Register(&boost.PiecewiseLinear{})
	gob.Register(&boost.Ensemble{})
}

// quadOpts are the integration tolerances used for the ∫D·R integrals.
// They mirror the paper's accuracy-efficiency trade-off discussion (§3,
// Integral Evaluation): tight enough that integration error is negligible
// against model error, loose enough for sub-millisecond evaluation.
var quadOpts = &quadrature.Options{AbsTol: 1e-9, RelTol: 1e-6, MaxIter: 64, InitialPanels: 8}

// ErrNoSupport is returned when a range predicate selects a region where
// the density estimator has (almost) no mass, so regression-based
// aggregates are undefined — the analogue of an empty selection.
var ErrNoSupport = errors.New("core: predicate range has no density support")

// UniModel is the model pair for one column pair (x, y): the trained
// density estimator over x and regression model x → y, plus the logical
// table cardinality N the sample represented. This is the only state DBEst
// keeps per column pair (Table 1 of the paper: D(x), R(x), N).
type UniModel struct {
	XCol, YCol string
	N          float64 // logical number of rows modeled (scales Eq. 1 and 7)
	D          *kde.Binned
	R          *boost.Ensemble
	XLo, XHi   float64 // observed x-domain of the training sample

	// Grid is the train-time prefix-integral table set that answers range
	// integrals in O(log knots) instead of a quadrature run. nil — on
	// models from old catalogs, when training disabled it, or when build
	// validation rejected it — keeps the model on the adaptive-quadrature
	// path, which remains the oracle and fallback.
	Grid *EvalGrid

	// EB is the train-time error predictor: bootstrap-fitted per-family
	// relative-error coefficients plus the regression residual floor. nil
	// on models from old catalogs or samples too small to bootstrap; such
	// models answer without bounds (PredictRelErr reports 0 = unknown).
	EB *ErrBounds
}

// HasGrid reports whether a validated evaluation grid answers this model's
// integrals.
func (m *UniModel) HasGrid() bool { return m.Grid.Valid() }

// PredictRelErr predicts the relative error of aggregate af evaluated over
// [lb, ub] on this model, from the train-time error predictor at the
// range's selected mass fraction. 0 means unknown — the model carries no
// fitted bounds (old catalogs, tiny samples).
func (m *UniModel) PredictRelErr(af exact.AggFunc, lb, ub float64) float64 {
	if !m.EB.Valid() {
		return 0
	}
	return m.EB.RelErr(af, m.D.Mass(lb, ub))
}

// mass returns ∫_lb^ub D: from the grid's cumulative-density table on the
// grid path (so numerators and denominators of one answer come from the
// same kernel), else the closed-form CDF.
func (m *UniModel) mass(lb, ub float64) float64 {
	if m.Grid.Valid() {
		return m.Grid.Mass(lb, ub)
	}
	return m.D.Mass(lb, ub)
}

// clip narrows [lb, ub] to the estimator's support to keep quadrature off
// regions that are identically zero.
func (m *UniModel) clip(lb, ub float64) (float64, float64) {
	slo, shi := m.D.Support()
	if lb < slo {
		lb = slo
	}
	if ub > shi {
		ub = shi
	}
	return lb, ub
}

// Count evaluates Eq. 1: COUNT ≈ N · ∫ D(x) dx, with the Gaussian-KDE CDF
// in closed form (no quadrature needed).
func (m *UniModel) Count(lb, ub float64) float64 {
	return m.N * m.D.Mass(lb, ub)
}

// Avg evaluates Eq. 6: AVG(y) ≈ ∫ D·R dx / ∫ D dx.
func (m *UniModel) Avg(lb, ub float64) (float64, error) {
	lb, ub = m.clip(lb, ub)
	den := m.mass(lb, ub)
	if den < 1e-12 {
		return 0, ErrNoSupport
	}
	num, err := m.integrateDR(lb, ub, 1)
	if err != nil {
		return 0, err
	}
	return num / den, nil
}

// Sum evaluates Eq. 7: SUM(y) ≈ N · ∫ D·R dx.
func (m *UniModel) Sum(lb, ub float64) (float64, error) {
	lb, ub = m.clip(lb, ub)
	if m.mass(lb, ub) < 1e-12 {
		return 0, nil // no rows selected: SUM is 0, like SQL over empty sets
	}
	num, err := m.integrateDR(lb, ub, 1)
	if err != nil {
		return 0, err
	}
	return m.N * num, nil
}

// VarianceY evaluates Eq. 8, the regression-based VARIANCE(y):
// E[R²] − E[R]² under the density restricted to [lb, ub].
func (m *UniModel) VarianceY(lb, ub float64) (float64, error) {
	lb, ub = m.clip(lb, ub)
	den := m.mass(lb, ub)
	if den < 1e-12 {
		return 0, ErrNoSupport
	}
	m1, err := m.integrateDR(lb, ub, 1)
	if err != nil {
		return 0, err
	}
	m2, err := m.integrateDR(lb, ub, 2)
	if err != nil {
		return 0, err
	}
	ex := m1 / den
	v := m2/den - ex*ex
	if v < 0 {
		v = 0
	}
	return v, nil
}

// StdDevY evaluates Eq. 9.
func (m *UniModel) StdDevY(lb, ub float64) (float64, error) {
	v, err := m.VarianceY(lb, ub)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// momentX computes ∫_lb^ub x^power·D dx — the density-moment integrand
// shared by the x-forms of AVG, VARIANCE and STDDEV and by Partial's yIsX
// moments. Bounds must already be clipped to the support. On the grid path
// it is two interpolated lookups; otherwise one adaptive quadrature run.
func (m *UniModel) momentX(power int, lb, ub float64) (float64, error) {
	if g := m.Grid; g.Valid() {
		gridHits.Add(1)
		return g.MomentX(power, lb, ub), nil
	}
	gridFallbacks.Add(1)
	res, err := quadrature.Integrate(func(x float64) float64 {
		v := m.D.Density(x)
		for i := 0; i < power; i++ {
			v *= x
		}
		return v
	}, lb, ub, quadOpts)
	if err != nil {
		if err != quadrature.ErrMaxIter {
			return 0, err
		}
		quadNonconverged.Add(1)
	}
	return res.Value, nil
}

// VarianceX evaluates Eq. 2, the density-based VARIANCE(x) over the
// restriction of D to [lb, ub]: E[x²] − E[x]².
func (m *UniModel) VarianceX(lb, ub float64) (float64, error) {
	lb, ub = m.clip(lb, ub)
	den := m.mass(lb, ub)
	if den < 1e-12 {
		return 0, ErrNoSupport
	}
	m1, err := m.momentX(1, lb, ub)
	if err != nil {
		return 0, err
	}
	m2, err := m.momentX(2, lb, ub)
	if err != nil {
		return 0, err
	}
	ex := m1 / den
	v := m2/den - ex*ex
	if v < 0 {
		v = 0
	}
	return v, nil
}

// StdDevX evaluates Eq. 3.
func (m *UniModel) StdDevX(lb, ub float64) (float64, error) {
	v, err := m.VarianceX(lb, ub)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Percentile solves F(x) = p (Eq. 4): inverting the grid's cumulative-
// density table when the model carries one, else by bisection over the
// closed-form CDF. When a range predicate accompanies the percentile, the
// quantile is taken conditionally within [lb, ub].
func (m *UniModel) Percentile(p, lb, ub float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("core: percentile point %v outside [0, 1]", p)
	}
	if g := m.Grid; g.Valid() {
		if lb == math.Inf(-1) && ub == math.Inf(1) {
			gridHits.Add(1)
			return g.InvertCDF(p), nil
		}
		lbc, ubc := m.clip(lb, ub)
		den := g.Mass(lbc, ubc)
		if den < 1e-12 {
			return 0, ErrNoSupport
		}
		gridHits.Add(1)
		x := g.InvertCDF(g.CDF(lbc) + p*den)
		return math.Min(math.Max(x, lbc), ubc), nil
	}
	gridFallbacks.Add(1)
	slo, shi := m.D.Support()
	if lb == math.Inf(-1) && ub == math.Inf(1) {
		return m.D.Quantile(p), nil
	}
	lb, ub = m.clip(lb, ub)
	den := m.D.Mass(lb, ub)
	if den < 1e-12 {
		return 0, ErrNoSupport
	}
	flb := m.D.CDF(lb)
	target := flb + p*den
	root, err := quadrature.Bisect(func(x float64) float64 {
		return m.D.CDF(x) - target
	}, math.Max(lb, slo), math.Min(ub, shi), 1e-10, 200)
	if err != nil {
		return 0, err
	}
	return root, nil
}

// integrateDR computes ∫ D(x)·R(x)^power dx over [lb, ub]. The ensemble's
// per-range constituent selection is hoisted out of the integrand so one
// model answers the whole integral consistently; the grid path honors the
// same selection by keying its per-constituent tables on the index the
// ensemble resolves for this range.
func (m *UniModel) integrateDR(lb, ub float64, power int) (float64, error) {
	if g := m.Grid; g.Valid() {
		if c := m.R.IndexForRange(lb, ub); c < g.Constituents() {
			gridHits.Add(1)
			return g.MomentDR(c, power, lb, ub), nil
		}
	}
	gridFallbacks.Add(1)
	reg := m.R.ForRange(lb, ub)
	var f func(float64) float64
	if power == 1 {
		f = func(x float64) float64 { return m.D.Density(x) * reg.Predict1(x) }
	} else {
		f = func(x float64) float64 {
			r := reg.Predict1(x)
			return m.D.Density(x) * r * r
		}
	}
	res, err := quadrature.Integrate(f, lb, ub, quadOpts)
	if err != nil {
		if err != quadrature.ErrMaxIter {
			return 0, err
		}
		quadNonconverged.Add(1)
	}
	return res.Value, nil
}

// Partial computes this model's shard-mergeable partial aggregates over
// [lb, ub]: the estimated selected-row count and, when requested, the
// first two moments of the aggregated column over the selection. The
// triples merge exactly across shards (internal/shard): COUNT and SUM add,
// AVG is the count-weighted mean, VARIANCE/STDDEV recombine through
// E[y²] − E[y]². yIsX selects the density-based moments (Eqs. 2/3), where
// the aggregated column is the predicate column itself. A range with no
// density support returns a zero Partial with Support false, not an error:
// one empty shard must not fail a merge its siblings can answer.
func (m *UniModel) Partial(lb, ub float64, yIsX, needSum, needSq bool) (shard.Partial, error) {
	var p shard.Partial
	mass := m.D.Mass(lb, ub)
	if mass < 1e-12 {
		return p, nil
	}
	p.Support = true
	p.Count = m.N * mass
	lbc, ubc := m.clip(lb, ub)
	moment := func(power int) (float64, error) {
		if yIsX {
			return m.momentX(power, lbc, ubc)
		}
		return m.integrateDR(lbc, ubc, power)
	}
	if needSum {
		m1, err := moment(1)
		if err != nil {
			return p, err
		}
		p.Sum = m.N * m1
	}
	if needSq {
		m2, err := moment(2)
		if err != nil {
			return p, err
		}
		p.SumSq = m.N * m2
	}
	return p, nil
}

// Aggregate dispatches an aggregate-function evaluation on this model.
// yIsX selects the density-based forms of VARIANCE/STDDEV (Eq. 2/3), used
// when the aggregated column is the predicate column itself.
func (m *UniModel) Aggregate(af exact.AggFunc, lb, ub float64, yIsX bool, p float64) (float64, error) {
	switch af {
	case exact.Count:
		return m.Count(lb, ub), nil
	case exact.Sum:
		return m.Sum(lb, ub)
	case exact.Avg:
		if yIsX {
			// AVG over the predicate column: E[x] under D restricted.
			lbc, ubc := m.clip(lb, ub)
			den := m.mass(lbc, ubc)
			if den < 1e-12 {
				return 0, ErrNoSupport
			}
			m1, err := m.momentX(1, lbc, ubc)
			if err != nil {
				return 0, err
			}
			return m1 / den, nil
		}
		return m.Avg(lb, ub)
	case exact.Variance:
		if yIsX {
			return m.VarianceX(lb, ub)
		}
		return m.VarianceY(lb, ub)
	case exact.StdDev:
		if yIsX {
			return m.StdDevX(lb, ub)
		}
		return m.StdDevY(lb, ub)
	case exact.Percentile:
		return m.Percentile(p, lb, ub)
	default:
		return 0, fmt.Errorf("core: unsupported aggregate %v", af)
	}
}

// SizeBytes reports the gob-serialized size of the model — the paper's
// space-overhead metric (models of "a few 100s KBs" vs samples of MBs).
func (m *UniModel) SizeBytes() int {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return 0
	}
	return buf.Len()
}
