// Package core implements the paper's primary contribution: the DBEst
// model pair — a kernel density estimator D(x) and a regression model R(x)
// trained over a small uniform sample — and the evaluation of aggregate
// functions from those models alone (paper §2.3, Eqs. 1–10). No base data
// or samples are consulted at query time; samples are discarded after
// training (§3, Sampling).
package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"

	"dbest/internal/boost"
	"dbest/internal/exact"
	"dbest/internal/kde"
	"dbest/internal/quadrature"
	"dbest/internal/shard"
)

func init() {
	// The ensemble regressor holds its constituents behind the
	// boost.Regressor interface; gob needs the concrete types registered
	// for model serialization (catalog persistence and model bundles).
	gob.Register(&boost.GradientBoost{})
	gob.Register(&boost.XGBoost{})
	gob.Register(&boost.PiecewiseLinear{})
	gob.Register(&boost.Ensemble{})
}

// quadOpts are the integration tolerances used for the ∫D·R integrals.
// They mirror the paper's accuracy-efficiency trade-off discussion (§3,
// Integral Evaluation): tight enough that integration error is negligible
// against model error, loose enough for sub-millisecond evaluation.
var quadOpts = &quadrature.Options{AbsTol: 1e-9, RelTol: 1e-6, MaxIter: 64, InitialPanels: 8}

// ErrNoSupport is returned when a range predicate selects a region where
// the density estimator has (almost) no mass, so regression-based
// aggregates are undefined — the analogue of an empty selection.
var ErrNoSupport = errors.New("core: predicate range has no density support")

// UniModel is the model pair for one column pair (x, y): the trained
// density estimator over x and regression model x → y, plus the logical
// table cardinality N the sample represented. This is the only state DBEst
// keeps per column pair (Table 1 of the paper: D(x), R(x), N).
type UniModel struct {
	XCol, YCol string
	N          float64 // logical number of rows modeled (scales Eq. 1 and 7)
	D          *kde.Binned
	R          *boost.Ensemble
	XLo, XHi   float64 // observed x-domain of the training sample
}

// clip narrows [lb, ub] to the estimator's support to keep quadrature off
// regions that are identically zero.
func (m *UniModel) clip(lb, ub float64) (float64, float64) {
	slo, shi := m.D.Support()
	if lb < slo {
		lb = slo
	}
	if ub > shi {
		ub = shi
	}
	return lb, ub
}

// Count evaluates Eq. 1: COUNT ≈ N · ∫ D(x) dx, with the Gaussian-KDE CDF
// in closed form (no quadrature needed).
func (m *UniModel) Count(lb, ub float64) float64 {
	return m.N * m.D.Mass(lb, ub)
}

// Avg evaluates Eq. 6: AVG(y) ≈ ∫ D·R dx / ∫ D dx.
func (m *UniModel) Avg(lb, ub float64) (float64, error) {
	lb, ub = m.clip(lb, ub)
	den := m.D.Mass(lb, ub)
	if den < 1e-12 {
		return 0, ErrNoSupport
	}
	num, err := m.integrateDR(lb, ub, 1)
	if err != nil {
		return 0, err
	}
	return num / den, nil
}

// Sum evaluates Eq. 7: SUM(y) ≈ N · ∫ D·R dx.
func (m *UniModel) Sum(lb, ub float64) (float64, error) {
	lb, ub = m.clip(lb, ub)
	if m.D.Mass(lb, ub) < 1e-12 {
		return 0, nil // no rows selected: SUM is 0, like SQL over empty sets
	}
	num, err := m.integrateDR(lb, ub, 1)
	if err != nil {
		return 0, err
	}
	return m.N * num, nil
}

// VarianceY evaluates Eq. 8, the regression-based VARIANCE(y):
// E[R²] − E[R]² under the density restricted to [lb, ub].
func (m *UniModel) VarianceY(lb, ub float64) (float64, error) {
	lb, ub = m.clip(lb, ub)
	den := m.D.Mass(lb, ub)
	if den < 1e-12 {
		return 0, ErrNoSupport
	}
	m1, err := m.integrateDR(lb, ub, 1)
	if err != nil {
		return 0, err
	}
	m2, err := m.integrateDR(lb, ub, 2)
	if err != nil {
		return 0, err
	}
	ex := m1 / den
	v := m2/den - ex*ex
	if v < 0 {
		v = 0
	}
	return v, nil
}

// StdDevY evaluates Eq. 9.
func (m *UniModel) StdDevY(lb, ub float64) (float64, error) {
	v, err := m.VarianceY(lb, ub)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// VarianceX evaluates Eq. 2, the density-based VARIANCE(x) over the
// restriction of D to [lb, ub]: E[x²] − E[x]².
func (m *UniModel) VarianceX(lb, ub float64) (float64, error) {
	lb, ub = m.clip(lb, ub)
	den := m.D.Mass(lb, ub)
	if den < 1e-12 {
		return 0, ErrNoSupport
	}
	m1, err := quadrature.Integrate(func(x float64) float64 {
		return x * m.D.Density(x)
	}, lb, ub, quadOpts)
	if err != nil && err != quadrature.ErrMaxIter {
		return 0, err
	}
	m2, err := quadrature.Integrate(func(x float64) float64 {
		return x * x * m.D.Density(x)
	}, lb, ub, quadOpts)
	if err != nil && err != quadrature.ErrMaxIter {
		return 0, err
	}
	ex := m1.Value / den
	v := m2.Value/den - ex*ex
	if v < 0 {
		v = 0
	}
	return v, nil
}

// StdDevX evaluates Eq. 3.
func (m *UniModel) StdDevX(lb, ub float64) (float64, error) {
	v, err := m.VarianceX(lb, ub)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Percentile solves F(x) = p (Eq. 4) by bisection over the estimator's CDF.
// When a range predicate accompanies the percentile, the quantile is taken
// conditionally within [lb, ub].
func (m *UniModel) Percentile(p, lb, ub float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("core: percentile point %v outside [0, 1]", p)
	}
	slo, shi := m.D.Support()
	if lb == math.Inf(-1) && ub == math.Inf(1) {
		return m.D.Quantile(p), nil
	}
	lb, ub = m.clip(lb, ub)
	den := m.D.Mass(lb, ub)
	if den < 1e-12 {
		return 0, ErrNoSupport
	}
	flb := m.D.CDF(lb)
	target := flb + p*den
	root, err := quadrature.Bisect(func(x float64) float64 {
		return m.D.CDF(x) - target
	}, math.Max(lb, slo), math.Min(ub, shi), 1e-10, 200)
	if err != nil {
		return 0, err
	}
	return root, nil
}

// integrateDR computes ∫ D(x)·R(x)^power dx over [lb, ub]. The ensemble's
// per-range constituent selection is hoisted out of the integrand so one
// model answers the whole integral consistently.
func (m *UniModel) integrateDR(lb, ub float64, power int) (float64, error) {
	reg := m.R.ForRange(lb, ub)
	var f func(float64) float64
	if power == 1 {
		f = func(x float64) float64 { return m.D.Density(x) * reg.Predict1(x) }
	} else {
		f = func(x float64) float64 {
			r := reg.Predict1(x)
			return m.D.Density(x) * r * r
		}
	}
	res, err := quadrature.Integrate(f, lb, ub, quadOpts)
	if err != nil && err != quadrature.ErrMaxIter {
		return 0, err
	}
	return res.Value, nil
}

// Partial computes this model's shard-mergeable partial aggregates over
// [lb, ub]: the estimated selected-row count and, when requested, the
// first two moments of the aggregated column over the selection. The
// triples merge exactly across shards (internal/shard): COUNT and SUM add,
// AVG is the count-weighted mean, VARIANCE/STDDEV recombine through
// E[y²] − E[y]². yIsX selects the density-based moments (Eqs. 2/3), where
// the aggregated column is the predicate column itself. A range with no
// density support returns a zero Partial with Support false, not an error:
// one empty shard must not fail a merge its siblings can answer.
func (m *UniModel) Partial(lb, ub float64, yIsX, needSum, needSq bool) (shard.Partial, error) {
	var p shard.Partial
	mass := m.D.Mass(lb, ub)
	if mass < 1e-12 {
		return p, nil
	}
	p.Support = true
	p.Count = m.N * mass
	lbc, ubc := m.clip(lb, ub)
	moment := func(power int) (float64, error) {
		if yIsX {
			res, err := quadrature.Integrate(func(x float64) float64 {
				v := m.D.Density(x)
				for i := 0; i < power; i++ {
					v *= x
				}
				return v
			}, lbc, ubc, quadOpts)
			if err != nil && err != quadrature.ErrMaxIter {
				return 0, err
			}
			return res.Value, nil
		}
		return m.integrateDR(lbc, ubc, power)
	}
	if needSum {
		m1, err := moment(1)
		if err != nil {
			return p, err
		}
		p.Sum = m.N * m1
	}
	if needSq {
		m2, err := moment(2)
		if err != nil {
			return p, err
		}
		p.SumSq = m.N * m2
	}
	return p, nil
}

// Aggregate dispatches an aggregate-function evaluation on this model.
// yIsX selects the density-based forms of VARIANCE/STDDEV (Eq. 2/3), used
// when the aggregated column is the predicate column itself.
func (m *UniModel) Aggregate(af exact.AggFunc, lb, ub float64, yIsX bool, p float64) (float64, error) {
	switch af {
	case exact.Count:
		return m.Count(lb, ub), nil
	case exact.Sum:
		return m.Sum(lb, ub)
	case exact.Avg:
		if yIsX {
			// AVG over the predicate column: E[x] under D restricted.
			lbc, ubc := m.clip(lb, ub)
			den := m.D.Mass(lbc, ubc)
			if den < 1e-12 {
				return 0, ErrNoSupport
			}
			m1, err := quadrature.Integrate(func(x float64) float64 {
				return x * m.D.Density(x)
			}, lbc, ubc, quadOpts)
			if err != nil && err != quadrature.ErrMaxIter {
				return 0, err
			}
			return m1.Value / den, nil
		}
		return m.Avg(lb, ub)
	case exact.Variance:
		if yIsX {
			return m.VarianceX(lb, ub)
		}
		return m.VarianceY(lb, ub)
	case exact.StdDev:
		if yIsX {
			return m.StdDevX(lb, ub)
		}
		return m.StdDevY(lb, ub)
	case exact.Percentile:
		return m.Percentile(p, lb, ub)
	default:
		return 0, fmt.Errorf("core: unsupported aggregate %v", af)
	}
}

// SizeBytes reports the gob-serialized size of the model — the paper's
// space-overhead metric (models of "a few 100s KBs" vs samples of MBs).
func (m *UniModel) SizeBytes() int {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return 0
	}
	return buf.Len()
}
