package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dbest/internal/boost"
	"dbest/internal/kde"
	"dbest/internal/parallel"
	"dbest/internal/sample"
	"dbest/internal/sketch"
	"dbest/internal/table"
)

// DefaultSampleSize is the reservoir capacity used when TrainConfig does
// not specify one — the paper's 10k-row default. The ingestion subsystem's
// maintained reservoir mirrors must use the same value, so it is exported
// rather than duplicated.
const DefaultSampleSize = 10000

// TrainConfig controls sampling and model training for one column set.
type TrainConfig struct {
	SampleSize int     // reservoir capacity; default DefaultSampleSize
	Bins       int     // KDE grid bins; default kde.DefaultBins
	Bandwidth  float64 // KDE bandwidth; <= 0 selects Silverman's rule. Set
	// explicitly for ordinal attributes with few discrete values (e.g. a
	// fraction of the key spacing for integer join keys), where a data-driven rule
	// oversmooths heavy skew.
	Seed  int64   // deterministic sampling/training seed
	Scale float64 // logical rows per physical row (simulated big tables); default 1
	// GroupBy enables per-group models over an Int64 column; SampleSize then
	// applies per group (the paper sizes samples "so that on average there
	// will be 10k rows for each GROUP BY value", §4.6).
	GroupBy string
	// MinGroupModel is the minimum per-group sample size that warrants a
	// model; smaller groups retain their raw tuples and answer exactly
	// (paper §2.3 Limitations: "building models over small groups is an
	// overkill; it is preferable to just keep and process the small number
	// of tuples in the group"). Default 30.
	MinGroupModel int
	// EnsemblePLR adds the piecewise-linear constituent to the ensemble.
	EnsemblePLR bool
	// Regressor selects the regression-model family: "" or "ensemble"
	// (the paper's learned-selector ensemble), or a single constituent:
	// "gboost", "xgboost", "plr". Single constituents are used by the
	// ablation experiments on the paper's model-selection design choice.
	Regressor string
	// Boost overrides booster hyperparameters (nil = auto by sample size).
	Boost *boost.Options
	// Workers bounds parallel per-group training (0 = GOMAXPROCS).
	Workers int
	// GridKnots sizes the train-time prefix-integral evaluation grid:
	// 0 builds the default (DefaultGridKnots) grid, a positive value that
	// many knots, and a negative value disables grid building so every
	// integral runs through adaptive quadrature (the A/B baseline).
	GridKnots int
}

func (c *TrainConfig) withDefaults() TrainConfig {
	out := TrainConfig{SampleSize: DefaultSampleSize, Bins: kde.DefaultBins, Scale: 1, MinGroupModel: 30}
	if c == nil {
		return out
	}
	out = *c
	if out.SampleSize <= 0 {
		out.SampleSize = DefaultSampleSize
	}
	if out.Bins <= 0 {
		out.Bins = kde.DefaultBins
	}
	if out.Scale <= 0 {
		out.Scale = 1
	}
	if out.MinGroupModel <= 0 {
		out.MinGroupModel = 30
	}
	return out
}

// RawGroup holds the raw tuples of a group too small to model; queries over
// it are answered exactly (paper §2.3, Limitations).
type RawGroup struct {
	X, Y []float64
}

// TrainStats reports the state-building overheads the paper measures
// (Fig. 4, 12, 16): sampling time, model-training time, and the size of the
// state kept for query processing.
type TrainStats struct {
	SampleTime time.Duration
	TrainTime  time.Duration
	SampleRows int
	ModelBytes int
}

// ModelSet is the catalog unit: every model DBEst keeps for one
// (table, x-columns, y-column, group-by) combination.
type ModelSet struct {
	Table   string
	XCols   []string
	YCol    string
	GroupBy string
	N       float64 // logical row count of the modeled table

	Uni       *UniModel           // len(XCols) == 1, no GROUP BY
	Groups    map[int64]*UniModel // per-group models
	GroupRows map[int64]float64   // logical per-group cardinalities
	Raw       map[int64]*RawGroup // small groups kept as raw tuples
	Multi     *MultiModel         // len(XCols) >= 2

	// Nominal categorical support (§2.3): one model per distinct value of
	// the String column NominalBy.
	NominalBy   string
	Nominal     map[string]*UniModel
	NominalRows map[string]float64
	NominalRaw  map[string]*RawGroup

	// Range-shard metadata. A sharded ensemble trains one independent
	// ModelSet per contiguous x-range shard: Shard is this set's index,
	// Shards the ensemble size, and [ShardLo, ShardHi) the planned range it
	// owns (the first shard extends to -inf and the last to +inf for
	// routing). Shards <= 1 means the set is unsharded.
	Shard            int
	Shards           int
	ShardLo, ShardHi float64

	// Spec is the serialized declarative model definition (the engine's
	// ModelSpec, JSON-encoded) this set was trained from. It rides through
	// gob persistence so a reloaded catalog can re-register the model for
	// staleness tracking and retrain it by re-executing the spec. Empty for
	// models trained before specs existed. core stays agnostic of the
	// encoding: it stores and round-trips the blob, nothing more.
	Spec []byte

	// Sketch makes this set a sketch estimator over XCols[0] instead of a
	// trained model pair: an HLL answering COUNT(DISTINCT x) or a Count-Min
	// TOP-K sketch. Sketch sets have no YCol and no Uni/Groups/Multi; they
	// are kept fresh by absorbing appended values directly (no retraining),
	// and they gob-persist in catalog bundles like every other set.
	Sketch *sketch.Sketch

	Stats TrainStats
}

// Key returns the catalog key identifying this model set. Shard members of
// a sharded ensemble carry an @s<i>/<K> suffix so the K sets coexist in the
// catalog under one base key.
func (ms *ModelSet) Key() string {
	k := ms.BaseKey()
	if ms.Shards > 1 {
		k += fmt.Sprintf("@s%d/%d", ms.Shard, ms.Shards)
	}
	return k
}

// BaseKey returns the catalog key without any shard suffix — the key all
// members of a sharded ensemble share. Sketch sets key on their kind in
// the group-by slot ("t|x||sketch:hll"), so an HLL and a TOP-K sketch on
// the same column coexist and never collide with a model key (models
// always have a y-column).
func (ms *ModelSet) BaseKey() string {
	if ms.Sketch != nil {
		return Key(ms.Table, ms.XCols, "", "sketch:"+string(ms.Sketch.Kind()))
	}
	k := Key(ms.Table, ms.XCols, ms.YCol, ms.GroupBy)
	if ms.NominalBy != "" {
		k += "#" + ms.NominalBy
	}
	return k
}

// Key builds the canonical catalog key for a column set.
func Key(tbl string, xcols []string, ycol, groupBy string) string {
	k := tbl + "|"
	for i, x := range xcols {
		if i > 0 {
			k += ","
		}
		k += x
	}
	return k + "|" + ycol + "|" + groupBy
}

// trainPair fits the (D, R) pair over sample columns xs, ys representing n
// logical rows. A canceled ctx aborts between the density and regressor
// fits — the two long stages — so an abandoned training request stops
// burning CPU at the next fit boundary.
func trainPair(ctx context.Context, xCol, yCol string, xs, ys []float64, n float64, cfg TrainConfig) (*UniModel, error) {
	if len(xs) == 0 {
		return nil, errors.New("core: empty training sample")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d, err := kde.NewBinned(xs, cfg.Bins, cfg.Bandwidth)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := fitRegressor(xs, ys, cfg)
	if err != nil {
		return nil, err
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	m := &UniModel{XCol: xCol, YCol: yCol, N: n, D: d, R: r, XLo: lo, XHi: hi}
	if cfg.GridKnots >= 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		knots := cfg.GridKnots
		if knots == 0 {
			knots = DefaultGridKnots
		}
		// buildGrid returns nil when validation rejects the tables; the
		// model then keeps answering through quadrature. Every trainPair
		// caller — plain, grouped, nominal, shard members, and the
		// refresher's spec re-execution — flows through here, so grids are
		// rebuilt on every retrain without extra plumbing.
		m.Grid = buildGrid(m, knots, cfg.Workers)
	}
	// The error predictor is fitted here, while the training sample is
	// still in hand (it is discarded after training, §3) — like the grid,
	// every caller and every retrain flows through this funnel.
	reg := r.ForRange(lo, hi)
	m.EB = buildErrBounds(xs, ys, reg.Predict1, cfg.Seed)
	return m, nil
}

// fitRegressor trains the configured regression-model family. Single
// constituents are wrapped in a one-model Ensemble so the evaluation code
// paths (per-range selection, integration) stay uniform.
func fitRegressor(xs, ys []float64, cfg TrainConfig) (*boost.Ensemble, error) {
	switch cfg.Regressor {
	case "", "ensemble":
		return boost.FitEnsemble(xs, ys, &boost.EnsembleOptions{
			Boost:      cfg.Boost,
			Seed:       cfg.Seed,
			IncludePLR: cfg.EnsemblePLR,
		})
	case "gboost", "xgboost", "plr":
		X := make([][]float64, len(xs))
		for i := range xs {
			X[i] = []float64{xs[i]}
		}
		var m boost.Regressor
		var err error
		switch cfg.Regressor {
		case "gboost":
			m, err = boost.FitGradientBoost(X, ys, cfg.Boost)
		case "xgboost":
			m, err = boost.FitXGBoost(X, ys, cfg.Boost)
		default:
			m, err = boost.FitPiecewiseLinear(xs, ys, 0)
		}
		if err != nil {
			return nil, err
		}
		return &boost.Ensemble{Models: []boost.Regressor{m}}, nil
	default:
		return nil, fmt.Errorf("core: unknown regressor %q", cfg.Regressor)
	}
}

// Train builds a ModelSet for (xcols, ycol) over tb: it draws the uniform
// (reservoir) sample, trains the model pair (per group if cfg.GroupBy is
// set, multivariate if len(xcols) > 1), records overheads, and discards the
// sample — only models are retained, per §3.
func Train(tb *table.Table, xcols []string, ycol string, cfg *TrainConfig) (*ModelSet, error) {
	return TrainContext(context.Background(), tb, xcols, ycol, cfg)
}

// TrainContext is Train with cancellation: a canceled ctx aborts the build
// at the next fit boundary (between the density and regressor fits, or
// between groups for GROUP BY models) and returns the context's error.
func TrainContext(ctx context.Context, tb *table.Table, xcols []string, ycol string, cfg *TrainConfig) (*ModelSet, error) {
	c := cfg.withDefaults()
	if len(xcols) == 0 {
		return nil, errors.New("core: no predicate columns")
	}
	if tb.NumRows() == 0 {
		return nil, fmt.Errorf("core: table %s is empty", tb.Name)
	}
	for _, x := range xcols {
		if !tb.HasColumn(x) {
			return nil, fmt.Errorf("core: table %s has no column %q", tb.Name, x)
		}
	}
	if !tb.HasColumn(ycol) {
		return nil, fmt.Errorf("core: table %s has no column %q", tb.Name, ycol)
	}
	ms := &ModelSet{
		Table: tb.Name, XCols: append([]string(nil), xcols...), YCol: ycol,
		GroupBy: c.GroupBy, N: float64(tb.NumRows()) * c.Scale,
	}
	switch {
	case c.GroupBy != "":
		if len(xcols) != 1 {
			return nil, errors.New("core: GROUP BY models require a single predicate column")
		}
		if err := trainGrouped(ctx, tb, ms, xcols[0], ycol, c); err != nil {
			return nil, err
		}
	case len(xcols) == 1:
		if err := trainUni(ctx, tb, ms, xcols[0], ycol, c); err != nil {
			return nil, err
		}
	default:
		if err := trainMulti(ctx, tb, ms, xcols, ycol, c); err != nil {
			return nil, err
		}
	}
	ms.Stats.ModelBytes = ms.SizeBytes()
	return ms, nil
}

func trainUni(ctx context.Context, tb *table.Table, ms *ModelSet, xcol, ycol string, c TrainConfig) error {
	t0 := time.Now()
	idx := sample.Uniform(tb.NumRows(), c.SampleSize, c.Seed)
	xs, ys, err := gatherPair(tb, xcol, ycol, idx)
	if err != nil {
		return err
	}
	ms.Stats.SampleTime = time.Since(t0)
	ms.Stats.SampleRows = len(idx)

	t1 := time.Now()
	m, err := trainPair(ctx, xcol, ycol, xs, ys, ms.N, c)
	if err != nil {
		return err
	}
	ms.Stats.TrainTime = time.Since(t1)
	ms.Uni = m
	return nil
}

func trainGrouped(ctx context.Context, tb *table.Table, ms *ModelSet, xcol, ycol string, c TrainConfig) error {
	t0 := time.Now()
	groups, counts, err := sample.ByGroup(tb, c.GroupBy, c.SampleSize, c.Seed)
	if err != nil {
		return err
	}
	type gsample struct {
		g      int64
		xs, ys []float64
	}
	var gss []gsample
	for g, idx := range groups {
		xs, ys, err := gatherPair(tb, xcol, ycol, idx)
		if err != nil {
			return err
		}
		gss = append(gss, gsample{g, xs, ys})
		ms.Stats.SampleRows += len(idx)
	}
	ms.Stats.SampleTime = time.Since(t0)

	t1 := time.Now()
	ms.Groups = make(map[int64]*UniModel, len(gss))
	ms.GroupRows = make(map[int64]float64, len(gss))
	ms.Raw = make(map[int64]*RawGroup)
	models := make([]*UniModel, len(gss))
	// Per-group training is embarrassingly parallel (§3).
	trainErr := parallel.FirstError(len(gss), c.Workers, func(i int) error {
		gs := gss[i]
		if len(gs.xs) < c.MinGroupModel {
			return nil // handled below as a raw group
		}
		cfg := c
		cfg.Seed = c.Seed + gs.g
		// Group training already fans out across workers; keep each
		// group's grid build sequential to avoid nested oversubscription.
		cfg.Workers = 1
		m, err := trainPair(ctx, xcol, ycol, gs.xs, gs.ys, float64(counts[gs.g])*c.Scale, cfg)
		if err != nil {
			return fmt.Errorf("group %d: %w", gs.g, err)
		}
		models[i] = m
		return nil
	})
	if trainErr != nil {
		return trainErr
	}
	for i, gs := range gss {
		ms.GroupRows[gs.g] = float64(counts[gs.g]) * c.Scale
		if models[i] != nil {
			ms.Groups[gs.g] = models[i]
		} else {
			ms.Raw[gs.g] = &RawGroup{X: gs.xs, Y: gs.ys}
		}
	}
	ms.Stats.TrainTime = time.Since(t1)
	return nil
}

func trainMulti(ctx context.Context, tb *table.Table, ms *ModelSet, xcols []string, ycol string, c TrainConfig) error {
	t0 := time.Now()
	idx := sample.Uniform(tb.NumRows(), c.SampleSize, c.Seed)
	cols := make([][]float64, len(xcols))
	for j, xc := range xcols {
		fs, err := tb.Floats(xc)
		if err != nil {
			return err
		}
		cols[j] = fs
	}
	yf, err := tb.Floats(ycol)
	if err != nil {
		return err
	}
	pts := make([][]float64, len(idx))
	ys := make([]float64, len(idx))
	for i, ri := range idx {
		p := make([]float64, len(xcols))
		for j := range xcols {
			p[j] = cols[j][ri]
		}
		pts[i] = p
		ys[i] = yf[ri]
	}
	ms.Stats.SampleTime = time.Since(t0)
	ms.Stats.SampleRows = len(idx)

	t1 := time.Now()
	if err := ctx.Err(); err != nil {
		return err
	}
	// Bound the retained KDE points so the stored model stays compact.
	maxPts := 4096
	d, err := kde.NewMultivariate(pts, nil, maxPts)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	r, err := boost.FitGradientBoost(pts, ys, c.Boost)
	if err != nil {
		return err
	}
	ms.Multi = &MultiModel{
		XCols: append([]string(nil), xcols...), YCol: ycol, N: ms.N, D: d, R: r,
	}
	ms.Stats.TrainTime = time.Since(t1)
	return nil
}

func gatherPair(tb *table.Table, xcol, ycol string, idx []int) (xs, ys []float64, err error) {
	xf, err := tb.Floats(xcol)
	if err != nil {
		return nil, nil, err
	}
	yf, err := tb.Floats(ycol)
	if err != nil {
		return nil, nil, err
	}
	xs = make([]float64, len(idx))
	ys = make([]float64, len(idx))
	for i, ri := range idx {
		xs[i] = xf[ri]
		ys[i] = yf[ri]
	}
	return xs, ys, nil
}
