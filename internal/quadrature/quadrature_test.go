package quadrature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIntegratePolynomial(t *testing.T) {
	// ∫0..1 x^2 dx = 1/3; a K15 rule is exact for polynomials to degree 22.
	r, err := Integrate(func(x float64) float64 { return x * x }, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(r.Value, 1.0/3, 1e-12) {
		t.Fatalf("got %v, want 1/3", r.Value)
	}
	if !r.Converge {
		t.Fatal("should converge")
	}
}

func TestIntegrateReversedLimits(t *testing.T) {
	r, err := Integrate(func(x float64) float64 { return x }, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(r.Value, -0.5, 1e-12) {
		t.Fatalf("got %v, want -0.5", r.Value)
	}
}

func TestIntegrateZeroWidth(t *testing.T) {
	r, err := Integrate(math.Exp, 3, 3, nil)
	if err != nil || r.Value != 0 {
		t.Fatalf("got %v, %v", r.Value, err)
	}
}

func TestIntegrateTranscendental(t *testing.T) {
	// ∫0..π sin x dx = 2.
	r, err := Integrate(math.Sin, 0, math.Pi, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(r.Value, 2, 1e-10) {
		t.Fatalf("got %v, want 2", r.Value)
	}
}

func TestIntegrateNeedsAdaptivity(t *testing.T) {
	// A narrow Gaussian spike off-center defeats an unrefined rule; adaptive
	// subdivision must localize it.
	f := func(x float64) float64 {
		d := (x - 0.123) / 0.05
		return math.Exp(-0.5*d*d) / (0.05 * math.Sqrt(2*math.Pi))
	}
	r, err := Integrate(f, -10, 10, &Options{AbsTol: 1e-9, RelTol: 1e-9, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(r.Value, 1, 1e-6) {
		t.Fatalf("got %v, want 1 (subdivs=%d)", r.Value, r.Subdivs)
	}
	if r.Subdivs == 0 {
		t.Fatal("expected at least one subdivision")
	}
}

func TestIntegrateMaxIter(t *testing.T) {
	// An oscillatory integrand with an absurdly tight budget must report
	// ErrMaxIter while still returning an estimate.
	f := func(x float64) float64 { return math.Sin(1000 * x) }
	_, err := Integrate(f, 0, 10, &Options{AbsTol: 1e-14, RelTol: 1e-14, MaxIter: 1})
	if err != ErrMaxIter {
		t.Fatalf("err = %v, want ErrMaxIter", err)
	}
}

func TestIntegrateAgainstSimpson(t *testing.T) {
	fns := []struct {
		name string
		f    func(float64) float64
		a, b float64
	}{
		{"exp", math.Exp, -1, 2},
		{"cos", math.Cos, 0, 5},
		{"rational", func(x float64) float64 { return 1 / (1 + x*x) }, -3, 3},
		{"sqrtish", func(x float64) float64 { return math.Sqrt(x + 1.0001) }, -1, 1},
	}
	for _, tc := range fns {
		r, err := Integrate(tc.f, tc.a, tc.b, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := Simpson(tc.f, tc.a, tc.b, 20000)
		if !approxEq(r.Value, want, 1e-6*math.Max(1, math.Abs(want))) {
			t.Errorf("%s: adaptive %v vs simpson %v", tc.name, r.Value, want)
		}
	}
}

func TestIntegrate2D(t *testing.T) {
	// ∫0..1 ∫0..2 (x + y) dy dx = ∫0..1 (2x + 2) dx = 3.
	r, err := Integrate2D(func(x, y float64) float64 { return x + y }, 0, 1, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(r.Value, 3, 1e-8) {
		t.Fatalf("got %v, want 3", r.Value)
	}
}

func TestIntegrate2DGaussian(t *testing.T) {
	// A standard bivariate normal integrates to ~1 over [-6,6]^2.
	f := func(x, y float64) float64 {
		return math.Exp(-0.5*(x*x+y*y)) / (2 * math.Pi)
	}
	r, err := Integrate2D(f, -6, 6, -6, 6, &Options{AbsTol: 1e-8, RelTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(r.Value, 1, 1e-6) {
		t.Fatalf("got %v, want 1", r.Value)
	}
}

func TestFixedTensor2D(t *testing.T) {
	// ∫0..1 ∫0..2 (x + y) dy dx = 3, exactly integrated by K15.
	got := FixedTensor2D(func(x, y float64) float64 { return x + y }, 0, 1, 0, 2, 1)
	if !approxEq(got, 3, 1e-10) {
		t.Fatalf("got %v, want 3", got)
	}
	// Bivariate normal over [-6,6]²: needs a few panels for the peak.
	f := func(x, y float64) float64 { return math.Exp(-0.5*(x*x+y*y)) / (2 * math.Pi) }
	got = FixedTensor2D(f, -6, 6, -6, 6, 3)
	if !approxEq(got, 1, 1e-4) {
		t.Fatalf("got %v, want 1", got)
	}
	// panels < 1 clamps to 1 rather than panicking.
	got = FixedTensor2D(func(x, y float64) float64 { return 1 }, 0, 1, 0, 1, 0)
	if !approxEq(got, 1, 1e-10) {
		t.Fatalf("got %v, want 1", got)
	}
}

func TestSimpsonOddPanels(t *testing.T) {
	got := Simpson(func(x float64) float64 { return x }, 0, 1, 3) // rounded to 4
	if !approxEq(got, 0.5, 1e-12) {
		t.Fatalf("got %v", got)
	}
	got = Simpson(func(x float64) float64 { return x }, 0, 1, 0) // clamped to 2
	if !approxEq(got, 0.5, 1e-12) {
		t.Fatalf("got %v", got)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(root, math.Sqrt2, 1e-10) {
		t.Fatalf("got %v, want sqrt(2)", root)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	if r, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-9, 100); err != nil || r != 0 {
		t.Fatalf("got %v, %v", r, err)
	}
	if r, err := Bisect(func(x float64) float64 { return x - 1 }, 0, 1, 1e-9, 100); err != nil || r != 1 {
		t.Fatalf("got %v, %v", r, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9, 100); err == nil {
		t.Fatal("want error when no sign change")
	}
}

func TestBisectDefaultMaxIter(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x - 0.25 }, 0, 1, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(root, 0.25, 1e-10) {
		t.Fatalf("got %v", root)
	}
}

// Property: for random cubic polynomials the adaptive integral matches the
// closed-form antiderivative to tight tolerance.
func TestIntegrateCubicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c0, c1, c2, c3 := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		a := rng.Float64()*4 - 2
		b := a + rng.Float64()*4
		fn := func(x float64) float64 { return c0 + x*(c1+x*(c2+x*c3)) }
		anti := func(x float64) float64 {
			return c0*x + c1*x*x/2 + c2*x*x*x/3 + c3*x*x*x*x/4
		}
		want := anti(b) - anti(a)
		r, err := Integrate(fn, a, b, nil)
		if err != nil {
			return false
		}
		return approxEq(r.Value, want, 1e-9*math.Max(1, math.Abs(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: integral is additive over adjacent intervals.
func TestIntegrateAdditivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64() * 2
		m := a + rng.Float64()
		b := m + rng.Float64()
		fn := func(x float64) float64 { return math.Sin(3*x) + x*x }
		whole, err1 := Integrate(fn, a, b, nil)
		left, err2 := Integrate(fn, a, m, nil)
		right, err3 := Integrate(fn, m, b, nil)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return approxEq(whole.Value, left.Value+right.Value, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: bisection root r satisfies |f(r)| small for monotone functions.
func TestBisectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Float64()*5 + 0.1
		c := rng.Float64()*10 - 5
		fn := func(x float64) float64 { return k*(x-c) + 0.5*math.Tanh(x-c) }
		root, err := Bisect(fn, c-20, c+20, 1e-12, 300)
		if err != nil {
			return false
		}
		return math.Abs(root-c) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
