// Package quadrature implements adaptive numerical integration and root
// finding. It is a from-scratch replacement for the SciPy integrate module
// the paper relies on (§3, Integral Evaluation), which in turn wraps the
// Fortran QUADPACK library: the core routine here is an adaptive
// (G7, K15) Gauss–Kronrod scheme equivalent to QUADPACK's QAG, with
// per-interval error estimation and a worst-interval-first subdivision
// strategy. A bisection root finder (used by PERCENTILE, paper Eq. 4) and a
// tensor-product 2-D rule (used by multivariate predicates, Eq. 10) round
// out the package.
package quadrature

import (
	"errors"
	"math"

	"dbest/internal/parallel"
)

// Gauss–Kronrod (G7, K15) nodes and weights on [-1, 1]. The 15 Kronrod nodes
// interleave the 7 Gauss nodes; the difference between the two quadrature
// sums provides the error estimate, exactly as in QUADPACK.
var (
	kronrodNodes = [15]float64{
		-0.991455371120813, -0.949107912342759, -0.864864423359769,
		-0.741531185599394, -0.586087235467691, -0.405845151377397,
		-0.207784955007898, 0.0,
		0.207784955007898, 0.405845151377397, 0.586087235467691,
		0.741531185599394, 0.864864423359769, 0.949107912342759,
		0.991455371120813,
	}
	kronrodWeights = [15]float64{
		0.022935322010529, 0.063092092629979, 0.104790010322250,
		0.140653259715525, 0.169004726639267, 0.190350578064785,
		0.204432940075298, 0.209482141084728,
		0.204432940075298, 0.190350578064785, 0.169004726639267,
		0.140653259715525, 0.104790010322250, 0.063092092629979,
		0.022935322010529,
	}
	// gaussWeights[i] pairs with kronrodNodes[2i+1] (the embedded G7 rule).
	gaussWeights = [7]float64{
		0.129484966168870, 0.279705391489277, 0.381830050505119,
		0.417959183673469, 0.381830050505119, 0.279705391489277,
		0.129484966168870,
	}
)

// Options controls the adaptive integrator.
type Options struct {
	AbsTol        float64 // absolute error target (epsabs); default 1e-10
	RelTol        float64 // relative error target (epsrel); default 1e-8
	MaxIter       int     // maximum interval subdivisions; default 200
	InitialPanels int     // initial uniform partition; default 8
}

func (o *Options) withDefaults() Options {
	out := Options{AbsTol: 1e-10, RelTol: 1e-8, MaxIter: 200, InitialPanels: 8}
	if o == nil {
		return out
	}
	if o.AbsTol > 0 {
		out.AbsTol = o.AbsTol
	}
	if o.RelTol > 0 {
		out.RelTol = o.RelTol
	}
	if o.MaxIter > 0 {
		out.MaxIter = o.MaxIter
	}
	if o.InitialPanels > 0 {
		out.InitialPanels = o.InitialPanels
	}
	return out
}

// Result reports the value of an integral and its estimated absolute error.
type Result struct {
	Value    float64
	ErrEst   float64
	Evals    int // function evaluations performed
	Subdivs  int // interval subdivisions performed
	Converge bool
}

// ErrMaxIter is reported when the subdivision budget is exhausted before the
// error tolerances are met. The best available estimate is still returned.
var ErrMaxIter = errors.New("quadrature: maximum subdivisions reached")

type interval struct {
	a, b   float64
	value  float64
	errEst float64
}

// intervalHeap is a typed max-heap ordered by errEst (worst interval on
// top). It deliberately avoids container/heap: that interface boxes every
// Push/Pop operand into an interface{}, allocating once per subdivision on
// what is the hottest loop of every cold (uncached) model query.
type intervalHeap []interval

func (h *intervalHeap) push(it interval) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].errEst >= s[i].errEst {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *intervalHeap) pop() interval {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	h.siftDown(0)
	return top
}

func (h *intervalHeap) siftDown(i int) {
	s := *h
	n := len(s)
	for {
		worst := i
		if l := 2*i + 1; l < n && s[l].errEst > s[worst].errEst {
			worst = l
		}
		if r := 2*i + 2; r < n && s[r].errEst > s[worst].errEst {
			worst = r
		}
		if worst == i {
			return
		}
		s[i], s[worst] = s[worst], s[i]
		i = worst
	}
}

func (h *intervalHeap) init() {
	for i := len(*h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// gk15 evaluates the (G7, K15) rule on [a, b], returning the Kronrod value
// and the QUADPACK-style error estimate.
func gk15(f func(float64) float64, a, b float64) (value, errEst float64) {
	c := 0.5 * (a + b)
	h := 0.5 * (b - a)
	var kron, gauss, resAbs, resAsc float64
	var fv [15]float64
	for i, x := range kronrodNodes {
		fx := f(c + h*x)
		fv[i] = fx
		kron += kronrodWeights[i] * fx
		resAbs += kronrodWeights[i] * math.Abs(fx)
	}
	for i := 0; i < 7; i++ {
		gauss += gaussWeights[i] * fv[2*i+1]
	}
	mean := 0.5 * kron
	for i := range fv {
		resAsc += kronrodWeights[i] * math.Abs(fv[i]-mean)
	}
	value = kron * h
	resAbs *= math.Abs(h)
	resAsc *= math.Abs(h)
	errEst = math.Abs((kron - gauss) * h)
	// QUADPACK error rescaling: sharpen the raw difference when it is small
	// relative to the function's variation.
	if resAsc != 0 && errEst != 0 {
		errEst = resAsc * math.Min(1, math.Pow(200*errEst/resAsc, 1.5))
	}
	const epmach = 2.220446049250313e-16
	if resAbs > math.SmallestNonzeroFloat64/(50*epmach) {
		errEst = math.Max(epmach*50*resAbs, errEst)
	}
	return value, errEst
}

// Integrate computes ∫_a^b f(x) dx with adaptive (G7, K15) Gauss–Kronrod
// subdivision. If b < a the sign convention of integrals is honored.
func Integrate(f func(float64) float64, a, b float64, opts *Options) (Result, error) {
	o := opts.withDefaults()
	if a == b {
		return Result{Converge: true}, nil
	}
	sign := 1.0
	if b < a {
		a, b = b, a
		sign = -1
	}

	// Seed the work heap with a uniform partition rather than one panel: a
	// density integrand whose mass is concentrated far from any node of a
	// single (G7, K15) panel would otherwise yield a zero error estimate and
	// never be refined.
	var res Result
	h := make(intervalHeap, 0, o.InitialPanels)
	step := (b - a) / float64(o.InitialPanels)
	for i := 0; i < o.InitialPanels; i++ {
		pa := a + float64(i)*step
		pb := pa + step
		if i == o.InitialPanels-1 {
			pb = b
		}
		v, e := gk15(f, pa, pb)
		res.Value += v
		res.ErrEst += e
		res.Evals += 15
		h = append(h, interval{pa, pb, v, e})
	}
	h.init()

	tol := func(total float64) float64 {
		return math.Max(o.AbsTol, o.RelTol*math.Abs(total))
	}
	for res.ErrEst > tol(res.Value) && res.Subdivs < o.MaxIter {
		worst := h.pop()
		mid := 0.5 * (worst.a + worst.b)
		if mid == worst.a || mid == worst.b {
			// Interval no longer splittable at float64 resolution.
			h.push(worst)
			break
		}
		lv, le := gk15(f, worst.a, mid)
		rv, re := gk15(f, mid, worst.b)
		res.Evals += 30
		res.Subdivs++
		res.Value += lv + rv - worst.value
		res.ErrEst += le + re - worst.errEst
		h.push(interval{worst.a, mid, lv, le})
		h.push(interval{mid, worst.b, rv, re})
	}
	res.Value *= sign
	if res.ErrEst <= tol(res.Value) {
		res.Converge = true
		return res, nil
	}
	return res, ErrMaxIter
}

// CumulativeGK15 is the builder primitive for prefix-integral evaluation
// grids: it integrates m integrands over every panel [knots[i], knots[i+1]]
// with a single (G7, K15) application per panel, panel-parallel across up to
// workers goroutines, and returns one prefix-sum table per integrand:
//
//	tables[j][i] = ∫_{knots[0]}^{knots[i]} f_j(x) dx
//
// The integrands are evaluated jointly — f fills out[0..m) at a point x —
// so integrands sharing an expensive common factor (a KDE density times
// several regressor constituents) pay for that factor once per node, not
// once per table. knots must be sorted ascending with at least two entries.
func CumulativeGK15(f func(x float64, out []float64), m int, knots []float64, workers int) [][]float64 {
	panels := len(knots) - 1
	if panels < 1 || m < 1 {
		return nil
	}
	// One flat panel×integrand scratch array keeps per-panel writes disjoint
	// across workers without any locking.
	flat := make([]float64, panels*m)
	parallel.ForEach(panels, workers, func(i int) {
		a, b := knots[i], knots[i+1]
		c := 0.5 * (a + b)
		hw := 0.5 * (b - a)
		acc := flat[i*m : (i+1)*m]
		out := make([]float64, m)
		for k, xn := range kronrodNodes {
			f(c+hw*xn, out)
			w := kronrodWeights[k]
			for j := 0; j < m; j++ {
				acc[j] += w * out[j]
			}
		}
		for j := 0; j < m; j++ {
			acc[j] *= hw
		}
	})
	tables := make([][]float64, m)
	for j := 0; j < m; j++ {
		t := make([]float64, len(knots))
		for i := 0; i < panels; i++ {
			t[i+1] = t[i] + flat[i*m+j]
		}
		tables[j] = t
	}
	return tables
}

// Integrate2D computes the double integral of f over [ax,bx] × [ay,by] using
// a tensor product of the (G7, K15) rule with adaptive refinement on the
// outer variable. This serves the multivariate aggregates of Eq. 10.
func Integrate2D(f func(x, y float64) float64, ax, bx, ay, by float64, opts *Options) (Result, error) {
	inner := func(x float64) float64 {
		r, _ := Integrate(func(y float64) float64 { return f(x, y) }, ay, by, opts)
		return r.Value
	}
	return Integrate(inner, ax, bx, opts)
}

// FixedTensor2D computes the double integral of f over [ax,bx] × [ay,by]
// with a non-adaptive tensor product of K15 panels (panels × panels grid).
// It trades the adaptive rule's error control for a bounded, predictable
// evaluation count — (15·panels)² — which is what the multivariate
// aggregates need when each integrand evaluation costs a full KDE sum.
func FixedTensor2D(f func(x, y float64) float64, ax, bx, ay, by float64, panels int) float64 {
	if panels < 1 {
		panels = 1
	}
	// Precompute the flattened node/weight grids per axis.
	nx := make([]float64, 0, 15*panels)
	wx := make([]float64, 0, 15*panels)
	ny := make([]float64, 0, 15*panels)
	wy := make([]float64, 0, 15*panels)
	fill := func(a, b float64, nodes, weights *[]float64) {
		step := (b - a) / float64(panels)
		for p := 0; p < panels; p++ {
			c := a + (float64(p)+0.5)*step
			h := 0.5 * step
			for i, x := range kronrodNodes {
				*nodes = append(*nodes, c+h*x)
				*weights = append(*weights, kronrodWeights[i]*h)
			}
		}
	}
	fill(ax, bx, &nx, &wx)
	fill(ay, by, &ny, &wy)
	sum := 0.0
	for i, xv := range nx {
		inner := 0.0
		for j, yv := range ny {
			inner += wy[j] * f(xv, yv)
		}
		sum += wx[i] * inner
	}
	return sum
}

// Simpson computes ∫_a^b f with composite Simpson's rule on n panels
// (n rounded up to even). It is the simple fallback integrator and a test
// oracle for the adaptive rule.
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// Bisect finds a root of f in [a, b] by bisection — the "Naive Bisection
// method" the paper uses for PERCENTILE (Eq. 4). f(a) and f(b) must bracket
// a sign change. tol is the interval-width tolerance.
func Bisect(f func(float64) float64, a, b, tol float64, maxIter int) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, errors.New("bisect: no sign change in [a, b]")
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	for i := 0; i < maxIter; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}
