package quadrature

import (
	"math"
	"testing"
)

func BenchmarkIntegrateSmooth(b *testing.B) {
	f := func(x float64) float64 { return math.Exp(-x*x) * math.Cos(3*x) }
	for i := 0; i < b.N; i++ {
		if _, err := Integrate(f, -3, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntegrateSpiky(b *testing.B) {
	f := func(x float64) float64 {
		d := (x - 0.3) / 0.02
		return math.Exp(-0.5 * d * d)
	}
	opts := &Options{AbsTol: 1e-9, RelTol: 1e-7, MaxIter: 500}
	for i := 0; i < b.N; i++ {
		if _, err := Integrate(f, -5, 5, opts); err != nil && err != ErrMaxIter {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntegrateAllocs tracks per-call allocations of the adaptive rule
// (run with -benchmem). The typed panel heap amortizes to zero steady-state
// allocations per push; the previous container/heap implementation boxed
// every panel into an interface{}, costing one allocation per subdivision.
func BenchmarkIntegrateAllocs(b *testing.B) {
	f := func(x float64) float64 {
		// A kink plus two incommensurate oscillations forces deep,
		// uneven subdivision — the heap-heavy regime.
		if x < 0.37 {
			return math.Sin(40 * x)
		}
		return math.Cos(17*x) + 0.5
	}
	opts := &Options{AbsTol: 1e-10, RelTol: 1e-8, MaxIter: 256}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Integrate(f, 0, 1, opts); err != nil && err != ErrMaxIter {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixedTensor2D(b *testing.B) {
	f := func(x, y float64) float64 { return math.Exp(-0.5 * (x*x + y*y)) }
	for i := 0; i < b.N; i++ {
		_ = FixedTensor2D(f, -2, 2, -2, 2, 2)
	}
}

func BenchmarkBisect(b *testing.B) {
	f := func(x float64) float64 { return math.Erf(x) - 0.5 }
	for i := 0; i < b.N; i++ {
		if _, err := Bisect(f, -5, 5, 1e-12, 200); err != nil {
			b.Fatal(err)
		}
	}
}
