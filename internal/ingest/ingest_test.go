package ingest

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dbest/internal/sample"
)

func noRetrain(context.Context) error { return nil }

func TestLedgerStalenessAccrual(t *testing.T) {
	l := NewLedger()
	l.Register("m1", []string{"t"}, 1000, 1000, 100, 1, noRetrain)

	sts := l.Snapshot()
	if len(sts) != 1 {
		t.Fatalf("Snapshot len = %d, want 1", len(sts))
	}
	s := sts[0]
	if s.Score != 0 || s.IngestedRows != 0 || s.BaseRows != 1000 {
		t.Fatalf("fresh entry not clean: %+v", s)
	}

	l.Append("t", 500, nil)
	s = l.Snapshot()[0]
	if s.IngestedRows != 500 {
		t.Fatalf("IngestedRows = %d, want 500", s.IngestedRows)
	}
	if want := 0.5; s.FracIngested != want {
		t.Fatalf("FracIngested = %g, want %g", s.FracIngested, want)
	}
	if s.Score < 0.5 {
		t.Fatalf("Score = %g, want >= 0.5", s.Score)
	}
	// The maintained reservoir must mirror offering the whole stream.
	ref := sample.NewReservoir(100, 1)
	ref.Advance(1000)
	want := ref.Advance(500)
	if s.ReservoirReplaced != want {
		t.Fatalf("ReservoirReplaced = %d, want %d", s.ReservoirReplaced, want)
	}
}

func TestLedgerAppendOnlyFeedsWatchers(t *testing.T) {
	l := NewLedger()
	l.Register("m1", []string{"a"}, 100, 100, 10, 1, noRetrain)
	l.Register("m2", []string{"b"}, 100, 100, 10, 1, noRetrain)
	l.Register("j", []string{"a", "b"}, 200, 200, 0, 1, noRetrain)

	l.Append("a", 50, nil)
	for _, s := range l.Snapshot() {
		switch s.Key {
		case "m1":
			if s.IngestedRows != 50 {
				t.Fatalf("m1 ingested %d, want 50", s.IngestedRows)
			}
		case "m2":
			if s.IngestedRows != 0 {
				t.Fatalf("m2 ingested %d, want 0", s.IngestedRows)
			}
		case "j":
			if s.IngestedRows != 50 {
				t.Fatalf("join ingested %d, want 50", s.IngestedRows)
			}
			if s.ReservoirSize != 0 {
				t.Fatalf("join should not maintain a reservoir, got size %d", s.ReservoirSize)
			}
		}
	}
}

func TestLedgerInvalidateForcesScore(t *testing.T) {
	l := NewLedger()
	l.Register("m1", []string{"t"}, 1000, 1000, 100, 1, noRetrain)
	l.Invalidate("t")
	if s := l.Snapshot()[0]; s.Score != 1 {
		t.Fatalf("Score after Invalidate = %g, want 1", s.Score)
	}
	// claim picks it up even though nothing was ingested.
	cl := l.claim(0.5, 10)
	if len(cl) != 1 || cl[0].key != "m1" {
		t.Fatalf("claim = %v, want [m1]", cl)
	}
	// ... and marks it in-flight so a second scan cannot double-dispatch.
	if cl2 := l.claim(0.5, 10); len(cl2) != 0 {
		t.Fatalf("second claim dispatched %d entries, want 0", len(cl2))
	}
}

func TestLedgerClaimThresholds(t *testing.T) {
	l := NewLedger()
	l.Register("m1", []string{"t"}, 1000, 1000, 100, 1, noRetrain)
	l.Append("t", 40, nil) // 4% ingested
	if cl := l.claim(0.5, 1); len(cl) != 0 {
		t.Fatalf("claimed below threshold: %v", cl)
	}
	l.Append("t", 960, nil) // 100% ingested
	if cl := l.claim(0.5, 1); len(cl) != 1 {
		t.Fatalf("claim = %v, want 1 entry", cl)
	}
}

func TestLedgerFailureBacksOffUntilNewRows(t *testing.T) {
	l := NewLedger()
	l.Register("m1", []string{"t"}, 100, 100, 10, 1, noRetrain)
	l.Append("t", 100, nil)

	cl := l.claim(0.1, 1)
	if len(cl) != 1 {
		t.Fatalf("claim = %v, want 1 entry", cl)
	}
	l.finish("m1", time.Millisecond, errors.New("boom"))
	s := l.Snapshot()[0]
	if s.Failures != 1 || s.LastError != "boom" {
		t.Fatalf("failure not recorded: %+v", s)
	}
	// Same ingested count: no retry.
	if cl := l.claim(0.1, 1); len(cl) != 0 {
		t.Fatal("failed entry retried without new rows")
	}
	// New rows arrive: retried.
	l.Append("t", 1, nil)
	if cl := l.claim(0.1, 1); len(cl) != 1 {
		t.Fatal("failed entry not retried after new rows")
	}
}

func TestLedgerRegisterPreservesHistory(t *testing.T) {
	l := NewLedger()
	l.Register("m1", []string{"t"}, 100, 100, 10, 1, noRetrain)
	l.Append("t", 100, nil)
	l.claim(0.1, 1)
	l.Register("m1", []string{"t"}, 200, 200, 10, 1, noRetrain) // the retrain re-registers
	l.finish("m1", 5*time.Millisecond, nil)

	s := l.Snapshot()[0]
	if s.Refreshes != 1 {
		t.Fatalf("Refreshes = %d, want 1", s.Refreshes)
	}
	if s.IngestedRows != 0 || s.BaseRows != 200 {
		t.Fatalf("staleness not reset by re-register: %+v", s)
	}
	if s.LastRetrain != 5*time.Millisecond {
		t.Fatalf("LastRetrain = %v", s.LastRetrain)
	}
}

func TestRefresherRetrainsStaleModels(t *testing.T) {
	l := NewLedger()
	var retrains atomic.Int32
	var mu sync.Mutex
	var register func()
	register = func() {
		l.Register("m1", []string{"t"}, 200, 200, 10, 1, func(ctx context.Context) error {
			retrains.Add(1)
			mu.Lock()
			register() // the engine's retrain path re-registers the entry
			mu.Unlock()
			return nil
		})
	}
	mu.Lock()
	register()
	mu.Unlock()

	r := NewRefresher(l, &RefresherOptions{Interval: time.Hour, Threshold: 0.5, Workers: 2})
	r.Start()
	defer r.Stop()

	l.Append("t", 150, nil) // 75% stale
	r.Kick()
	deadline := time.Now().Add(5 * time.Second)
	for retrains.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("refresher never retrained the stale model")
		}
		time.Sleep(time.Millisecond)
		r.Kick()
	}
	// Wait for finish() so stats settle.
	for time.Now().Before(deadline) {
		if st := r.Stats(); st.Refreshes >= 1 {
			if st.Failures != 0 {
				t.Fatalf("unexpected failures: %+v", st)
			}
			if st.TrackedModels != 1 {
				t.Fatalf("TrackedModels = %d, want 1", st.TrackedModels)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("refresher stats never recorded the refresh")
}

func TestRefresherRecordsFailures(t *testing.T) {
	l := NewLedger()
	l.Register("m1", []string{"t"}, 100, 100, 10, 1, func(ctx context.Context) error {
		return errors.New("table dropped")
	})
	r := NewRefresher(l, &RefresherOptions{Interval: time.Hour, Threshold: 0.1})
	r.Start()
	defer r.Stop()

	l.Append("t", 100, nil)
	r.Kick()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := r.Stats()
		if st.Failures >= 1 {
			if st.LastError != "table dropped" {
				t.Fatalf("LastError = %q", st.LastError)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("refresher never recorded the failure")
		}
		time.Sleep(time.Millisecond)
	}
	if s := l.Snapshot()[0]; s.Failures != 1 || s.LastError != "table dropped" {
		t.Fatalf("ledger failure not recorded: %+v", s)
	}
}

func TestRefresherStopCancelsInFlight(t *testing.T) {
	l := NewLedger()
	started := make(chan struct{})
	l.Register("m1", []string{"t"}, 100, 100, 10, 1, func(ctx context.Context) error {
		close(started)
		<-ctx.Done() // a retrain that only ends when canceled
		return ctx.Err()
	})
	r := NewRefresher(l, &RefresherOptions{Interval: time.Hour, Threshold: 0.1})
	r.Start()
	l.Append("t", 100, nil)
	r.Kick()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("retrain never started")
	}
	done := make(chan struct{})
	go func() { r.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not cancel the in-flight retrain")
	}
	if r.Stats().Running {
		t.Fatal("Stats still reports Running after Stop")
	}
}

func TestLedgerDropAndClear(t *testing.T) {
	l := NewLedger()
	l.Register("m1", []string{"t"}, 100, 100, 10, 1, noRetrain)
	l.Register("m2", []string{"t"}, 100, 100, 10, 1, noRetrain)
	l.Drop("m1")
	if l.Len() != 1 {
		t.Fatalf("Len = %d after Drop, want 1", l.Len())
	}
	l.Clear()
	if l.Len() != 0 {
		t.Fatalf("Len = %d after Clear, want 0", l.Len())
	}
}

// Rows appended while a (re)train ran must be credited as already-ingested
// at registration instead of vanishing with the ledger reset.
func TestRegisterCreditsRowsAppendedDuringTrain(t *testing.T) {
	l := NewLedger()
	// Trained over 1000 rows, but the table held 1300 by the time training
	// finished: 300 rows arrived mid-train.
	l.Register("m1", []string{"t"}, 1000, 1300, 100, 1, noRetrain)
	s := l.Snapshot()[0]
	if s.IngestedRows != 300 {
		t.Fatalf("IngestedRows = %d, want 300 (rows appended during train)", s.IngestedRows)
	}
	if s.FracIngested != 0.3 {
		t.Fatalf("FracIngested = %g, want 0.3", s.FracIngested)
	}
	// The maintained reservoir advanced over the mid-train rows too.
	ref := sample.NewReservoir(100, 1)
	ref.Advance(1000)
	if want := ref.Advance(300); s.ReservoirReplaced != want {
		t.Fatalf("ReservoirReplaced = %d, want %d", s.ReservoirReplaced, want)
	}
}

// A forced invalidation (table re-registered) must survive a failed
// retrain attempt: only success clears it.
func TestForcedSurvivesFailedRetrain(t *testing.T) {
	l := NewLedger()
	l.Register("m1", []string{"t"}, 1000, 1000, 100, 1, noRetrain)
	l.Invalidate("t")

	cl := l.claim(0.5, 1)
	if len(cl) != 1 {
		t.Fatalf("claim = %v, want 1 entry", cl)
	}
	l.finish("m1", time.Millisecond, errors.New("transient"))
	if s := l.Snapshot()[0]; s.Score != 1 {
		t.Fatalf("Score = %g after failed forced retrain, want 1 (forced lost)", s.Score)
	}
	// The failure backoff applies: no immediate thrash...
	if cl := l.claim(0.5, 1); len(cl) != 0 {
		t.Fatal("failed forced entry retried without new rows")
	}
	// ...but new rows re-arm it, and success finally clears forced.
	l.Append("t", 1, nil)
	if cl := l.claim(0.5, 1); len(cl) != 1 {
		t.Fatal("failed forced entry not retried after new rows")
	}
	l.finish("m1", time.Millisecond, nil)
	if s := l.Snapshot()[0]; s.Score == 1 {
		t.Fatalf("forced not cleared by successful retrain: %+v", s)
	}
}

// A claim released by shutdown must not count as an attempt: the forced
// bit and staleness stay, and no failure is recorded.
func TestReleaseKeepsClaimPristine(t *testing.T) {
	l := NewLedger()
	l.Register("m1", []string{"t"}, 1000, 1000, 100, 1, noRetrain)
	l.Invalidate("t")
	if cl := l.claim(0.5, 1); len(cl) != 1 {
		t.Fatal("claim failed")
	}
	l.release("m1")
	s := l.Snapshot()[0]
	if s.Refreshing || s.Failures != 0 || s.LastError != "" || s.Score != 1 {
		t.Fatalf("release mutated the entry: %+v", s)
	}
	// Immediately claimable again.
	if cl := l.claim(0.5, 1); len(cl) != 1 {
		t.Fatal("released entry not claimable")
	}
}

// FracReplaced is a fraction of the sample: heavy over-ingest must clamp
// at 1.0, not report 1.39 slots-worth of admissions.
func TestFracReplacedNeverExceedsOne(t *testing.T) {
	l := NewLedger()
	l.Register("m1", []string{"t"}, 10000, 10000, 1000, 1, noRetrain)
	for i := 0; i < 10; i++ {
		l.Append("t", 10000, nil) // 100k rows over a 10k-row base
	}
	s := l.Snapshot()[0]
	if s.FracReplaced > 1 || s.ReservoirReplaced > s.ReservoirSize {
		t.Fatalf("FracReplaced = %g (%d/%d), must not exceed 1",
			s.FracReplaced, s.ReservoirReplaced, s.ReservoirSize)
	}
	if s.FracReplaced < 0.5 {
		t.Fatalf("FracReplaced = %g after 10x over-ingest, want near 1", s.FracReplaced)
	}
	// Register's mid-train credit path clamps too.
	l.Register("m2", []string{"t"}, 10000, 200000, 1000, 1, noRetrain)
	if s := l.Snapshot()[1]; s.FracReplaced > 1 {
		t.Fatalf("Register credit FracReplaced = %g, must not exceed 1", s.FracReplaced)
	}
}

// TestAppendRoutesToOwningShard: appended rows credit only the shard whose
// x-range owns them, so ingest concentrated in one region dirties one
// shard. A nil column accessor (or an unresolvable column) falls back to
// crediting every shard — stale-eager, never stale-silent.
func TestAppendRoutesToOwningShard(t *testing.T) {
	l := NewLedger()
	// Three shards over x: (-inf,10), [10,20), [20,+inf).
	for i := 0; i < 3; i++ {
		l.RegisterShard("m@s"+string(rune('0'+i))+"/3", []string{"t"}, 100, 100, 50, 7,
			"x", i, 3, float64(i*10), float64((i+1)*10), nil)
	}
	vals := map[string][]float64{"x": {12, 15, 19, 5, 25}}
	l.Append("t", 5, func(col string) []float64 { return vals[col] })
	got := map[int]int{}
	for _, st := range l.Snapshot() {
		if st.Shards != 3 {
			t.Fatalf("staleness %q missing shard metadata: %+v", st.Key, st)
		}
		got[st.Shard] = st.IngestedRows
	}
	if got[0] != 1 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("per-shard ingested = %v, want map[0:1 1:3 2:1]", got)
	}
	// Edge shards are open-ended: far-out values still have an owner.
	l.Append("t", 2, func(col string) []float64 { return []float64{-1e9, 1e9} })
	got = map[int]int{}
	for _, st := range l.Snapshot() {
		got[st.Shard] = st.IngestedRows
	}
	if got[0] != 2 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("per-shard ingested = %v, want map[0:2 1:3 2:2]", got)
	}
	// Unresolvable column: every shard is credited.
	l.Append("t", 4, func(col string) []float64 { return nil })
	for _, st := range l.Snapshot() {
		if st.IngestedRows < 4 {
			t.Fatalf("nil column accessor must credit all shards: %+v", st)
		}
	}
}

// TestClaimOnlyDirtyShard: with per-shard routing, claim must select only
// the shard whose staleness crossed the threshold.
func TestClaimOnlyDirtyShard(t *testing.T) {
	l := NewLedger()
	retrained := make(map[string]int)
	for i := 0; i < 4; i++ {
		key := "m@s" + string(rune('0'+i)) + "/4"
		l.RegisterShard(key, []string{"t"}, 1000, 1000, 100, 7,
			"x", i, 4, float64(i*10), float64((i+1)*10), func(ctx context.Context) error {
				retrained[key]++
				return nil
			})
	}
	// 500 rows, all landing in shard 1's range.
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 15
	}
	l.Append("t", 500, func(col string) []float64 { return xs })
	claims := l.claim(0.1, 1)
	if len(claims) != 1 || claims[0].key != "m@s1/4" {
		keys := make([]string, len(claims))
		for i, c := range claims {
			keys[i] = c.key
		}
		t.Fatalf("claimed %v, want only the dirty shard m@s1/4", keys)
	}
	// The claim is exclusive: a second scan must not hand the same shard
	// out again while the retrain is in flight.
	if again := l.claim(0.1, 1); len(again) != 0 {
		t.Fatalf("double-claimed %d shards while refreshing", len(again))
	}
}
