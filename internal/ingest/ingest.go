// Package ingest is DBEst's streaming-ingestion and model-staleness
// subsystem: the lifecycle layer that lets data keep arriving after models
// are trained. The paper's engine trains once over a reservoir sample and
// discards the data (§3); this package closes the loop for long-running
// deployments — appended rows feed a maintained per-model reservoir, a
// staleness ledger measures how far each model has drifted from the live
// table (rows ingested since the last train, fraction of the reservoir the
// new rows replaced), and a background refresher retrains models whose
// staleness crosses a threshold, swapping the fresh models into the
// catalog so plan caches self-invalidate.
//
// The package deliberately knows nothing about the engine: models are
// identified by their catalog key and retrained through an opaque
// RetrainFunc closure, so the dependency points engine → ingest only.
package ingest

import (
	"context"
	"sort"
	"sync"
	"time"

	"dbest/internal/sample"
	"dbest/internal/shard"
)

// RetrainFunc rebuilds one model set from the current base data. It is
// registered by the engine alongside each trained model and invoked by the
// background refresher; a canceled ctx should abort the retrain.
type RetrainFunc func(ctx context.Context) error

// Ledger tracks, per trained model set, how stale the model is relative to
// the rows ingested since it was trained. It is safe for concurrent use.
//
// Append credits are batched: an append enqueues a pending credit under a
// tiny queue mutex and returns, instead of walking every entry under the
// ledger mutex inline on the ingest path. Pending credits are reconciled —
// drained and applied in order — when the queue fills, and before any read
// or mutation of the entry map, so every observer still sees a ledger that
// includes all appends that happened before its call.
type Ledger struct {
	mu      sync.Mutex
	entries map[string]*entry

	pendMu  sync.Mutex
	pending []pendingAppend
}

// pendingAppend is one enqueued Append credit awaiting reconciliation.
type pendingAppend struct {
	tbl  string
	n    int
	vals func(col string) []float64
	strs func(col string) []string
}

// maxPending bounds the credit queue; the append that fills it reconciles
// inline, so a hot ingest stream without readers cannot grow the queue
// (and its captured vals closures, which pin table columns) unboundedly.
const maxPending = 64

// entry is the ledger's per-model state. The maintained reservoir mirrors
// the training sampler: it is seeded identically and fast-forwarded over
// the base rows, so offering appended row indices continues the training
// stream exactly (Reservoir state depends only on the offer sequence).
type entry struct {
	key    string
	tables []string // base tables whose appends feed this model

	res       *sample.Reservoir // nil for join models (no single base stream)
	resCap    int
	seed      int64
	baseRows  int  // watched-table rows at the last (re)train
	ingested  int  // rows appended since the last (re)train
	replaced  int  // reservoir slots replaced by appended rows
	forced    bool // base data wholesale-replaced; refresh regardless of score
	refreshed time.Time

	// Shard routing: a member of a sharded ensemble only accrues staleness
	// from appended rows whose xcol value lands in its range, so ingest
	// concentrated in one region of the domain dirties (and retrains) only
	// the owning shard. Edge shards are open-ended, matching the split.
	sharded          bool
	xcol             string
	shardIdx, shards int
	shardLo, shardHi float64

	// absorb, when set, marks a sketch entry: appended values of xcol are
	// folded into the sketch in place instead of accruing staleness, so the
	// model stays fresh with zero retrains. Only a wholesale base-data
	// replacement (Invalidate's forced bit) makes the refresher rebuild it.
	absorb func(floats []float64, strs []string)

	retrain RetrainFunc

	// Refresh bookkeeping. refreshing guards against double-dispatch while
	// a retrain is in flight; failed/failedAt remember the ingested count
	// at the last failed attempt so a persistently failing model (e.g. its
	// table was dropped) is retried only when new rows arrive, not every
	// tick.
	refreshing  bool
	failed      bool
	failedAt    int
	refreshes   uint64
	failures    uint64
	lastErr     string
	lastRetrain time.Duration
}

// Staleness is one model's drift report — the unit of Engine.ModelStaleness
// and the /staleness endpoint.
type Staleness struct {
	// Key is the catalog key of the model set.
	Key string
	// Tables lists the base tables whose appends feed this model (two for
	// join models).
	Tables []string
	// BaseRows is how many base rows the model was trained over (summed
	// across tables for joins); IngestedRows counts rows appended since.
	BaseRows     int
	IngestedRows int
	// ReservoirSize and ReservoirReplaced describe the maintained training
	// reservoir: of ReservoirSize sample slots, ReservoirReplaced were
	// overwritten by appended rows — i.e. the fraction of the training
	// sample that would differ if the model were rebuilt now.
	ReservoirSize     int
	ReservoirReplaced int
	// FracIngested is IngestedRows/BaseRows; FracReplaced is
	// ReservoirReplaced/ReservoirSize; Score is the staleness the refresher
	// thresholds on: max of the two, or 1 when the base data was replaced
	// wholesale (table re-registration).
	FracIngested float64
	FracReplaced float64
	Score        float64
	// Shard and Shards identify a member of a sharded ensemble (Shards is 0
	// for unsharded models): its staleness counts only the appended rows
	// routed into its x-range.
	Shard  int
	Shards int
	// LastTrained is when the model was last (re)built; Refreshing reports
	// an in-flight background retrain.
	LastTrained time.Time
	Refreshing  bool
	// Refreshes / Failures / LastError / LastRetrain report the background
	// refresher's history for this model.
	Refreshes   uint64
	Failures    uint64
	LastError   string
	LastRetrain time.Duration
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{entries: make(map[string]*entry)}
}

// Register records a freshly trained model set. tables are the base tables
// whose appends should count against it; baseRows is the total row count
// the model was trained over, while curRows is the tables' live row count
// at registration — any gap is rows appended while the training ran, which
// must count as already-ingested or they would vanish from the ledger.
// resCap and seed describe the training reservoir, which the ledger
// re-derives and fast-forwards so subsequent appends continue the training
// sample stream (pass resCap 0 to skip reservoir maintenance, e.g. for
// join, GROUP BY and nominal models whose samplers are not a single
// uniform stream). Re-registering a key resets its staleness but keeps its
// cumulative refresh history.
func (l *Ledger) Register(key string, tables []string, baseRows, curRows, resCap int, seed int64, retrain RetrainFunc) {
	l.register(&entry{
		key:     key,
		tables:  append([]string(nil), tables...),
		resCap:  resCap,
		seed:    seed,
		retrain: retrain,
	}, baseRows, curRows)
}

// RegisterShard records one freshly trained member of a sharded ensemble.
// It is Register plus the shard's routing metadata: xcol is the split
// column and [lo, hi) the shard's planned range (shardIdx 0 extends to
// -inf, the last shard to +inf), so Append credits this entry only with
// rows landing in the range. The maintained reservoir mirrors the shard's
// training sampler, whose stream is the in-range rows in table order; seed
// must be the shard-derived training seed.
func (l *Ledger) RegisterShard(key string, tables []string, baseRows, curRows, resCap int, seed int64,
	xcol string, shardIdx, shards int, lo, hi float64, retrain RetrainFunc) {
	l.register(&entry{
		key:      key,
		tables:   append([]string(nil), tables...),
		resCap:   resCap,
		seed:     seed,
		retrain:  retrain,
		sharded:  true,
		xcol:     xcol,
		shardIdx: shardIdx, shards: shards,
		shardLo: lo, shardHi: hi,
	}, baseRows, curRows)
}

// register finishes entry construction shared by Register and
// RegisterShard: derive and fast-forward the reservoir mirror, credit rows
// that arrived while the training ran, and carry the refresh history of a
// replaced entry over.
func (l *Ledger) register(e *entry, baseRows, curRows int) {
	// Apply credits enqueued before this registration to the entry being
	// replaced: curRows already counts those rows, so letting them leak onto
	// the fresh entry would double-count them as post-train ingest. The
	// engine's append mutex orders registration against concurrent appends.
	l.reconcile()
	if e.resCap > 0 && len(e.tables) == 1 {
		e.res = sample.NewReservoir(e.resCap, e.seed)
		e.res.Advance(baseRows)
	}
	e.baseRows = baseRows
	e.refreshed = time.Now()
	if curRows > baseRows {
		e.ingested = curRows - baseRows
		if e.res != nil {
			e.replaced = clampReplaced(e.res.Advance(e.ingested), e.resCap)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if old := l.entries[e.key]; old != nil {
		e.refreshes, e.failures = old.refreshes, old.failures
		e.lastErr, e.lastRetrain = old.lastErr, old.lastRetrain
		e.refreshing = old.refreshing
	}
	l.entries[e.key] = e
}

// RegisterAbsorb records a sketch registered over column col of the single
// base table tables[0]. Unlike model entries, an absorb entry never goes
// stale from appends: every appended value of col is handed to absorb
// (numeric columns through floats, string columns through strs), which
// folds it into the sketch in place. retrain rebuilds the sketch from
// scratch and is invoked by the refresher only when the base data is
// replaced wholesale (Invalidate); ordinary ingest triggers zero retrains.
func (l *Ledger) RegisterAbsorb(key string, tables []string, col string, baseRows int,
	absorb func(floats []float64, strs []string), retrain RetrainFunc) {
	l.register(&entry{
		key:     key,
		tables:  append([]string(nil), tables...),
		xcol:    col,
		absorb:  absorb,
		retrain: retrain,
	}, baseRows, baseRows)
}

// Drop forgets a model's staleness state.
func (l *Ledger) Drop(key string) {
	l.reconcile()
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.entries, key)
}

// Clear forgets all staleness state (the catalog was replaced wholesale,
// e.g. LoadModels). Pending credits are discarded too — they belong to
// models that no longer exist.
func (l *Ledger) Clear() {
	l.pendMu.Lock()
	l.pending = nil
	l.pendMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = make(map[string]*entry)
}

// Append records n rows appended to table tbl: every model fed by tbl
// gains n ingested rows, and single-table models advance their maintained
// reservoir over the new row indices, counting how many sample slots the
// appended region claimed. vals, when non-nil, returns the appended rows'
// values for a column (nil for unknown or non-numeric columns); members of
// sharded ensembles use it to credit only the rows routed into their
// range. A nil vals — or an unresolvable split column — credits every
// entry with the full n, which errs toward retraining too eagerly rather
// than serving a silently stale shard.
//
// The credit is enqueued, not applied inline: the ingest hot path touches
// only the queue mutex, and the O(entries) walk happens at the next
// reconcile point (a full queue, or any ledger read). Reservoir advancement
// is commutative in row counts, so deferred application yields the same
// state as inline application did.
func (l *Ledger) Append(tbl string, n int, vals func(col string) []float64) {
	l.AppendValues(tbl, n, vals, nil)
}

// AppendValues is Append with a second accessor for string-column values,
// which absorb entries over string columns (TOP-K sketches on nominal
// attributes) consume; vals stays the accessor for numeric columns.
func (l *Ledger) AppendValues(tbl string, n int, vals func(col string) []float64, strs func(col string) []string) {
	if n <= 0 {
		return
	}
	l.pendMu.Lock()
	l.pending = append(l.pending, pendingAppend{tbl: tbl, n: n, vals: vals, strs: strs})
	full := len(l.pending) >= maxPending
	l.pendMu.Unlock()
	if full {
		l.reconcile()
	}
}

// Sync applies every pending append credit now. The sketch query path calls
// it before answering, so an estimate reflects all appends that completed
// before the query began even when the credit queue has not filled.
func (l *Ledger) Sync() { l.reconcile() }

// reconcile drains the pending-credit queue and applies each credit in
// enqueue order. Every path that reads or mutates the entry map calls it
// first, so batching is invisible to observers.
func (l *Ledger) reconcile() {
	l.pendMu.Lock()
	batch := l.pending
	l.pending = nil
	l.pendMu.Unlock()
	if len(batch) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range batch {
		l.applyLocked(p)
	}
}

// applyLocked credits one append to every watching entry. Caller holds l.mu.
func (l *Ledger) applyLocked(p pendingAppend) {
	for _, e := range l.entries {
		if !e.watches(p.tbl) {
			continue
		}
		if e.absorb != nil {
			// Sketch entry: fold the appended values in instead of accruing
			// staleness. Without accessors there is nothing to fold — that
			// only happens off the engine path (direct ledger tests).
			var fs []float64
			var ss []string
			if p.vals != nil {
				fs = p.vals(e.xcol)
			}
			if len(fs) == 0 && p.strs != nil {
				ss = p.strs(e.xcol)
			}
			if len(fs) > 0 || len(ss) > 0 {
				e.absorb(fs, ss)
			}
			continue
		}
		credit := p.n
		if e.sharded && p.vals != nil {
			if xs := p.vals(e.xcol); xs != nil {
				credit = 0
				for _, x := range xs {
					if shard.Owns(e.shardIdx, e.shards, e.shardLo, e.shardHi, x) {
						credit++
					}
				}
			}
		}
		if credit == 0 {
			continue
		}
		e.ingested += credit
		if e.res != nil {
			e.replaced = clampReplaced(e.replaced+e.res.Advance(credit), e.resCap)
		}
	}
}

// clampReplaced caps the replaced-slot counter at the reservoir capacity:
// Advance counts admissions, and a later admission can overwrite a slot an
// earlier appended row already claimed, but "fraction of the training
// sample replaced" can never exceed the whole sample.
func clampReplaced(n, cap int) int {
	if n > cap {
		return cap
	}
	return n
}

// Invalidate marks every model fed by tbl as maximally stale — the base
// data was replaced out from under it (table re-registration) — so the
// refresher rebuilds it on its next scan regardless of thresholds. A
// failure backoff is cleared: the data is new, so a retry is warranted.
// It returns how many models were marked.
func (l *Ledger) Invalidate(tbl string) int {
	l.reconcile()
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.entries {
		if e.watches(tbl) {
			e.forced = true
			e.failed = false
			n++
		}
	}
	return n
}

func (e *entry) watches(tbl string) bool {
	for _, t := range e.tables {
		if t == tbl {
			return true
		}
	}
	return false
}

// staleness builds the drift report for e. Caller holds l.mu.
func (e *entry) staleness() Staleness {
	s := Staleness{
		Key:               e.key,
		Tables:            append([]string(nil), e.tables...),
		BaseRows:          e.baseRows,
		IngestedRows:      e.ingested,
		ReservoirReplaced: e.replaced,
		LastTrained:       e.refreshed,
		Refreshing:        e.refreshing,
		Refreshes:         e.refreshes,
		Failures:          e.failures,
		LastError:         e.lastErr,
		LastRetrain:       e.lastRetrain,
	}
	if e.sharded {
		s.Shard, s.Shards = e.shardIdx, e.shards
	}
	if e.res != nil {
		s.ReservoirSize = e.resCap
		if e.resCap > 0 {
			s.FracReplaced = float64(e.replaced) / float64(e.resCap)
		}
	}
	if e.baseRows > 0 {
		s.FracIngested = float64(e.ingested) / float64(e.baseRows)
	} else if e.ingested > 0 {
		s.FracIngested = 1
	}
	s.Score = s.FracIngested
	if s.FracReplaced > s.Score {
		s.Score = s.FracReplaced
	}
	if e.forced {
		s.Score = 1
	}
	return s
}

// Snapshot reports every tracked model's staleness, sorted by key.
func (l *Ledger) Snapshot() []Staleness {
	l.reconcile()
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Staleness, 0, len(l.entries))
	for _, e := range l.entries {
		out = append(out, e.staleness())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Len reports how many models the ledger tracks.
func (l *Ledger) Len() int {
	l.reconcile()
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// claim selects models due for a refresh — score at or above threshold
// with at least minRows new rows, or force-marked — and marks them
// in-flight so concurrent scans cannot dispatch them twice. The forced bit
// is NOT cleared here: it survives a failed or canceled attempt and only a
// successful retrain (or re-registration) clears it. It returns the
// claimed keys with their retrain closures.
func (l *Ledger) claim(threshold float64, minRows int) []claimed {
	l.reconcile()
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []claimed
	for _, e := range l.entries {
		if e.refreshing || e.retrain == nil {
			continue
		}
		due := e.forced
		if !due {
			s := e.staleness()
			due = s.Score >= threshold && e.ingested >= minRows
		}
		// After a failed attempt, wait for new rows before retrying so a
		// dead table does not mean a retrain per tick forever.
		if e.failed && e.ingested <= e.failedAt {
			due = false
		}
		if !due {
			continue
		}
		e.refreshing = true
		out = append(out, claimed{key: e.key, retrain: e.retrain})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

type claimed struct {
	key     string
	retrain RetrainFunc
}

// finish records a completed refresh attempt. On success the entry has
// normally just been re-registered (the retrain closure re-trains through
// the engine, which calls Register); finish then stamps the metrics on the
// fresh entry. On failure the stale entry stays, with the error recorded
// and its current ingested count remembered as the retry backoff point.
func (l *Ledger) finish(key string, d time.Duration, err error) {
	l.reconcile()
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entries[key]
	if e == nil {
		return
	}
	e.refreshing = false
	e.lastRetrain = d
	if err != nil {
		e.failures++
		e.lastErr = err.Error()
		e.failed = true
		e.failedAt = e.ingested
		return
	}
	e.refreshes++
	e.lastErr = ""
	e.failed = false
	e.forced = false
}

// release abandons a claim without recording an attempt — the retrain was
// canceled by shutdown, not refuted by a failure. The entry keeps its
// forced bit and staleness, so the next refresher picks it up again.
func (l *Ledger) release(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e := l.entries[key]; e != nil {
		e.refreshing = false
	}
}
