package ingest

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// RefresherOptions tunes the background auto-refresh loop. The zero value
// (or nil) scans every 2 s, refreshes models whose staleness score reaches
// 0.1 after at least 1 new row, and retrains one model at a time.
type RefresherOptions struct {
	// Interval is how often the ledger is scanned for stale models.
	// Default 2 s.
	Interval time.Duration
	// Threshold is the staleness score (max of ingested-row fraction and
	// reservoir-replaced fraction) at which a model is rebuilt. Default 0.1.
	Threshold float64
	// MinRows is the minimum number of ingested rows before a model is
	// considered, so a tiny table cannot thrash retraining on every row.
	// Default 1.
	MinRows int
	// Workers bounds concurrent retrains. Default 1: refresh steals as
	// little CPU from the query path as possible.
	Workers int
}

func (o *RefresherOptions) withDefaults() RefresherOptions {
	out := RefresherOptions{Interval: 2 * time.Second, Threshold: 0.1, MinRows: 1, Workers: 1}
	if o == nil {
		return out
	}
	if o.Interval > 0 {
		out.Interval = o.Interval
	}
	if o.Threshold > 0 {
		out.Threshold = o.Threshold
	}
	if o.MinRows > 0 {
		out.MinRows = o.MinRows
	}
	if o.Workers > 0 {
		out.Workers = o.Workers
	}
	return out
}

// RefreshStats aggregates the refresher's lifetime counters for /stats.
type RefreshStats struct {
	Running       bool   // a refresher is currently started
	Scans         uint64 // ledger scans performed
	Refreshes     uint64 // successful model rebuilds
	Failures      uint64 // failed rebuild attempts
	LastError     string // most recent rebuild error, if any
	TotalRetrain  time.Duration
	LastRetrain   time.Duration
	TrackedModels int
}

// Refresher watches a Ledger in the background and retrains models whose
// staleness crosses the threshold, through the RetrainFunc each model was
// registered with. Retrains run on a bounded worker pool so refresh load
// never exceeds the configured concurrency; the query path is never
// blocked — readers keep answering from the current catalog until the
// retrain closure atomically swaps the new models in.
type Refresher struct {
	ledger *Ledger
	opts   RefresherOptions

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	kick   chan struct{}

	scans        atomic.Uint64
	refreshes    atomic.Uint64
	failures     atomic.Uint64
	totalRetrain atomic.Int64 // nanoseconds
	lastRetrain  atomic.Int64 // nanoseconds
	lastErr      atomic.Value // string
}

// NewRefresher creates a refresher over l. opts may be nil. Call Start to
// begin scanning and Stop to shut down.
func NewRefresher(l *Ledger, opts *RefresherOptions) *Refresher {
	ctx, cancel := context.WithCancel(context.Background())
	return &Refresher{
		ledger: l,
		opts:   opts.withDefaults(),
		ctx:    ctx,
		cancel: cancel,
		kick:   make(chan struct{}, 1),
	}
}

// Start launches the scan loop and worker pool. It returns immediately.
func (r *Refresher) Start() {
	work := make(chan claimed)
	for i := 0; i < r.opts.Workers; i++ {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for c := range work {
				r.refreshOne(c)
			}
		}()
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(work)
		tick := time.NewTicker(r.opts.Interval)
		defer tick.Stop()
		for {
			select {
			case <-r.ctx.Done():
				return
			case <-tick.C:
			case <-r.kick:
			}
			r.scans.Add(1)
			for _, c := range r.ledger.claim(r.opts.Threshold, r.opts.MinRows) {
				select {
				case work <- c:
				case <-r.ctx.Done():
					// Shutting down mid-dispatch: release the claim so a
					// future refresher can pick the model up again.
					r.ledger.release(c.key)
					return
				}
			}
		}
	}()
}

// Kick triggers an immediate ledger scan without waiting for the next
// tick. It never blocks; a scan already pending absorbs the kick.
func (r *Refresher) Kick() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// Stop cancels in-flight retrains (their ctx is canceled) and waits for
// the scan loop and workers to exit. A stopped refresher cannot be
// restarted; create a new one.
func (r *Refresher) Stop() {
	r.cancel()
	r.wg.Wait()
}

func (r *Refresher) refreshOne(c claimed) {
	t0 := time.Now()
	err := c.retrain(r.ctx)
	d := time.Since(t0)
	if err != nil && r.ctx.Err() != nil {
		// Shutdown canceled the retrain mid-flight: this is not a model
		// failure — release the claim without recording an attempt so the
		// model stays due (forced bit and all) for the next refresher.
		r.ledger.release(c.key)
		return
	}
	r.ledger.finish(c.key, d, err)
	r.totalRetrain.Add(int64(d))
	r.lastRetrain.Store(int64(d))
	if err != nil {
		r.failures.Add(1)
		r.lastErr.Store(err.Error())
		return
	}
	r.refreshes.Add(1)
}

// Stats snapshots the refresher's counters.
func (r *Refresher) Stats() RefreshStats {
	st := RefreshStats{
		Running:       r.ctx.Err() == nil,
		Scans:         r.scans.Load(),
		Refreshes:     r.refreshes.Load(),
		Failures:      r.failures.Load(),
		TotalRetrain:  time.Duration(r.totalRetrain.Load()),
		LastRetrain:   time.Duration(r.lastRetrain.Load()),
		TrackedModels: r.ledger.Len(),
	}
	if e, ok := r.lastErr.Load().(string); ok {
		st.LastError = e
	}
	return st
}
