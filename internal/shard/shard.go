// Package shard implements range sharding for DBEst model ensembles: split
// planning (partitioning a table's x-domain into K contiguous range shards
// with near-equal row counts) and the merging of per-shard partial
// aggregates into one answer. The shape mirrors the parallel-generation
// strategy of Barakat et al. (PAPERS.md): partition the domain, solve the
// shards independently, merge canonical partial results. The package is
// deliberately free of model and engine dependencies — it deals only in
// bounds, row indices and (count, sum, sum-of-squares) moment triples — so
// both training (core) and execution (exec) can build on it without cycles.
package shard

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// MaxShards bounds K: past a few hundred shards the per-shard samples stop
// being meaningfully sized and the catalog drowns in keys.
const MaxShards = 256

// Split is the partition of an x-domain into contiguous range shards.
// Shard i nominally covers [Bounds[i], Bounds[i+1]); for routing and
// pruning the first shard extends to -inf and the last to +inf, so rows
// that drift outside the planned domain after ingestion still have an
// owning shard.
type Split struct {
	Col    string    // the x-column the domain was split on
	Bounds []float64 // K+1 strictly increasing cut points
}

// K returns the number of shards.
func (s *Split) K() int { return len(s.Bounds) - 1 }

// Lo and Hi return shard i's planned finite bounds.
func (s *Split) Lo(i int) float64 { return s.Bounds[i] }
func (s *Split) Hi(i int) float64 { return s.Bounds[i+1] }

// Assign returns the shard owning x: the number of interior cut points at
// or below x, so a row exactly on a cut belongs to the shard starting
// there. Values outside the planned domain route to the edge shards.
func (s *Split) Assign(x float64) int {
	cuts := s.Bounds[1:s.K()] // interior cut points
	return sort.Search(len(cuts), func(j int) bool { return cuts[j] > x })
}

// Overlapping returns the shards whose range intersects [lb, ub], in shard
// order. Edge shards are treated as open-ended, matching Assign.
func (s *Split) Overlapping(lb, ub float64) []int {
	return overlapping(s.K(), func(i int) (float64, float64) {
		return s.Bounds[i], s.Bounds[i+1]
	}, lb, ub)
}

// overlapping is the shared pruning predicate: shard i (of k, with planned
// bounds from bounds(i)) intersects [lb, ub], where the first shard's lower
// and the last shard's upper bound are open-ended.
func overlapping(k int, bounds func(i int) (lo, hi float64), lb, ub float64) []int {
	var out []int
	for i := 0; i < k; i++ {
		lo, hi := bounds(i)
		if i == 0 {
			lo = math.Inf(-1)
		}
		if i == k-1 {
			hi = math.Inf(1)
		}
		if lo <= ub && lb <= hi {
			out = append(out, i)
		}
	}
	return out
}

// OverlappingRanges prunes shard ranges given per-shard planned bounds —
// the form the executor uses, where bounds live on the shard models rather
// than in a Split. k is the total shard count.
func OverlappingRanges(k int, bounds func(i int) (lo, hi float64), lb, ub float64) []int {
	return overlapping(k, bounds, lb, ub)
}

// Owns reports whether shard i of k, with planned bounds [lo, hi), owns
// value x. It is the single source of the ownership rule — the first
// shard's lower and the last shard's upper bound are open-ended, and a
// value exactly on a cut belongs to the shard starting there — shared by
// query pruning, staleness routing (ingest) and per-shard retraining
// (core). It matches Split.Assign on the split the bounds came from.
func Owns(i, k int, lo, hi, x float64) bool {
	return (i == 0 || x >= lo) && (i == k-1 || x < hi)
}

// Plan computes a K-way range split of xs with near-equal per-shard row
// counts (quantile cut points). Duplicate cut points — heavy ties in the
// data — are collapsed, so the returned split may have fewer than k shards;
// it always has at least one. An empty xs or k < 1 is an error.
func Plan(col string, xs []float64, k int) (*Split, error) {
	if len(xs) == 0 {
		return nil, errors.New("shard: cannot split an empty domain")
	}
	if k < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be >= 1", k)
	}
	if k > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d exceeds the maximum of %d", k, MaxShards)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	bounds := make([]float64, 0, k+1)
	bounds = append(bounds, lo)
	for i := 1; i < k; i++ {
		cut := sorted[i*len(sorted)/k]
		if cut > bounds[len(bounds)-1] && cut < hi {
			bounds = append(bounds, cut)
		}
	}
	bounds = append(bounds, hi)
	if hi <= lo {
		// Constant column: a single degenerate shard covering the point.
		bounds = []float64{lo, lo}
	}
	return &Split{Col: col, Bounds: bounds}, nil
}

// Partition assigns every x to its owning shard, returning per-shard row
// index lists in row order — the training substrate for per-shard
// reservoirs. Row order is preserved within each shard so a maintained
// reservoir mirror can replay the same stream.
func (s *Split) Partition(xs []float64) [][]int {
	out := make([][]int, s.K())
	for i, x := range xs {
		g := s.Assign(x)
		out[g] = append(out[g], i)
	}
	return out
}

// Mergeable is the canonical partial-result contract shared by every
// split-solve-merge estimator in the engine: moment triples from sharded
// model ensembles, HyperLogLog register banks and Count-Min counter arrays
// (internal/sketch), and — once serving goes distributed — cross-node
// partials gathered over the network. Merge folds other into the receiver;
// implementations may assume other is the same concrete type and shape
// (same shard family, same sketch parameters) and must return an error,
// not panic, when it is not. Merging must be commutative and associative
// so a gather can fold partials in any arrival order.
type Mergeable interface {
	Merge(other Mergeable) error
}

// Partial is one shard's mergeable contribution to an aggregate over a
// range: the estimated selected-row count and the first two moments of the
// aggregated column over the selection. COUNT/SUM/AVG/VARIANCE/STDDEV all
// merge from these triples; PERCENTILE merges through Quantile instead.
type Partial struct {
	Count float64 // estimated rows selected in this shard
	Sum   float64 // estimated Σy over the selection
	SumSq float64 // estimated Σy² over the selection
	// Support reports whether the shard's density has any mass in the
	// range; a shard with no support contributes nothing and must not flip
	// an AVG/VARIANCE merge into a spurious zero.
	Support bool
}

// Merge folds another moment triple into the receiver: moments add
// (a shard without support contributes exact zeros) and support ORs.
// Partial implements Mergeable.
func (p *Partial) Merge(other Mergeable) error {
	o, ok := other.(*Partial)
	if !ok {
		return fmt.Errorf("shard: cannot merge %T into a moment Partial", other)
	}
	p.Count += o.Count
	p.Sum += o.Sum
	p.SumSq += o.SumSq
	p.Support = p.Support || o.Support
	return nil
}

// MergePartials folds a slice of moment triples into one through the
// Mergeable interface — the single merge kernel behind every Merge*
// aggregate below and behind exec.ShardMerge.
func MergePartials(ps []Partial) Partial {
	var acc Partial
	for i := range ps {
		// Merging a Partial into a Partial cannot fail.
		_ = acc.Merge(&ps[i])
	}
	return acc
}

// MergeCount merges partial COUNTs: counts add.
func MergeCount(ps []Partial) float64 {
	return MergePartials(ps).Count
}

// MergeSum merges partial SUMs: sums add. Like SQL, a selection with no
// support sums to zero.
func MergeSum(ps []Partial) float64 {
	return MergePartials(ps).Sum
}

// MergeAvg merges partial AVGs as a count-weighted mean. ok is false when
// no shard had density support in the range (the empty-selection case).
func MergeAvg(ps []Partial) (v float64, ok bool) {
	m := MergePartials(ps)
	if !m.Support || m.Count <= 0 {
		return 0, false
	}
	return m.Sum / m.Count, true
}

// MergeVariance merges partial VARIANCEs through the moment identity
// Var = E[y²] − E[y]² over the pooled selection.
func MergeVariance(ps []Partial) (v float64, ok bool) {
	t := MergePartials(ps)
	if !t.Support || t.Count <= 0 {
		return 0, false
	}
	m := t.Sum / t.Count
	v = t.SumSq/t.Count - m*m
	if v < 0 {
		v = 0
	}
	return v, true
}

// MergeStdDev merges partial STDDEVs via MergeVariance.
func MergeStdDev(ps []Partial) (float64, bool) {
	v, ok := MergeVariance(ps)
	if !ok {
		return 0, false
	}
	return math.Sqrt(v), true
}

// Quantile solves the merged percentile: the x in [lo, hi] at which the
// ensemble's combined selected mass reaches fraction p of the total.
// massLE(x) must return the combined selected count mass at or below x
// (summed across the overlapping shards); it must be nondecreasing in x.
// ok is false when the range holds no mass.
func Quantile(p, lo, hi float64, massLE func(x float64) float64) (v float64, ok bool) {
	if p < 0 || p > 1 || lo > hi || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return 0, false
	}
	total := massLE(hi)
	if total <= 0 || math.IsNaN(total) {
		return 0, false
	}
	target := p * total
	for i := 0; i < 200 && hi-lo > 1e-12*math.Max(1, math.Abs(hi)+math.Abs(lo)); i++ {
		mid := 0.5 * (lo + hi)
		if massLE(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), true
}
