package shard

import (
	"math"
	"math/rand"
	"testing"
)

func TestPlanQuantileSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	s, err := Plan("x", xs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 8 {
		t.Fatalf("K = %d, want 8", s.K())
	}
	for i := 1; i < len(s.Bounds); i++ {
		if s.Bounds[i] <= s.Bounds[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", s.Bounds)
		}
	}
	// Quantile cuts must balance the shards to within a small factor.
	parts := s.Partition(xs)
	for i, rows := range parts {
		if len(rows) < len(xs)/s.K()/2 || len(rows) > len(xs)/s.K()*2 {
			t.Fatalf("shard %d has %d rows, want ~%d", i, len(rows), len(xs)/s.K())
		}
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan("x", nil, 4); err == nil {
		t.Fatal("want error for empty domain")
	}
	if _, err := Plan("x", []float64{1, 2}, 0); err == nil {
		t.Fatal("want error for k < 1")
	}
	if _, err := Plan("x", []float64{1, 2}, MaxShards+1); err == nil {
		t.Fatal("want error for k > MaxShards")
	}
}

func TestPlanCollapsesTies(t *testing.T) {
	// A column with only two distinct values cannot support 8 shards.
	xs := make([]float64, 1000)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 5
		} else {
			xs[i] = 9
		}
	}
	s, err := Plan("x", xs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() > 2 {
		t.Fatalf("K = %d for a two-value column, want <= 2", s.K())
	}
	// Constant column degenerates to one shard.
	for i := range xs {
		xs[i] = 3
	}
	s, err = Plan("x", xs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 1 {
		t.Fatalf("K = %d for a constant column, want 1", s.K())
	}
}

func TestAssignAndPartition(t *testing.T) {
	s := &Split{Col: "x", Bounds: []float64{0, 10, 20, 30}}
	cases := []struct {
		x    float64
		want int
	}{
		{-5, 0}, {0, 0}, {9.99, 0},
		{10, 1}, {15, 1},
		{20, 2}, {29, 2}, {30, 2}, {1e9, 2},
	}
	for _, tc := range cases {
		if got := s.Assign(tc.x); got != tc.want {
			t.Errorf("Assign(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
	parts := s.Partition([]float64{-1, 5, 12, 25, 99})
	want := [][]int{{0, 1}, {2}, {3, 4}}
	for i := range want {
		if len(parts[i]) != len(want[i]) {
			t.Fatalf("partition = %v, want %v", parts, want)
		}
		for j := range want[i] {
			if parts[i][j] != want[i][j] {
				t.Fatalf("partition = %v, want %v", parts, want)
			}
		}
	}
}

func TestOverlappingPrunes(t *testing.T) {
	s := &Split{Col: "x", Bounds: []float64{0, 10, 20, 30, 40}}
	cases := []struct {
		lb, ub float64
		want   []int
	}{
		{12, 18, []int{1}},                             // strictly inside shard 1
		{5, 25, []int{0, 1, 2}},                        // spans three shards
		{-100, -50, []int{0}},                          // below the domain: edge shard owns it
		{99, 200, []int{3}},                            // above the domain
		{math.Inf(-1), math.Inf(1), []int{0, 1, 2, 3}}, // full range
		{10, 10, []int{0, 1}},                          // exactly on a cut touches both
	}
	for _, tc := range cases {
		got := s.Overlapping(tc.lb, tc.ub)
		if len(got) != len(tc.want) {
			t.Fatalf("Overlapping(%v, %v) = %v, want %v", tc.lb, tc.ub, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("Overlapping(%v, %v) = %v, want %v", tc.lb, tc.ub, got, tc.want)
			}
		}
	}
}

// TestMergeMatchesPooled: merging per-shard moment triples must equal the
// aggregate computed over the pooled data directly.
func TestMergeMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ps []Partial
	var all []float64
	for s := 0; s < 4; s++ {
		p := Partial{Support: true}
		for i := 0; i < 1000; i++ {
			y := rng.NormFloat64()*float64(s+1) + float64(s)*10
			all = append(all, y)
			p.Count++
			p.Sum += y
			p.SumSq += y * y
		}
		ps = append(ps, p)
	}
	var n, sum, sumsq float64
	for _, y := range all {
		n++
		sum += y
		sumsq += y * y
	}
	if got := MergeCount(ps); math.Abs(got-n) > 1e-9 {
		t.Fatalf("count = %v, want %v", got, n)
	}
	if got := MergeSum(ps); math.Abs(got-sum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, sum)
	}
	avg, ok := MergeAvg(ps)
	if !ok || math.Abs(avg-sum/n) > 1e-9 {
		t.Fatalf("avg = %v (%v), want %v", avg, ok, sum/n)
	}
	wantVar := sumsq/n - (sum/n)*(sum/n)
	v, ok := MergeVariance(ps)
	if !ok || math.Abs(v-wantVar) > 1e-6 {
		t.Fatalf("variance = %v (%v), want %v", v, ok, wantVar)
	}
	sd, ok := MergeStdDev(ps)
	if !ok || math.Abs(sd-math.Sqrt(wantVar)) > 1e-6 {
		t.Fatalf("stddev = %v (%v), want %v", sd, ok, math.Sqrt(wantVar))
	}
}

func TestMergeEmptySupport(t *testing.T) {
	ps := []Partial{{}, {}}
	if got := MergeCount(ps); got != 0 {
		t.Fatalf("count = %v, want 0", got)
	}
	if got := MergeSum(ps); got != 0 {
		t.Fatalf("sum = %v, want 0", got)
	}
	if _, ok := MergeAvg(ps); ok {
		t.Fatal("avg over no support must not be ok")
	}
	if _, ok := MergeVariance(ps); ok {
		t.Fatal("variance over no support must not be ok")
	}
}

// TestQuantileMergedUniform: the merged quantile of two adjacent uniform
// shards is the pooled uniform quantile.
func TestQuantileMergedUniform(t *testing.T) {
	// Shard A holds mass 100 uniformly on [0, 10]; shard B holds mass 300
	// uniformly on [10, 20]. Pooled CDF reaches 0.5 of 400 at x = 13.33...
	massLE := func(x float64) float64 {
		a := 100 * math.Min(math.Max(x, 0), 10) / 10
		b := 300 * math.Min(math.Max(x-10, 0), 10) / 10
		return a + b
	}
	v, ok := Quantile(0.5, 0, 20, massLE)
	if !ok {
		t.Fatal("quantile not ok")
	}
	want := 10 + 10.0/3
	if math.Abs(v-want) > 1e-6 {
		t.Fatalf("quantile = %v, want %v", v, want)
	}
	if _, ok := Quantile(0.5, 0, 20, func(float64) float64 { return 0 }); ok {
		t.Fatal("quantile over zero mass must not be ok")
	}
	if _, ok := Quantile(0.5, math.Inf(-1), 20, massLE); ok {
		t.Fatal("quantile over an unbounded bracket must not be ok")
	}
}
