package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversAll(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, 8, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("fn must not be called for n <= 0")
	}
}

func TestForEachSingleWorker(t *testing.T) {
	order := []int{}
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker must run in order, got %v", order)
		}
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var count int64
	ForEach(100, 0, func(int) { atomic.AddInt64(&count, 1) })
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
}

func TestMapOrdering(t *testing.T) {
	got := Map(10, 4, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	err := FirstError(10, 4, func(i int) error {
		if i == 3 || i == 7 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v", err)
	}
	if err := FirstError(10, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

// Property: sum computed via parallel Map equals sequential sum for any
// worker count.
func TestMapSumProperty(t *testing.T) {
	f := func(workers uint8, n uint8) bool {
		m := int(n) + 1
		w := int(workers%16) + 1
		vals := Map(m, w, func(i int) int { return i })
		s := 0
		for _, v := range vals {
			s += v
		}
		return s == m*(m-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
