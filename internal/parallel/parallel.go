// Package parallel provides the small worker-pool primitive behind DBEst's
// "embarrassingly parallelizable" internals (§3, Parallel/Distributed
// Computation): parallel model training, per-group model evaluation, and the
// inter-query throughput experiments (§4.7). Unlike the paper's Python
// implementation, which fights the Global Interpreter Lock with separate
// processes, goroutines give real shared-memory parallelism, and models are
// immutable after training so evaluation needs no locks.
package parallel

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). It returns after all calls complete.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn over [0, n) with bounded parallelism and collects the results
// in order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// FirstError runs fn over [0, n) with bounded parallelism and returns the
// first (lowest-index) error encountered, or nil.
func FirstError(n, workers int, fn func(i int) error) error {
	errs := Map(n, workers, fn)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
