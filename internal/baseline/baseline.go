// Package baseline reimplements the query-time estimator semantics of the
// AQP engines the paper compares against, so accuracy comparisons measure
// the same statistical behaviour on the same data:
//
//   - VerdictSim — VerdictDB-style offline uniform samples kept in memory,
//     answered with Horvitz–Thompson scaling; join queries join the fact
//     sample with the dimension table at query time (§2.2, §4.8);
//   - BlinkSim — BlinkDB-style stratified samples with per-stratum weights;
//   - SampleExact — an exact columnar engine (MonetDB in Appendix C) run
//     over a uniform sample, scaling COUNT/SUM by the sampling ratio.
//
// All three retain their samples at query time — the state DBEst replaces
// with models — so their space overheads are sample-sized, as in Figs. 4,
// 12, 16 and 21.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"dbest/internal/exact"
	"dbest/internal/sample"
	"dbest/internal/table"
)

// weightedAccum accumulates Horvitz–Thompson-weighted moments.
type weightedAccum struct {
	w, wy, wyy float64   // Σw, Σw·y, Σw·y²
	n          float64   // unweighted matching rows
	y, sy      float64   // Σy, Σy² (unweighted, for AVG/VAR)
	vals       []float64 // retained for percentile
	wantQ      bool
}

func (a *weightedAccum) add(y, w float64) {
	a.w += w
	a.wy += w * y
	a.wyy += w * y * y
	a.n++
	a.y += y
	a.sy += y * y
	if a.wantQ {
		a.vals = append(a.vals, y)
	}
}

func (a *weightedAccum) result(af exact.AggFunc, p float64) (float64, error) {
	switch af {
	case exact.Count:
		return a.w, nil
	case exact.Sum:
		return a.wy, nil
	case exact.Avg:
		if a.w == 0 {
			return 0, errors.New("baseline: empty selection")
		}
		return a.wy / a.w, nil
	case exact.Variance, exact.StdDev:
		if a.w == 0 {
			return 0, errors.New("baseline: empty selection")
		}
		m := a.wy / a.w
		v := a.wyy/a.w - m*m
		if v < 0 {
			v = 0
		}
		if af == exact.StdDev {
			return math.Sqrt(v), nil
		}
		return v, nil
	case exact.Percentile:
		if len(a.vals) == 0 {
			return 0, errors.New("baseline: empty selection")
		}
		sort.Float64s(a.vals)
		pos := p * float64(len(a.vals)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		return a.vals[lo]*(1-frac) + a.vals[hi]*frac, nil
	default:
		return 0, fmt.Errorf("baseline: unsupported aggregate %v", af)
	}
}

// BuildStats records state-building overheads for the comparison figures.
type BuildStats struct {
	SampleTime time.Duration
	SampleRows int
	Bytes      int
}

func sampleBytes(tb *table.Table) int {
	n := tb.NumRows()
	total := 0
	for _, c := range tb.Columns {
		switch c.Type {
		case table.Float64, table.Int64:
			total += 8 * n
		case table.String:
			for _, s := range c.Strings {
				total += len(s) + 16
			}
		}
	}
	return total
}

// VerdictSim answers queries from an offline uniform sample with
// Horvitz–Thompson scaling, like VerdictDB's "scramble" tables.
type VerdictSim struct {
	Name   string
	Sample *table.Table
	N      float64 // logical rows of the base table
	Stats  BuildStats
	ratio  float64 // N / sample rows
}

// NewVerdictSim draws a k-row uniform sample of tb; scale multiplies the
// physical row count to the logical table size (1 for no scaling).
func NewVerdictSim(tb *table.Table, k int, scale float64, seed int64) (*VerdictSim, error) {
	if tb.NumRows() == 0 {
		return nil, errors.New("baseline: empty table")
	}
	if scale <= 0 {
		scale = 1
	}
	t0 := time.Now()
	s := sample.UniformTable(tb, k, seed)
	v := &VerdictSim{
		Name:   tb.Name,
		Sample: s,
		N:      float64(tb.NumRows()) * scale,
	}
	v.ratio = v.N / float64(s.NumRows())
	v.Stats = BuildStats{
		SampleTime: time.Since(t0),
		SampleRows: s.NumRows(),
		Bytes:      sampleBytes(s),
	}
	return v, nil
}

// Query answers req over the retained sample.
func (v *VerdictSim) Query(req exact.Request) (*exact.Result, error) {
	return scanScaled(v.Sample, req, func(int) float64 { return v.ratio })
}

// scanScaled runs the weighted scan with a per-row weight function.
func scanScaled(tb *table.Table, req exact.Request, weight func(row int) float64) (*exact.Result, error) {
	ycol, err := tb.Floats(req.Y)
	if err != nil {
		return nil, err
	}
	type pred struct {
		col    []float64
		lb, ub float64
	}
	preds := make([]pred, 0, len(req.Predicates))
	for _, r := range req.Predicates {
		c, err := tb.Floats(r.Column)
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred{c, r.Lb, r.Ub})
	}
	wantQ := req.AF == exact.Percentile
	if req.Group == "" {
		acc := weightedAccum{wantQ: wantQ}
	rows:
		for i := range ycol {
			for _, p := range preds {
				if ycol := p.col[i]; ycol < p.lb || ycol > p.ub {
					continue rows
				}
			}
			acc.add(ycol[i], weight(i))
		}
		val, err := acc.result(req.AF, req.P)
		if err != nil {
			return nil, err
		}
		return &exact.Result{Value: val}, nil
	}
	gc := tb.Column(req.Group)
	if gc == nil {
		return nil, fmt.Errorf("baseline: no group column %q", req.Group)
	}
	if gc.Type != table.Int64 {
		return nil, fmt.Errorf("baseline: group column %q must be INT64", req.Group)
	}
	accs := make(map[int64]*weightedAccum)
grouped:
	for i := range ycol {
		for _, p := range preds {
			if v := p.col[i]; v < p.lb || v > p.ub {
				continue grouped
			}
		}
		g := gc.Ints[i]
		a, ok := accs[g]
		if !ok {
			a = &weightedAccum{wantQ: wantQ}
			accs[g] = a
		}
		a.add(ycol[i], weight(i))
	}
	out := &exact.Result{Groups: make(map[int64]float64, len(accs))}
	for g, a := range accs {
		val, err := a.result(req.AF, req.P)
		if err != nil {
			continue
		}
		out.Groups[g] = val
	}
	return out, nil
}

// JoinQuery answers an aggregate over sample ⨝ dim, computing the join at
// query time the way VerdictDB must (§2.2): the retained fact sample is
// joined with the (small) dimension table per query, then scanned with
// scaling. The join cost is the point of the paper's Fig. 21 comparison.
func (v *VerdictSim) JoinQuery(dim *table.Table, leftKey, rightKey string, req exact.Request) (*exact.Result, error) {
	joined, err := table.EquiJoin(v.Sample, dim, leftKey, rightKey)
	if err != nil {
		return nil, err
	}
	return scanScaled(joined, req, func(int) float64 { return v.ratio })
}

// BlinkSim answers queries from a stratified sample with per-stratum
// Horvitz–Thompson weights, like BlinkDB's stratified samples.
type BlinkSim struct {
	Name    string
	Sample  *table.Table
	weights []float64 // per retained row
	Stats   BuildStats
}

// NewBlinkSim stratifies tb on stratCol with a total budget of k rows and a
// floor of minPer per stratum; scale lifts physical to logical cardinality.
func NewBlinkSim(tb *table.Table, stratCol string, k, minPer int, scale float64, seed int64) (*BlinkSim, error) {
	if scale <= 0 {
		scale = 1
	}
	t0 := time.Now()
	strata, err := sample.Stratified(tb, stratCol, k, minPer, seed)
	if err != nil {
		return nil, err
	}
	// Stratum sizes in the base table.
	gc := tb.Column(stratCol)
	sizes := make(map[int64]int)
	for _, v := range gc.Ints {
		sizes[v]++
	}
	var rows []int
	var weights []float64
	gvals := make([]int64, 0, len(strata))
	for g := range strata {
		gvals = append(gvals, g)
	}
	sort.Slice(gvals, func(i, j int) bool { return gvals[i] < gvals[j] })
	for _, g := range gvals {
		idx := strata[g]
		w := float64(sizes[g]) * scale / float64(len(idx))
		for _, i := range idx {
			rows = append(rows, i)
			weights = append(weights, w)
		}
	}
	s := tb.SelectRows(rows)
	b := &BlinkSim{Name: tb.Name, Sample: s, weights: weights}
	b.Stats = BuildStats{
		SampleTime: time.Since(t0),
		SampleRows: s.NumRows(),
		Bytes:      sampleBytes(s) + 8*len(weights),
	}
	return b, nil
}

// Query answers req over the stratified sample.
func (b *BlinkSim) Query(req exact.Request) (*exact.Result, error) {
	return scanScaled(b.Sample, req, func(i int) float64 { return b.weights[i] })
}

// SampleExact is the Appendix C baseline: an exact-answer engine (MonetDB)
// pointed at a uniform sample, with COUNT/SUM scaled by the sampling ratio.
// It shares VerdictSim's math but is named separately because the paper
// treats it as a distinct system with distinct (much faster, C-speed)
// query times.
type SampleExact struct {
	*VerdictSim
}

// NewSampleExact draws the uniform sample for the MonetDB-style baseline.
func NewSampleExact(tb *table.Table, k int, scale float64, seed int64) (*SampleExact, error) {
	v, err := NewVerdictSim(tb, k, scale, seed)
	if err != nil {
		return nil, err
	}
	return &SampleExact{VerdictSim: v}, nil
}
