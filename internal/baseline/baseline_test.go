package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbest/internal/exact"
	"dbest/internal/table"
)

func synth(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	gs := make([]int64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = 5*xs[i] + rng.NormFloat64()*10
		gs[i] = int64(i % 4)
	}
	tb := table.New("t")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	tb.AddIntColumn("g", gs)
	return tb
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func TestVerdictSimAccuracy(t *testing.T) {
	tb := synth(100000, 1)
	v, err := NewVerdictSim(tb, 10000, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	req := exact.Request{AF: exact.Count, Y: "y",
		Predicates: []exact.Range{{Column: "x", Lb: 20, Ub: 60}}}
	got, err := v.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.Query(tb, req)
	if re := relErr(got.Value, want.Value); re > 0.05 {
		t.Fatalf("COUNT rel err = %v", re)
	}
	for _, af := range []exact.AggFunc{exact.Sum, exact.Avg, exact.Variance, exact.StdDev} {
		req.AF = af
		got, err := v.Query(req)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exact.Query(tb, req)
		if re := relErr(got.Value, want.Value); re > 0.08 {
			t.Fatalf("%v rel err = %v", af, re)
		}
	}
}

func TestVerdictSimScaling(t *testing.T) {
	tb := synth(20000, 3)
	// scale=1000 simulates a 20M-row logical table.
	v, err := NewVerdictSim(tb, 5000, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.N != 20_000_000 {
		t.Fatalf("N = %v", v.N)
	}
	req := exact.Request{AF: exact.Count, Y: "y",
		Predicates: []exact.Range{{Column: "x", Lb: 0, Ub: 100}}}
	got, _ := v.Query(req)
	if re := relErr(got.Value, 20_000_000); re > 0.01 {
		t.Fatalf("scaled COUNT = %v", got.Value)
	}
	// AVG must NOT be scaled.
	req.AF = exact.Avg
	got, _ = v.Query(req)
	want, _ := exact.Query(tb, req)
	if re := relErr(got.Value, want.Value); re > 0.05 {
		t.Fatalf("AVG rel err = %v", re)
	}
}

func TestVerdictSimGroupBy(t *testing.T) {
	tb := synth(40000, 5)
	v, err := NewVerdictSim(tb, 8000, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	req := exact.Request{AF: exact.Sum, Y: "y", Group: "g",
		Predicates: []exact.Range{{Column: "x", Lb: 10, Ub: 90}}}
	got, err := v.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.Query(tb, req)
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("groups: %d vs %d", len(got.Groups), len(want.Groups))
	}
	for g, w := range want.Groups {
		if re := relErr(got.Groups[g], w); re > 0.15 {
			t.Errorf("group %d rel err = %v", g, re)
		}
	}
}

func TestVerdictSimPercentile(t *testing.T) {
	tb := synth(50000, 7)
	v, _ := NewVerdictSim(tb, 10000, 1, 8)
	req := exact.Request{AF: exact.Percentile, Y: "x", P: 0.5,
		Predicates: []exact.Range{{Column: "x", Lb: 0, Ub: 100}}}
	got, err := v.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Value-50) > 3 {
		t.Fatalf("median = %v, want ≈ 50", got.Value)
	}
}

func TestVerdictSimErrors(t *testing.T) {
	if _, err := NewVerdictSim(table.New("e"), 100, 1, 1); err == nil {
		t.Fatal("want error for empty table")
	}
	tb := synth(1000, 9)
	v, _ := NewVerdictSim(tb, 100, 1, 1)
	if _, err := v.Query(exact.Request{AF: exact.Avg, Y: "nope"}); err == nil {
		t.Fatal("want error for missing column")
	}
	if _, err := v.Query(exact.Request{AF: exact.Avg, Y: "y",
		Predicates: []exact.Range{{Column: "x", Lb: 500, Ub: 600}}}); err == nil {
		t.Fatal("want error for empty selection AVG")
	}
	if _, err := v.Query(exact.Request{AF: exact.Avg, Y: "y", Group: "nope"}); err == nil {
		t.Fatal("want error for missing group column")
	}
	if _, err := v.Query(exact.Request{AF: exact.Avg, Y: "y", Group: "x"}); err == nil {
		t.Fatal("want error for float group column")
	}
}

func TestVerdictSimJoinQuery(t *testing.T) {
	// Fact rows reference a 10-row dimension; range over the dimension
	// attribute selects a subset of stores.
	rng := rand.New(rand.NewSource(10))
	n := 50000
	fk := make([]int64, n)
	val := make([]float64, n)
	for i := range fk {
		fk[i] = int64(rng.Intn(10))
		val[i] = float64(fk[i])*10 + rng.Float64()
	}
	fact := table.New("fact")
	fact.AddIntColumn("k", fk)
	fact.AddFloatColumn("v", val)
	dim := table.New("dim")
	dk := make([]int64, 10)
	emp := make([]float64, 10)
	for i := range dk {
		dk[i] = int64(i)
		emp[i] = float64(100 + 10*i)
	}
	dim.AddIntColumn("dk", dk)
	dim.AddFloatColumn("emp", emp)

	v, err := NewVerdictSim(fact, 10000, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	req := exact.Request{AF: exact.Count, Y: "v",
		Predicates: []exact.Range{{Column: "emp", Lb: 100, Ub: 140}}}
	got, err := v.JoinQuery(dim, "k", "dk", req)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := table.EquiJoin(fact, dim, "k", "dk")
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Query(joined, req)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(got.Value, want.Value); re > 0.05 {
		t.Fatalf("join COUNT rel err = %v (got %v want %v)", re, got.Value, want.Value)
	}
}

func TestBlinkSimStratifiedAccuracy(t *testing.T) {
	// Heavily skewed groups: stratified sampling should answer rare-group
	// aggregates that a same-size uniform sample gets badly wrong.
	rng := rand.New(rand.NewSource(12))
	var xs, ys []float64
	var gs []int64
	for i := 0; i < 100000; i++ {
		xs = append(xs, rng.Float64()*100)
		ys = append(ys, 10+rng.NormFloat64())
		gs = append(gs, 0)
	}
	for i := 0; i < 200; i++ { // rare group with very different y
		xs = append(xs, rng.Float64()*100)
		ys = append(ys, 500+rng.NormFloat64())
		gs = append(gs, 1)
	}
	tb := table.New("t")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	tb.AddIntColumn("g", gs)

	b, err := NewBlinkSim(tb, "g", 5000, 100, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	req := exact.Request{AF: exact.Sum, Y: "y", Group: "g",
		Predicates: []exact.Range{{Column: "x", Lb: 0, Ub: 100}}}
	got, err := b.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.Query(tb, req)
	for g, w := range want.Groups {
		if re := relErr(got.Groups[g], w); re > 0.1 {
			t.Errorf("group %d rel err = %v", g, re)
		}
	}
}

func TestBlinkSimErrors(t *testing.T) {
	tb := synth(1000, 14)
	if _, err := NewBlinkSim(tb, "nope", 100, 10, 1, 1); err == nil {
		t.Fatal("want error for missing stratification column")
	}
}

func TestSampleExact(t *testing.T) {
	tb := synth(50000, 15)
	se, err := NewSampleExact(tb, 10000, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	req := exact.Request{AF: exact.Sum, Y: "y",
		Predicates: []exact.Range{{Column: "x", Lb: 25, Ub: 75}}}
	got, err := se.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.Query(tb, req)
	if re := relErr(got.Value, want.Value); re > 0.08 {
		t.Fatalf("SUM rel err = %v", re)
	}
	if se.Stats.Bytes <= 0 || se.Stats.SampleRows != 10000 {
		t.Fatalf("stats = %+v", se.Stats)
	}
}

// Property: VerdictSim COUNT scales linearly with the scale factor.
func TestVerdictScaleLinearityProperty(t *testing.T) {
	tb := synth(5000, 17)
	f := func(seed int64) bool {
		v1, err1 := NewVerdictSim(tb, 1000, 1, seed)
		v2, err2 := NewVerdictSim(tb, 1000, 50, seed)
		if err1 != nil || err2 != nil {
			return false
		}
		req := exact.Request{AF: exact.Count, Y: "y",
			Predicates: []exact.Range{{Column: "x", Lb: 10, Ub: 90}}}
		r1, e1 := v1.Query(req)
		r2, e2 := v2.Query(req)
		if e1 != nil || e2 != nil {
			return false
		}
		return math.Abs(r2.Value-50*r1.Value) < 1e-6*r2.Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
