package sketch

import (
	"fmt"
	"sort"

	"dbest/internal/shard"
)

// cmsDepth is the number of Count-Min hash rows. Four rows put the
// over-estimate tail at (1/2)^... — in practice e ≈ 2.7/width per row with
// failure probability e^-depth ≈ 1.8%, plenty for heavy-hitter ranking.
const cmsDepth = 4

// Entry is one heavy-hitter candidate: a value and its estimated
// occurrence count (a Count-Min estimate, i.e. an upper bound that is
// near-exact for genuinely frequent values).
type Entry struct {
	Value string `json:"value"`
	Count uint64 `json:"count"`
}

// TopK answers frequency and TOP-K queries from a Count-Min sketch plus a
// K-slot min-heap of candidate heavy hitters. The counter matrix merges by
// element-wise addition and the candidate sets by union-and-reselect, so
// TopK implements shard.Mergeable. Not internally locked — the Sketch
// wrapper serializes access.
type TopK struct {
	K    int        // number of heavy-hitter slots tracked
	W    int        // Count-Min row width
	Rows [][]uint64 // cmsDepth rows of W counters
	// Cands is the candidate min-heap ordered by Count (ties broken by
	// Value for determinism); pos indexes it by value and is rebuilt after
	// gob decoding.
	Cands []Entry
	pos   map[string]int
}

// NewTopK builds an empty TOP-K sketch tracking k heavy hitters over a
// Count-Min matrix of cmsDepth × width counters (width chosen from k).
func NewTopK(k int) (*TopK, error) {
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("sketch: TOP-K slot count %d outside [1, %d]", k, MaxK)
	}
	w := 4096
	for w < 64*k {
		w *= 2
	}
	rows := make([][]uint64, cmsDepth)
	for d := range rows {
		rows[d] = make([]uint64, w)
	}
	return &TopK{K: k, W: w, Rows: rows, pos: make(map[string]int)}, nil
}

// rowIndex returns the counter index for hash h in row d via
// Kirsch–Mitzenmacher double hashing (the second hash forced odd so the
// stride never degenerates).
func (t *TopK) rowIndex(h uint64, d int) int {
	h2 := mix64(h^0x9e3779b97f4a7c15) | 1
	return int((h + uint64(d)*h2) % uint64(t.W))
}

// Add folds one occurrence of v into the counters with the conservative
// update rule — only counters at the current minimum rise, which cuts the
// noise inflation of colliding light values by an order of magnitude while
// keeping every estimate an upper bound — and updates the candidate heap
// with v's new estimated count.
func (t *TopK) Add(v string) {
	h := hash64(v)
	var idx [cmsDepth]int
	est := ^uint64(0)
	for d := 0; d < cmsDepth; d++ {
		idx[d] = t.rowIndex(h, d)
		if c := t.Rows[d][idx[d]]; c < est {
			est = c
		}
	}
	est++
	for d := 0; d < cmsDepth; d++ {
		if t.Rows[d][idx[d]] < est {
			t.Rows[d][idx[d]] = est
		}
	}
	t.offer(v, est)
}

// Estimate returns the Count-Min estimate (an upper bound) of how many
// times v was added.
func (t *TopK) Estimate(v string) uint64 {
	h := hash64(v)
	est := ^uint64(0)
	for d := 0; d < cmsDepth; d++ {
		if c := t.Rows[d][t.rowIndex(h, d)]; c < est {
			est = c
		}
	}
	return est
}

// offer updates the candidate heap with value v at estimated count est:
// a tracked value's count is refreshed in place; an untracked one enters
// if a slot is free or it beats the current minimum.
func (t *TopK) offer(v string, est uint64) {
	if i, ok := t.pos[v]; ok {
		t.Cands[i].Count = est
		t.siftDown(i)
		return
	}
	if len(t.Cands) < t.K {
		t.Cands = append(t.Cands, Entry{Value: v, Count: est})
		t.pos[v] = len(t.Cands) - 1
		t.siftUp(len(t.Cands) - 1)
		return
	}
	if min := &t.Cands[0]; est > min.Count || (est == min.Count && v < min.Value) {
		delete(t.pos, min.Value)
		t.Cands[0] = Entry{Value: v, Count: est}
		t.pos[v] = 0
		t.siftDown(0)
	}
}

// less orders the candidate min-heap: by count, ties by value descending
// so that the heap minimum is the entry Top() would list last.
func (t *TopK) less(i, j int) bool {
	if t.Cands[i].Count != t.Cands[j].Count {
		return t.Cands[i].Count < t.Cands[j].Count
	}
	return t.Cands[i].Value > t.Cands[j].Value
}

func (t *TopK) swap(i, j int) {
	t.Cands[i], t.Cands[j] = t.Cands[j], t.Cands[i]
	t.pos[t.Cands[i].Value] = i
	t.pos[t.Cands[j].Value] = j
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.less(i, p) {
			return
		}
		t.swap(i, p)
		i = p
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.Cands)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && t.less(l, least) {
			least = l
		}
		if r < n && t.less(r, least) {
			least = r
		}
		if least == i {
			return
		}
		t.swap(i, least)
		i = least
	}
}

// Top returns up to k candidates ordered by estimated count descending
// (ties by value ascending, so the listing is deterministic). k <= 0 or
// k > K returns all tracked candidates.
func (t *TopK) Top(k int) []Entry {
	out := append([]Entry(nil), t.Cands...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Merge folds another TopK of the same shape into the receiver: counter
// rows add element-wise, and the candidate union is re-estimated against
// the merged counters with the best K kept. TopK implements
// shard.Mergeable.
func (t *TopK) Merge(other shard.Mergeable) error {
	o, ok := other.(*TopK)
	if !ok {
		return fmt.Errorf("sketch: cannot merge %T into a TOP-K sketch", other)
	}
	if o.W != t.W || o.K != t.K {
		return fmt.Errorf("sketch: cannot merge TOP-K shape (k=%d, w=%d) into (k=%d, w=%d)", o.K, o.W, t.K, t.W)
	}
	for d := range t.Rows {
		for i, c := range o.Rows[d] {
			t.Rows[d][i] += c
		}
	}
	// Union the candidate sets and reselect against the merged counters.
	union := make(map[string]struct{}, len(t.Cands)+len(o.Cands))
	for _, e := range t.Cands {
		union[e.Value] = struct{}{}
	}
	for _, e := range o.Cands {
		union[e.Value] = struct{}{}
	}
	merged := make([]Entry, 0, len(union))
	for v := range union {
		merged = append(merged, Entry{Value: v, Count: t.Estimate(v)})
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Count != merged[j].Count {
			return merged[i].Count > merged[j].Count
		}
		return merged[i].Value < merged[j].Value
	})
	if len(merged) > t.K {
		merged = merged[:t.K]
	}
	t.Cands = merged
	t.reindex()
	return nil
}

// reindex rebuilds the value→slot index and restores the heap invariant
// over Cands — after gob decoding or a merge reselect.
func (t *TopK) reindex() {
	t.pos = make(map[string]int, len(t.Cands))
	for i, e := range t.Cands {
		t.pos[e.Value] = i
	}
	for i := len(t.Cands)/2 - 1; i >= 0; i-- {
		t.siftDown(i)
	}
}

// sizeBytes approximates the in-memory footprint: the counter matrix plus
// the candidate entries.
func (t *TopK) sizeBytes() int {
	n := cmsDepth * t.W * 8
	for _, e := range t.Cands {
		n += len(e.Value) + 24
	}
	return n
}
