// Package sketch implements the engine's mergeable-sketch estimators:
// HyperLogLog for COUNT(DISTINCT x) and Count-Min + min-heap for
// TOP-K / frequency queries. Sketches are the third estimator family next
// to model pairs and exact scans — like models they are tiny synopses
// registered in the catalog and persisted in bundles, but unlike models
// they absorb appended rows directly (a register max / counter increment
// per value), so the ingest path keeps them exact-fresh with zero
// retrains. Both sketch types implement shard.Mergeable — the same
// partial-merge contract shard moment triples flow through — so a future
// distributed gather merges sketches and moments with one operator.
//
// The Sketch wrapper is internally locked: concurrent absorbs, estimates,
// merges and gob encoding (catalog persistence, SizeBytes) are all safe,
// and every estimate is computed under the lock, i.e. from one consistent
// snapshot of the registers.
package sketch

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"dbest/internal/shard"
)

// Kind selects the sketch estimator family.
type Kind string

const (
	// KindHLL is a HyperLogLog answering COUNT(DISTINCT x).
	KindHLL Kind = "hll"
	// KindTopK is a Count-Min + heap answering TOP k(x).
	KindTopK Kind = "topk"
)

// Parameter bounds and defaults. Precision 14 is 16 KiB of registers at
// ~0.8% standard error; 18 is the cap both because the error floor stops
// paying for the memory (256 KiB for 0.2%) and because the rank field
// must fit the remaining 64-P hash bits.
const (
	MinPrecision     = 4
	MaxPrecision     = 18
	DefaultPrecision = 14
	DefaultK         = 10
	MaxK             = 1024
)

// ParseKind normalizes a user-supplied sketch type name.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "hll", "hyperloglog":
		return KindHLL, nil
	case "topk", "top-k", "cms":
		return KindTopK, nil
	default:
		return "", fmt.Errorf("sketch: unknown sketch type %q (want HLL or TOPK)", s)
	}
}

// Sketch is one catalog-registered sketch estimator: an HLL or a TOP-K
// sketch plus the monotone count of values absorbed into it. All methods
// are safe for concurrent use.
type Sketch struct {
	mu       sync.Mutex
	kind     Kind
	hll      *HLL
	topk     *TopK
	absorbed uint64
}

// New builds an empty sketch. precision (HLL) and k (TOP-K) fall back to
// the package defaults when zero; parameters for the other kind are
// ignored.
func New(kind Kind, precision, k int) (*Sketch, error) {
	s := &Sketch{kind: kind}
	var err error
	switch kind {
	case KindHLL:
		if precision == 0 {
			precision = DefaultPrecision
		}
		s.hll, err = NewHLL(precision)
	case KindTopK:
		if k == 0 {
			k = DefaultK
		}
		s.topk, err = NewTopK(k)
	default:
		err = fmt.Errorf("sketch: unknown sketch kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Kind returns the sketch's estimator family.
func (s *Sketch) Kind() Kind { return s.kind }

// Params returns the HLL precision and the TOP-K slot count (zero for the
// non-applicable one).
func (s *Sketch) Params() (precision, k int) {
	if s.hll != nil {
		precision = s.hll.P
	}
	if s.topk != nil {
		k = s.topk.K
	}
	return precision, k
}

// FloatKey is the canonical string form of a numeric value, shared by the
// training scan and the append-absorb path so both hash identically (and
// used verbatim as the display value in TOP-K listings). Negative zero
// folds into zero.
func FloatKey(v float64) string {
	if v == 0 {
		v = 0
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// AddFloats absorbs a batch of numeric values under one lock acquisition.
func (s *Sketch) AddFloats(vs []float64) {
	if len(vs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range vs {
		s.add(FloatKey(v))
	}
}

// AddStrings absorbs a batch of string values under one lock acquisition.
func (s *Sketch) AddStrings(vs []string) {
	if len(vs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range vs {
		s.add(v)
	}
}

// add absorbs one canonical value; the caller holds the lock.
func (s *Sketch) add(v string) {
	switch s.kind {
	case KindHLL:
		s.hll.Add(hash64(v))
	case KindTopK:
		s.topk.Add(v)
	}
	s.absorbed++
}

// Distinct answers COUNT(DISTINCT x) from an HLL sketch.
func (s *Sketch) Distinct() (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.kind != KindHLL {
		return 0, fmt.Errorf("sketch: COUNT(DISTINCT) needs an HLL sketch, this one is %s", s.kind)
	}
	return s.hll.Estimate(), nil
}

// Top answers TOP k(x) from a TOP-K sketch: up to k values by estimated
// occurrence count descending. k must not exceed the sketch's tracked
// slot count.
func (s *Sketch) Top(k int) ([]Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.kind != KindTopK {
		return nil, fmt.Errorf("sketch: TOP needs a TOPK sketch, this one is %s", s.kind)
	}
	if k > s.topk.K {
		return nil, fmt.Errorf("sketch: TOP %d exceeds the sketch's %d tracked slots", k, s.topk.K)
	}
	return s.topk.Top(k), nil
}

// Absorbed returns the monotone count of values folded into the sketch
// (training scan plus every absorbed append).
func (s *Sketch) Absorbed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.absorbed
}

// SizeBytes approximates the sketch's in-memory footprint.
func (s *Sketch) SizeBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.kind {
	case KindHLL:
		return len(s.hll.Regs)
	case KindTopK:
		return s.topk.sizeBytes()
	}
	return 0
}

// Merge folds another Sketch of the same kind and shape into the
// receiver. Sketch implements shard.Mergeable. The other sketch's state
// is copied out under its own lock before the receiver locks, so
// concurrent merges never hold both locks at once.
func (s *Sketch) Merge(other shard.Mergeable) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("sketch: cannot merge %T into a sketch", other)
	}
	oc, absorbed, err := o.snapshot()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if o.kind != s.kind {
		return fmt.Errorf("sketch: cannot merge a %s sketch into a %s sketch", o.kind, s.kind)
	}
	switch s.kind {
	case KindHLL:
		err = s.hll.Merge(oc.(*HLL))
	case KindTopK:
		err = s.topk.Merge(oc.(*TopK))
	}
	if err != nil {
		return err
	}
	s.absorbed += absorbed
	return nil
}

// snapshot deep-copies the sketch's inner state under its lock.
func (s *Sketch) snapshot() (shard.Mergeable, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.kind {
	case KindHLL:
		return &HLL{P: s.hll.P, Regs: append([]uint8(nil), s.hll.Regs...)}, s.absorbed, nil
	case KindTopK:
		rows := make([][]uint64, len(s.topk.Rows))
		for d := range rows {
			rows[d] = append([]uint64(nil), s.topk.Rows[d]...)
		}
		c := &TopK{K: s.topk.K, W: s.topk.W, Rows: rows,
			Cands: append([]Entry(nil), s.topk.Cands...)}
		c.reindex()
		return c, s.absorbed, nil
	}
	return nil, 0, fmt.Errorf("sketch: unknown sketch kind %q", s.kind)
}

// sketchWire is the gob form of a Sketch: the mutex stays out, everything
// else rides as exported fields.
type sketchWire struct {
	Kind     Kind
	Absorbed uint64
	HLL      *HLL
	TopK     *TopK
}

// GobEncode serializes the sketch under its lock, so catalog persistence
// and SizeBytes accounting are safe against concurrent absorbs.
func (s *Sketch) GobEncode() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf bytes.Buffer
	w := sketchWire{Kind: s.kind, Absorbed: s.absorbed, HLL: s.hll, TopK: s.topk}
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode restores a sketch, rebuilding the TOP-K candidate index that
// does not ride the wire.
func (s *Sketch) GobDecode(b []byte) error {
	var w sketchWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kind, s.absorbed, s.hll, s.topk = w.Kind, w.Absorbed, w.HLL, w.TopK
	if s.topk != nil {
		s.topk.reindex()
	}
	return nil
}

// hash64 hashes a canonical value string: FNV-1a for the byte mixing, a
// Murmur3-style finalizer for the avalanche the register-index /
// leading-zero split of HLL needs. Deterministic across processes, so a
// persisted sketch keeps absorbing consistently after reload.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// mix64 is the 64-bit Murmur3 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
