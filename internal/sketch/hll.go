package sketch

import (
	"fmt"
	"math"
	"math/bits"

	"dbest/internal/shard"
)

// HLL is a dense-register HyperLogLog counting distinct values. 2^P
// registers of one byte each; the estimator is Ertl's improved raw
// estimator (tau/sigma corrected), which is free of the classic
// linear-counting hand-over thresholds and empirical bias tables, so one
// formula serves the whole cardinality range at ~1.04/sqrt(2^P) relative
// standard error (0.8% at the default P=14). Registers merge by
// element-wise max, so HLL implements shard.Mergeable. Not internally
// locked — the Sketch wrapper serializes access.
type HLL struct {
	P    int     // register-index precision: 2^P registers
	Regs []uint8 // dense register bank, len 2^P
}

// NewHLL builds an empty HyperLogLog with 2^p registers.
func NewHLL(p int) (*HLL, error) {
	if p < MinPrecision || p > MaxPrecision {
		return nil, fmt.Errorf("sketch: HLL precision %d outside [%d, %d]", p, MinPrecision, MaxPrecision)
	}
	return &HLL{P: p, Regs: make([]uint8, 1<<p)}, nil
}

// Add folds one hashed value into the registers: the top P hash bits pick
// the register, the run of leading zeros in the rest (plus one, capped at
// 64-P+1) is the candidate rank.
func (h *HLL) Add(hash uint64) {
	idx := hash >> (64 - h.P)
	w := hash << h.P
	rho := uint8(bits.LeadingZeros64(w) + 1)
	if max := uint8(64 - h.P + 1); rho > max {
		rho = max
	}
	if rho > h.Regs[idx] {
		h.Regs[idx] = rho
	}
}

// alphaInf is the limiting bias-correction constant 1/(2 ln 2).
var alphaInf = 1 / (2 * math.Ln2)

// Estimate returns the estimated number of distinct values added.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.Regs))
	q := 64 - h.P
	counts := make([]int, q+2)
	for _, r := range h.Regs {
		counts[r]++
	}
	z := m * tau(1-float64(counts[q+1])/m)
	for k := q; k >= 1; k-- {
		z = 0.5 * (z + float64(counts[k]))
	}
	z += m * sigma(float64(counts[0])/m)
	return alphaInf * m * m / z
}

// Merge folds another HLL of the same precision into the receiver by
// element-wise register max. HLL implements shard.Mergeable.
func (h *HLL) Merge(other shard.Mergeable) error {
	o, ok := other.(*HLL)
	if !ok {
		return fmt.Errorf("sketch: cannot merge %T into an HLL", other)
	}
	if o.P != h.P {
		return fmt.Errorf("sketch: cannot merge HLL precision %d into precision %d", o.P, h.P)
	}
	for i, r := range o.Regs {
		if r > h.Regs[i] {
			h.Regs[i] = r
		}
	}
	return nil
}

// sigma computes x + Σ_{k>=1} x^(2^k)·2^(k-1), the zero-register series of
// Ertl's estimator. sigma(1) diverges (an all-zero sketch estimates 0
// distinct values through the 1/z).
func sigma(x float64) float64 {
	if x == 1 {
		return math.Inf(1)
	}
	y := 1.0
	z := x
	for {
		x = x * x
		prev := z
		z += x * y
		y += y
		if z == prev || math.IsInf(z, 0) {
			return z
		}
	}
}

// tau computes (1/3)·(1 − x − Σ_{k>=1} (1 − x^(2^-k))²·2^(-k)), the
// saturated-register series of Ertl's estimator.
func tau(x float64) float64 {
	if x == 0 || x == 1 {
		return 0
	}
	y := 1.0
	z := 1 - x
	for {
		x = math.Sqrt(x)
		prev := z
		y *= 0.5
		d := 1 - x
		z -= d * d * y
		if z == prev {
			return z / 3
		}
	}
}
