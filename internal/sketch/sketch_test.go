package sketch

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dbest/internal/shard"
)

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestHLLAccuracy pins the estimator across four orders of magnitude at
// the default precision: well inside the 2% acceptance bound (the
// standard error at p=14 is ~0.8%). Deterministic inputs, so this is a
// regression test, not a statistical one.
func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 40000, 200000, 2000000} {
		s, err := New(KindHLL, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			s.AddStrings([]string{fmt.Sprintf("value-%d", i)})
		}
		// Duplicates must not move the estimate.
		for i := 0; i < n/2; i++ {
			s.AddStrings([]string{fmt.Sprintf("value-%d", i)})
		}
		got, err := s.Distinct()
		if err != nil {
			t.Fatal(err)
		}
		if re := relErr(got, float64(n)); re > 0.02 {
			t.Errorf("n=%d: estimate %.0f, rel err %.4f > 0.02", n, got, re)
		}
		if a := s.Absorbed(); a != uint64(n+n/2) {
			t.Errorf("n=%d: absorbed %d, want %d", n, a, n+n/2)
		}
	}
}

// TestHLLMergeIsUnion: merging two sketches estimates the union, and
// matches a sketch fed the union directly (register-max is exact).
func TestHLLMergeIsUnion(t *testing.T) {
	a, _ := New(KindHLL, 12, 0)
	b, _ := New(KindHLL, 12, 0)
	u, _ := New(KindHLL, 12, 0)
	for i := 0; i < 30000; i++ {
		v := fmt.Sprintf("v%d", i)
		if i < 20000 {
			a.AddStrings([]string{v})
		}
		if i >= 10000 {
			b.AddStrings([]string{v})
		}
		u.AddStrings([]string{v})
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Distinct()
	want, _ := u.Distinct()
	if got != want {
		t.Errorf("merged estimate %.2f, union-fed estimate %.2f — register merge must be exact", got, want)
	}

	c, _ := New(KindHLL, 10, 0)
	if err := a.Merge(c); err == nil {
		t.Error("merging mismatched precisions must fail")
	}
	if err := a.Merge(&shard.Partial{}); err == nil {
		t.Error("merging a moment Partial into a sketch must fail")
	}
}

// TestTopKRecall: on a skewed stream, the sketch's TOP-10 must contain
// every true top-10 value, in rank order for the clear leaders.
func TestTopKRecall(t *testing.T) {
	s, err := New(KindTopK, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	exact := map[string]uint64{}
	// 40 hot values with strictly separated frequencies + uniform noise.
	for hot := 0; hot < 40; hot++ {
		v := fmt.Sprintf("hot-%02d", hot)
		n := 4000 - 90*hot
		for i := 0; i < n; i++ {
			s.AddStrings([]string{v})
		}
		exact[v] += uint64(n)
	}
	for i := 0; i < 50000; i++ {
		v := fmt.Sprintf("noise-%d", rng.Intn(20000))
		s.AddStrings([]string{v})
		exact[v]++
	}
	top, err := s.Top(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("got %d entries, want 10", len(top))
	}
	for i, e := range top {
		want := fmt.Sprintf("hot-%02d", i)
		if e.Value != want {
			t.Errorf("rank %d: got %q (count %d), want %q", i, e.Value, e.Count, want)
		}
		if re := relErr(float64(e.Count), float64(exact[e.Value])); re > 0.05 {
			t.Errorf("rank %d: count %d vs exact %d, rel err %.4f > 0.05", i, e.Count, exact[e.Value], re)
		}
	}
	if _, err := s.Top(21); err == nil {
		t.Error("asking for more than the tracked slot count must fail")
	}
}

// TestTopKMerge: two disjoint halves of a stream merge into the same
// top list the whole stream produces.
func TestTopKMerge(t *testing.T) {
	a, _ := New(KindTopK, 0, 10)
	b, _ := New(KindTopK, 0, 10)
	whole, _ := New(KindTopK, 0, 10)
	for hot := 0; hot < 15; hot++ {
		v := fmt.Sprintf("h%02d", hot)
		n := 1000 - 50*hot
		for i := 0; i < n; i++ {
			half := a
			if i%2 == 1 {
				half = b
			}
			half.AddStrings([]string{v})
			whole.AddStrings([]string{v})
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Top(10)
	want, _ := whole.Top(10)
	if len(got) != len(want) {
		t.Fatalf("merged top has %d entries, whole-stream top has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("rank %d: merged %+v, whole-stream %+v", i, got[i], want[i])
		}
	}
	if a.Absorbed() != whole.Absorbed() {
		t.Errorf("merged absorbed %d, want %d", a.Absorbed(), whole.Absorbed())
	}
}

// TestGobRoundTrip: both kinds survive gob, keep answering identically,
// and keep absorbing consistently (same hash stream) afterwards.
func TestGobRoundTrip(t *testing.T) {
	for _, kind := range []Kind{KindHLL, KindTopK} {
		s, err := New(kind, 12, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			s.AddFloats([]float64{float64(i % 600)})
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(s); err != nil {
			t.Fatalf("%s: encode: %v", kind, err)
		}
		var back Sketch
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&back); err != nil {
			t.Fatalf("%s: decode: %v", kind, err)
		}
		if back.Kind() != kind || back.Absorbed() != s.Absorbed() {
			t.Fatalf("%s: kind/absorbed lost in round trip", kind)
		}
		// Keep absorbing on both and compare answers.
		for i := 0; i < 2000; i++ {
			v := []float64{float64(600 + i%100)}
			s.AddFloats(v)
			back.AddFloats(v)
		}
		switch kind {
		case KindHLL:
			g1, _ := s.Distinct()
			g2, _ := back.Distinct()
			if g1 != g2 {
				t.Errorf("HLL: post-round-trip estimates diverge: %v vs %v", g1, g2)
			}
		case KindTopK:
			t1, _ := s.Top(8)
			t2, _ := back.Top(8)
			for i := range t1 {
				if t1[i] != t2[i] {
					t.Errorf("TopK: post-round-trip rank %d diverges: %+v vs %+v", i, t1[i], t2[i])
				}
			}
		}
	}
}

// TestFloatKey pins the canonical numeric form: integral floats render
// without exponents and negative zero folds into zero.
func TestFloatKey(t *testing.T) {
	cases := map[float64]string{
		123:                  "123",
		-4.5:                 "-4.5",
		0:                    "0",
		math.Copysign(0, -1): "0",
	}
	for v, want := range cases {
		if got := FloatKey(v); got != want {
			t.Errorf("FloatKey(%v) = %q, want %q", v, got, want)
		}
	}
}

// TestParseKind covers the accepted aliases and the rejection path.
func TestParseKind(t *testing.T) {
	for in, want := range map[string]Kind{"HLL": KindHLL, "hll": KindHLL, "TOPK": KindTopK, "topk": KindTopK} {
		k, err := ParseKind(in)
		if err != nil || k != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, k, err, want)
		}
	}
	if _, err := ParseKind("bloom"); err == nil {
		t.Error("ParseKind must reject unknown types")
	}
	if _, err := New(KindHLL, 25, 0); err == nil {
		t.Error("New must reject out-of-range precision")
	}
	if _, err := New(KindTopK, 0, -1); err == nil {
		t.Error("New must reject non-positive k")
	}
}
