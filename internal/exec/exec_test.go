package exec

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dbest/internal/core"
	"dbest/internal/exact"
	"dbest/internal/sqlparse"
	"dbest/internal/table"
)

// resolver is a TableResolver over a fixed map, standing in for the engine.
type resolver map[string]*table.Table

func (r resolver) Table(name string) *table.Table { return r[name] }

func linearTable(t *testing.T, n int) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*xs[i] + 10*rng.NormFloat64()
	}
	tb := table.New("lin")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	return tb
}

func trainLinear(t *testing.T, tb *table.Table) *core.ModelSet {
	t.Helper()
	ms, err := core.Train(tb, []string{"x"}, "y", &core.TrainConfig{SampleSize: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestModelPlanRun(t *testing.T) {
	tb := linearTable(t, 20000)
	ms := trainLinear(t, tb)
	op := NewModelEval("AVG(y)", exact.Avg, ms, []float64{5000}, []float64{10000}, false, 0)
	plan := NewPlan(PathModel, "", NewProject(PathModel, []AggOperator{op}, nil))

	res, err := plan.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "model" || len(res.Aggregates) != 1 {
		t.Fatalf("result = %+v", res)
	}
	// y = 3x + noise, so AVG(y) over x in [5000, 10000] ≈ 22500.
	if got := res.Aggregates[0].Value; math.Abs(got-22500) > 1500 {
		t.Fatalf("AVG(y) = %v, want ≈ 22500", got)
	}
	if keys := plan.ModelKeys(); len(keys) != 1 || keys[0] != ms.Key() {
		t.Fatalf("model keys = %v", keys)
	}
	tree := plan.Render()
	for _, want := range []string{"Project [model]", "ModelEval AVG(y)", "range=[5000,10000]"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestModelPlanSpanOverride(t *testing.T) {
	tb := linearTable(t, 20000)
	ms := trainLinear(t, tb)
	op := NewModelEval("COUNT(y)", exact.Count, ms, []float64{0}, []float64{1000}, false, 0)
	plan := NewPlan(PathModel, "", NewProject(PathModel, []AggOperator{op}, nil))

	res, err := plan.Run(&Env{Span: &Span{Lb: 0, Ub: 9999}})
	if err != nil {
		t.Fatal(err)
	}
	// The override widens the predicate to half the table: ≈ 10000 rows.
	if got := res.Aggregates[0].Value; math.Abs(got-10000) > 1200 {
		t.Fatalf("COUNT with span override = %v, want ≈ 10000", got)
	}
}

func TestExactPlanRunAndRender(t *testing.T) {
	tb := linearTable(t, 1000)
	q, err := sqlparse.Parse("SELECT COUNT(y), AVG(x) FROM lin WHERE x BETWEEN 0 AND 499")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewExactPlan(q, "no model")
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run(&Env{Tables: resolver{"lin": tb}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "exact" || len(res.Aggregates) != 2 {
		t.Fatalf("result = %+v", res)
	}
	if got := res.Aggregates[0].Value; got != 500 {
		t.Fatalf("COUNT = %v, want 500", got)
	}
	if got := res.Aggregates[1].Value; math.Abs(got-249.5) > 1e-9 {
		t.Fatalf("AVG(x) = %v, want 249.5", got)
	}
	tree := plan.Render()
	for _, want := range []string{"Project [exact]", "ExactScan COUNT(y)", "ExactScan AVG(x)", "TableScan lin"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	if plan.ModelKeys() != nil {
		t.Fatalf("exact plan has model keys: %v", plan.ModelKeys())
	}
}

func TestExactPlanSpanOverride(t *testing.T) {
	tb := linearTable(t, 1000)
	q, err := sqlparse.Parse("SELECT COUNT(y) FROM lin WHERE x BETWEEN 0 AND 99")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewExactPlan(q, "no model")
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run(&Env{Tables: resolver{"lin": tb}, Span: &Span{Lb: 0, Ub: 249}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Aggregates[0].Value; got != 250 {
		t.Fatalf("COUNT with span override = %v, want 250", got)
	}
}

func TestExactPlanUnregisteredTable(t *testing.T) {
	q, err := sqlparse.Parse("SELECT COUNT(y) FROM nosuch WHERE x BETWEEN 0 AND 1")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewExactPlan(q, "no model")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(&Env{Tables: resolver{}}); err == nil ||
		!strings.Contains(err.Error(), `table "nosuch" is not registered`) {
		t.Fatalf("err = %v, want unregistered-table error", err)
	}
}

func TestExactPlanJoinRender(t *testing.T) {
	q, err := sqlparse.Parse("SELECT COUNT(*) FROM a JOIN b ON a.k = b.k WHERE x BETWEEN 0 AND 1")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewExactPlan(q, "no model")
	if err != nil {
		t.Fatal(err)
	}
	tree := plan.Render()
	for _, want := range []string{"JoinEval on a.k = b.k", "TableScan a", "TableScan b"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}
