package exec

import (
	"fmt"
	"math"

	"dbest/internal/core"
	"dbest/internal/exact"
	"dbest/internal/parallel"
	"dbest/internal/shard"
	"dbest/internal/table"
)

// ShardMerge answers one aggregate from a sharded model ensemble: it prunes
// the ensemble to the shards whose range overlaps the predicate, evaluates
// each survivor's partial aggregate (count and moment integrals) across the
// worker pool, and merges the partials into one answer — COUNT and SUM add,
// AVG is the count-weighted mean, VARIANCE/STDDEV recombine through the
// moment identity, and PERCENTILE bisects the merged selected-mass CDF.
// This is the scaling move of the sharding subsystem: a query touching 1/K
// of the domain pays for ~1 shard's integration, not the whole model.
type ShardMerge struct {
	AggName string
	AF      exact.AggFunc
	// Sets is the complete ensemble in shard order; evaluation prunes it
	// per execution so Span overrides re-prune correctly.
	Sets   []*core.ModelSet
	Lb, Ub float64
	YIsX   bool
	P      float64
}

// NewShardMerge builds the operator answering one aggregate from the
// sharded ensemble sets (complete, in shard order).
func NewShardMerge(name string, af exact.AggFunc, sets []*core.ModelSet, lb, ub float64, yIsX bool, p float64) AggOperator {
	return &ShardMerge{AggName: name, AF: af, Sets: sets, Lb: lb, Ub: ub, YIsX: yIsX, P: p}
}

func (s *ShardMerge) Operator() string { return "ShardMerge" }

func (s *ShardMerge) Detail() string {
	return fmt.Sprintf("%s key=%s shards=%d/%d range=%s kernel=%s", s.AggName, s.Sets[0].BaseKey(),
		len(s.overlapping(s.Lb, s.Ub)), len(s.Sets), rangeString([]float64{s.Lb}, []float64{s.Ub}),
		s.kernel()) + boundsTag(s.worstRelErr(s.Lb, s.Ub, s.overlapping(s.Lb, s.Ub)))
}

// worstRelErr is the largest overlapping shard's predicted relative error —
// a cheap conservative bound for the EXPLAIN annotation (the merged answer
// at Eval time is at least this tight). 0 when any member lacks a fitted
// predictor, since then the merged bound is unknown too.
func (s *ShardMerge) worstRelErr(lb, ub float64, idx []int) float64 {
	worst := 0.0
	for _, k := range idx {
		re := s.Sets[k].Uni.PredictRelErr(s.AF, lb, ub)
		if re <= 0 {
			return 0
		}
		if re > worst {
			worst = re
		}
	}
	return worst
}

// kernel summarizes the evaluation kernel across the ensemble: "grid" or
// "quad" when every shard agrees, "mixed" otherwise (e.g. one shard's grid
// failed validation and fell back).
func (s *ShardMerge) kernel() string {
	k := s.Sets[0].EvalKernel()
	for _, ms := range s.Sets[1:] {
		if ms.EvalKernel() != k {
			return "mixed"
		}
	}
	return k
}

func (s *ShardMerge) Children() []Node {
	return []Node{&ModelEval{ShardModels: len(s.overlapping(s.Lb, s.Ub))}}
}

// overlapping prunes the ensemble to the shards intersecting [lb, ub],
// treating the edge shards as open-ended so out-of-domain predicates still
// route to the shard that owns ingested out-of-domain rows.
func (s *ShardMerge) overlapping(lb, ub float64) []int {
	return shard.OverlappingRanges(len(s.Sets), func(i int) (float64, float64) {
		return s.Sets[i].ShardLo, s.Sets[i].ShardHi
	}, lb, ub)
}

func (s *ShardMerge) Eval(env *Env, _ *table.Table) (AggregateResult, error) {
	lbs, ubs, err := spanBounds(env, []float64{s.Lb}, []float64{s.Ub})
	if err != nil {
		return AggregateResult{}, err
	}
	lb, ub := lbs[0], ubs[0]
	idx := s.overlapping(lb, ub)
	if env.Shards != nil {
		env.Shards.Evaluated.Add(uint64(len(idx)))
		env.Shards.Pruned.Add(uint64(len(s.Sets) - len(idx)))
	}
	if s.AF == exact.Percentile {
		v, err := s.percentile(lb, ub, idx)
		if err != nil {
			return AggregateResult{}, wrapEmptyRegion(s.AggName, err)
		}
		// No per-shard partials to weight by: the pooled quantile inherits
		// the worst member's prediction.
		return stampAgg(s.AggName, v, s.worstRelErr(lb, ub, idx)), nil
	}
	needSum := s.AF != exact.Count
	needSq := s.AF == exact.Variance || s.AF == exact.StdDev
	partials := make([]shard.Partial, len(idx))
	errs := make([]error, len(idx))
	parallel.ForEach(len(idx), env.Workers, func(k int) {
		partials[k], errs[k] = s.Sets[idx[k]].Uni.Partial(lb, ub, s.YIsX, needSum, needSq)
	})
	for _, err := range errs {
		if err != nil {
			return AggregateResult{}, err
		}
	}
	v, ok := mergePartials(s.AF, partials)
	if !ok {
		return AggregateResult{}, wrapEmptyRegion(s.AggName, core.ErrNoSupport)
	}
	return stampAgg(s.AggName, v, s.mergeRelErr(lb, ub, idx, partials)), nil
}

// stampAgg builds the aggregate result, attaching the CI implied by the
// merged relative error (re <= 0 leaves the bounds unknown).
func stampAgg(name string, v, re float64) AggregateResult {
	ar := AggregateResult{Name: name, Value: v}
	if re > 0 {
		ar.PredRelErr = re
		h := math.Abs(v) * re
		ar.CI = [2]float64{v - h, v + h}
	}
	return ar
}

// mergeRelErr combines the overlapping shards' predicted relative errors
// into one bound for the merged answer, through the same moment structure
// mergePartials uses. Treating shard errors as independent, additive
// aggregates combine in quadrature on their absolute errors:
//
//	COUNT: √(Σ (cᵢ·reᵢ)²) / Σ cᵢ
//	SUM:   √(Σ (sumᵢ·reᵢ)²) / |Σ sumᵢ|
//
// AVG is the count-weighted mean of the members' relative errors, and
// VARIANCE/STDDEV conservatively take the worst member. Any member without
// a fitted predictor makes the merged bound unknown (0).
func (s *ShardMerge) mergeRelErr(lb, ub float64, idx []int, ps []shard.Partial) float64 {
	res := make([]float64, len(idx))
	for k, i := range idx {
		res[k] = s.Sets[i].Uni.PredictRelErr(s.AF, lb, ub)
		if res[k] <= 0 {
			return 0
		}
	}
	switch s.AF {
	case exact.Count:
		var sq, tot float64
		for k, p := range ps {
			sq += p.Count * res[k] * p.Count * res[k]
			tot += p.Count
		}
		if tot <= 0 {
			return 0
		}
		return math.Sqrt(sq) / tot
	case exact.Sum:
		var sq, tot float64
		for k, p := range ps {
			sq += p.Sum * res[k] * p.Sum * res[k]
			tot += p.Sum
		}
		if tot == 0 {
			return 0
		}
		return math.Sqrt(sq) / math.Abs(tot)
	case exact.Avg:
		var wsum, tot float64
		for k, p := range ps {
			wsum += p.Count * res[k]
			tot += p.Count
		}
		if tot <= 0 {
			return 0
		}
		return wsum / tot
	default:
		worst := 0.0
		for _, re := range res {
			if re > worst {
				worst = re
			}
		}
		return worst
	}
}

// mergePartials dispatches the merge for one aggregate function. ok is
// false only for the aggregates that are undefined over an empty selection
// (AVG, VARIANCE, STDDEV); COUNT and SUM answer 0, like SQL.
func mergePartials(af exact.AggFunc, ps []shard.Partial) (float64, bool) {
	switch af {
	case exact.Count:
		return shard.MergeCount(ps), true
	case exact.Sum:
		return shard.MergeSum(ps), true
	case exact.Avg:
		return shard.MergeAvg(ps)
	case exact.Variance:
		return shard.MergeVariance(ps)
	case exact.StdDev:
		return shard.MergeStdDev(ps)
	default:
		return 0, false
	}
}

// percentile answers PERCENTILE(x, p) over the merged ensemble: the
// combined selected mass Σᵢ Nᵢ·Dᵢ([lb, x]) is a proper CDF over the
// selection, and bisecting it finds the pooled quantile without any shard
// knowing about its siblings.
func (s *ShardMerge) percentile(lb, ub float64, idx []int) (float64, error) {
	if s.P < 0 || s.P > 1 {
		return 0, fmt.Errorf("core: percentile point %v outside [0, 1]", s.P)
	}
	// Bracket the bisection with the overlapping shards' union support so
	// an unbounded predicate still searches a finite interval.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, k := range idx {
		slo, shi := s.Sets[k].Uni.D.Support()
		lo = math.Min(lo, slo)
		hi = math.Max(hi, shi)
	}
	lo = math.Max(lo, lb)
	hi = math.Min(hi, ub)
	if lo > hi {
		return 0, core.ErrNoSupport
	}
	massLE := func(x float64) float64 {
		t := 0.0
		for _, k := range idx {
			m := s.Sets[k].Uni
			t += m.N * m.D.Mass(lb, x)
		}
		return t
	}
	v, ok := shard.Quantile(s.P, lo, hi, massLE)
	if !ok {
		return 0, core.ErrNoSupport
	}
	return v, nil
}
