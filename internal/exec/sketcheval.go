package exec

import (
	"fmt"

	"dbest/internal/core"
	"dbest/internal/table"
)

// SketchEval answers COUNT(DISTINCT x) or TOP k(x) from a registered
// sketch in constant time — no scan, no model integration. The bound
// sketch lives in the catalog like any model set and absorbs appended
// rows in place, so the same plan keeps answering fresh data without
// retraining.
type SketchEval struct {
	AggName  string
	MS       *core.ModelSet
	Distinct bool // COUNT(DISTINCT x); otherwise TOP k(x)
	K        int  // rank count for TOP
}

func (s *SketchEval) Operator() string { return "SketchEval" }

func (s *SketchEval) Detail() string {
	return fmt.Sprintf("%s sketch=%s kernel=%s", s.AggName, s.MS.Key(), s.MS.EvalKernel())
}

func (s *SketchEval) Children() []Node { return nil }

func (s *SketchEval) Eval(env *Env, _ *table.Table) (AggregateResult, error) {
	sk := s.MS.Sketch
	if sk == nil {
		return AggregateResult{}, fmt.Errorf("exec: model set %s bound to SketchEval carries no sketch", s.MS.Key())
	}
	if s.Distinct {
		v, err := sk.Distinct()
		if err != nil {
			return AggregateResult{}, err
		}
		return AggregateResult{Name: s.AggName, Value: v}, nil
	}
	entries, err := sk.Top(s.K)
	if err != nil {
		return AggregateResult{}, err
	}
	return AggregateResult{Name: s.AggName, Value: float64(len(entries)), TopK: entries}, nil
}

// NewSketchEval builds the operator answering one distinct/TOP aggregate
// from the sketch carried by ms.
func NewSketchEval(name string, ms *core.ModelSet, distinct bool, k int) AggOperator {
	return &SketchEval{AggName: name, MS: ms, Distinct: distinct, K: k}
}
