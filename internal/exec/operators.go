package exec

import (
	"errors"
	"fmt"
	"strings"

	"dbest/internal/core"
	"dbest/internal/exact"
	"dbest/internal/sqlparse"
	"dbest/internal/table"
)

// Project is the plan root: it evaluates one child operator per select-list
// aggregate and assembles the query Result. On the exact path it first opens
// the shared source (base table or join), once per execution, and streams it
// through every ExactScan child.
type Project struct {
	path   string
	aggs   []AggOperator
	source SourceOperator // non-nil on the exact path
}

// NewProject builds the plan root. source must be non-nil exactly when path
// is PathExact.
func NewProject(path string, aggs []AggOperator, source SourceOperator) *Project {
	return &Project{path: path, aggs: aggs, source: source}
}

func (pr *Project) Operator() string { return "Project" }

func (pr *Project) Detail() string {
	d := "[" + pr.path + "]"
	if len(pr.aggs) != 1 {
		d += fmt.Sprintf(" aggs=%d", len(pr.aggs))
	}
	return d
}

func (pr *Project) Children() []Node {
	kids := make([]Node, 0, len(pr.aggs)+1)
	for _, a := range pr.aggs {
		kids = append(kids, a)
	}
	if pr.source != nil {
		kids = append(kids, pr.source)
	}
	return kids
}

func (pr *Project) eval(env *Env) (*Result, error) {
	res := &Result{Source: "model"}
	if pr.path == PathSketch {
		res.Source = "sketch"
	}
	var src *table.Table
	if pr.source != nil {
		res.Source = "exact"
		if src = env.Src; src == nil {
			var err error
			if src, err = pr.source.Open(env); err != nil {
				return nil, err
			}
		}
	}
	for _, a := range pr.aggs {
		ar, err := a.Eval(env, src)
		if err != nil {
			return nil, err
		}
		res.Aggregates = append(res.Aggregates, ar)
	}
	return res, nil
}

// spanBounds applies an Env-level range-parameter override to the bounds an
// operator was planned with.
func spanBounds(env *Env, lb, ub []float64) ([]float64, []float64, error) {
	if env.Span == nil {
		return lb, ub, nil
	}
	if len(lb) != 1 {
		return nil, nil, fmt.Errorf("exec: span override needs exactly one range predicate, plan has %d", len(lb))
	}
	return []float64{env.Span.Lb}, []float64{env.Span.Ub}, nil
}

// wrapEmptyRegion converts ErrNoSupport into the engine's user-facing
// empty-selection message, preserving the sentinel for errors.Is.
func wrapEmptyRegion(name string, err error) error {
	if errors.Is(err, core.ErrNoSupport) {
		return fmt.Errorf("dbest: %s selects an empty region: %w", name, err)
	}
	return err
}

// ModelEval answers one aggregate from a single trained model pair — the
// paper's core primitive: numerical integration over D(x) and R(x) instead
// of a scan (§2.3, Eqs. 1–10). Multi is set for multivariate box predicates.
type ModelEval struct {
	AggName string
	AF      exact.AggFunc
	MS      *core.ModelSet
	Lb, Ub  []float64
	YIsX    bool
	P       float64
	Multi   bool

	// GroupModels, when > 0, marks this node as the per-group-model leaf of
	// a GroupMerge; it is descriptive only and the merge fuses its
	// execution into one parallel pass.
	GroupModels int
	// ShardModels, when > 0, marks this node as the per-shard-model leaf of
	// a ShardMerge: the count of shards the planned range overlaps. Like
	// GroupModels it is descriptive only.
	ShardModels int
}

func (m *ModelEval) Operator() string { return "ModelEval" }

func (m *ModelEval) Detail() string {
	if m.GroupModels > 0 {
		return fmt.Sprintf("per-group models=%d", m.GroupModels)
	}
	if m.ShardModels > 0 {
		return fmt.Sprintf("per-shard models=%d", m.ShardModels)
	}
	return fmt.Sprintf("%s model=%s range=%s kernel=%s",
		m.AggName, m.MS.Key(), rangeString(m.Lb, m.Ub), m.MS.EvalKernel()) +
		boundsTag(m.planRelErr())
}

// planRelErr is the predicted relative error at the planned bounds — the
// EXPLAIN annotation value. 0 (no tag) for multivariate models, which carry
// no error predictor.
func (m *ModelEval) planRelErr() float64 {
	if m.Multi || m.MS.Uni == nil {
		return 0
	}
	return m.MS.Uni.PredictRelErr(m.AF, m.Lb[0], m.Ub[0])
}

func (m *ModelEval) Children() []Node { return nil }

func (m *ModelEval) Eval(env *Env, _ *table.Table) (AggregateResult, error) {
	lb, ub, err := spanBounds(env, m.Lb, m.Ub)
	if err != nil {
		return AggregateResult{}, err
	}
	var ans *core.Answer
	if m.Multi {
		ans, err = m.MS.EvaluateMulti(m.AF, lb, ub)
	} else {
		ans, err = m.MS.EvaluateUni(m.AF, lb[0], ub[0], m.YIsX,
			&core.EvalOptions{Workers: env.Workers, P: m.P})
	}
	if err != nil {
		return AggregateResult{}, wrapEmptyRegion(m.AggName, err)
	}
	return aggFromAnswer(m.AggName, ans), nil
}

// aggFromAnswer lifts a core.Answer into an AggregateResult, carrying the
// error bounds along — the one conversion shared by every model-path
// operator.
func aggFromAnswer(name string, ans *core.Answer) AggregateResult {
	return AggregateResult{Name: name, Value: ans.Value, Groups: ans.Groups,
		CI: ans.CI, PredRelErr: ans.PredRelErr}
}

// GroupMerge answers one aggregate over a grouped model set: it fans the
// evaluation out over every per-group model (and every raw small group) and
// merges the per-group answers in group order — the paper's GROUP BY
// strategy (§2.3). Its children describe the fan-out; execution is fused
// into one parallel pass over all groups.
type GroupMerge struct {
	AggName string
	AF      exact.AggFunc
	MS      *core.ModelSet
	Lb, Ub  float64
	YIsX    bool
	P       float64
}

func (g *GroupMerge) Operator() string { return "GroupMerge" }

func (g *GroupMerge) Detail() string {
	// The bounds tag reports the worst group model's prediction, matching
	// the answer-level PredRelErr the merge returns.
	var worst float64
	for _, m := range g.MS.Groups {
		if re := m.PredictRelErr(g.AF, g.Lb, g.Ub); re > worst {
			worst = re
		}
	}
	return fmt.Sprintf("%s key=%s groupby=%s groups=%d", g.AggName, g.MS.Key(),
		g.MS.GroupBy, len(g.MS.Groups)+len(g.MS.Raw)) + boundsTag(worst)
}

func (g *GroupMerge) Children() []Node {
	var kids []Node
	if len(g.MS.Groups) > 0 {
		kids = append(kids, &ModelEval{GroupModels: len(g.MS.Groups)})
	}
	if len(g.MS.Raw) > 0 {
		kids = append(kids, &RawGroupEval{MS: g.MS})
	}
	return kids
}

func (g *GroupMerge) Eval(env *Env, _ *table.Table) (AggregateResult, error) {
	lb, ub := []float64{g.Lb}, []float64{g.Ub}
	lb, ub, err := spanBounds(env, lb, ub)
	if err != nil {
		return AggregateResult{}, err
	}
	ans, err := g.MS.EvaluateUni(g.AF, lb[0], ub[0], g.YIsX,
		&core.EvalOptions{Workers: env.Workers, P: g.P})
	if err != nil {
		return AggregateResult{}, wrapEmptyRegion(g.AggName, err)
	}
	return aggFromAnswer(g.AggName, ans), nil
}

// RawGroupEval is the GroupMerge leaf answering the small groups kept as raw
// sample tuples instead of models (below TrainOptions.MinGroupModel); those
// groups are aggregated exactly over their retained tuples.
type RawGroupEval struct {
	MS *core.ModelSet
}

func (r *RawGroupEval) Operator() string { return "RawGroupEval" }
func (r *RawGroupEval) Detail() string   { return fmt.Sprintf("raw groups=%d", len(r.MS.Raw)) }
func (r *RawGroupEval) Children() []Node { return nil }

// NominalEval answers one aggregate for rows with NominalBy = EqValue from
// the per-value model trained for that nominal value (§2.3, "Supporting
// Categorical Attributes").
type NominalEval struct {
	AggName string
	AF      exact.AggFunc
	MS      *core.ModelSet
	EqValue string
	Lb, Ub  float64
	YIsX    bool
	P       float64
}

func (n *NominalEval) Operator() string { return "NominalEval" }

func (n *NominalEval) Detail() string {
	var re float64
	if m, ok := n.MS.Nominal[n.EqValue]; ok {
		re = m.PredictRelErr(n.AF, n.Lb, n.Ub)
	}
	return fmt.Sprintf("%s model=%s %s='%s' range=%s", n.AggName, n.MS.Key(),
		n.MS.NominalBy, n.EqValue, rangeString([]float64{n.Lb}, []float64{n.Ub})) +
		boundsTag(re)
}

func (n *NominalEval) Children() []Node { return nil }

func (n *NominalEval) Eval(env *Env, _ *table.Table) (AggregateResult, error) {
	lb, ub, err := spanBounds(env, []float64{n.Lb}, []float64{n.Ub})
	if err != nil {
		return AggregateResult{}, err
	}
	ans, err := n.MS.EvaluateNominal(n.AF, n.EqValue, lb[0], ub[0], n.YIsX,
		&core.EvalOptions{Workers: env.Workers, P: n.P})
	if err != nil {
		return AggregateResult{}, wrapEmptyRegion(n.AggName, err)
	}
	return aggFromAnswer(n.AggName, ans), nil
}

// TableScan resolves one registered base table at execution time — the leaf
// of the exact path.
type TableScan struct {
	TableName string
	JoinSide  bool // right side of a join, for error wording
}

func (t *TableScan) Operator() string { return "TableScan" }
func (t *TableScan) Detail() string   { return t.TableName }
func (t *TableScan) Children() []Node { return nil }

func (t *TableScan) Open(env *Env) (*table.Table, error) {
	if env.Tables == nil {
		return nil, fmt.Errorf("exec: no table resolver for exact scan of %q", t.TableName)
	}
	tb := env.Tables.Table(t.TableName)
	if tb == nil {
		if t.JoinSide {
			return nil, fmt.Errorf("dbest: no model for query and join table %q is not registered", t.TableName)
		}
		return nil, fmt.Errorf("dbest: no model for query and table %q is not registered", t.TableName)
	}
	return tb, nil
}

// JoinEval materializes FROM left JOIN right ON lk = rk once per execution
// and feeds the joined table to the ExactScan siblings above it.
type JoinEval struct {
	Left, Right       *TableScan
	LeftKey, RightKey string
}

func (j *JoinEval) Operator() string { return "JoinEval" }

func (j *JoinEval) Detail() string {
	return fmt.Sprintf("on %s.%s = %s.%s", j.Left.TableName, j.LeftKey, j.Right.TableName, j.RightKey)
}

func (j *JoinEval) Children() []Node { return []Node{j.Left, j.Right} }

func (j *JoinEval) Open(env *Env) (*table.Table, error) {
	lt, err := j.Left.Open(env)
	if err != nil {
		return nil, err
	}
	rt, err := j.Right.Open(env)
	if err != nil {
		return nil, err
	}
	return table.EquiJoin(lt, rt, j.LeftKey, j.RightKey)
}

// ExactScan answers one aggregate by streaming the materialized source
// table through the exact query processor — the fallback below the models
// in Fig. 1 of the paper.
type ExactScan struct {
	AggName string
	AF      exact.AggFunc
	Agg     sqlparse.Aggregate
	Where   []sqlparse.Predicate
	Equals  []sqlparse.Equality
	GroupBy string
}

func (s *ExactScan) Operator() string { return "ExactScan" }

func (s *ExactScan) Detail() string {
	d := s.AggName
	if len(s.Where) > 0 {
		lb := make([]float64, len(s.Where))
		ub := make([]float64, len(s.Where))
		for i, p := range s.Where {
			lb[i], ub[i] = p.Lb, p.Ub
		}
		d += " range=" + rangeString(lb, ub)
	}
	for _, eq := range s.Equals {
		d += fmt.Sprintf(" %s='%s'", eq.Column, eq.Value)
	}
	if s.GroupBy != "" {
		d += " groupby=" + s.GroupBy
	}
	return d
}

func (s *ExactScan) Children() []Node { return nil }

func (s *ExactScan) Eval(env *Env, src *table.Table) (AggregateResult, error) {
	if src == nil {
		return AggregateResult{}, fmt.Errorf("exec: ExactScan %s has no input table", s.AggName)
	}
	where := s.Where
	if env.Span != nil {
		if len(where) != 1 {
			return AggregateResult{}, fmt.Errorf("exec: span override needs exactly one range predicate, plan has %d", len(where))
		}
		where = []sqlparse.Predicate{{Column: where[0].Column, Lb: env.Span.Lb, Ub: env.Span.Ub}}
	}
	if s.Agg.Distinct || strings.EqualFold(s.Agg.Func, "TOP") {
		return s.evalSketchExact(src, where)
	}
	req := exact.Request{AF: s.AF, Y: s.Agg.Column, Group: s.GroupBy, P: s.Agg.P}
	if s.Agg.Column == "*" {
		if len(where) > 0 {
			req.Y = where[0].Column
		} else {
			// COUNT(*) needs some numeric column to stream through.
			req.Y = ""
			for _, c := range src.Columns {
				if c.Type != table.String {
					req.Y = c.Name
					break
				}
			}
			if req.Y == "" {
				return AggregateResult{}, fmt.Errorf("dbest: %s(*) on table %q needs a numeric column to count, but all columns are strings", s.Agg.Func, src.Name)
			}
		}
	}
	for _, p := range where {
		req.Predicates = append(req.Predicates, exact.Range{Column: p.Column, Lb: p.Lb, Ub: p.Ub})
	}
	for _, eq := range s.Equals {
		req.Equals = append(req.Equals, exact.Equal{Column: eq.Column, Value: eq.Value})
	}
	r, err := exact.Query(src, req)
	if err != nil {
		return AggregateResult{}, err
	}
	ar := AggregateResult{Name: s.AggName, Value: r.Value}
	if r.Groups != nil {
		for g, v := range r.Groups {
			ar.Groups = append(ar.Groups, core.GroupAnswer{Group: g, Value: v})
		}
		core.SortGroupAnswers(ar.Groups)
	}
	return ar, nil
}

// evalSketchExact answers COUNT(DISTINCT x) or TOP k(x) by exact scan — the
// fallback when no sketch covers the query (and the only path once range or
// equality predicates narrow the rows, which a whole-table sketch cannot).
func (s *ExactScan) evalSketchExact(src *table.Table, where []sqlparse.Predicate) (AggregateResult, error) {
	if s.GroupBy != "" {
		return AggregateResult{}, fmt.Errorf("dbest: %s does not support GROUP BY", s.AggName)
	}
	var preds []exact.Range
	for _, p := range where {
		preds = append(preds, exact.Range{Column: p.Column, Lb: p.Lb, Ub: p.Ub})
	}
	var eqs []exact.Equal
	for _, eq := range s.Equals {
		eqs = append(eqs, exact.Equal{Column: eq.Column, Value: eq.Value})
	}
	if s.Agg.Distinct {
		v, err := exact.DistinctCount(src, s.Agg.Column, preds, eqs)
		if err != nil {
			return AggregateResult{}, err
		}
		return AggregateResult{Name: s.AggName, Value: v}, nil
	}
	entries, err := exact.TopValues(src, s.Agg.Column, s.Agg.K, preds, eqs)
	if err != nil {
		return AggregateResult{}, err
	}
	return AggregateResult{Name: s.AggName, Value: float64(len(entries)), TopK: entries}, nil
}

// DisplayName renders an aggregate for result labels and EXPLAIN details:
// "AVG(y)", "COUNT(DISTINCT x)", "TOP 10(x)".
func DisplayName(agg sqlparse.Aggregate) string {
	if strings.EqualFold(agg.Func, "TOP") {
		return fmt.Sprintf("TOP %d(%s)", agg.K, agg.Column)
	}
	if agg.Distinct {
		return fmt.Sprintf("%s(DISTINCT %s)", agg.Func, agg.Column)
	}
	return agg.Func + "(" + agg.Column + ")"
}

// NewModelEval builds the operator answering one aggregate from ms: a
// GroupMerge over per-group models when ms is grouped, a plain ModelEval
// otherwise (multivariate when len(lb) >= 2).
func NewModelEval(name string, af exact.AggFunc, ms *core.ModelSet, lb, ub []float64, yIsX bool, p float64) AggOperator {
	if ms.GroupBy != "" && len(lb) == 1 {
		return &GroupMerge{AggName: name, AF: af, MS: ms, Lb: lb[0], Ub: ub[0], YIsX: yIsX, P: p}
	}
	return &ModelEval{AggName: name, AF: af, MS: ms, Lb: lb, Ub: ub,
		YIsX: yIsX, P: p, Multi: len(lb) >= 2}
}

// NewNominalEval builds the operator answering one aggregate from the
// per-nominal-value models of ms.
func NewNominalEval(name string, af exact.AggFunc, ms *core.ModelSet, eqValue string, lb, ub float64, yIsX bool, p float64) AggOperator {
	return &NominalEval{AggName: name, AF: af, MS: ms, EqValue: eqValue,
		Lb: lb, Ub: ub, YIsX: yIsX, P: p}
}

// NewExactPlan compiles q into an exact-path plan: per-aggregate ExactScan
// operators over a shared TableScan (or JoinEval) source. reason records why
// the planner fell through to the exact engine.
func NewExactPlan(q *sqlparse.Query, reason string) (*Plan, error) {
	var src SourceOperator = &TableScan{TableName: q.Table}
	if q.Join != nil {
		src = &JoinEval{
			Left:     &TableScan{TableName: q.Table},
			Right:    &TableScan{TableName: q.Join.Table, JoinSide: true},
			LeftKey:  stripQualifier(q.Join.LeftKey),
			RightKey: stripQualifier(q.Join.RightKey),
		}
	}
	aggs := make([]AggOperator, 0, len(q.Aggregates))
	for _, agg := range q.Aggregates {
		scan := &ExactScan{
			AggName: DisplayName(agg),
			Agg:     agg,
			Where:   q.Where,
			Equals:  q.Equals,
			GroupBy: q.GroupBy,
		}
		// DISTINCT and TOP bypass the moment accumulator; everything else
		// resolves to one of the exact aggregate functions.
		if !agg.Distinct && !strings.EqualFold(agg.Func, "TOP") {
			af, err := exact.ParseAggFunc(agg.Func)
			if err != nil {
				return nil, err
			}
			scan.AF = af
		}
		aggs = append(aggs, scan)
	}
	return NewPlan(PathExact, reason, NewProject(PathExact, aggs, src)), nil
}

func stripQualifier(col string) string {
	if i := strings.LastIndexByte(col, '.'); i >= 0 {
		return col[i+1:]
	}
	return col
}
