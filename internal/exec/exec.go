// Package exec is DBEst's physical execution layer. The planner (package
// dbest) resolves a parsed query against the model catalog and compiles it
// into a small tree of physical operators — ModelEval, GroupMerge,
// NominalEval, ExactScan, JoinEval — and the tree then executes without
// consulting the planner, the parser or the catalog again. A Plan is
// immutable after construction and safe for concurrent Run calls, which is
// what the engine's plan cache and the batched query API rely on: one
// parse/plan amortized over many executions.
package exec

import (
	"fmt"
	"strings"
	"sync/atomic"

	"dbest/internal/core"
	"dbest/internal/sketch"
	"dbest/internal/table"
)

// Path values a plan can be routed down. They are the values reported by
// PreparedQuery.Path and EXPLAIN output.
const (
	PathModel   = "model"
	PathNominal = "nominal-model"
	PathSketch  = "sketch"
	PathExact   = "exact"
)

// Node is one operator in a physical plan tree. Every operator renders
// itself for EXPLAIN via Operator/Detail and exposes its children so the
// tree can be walked generically.
type Node interface {
	// Operator is the operator name, e.g. "ModelEval".
	Operator() string
	// Detail is the one-line operator description shown in EXPLAIN.
	Detail() string
	// Children returns the operator's child nodes in plan order.
	Children() []Node
}

// AggOperator is an operator that answers one select-list aggregate. src is
// the materialized exact-path input table (nil on model paths).
type AggOperator interface {
	Node
	Eval(env *Env, src *table.Table) (AggregateResult, error)
}

// SourceOperator materializes the input table for exact-path scans. It is
// opened once per execution and shared by all ExactScan siblings.
type SourceOperator interface {
	Node
	Open(env *Env) (*table.Table, error)
}

// TableResolver resolves a registered base table at execution time; the
// engine's immutable snapshot implements it, so every resolution within one
// execution sees the same point-in-time table versions without locking.
// Resolution is deferred to execution (not plan time) so cached exact-path
// plans observe tables registered after planning — each Run binds the
// snapshot captured at its own call.
type TableResolver interface {
	Table(name string) *table.Table
}

// Span is one range-parameter binding: replacement bounds for a plan's
// single range predicate (PreparedQuery.RunBatch).
type Span struct {
	Lb, Ub float64
}

// ShardCounters accumulates shard-pruning statistics across executions:
// how many shard models ShardMerge operators evaluated and how many they
// skipped because the shard's range did not overlap the predicate. The
// engine owns one instance for its lifetime; the counters are atomic so
// concurrent executions update them without locks.
type ShardCounters struct {
	Evaluated atomic.Uint64
	Pruned    atomic.Uint64
}

// Env carries per-execution state through the operator tree. Operators
// never mutate it (the shared Shards counters are atomic); the engine
// builds one per execution so concurrent Runs of the same plan can carry
// different Span bindings.
type Env struct {
	// Workers bounds parallel per-group model evaluation (0 = GOMAXPROCS).
	Workers int
	// Tables resolves base tables for exact-path scans.
	Tables TableResolver
	// Span, when non-nil, overrides the bounds of the plan's single range
	// predicate for this execution.
	Span *Span
	// Src, when non-nil, is a pre-materialized exact-path source table,
	// shared by callers that execute one plan many times (see
	// Plan.OpenSource); model-path plans ignore it.
	Src *table.Table
	// Shards, when non-nil, accumulates shard evaluation/pruning counts.
	Shards *ShardCounters
}

// AggregateResult is the answer for one select-list aggregate. On model
// paths, CI is the value's confidence interval [lo, hi] and PredRelErr the
// predicted relative error from the model's train-time error predictor;
// both zero when bounds are unknown (exact/sketch paths, models persisted
// before error bounds existed).
type AggregateResult struct {
	Name       string // e.g. "AVG(ss_sales_price)"
	Value      float64
	Groups     []core.GroupAnswer // populated for GROUP BY queries
	TopK       []sketch.Entry     // populated for TOP k(x) aggregates
	CI         [2]float64
	PredRelErr float64
}

// Result is one executed query's answer.
type Result struct {
	Aggregates []AggregateResult
	// Source reports which path answered: "model", "sketch" or "exact".
	Source string
}

// Plan is an executable physical plan: the routing decision the planner
// made plus the operator tree that implements it.
type Plan struct {
	// Path is "model", "nominal-model", "sketch" or "exact".
	Path string
	// Reason explains an exact-path decision; empty on model paths.
	Reason string

	root *Project
}

// NewPlan assembles a plan from its root projection.
func NewPlan(path, reason string, root *Project) *Plan {
	return &Plan{Path: path, Reason: reason, root: root}
}

// Root returns the plan's root operator.
func (p *Plan) Root() Node { return p.root }

// Run executes the plan once. env may be nil for model-only plans.
func (p *Plan) Run(env *Env) (*Result, error) {
	if env == nil {
		env = &Env{}
	}
	return p.root.eval(env)
}

// OpenSource materializes the plan's exact-path source (base table or
// join), or returns nil for model-path plans. Callers executing the same
// plan many times (RunBatch) open it once and pass it back via Env.Src so
// an equi-join is not re-materialized per execution.
func (p *Plan) OpenSource(env *Env) (*table.Table, error) {
	if p.root.source == nil {
		return nil, nil
	}
	return p.root.source.Open(env)
}

// ModelKeys lists the catalog keys of the model sets bound to the plan's
// aggregates, in select-list order (empty on the exact path). A sharded
// ensemble is summarized as one base key with an @K-shards suffix rather
// than K member keys.
func (p *Plan) ModelKeys() []string {
	var keys []string
	for _, a := range p.root.aggs {
		if sm, ok := a.(*ShardMerge); ok {
			keys = append(keys, fmt.Sprintf("%s@%d-shards", sm.Sets[0].BaseKey(), len(sm.Sets)))
			continue
		}
		if se, ok := a.(*SketchEval); ok {
			keys = append(keys, se.MS.Key())
			continue
		}
		if ms := boundModelSet(a); ms != nil {
			keys = append(keys, ms.Key())
		}
	}
	return keys
}

// boundModelSet extracts the model set an aggregate operator evaluates, or
// nil for exact scans.
func boundModelSet(n Node) *core.ModelSet {
	switch op := n.(type) {
	case *ModelEval:
		return op.MS
	case *GroupMerge:
		return op.MS
	case *NominalEval:
		return op.MS
	}
	return nil
}

// Render returns the indented operator-tree rendering used by EXPLAIN:
//
//	Project [model]
//	└── GroupMerge AVG(y) key=gt|x|y|g groups=5
//	    ├── ModelEval per-group models=3
//	    └── RawGroupEval raw groups=2
func (p *Plan) Render() string {
	var b strings.Builder
	writeNode(&b, p.root, "", "")
	return b.String()
}

func writeNode(b *strings.Builder, n Node, head, indent string) {
	b.WriteString(head)
	b.WriteString(n.Operator())
	if d := n.Detail(); d != "" {
		b.WriteByte(' ')
		b.WriteString(d)
	}
	b.WriteByte('\n')
	kids := n.Children()
	for i, k := range kids {
		branch, extend := "├── ", "│   "
		if i == len(kids)-1 {
			branch, extend = "└── ", "    "
		}
		writeNode(b, k, indent+branch, indent+extend)
	}
}

// boundsTag renders the predicted-relative-error EXPLAIN annotation
// (" bounds=±1.2%", leading space included), or "" when the operator's
// models carry no fitted error predictor — the kernel= tag's sibling.
func boundsTag(re float64) string {
	if re <= 0 {
		return ""
	}
	return fmt.Sprintf(" bounds=±%.1f%%", re*100)
}

// rangeString formats predicate bounds for EXPLAIN details.
func rangeString(lb, ub []float64) string {
	var b strings.Builder
	for i := range lb {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "[%g,%g]", lb[i], ub[i])
	}
	return b.String()
}
