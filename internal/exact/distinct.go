package exact

import (
	"fmt"
	"math"
	"sort"

	"dbest/internal/sketch"
	"dbest/internal/table"
)

// Exact ground truth for the sketch estimators: a predicate-aware
// COUNT(DISTINCT col) and an exact TOP-K occurrence scan. They serve two
// roles — the exact fallback path for distinct/TOP queries no sketch
// covers (e.g. with WHERE predicates, which whole-table sketches cannot
// narrow), and the oracle the sketch accuracy harness measures against.
// Values are canonicalized exactly like the sketches canonicalize them
// (sketch.FloatKey for numeric columns, raw strings otherwise), so oracle
// and estimate count the same value universe.

// rowFilter compiles the conjunctive range + equality predicates into one
// per-row match function over tb.
func rowFilter(tb *table.Table, predicates []Range, equals []Equal) (func(i int) bool, error) {
	type pred struct {
		col    []float64
		lb, ub float64
	}
	preds := make([]pred, 0, len(predicates))
	for _, r := range predicates {
		c, err := tb.Floats(r.Column)
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred{c, r.Lb, r.Ub})
	}
	type eq struct {
		col   *table.Column
		value string
	}
	eqs := make([]eq, 0, len(equals))
	for _, e := range equals {
		c := tb.Column(e.Column)
		if c == nil {
			return nil, fmt.Errorf("exact: no column %q", e.Column)
		}
		eqs = append(eqs, eq{c, e.Value})
	}
	return func(i int) bool {
		for _, p := range preds {
			// NaN fails every comparison, so "v < lb || v > ub" alone would
			// let NaN rows through a range they can never satisfy. Reject
			// them explicitly, matching the model path (which never trains
			// on or integrates over NaN).
			if v := p.col[i]; math.IsNaN(v) || v < p.lb || v > p.ub {
				return false
			}
		}
		for _, e := range eqs {
			if e.col.Str(i) != e.value {
				return false
			}
		}
		return true
	}, nil
}

// valueKey is the canonical per-row value form shared with the sketches.
func valueKey(c *table.Column, i int) string {
	if c.Type == table.String {
		return c.Strings[i]
	}
	return sketch.FloatKey(c.Float(i))
}

// DistinctCount computes the exact COUNT(DISTINCT col) over the rows of tb
// satisfying every predicate. With no predicates it delegates to the
// type-native table scan.
func DistinctCount(tb *table.Table, col string, predicates []Range, equals []Equal) (float64, error) {
	c := tb.Column(col)
	if c == nil {
		return 0, fmt.Errorf("exact: no column %q", col)
	}
	if len(predicates) == 0 && len(equals) == 0 {
		n, err := tb.DistinctCount(col)
		return float64(n), err
	}
	match, err := rowFilter(tb, predicates, equals)
	if err != nil {
		return 0, err
	}
	set := make(map[string]struct{})
	for i := 0; i < c.Len(); i++ {
		if match(i) {
			set[valueKey(c, i)] = struct{}{}
		}
	}
	return float64(len(set)), nil
}

// TopValues computes the exact TOP k(col) over the rows of tb satisfying
// every predicate: the k most frequent values with their exact occurrence
// counts, ordered by count descending (ties by value ascending, matching
// the sketch's deterministic listing order).
func TopValues(tb *table.Table, col string, k int, predicates []Range, equals []Equal) ([]sketch.Entry, error) {
	if k < 1 {
		return nil, fmt.Errorf("exact: TOP wants a positive rank count, got %d", k)
	}
	c := tb.Column(col)
	if c == nil {
		return nil, fmt.Errorf("exact: no column %q", col)
	}
	match, err := rowFilter(tb, predicates, equals)
	if err != nil {
		return nil, err
	}
	counts := make(map[string]uint64)
	for i := 0; i < c.Len(); i++ {
		if match(i) {
			counts[valueKey(c, i)]++
		}
	}
	out := make([]sketch.Entry, 0, len(counts))
	for v, n := range counts {
		out = append(out, sketch.Entry{Value: v, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
