package exact

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbest/internal/table"
)

func fixture() *table.Table {
	tb := table.New("t")
	tb.AddFloatColumn("x", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	tb.AddFloatColumn("y", []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	tb.AddIntColumn("g", []int64{0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	return tb
}

func TestCountSumAvg(t *testing.T) {
	tb := fixture()
	pred := []Range{{"x", 3, 7}} // rows 3..7 → y = 30..70
	cases := []struct {
		af   AggFunc
		want float64
	}{
		{Count, 5},
		{Sum, 250},
		{Avg, 50},
	}
	for _, tc := range cases {
		r, err := Query(tb, Request{AF: tc.af, Y: "y", Predicates: pred})
		if err != nil {
			t.Fatalf("%v: %v", tc.af, err)
		}
		if r.Value != tc.want {
			t.Errorf("%v = %v, want %v", tc.af, r.Value, tc.want)
		}
	}
}

func TestVarianceStdDev(t *testing.T) {
	tb := fixture()
	pred := []Range{{"x", 1, 10}}
	r, err := Query(tb, Request{AF: Variance, Y: "y", Predicates: pred})
	if err != nil {
		t.Fatal(err)
	}
	// Population variance of 10..100 step 10 = 825.
	if math.Abs(r.Value-825) > 1e-9 {
		t.Fatalf("VARIANCE = %v, want 825", r.Value)
	}
	r2, err := Query(tb, Request{AF: StdDev, Y: "y", Predicates: pred})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.Value-math.Sqrt(825)) > 1e-9 {
		t.Fatalf("STDDEV = %v", r2.Value)
	}
}

func TestPercentile(t *testing.T) {
	tb := fixture()
	r, err := Query(tb, Request{AF: Percentile, Y: "x", Predicates: []Range{{"x", 1, 10}}, P: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-5.5) > 1e-9 {
		t.Fatalf("median = %v, want 5.5", r.Value)
	}
	r0, _ := Query(tb, Request{AF: Percentile, Y: "x", Predicates: []Range{{"x", 1, 10}}, P: 0})
	r1, _ := Query(tb, Request{AF: Percentile, Y: "x", Predicates: []Range{{"x", 1, 10}}, P: 1})
	if r0.Value != 1 || r1.Value != 10 {
		t.Fatalf("extremes: %v %v", r0.Value, r1.Value)
	}
}

func TestGroupBy(t *testing.T) {
	tb := fixture()
	r, err := Query(tb, Request{AF: Sum, Y: "y", Predicates: []Range{{"x", 1, 10}}, Group: "g"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Groups) != 2 {
		t.Fatalf("groups = %d", len(r.Groups))
	}
	if r.Groups[0] != 10+30+50+70+90 {
		t.Fatalf("group 0 = %v", r.Groups[0])
	}
	if r.Groups[1] != 20+40+60+80+100 {
		t.Fatalf("group 1 = %v", r.Groups[1])
	}
}

func TestMultiPredicate(t *testing.T) {
	tb := fixture()
	r, err := Query(tb, Request{AF: Count, Y: "y",
		Predicates: []Range{{"x", 2, 9}, {"y", 40, 70}}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 4 {
		t.Fatalf("count = %v, want 4", r.Value)
	}
}

func TestEmptySelection(t *testing.T) {
	tb := fixture()
	r, err := Query(tb, Request{AF: Count, Y: "y", Predicates: []Range{{"x", 100, 200}}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 0 {
		t.Fatalf("count = %v", r.Value)
	}
	if _, err := Query(tb, Request{AF: Avg, Y: "y", Predicates: []Range{{"x", 100, 200}}}); err == nil {
		t.Fatal("AVG over empty selection should error")
	}
	if _, err := Query(tb, Request{AF: Percentile, Y: "y", Predicates: []Range{{"x", 100, 200}}, P: 0.5}); err == nil {
		t.Fatal("PERCENTILE over empty selection should error")
	}
}

func TestErrors(t *testing.T) {
	tb := fixture()
	if _, err := Query(tb, Request{AF: Count, Y: "nope"}); err == nil {
		t.Fatal("want error for missing y")
	}
	if _, err := Query(tb, Request{AF: Count, Y: "y", Predicates: []Range{{"nope", 0, 1}}}); err == nil {
		t.Fatal("want error for missing predicate column")
	}
	if _, err := Query(tb, Request{AF: Count, Y: "y", Group: "nope"}); err == nil {
		t.Fatal("want error for missing group column")
	}
	if _, err := Query(tb, Request{AF: Count, Y: "y", Group: "x"}); err == nil {
		t.Fatal("want error for float group column")
	}
}

func TestParseAggFunc(t *testing.T) {
	for name, want := range map[string]AggFunc{
		"COUNT": Count, "SUM": Sum, "AVG": Avg,
		"VARIANCE": Variance, "STDDEV": StdDev, "PERCENTILE": Percentile,
	} {
		got, err := ParseAggFunc(name)
		if err != nil || got != want {
			t.Errorf("ParseAggFunc(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("String() = %q, want %q", got.String(), name)
		}
	}
	if _, err := ParseAggFunc("MEDIAN"); err == nil {
		t.Fatal("want error for unknown AF")
	}
}

// Property: SUM == AVG × COUNT on any nonempty selection.
func TestSumAvgCountConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(400)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.NormFloat64() * 50
		}
		tb := table.New("t")
		tb.AddFloatColumn("x", xs)
		tb.AddFloatColumn("y", ys)
		lb := rng.Float64() * 50
		ub := lb + 10 + rng.Float64()*40
		pred := []Range{{"x", lb, ub}}
		cnt, err := Query(tb, Request{AF: Count, Y: "y", Predicates: pred})
		if err != nil {
			return false
		}
		if cnt.Value == 0 {
			return true
		}
		sum, err1 := Query(tb, Request{AF: Sum, Y: "y", Predicates: pred})
		avg, err2 := Query(tb, Request{AF: Avg, Y: "y", Predicates: pred})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(sum.Value-avg.Value*cnt.Value) < 1e-6*math.Max(1, math.Abs(sum.Value))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: grouped results partition the ungrouped result for SUM/COUNT.
func TestGroupPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200
		xs := make([]float64, n)
		ys := make([]float64, n)
		gs := make([]int64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
			ys[i] = rng.Float64() * 10
			gs[i] = int64(rng.Intn(5))
		}
		tb := table.New("t")
		tb.AddFloatColumn("x", xs)
		tb.AddFloatColumn("y", ys)
		tb.AddIntColumn("g", gs)
		pred := []Range{{"x", 2, 8}}
		whole, err := Query(tb, Request{AF: Sum, Y: "y", Predicates: pred})
		if err != nil {
			return false
		}
		parts, err := Query(tb, Request{AF: Sum, Y: "y", Predicates: pred, Group: "g"})
		if err != nil {
			return false
		}
		s := 0.0
		for _, v := range parts.Groups {
			s += v
		}
		return math.Abs(s-whole.Value) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
