// Package exact implements a single-pass exact aggregation engine over the
// columnar tables of internal/table. It serves two roles from the paper's
// architecture (Fig. 1): the "Exact QP" engine that sits below DBEst for
// queries no model can answer, and the ground-truth oracle the evaluation
// harness measures relative errors against. It also doubles as the
// "MonetDB-style" compute kernel the Appendix C baseline runs over samples.
package exact

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dbest/internal/table"
)

// AggFunc enumerates the aggregate functions DBEst supports (§2.2).
type AggFunc int

const (
	Count AggFunc = iota
	Sum
	Avg
	Variance
	StdDev
	Percentile
)

var aggNames = map[AggFunc]string{
	Count: "COUNT", Sum: "SUM", Avg: "AVG",
	Variance: "VARIANCE", StdDev: "STDDEV", Percentile: "PERCENTILE",
}

func (a AggFunc) String() string {
	if s, ok := aggNames[a]; ok {
		return s
	}
	return fmt.Sprintf("AggFunc(%d)", int(a))
}

// ParseAggFunc converts an SQL aggregate-function name (case-insensitive is
// handled by the parser; here names are upper-case) to an AggFunc.
func ParseAggFunc(name string) (AggFunc, error) {
	for a, s := range aggNames {
		if s == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("exact: unknown aggregate function %q", name)
}

// Range is a closed interval predicate x BETWEEN Lb AND Ub.
type Range struct {
	Column string
	Lb, Ub float64
}

// Equal is a nominal equality predicate col = Value (String columns) or
// col = numeric value rendered as a string (Int64 columns).
type Equal struct {
	Column string
	Value  string
}

// Request describes one aggregate computation: AF(Y) over the rows of a
// table satisfying every predicate, optionally grouped by Group.
type Request struct {
	AF         AggFunc
	Y          string  // aggregate attribute; for density AFs equals the predicate column
	Predicates []Range // conjunctive range predicates
	Equals     []Equal // conjunctive nominal equality predicates
	Group      string  // optional GROUP BY column (Int64)
	P          float64 // percentile point for AF == Percentile, in [0, 1]
}

// accum accumulates streaming moments for one group.
type accum struct {
	n            float64
	sum, sumSq   float64
	values       []float64 // retained only for percentile
	wantQuantile bool
}

func (a *accum) add(v float64) {
	a.n++
	a.sum += v
	a.sumSq += v * v
	if a.wantQuantile {
		a.values = append(a.values, v)
	}
}

func (a *accum) result(af AggFunc, p float64) (float64, error) {
	switch af {
	case Count:
		return a.n, nil
	case Sum:
		return a.sum, nil
	case Avg:
		if a.n == 0 {
			return 0, errors.New("exact: AVG over empty selection")
		}
		return a.sum / a.n, nil
	case Variance, StdDev:
		if a.n == 0 {
			return 0, errors.New("exact: VARIANCE over empty selection")
		}
		m := a.sum / a.n
		v := a.sumSq/a.n - m*m
		if v < 0 {
			v = 0
		}
		if af == StdDev {
			return math.Sqrt(v), nil
		}
		return v, nil
	case Percentile:
		if len(a.values) == 0 {
			return 0, errors.New("exact: PERCENTILE over empty selection")
		}
		sort.Float64s(a.values)
		return quantile(a.values, p), nil
	default:
		return 0, fmt.Errorf("exact: unsupported aggregate %v", af)
	}
}

func quantile(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Result is an exact answer, optionally per group.
type Result struct {
	Value  float64           // scalar answer (no GROUP BY)
	Groups map[int64]float64 // per-group answers (GROUP BY)
}

// Query computes the exact answer for req over tb in one pass.
func Query(tb *table.Table, req Request) (*Result, error) {
	ycol, err := tb.Floats(req.Y)
	if err != nil {
		return nil, err
	}
	type pred struct {
		col    []float64
		lb, ub float64
	}
	preds := make([]pred, 0, len(req.Predicates))
	for _, r := range req.Predicates {
		c, err := tb.Floats(r.Column)
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred{c, r.Lb, r.Ub})
	}
	type eq struct {
		col   *table.Column
		value string
	}
	eqs := make([]eq, 0, len(req.Equals))
	for _, e := range req.Equals {
		c := tb.Column(e.Column)
		if c == nil {
			return nil, fmt.Errorf("exact: no column %q", e.Column)
		}
		eqs = append(eqs, eq{c, e.Value})
	}
	matchEq := func(i int) bool {
		for _, e := range eqs {
			if e.col.Str(i) != e.value {
				return false
			}
		}
		return true
	}
	var groups []int64
	if req.Group != "" {
		gc := tb.Column(req.Group)
		if gc == nil {
			return nil, fmt.Errorf("exact: no group column %q", req.Group)
		}
		if gc.Type != table.Int64 {
			return nil, fmt.Errorf("exact: group column %q must be INT64", req.Group)
		}
		groups = gc.Ints
	}

	wantQ := req.AF == Percentile
	if groups == nil {
		acc := accum{wantQuantile: wantQ}
	rows:
		for i := range ycol {
			for _, p := range preds {
				// NaN must not pass a range predicate (it fails both
				// comparisons below), mirroring rowFilter in distinct.go.
				v := p.col[i]
				if math.IsNaN(v) || v < p.lb || v > p.ub {
					continue rows
				}
			}
			if !matchEq(i) {
				continue
			}
			acc.add(ycol[i])
		}
		v, err := acc.result(req.AF, req.P)
		if err != nil {
			return nil, err
		}
		return &Result{Value: v}, nil
	}

	accs := make(map[int64]*accum)
grouped:
	for i := range ycol {
		for _, p := range preds {
			v := p.col[i]
			if math.IsNaN(v) || v < p.lb || v > p.ub {
				continue grouped
			}
		}
		if !matchEq(i) {
			continue
		}
		g := groups[i]
		a, ok := accs[g]
		if !ok {
			a = &accum{wantQuantile: wantQ}
			accs[g] = a
		}
		a.add(ycol[i])
	}
	out := &Result{Groups: make(map[int64]float64, len(accs))}
	for g, a := range accs {
		v, err := a.result(req.AF, req.P)
		if err != nil {
			continue // empty group under this AF: skip, as SQL would
		}
		out.Groups[g] = v
	}
	return out, nil
}
