// Package table provides an in-memory columnar table representation used as
// the storage layer beneath the DBEst engine, its baselines, and the exact
// query processor. It plays the role of the paper's "Data Store" (Fig. 1):
// a local file system, RDBMS, or distributed FS — here, a columnar in-memory
// store with CSV import/export.
package table

import (
	"fmt"
	"sort"
)

// ColType describes the logical type of a column.
type ColType int

const (
	// Float64 is a numeric column (measures, ordinal attributes).
	Float64 ColType = iota
	// Int64 is an integer column (keys, ordinal categorical attributes).
	Int64
	// String is a nominal categorical column.
	String
)

func (t ColType) String() string {
	switch t {
	case Float64:
		return "FLOAT64"
	case Int64:
		return "INT64"
	case String:
		return "STRING"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column is a single named, typed column. Exactly one of the value slices is
// populated, according to Type.
type Column struct {
	Name    string
	Type    ColType
	Floats  []float64
	Ints    []int64
	Strings []string
}

// Len returns the number of rows stored in the column.
func (c *Column) Len() int {
	switch c.Type {
	case Float64:
		return len(c.Floats)
	case Int64:
		return len(c.Ints)
	case String:
		return len(c.Strings)
	}
	return 0
}

// Float returns row i as a float64. String columns are not convertible and
// return 0; use Str for those.
func (c *Column) Float(i int) float64 {
	switch c.Type {
	case Float64:
		return c.Floats[i]
	case Int64:
		return float64(c.Ints[i])
	}
	return 0
}

// Str returns row i rendered as a string.
func (c *Column) Str(i int) string {
	switch c.Type {
	case Float64:
		return fmt.Sprintf("%g", c.Floats[i])
	case Int64:
		return fmt.Sprintf("%d", c.Ints[i])
	case String:
		return c.Strings[i]
	}
	return ""
}

// AppendFloat appends a float value, coercing to the column type.
func (c *Column) AppendFloat(v float64) {
	switch c.Type {
	case Float64:
		c.Floats = append(c.Floats, v)
	case Int64:
		c.Ints = append(c.Ints, int64(v))
	case String:
		c.Strings = append(c.Strings, fmt.Sprintf("%g", v))
	}
}

// Partition is a table's range-partition metadata: the column whose domain
// was split and the K+1 cut points of the K contiguous range shards. It is
// attached by the engine when a sharded model ensemble is trained over the
// table, and rides along through Clone so copy-on-write append snapshots
// keep reporting the layout their models were sharded under. The metadata
// is descriptive — rows are not physically reordered.
type Partition struct {
	Col    string
	Bounds []float64
}

// Shards returns the number of range shards the partition describes.
func (p *Partition) Shards() int {
	if p == nil || len(p.Bounds) < 2 {
		return 0
	}
	return len(p.Bounds) - 1
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name    string
	Columns []*Column
	// Part, when non-nil, records the range-partition layout of the sharded
	// model ensemble most recently trained over this table.
	Part  *Partition
	index map[string]int
}

// New creates an empty table with the given name.
func New(name string) *Table {
	return &Table{Name: name, index: make(map[string]int)}
}

// AddColumn appends a column and registers it by name. It returns the column
// so callers can fill it in place.
func (t *Table) AddColumn(name string, typ ColType) *Column {
	c := &Column{Name: name, Type: typ}
	if t.index == nil {
		t.index = make(map[string]int)
	}
	t.index[name] = len(t.Columns)
	t.Columns = append(t.Columns, c)
	return c
}

// AddFloatColumn adds a Float64 column backed by the given data (not copied).
func (t *Table) AddFloatColumn(name string, data []float64) *Column {
	c := t.AddColumn(name, Float64)
	c.Floats = data
	return c
}

// AddIntColumn adds an Int64 column backed by the given data (not copied).
func (t *Table) AddIntColumn(name string, data []int64) *Column {
	c := t.AddColumn(name, Int64)
	c.Ints = data
	return c
}

// AddStringColumn adds a String column backed by the given data (not copied).
func (t *Table) AddStringColumn(name string, data []string) *Column {
	c := t.AddColumn(name, String)
	c.Strings = data
	return c
}

// Column returns the column with the given name, or nil if absent.
func (t *Table) Column(name string) *Column {
	if t.index == nil {
		t.rebuildIndex()
	}
	i, ok := t.index[name]
	if !ok {
		return nil
	}
	return t.Columns[i]
}

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool { return t.Column(name) != nil }

// ColumnNames returns the names of all columns in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

func (t *Table) rebuildIndex() {
	t.index = make(map[string]int, len(t.Columns))
	for i, c := range t.Columns {
		t.index[c.Name] = i
	}
}

// NumRows returns the number of rows (the length of the first column).
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// Validate checks that all columns have equal length.
func (t *Table) Validate() error {
	if len(t.Columns) == 0 {
		return nil
	}
	n := t.Columns[0].Len()
	for _, c := range t.Columns[1:] {
		if c.Len() != n {
			return fmt.Errorf("table %s: column %s has %d rows, want %d", t.Name, c.Name, c.Len(), n)
		}
	}
	return nil
}

// Floats returns the named column as a []float64, converting Int64 columns.
// It returns an error for String columns or missing columns.
func (t *Table) Floats(name string) ([]float64, error) {
	c := t.Column(name)
	if c == nil {
		return nil, fmt.Errorf("table %s: no column %q", t.Name, name)
	}
	switch c.Type {
	case Float64:
		return c.Floats, nil
	case Int64:
		out := make([]float64, len(c.Ints))
		for i, v := range c.Ints {
			out[i] = float64(v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("table %s: column %q is %s, not numeric", t.Name, name, c.Type)
	}
}

// SelectRows materializes a new table containing only the rows whose indices
// are listed in idx, in order. Column data is copied.
func (t *Table) SelectRows(idx []int) *Table {
	out := New(t.Name)
	for _, c := range t.Columns {
		nc := out.AddColumn(c.Name, c.Type)
		switch c.Type {
		case Float64:
			nc.Floats = make([]float64, len(idx))
			for j, i := range idx {
				nc.Floats[j] = c.Floats[i]
			}
		case Int64:
			nc.Ints = make([]int64, len(idx))
			for j, i := range idx {
				nc.Ints[j] = c.Ints[i]
			}
		case String:
			nc.Strings = make([]string, len(idx))
			for j, i := range idx {
				nc.Strings[j] = c.Strings[i]
			}
		}
	}
	return out
}

// AppendRow appends one row given values in column order. Each value must
// match its column's type: Float64 accepts float64, int or int64; Int64
// accepts int, int64, or a float64 with no fractional part; String accepts
// string. On a type or arity mismatch no column is modified.
func (t *Table) AppendRow(vals ...interface{}) error {
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("table %s: row has %d values, want %d", t.Name, len(vals), len(t.Columns))
	}
	// Coerce the whole row before touching any column so a rejected row
	// never leaves the table with ragged column lengths.
	type cell struct {
		f float64
		n int64
		s string
	}
	cells := make([]cell, len(vals))
	for j, c := range t.Columns {
		f, n, s, err := coerce(c, vals[j])
		if err != nil {
			return fmt.Errorf("table %s: column %s: %w", t.Name, c.Name, err)
		}
		cells[j] = cell{f, n, s}
	}
	for j, c := range t.Columns {
		switch c.Type {
		case Float64:
			c.Floats = append(c.Floats, cells[j].f)
		case Int64:
			c.Ints = append(c.Ints, cells[j].n)
		case String:
			c.Strings = append(c.Strings, cells[j].s)
		}
	}
	return nil
}

// coerce converts v to column c's storage type, or reports why it cannot.
func coerce(c *Column, v interface{}) (f float64, n int64, s string, err error) {
	switch c.Type {
	case Float64:
		switch x := v.(type) {
		case float64:
			return x, 0, "", nil
		case int:
			return float64(x), 0, "", nil
		case int64:
			return float64(x), 0, "", nil
		}
	case Int64:
		switch x := v.(type) {
		case int:
			return 0, int64(x), "", nil
		case int64:
			return 0, x, "", nil
		case float64:
			if x == float64(int64(x)) {
				return 0, int64(x), "", nil
			}
			return 0, 0, "", fmt.Errorf("value %v has a fractional part, column is INT64", x)
		}
	case String:
		if x, ok := v.(string); ok {
			return 0, 0, x, nil
		}
	}
	return 0, 0, "", fmt.Errorf("value %v (%T) does not match column type %s", v, v, c.Type)
}

// AppendTable appends every row of src. The schemas must match exactly:
// same column names and types in the same order.
func (t *Table) AppendTable(src *Table) error {
	if len(src.Columns) != len(t.Columns) {
		return fmt.Errorf("table %s: appending table with %d columns, want %d", t.Name, len(src.Columns), len(t.Columns))
	}
	for j, c := range t.Columns {
		sc := src.Columns[j]
		if sc.Name != c.Name || sc.Type != c.Type {
			return fmt.Errorf("table %s: column %d is %s %s, want %s %s",
				t.Name, j, sc.Type, sc.Name, c.Type, c.Name)
		}
	}
	if err := src.Validate(); err != nil {
		return err
	}
	for j, c := range t.Columns {
		sc := src.Columns[j]
		switch c.Type {
		case Float64:
			c.Floats = append(c.Floats, sc.Floats...)
		case Int64:
			c.Ints = append(c.Ints, sc.Ints...)
		case String:
			c.Strings = append(c.Strings, sc.Strings...)
		}
	}
	return nil
}

// Clone returns a copy-on-write clone: new Table and Column structs that
// share the underlying value slices. Appending to the clone never changes
// a row visible through the original (append either grows into spare
// capacity past the original's length or reallocates), which is how the
// engine ingests rows while concurrent readers keep scanning a consistent
// snapshot.
func (t *Table) Clone() *Table {
	out := New(t.Name)
	out.Part = t.Part
	for _, c := range t.Columns {
		nc := out.AddColumn(c.Name, c.Type)
		nc.Floats = c.Floats
		nc.Ints = c.Ints
		nc.Strings = c.Strings
	}
	return out
}

// DistinctInts returns the sorted distinct values of an Int64 column. This is
// how GROUP BY values are recorded from the original table during training
// (paper §3, Sampling).
func (t *Table) DistinctInts(name string) ([]int64, error) {
	c := t.Column(name)
	if c == nil {
		return nil, fmt.Errorf("table %s: no column %q", t.Name, name)
	}
	if c.Type != Int64 {
		return nil, fmt.Errorf("table %s: column %q is %s, want INT64", t.Name, name, c.Type)
	}
	set := make(map[int64]struct{})
	for _, v := range c.Ints {
		set[v] = struct{}{}
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// DistinctCount returns the exact number of distinct values in a column of
// any type — the ground-truth oracle for the HLL sketch estimator and the
// exact fallback behind COUNT(DISTINCT x). DistinctInts remains the
// Int64-only value-listing form GROUP BY training uses.
func (t *Table) DistinctCount(name string) (int, error) {
	c := t.Column(name)
	if c == nil {
		return 0, fmt.Errorf("table %s: no column %q", t.Name, name)
	}
	switch c.Type {
	case Int64:
		set := make(map[int64]struct{})
		for _, v := range c.Ints {
			set[v] = struct{}{}
		}
		return len(set), nil
	case Float64:
		set := make(map[float64]struct{})
		for _, v := range c.Floats {
			set[v] = struct{}{}
		}
		return len(set), nil
	case String:
		set := make(map[string]struct{})
		for _, v := range c.Strings {
			set[v] = struct{}{}
		}
		return len(set), nil
	}
	return 0, fmt.Errorf("table %s: column %q has unsupported type %s", t.Name, name, c.Type)
}

// EquiJoin computes the inner equi-join of t and right on leftKey = rightKey
// using a hash join (build on the smaller input). Columns of the result carry
// their original names; on a name clash the right column is prefixed with the
// right table's name and a dot. This is the join-precomputation substrate the
// paper uses before sampling a join result (§2.2, first approach).
func EquiJoin(left, right *Table, leftKey, rightKey string) (*Table, error) {
	lc := left.Column(leftKey)
	rc := right.Column(rightKey)
	if lc == nil {
		return nil, fmt.Errorf("join: %s has no column %q", left.Name, leftKey)
	}
	if rc == nil {
		return nil, fmt.Errorf("join: %s has no column %q", right.Name, rightKey)
	}
	if lc.Type == String || rc.Type == String {
		return nil, fmt.Errorf("join: string join keys are not supported")
	}

	// Build hash table on the right input (dimension tables are small in all
	// paper workloads); probe with the left.
	build := make(map[int64][]int)
	for i := 0; i < rc.Len(); i++ {
		k := asInt(rc, i)
		build[k] = append(build[k], i)
	}
	var leftIdx, rightIdx []int
	for i := 0; i < lc.Len(); i++ {
		if matches, ok := build[asInt(lc, i)]; ok {
			for _, j := range matches {
				leftIdx = append(leftIdx, i)
				rightIdx = append(rightIdx, j)
			}
		}
	}

	out := New(left.Name + "_join_" + right.Name)
	used := make(map[string]bool)
	appendSide := func(src *Table, idx []int, prefix string) {
		for _, c := range src.Columns {
			name := c.Name
			if used[name] {
				name = prefix + "." + name
			}
			used[name] = true
			nc := out.AddColumn(name, c.Type)
			switch c.Type {
			case Float64:
				nc.Floats = make([]float64, len(idx))
				for j, i := range idx {
					nc.Floats[j] = c.Floats[i]
				}
			case Int64:
				nc.Ints = make([]int64, len(idx))
				for j, i := range idx {
					nc.Ints[j] = c.Ints[i]
				}
			case String:
				nc.Strings = make([]string, len(idx))
				for j, i := range idx {
					nc.Strings[j] = c.Strings[i]
				}
			}
		}
	}
	appendSide(left, leftIdx, left.Name)
	appendSide(right, rightIdx, right.Name)
	return out, nil
}

func asInt(c *Column, i int) int64 {
	if c.Type == Int64 {
		return c.Ints[i]
	}
	return int64(c.Floats[i])
}
