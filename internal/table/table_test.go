package table

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndLookupColumns(t *testing.T) {
	tb := New("t")
	tb.AddFloatColumn("x", []float64{1, 2, 3})
	tb.AddIntColumn("k", []int64{10, 20, 30})
	tb.AddStringColumn("s", []string{"a", "b", "c"})

	if got := tb.NumRows(); got != 3 {
		t.Fatalf("NumRows = %d, want 3", got)
	}
	if err := tb.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c := tb.Column("k"); c == nil || c.Type != Int64 {
		t.Fatalf("Column(k) = %+v", c)
	}
	if tb.Column("missing") != nil {
		t.Fatal("Column(missing) should be nil")
	}
	if !tb.HasColumn("x") || tb.HasColumn("y") {
		t.Fatal("HasColumn mismatch")
	}
	names := tb.ColumnNames()
	if len(names) != 3 || names[0] != "x" || names[2] != "s" {
		t.Fatalf("ColumnNames = %v", names)
	}
}

func TestValidateDetectsRaggedColumns(t *testing.T) {
	tb := New("t")
	tb.AddFloatColumn("x", []float64{1, 2, 3})
	tb.AddFloatColumn("y", []float64{1})
	if err := tb.Validate(); err == nil {
		t.Fatal("Validate should fail for ragged columns")
	}
}

func TestColumnFloatConversion(t *testing.T) {
	c := &Column{Type: Int64, Ints: []int64{7}}
	if got := c.Float(0); got != 7 {
		t.Fatalf("Float(0) = %v, want 7", got)
	}
	c2 := &Column{Type: Float64, Floats: []float64{2.5}}
	if got := c2.Float(0); got != 2.5 {
		t.Fatalf("Float(0) = %v, want 2.5", got)
	}
}

func TestColumnStr(t *testing.T) {
	cases := []struct {
		col  Column
		want string
	}{
		{Column{Type: Float64, Floats: []float64{1.5}}, "1.5"},
		{Column{Type: Int64, Ints: []int64{-3}}, "-3"},
		{Column{Type: String, Strings: []string{"hi"}}, "hi"},
	}
	for _, tc := range cases {
		if got := tc.col.Str(0); got != tc.want {
			t.Errorf("Str = %q, want %q", got, tc.want)
		}
	}
}

func TestFloatsConvertsIntColumn(t *testing.T) {
	tb := New("t")
	tb.AddIntColumn("k", []int64{1, 2, 3})
	fs, err := tb.Floats("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 || fs[2] != 3 {
		t.Fatalf("Floats = %v", fs)
	}
	tb.AddStringColumn("s", []string{"a", "b", "c"})
	if _, err := tb.Floats("s"); err == nil {
		t.Fatal("Floats(s) should fail for string column")
	}
	if _, err := tb.Floats("nope"); err == nil {
		t.Fatal("Floats(nope) should fail")
	}
}

func TestSelectRows(t *testing.T) {
	tb := New("t")
	tb.AddFloatColumn("x", []float64{1, 2, 3, 4})
	tb.AddIntColumn("k", []int64{10, 20, 30, 40})
	tb.AddStringColumn("s", []string{"a", "b", "c", "d"})
	sub := tb.SelectRows([]int{3, 1})
	if sub.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", sub.NumRows())
	}
	if sub.Column("x").Floats[0] != 4 || sub.Column("k").Ints[1] != 20 || sub.Column("s").Strings[0] != "d" {
		t.Fatalf("SelectRows wrong data: %+v", sub)
	}
	// The selection must be a copy.
	sub.Column("x").Floats[0] = 99
	if tb.Column("x").Floats[3] == 99 {
		t.Fatal("SelectRows must copy data")
	}
}

func TestDistinctInts(t *testing.T) {
	tb := New("t")
	tb.AddIntColumn("g", []int64{3, 1, 2, 3, 1, 1})
	got, err := tb.DistinctInts("g")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("DistinctInts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DistinctInts = %v, want %v", got, want)
		}
	}
	if _, err := tb.DistinctInts("missing"); err == nil {
		t.Fatal("want error for missing column")
	}
	tb.AddFloatColumn("f", []float64{1, 2, 3, 4, 5, 6})
	if _, err := tb.DistinctInts("f"); err == nil {
		t.Fatal("want error for float column")
	}
}

func TestEquiJoin(t *testing.T) {
	sales := New("sales")
	sales.AddIntColumn("store", []int64{1, 2, 1, 3})
	sales.AddFloatColumn("amt", []float64{10, 20, 30, 40})
	stores := New("stores")
	stores.AddIntColumn("sk", []int64{1, 2})
	stores.AddFloatColumn("emp", []float64{100, 200})

	j, err := EquiJoin(sales, stores, "store", "sk")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 3 {
		t.Fatalf("join rows = %d, want 3 (store 3 has no match)", j.NumRows())
	}
	// Every output row must satisfy the join predicate.
	sc := j.Column("store")
	kc := j.Column("sk")
	for i := 0; i < j.NumRows(); i++ {
		if sc.Ints[i] != kc.Ints[i] {
			t.Fatalf("row %d violates join predicate: %d != %d", i, sc.Ints[i], kc.Ints[i])
		}
	}
	// amt 20 joins to emp 200.
	for i := 0; i < j.NumRows(); i++ {
		if j.Column("amt").Floats[i] == 20 && j.Column("emp").Floats[i] != 200 {
			t.Fatal("join matched wrong dimension row")
		}
	}
}

func TestEquiJoinNameClash(t *testing.T) {
	a := New("a")
	a.AddIntColumn("k", []int64{1})
	a.AddFloatColumn("v", []float64{5})
	b := New("b")
	b.AddIntColumn("k", []int64{1})
	b.AddFloatColumn("v", []float64{9})
	j, err := EquiJoin(a, b, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if !j.HasColumn("b.k") || !j.HasColumn("b.v") {
		t.Fatalf("clashing columns not prefixed: %v", j.ColumnNames())
	}
	if j.Column("v").Floats[0] != 5 || j.Column("b.v").Floats[0] != 9 {
		t.Fatal("wrong values after prefixing")
	}
}

func TestEquiJoinErrors(t *testing.T) {
	a := New("a")
	a.AddIntColumn("k", []int64{1})
	b := New("b")
	b.AddStringColumn("k", []string{"x"})
	if _, err := EquiJoin(a, b, "missing", "k"); err == nil {
		t.Fatal("want error for missing left key")
	}
	if _, err := EquiJoin(a, b, "k", "missing"); err == nil {
		t.Fatal("want error for missing right key")
	}
	if _, err := EquiJoin(a, b, "k", "k"); err == nil {
		t.Fatal("want error for string join key")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := New("t")
	tb.AddFloatColumn("x", []float64{1.5, -2.25, 3})
	tb.AddIntColumn("k", []int64{1, 2, 3})
	tb.AddStringColumn("s", []string{"a", "b,c", "d"})

	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", got.NumRows())
	}
	if got.Column("x").Type != Float64 || got.Column("k").Type != Int64 || got.Column("s").Type != String {
		t.Fatalf("inferred types wrong: %v %v %v",
			got.Column("x").Type, got.Column("k").Type, got.Column("s").Type)
	}
	if got.Column("x").Floats[1] != -2.25 {
		t.Fatalf("x[1] = %v", got.Column("x").Floats[1])
	}
	if got.Column("s").Strings[1] != "b,c" {
		t.Fatalf("s[1] = %q (quoting broken)", got.Column("s").Strings[1])
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	got, err := ReadCSV("t", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 || len(got.Columns) != 2 {
		t.Fatalf("got %d rows, %d cols", got.NumRows(), len(got.Columns))
	}
}

func TestReadCSVBadValue(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("a\n1\nxyz\n")); err == nil {
		t.Fatal("want parse error when int column sees non-int")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	tb := New("t")
	tb.AddFloatColumn("x", []float64{1, 2})
	path := t.TempDir() + "/t.csv"
	if err := tb.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV("t", path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	if _, err := LoadCSV("t", path+".nope"); err == nil {
		t.Fatal("want error for missing file")
	}
}

// Property: CSV round-trip preserves float columns bit-for-bit (modulo
// formatting precision %g, so compare with tolerance relative to magnitude).
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%64) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 1e3
		}
		tb := New("t")
		tb.AddFloatColumn("x", xs)
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV("t", &buf)
		if err != nil {
			return false
		}
		ys := got.Column("x").Floats
		if len(ys) != m {
			return false
		}
		for i := range xs {
			if math.Abs(xs[i]-ys[i]) > 1e-9*math.Max(1, math.Abs(xs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SelectRows(perm) then SelectRows(inverse perm) is identity.
func TestSelectRowsPermutationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		m := int(n%32) + 2
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		tb := New("t")
		tb.AddFloatColumn("x", xs)
		perm := rng.Perm(m)
		inv := make([]int, m)
		for i, p := range perm {
			inv[p] = i
		}
		back := tb.SelectRows(perm).SelectRows(inv)
		for i := range xs {
			if back.Column("x").Floats[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRow(t *testing.T) {
	tb := New("t")
	tb.AddFloatColumn("f", []float64{1.5})
	tb.AddIntColumn("i", []int64{10})
	tb.AddStringColumn("s", []string{"a"})

	if err := tb.AppendRow(2.5, int64(20), "b"); err != nil {
		t.Fatal(err)
	}
	// JSON-style values: every number arrives as float64.
	if err := tb.AppendRow(3.0, 30.0, "c"); err != nil {
		t.Fatal(err)
	}
	// Plain ints coerce into both numeric column kinds.
	if err := tb.AppendRow(4, 40, "d"); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 4 {
		t.Fatalf("NumRows = %d, want 4", tb.NumRows())
	}
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tb.Column("i").Ints[2]; got != 30 {
		t.Fatalf("i[2] = %d, want 30", got)
	}
	if got := tb.Column("s").Strings[3]; got != "d" {
		t.Fatalf("s[3] = %q, want d", got)
	}
}

func TestAppendRowRejectsWithoutPartialWrite(t *testing.T) {
	tb := New("t")
	tb.AddFloatColumn("f", []float64{1})
	tb.AddIntColumn("i", []int64{1})

	cases := [][]interface{}{
		{1.0},                // arity
		{1.0, "nope"},        // type mismatch
		{1.0, 2.5},           // fractional value into INT64
		{"nope", int64(2)},   // string into FLOAT64
		{1.0, int64(2), 3.0}, // too many values
	}
	for _, row := range cases {
		if err := tb.AppendRow(row...); err == nil {
			t.Fatalf("AppendRow(%v) succeeded, want error", row)
		}
	}
	// A rejected row must leave every column untouched — no ragged lengths.
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("NumRows = %d after rejected rows, want 1", tb.NumRows())
	}
}

func TestAppendTable(t *testing.T) {
	dst := New("t")
	dst.AddFloatColumn("x", []float64{1})
	dst.AddStringColumn("s", []string{"a"})
	src := New("batch")
	src.AddFloatColumn("x", []float64{2, 3})
	src.AddStringColumn("s", []string{"b", "c"})

	if err := dst.AppendTable(src); err != nil {
		t.Fatal(err)
	}
	if dst.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", dst.NumRows())
	}
	if got := dst.Column("s").Strings[2]; got != "c" {
		t.Fatalf("s[2] = %q, want c", got)
	}

	bad := New("bad")
	bad.AddFloatColumn("x", []float64{9})
	if err := dst.AppendTable(bad); err == nil {
		t.Fatal("want error for column-count mismatch")
	}
	bad2 := New("bad2")
	bad2.AddFloatColumn("x", []float64{9})
	bad2.AddIntColumn("s", []int64{9})
	if err := dst.AppendTable(bad2); err == nil {
		t.Fatal("want error for column-type mismatch")
	}
	if dst.NumRows() != 3 {
		t.Fatalf("NumRows changed by failed AppendTable: %d", dst.NumRows())
	}
}

func TestCloneCopyOnWrite(t *testing.T) {
	orig := New("t")
	orig.AddFloatColumn("x", []float64{1, 2})
	orig.AddStringColumn("s", []string{"a", "b"})

	clone := orig.Clone()
	for i := 0; i < 100; i++ {
		if err := clone.AppendRow(float64(i), "z"); err != nil {
			t.Fatal(err)
		}
	}
	// The original must be completely unaffected, in length and content.
	if orig.NumRows() != 2 {
		t.Fatalf("original NumRows = %d after appending to clone, want 2", orig.NumRows())
	}
	if orig.Column("x").Floats[1] != 2 || orig.Column("s").Strings[0] != "a" {
		t.Fatal("original data changed by appends to clone")
	}
	if clone.NumRows() != 102 {
		t.Fatalf("clone NumRows = %d, want 102", clone.NumRows())
	}
	// Chained clones: appending to a second-generation clone leaves the
	// first generation intact (the engine clones the head on every append).
	clone2 := clone.Clone()
	if err := clone2.AppendRow(9.0, "q"); err != nil {
		t.Fatal(err)
	}
	if clone.NumRows() != 102 {
		t.Fatalf("first clone NumRows = %d after appending to second, want 102", clone.NumRows())
	}
}

// TestPartitionMetadataSurvivesClone: the range-partition layout attached
// when a sharded ensemble is trained must ride along through the engine's
// copy-on-write append snapshots.
func TestPartitionMetadataSurvivesClone(t *testing.T) {
	tb := New("t")
	tb.AddFloatColumn("x", []float64{1, 2, 3})
	var nilPart *Partition
	if nilPart.Shards() != 0 {
		t.Fatal("nil partition must report 0 shards")
	}
	tb.Part = &Partition{Col: "x", Bounds: []float64{1, 2, 3}}
	if tb.Part.Shards() != 2 {
		t.Fatalf("Shards = %d, want 2", tb.Part.Shards())
	}
	clone := tb.Clone()
	if clone.Part == nil || clone.Part.Col != "x" || clone.Part.Shards() != 2 {
		t.Fatalf("clone partition = %+v, want the original layout", clone.Part)
	}
}
