package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV writes the table, with a header row, to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	n := t.NumRows()
	rec := make([]string, len(t.Columns))
	for i := 0; i < n; i++ {
		for j, c := range t.Columns {
			rec[j] = c.Str(i)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to the named file.
func (t *Table) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Sync()
}

// ReadCSV reads a table with a header row from r. Column types are inferred
// from the first data row: values parseable as int64 become Int64 columns,
// values parseable as float64 become Float64, anything else String.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv header: %w", err)
	}
	hdr := make([]string, len(header))
	copy(hdr, header)

	t := New(name)
	first, err := cr.Read()
	if err == io.EOF {
		for _, h := range hdr {
			t.AddColumn(h, Float64)
		}
		return t, nil
	}
	if err != nil {
		return nil, fmt.Errorf("read csv: %w", err)
	}
	for j, h := range hdr {
		t.AddColumn(h, inferType(first[j]))
	}
	appendRec := func(rec []string) error {
		if len(rec) != len(t.Columns) {
			return fmt.Errorf("csv row has %d fields, want %d", len(rec), len(t.Columns))
		}
		for j, c := range t.Columns {
			switch c.Type {
			case Int64:
				v, err := strconv.ParseInt(rec[j], 10, 64)
				if err != nil {
					return fmt.Errorf("column %s: %w", c.Name, err)
				}
				c.Ints = append(c.Ints, v)
			case Float64:
				v, err := strconv.ParseFloat(rec[j], 64)
				if err != nil {
					return fmt.Errorf("column %s: %w", c.Name, err)
				}
				c.Floats = append(c.Floats, v)
			case String:
				c.Strings = append(c.Strings, rec[j])
			}
		}
		return nil
	}
	if err := appendRec(first); err != nil {
		return nil, err
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("read csv: %w", err)
		}
		if err := appendRec(rec); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// LoadCSV reads a table from the named file; the table name is the file path
// base without extension unless name is non-empty.
func LoadCSV(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, f)
}

func inferType(s string) ColType {
	if _, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int64
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return Float64
	}
	return String
}
