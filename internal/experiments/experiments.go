// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and appendices) on the synthetic substitute datasets. Each
// experiment returns a FigureResult holding the same series the paper
// plots, so shapes and ratios can be compared directly; absolute numbers
// differ because the substrate is a single-process simulator rather than a
// 12-core Spark cluster (see DESIGN.md §2 and EXPERIMENTS.md).
//
// The registry maps experiment IDs (the paper's figure numbers) to
// runners; cmd/dbest-bench and the root bench_test.go both drive it.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Config sizes an experiment run. The zero value is usable: Normalize fills
// laptop-scale defaults that finish each figure in seconds.
type Config struct {
	Rows        int     // physical fact-table rows
	Scale       float64 // logical rows per physical row
	SampleSizes []int   // DBEst/baseline sample sizes to sweep
	PerAF       int     // queries per aggregate function
	Seed        int64
	Workers     int // parallel evaluation workers (0 = GOMAXPROCS)
}

// Normalize fills defaults in place and returns the config.
func (c Config) Normalize() Config {
	if c.Rows <= 0 {
		c.Rows = 400_000
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if len(c.SampleSizes) == 0 {
		c.SampleSizes = []int{10_000, 100_000}
	}
	if c.PerAF <= 0 {
		c.PerAF = 20
	}
	return c
}

// Series is one plottable line/bar group: a name and y-values aligned with
// the figure's x-axis labels.
type Series struct {
	Name   string
	Values []float64
}

// FigureResult is the regenerated content of one paper figure.
type FigureResult struct {
	ID     string // e.g. "fig2"
	Title  string // the paper's caption
	XLabel string
	Labels []string // x-axis tick labels
	YLabel string
	Series []Series
	Notes  []string
	// Elapsed is the wall time of the whole experiment.
	Elapsed time.Duration
}

// AddSeries appends a named series.
func (fr *FigureResult) AddSeries(name string, values ...float64) {
	fr.Series = append(fr.Series, Series{Name: name, Values: values})
}

// Note appends a free-text observation (lessons-learned style).
func (fr *FigureResult) Note(format string, args ...interface{}) {
	fr.Notes = append(fr.Notes, fmt.Sprintf(format, args...))
}

// Print renders the figure as an aligned text table.
func (fr *FigureResult) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", fr.ID, fr.Title)
	if fr.XLabel != "" || fr.YLabel != "" {
		fmt.Fprintf(w, "   (%s vs %s)\n", fr.YLabel, fr.XLabel)
	}
	// Header row.
	fmt.Fprintf(w, "%-28s", "")
	for _, l := range fr.Labels {
		fmt.Fprintf(w, "%14s", l)
	}
	fmt.Fprintln(w)
	for _, s := range fr.Series {
		fmt.Fprintf(w, "%-28s", s.Name)
		for _, v := range s.Values {
			fmt.Fprintf(w, "%14.5g", v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range fr.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintf(w, "   elapsed: %v\n\n", fr.Elapsed.Round(time.Millisecond))
}

// Runner executes one experiment.
type Runner func(cfg Config) (*FigureResult, error)

// registry maps experiment IDs to runners; populated by init functions in
// the per-experiment files.
var registry = map[string]Runner{}

// descriptions holds one-line summaries for listing.
var descriptions = map[string]string{}

func register(id, desc string, r Runner) {
	registry[id] = r
	descriptions[id] = desc
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of an experiment.
func Describe(id string) string { return descriptions[id] }

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (*FigureResult, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	t0 := time.Now()
	fr, err := r(cfg.Normalize())
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	fr.Elapsed = time.Since(t0)
	return fr, nil
}

// pct renders a fraction as a percentage value for figure series.
func pct(x float64) float64 { return 100 * x }

// secs renders a duration in seconds for figure series.
func secs(d time.Duration) float64 { return d.Seconds() }

// mb renders bytes as megabytes for figure series.
func mb(b int) float64 { return float64(b) / (1 << 20) }
