package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"dbest/internal/baseline"
	"dbest/internal/catalog"
	"dbest/internal/core"
	"dbest/internal/datagen"
	"dbest/internal/exact"
	"dbest/internal/table"
	"dbest/internal/workload"
)

func init() {
	register("fig29", "complex TPC-DS queries 5/77/7: multi-way joins, many groups (Appendix D)", fig29)
	register("bundles", "model bundles: serialize/load a ~500-group model set (§2.3 Limitations)", bundles)
}

// complexCase is one of the Appendix D stress queries, reduced to its
// aggregate-over-join core (the paper flattens/materializes the nested
// parts for DBEst too).
type complexCase struct {
	name    string
	tb      *table.Table // materialized join result
	groupBy string
	x, y    string
	// forceRaw trains on the complete table with tiny-group raw retention
	// (query 7: "DBEst is trained on the complete join-table instead of on
	// samples" because groups have < 20 rows).
	forceRaw bool
}

func buildComplexCases(cfg Config) ([]complexCase, error) {
	sales := storeSales(cfg.Rows, cfg.Seed)
	stores := cached(fmt.Sprintf("store/%d", cfg.Seed), func() *table.Table {
		return datagen.Store(57, cfg.Seed)
	})
	joined, err := table.EquiJoin(sales, stores, "ss_store_sk", "s_store_sk")
	if err != nil {
		return nil, err
	}
	joined.Name = "q5_join"

	// Query 7 analogue: a join whose grouping attribute has thousands of
	// groups with < 20 rows each (here: items), an extreme stress test.
	q7 := cached(fmt.Sprintf("q7/%d/%d", cfg.Rows, cfg.Seed), func() *table.Table {
		rng := rand.New(rand.NewSource(cfg.Seed + 77))
		groups := cfg.Rows / 60
		if groups < 200 {
			groups = 200
		}
		n := groups * 15 // <20 rows per group, like the paper's query 7
		item := make([]int64, n)
		date := make([]float64, n)
		price := make([]float64, n)
		for i := 0; i < n; i++ {
			item[i] = int64(i % groups)
			date[i] = rng.Float64() * 1800
			price[i] = 20 + 0.01*float64(item[i]%97) + rng.NormFloat64()*2
		}
		tb := table.New("q7_join")
		tb.AddIntColumn("i_item_sk", item)
		tb.AddFloatColumn("d_date_sk", date)
		tb.AddFloatColumn("ss_sales_price", price)
		return tb
	})

	return []complexCase{
		{name: "Query 5", tb: joined, groupBy: "ss_store_sk",
			x: "ss_sold_date_sk", y: "ss_net_profit"},
		{name: "Query 77", tb: joined, groupBy: "ss_store_sk",
			x: "ss_sold_date_sk", y: "ss_sales_price"},
		{name: "Query 7", tb: q7, groupBy: "i_item_sk",
			x: "d_date_sk", y: "ss_sales_price", forceRaw: true},
	}, nil
}

func fig29(cfg Config) (*FigureResult, error) {
	cases, err := buildComplexCases(cfg)
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig29", Title: "Performance for TPC-DS Queries 5, 77, 7 (error %, time s)",
		XLabel: "query", YLabel: "relative error (%) / response time (s)",
	}
	for _, c := range cases {
		fr.Labels = append(fr.Labels, c.name)
	}
	for _, ss := range cfg.SampleSizes {
		var dbErr, dbTime, vErr, vTime []float64
		for _, c := range cases {
			sampleSize := ss
			minGroup := 30
			if c.forceRaw {
				// Query 7: complete-table training, raw tiny groups.
				sampleSize = c.tb.NumRows()
				minGroup = 30
			}
			ms, err := core.Train(c.tb, []string{c.x}, c.y, &core.TrainConfig{
				SampleSize: sampleSize, Seed: cfg.Seed, GroupBy: c.groupBy,
				MinGroupModel: minGroup, Workers: cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			qs, err := workload.Generate(c.tb, workload.Spec{
				XCol: c.x, YCol: c.y, AFs: csaOrder,
				RangeFrac: 0.3, PerAF: 4, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			// Reuse the GROUP BY evaluation loop with this case's grouping.
			db := newBatch()
			vb := newBatch()
			v, err := baseline.NewVerdictSim(c.tb, ss*4, 1, cfg.Seed)
			if err != nil {
				return nil, err
			}
			for _, q := range qs {
				want, err := exact.Query(c.tb, q.Request(c.groupBy))
				if err != nil || len(want.Groups) == 0 {
					continue
				}
				t0 := time.Now()
				ans, err := ms.EvaluateUni(q.AF, q.Lb, q.Ub, false,
					&core.EvalOptions{Workers: cfg.Workers, P: q.P})
				d := time.Since(t0)
				if err == nil {
					got := make(map[int64]float64, len(ans.Groups))
					for _, ga := range ans.Groups {
						got[ga.Group] = ga.Value
					}
					db.add(q.AF, groupMeanErr(want.Groups, got), d)
				}
				t1 := time.Now()
				vres, err := v.Query(q.Request(c.groupBy))
				vd := time.Since(t1)
				if err == nil {
					vb.add(q.AF, groupMeanErr(want.Groups, vres.Groups), vd)
				}
			}
			dbErr = append(dbErr, pct(db.overallErr()))
			dbTime = append(dbTime, db.overallTime())
			vErr = append(vErr, pct(vb.overallErr()))
			vTime = append(vTime, vb.overallTime())
		}
		fr.AddSeries("DBEst_"+sampleLabel(ss)+" err%", dbErr...)
		fr.AddSeries("VerdictSim_"+sampleLabel(ss)+" err%", vErr...)
		fr.AddSeries("DBEst_"+sampleLabel(ss)+" time(s)", dbTime...)
		fr.AddSeries("VerdictSim_"+sampleLabel(ss)+" time(s)", vTime...)
	}
	fr.Note("paper: Q77 7.56%% vs 11.24%% at 10k; Q7 (25k tiny groups) <6%% overall, response dominated by group fan-out")
	return fr, nil
}

// groupMeanErr averages per-group relative error, counting missing groups
// as error 1.
func groupMeanErr(want map[int64]float64, got map[int64]float64) float64 {
	if len(want) == 0 {
		return 0
	}
	var s float64
	for g, w := range want {
		if v, ok := got[g]; ok {
			s += workload.RelErr(v, w)
		} else {
			s++
		}
	}
	return s / float64(len(want))
}

// bundles — §2.3 Limitations: serialize a many-group model set to disk,
// read it back, and answer a GROUP BY query from the loaded bundle,
// measuring bytes and I/O+deserialization time.
func bundles(cfg Config) (*FigureResult, error) {
	stores := 500
	rows := stores * 400
	tb := cached(fmt.Sprintf("bundle/%d/%d", rows, cfg.Seed), func() *table.Table {
		return datagen.StoreSales(&datagen.StoreSalesOptions{Rows: rows, Stores: stores, Seed: cfg.Seed})
	})
	ms, err := core.Train(tb, []string{"ss_wholesale_cost"}, "ss_list_price", &core.TrainConfig{
		SampleSize: 200, Seed: cfg.Seed, GroupBy: "ss_store_sk",
		MinGroupModel: 30, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "dbest-bundle")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bundle.gob")
	wst, err := catalog.WriteBundle(path, ms)
	if err != nil {
		return nil, err
	}
	loaded, rst, err := catalog.ReadBundle(path)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	ans, err := loaded.EvaluateUni(exact.Sum, 10, 40, false, &core.EvalOptions{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	queryTime := time.Since(t0)

	fr := &FigureResult{
		ID: "bundles", Title: "Model Bundles for Large Group Cardinalities",
		XLabel: "metric", YLabel: "value",
		Labels: []string{"models", "MB", "write_ms", "read_ms", "query_ms", "groups_answered"},
	}
	fr.AddSeries("bundle",
		float64(wst.NumModels), mb(wst.Bytes),
		float64(wst.WriteTime.Milliseconds()), float64(rst.ReadTime.Milliseconds()),
		float64(queryTime.Milliseconds()), float64(len(ans.Groups)))
	fr.Note("paper: 500-group bundle ≈ 97MB, SSD load+deserialize < 132ms, total GROUP BY answer < 800ms")
	return fr, nil
}
