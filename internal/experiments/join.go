package experiments

import (
	"fmt"
	"time"

	"dbest/internal/baseline"
	"dbest/internal/core"
	"dbest/internal/datagen"
	"dbest/internal/table"
	"dbest/internal/workload"
)

func init() {
	register("fig20", "join accuracy: store_sales ⨝ store (§4.8)", fig20)
	register("fig21", "join response time and space (§4.8)", fig21)
	register("fig27", "skewed-join accuracy, Zipf(s=2) join attribute (Appendix C)", fig27)
	register("fig28", "skewed-join response time (Appendix C)", fig28)
}

// joinSetup materializes the §4.8 experiment: store_sales joined to store
// on ss_store_sk; aggregates over ss_net_profit / ss_wholesale_cost with
// range predicates on s_number_of_employees.
type joinSetup struct {
	sales, stores, joined *table.Table
	queries               []workload.Query
}

func setupJoin(cfg Config) (*joinSetup, error) {
	sales := storeSales(cfg.Rows, cfg.Seed)
	stores := cached(fmt.Sprintf("store/%d", cfg.Seed), func() *table.Table {
		return datagen.Store(57, cfg.Seed)
	})
	joined, err := table.EquiJoin(sales, stores, "ss_store_sk", "s_store_sk")
	if err != nil {
		return nil, err
	}
	joined.Name = "store_sales_join_store"
	var qs []workload.Query
	for _, ycol := range []string{"ss_net_profit", "ss_wholesale_cost"} {
		q, err := workload.Generate(joined, workload.Spec{
			XCol: "s_number_of_employees", YCol: ycol, AFs: csaOrder,
			RangeFrac: 0.3, PerAF: cfg.PerAF / 2, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		qs = append(qs, q...)
	}
	return &joinSetup{sales: sales, stores: stores, joined: joined, queries: qs}, nil
}

// trainJoinModels trains DBEst models over the precomputed join (approach 1
// of §2.2) for both aggregate columns.
func trainJoinModels(js *joinSetup, sampleSize int, cfg Config) (map[string]*core.ModelSet, time.Duration, error) {
	models := make(map[string]*core.ModelSet, 2)
	var build time.Duration
	for _, ycol := range []string{"ss_net_profit", "ss_wholesale_cost"} {
		ms, err := core.Train(js.joined, []string{"s_number_of_employees"}, ycol, &core.TrainConfig{
			SampleSize: sampleSize, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, 0, err
		}
		build += ms.Stats.SampleTime + ms.Stats.TrainTime
		models[ycol] = ms
	}
	return models, build, nil
}

func joinModelAnswerer(models map[string]*core.ModelSet) answerer {
	return func(q workload.Query) (float64, time.Duration, error) {
		ms := models[q.YCol]
		if ms == nil {
			return 0, 0, fmt.Errorf("no join model for %s", q.YCol)
		}
		t0 := time.Now()
		ans, err := ms.EvaluateUni(q.AF, q.Lb, q.Ub, q.XCol == q.YCol, nil)
		d := time.Since(t0)
		if err != nil {
			return 0, d, err
		}
		return ans.Value, d, nil
	}
}

// verdictJoinAnswerer joins the fact sample with the dimension table at
// query time, the cost VerdictDB pays per join query.
func verdictJoinAnswerer(v *baseline.VerdictSim, dim *table.Table) answerer {
	return func(q workload.Query) (float64, time.Duration, error) {
		t0 := time.Now()
		r, err := v.JoinQuery(dim, "ss_store_sk", "s_store_sk", q.Request(""))
		d := time.Since(t0)
		if err != nil {
			return 0, d, err
		}
		return r.Value, d, nil
	}
}

// joinRun evaluates DBEst (at each sample size) and VerdictSim (at one
// large sample, 10m in the paper; here a quarter of the fact table).
type joinRun struct {
	labels []string
	sys    []sysBatch
	space  []float64 // MB per system, aligned with sys
	build  []float64 // state-building seconds per system
}

func runJoin(cfg Config) (*joinRun, error) {
	js, err := setupJoin(cfg)
	if err != nil {
		return nil, err
	}
	out := &joinRun{}
	for _, ss := range cfg.SampleSizes {
		models, build, err := trainJoinModels(js, ss, cfg)
		if err != nil {
			return nil, err
		}
		b, err := evalBatch(js.joined, js.queries, joinModelAnswerer(models))
		if err != nil {
			return nil, err
		}
		out.sys = append(out.sys, sysBatch{"DBEst_" + sampleLabel(ss), b})
		bytes := 0
		for _, ms := range models {
			bytes += ms.Stats.ModelBytes
		}
		out.space = append(out.space, mb(bytes))
		out.build = append(out.build, secs(build))
	}
	// VerdictSim: large hashed-style fact sample (the paper's default is
	// 10m rows on a 2.6B-row table; proportionally, a quarter here).
	vSize := cfg.Rows / 4
	v, err := baseline.NewVerdictSim(js.sales, vSize, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	vb, err := evalBatch(js.joined, js.queries, verdictJoinAnswerer(v, js.stores))
	if err != nil {
		return nil, err
	}
	out.sys = append(out.sys, sysBatch{"VerdictSim_" + sampleLabel(vSize), vb})
	out.space = append(out.space, mb(v.Stats.Bytes))
	out.build = append(out.build, secs(v.Stats.SampleTime))
	out.labels = afLabels(csaOrder, true)
	return out, nil
}

func fig20(cfg Config) (*FigureResult, error) {
	jr, err := runJoin(cfg)
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig20", Title: "Join Accuracy Comparison (store_sales ⨝ store)",
		XLabel: "aggregate function", YLabel: "relative error (%)",
		Labels: jr.labels,
	}
	for _, s := range jr.sys {
		vals := make([]float64, 0, 4)
		for _, af := range csaOrder {
			vals = append(vals, pct(s.b.meanErr(af)))
		}
		vals = append(vals, pct(s.b.overallErr()))
		fr.AddSeries(s.name, vals...)
	}
	fr.Note("paper: DBEst 4.48%% (10k) to 2.24%% (1m); VerdictDB 1.66%% with 10m samples")
	return fr, nil
}

func fig21(cfg Config) (*FigureResult, error) {
	jr, err := runJoin(cfg)
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig21", Title: "Join Performance Comparison (time, space)",
		XLabel: "system", YLabel: "seconds / MB",
	}
	var times []float64
	for _, s := range jr.sys {
		fr.Labels = append(fr.Labels, s.name)
		times = append(times, s.b.overallTime())
	}
	fr.AddSeries("response time (s)", times...)
	fr.AddSeries("space (MB)", jr.space...)
	fr.AddSeries("state build (s)", jr.build...)
	fr.Note("paper: DBEst 0.028s/0.37MB (10k) vs VerdictDB 6.7s/>270MB — 8-200x time, 100-250x space")
	return fr, nil
}

// skewedJoin reproduces Appendix C: tables A(x, y) and B(z, y) with a
// Zipf(s=2) join attribute over a skewed region and a uniform non-skewed
// region. DBEst trains on the precomputed join; MonetDB-style baselines
// sample B and join with A per query.
type skewedJoin struct {
	a, b, joined  *table.Table
	skewQs, uniQs []workload.Query
}

func setupSkewedJoin(cfg Config) (*skewedJoin, error) {
	const maxKey = 1000
	bRows := cfg.Rows
	a, b := datagen.ZipfJoinPair(2*maxKey, bRows, 2, maxKey, cfg.Seed)
	joined, err := table.EquiJoin(b, a, "y", "y")
	if err != nil {
		return nil, err
	}
	joined.Name = "A_join_B"
	// Queries: aggregates over z with range predicates on the join key y —
	// 10 in the skewed region (keys 1..maxKey), 10 in the non-skewed.
	mk := func(lo, hi float64, seed int64) []workload.Query {
		var qs []workload.Query
		for i := 0; i < 10; i++ {
			span := (hi - lo) / 10
			qs = append(qs, workload.Query{
				AF: csaOrder[i%3], XCol: "y", YCol: "z",
				Lb: lo + float64(i)*span*0.5, Ub: lo + float64(i)*span*0.5 + span,
			})
		}
		return qs
	}
	return &skewedJoin{
		a: a, b: b, joined: joined,
		skewQs: mk(1, maxKey, cfg.Seed),
		uniQs:  mk(maxKey+1, 2*maxKey, cfg.Seed),
	}, nil
}

func runSkewedJoin(cfg Config) (map[string][]sysBatch, *skewedJoin, error) {
	sj, err := setupSkewedJoin(cfg)
	if err != nil {
		return nil, nil, err
	}
	regions := map[string][]workload.Query{"skewed": sj.skewQs, "nonskewed": sj.uniQs}
	out := make(map[string][]sysBatch, 2)
	for region, qs := range regions {
		var sys []sysBatch
		for _, ss := range cfg.SampleSizes {
			// The join attribute is an ordinal integer key with extreme
			// Zipf skew: a data-driven bandwidth oversmooths the rank-1
			// spike, so use the discrete scale (a fifth of the key spacing).
			ms, err := core.Train(sj.joined, []string{"y"}, "z", &core.TrainConfig{
				SampleSize: ss, Seed: cfg.Seed, Workers: cfg.Workers, Bandwidth: 0.2,
			})
			if err != nil {
				return nil, nil, err
			}
			b, err := evalBatch(sj.joined, qs, modelAnswerer(ms, 1))
			if err != nil {
				// Tiny selectivity in the tail of the Zipf region can leave
				// a sample-free range; report as an empty batch.
				return nil, nil, err
			}
			sys = append(sys, sysBatch{"DBEst_" + sampleLabel(ss), b})

			// MonetDB-style: uniform sample of B joined with A per query.
			se, err := baseline.NewSampleExact(sj.b, ss, 1, cfg.Seed)
			if err != nil {
				return nil, nil, err
			}
			mb, err := evalBatch(sj.joined, qs, func(q workload.Query) (float64, time.Duration, error) {
				t0 := time.Now()
				r, err := se.JoinQuery(sj.a, "y", "y", q.Request(""))
				d := time.Since(t0)
				if err != nil {
					return 0, d, err
				}
				return r.Value, d, nil
			})
			if err != nil {
				return nil, nil, err
			}
			sys = append(sys, sysBatch{"MonetDB_" + sampleLabel(ss), mb})
		}
		out[region] = sys
	}
	return out, sj, nil
}

func fig27(cfg Config) (*FigureResult, error) {
	byRegion, _, err := runSkewedJoin(cfg)
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig27", Title: "Accuracy Comparison for Join Queries (Zipf join attribute)",
		XLabel: "aggregate function", YLabel: "relative error (%)",
		Labels: afLabels(csaOrder, true),
	}
	for _, region := range []string{"skewed", "nonskewed"} {
		for _, s := range byRegion[region] {
			vals := make([]float64, 0, 4)
			for _, af := range csaOrder {
				vals = append(vals, pct(s.b.meanErr(af)))
			}
			vals = append(vals, pct(s.b.overallErr()))
			fr.AddSeries(region+"/"+s.name, vals...)
		}
	}
	fr.Note("paper: MonetDB error unacceptably high in the skewed region (25%%+ for COUNT/SUM at 1m); DBEst 1.74-3.51%% everywhere")
	return fr, nil
}

func fig28(cfg Config) (*FigureResult, error) {
	byRegion, _, err := runSkewedJoin(cfg)
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig28", Title: "Query Response Time Comparison (skewed join)",
		XLabel: "system", YLabel: "response time (ms)",
	}
	var vals []float64
	for _, s := range byRegion["skewed"] {
		fr.Labels = append(fr.Labels, s.name)
		vals = append(vals, s.b.overallTime()*1000)
	}
	fr.AddSeries("mean time (ms)", vals...)
	fr.Note("paper: MonetDB crunches samples faster (0.74ms at 10k) than DBEst (17.57ms) — C columnar scan vs model integration — but with far worse skewed-region error")
	return fr, nil
}
