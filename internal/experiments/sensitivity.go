package experiments

import (
	"fmt"

	"dbest/internal/baseline"
	"dbest/internal/core"
	"dbest/internal/workload"
)

// The sensitivity analysis of §4.2 uses the TPC-DS column pair
// [ss_list_price, ss_wholesale_cost]: a range predicate on the list price,
// aggregates over the wholesale cost.
const (
	sensX = "ss_list_price"
	sensY = "ss_wholesale_cost"
)

func init() {
	register("fig2", "influence of sample size on relative error (§4.2.1)", fig2)
	register("fig3", "influence of sample size on response time (§4.2.1)", fig3)
	register("fig4", "DBEst vs VerdictDB training time and space overhead (§4.2.1)", fig4)
	register("fig5", "influence of query range on relative error (§4.2.2)", fig5)
	register("fig6", "influence of query range on response time (§4.2.2)", fig6)
}

// sensBatches trains one model per sample size and evaluates the §4.2 query
// mix (200 random queries per AF in the paper; cfg.PerAF here).
func sensBatches(cfg Config, rangeFrac float64) ([]*batch, error) {
	tb := storeSales(cfg.Rows, cfg.Seed)
	qs, err := workload.Generate(tb, workload.Spec{
		XCol: sensX, YCol: sensY, AFs: afOrder,
		RangeFrac: rangeFrac, PerAF: cfg.PerAF, Seed: cfg.Seed, P: 0.5,
	})
	if err != nil {
		return nil, err
	}
	out := make([]*batch, 0, len(cfg.SampleSizes))
	for _, ss := range cfg.SampleSizes {
		ms, err := core.Train(tb, []string{sensX}, sensY, &core.TrainConfig{
			SampleSize: ss, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		b, err := evalBatch(tb, qs, modelAnswerer(ms, 1))
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

func sampleLabel(ss int) string {
	switch {
	case ss >= 1_000_000:
		return fmt.Sprintf("%dm", ss/1_000_000)
	case ss >= 1_000:
		return fmt.Sprintf("%dk", ss/1_000)
	default:
		return fmt.Sprintf("%d", ss)
	}
}

// fig2 — Fig. 2: relative error per AF, one series per sample size. Query
// ranges fixed at 1% of the domain, as in the paper.
func fig2(cfg Config) (*FigureResult, error) {
	batches, err := sensBatches(cfg, 0.01)
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig2", Title: "Influence of Sample Size on Relative Error",
		XLabel: "aggregate function", YLabel: "relative error (%)",
		Labels: afLabels(afOrder, false),
	}
	for i, ss := range cfg.SampleSizes {
		vals := make([]float64, len(afOrder))
		for j, af := range afOrder {
			vals[j] = pct(batches[i].meanErr(af))
		}
		fr.AddSeries(sampleLabel(ss), vals...)
	}
	fr.Note("paper: relative error < 10%% at 10k samples, < 1%% at 1m samples")
	return fr, nil
}

// fig3 — Fig. 3: response time per AF, one series per sample size.
func fig3(cfg Config) (*FigureResult, error) {
	batches, err := sensBatches(cfg, 0.01)
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig3", Title: "Influence of Sample Size on Response Time",
		XLabel: "aggregate function", YLabel: "query response time (s)",
		Labels: afLabels(afOrder, false),
	}
	for i, ss := range cfg.SampleSizes {
		vals := make([]float64, len(afOrder))
		for j, af := range afOrder {
			vals[j] = batches[i].meanTime(af)
		}
		fr.AddSeries(sampleLabel(ss), vals...)
	}
	fr.Note("paper: ~100ms at 10k samples; PERCENTILE slowest (iterative bisection)")
	return fr, nil
}

// fig4 — Fig. 4: state-building time and space overhead, DBEst (sampling +
// model training, models kept) vs VerdictDB (sampling, samples kept),
// across sample sizes.
func fig4(cfg Config) (*FigureResult, error) {
	tb := storeSales(cfg.Rows, cfg.Seed)
	fr := &FigureResult{
		ID: "fig4", Title: "DBEst vs VerdictDB Overheads (training time, space)",
		XLabel: "sample size", YLabel: "seconds / MB",
	}
	var dbTime, vTime, dbSpace, vSpace []float64
	for _, ss := range cfg.SampleSizes {
		fr.Labels = append(fr.Labels, sampleLabel(ss))
		ms, err := core.Train(tb, []string{sensX}, sensY, &core.TrainConfig{
			SampleSize: ss, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		dbTime = append(dbTime, secs(ms.Stats.SampleTime+ms.Stats.TrainTime))
		dbSpace = append(dbSpace, mb(ms.Stats.ModelBytes))

		v, err := baseline.NewVerdictSim(tb, ss, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		vTime = append(vTime, secs(v.Stats.SampleTime))
		vSpace = append(vSpace, mb(v.Stats.Bytes))
	}
	fr.AddSeries("DBEst train time (s)", dbTime...)
	fr.AddSeries("VerdictSim sample time (s)", vTime...)
	fr.AddSeries("DBEst space (MB)", dbSpace...)
	fr.AddSeries("VerdictSim space (MB)", vSpace...)
	fr.Note("paper: DBEst space 1-2 orders of magnitude below VerdictDB's samples")
	return fr, nil
}

// fig5 — Fig. 5: relative error per AF as the query range grows
// (0.1%, 1%, 10% of the domain), sample size fixed at 100k (the second
// configured size, or the only one).
func fig5(cfg Config) (*FigureResult, error) {
	return rangeSweep(cfg, "fig5", "Influence of Query Range on Relative Error", true)
}

// fig6 — Fig. 6: response time per AF across query ranges.
func fig6(cfg Config) (*FigureResult, error) {
	return rangeSweep(cfg, "fig6", "Influence of Query Range on Response Time", false)
}

func rangeSweep(cfg Config, id, title string, wantErr bool) (*FigureResult, error) {
	tb := storeSales(cfg.Rows, cfg.Seed)
	ss := cfg.SampleSizes[len(cfg.SampleSizes)-1]
	ms, err := core.Train(tb, []string{sensX}, sensY, &core.TrainConfig{
		SampleSize: ss, Seed: cfg.Seed, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: id, Title: title,
		XLabel: "aggregate function", Labels: afLabels(afOrder, false),
	}
	if wantErr {
		fr.YLabel = "relative error (%)"
	} else {
		fr.YLabel = "query response time (s)"
	}
	for _, frac := range []float64{0.001, 0.01, 0.1} {
		qs, err := workload.Generate(tb, workload.Spec{
			XCol: sensX, YCol: sensY, AFs: afOrder,
			RangeFrac: frac, PerAF: cfg.PerAF, Seed: cfg.Seed, P: 0.5,
		})
		if err != nil {
			return nil, err
		}
		b, err := evalBatch(tb, qs, modelAnswerer(ms, 1))
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(afOrder))
		for j, af := range afOrder {
			if wantErr {
				vals[j] = pct(b.meanErr(af))
			} else {
				vals[j] = b.meanTime(af)
			}
		}
		fr.AddSeries(fmt.Sprintf("%g%% query range", frac*100), vals...)
	}
	if wantErr {
		fr.Note("paper: error decreases as ranges grow (more sample support per range)")
	} else {
		fr.Note("paper: times grow with range (longer integration intervals)")
	}
	return fr, nil
}
