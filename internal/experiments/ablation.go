package experiments

import (
	"fmt"

	"dbest/internal/core"
	"dbest/internal/workload"
)

func init() {
	register("ablation", "design-choice ablations: regressor family and KDE grid resolution", ablation)
}

// ablation quantifies the design choices DESIGN.md calls out:
//
//  1. regression family — the paper's learned-selector ensemble vs each
//     constituent alone (GBoost, XGBoost-style, piecewise linear);
//  2. density-estimator grid resolution (binned-KDE bins).
//
// For each variant it reports overall relative error on the §4.2 query
// mix, training time, and model size.
func ablation(cfg Config) (*FigureResult, error) {
	tb := storeSales(cfg.Rows, cfg.Seed)
	ss := cfg.SampleSizes[0]
	qs, err := workload.Generate(tb, workload.Spec{
		XCol: sensX, YCol: sensY, AFs: csaOrder,
		RangeFrac: 0.01, PerAF: cfg.PerAF, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "ablation", Title: "Ablations: regressor family / KDE bins",
		XLabel: "metric", YLabel: "error (%) / seconds / MB",
		Labels: []string{"err%", "train_s", "model_MB"},
	}
	type variant struct {
		name string
		cfg  core.TrainConfig
	}
	variants := []variant{
		{"ensemble(default)", core.TrainConfig{SampleSize: ss, Seed: cfg.Seed}},
		{"gboost-only", core.TrainConfig{SampleSize: ss, Seed: cfg.Seed, Regressor: "gboost"}},
		{"xgboost-only", core.TrainConfig{SampleSize: ss, Seed: cfg.Seed, Regressor: "xgboost"}},
		{"plr-only", core.TrainConfig{SampleSize: ss, Seed: cfg.Seed, Regressor: "plr"}},
		{"kde-bins-128", core.TrainConfig{SampleSize: ss, Seed: cfg.Seed, Bins: 128}},
		{"kde-bins-4096", core.TrainConfig{SampleSize: ss, Seed: cfg.Seed, Bins: 4096}},
	}
	for _, v := range variants {
		v.cfg.Workers = cfg.Workers
		ms, err := core.Train(tb, []string{sensX}, sensY, &v.cfg)
		if err != nil {
			return nil, fmt.Errorf("variant %s: %w", v.name, err)
		}
		b, err := evalBatch(tb, qs, modelAnswerer(ms, 1))
		if err != nil {
			return nil, fmt.Errorf("variant %s: %w", v.name, err)
		}
		fr.AddSeries(v.name,
			pct(b.overallErr()),
			secs(ms.Stats.SampleTime+ms.Stats.TrainTime),
			mb(ms.Stats.ModelBytes))
	}
	fr.Note("ensemble should match or beat its best constituent; PLR is fastest/smallest but weakest on curvature; bins trade model size for density resolution")
	return fr, nil
}
