package experiments

import (
	"fmt"

	"dbest/internal/baseline"
	"dbest/internal/core"
	"dbest/internal/table"
	"dbest/internal/workload"
)

func init() {
	register("fig7", "CCPP relative error, 10k samples: DBEst vs BlinkDB vs VerdictDB (§4.3)", fig7)
	register("fig8", "CCPP relative error, 100k samples (§4.3)", fig8)
	register("fig9", "CCPP response time: DBEst vs VerdictDB (§4.3)", fig9)
	register("fig10", "TPC-DS relative error: DBEst vs VerdictDB (§4.4.1)", fig10)
	register("fig11", "TPC-DS response time: DBEst vs VerdictDB (§4.4.2)", fig11)
	register("fig12", "TPC-DS overheads: DBEst vs VerdictDB (§4.4.3)", fig12)
	register("fig13", "Beijing PM2.5 relative error: DBEst vs VerdictDB (§4.5)", fig13)
	register("fig14", "Beijing PM2.5 response time: DBEst vs VerdictDB (§4.5)", fig14)
	register("fig26", "MonetDB-over-samples vs DBEst on CCPP (Appendix C)", fig26)
}

// columnPairs for each comparison workload, per §4.1: CCPP uses [T, EP],
// [AP, EP], [RH, EP]; Beijing uses [DEWP/PRES/TEMP/IWS → PM25]; the TPC-DS
// multi-column-pair analysis uses pairs from store_sales.
var (
	ccppPairs = [][2]string{{"T", "EP"}, {"AP", "EP"}, {"RH", "EP"}}

	beijingPairs = [][2]string{
		{"DEWP", "PM25"}, {"PRES", "PM25"}, {"TEMP", "PM25"}, {"IWS", "PM25"},
	}

	tpcdsPairs = [][2]string{
		{"ss_list_price", "ss_wholesale_cost"},
		{"ss_wholesale_cost", "ss_list_price"},
		{"ss_sold_date_sk", "ss_sales_price"},
		{"ss_list_price", "ss_net_profit"},
		{"ss_quantity", "ss_ext_discount_amt"},
		{"ss_sales_price", "ss_net_profit"},
	}
)

// compareSystems runs the COUNT/SUM/AVG comparison of §4.3–4.5 for one
// sample size: DBEst models vs sample-based baselines over all column
// pairs, with per-AF ranges drawn at the paper's low selectivities.
type sysBatch struct {
	name string
	b    *batch
}

func compareSystems(tb *table.Table, pairs [][2]string, sampleSize int, cfg Config, withBlink bool, rangeFracs []float64) ([]sysBatch, error) {
	dbest := newBatch()
	verdict := newBatch()
	blink := newBatch()
	for _, pair := range pairs {
		ms, err := core.Train(tb, []string{pair[0]}, pair[1], &core.TrainConfig{
			SampleSize: sampleSize, Seed: cfg.Seed, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		v, err := baseline.NewVerdictSim(tb, sampleSize, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var bl *baseline.BlinkSim
		if withBlink {
			// BlinkDB stratifies on a coarsened version of the predicate
			// attribute; emulate with a quantile-bucket stratum column.
			strat, err := stratumColumn(tb, pair[0], 16)
			if err != nil {
				return nil, err
			}
			bl, err = baseline.NewBlinkSim(strat, "stratum", sampleSize, 16, 1, cfg.Seed)
			if err != nil {
				return nil, err
			}
		}
		for _, frac := range rangeFracs {
			qs, err := workload.Generate(tb, workload.Spec{
				XCol: pair[0], YCol: pair[1], AFs: csaOrder,
				RangeFrac: frac, PerAF: cfg.PerAF, Seed: cfg.Seed + int64(frac*1e4),
			})
			if err != nil {
				return nil, err
			}
			mb, err := evalBatch(tb, qs, modelAnswerer(ms, 1))
			if err != nil {
				return nil, err
			}
			merge(dbest, mb)
			vb, err := evalBatch(tb, qs, requestAnswerer(v.Query))
			if err != nil {
				return nil, err
			}
			merge(verdict, vb)
			if bl != nil {
				bb, err := evalBatch(tb, qs, requestAnswerer(bl.Query))
				if err != nil {
					return nil, err
				}
				merge(blink, bb)
			}
		}
	}
	out := []sysBatch{{"DBEst", dbest}}
	if withBlink {
		out = append(out, sysBatch{"BlinkSim", blink})
	}
	out = append(out, sysBatch{"VerdictSim", verdict})
	return out, nil
}

// stratumColumn clones tb with an added Int64 "stratum" column bucketing
// col into q quantile buckets.
func stratumColumn(tb *table.Table, col string, q int) (*table.Table, error) {
	xs, err := tb.Floats(col)
	if err != nil {
		return nil, err
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	strata := make([]int64, len(xs))
	if hi > lo {
		for i, v := range xs {
			s := int64((v - lo) / (hi - lo) * float64(q))
			if s >= int64(q) {
				s = int64(q) - 1
			}
			strata[i] = s
		}
	}
	// Rebuild through the API so the name index is consistent; column data
	// slices are shared, not copied.
	built := table.New(tb.Name)
	for _, c := range tb.Columns {
		switch c.Type {
		case table.Float64:
			built.AddFloatColumn(c.Name, c.Floats)
		case table.Int64:
			built.AddIntColumn(c.Name, c.Ints)
		case table.String:
			built.AddStringColumn(c.Name, c.Strings)
		}
	}
	built.AddIntColumn("stratum", strata)
	return built, nil
}

func merge(dst, src *batch) {
	for af, es := range src.errs {
		dst.errs[af] = append(dst.errs[af], es...)
	}
	for af, d := range src.times {
		dst.times[af] += d
	}
	for af, n := range src.n {
		dst.n[af] += n
	}
}

// errorFigure renders per-AF mean relative error (+OVERALL) per system.
func errorFigure(id, title string, systems []sysBatch) *FigureResult {
	fr := &FigureResult{
		ID: id, Title: title,
		XLabel: "aggregate function", YLabel: "relative error (%)",
		Labels: afLabels(csaOrder, true),
	}
	for _, s := range systems {
		vals := make([]float64, 0, len(csaOrder)+1)
		for _, af := range csaOrder {
			vals = append(vals, pct(s.b.meanErr(af)))
		}
		vals = append(vals, pct(s.b.overallErr()))
		fr.AddSeries(s.name, vals...)
	}
	return fr
}

// timeFigure renders per-AF mean response time (+OVERALL) per system.
func timeFigure(id, title string, systems []sysBatch) *FigureResult {
	fr := &FigureResult{
		ID: id, Title: title,
		XLabel: "aggregate function", YLabel: "response time (s)",
		Labels: afLabels(csaOrder, true),
	}
	for _, s := range systems {
		vals := make([]float64, 0, len(csaOrder)+1)
		for _, af := range csaOrder {
			vals = append(vals, s.b.meanTime(af))
		}
		vals = append(vals, s.b.overallTime())
		fr.AddSeries(s.name, vals...)
	}
	return fr
}

// lowSelectivity matches §4.3: "stress-testing with low-selectivity query
// ranges (0.1%, 0.5% to 1%)".
var lowSelectivity = []float64{0.001, 0.005, 0.01}

func fig7(cfg Config) (*FigureResult, error) {
	tb := ccpp(cfg.Rows, cfg.Seed)
	sys, err := compareSystems(tb, ccppPairs, cfg.SampleSizes[0], cfg, true, lowSelectivity)
	if err != nil {
		return nil, err
	}
	fr := errorFigure("fig7", fmt.Sprintf("Relative Error: CCPP Dataset (%s sample)", sampleLabel(cfg.SampleSizes[0])), sys)
	fr.Note("paper: DBEst overall 3.5%% vs >10%% for the sample-based engines at 10k")
	return fr, nil
}

func fig8(cfg Config) (*FigureResult, error) {
	tb := ccpp(cfg.Rows, cfg.Seed)
	ss := cfg.SampleSizes[len(cfg.SampleSizes)-1]
	sys, err := compareSystems(tb, ccppPairs, ss, cfg, true, lowSelectivity)
	if err != nil {
		return nil, err
	}
	fr := errorFigure("fig8", fmt.Sprintf("Relative Error: CCPP Dataset (%s sample)", sampleLabel(ss)), sys)
	fr.Note("paper: DBEst 1.9%% vs VerdictDB 3.5%% at 100k")
	return fr, nil
}

func fig9(cfg Config) (*FigureResult, error) {
	tb := ccpp(cfg.Rows, cfg.Seed)
	fr := &FigureResult{
		ID: "fig9", Title: "Response Time for CCPP Dataset",
		XLabel: "aggregate function", YLabel: "response time (s)",
		Labels: afLabels(csaOrder, true),
	}
	for _, ss := range cfg.SampleSizes {
		sys, err := compareSystems(tb, ccppPairs, ss, cfg, false, lowSelectivity)
		if err != nil {
			return nil, err
		}
		for _, s := range sys {
			vals := make([]float64, 0, len(csaOrder)+1)
			for _, af := range csaOrder {
				vals = append(vals, s.b.meanTime(af))
			}
			vals = append(vals, s.b.overallTime())
			fr.AddSeries(fmt.Sprintf("%s_%s", s.name, sampleLabel(ss)), vals...)
		}
	}
	fr.Note("paper: DBEst 0.02s (10k) / 0.27s (100k); VerdictDB 0.6-0.9s on 12 cores")
	return fr, nil
}

func tpcdsCompare(cfg Config) (map[int][]sysBatch, error) {
	tb := storeSales(cfg.Rows, cfg.Seed)
	out := make(map[int][]sysBatch, len(cfg.SampleSizes))
	for _, ss := range cfg.SampleSizes {
		sys, err := compareSystems(tb, tpcdsPairs, ss, cfg, false, []float64{0.01, 0.05})
		if err != nil {
			return nil, err
		}
		out[ss] = sys
	}
	return out, nil
}

func fig10(cfg Config) (*FigureResult, error) {
	bySS, err := tpcdsCompare(cfg)
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig10", Title: "Relative Error: DBEst vs VerdictDB (TPC-DS)",
		XLabel: "aggregate function", YLabel: "relative error (%)",
		Labels: afLabels(csaOrder, true),
	}
	for _, ss := range cfg.SampleSizes {
		for _, s := range bySS[ss] {
			vals := make([]float64, 0, 4)
			for _, af := range csaOrder {
				vals = append(vals, pct(s.b.meanErr(af)))
			}
			vals = append(vals, pct(s.b.overallErr()))
			fr.AddSeries(fmt.Sprintf("%s_%s", s.name, sampleLabel(ss)), vals...)
		}
	}
	fr.Note("paper: DBEst 5.26%% vs VerdictDB >10%% overall at 10k; both excellent at 100k")
	return fr, nil
}

func fig11(cfg Config) (*FigureResult, error) {
	bySS, err := tpcdsCompare(cfg)
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig11", Title: "Response Time: DBEst vs VerdictDB (TPC-DS)",
		XLabel: "sample size", YLabel: "response time (s)",
	}
	var dbv, vv []float64
	for _, ss := range cfg.SampleSizes {
		fr.Labels = append(fr.Labels, sampleLabel(ss))
		for _, s := range bySS[ss] {
			switch s.name {
			case "DBEst":
				dbv = append(dbv, s.b.overallTime())
			case "VerdictSim":
				vv = append(vv, s.b.overallTime())
			}
		}
	}
	fr.AddSeries("DBEst", dbv...)
	fr.AddSeries("VerdictSim", vv...)
	fr.Note("paper: 0.02s vs 0.33s at 10k; 0.12s vs >0.40s at 100k")
	return fr, nil
}

func fig12(cfg Config) (*FigureResult, error) {
	tb := storeSales(cfg.Rows, cfg.Seed)
	fr := &FigureResult{
		ID: "fig12", Title: "Overheads: DBEst vs VerdictDB (TPC-DS)",
		XLabel: "sample size", YLabel: "seconds / MB",
	}
	var dbSampleT, dbTrainT, vSampleT, dbSpace, vSpace []float64
	for _, ss := range cfg.SampleSizes {
		fr.Labels = append(fr.Labels, sampleLabel(ss))
		// Average over the column pairs, as the paper reports per column pair.
		var st, tt, sp float64
		for _, pair := range tpcdsPairs {
			ms, err := core.Train(tb, []string{pair[0]}, pair[1], &core.TrainConfig{
				SampleSize: ss, Seed: cfg.Seed, Workers: cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			st += secs(ms.Stats.SampleTime)
			tt += secs(ms.Stats.TrainTime)
			sp += mb(ms.Stats.ModelBytes)
		}
		n := float64(len(tpcdsPairs))
		dbSampleT = append(dbSampleT, st/n)
		dbTrainT = append(dbTrainT, tt/n)
		dbSpace = append(dbSpace, sp/n)
		v, err := baseline.NewVerdictSim(tb, ss, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		vSampleT = append(vSampleT, secs(v.Stats.SampleTime))
		vSpace = append(vSpace, mb(v.Stats.Bytes))
	}
	fr.AddSeries("DBEst sampling (s)", dbSampleT...)
	fr.AddSeries("DBEst training (s)", dbTrainT...)
	fr.AddSeries("VerdictSim sampling (s)", vSampleT...)
	fr.AddSeries("DBEst space (MB)", dbSpace...)
	fr.AddSeries("VerdictSim space (MB)", vSpace...)
	fr.Note("paper: 0.192MB vs 1.7MB at 10k; 1.68MB vs 9.7MB at 100k (5-9x)")
	return fr, nil
}

func beijingCompare(cfg Config) (map[int][]sysBatch, error) {
	tb := beijing(cfg.Rows, cfg.Seed)
	out := make(map[int][]sysBatch, len(cfg.SampleSizes))
	for _, ss := range cfg.SampleSizes {
		sys, err := compareSystems(tb, beijingPairs, ss, cfg, false, []float64{0.01, 0.05, 0.1})
		if err != nil {
			return nil, err
		}
		out[ss] = sys
	}
	return out, nil
}

func fig13(cfg Config) (*FigureResult, error) {
	bySS, err := beijingCompare(cfg)
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig13", Title: "Accuracy: DBEst vs VerdictDB (Beijing PM2.5)",
		XLabel: "aggregate function", YLabel: "relative error (%)",
		Labels: afLabels(csaOrder, true),
	}
	for _, ss := range cfg.SampleSizes {
		for _, s := range bySS[ss] {
			vals := make([]float64, 0, 4)
			for _, af := range csaOrder {
				vals = append(vals, pct(s.b.meanErr(af)))
			}
			vals = append(vals, pct(s.b.overallErr()))
			fr.AddSeries(fmt.Sprintf("%s_%s", s.name, sampleLabel(ss)), vals...)
		}
	}
	fr.Note("paper: 4.72%% vs 9.57%% at 10k; 1.67%% vs 4.41%% at 100k")
	return fr, nil
}

func fig14(cfg Config) (*FigureResult, error) {
	bySS, err := beijingCompare(cfg)
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig14", Title: "Response Time: DBEst vs VerdictDB (Beijing PM2.5)",
		XLabel: "aggregate function", YLabel: "response time (s)",
		Labels: afLabels(csaOrder, true),
	}
	for _, ss := range cfg.SampleSizes {
		for _, s := range bySS[ss] {
			vals := make([]float64, 0, 4)
			for _, af := range csaOrder {
				vals = append(vals, s.b.meanTime(af))
			}
			vals = append(vals, s.b.overallTime())
			fr.AddSeries(fmt.Sprintf("%s_%s", s.name, sampleLabel(ss)), vals...)
		}
	}
	fr.Note("paper: DBEst 0.013s (10k) / 0.23s (100k); VerdictDB 0.38-0.6s")
	return fr, nil
}

// fig26 — Appendix C: DBEst vs an exact engine over uniform samples
// (MonetDB-style) on CCPP.
func fig26(cfg Config) (*FigureResult, error) {
	tb := ccpp(cfg.Rows, cfg.Seed)
	fr := &FigureResult{
		ID: "fig26", Title: "Error vs MonetDB-over-samples: CCPP Workload",
		XLabel: "aggregate function", YLabel: "relative error (%)",
		Labels: afLabels(csaOrder, true),
	}
	for _, ss := range cfg.SampleSizes {
		dbest := newBatch()
		monet := newBatch()
		for _, pair := range ccppPairs {
			ms, err := core.Train(tb, []string{pair[0]}, pair[1], &core.TrainConfig{
				SampleSize: ss, Seed: cfg.Seed, Workers: cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			se, err := baseline.NewSampleExact(tb, ss, 1, cfg.Seed)
			if err != nil {
				return nil, err
			}
			for _, frac := range lowSelectivity {
				qs, err := workload.Generate(tb, workload.Spec{
					XCol: pair[0], YCol: pair[1], AFs: csaOrder,
					RangeFrac: frac, PerAF: cfg.PerAF, Seed: cfg.Seed,
				})
				if err != nil {
					return nil, err
				}
				mbch, err := evalBatch(tb, qs, modelAnswerer(ms, 1))
				if err != nil {
					return nil, err
				}
				merge(dbest, mbch)
				sb, err := evalBatch(tb, qs, requestAnswerer(se.Query))
				if err != nil {
					return nil, err
				}
				merge(monet, sb)
			}
		}
		for _, s := range []sysBatch{{"DBEst", dbest}, {"MonetDB", monet}} {
			vals := make([]float64, 0, 4)
			for _, af := range csaOrder {
				vals = append(vals, pct(s.b.meanErr(af)))
			}
			vals = append(vals, pct(s.b.overallErr()))
			fr.AddSeries(fmt.Sprintf("%s_%s", s.name, sampleLabel(ss)), vals...)
		}
	}
	fr.Note("paper: DBEst beats MonetDB-over-samples even when the latter has 10x samples")
	return fr, nil
}
