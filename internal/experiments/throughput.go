package experiments

import (
	"fmt"
	"runtime"
	"time"

	"dbest/internal/baseline"
	"dbest/internal/core"
	"dbest/internal/parallel"
	"dbest/internal/table"
	"dbest/internal/workload"
)

func init() {
	register("fig19", "throughput with inter-query parallelism, CCPP (§4.7.2)", fig19)
	register("fig23a", "throughput with inter-query parallelism, TPC-DS (Appendix B)", fig23a)
	register("fig23b", "throughput with inter-query parallelism, Beijing PM2.5 (Appendix B)", fig23b)
}

// throughputRun measures total workload completion time as the number of
// worker processes grows from 1 to NumCPU: DBEst runs one single-threaded
// query per worker (inter-query parallelism); VerdictSim-style engines use
// every core for every query, so added workers do not help (§4.7.2).
func throughputRun(id, title string, tb *table.Table, pairs [][2]string, cfg Config) (*FigureResult, error) {
	maxProcs := runtime.GOMAXPROCS(0)
	var workerCounts []int
	for w := 1; w <= maxProcs; w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	if last := workerCounts[len(workerCounts)-1]; last != maxProcs {
		workerCounts = append(workerCounts, maxProcs)
	}
	fr := &FigureResult{
		ID: id, Title: title,
		XLabel: "number of processes", YLabel: "total workload time (s)",
	}
	for _, w := range workerCounts {
		fr.Labels = append(fr.Labels, fmt.Sprintf("%d", w))
	}

	for _, ss := range cfg.SampleSizes {
		// Train one model per pair; generate the pooled workload.
		var models []*core.ModelSet
		var queries []workload.Query
		for _, pair := range pairs {
			ms, err := core.Train(tb, []string{pair[0]}, pair[1], &core.TrainConfig{
				SampleSize: ss, Seed: cfg.Seed, Workers: cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			qs, err := workload.Generate(tb, workload.Spec{
				XCol: pair[0], YCol: pair[1], AFs: csaOrder,
				RangeFrac: 0.05, PerAF: cfg.PerAF, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			for range qs {
				models = append(models, ms)
			}
			queries = append(queries, qs...)
		}
		v, err := baseline.NewVerdictSim(tb, ss, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}

		var dbVals, vVals []float64
		for _, w := range workerCounts {
			// DBEst: w concurrent single-threaded queries.
			t0 := time.Now()
			parallel.ForEach(len(queries), w, func(i int) {
				q := queries[i]
				_, _ = models[i].EvaluateUni(q.AF, q.Lb, q.Ub, false, &core.EvalOptions{Workers: 1, P: q.P})
			})
			dbVals = append(dbVals, time.Since(t0).Seconds())

			// VerdictSim: each query already scans with the full machine
			// (the sample scan is memory-bandwidth-bound); concurrent
			// queries contend, so the workload runs serially.
			t1 := time.Now()
			for _, q := range queries {
				_, _ = v.Query(q.Request(""))
			}
			vVals = append(vVals, time.Since(t1).Seconds())
		}
		fr.AddSeries("DBEst_"+sampleLabel(ss), dbVals...)
		fr.AddSeries("VerdictSim_"+sampleLabel(ss), vVals...)
	}
	fr.Note("paper: DBEst total time drops ~linearly with workers (35.4s → 5.78s on 12 cores); VerdictDB flat")
	return fr, nil
}

func fig19(cfg Config) (*FigureResult, error) {
	return throughputRun("fig19", "Throughput of Parallel Execution (CCPP)",
		ccpp(cfg.Rows, cfg.Seed), ccppPairs, cfg)
}

func fig23a(cfg Config) (*FigureResult, error) {
	return throughputRun("fig23a", "Throughput with Parallel Query Execution (TPC-DS)",
		storeSales(cfg.Rows, cfg.Seed), tpcdsPairs[:3], cfg)
}

func fig23b(cfg Config) (*FigureResult, error) {
	return throughputRun("fig23b", "Throughput with Parallel Query Execution (Beijing PM2.5)",
		beijing(cfg.Rows, cfg.Seed), beijingPairs, cfg)
}
