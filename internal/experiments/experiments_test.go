package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyCfg keeps experiment smoke tests fast: small table, small samples,
// few queries. Full-size runs happen in cmd/dbest-bench and bench_test.go.
var tinyCfg = Config{
	Rows:        30_000,
	SampleSizes: []int{1000, 4000},
	PerAF:       3,
	Seed:        1,
}

func TestRegistryComplete(t *testing.T) {
	// Every figure promised in DESIGN.md §3 must be registered.
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "fig20", "fig21", "fig23a", "fig23b",
		"fig25", "fig26", "fig27", "fig28", "fig29", "bundles", "ablation",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
		if Describe(id) == "" {
			t.Errorf("experiment %s has no description", id)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(have), len(want))
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig999", tinyCfg); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	c := Config{}.Normalize()
	if c.Rows <= 0 || c.Scale != 1 || len(c.SampleSizes) == 0 || c.PerAF <= 0 {
		t.Fatalf("bad defaults: %+v", c)
	}
}

// runAndCheck executes an experiment and validates the result structure.
// The full figure suite takes over a minute; -short skips it so race-enabled
// CI legs stay fast.
func runAndCheck(t *testing.T, id string) *FigureResult {
	t.Helper()
	if testing.Short() {
		t.Skipf("skipping experiment %s in -short mode", id)
	}
	fr, err := Run(id, tinyCfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	if fr.ID != id {
		t.Fatalf("ID = %q", fr.ID)
	}
	if len(fr.Series) == 0 {
		t.Fatalf("%s: no series", id)
	}
	for _, s := range fr.Series {
		if len(s.Values) != len(fr.Labels) {
			t.Fatalf("%s: series %q has %d values for %d labels",
				id, s.Name, len(s.Values), len(fr.Labels))
		}
	}
	var buf bytes.Buffer
	fr.Print(&buf)
	if !strings.Contains(buf.String(), id) {
		t.Fatalf("%s: Print output missing ID", id)
	}
	return fr
}

func TestFig2Fig3(t *testing.T) {
	fr := runAndCheck(t, "fig2")
	// Errors should be percentages in a sane band (< 100%).
	for _, s := range fr.Series {
		for _, v := range s.Values {
			if v < 0 || v > 100 {
				t.Fatalf("fig2 error %v%% out of range", v)
			}
		}
	}
	runAndCheck(t, "fig3")
}

func TestFig4Overheads(t *testing.T) {
	fr := runAndCheck(t, "fig4")
	// DBEst space must be below VerdictSim space at the larger sample size:
	// the central claim of the paper.
	var dbSpace, vSpace []float64
	for _, s := range fr.Series {
		switch s.Name {
		case "DBEst space (MB)":
			dbSpace = s.Values
		case "VerdictSim space (MB)":
			vSpace = s.Values
		}
	}
	last := len(dbSpace) - 1
	if dbSpace[last] >= vSpace[last] {
		t.Fatalf("DBEst space %v MB >= VerdictSim %v MB at largest sample",
			dbSpace[last], vSpace[last])
	}
}

func TestFig5Fig6(t *testing.T) {
	runAndCheck(t, "fig5")
	runAndCheck(t, "fig6")
}

func TestCCPPComparison(t *testing.T) {
	fr := runAndCheck(t, "fig7")
	if len(fr.Series) != 3 {
		t.Fatalf("fig7 should compare 3 systems, got %d", len(fr.Series))
	}
	runAndCheck(t, "fig9")
}

func TestGroupByFigures(t *testing.T) {
	runAndCheck(t, "fig15")
	runAndCheck(t, "fig17")
	runAndCheck(t, "fig18")
}

func TestJoinFigures(t *testing.T) {
	runAndCheck(t, "fig20")
	runAndCheck(t, "fig28")
}

func TestBundles(t *testing.T) {
	fr := runAndCheck(t, "bundles")
	vals := fr.Series[0].Values
	if vals[0] <= 0 {
		t.Fatal("bundle must contain models")
	}
	if vals[5] <= 0 {
		t.Fatal("loaded bundle must answer groups")
	}
}

func TestComplexQueries(t *testing.T) {
	runAndCheck(t, "fig29")
}

func TestRemainingComparisonFigures(t *testing.T) {
	for _, id := range []string{"fig10", "fig11", "fig12", "fig16", "fig21", "fig26"} {
		runAndCheck(t, id)
	}
}

func TestThroughputFigures(t *testing.T) {
	runAndCheck(t, "fig19")
}

func TestAblation(t *testing.T) {
	fr := runAndCheck(t, "ablation")
	if len(fr.Series) != 6 {
		t.Fatalf("variants = %d, want 6", len(fr.Series))
	}
	for _, s := range fr.Series {
		if s.Values[0] < 0 || s.Values[0] > 100 {
			t.Fatalf("%s: error %v%% out of range", s.Name, s.Values[0])
		}
		if s.Values[2] <= 0 {
			t.Fatalf("%s: model size must be positive", s.Name)
		}
	}
}
