package experiments

import (
	"fmt"
	"sync"
	"time"

	"dbest/internal/core"
	"dbest/internal/datagen"
	"dbest/internal/exact"
	"dbest/internal/table"
	"dbest/internal/workload"
)

// afOrder is the x-axis order of the per-AF figures (Figs. 2, 3, 5, 6).
var afOrder = []exact.AggFunc{
	exact.Count, exact.Percentile, exact.Variance,
	exact.StdDev, exact.Sum, exact.Avg,
}

// csaOrder is the COUNT/SUM/AVG(+OVERALL) order of the comparison figures.
var csaOrder = []exact.AggFunc{exact.Count, exact.Sum, exact.Avg}

func afLabels(afs []exact.AggFunc, overall bool) []string {
	out := make([]string, 0, len(afs)+1)
	for _, af := range afs {
		out = append(out, af.String())
	}
	if overall {
		out = append(out, "OVERALL")
	}
	return out
}

// dataset caching: generation is deterministic per (kind, rows, seed), and
// several figures share the same tables.
var (
	dsMu    sync.Mutex
	dsCache = map[string]*table.Table{}
)

func cached(key string, gen func() *table.Table) *table.Table {
	dsMu.Lock()
	defer dsMu.Unlock()
	if tb, ok := dsCache[key]; ok {
		return tb
	}
	tb := gen()
	dsCache[key] = tb
	return tb
}

func storeSales(rows int, seed int64) *table.Table {
	return cached(fmt.Sprintf("ss/%d/%d", rows, seed), func() *table.Table {
		return datagen.StoreSales(&datagen.StoreSalesOptions{Rows: rows, Seed: seed})
	})
}

func ccpp(rows int, seed int64) *table.Table {
	return cached(fmt.Sprintf("ccpp/%d/%d", rows, seed), func() *table.Table {
		base := datagen.CCPP(0, seed)
		if rows <= base.NumRows() {
			return base
		}
		return datagen.ScaleUp(base, rows, 0.005, seed)
	})
}

func beijing(rows int, seed int64) *table.Table {
	return cached(fmt.Sprintf("bj/%d/%d", rows, seed), func() *table.Table {
		base := datagen.Beijing(0, seed)
		if rows <= base.NumRows() {
			return base
		}
		return datagen.ScaleUp(base, rows, 0.005, seed)
	})
}

// batch aggregates per-AF relative errors and response times.
type batch struct {
	errs  map[exact.AggFunc][]float64
	times map[exact.AggFunc]time.Duration
	n     map[exact.AggFunc]int
}

func newBatch() *batch {
	return &batch{
		errs:  make(map[exact.AggFunc][]float64),
		times: make(map[exact.AggFunc]time.Duration),
		n:     make(map[exact.AggFunc]int),
	}
}

func (b *batch) add(af exact.AggFunc, relErr float64, d time.Duration) {
	b.errs[af] = append(b.errs[af], relErr)
	b.times[af] += d
	b.n[af]++
}

// meanErr returns the mean relative error for one AF.
func (b *batch) meanErr(af exact.AggFunc) float64 {
	return workload.Mean(b.errs[af])
}

// overallErr averages across all recorded errors.
func (b *batch) overallErr() float64 {
	var all []float64
	for _, es := range b.errs {
		all = append(all, es...)
	}
	return workload.Mean(all)
}

// meanTime returns the mean per-query response time for one AF, in seconds.
func (b *batch) meanTime(af exact.AggFunc) float64 {
	if b.n[af] == 0 {
		return 0
	}
	return b.times[af].Seconds() / float64(b.n[af])
}

// overallTime averages response time across all queries.
func (b *batch) overallTime() float64 {
	var total time.Duration
	n := 0
	for af, d := range b.times {
		total += d
		n += b.n[af]
	}
	if n == 0 {
		return 0
	}
	return total.Seconds() / float64(n)
}

// totalTime sums all query time (throughput experiments).
func (b *batch) totalTime() time.Duration {
	var total time.Duration
	for _, d := range b.times {
		total += d
	}
	return total
}

// answerer abstracts "a system that answers aggregate requests" so one
// evaluation loop serves DBEst models, baselines and exact engines.
type answerer func(q workload.Query) (float64, time.Duration, error)

// modelAnswerer evaluates queries on a trained model set.
func modelAnswerer(ms *core.ModelSet, workers int) answerer {
	return func(q workload.Query) (float64, time.Duration, error) {
		yIsX := q.YCol == q.XCol
		t0 := time.Now()
		ans, err := ms.EvaluateUni(q.AF, q.Lb, q.Ub, yIsX,
			&core.EvalOptions{Workers: workers, P: q.P})
		d := time.Since(t0)
		if err != nil {
			return 0, d, err
		}
		return ans.Value, d, nil
	}
}

// requestAnswerer evaluates queries through an exact.Request-shaped backend
// (baselines, exact engine).
func requestAnswerer(run func(exact.Request) (*exact.Result, error)) answerer {
	return func(q workload.Query) (float64, time.Duration, error) {
		t0 := time.Now()
		r, err := run(q.Request(""))
		d := time.Since(t0)
		if err != nil {
			return 0, d, err
		}
		return r.Value, d, nil
	}
}

// minSupport returns the smallest ground-truth selection size a random
// query must hit to enter the error average: 0.05% of the table, floored
// at 30 rows. Ranges with almost no support have no meaningful relative
// error for any AQP system (QuickR found 25% of TPC-DS queries
// unsupportable for this reason, §2.3), so the harness filters them like
// the paper's methodology does.
func minSupport(rows int) float64 {
	if s := float64(rows) / 2000; s > 30 {
		return s
	}
	return 30
}

// evalBatch runs the queries through ans, comparing with exact ground truth
// over truthTb. Queries whose ground truth or answer fails (empty or
// near-empty selection at tiny selectivity) are skipped, mirroring the
// paper's random-query methodology.
func evalBatch(truthTb *table.Table, qs []workload.Query, ans answerer) (*batch, error) {
	b := newBatch()
	failures := 0
	for _, q := range qs {
		support, err := exact.Query(truthTb, exact.Request{
			AF: exact.Count, Y: q.XCol,
			Predicates: []exact.Range{{Column: q.XCol, Lb: q.Lb, Ub: q.Ub}},
		})
		if err != nil || support.Value < minSupport(truthTb.NumRows()) {
			continue
		}
		want, err := exact.Query(truthTb, q.Request(""))
		if err != nil {
			continue // empty selection: no defined ground truth
		}
		got, d, err := ans(q)
		if err != nil {
			failures++
			continue
		}
		b.add(q.AF, workload.RelErr(got, want.Value), d)
	}
	total := 0
	for _, n := range b.n {
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("experiments: all %d queries failed (%d answerer failures)", len(qs), failures)
	}
	return b, nil
}
