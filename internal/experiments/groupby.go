package experiments

import (
	"fmt"
	"sync"
	"time"

	"dbest/internal/baseline"
	"dbest/internal/core"
	"dbest/internal/exact"
	"dbest/internal/table"
	"dbest/internal/workload"
)

func init() {
	register("fig15", "TPC-DS GROUP BY (57 groups): error and response time (§4.6)", fig15)
	register("fig16", "TPC-DS GROUP BY overheads (§4.6)", fig16)
	register("fig17", "per-group error histograms for SUM/COUNT/AVG (§4.6, Fig. 22)", fig17)
	register("fig18", "parallel GROUP BY query response time (§4.7.1)", fig18)
	register("fig25", "MonetDB-over-samples vs DBEst: TPC-DS GROUP BY error (Appendix C)", fig25)
}

// groupBySetup trains the §4.6 configuration: column pair
// [ss_wholesale_cost, ss_list_price], GROUP BY ss_store_sk (57 groups),
// per-group sample sized so each group averages sampleSize rows.
type groupBySetup struct {
	tb      *table.Table
	ms      *core.ModelSet
	queries []workload.Query
}

// gbMu guards gbCache: five figures share the same 57-group model set, and
// training 57 ensembles dominates their cost, so the set is memoized per
// (rows, seed, sample size).
var (
	gbMu    sync.Mutex
	gbCache = map[string]*core.ModelSet{}
)

func setupGroupBy(cfg Config, sampleSize int) (*groupBySetup, error) {
	tb := storeSales(cfg.Rows, cfg.Seed)
	key := fmt.Sprintf("%d/%d/%d", cfg.Rows, cfg.Seed, sampleSize)
	gbMu.Lock()
	ms, ok := gbCache[key]
	gbMu.Unlock()
	if !ok {
		var err error
		ms, err = core.Train(tb, []string{"ss_wholesale_cost"}, "ss_list_price", &core.TrainConfig{
			SampleSize: sampleSize, Seed: cfg.Seed, GroupBy: "ss_store_sk", Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		gbMu.Lock()
		gbCache[key] = ms
		gbMu.Unlock()
	}
	qs, err := workload.Generate(tb, workload.Spec{
		XCol: "ss_wholesale_cost", YCol: "ss_list_price", AFs: csaOrder,
		RangeFrac: 0.2, PerAF: cfg.PerAF, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &groupBySetup{tb: tb, ms: ms, queries: qs}, nil
}

// groupErrs runs one GROUP BY query batch through a system and collects
// per-(query, group) relative errors and total time per AF.
func groupErrs(tb *table.Table, qs []workload.Query, run func(q workload.Query) (map[int64]float64, time.Duration, error)) (*batch, error) {
	b := newBatch()
	for _, q := range qs {
		want, err := exact.Query(tb, q.Request("ss_store_sk"))
		if err != nil {
			continue
		}
		got, d, err := run(q)
		if err != nil {
			continue
		}
		// Per the paper, per-group errors average over all groups present
		// in the exact answer; a group the system misses counts as error 1.
		n := 0
		var errSum float64
		for g, w := range want.Groups {
			if v, ok := got[g]; ok {
				errSum += workload.RelErr(v, w)
			} else {
				errSum += 1
			}
			n++
		}
		if n == 0 {
			continue
		}
		b.add(q.AF, errSum/float64(n), d)
	}
	total := 0
	for _, n := range b.n {
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("experiments: all GROUP BY queries failed")
	}
	return b, nil
}

func modelGroupRunner(ms *core.ModelSet, workers int) func(q workload.Query) (map[int64]float64, time.Duration, error) {
	return func(q workload.Query) (map[int64]float64, time.Duration, error) {
		t0 := time.Now()
		ans, err := ms.EvaluateUni(q.AF, q.Lb, q.Ub, false, &core.EvalOptions{Workers: workers, P: q.P})
		d := time.Since(t0)
		if err != nil {
			return nil, d, err
		}
		out := make(map[int64]float64, len(ans.Groups))
		for _, ga := range ans.Groups {
			out[ga.Group] = ga.Value
		}
		return out, d, nil
	}
}

func requestGroupRunner(run func(exact.Request) (*exact.Result, error)) func(q workload.Query) (map[int64]float64, time.Duration, error) {
	return func(q workload.Query) (map[int64]float64, time.Duration, error) {
		t0 := time.Now()
		r, err := run(q.Request("ss_store_sk"))
		d := time.Since(t0)
		if err != nil {
			return nil, d, err
		}
		return r.Groups, d, nil
	}
}

// fig15 — Fig. 15: per-AF mean relative error and mean response time for
// the 57-group workload, DBEst (single thread) vs VerdictSim.
func fig15(cfg Config) (*FigureResult, error) {
	gs, err := setupGroupBy(cfg, cfg.SampleSizes[0])
	if err != nil {
		return nil, err
	}
	v, err := baseline.NewVerdictSim(gs.tb, cfg.SampleSizes[0]*10, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	db, err := groupErrs(gs.tb, gs.queries, modelGroupRunner(gs.ms, 1))
	if err != nil {
		return nil, err
	}
	vb, err := groupErrs(gs.tb, gs.queries, requestGroupRunner(v.Query))
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig15", Title: "Query Performance for 57 Group Values (error %, time s)",
		XLabel: "aggregate function", Labels: afLabels(csaOrder, true),
	}
	for _, s := range []sysBatch{{"DBEst err%", db}, {"VerdictSim err%", vb}} {
		vals := make([]float64, 0, 4)
		for _, af := range csaOrder {
			vals = append(vals, pct(s.b.meanErr(af)))
		}
		vals = append(vals, pct(s.b.overallErr()))
		fr.AddSeries(s.name, vals...)
	}
	for _, s := range []sysBatch{{"DBEst time(s)", db}, {"VerdictSim time(s)", vb}} {
		vals := make([]float64, 0, 4)
		for _, af := range csaOrder {
			vals = append(vals, s.b.meanTime(af))
		}
		vals = append(vals, s.b.overallTime())
		fr.AddSeries(s.name, vals...)
	}
	fr.Note("paper: DBEst error clearly lower for COUNT/SUM; VerdictDB slightly faster per query (12 cores vs 1 thread)")
	return fr, nil
}

// fig16 — Fig. 16: GROUP BY state-building overheads.
func fig16(cfg Config) (*FigureResult, error) {
	gs, err := setupGroupBy(cfg, cfg.SampleSizes[0])
	if err != nil {
		return nil, err
	}
	v, err := baseline.NewVerdictSim(gs.tb, cfg.SampleSizes[0]*10, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig16", Title: "Overheads for 57 Group Values",
		XLabel: "system", YLabel: "seconds / MB",
		Labels: []string{"DBEst", "VerdictSim"},
	}
	fr.AddSeries("sampling time (s)", secs(gs.ms.Stats.SampleTime), secs(v.Stats.SampleTime))
	fr.AddSeries("training time (s)", secs(gs.ms.Stats.TrainTime), 0)
	fr.AddSeries("space (MB)", mb(gs.ms.Stats.ModelBytes), mb(v.Stats.Bytes))
	fr.Note("paper: training dominates DBEst state building but parallelizes; space grows with group count")
	return fr, nil
}

// fig17 — Fig. 17 & 22: per-group error histograms for SUM, COUNT, AVG.
// Series are histogram bin counts over the 57 per-group errors.
func fig17(cfg Config) (*FigureResult, error) {
	gs, err := setupGroupBy(cfg, cfg.SampleSizes[0])
	if err != nil {
		return nil, err
	}
	v, err := baseline.NewVerdictSim(gs.tb, cfg.SampleSizes[0]*10, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	const bins = 8
	fr := &FigureResult{
		ID: "fig17", Title: "Accuracy Histogram per Group: SUM/COUNT/AVG (bin counts)",
		XLabel: "relative error bin", YLabel: "number of groups",
	}
	for i := 0; i < bins; i++ {
		fr.Labels = append(fr.Labels, fmt.Sprintf("bin%d", i))
	}
	for _, af := range []exact.AggFunc{exact.Sum, exact.Count, exact.Avg} {
		dbErrs, err := perGroupErrors(gs, af, modelGroupRunner(gs.ms, cfg.Workers))
		if err != nil {
			return nil, err
		}
		vErrs, err := perGroupErrors(gs, af, requestGroupRunner(v.Query))
		if err != nil {
			return nil, err
		}
		maxErr := 0.25
		dh := workload.NewHistogram(dbErrs, bins, maxErr)
		vh := workload.NewHistogram(vErrs, bins, maxErr)
		fr.AddSeries("DBEst "+af.String(), intsToFloats(dh.Counts)...)
		fr.AddSeries("VerdictSim "+af.String(), intsToFloats(vh.Counts)...)
		fr.Note("%s: DBEst mean %.2f%%, VerdictSim mean %.2f%%; DBEst fraction <7%%: %.0f%%",
			af, pct(workload.Mean(dbErrs)), pct(workload.Mean(vErrs)), pct(dh.FractionBelow(0.07)))
	}
	return fr, nil
}

// perGroupErrors evaluates one wide-range query per AF and returns the
// per-group relative errors (the 57-group histograms of Figs. 17/22).
func perGroupErrors(gs *groupBySetup, af exact.AggFunc, run func(q workload.Query) (map[int64]float64, time.Duration, error)) ([]float64, error) {
	var q *workload.Query
	for i := range gs.queries {
		if gs.queries[i].AF == af {
			q = &gs.queries[i]
			break
		}
	}
	if q == nil {
		return nil, fmt.Errorf("experiments: no %v query generated", af)
	}
	want, err := exact.Query(gs.tb, q.Request("ss_store_sk"))
	if err != nil {
		return nil, err
	}
	got, _, err := run(*q)
	if err != nil {
		return nil, err
	}
	var errs []float64
	for g, w := range want.Groups {
		if v, ok := got[g]; ok {
			errs = append(errs, workload.RelErr(v, w))
		} else {
			errs = append(errs, 1)
		}
	}
	return errs, nil
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

// fig18 — Fig. 18: GROUP BY query response time, sequential DBEst vs
// parallel DBEst vs VerdictSim.
func fig18(cfg Config) (*FigureResult, error) {
	gs, err := setupGroupBy(cfg, cfg.SampleSizes[0])
	if err != nil {
		return nil, err
	}
	v, err := baseline.NewVerdictSim(gs.tb, cfg.SampleSizes[0]*10, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	seq, err := groupErrs(gs.tb, gs.queries, modelGroupRunner(gs.ms, 1))
	if err != nil {
		return nil, err
	}
	par, err := groupErrs(gs.tb, gs.queries, modelGroupRunner(gs.ms, 0))
	if err != nil {
		return nil, err
	}
	vb, err := groupErrs(gs.tb, gs.queries, requestGroupRunner(v.Query))
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig18", Title: "Group By Query Response Time Reduction",
		XLabel: "system", YLabel: "mean response time (s)",
		Labels: []string{"DBEst", "DBEst_parallel", "VerdictSim"},
	}
	fr.AddSeries("mean time (s)", seq.overallTime(), par.overallTime(), vb.overallTime())
	fr.Note("paper: 1.46s sequential → 0.57s parallel vs VerdictDB 0.82s (12 cores)")
	return fr, nil
}

// fig25 — Appendix C Fig. 25: DBEst vs MonetDB-over-samples on the TPC-DS
// GROUP BY workload.
func fig25(cfg Config) (*FigureResult, error) {
	gs, err := setupGroupBy(cfg, cfg.SampleSizes[0])
	if err != nil {
		return nil, err
	}
	se, err := baseline.NewSampleExact(gs.tb, cfg.SampleSizes[0]*10, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	db, err := groupErrs(gs.tb, gs.queries, modelGroupRunner(gs.ms, cfg.Workers))
	if err != nil {
		return nil, err
	}
	mo, err := groupErrs(gs.tb, gs.queries, requestGroupRunner(se.Query))
	if err != nil {
		return nil, err
	}
	fr := &FigureResult{
		ID: "fig25", Title: "Error vs MonetDB-over-samples: TPC-DS Group By",
		XLabel: "aggregate function", YLabel: "relative error (%)",
		Labels: afLabels(csaOrder, true),
	}
	for _, s := range []sysBatch{{"DBEst", db}, {"MonetDB", mo}} {
		vals := make([]float64, 0, 4)
		for _, af := range csaOrder {
			vals = append(vals, pct(s.b.meanErr(af)))
		}
		vals = append(vals, pct(s.b.overallErr()))
		fr.AddSeries(s.name, vals...)
	}
	fr.Note("paper: DBEst 4.43%% vs MonetDB 12.46%% overall with 10k per-group samples")
	return fr, nil
}
