package kde

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbest/internal/quadrature"
)

func normalSample(rng *rand.Rand, n int, mu, sigma float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mu + sigma*rng.NormFloat64()
	}
	return xs
}

func TestNewExactErrors(t *testing.T) {
	if _, err := NewExact(nil, 0); err == nil {
		t.Fatal("want error for empty sample")
	}
}

func TestNewBinnedErrors(t *testing.T) {
	if _, err := NewBinned(nil, 0, 0); err == nil {
		t.Fatal("want error for empty sample")
	}
}

func TestExactDensityIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e, err := NewExact(normalSample(rng, 2000, 5, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := e.Support()
	r, err := quadrature.Integrate(e.Density, lo, hi, &quadrature.Options{MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-1) > 1e-4 {
		t.Fatalf("integral of density = %v, want 1", r.Value)
	}
}

func TestBinnedDensityIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b, err := NewBinned(normalSample(rng, 2000, -3, 0.5), 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := b.Support()
	r, err := quadrature.Integrate(b.Density, lo, hi, &quadrature.Options{MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-1) > 1e-4 {
		t.Fatalf("integral of density = %v, want 1", r.Value)
	}
}

func TestCDFMatchesIntegralOfDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := normalSample(rng, 500, 0, 1)
	for _, est := range []Estimator{
		mustExact(t, data), mustBinned(t, data, 512),
	} {
		lo, _ := est.Support()
		for _, x := range []float64{-1.5, 0, 0.7, 2.2} {
			r, err := quadrature.Integrate(est.Density, lo, x, &quadrature.Options{MaxIter: 1000})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(r.Value-est.CDF(x)) > 1e-4 {
				t.Fatalf("CDF(%v) = %v, integral = %v", x, est.CDF(x), r.Value)
			}
		}
	}
}

func mustExact(t *testing.T, data []float64) *Exact {
	t.Helper()
	e, err := NewExact(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustBinned(t *testing.T, data []float64, bins int) *Binned {
	t.Helper()
	b, err := NewBinned(data, bins, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMassRecoversTrueNormalMass(t *testing.T) {
	// For N(0,1) data, mass of [-1, 1] should approach Φ(1)−Φ(−1) ≈ 0.6827.
	rng := rand.New(rand.NewSource(4))
	data := normalSample(rng, 20000, 0, 1)
	want := 0.6826894921370859
	for name, est := range map[string]Estimator{
		"exact":  mustExact(t, data),
		"binned": mustBinned(t, data, 0),
	} {
		got := est.Mass(-1, 1)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s: Mass(-1,1) = %v, want ≈ %v", name, got, want)
		}
	}
}

func TestMassReversedBoundsIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := mustExact(t, normalSample(rng, 100, 0, 1))
	if m := e.Mass(2, -2); m != 0 {
		t.Fatalf("Mass(2,-2) = %v, want 0", m)
	}
	b := mustBinned(t, normalSample(rng, 100, 0, 1), 64)
	if m := b.Mass(2, -2); m != 0 {
		t.Fatalf("Mass(2,-2) = %v, want 0", m)
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := normalSample(rng, 5000, 10, 3)
	for name, est := range map[string]Estimator{
		"exact":  mustExact(t, data),
		"binned": mustBinned(t, data, 0),
	} {
		for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
			x := est.Quantile(p)
			if got := est.CDF(x); math.Abs(got-p) > 1e-6 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", name, p, got)
			}
		}
	}
}

func TestQuantileExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := mustExact(t, normalSample(rng, 100, 0, 1))
	lo, hi := e.Support()
	if e.Quantile(0) != lo || e.Quantile(1) != hi {
		t.Fatal("Quantile(0)/Quantile(1) should return support bounds")
	}
	if e.Quantile(-0.5) != lo || e.Quantile(1.5) != hi {
		t.Fatal("out-of-range p should clamp")
	}
}

func TestBinnedDegenerateConstantData(t *testing.T) {
	b, err := NewBinned([]float64{7, 7, 7, 7}, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Weights) != 1 {
		t.Fatalf("constant data should produce a single bin, got %d", len(b.Weights))
	}
	// All mass near 7.
	if m := b.Mass(6.9, 7.1); m < 0.9 {
		t.Fatalf("Mass around constant = %v", m)
	}
	if d := b.Density(7); d <= 0 {
		t.Fatal("density at the point must be positive")
	}
	if got := b.CDF(7); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("CDF at kernel center = %v, want 0.5", got)
	}
}

func TestExactDegenerateConstantData(t *testing.T) {
	e, err := NewExact([]float64{3, 3, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m := e.Mass(2.999, 3.001); m < 0.9 {
		t.Fatalf("Mass around constant = %v", m)
	}
}

func TestSelectBandwidthRules(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := normalSample(rng, 1000, 0, 2)
	hs := SelectBandwidth(data, Silverman)
	hc := SelectBandwidth(data, Scott)
	if hs <= 0 || hc <= 0 {
		t.Fatalf("bandwidths must be positive: %v %v", hs, hc)
	}
	// Scott's rule uses 1.06σ vs Silverman's 0.9·min(σ, IQR/1.34); for
	// normal data Scott should be somewhat larger.
	if hc < hs {
		t.Fatalf("Scott %v < Silverman %v for normal data", hc, hs)
	}
	if h := SelectBandwidth(nil, Silverman); h != 1 {
		t.Fatalf("empty-data bandwidth = %v, want 1", h)
	}
	if h := SelectBandwidth([]float64{5, 5, 5}, Silverman); h <= 0 {
		t.Fatalf("degenerate bandwidth = %v, want > 0", h)
	}
}

func TestBinnedMatchesExactOnMass(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := normalSample(rng, 5000, 0, 1)
	e := mustExact(t, data)
	b := mustBinned(t, data, 0)
	for _, iv := range [][2]float64{{-2, -1}, {-0.5, 0.5}, {1, 3}} {
		me, mb := e.Mass(iv[0], iv[1]), b.Mass(iv[0], iv[1])
		if math.Abs(me-mb) > 5e-3 {
			t.Errorf("Mass(%v): exact %v vs binned %v", iv, me, mb)
		}
	}
}

func TestBimodalDensityShape(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := append(normalSample(rng, 3000, -4, 0.5), normalSample(rng, 3000, 4, 0.5)...)
	b := mustBinned(t, data, 0)
	// Density must be higher at each mode than at the trough between them.
	if b.Density(0) > b.Density(-4) || b.Density(0) > b.Density(4) {
		t.Fatalf("bimodal structure lost: D(0)=%v D(-4)=%v D(4)=%v",
			b.Density(0), b.Density(-4), b.Density(4))
	}
	// Roughly half the mass on each side.
	if m := b.Mass(math.Inf(-1), 0); math.Abs(m-0.5) > 0.05 {
		t.Fatalf("left-mode mass = %v, want ≈ 0.5", m)
	}
}

// Property: CDF is monotone nondecreasing and within [0, 1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64, exact bool) bool {
		rng := rand.New(rand.NewSource(seed))
		data := normalSample(rng, 200, rng.Float64()*10-5, rng.Float64()*3+0.1)
		var est Estimator
		var err error
		if exact {
			est, err = NewExact(data, 0)
		} else {
			est, err = NewBinned(data, 128, 0)
		}
		if err != nil {
			return false
		}
		lo, hi := est.Support()
		prev := -1e-12
		for i := 0; i <= 50; i++ {
			x := lo + (hi-lo)*float64(i)/50
			c := est.CDF(x)
			if c < prev-1e-9 || c < -1e-9 || c > 1+1e-9 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mass is additive: Mass(a,b) + Mass(b,c) == Mass(a,c).
func TestMassAdditiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := normalSample(rng, 300, 0, 1)
		b, err := NewBinned(data, 128, 0)
		if err != nil {
			return false
		}
		a := rng.Float64()*4 - 4
		m := a + rng.Float64()*2
		c := m + rng.Float64()*2
		return math.Abs(b.Mass(a, m)+b.Mass(m, c)-b.Mass(a, c)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMultivariateBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([][]float64, 4000)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), 2 * rng.NormFloat64()}
	}
	m, err := NewMultivariate(pts, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 2 {
		t.Fatalf("Dim = %d", m.Dim())
	}
	// Total mass over a wide box ≈ 1.
	if got := m.Mass([]float64{-20, -40}, []float64{20, 40}); math.Abs(got-1) > 1e-6 {
		t.Fatalf("total mass = %v", got)
	}
	// Mass of x1 in [-1,1] marginal ≈ 0.683 (independent dims).
	got := m.Mass([]float64{-1, -40}, []float64{1, 40})
	if math.Abs(got-0.6827) > 0.03 {
		t.Fatalf("marginal mass = %v, want ≈ 0.6827", got)
	}
}

func TestMultivariateMassMatchesQuadrature(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := make([][]float64, 500)
	for i := range pts {
		x := rng.NormFloat64()
		pts[i] = []float64{x, rng.NormFloat64() + 0.5*x}
	}
	m, err := NewMultivariate(pts, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	lb := []float64{-1, -1}
	ub := []float64{0.5, 1.2}
	want := m.Mass(lb, ub)
	r, err := quadrature.Integrate2D(func(x, y float64) float64 {
		return m.Density([]float64{x, y})
	}, lb[0], ub[0], lb[1], ub[1], &quadrature.Options{AbsTol: 1e-7, RelTol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-want) > 1e-4 {
		t.Fatalf("closed-form %v vs quadrature %v", want, r.Value)
	}
}

func TestMultivariateThinning(t *testing.T) {
	pts := make([][]float64, 1000)
	for i := range pts {
		pts[i] = []float64{float64(i)}
	}
	m, err := NewMultivariate(pts, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Points) != 100 {
		t.Fatalf("thinned to %d, want 100", len(m.Points))
	}
}

func TestMultivariateErrors(t *testing.T) {
	if _, err := NewMultivariate(nil, nil, 0); err == nil {
		t.Fatal("want error for empty sample")
	}
	if _, err := NewMultivariate([][]float64{{}}, nil, 0); err == nil {
		t.Fatal("want error for zero-dim points")
	}
	if _, err := NewMultivariate([][]float64{{1, 2}, {1}}, nil, 0); err == nil {
		t.Fatal("want error for ragged sample")
	}
	if _, err := NewMultivariate([][]float64{{1, 2}}, []float64{1}, 0); err == nil {
		t.Fatal("want error for bandwidth dim mismatch")
	}
}

func TestMultivariateSupportContainsData(t *testing.T) {
	pts := [][]float64{{0, 10}, {5, -2}, {3, 4}}
	m, err := NewMultivariate(pts, []float64{1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Support()
	if lo[0] > 0 || hi[0] < 5 || lo[1] > -2 || hi[1] < 10 {
		t.Fatalf("support [%v, %v] does not contain data", lo, hi)
	}
}
