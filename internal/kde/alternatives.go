package kde

import (
	"errors"
	"math"
	"sort"
)

// The paper's §3 surveys the density-estimation design space before picking
// Gaussian KDE: "the kernel estimator, the nearest neighbor method, the
// variable kernel method, orthogonal series estimators ... Histograms are
// the simplest form of density estimators ... However, their discrete
// nature is at odds with the continuous-function view employed within
// DBEst." This file implements two of those alternatives behind the same
// Estimator interface — a (frequency-polygon-smoothed) histogram and a
// cosine orthogonal-series estimator — so the choice can be evaluated
// empirically (see the density ablation tests/benchmarks).

// HistogramDE is a histogram density estimator with linear interpolation
// between bin midpoints (a frequency polygon), which restores the
// continuous-function view the engine's integrals need while keeping
// histogram simplicity.
type HistogramDE struct {
	Lo, Hi  float64
	Heights []float64 // per-bin density height (integrates to 1)
	cdf     []float64 // cumulative mass at each bin's right edge
}

// NewHistogramDE builds the estimator with the given bin count (0 selects
// the Freedman–Diaconis rule capped to [16, 4096]).
func NewHistogramDE(data []float64, bins int) (*HistogramDE, error) {
	if len(data) == 0 {
		return nil, errors.New("kde: empty sample")
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if bins <= 0 {
		iqr := quantileSorted(sorted, 0.75) - quantileSorted(sorted, 0.25)
		if iqr <= 0 {
			bins = 64
		} else {
			w := 2 * iqr / math.Cbrt(float64(len(data)))
			bins = int((hi - lo) / w)
		}
		if bins < 16 {
			bins = 16
		}
		if bins > 4096 {
			bins = 4096
		}
	}
	if hi == lo {
		return &HistogramDE{Lo: lo, Hi: hi, Heights: []float64{1}, cdf: []float64{1}}, nil
	}
	h := &HistogramDE{Lo: lo, Hi: hi, Heights: make([]float64, bins)}
	binW := (hi - lo) / float64(bins)
	inc := 1 / (float64(len(data)) * binW)
	for _, v := range data {
		i := int((v - lo) / binW)
		if i >= bins {
			i = bins - 1
		}
		h.Heights[i] += inc
	}
	h.cdf = make([]float64, bins)
	acc := 0.0
	for i, d := range h.Heights {
		acc += d * binW
		h.cdf[i] = acc
	}
	return h, nil
}

func (h *HistogramDE) binWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Heights))
}

// Density evaluates the frequency polygon at x.
func (h *HistogramDE) Density(x float64) float64 {
	if len(h.Heights) == 1 {
		// Degenerate single-bin estimator: a narrow spike.
		if x == h.Lo {
			return 1
		}
		return 0
	}
	if x < h.Lo || x > h.Hi {
		return 0
	}
	w := h.binWidth()
	// Interpolate between bin-midpoint heights.
	pos := (x-h.Lo)/w - 0.5
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	left, right := h.heightAt(i), h.heightAt(i+1)
	return left*(1-frac) + right*frac
}

func (h *HistogramDE) heightAt(i int) float64 {
	if i < 0 || i >= len(h.Heights) {
		return 0
	}
	return h.Heights[i]
}

// CDF evaluates the cumulative distribution at x (piecewise linear within
// bins of the raw histogram).
func (h *HistogramDE) CDF(x float64) float64 {
	if x <= h.Lo {
		return 0
	}
	if x >= h.Hi {
		return 1
	}
	w := h.binWidth()
	i := int((x - h.Lo) / w)
	if i >= len(h.Heights) {
		i = len(h.Heights) - 1
	}
	prev := 0.0
	if i > 0 {
		prev = h.cdf[i-1]
	}
	return prev + h.Heights[i]*(x-(h.Lo+float64(i)*w))
}

// Mass returns ∫_lb^ub of the density.
func (h *HistogramDE) Mass(lb, ub float64) float64 {
	if ub <= lb {
		return 0
	}
	m := h.CDF(ub) - h.CDF(lb)
	if m < 0 {
		return 0
	}
	return m
}

// Support returns the data extent.
func (h *HistogramDE) Support() (lo, hi float64) { return h.Lo, h.Hi }

// Quantile inverts the CDF by bisection.
func (h *HistogramDE) Quantile(p float64) float64 { return quantileByBisection(h, p) }

// OrthoSeriesDE is an orthogonal-series density estimator on the cosine
// basis over [Lo, Hi]: f(x) = 1/(Hi−Lo) + Σ_k a_k φ_k(x) with
// φ_k(x) = sqrt(2/(Hi−Lo))·cos(kπ(x−Lo)/(Hi−Lo)) and coefficients estimated
// as sample means of the basis functions. Terms are kept while their
// estimated signal exceeds the coefficient's sampling noise (a standard
// hard-threshold rule).
type OrthoSeriesDE struct {
	Lo, Hi float64
	Coef   []float64 // a_1..a_K
}

// NewOrthoSeriesDE fits up to maxTerms cosine terms (0 selects 64).
func NewOrthoSeriesDE(data []float64, maxTerms int) (*OrthoSeriesDE, error) {
	if len(data) == 0 {
		return nil, errors.New("kde: empty sample")
	}
	if maxTerms <= 0 {
		maxTerms = 64
	}
	lo, hi := data[0], data[0]
	for _, v := range data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return &OrthoSeriesDE{Lo: lo, Hi: hi}, nil
	}
	n := float64(len(data))
	L := hi - lo
	norm := math.Sqrt(2 / L)
	coef := make([]float64, 0, maxTerms)
	for k := 1; k <= maxTerms; k++ {
		var sum, sumSq float64
		for _, v := range data {
			phi := norm * math.Cos(float64(k)*math.Pi*(v-lo)/L)
			sum += phi
			sumSq += phi * phi
		}
		ak := sum / n
		varAk := (sumSq/n - ak*ak) / n
		// Hard threshold: keep the term only if a_k² exceeds twice its
		// estimated variance; stop after two consecutive rejections.
		if ak*ak > 2*varAk {
			coef = append(coef, ak)
		} else {
			coef = append(coef, 0)
			if k >= 2 && len(coef) >= 2 && coef[len(coef)-2] == 0 {
				coef = coef[:len(coef)-2]
				break
			}
		}
	}
	// Trim trailing zeros.
	for len(coef) > 0 && coef[len(coef)-1] == 0 {
		coef = coef[:len(coef)-1]
	}
	return &OrthoSeriesDE{Lo: lo, Hi: hi, Coef: coef}, nil
}

// Density evaluates the series at x (clamped at 0 to stay a density).
func (o *OrthoSeriesDE) Density(x float64) float64 {
	if x < o.Lo || x > o.Hi {
		return 0
	}
	L := o.Hi - o.Lo
	if L == 0 {
		if x == o.Lo {
			return 1
		}
		return 0
	}
	norm := math.Sqrt(2 / L)
	f := 1 / L
	for k, ak := range o.Coef {
		if ak == 0 {
			continue
		}
		f += ak * norm * math.Cos(float64(k+1)*math.Pi*(x-o.Lo)/L)
	}
	if f < 0 {
		return 0
	}
	return f
}

// CDF integrates the series in closed form (before clamping; minor local
// negativity is smoothed out by the sine integral).
func (o *OrthoSeriesDE) CDF(x float64) float64 {
	if x <= o.Lo {
		return 0
	}
	if x >= o.Hi {
		return 1
	}
	L := o.Hi - o.Lo
	norm := math.Sqrt(2 / L)
	u := (x - o.Lo) / L
	c := u
	for k, ak := range o.Coef {
		if ak == 0 {
			continue
		}
		kk := float64(k + 1)
		c += ak * norm * L / (kk * math.Pi) * math.Sin(kk*math.Pi*u)
	}
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// Mass returns ∫_lb^ub of the density.
func (o *OrthoSeriesDE) Mass(lb, ub float64) float64 {
	if ub <= lb {
		return 0
	}
	m := o.CDF(ub) - o.CDF(lb)
	if m < 0 {
		return 0
	}
	return m
}

// Support returns the data extent.
func (o *OrthoSeriesDE) Support() (lo, hi float64) { return o.Lo, o.Hi }

// Quantile inverts the CDF by bisection.
func (o *OrthoSeriesDE) Quantile(p float64) float64 { return quantileByBisection(o, p) }
