package kde

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Boundary-reflection tests: for data with hard domain edges (uniform on
// [0, 1]), the reflected estimator must not leak mass past the edges and
// must estimate edge-interval masses without the half-kernel bias.

func uniformSample(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	return xs
}

func TestReflectEnabledForBoundedData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b, err := NewBinned(uniformSample(rng, 10000), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Reflect {
		t.Fatal("reflection should be enabled when bandwidth ≪ domain")
	}
	lo, hi := b.Support()
	if lo != b.Lo || hi != b.Hi {
		t.Fatalf("support [%v, %v] should equal data extent [%v, %v]", lo, hi, b.Lo, b.Hi)
	}
	if d := b.Density(b.Lo - 0.01); d != 0 {
		t.Fatalf("density below support = %v", d)
	}
	if d := b.Density(b.Hi + 0.01); d != 0 {
		t.Fatalf("density above support = %v", d)
	}
}

func TestReflectEdgeMassUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b, err := NewBinned(uniformSample(rng, 50000), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// For U(0,1), Mass(0, w) must be ≈ w even at the boundary. Without
	// reflection the estimate is biased low by roughly h·φ(0) ≈ 40% of a
	// bandwidth worth of mass.
	for _, w := range []float64{0.02, 0.05, 0.1} {
		if got := b.Mass(0, w); math.Abs(got-w)/w > 0.08 {
			t.Errorf("Mass(0, %v) = %v, want ≈ %v", w, got, w)
		}
		if got := b.Mass(1-w, 1); math.Abs(got-w)/w > 0.08 {
			t.Errorf("Mass(%v, 1) = %v, want ≈ %v", 1-w, got, w)
		}
	}
	// Interior intervals stay accurate too.
	if got := b.Mass(0.45, 0.55); math.Abs(got-0.1) > 0.01 {
		t.Errorf("interior Mass = %v", got)
	}
}

func TestReflectTotalMassIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b, err := NewBinned(uniformSample(rng, 5000), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Mass(b.Lo, b.Hi); math.Abs(got-1) > 1e-9 {
		t.Fatalf("total mass = %v", got)
	}
	if got := b.CDF(b.Lo); got != 0 {
		t.Fatalf("CDF(Lo) = %v", got)
	}
	if got := b.CDF(b.Hi); got != 1 {
		t.Fatalf("CDF(Hi) = %v", got)
	}
}

func TestReflectDisabledForWideBandwidth(t *testing.T) {
	// Tiny sample with spread-out points: Silverman bandwidth is comparable
	// to the range, so reflection is disabled and the plain KDE is used.
	b, err := NewBinned([]float64{0, 0.5, 1}, 16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reflect {
		t.Fatal("reflection should be off when bandwidth ≥ range/4")
	}
}

func TestReflectExplicitBandwidth(t *testing.T) {
	// The Appendix C failure mode: a Zipf spike at small integer keys mixed
	// with a wide uniform region. The wide region inflates the IQR, so
	// Silverman's rule picks a bandwidth of tens of key spacings and smears
	// the spike; an explicit ordinal bandwidth (a fifth of the key spacing)
	// resolves it.
	rng := rand.New(rand.NewSource(9))
	var data []float64
	for i := 0; i < 5000; i++ {
		data = append(data, 1) // rank-1 spike
	}
	for i := 0; i < 5000; i++ {
		data = append(data, float64(1001+rng.Intn(1000))) // uniform tail
	}
	discrete, err := NewBinned(data, 4096, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	silverman, err := NewBinned(data, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if silverman.H < 10 {
		t.Fatalf("test premise broken: Silverman h = %v, expected tens of spacings", silverman.H)
	}
	truth := 0.5 // half the mass sits exactly at key 1
	errDiscrete := math.Abs(discrete.Mass(0.5, 1.5) - truth)
	errSilverman := math.Abs(silverman.Mass(0.5, 1.5) - truth)
	if errDiscrete > 0.05 {
		t.Fatalf("discrete bandwidth error = %v", errDiscrete)
	}
	if errSilverman < 5*errDiscrete {
		t.Fatalf("expected Silverman to smear the spike: %v vs %v", errSilverman, errDiscrete)
	}
}

// Property: reflected CDF stays monotone in [0, 1] over the support.
func TestReflectCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, err := NewBinned(uniformSample(rng, 1000), 128, 0)
		if err != nil {
			return false
		}
		prev := -1e-12
		for i := 0; i <= 100; i++ {
			x := b.Lo + (b.Hi-b.Lo)*float64(i)/100
			c := b.CDF(x)
			if c < prev-1e-9 || c < -1e-9 || c > 1+1e-9 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: reflection preserves Quantile/CDF inversion.
func TestReflectQuantileProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, err := NewBinned(uniformSample(rng, 2000), 0, 0)
		if err != nil {
			return false
		}
		for _, p := range []float64{0.1, 0.5, 0.9} {
			if math.Abs(b.CDF(b.Quantile(p))-p) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
