package kde

import (
	"math/rand"
	"testing"
)

func benchData(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()*10 + 50
	}
	return xs
}

func BenchmarkNewBinned10k(b *testing.B) {
	data := benchData(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewBinned(data, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinnedDensity(b *testing.B) {
	est, err := NewBinned(benchData(100_000), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = est.Density(50 + float64(i%20))
	}
}

func BenchmarkBinnedMass(b *testing.B) {
	est, err := NewBinned(benchData(100_000), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = est.Mass(40, 60)
	}
}

func BenchmarkBinnedQuantile(b *testing.B) {
	est, err := NewBinned(benchData(100_000), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = est.Quantile(0.95)
	}
}

func BenchmarkExactDensity(b *testing.B) {
	est, err := NewExact(benchData(100_000), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = est.Density(50)
	}
}

func BenchmarkMultivariateMass(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := make([][]float64, 4096)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	est, err := NewMultivariate(pts, nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = est.Mass([]float64{-1, -1}, []float64{1, 1})
	}
}
