package kde

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbest/internal/quadrature"
)

// estimators under test, constructed over the same sample.
func allEstimators(t *testing.T, data []float64) map[string]Estimator {
	t.Helper()
	out := map[string]Estimator{}
	b, err := NewBinned(data, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	out["kde-binned"] = b
	h, err := NewHistogramDE(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	out["histogram"] = h
	o, err := NewOrthoSeriesDE(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	out["orthoseries"] = o
	return out
}

func TestAlternativesErrors(t *testing.T) {
	if _, err := NewHistogramDE(nil, 0); err == nil {
		t.Fatal("want error for empty sample")
	}
	if _, err := NewOrthoSeriesDE(nil, 0); err == nil {
		t.Fatal("want error for empty sample")
	}
}

func TestAlternativesIntegrateToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := normalSample(rng, 5000, 0, 1)
	for name, est := range allEstimators(t, data) {
		lo, hi := est.Support()
		r, err := quadrature.Integrate(est.Density, lo, hi,
			&quadrature.Options{MaxIter: 4000, InitialPanels: 64})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(r.Value-1) > 0.02 {
			t.Errorf("%s: ∫density = %v", name, r.Value)
		}
	}
}

func TestAlternativesMassAccuracy(t *testing.T) {
	// For N(0,1) data all estimators should recover the central-interval
	// mass; the KDE should be at least as accurate as the alternatives on
	// smooth data, which is why the paper picks it.
	rng := rand.New(rand.NewSource(2))
	data := normalSample(rng, 20000, 0, 1)
	want := 0.6826894921370859
	errs := map[string]float64{}
	for name, est := range allEstimators(t, data) {
		got := est.Mass(-1, 1)
		errs[name] = math.Abs(got - want)
		if errs[name] > 0.03 {
			t.Errorf("%s: Mass(-1,1) = %v, want ≈ %v", name, got, want)
		}
	}
}

func TestAlternativesCDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := append(normalSample(rng, 2000, -2, 0.6), normalSample(rng, 2000, 3, 1.2)...)
	for name, est := range allEstimators(t, data) {
		lo, hi := est.Support()
		prev := -1e-12
		for i := 0; i <= 200; i++ {
			x := lo + (hi-lo)*float64(i)/200
			c := est.CDF(x)
			if c < prev-1e-9 {
				t.Fatalf("%s: CDF not monotone at %v", name, x)
			}
			if c < -1e-9 || c > 1+1e-9 {
				t.Fatalf("%s: CDF out of range: %v", name, c)
			}
			prev = c
		}
	}
}

func TestAlternativesQuantileInverts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := normalSample(rng, 5000, 10, 2)
	for name, est := range allEstimators(t, data) {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			x := est.Quantile(p)
			if got := est.CDF(x); math.Abs(got-p) > 0.01 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", name, p, got)
			}
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogramDE([]float64{4, 4, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Density(4) <= 0 {
		t.Fatal("degenerate histogram should have mass at the point")
	}
	if h.Density(5) != 0 {
		t.Fatal("no mass away from the point")
	}
}

func TestOrthoSeriesDegenerate(t *testing.T) {
	o, err := NewOrthoSeriesDE([]float64{4, 4, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Coef) != 0 {
		t.Fatalf("degenerate data should keep no terms, got %d", len(o.Coef))
	}
}

func TestOrthoSeriesAdaptsTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Uniform data: essentially no cosine structure → few/no terms kept.
	uni := make([]float64, 5000)
	for i := range uni {
		uni[i] = rng.Float64()
	}
	ou, err := NewOrthoSeriesDE(uni, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Bimodal data: clear low-frequency structure → several terms kept.
	bim := append(normalSample(rng, 2500, 0.25, 0.05), normalSample(rng, 2500, 0.75, 0.05)...)
	ob, err := NewOrthoSeriesDE(bim, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ob.Coef) <= len(ou.Coef) {
		t.Fatalf("structured data should keep more terms: %d vs %d", len(ob.Coef), len(ou.Coef))
	}
}

func TestHistogramFixedBins(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := normalSample(rng, 1000, 0, 1)
	h, err := NewHistogramDE(data, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Heights) != 32 {
		t.Fatalf("bins = %d", len(h.Heights))
	}
}

// Property: all three estimators agree on interval masses within a few
// percent for smooth unimodal data.
func TestEstimatorsAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := normalSample(rng, 4000, rng.Float64()*4, 0.5+rng.Float64())
		b, err1 := NewBinned(data, 0, 0)
		h, err2 := NewHistogramDE(data, 0)
		o, err3 := NewOrthoSeriesDE(data, 0)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		lo := b.Quantile(0.2)
		hi := b.Quantile(0.8)
		mb := b.Mass(lo, hi)
		mh := h.Mass(lo, hi)
		mo := o.Mass(lo, hi)
		return math.Abs(mb-mh) < 0.05 && math.Abs(mb-mo) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
