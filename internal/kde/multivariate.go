package kde

import (
	"errors"
	"math"
)

// Multivariate is a d-dimensional Gaussian product-kernel density estimator
// over a (possibly binned-per-row) retained sample. It supports the
// multivariate range predicates of Eq. 10; per the paper, "kernel density
// estimation can be performed in any number of dimensions".
//
// The estimator keeps the sample points themselves (optionally thinned),
// with one bandwidth per dimension chosen by Silverman's rule.
type Multivariate struct {
	Points [][]float64 // len n, each of dimension d
	H      []float64   // per-dimension bandwidths
}

// NewMultivariate builds a product-kernel KDE over the rows of points.
// Bandwidths h may be nil to select per-dimension Silverman bandwidths.
// maxPoints > 0 thins the retained sample by uniform striding to bound the
// stored model size.
func NewMultivariate(points [][]float64, h []float64, maxPoints int) (*Multivariate, error) {
	if len(points) == 0 {
		return nil, errors.New("kde: empty multivariate sample")
	}
	d := len(points[0])
	if d == 0 {
		return nil, errors.New("kde: zero-dimensional points")
	}
	for _, p := range points {
		if len(p) != d {
			return nil, errors.New("kde: ragged multivariate sample")
		}
	}
	kept := points
	if maxPoints > 0 && len(points) > maxPoints {
		kept = make([][]float64, 0, maxPoints)
		stride := float64(len(points)) / float64(maxPoints)
		for i := 0; i < maxPoints; i++ {
			kept = append(kept, points[int(float64(i)*stride)])
		}
	}
	if h == nil {
		h = make([]float64, d)
		col := make([]float64, len(kept))
		for j := 0; j < d; j++ {
			for i, p := range kept {
				col[i] = p[j]
			}
			// Multivariate Silverman factor: (4/(d+2))^(1/(d+4)) n^(-1/(d+4)) σ.
			n := float64(len(kept))
			sigma := stddev(col)
			if sigma == 0 {
				sigma = 1e-6
			}
			h[j] = math.Pow(4/(float64(d)+2), 1/(float64(d)+4)) * math.Pow(n, -1/(float64(d)+4)) * sigma
		}
	}
	if len(h) != d {
		return nil, errors.New("kde: bandwidth dimension mismatch")
	}
	// Copy rows so the model owns its data.
	own := make([][]float64, len(kept))
	for i, p := range kept {
		own[i] = append([]float64(nil), p...)
	}
	return &Multivariate{Points: own, H: append([]float64(nil), h...)}, nil
}

func stddev(xs []float64) float64 {
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range xs {
		mean += v
	}
	mean /= n
	ss := 0.0
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / n)
}

// Dim returns the dimensionality of the estimator.
func (m *Multivariate) Dim() int { return len(m.H) }

// Density evaluates the d-dimensional pdf at x.
func (m *Multivariate) Density(x []float64) float64 {
	sum := 0.0
	for _, p := range m.Points {
		prod := 1.0
		for j := range x {
			prod *= gaussKernel((x[j] - p[j]) / m.H[j])
		}
		sum += prod
	}
	norm := float64(len(m.Points))
	for _, hj := range m.H {
		norm *= hj
	}
	return sum / norm
}

// Mass returns the probability mass of the axis-aligned box [lb, ub]
// (per-dimension bounds). For a Gaussian product kernel this is a closed
// form: the mean over points of Π_j [Φ((ub_j−p_j)/h_j) − Φ((lb_j−p_j)/h_j)].
func (m *Multivariate) Mass(lb, ub []float64) float64 {
	sum := 0.0
	for _, p := range m.Points {
		prod := 1.0
		for j := range lb {
			prod *= stdNormCDF((ub[j]-p[j])/m.H[j]) - stdNormCDF((lb[j]-p[j])/m.H[j])
			if prod == 0 {
				break
			}
		}
		sum += prod
	}
	return sum / float64(len(m.Points))
}

// Support returns per-dimension bounds outside which the density vanishes.
func (m *Multivariate) Support() (lo, hi []float64) {
	d := m.Dim()
	lo = make([]float64, d)
	hi = make([]float64, d)
	for j := 0; j < d; j++ {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	for _, p := range m.Points {
		for j := 0; j < d; j++ {
			if p[j] < lo[j] {
				lo[j] = p[j]
			}
			if p[j] > hi[j] {
				hi[j] = p[j]
			}
		}
	}
	for j := 0; j < d; j++ {
		lo[j] -= kernelCutoff * m.H[j]
		hi[j] += kernelCutoff * m.H[j]
	}
	return lo, hi
}
