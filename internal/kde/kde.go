// Package kde implements Gaussian kernel density estimation — the density
// estimator D(x) at the heart of DBEst (§3, Density Estimator). It replaces
// sklearn.neighbors.KernelDensity with two from-scratch backings:
//
//   - Exact: the sorted sample with an 8σ kernel cutoff, giving
//     O(log n + k) point evaluation via binary search (the role the
//     Ball Tree / KD Tree plays for sklearn);
//   - Binned: linear binning onto a fixed grid, so the stored model size is
//     independent of the training sample size — this is what makes DBEst
//     models "a few 100s KBs" while samples are MBs.
//
// For a Gaussian kernel the CDF is a closed-form sum of Φ terms, so range
// mass ∫_lb^ub D(x)dx (COUNT, Eq. 1) and the PERCENTILE root-finding problem
// (Eq. 4) need no numerical quadrature.
package kde

import (
	"errors"
	"math"
	"sort"
)

// kernelCutoff is the distance, in bandwidths, beyond which the Gaussian
// kernel is treated as zero. exp(-32) ≈ 1.3e-14 leaves no visible error at
// float64 precision for the aggregates computed from the estimator.
const kernelCutoff = 8.0

const invSqrt2Pi = 0.3989422804014327 // 1/sqrt(2π)

// gaussKernel is the standard normal pdf.
func gaussKernel(u float64) float64 { return invSqrt2Pi * math.Exp(-0.5*u*u) }

// stdNormCDF is Φ, the standard normal CDF.
func stdNormCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// Estimator is a one-dimensional probability density estimate normalized to
// unity, supporting the operations DBEst needs: point density, range mass,
// quantiles, and support bounds.
type Estimator interface {
	// Density evaluates the pdf at x.
	Density(x float64) float64
	// CDF evaluates the cumulative distribution at x.
	CDF(x float64) float64
	// Mass returns ∫_lb^ub D(x) dx.
	Mass(lb, ub float64) float64
	// Quantile returns x such that CDF(x) = p, for p in [0, 1].
	Quantile(p float64) float64
	// Support returns bounds outside which the density is (effectively) zero.
	Support() (lo, hi float64)
}

// Bandwidth selection rules.
type BandwidthRule int

const (
	// Silverman is Silverman's rule of thumb,
	// h = 0.9·min(σ, IQR/1.34)·n^(-1/5).
	Silverman BandwidthRule = iota
	// Scott is Scott's rule, h = 1.06·σ·n^(-1/5).
	Scott
)

// SelectBandwidth computes a kernel bandwidth for the data under the given
// rule. The data need not be sorted. It returns a small positive floor when
// the data are degenerate (constant), so the estimator remains proper.
func SelectBandwidth(data []float64, rule BandwidthRule) float64 {
	n := len(data)
	if n == 0 {
		return 1
	}
	mean, m2 := 0.0, 0.0
	for i, v := range data {
		d := v - mean
		mean += d / float64(i+1)
		m2 += d * (v - mean)
	}
	sigma := math.Sqrt(m2 / float64(n))
	nf := math.Pow(float64(n), -0.2)
	var h float64
	switch rule {
	case Scott:
		h = 1.06 * sigma * nf
	default:
		sorted := append([]float64(nil), data...)
		sort.Float64s(sorted)
		iqr := quantileSorted(sorted, 0.75) - quantileSorted(sorted, 0.25)
		spread := sigma
		if iqr > 0 && iqr/1.34 < spread {
			spread = iqr / 1.34
		}
		h = 0.9 * spread * nf
	}
	if h <= 0 || math.IsNaN(h) {
		// Degenerate data: fall back to a floor relative to magnitude.
		scale := math.Abs(mean)
		if scale == 0 {
			scale = 1
		}
		h = 1e-6 * scale
	}
	return h
}

func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if hi >= n {
		hi = n - 1
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Exact is a sample-backed Gaussian KDE over the sorted training points.
type Exact struct {
	X []float64 // sorted sample
	H float64   // bandwidth
}

// NewExact builds an exact Gaussian KDE over data with the given bandwidth;
// pass h <= 0 to select by Silverman's rule. The data slice is copied.
func NewExact(data []float64, h float64) (*Exact, error) {
	if len(data) == 0 {
		return nil, errors.New("kde: empty sample")
	}
	if h <= 0 {
		h = SelectBandwidth(data, Silverman)
	}
	x := append([]float64(nil), data...)
	sort.Float64s(x)
	return &Exact{X: x, H: h}, nil
}

// Density evaluates the pdf at x in O(log n + k) by restricting the kernel
// sum to points within the cutoff radius.
func (e *Exact) Density(x float64) float64 {
	r := kernelCutoff * e.H
	lo := sort.SearchFloat64s(e.X, x-r)
	hi := sort.SearchFloat64s(e.X, x+r)
	sum := 0.0
	for _, xi := range e.X[lo:hi] {
		sum += gaussKernel((x - xi) / e.H)
	}
	return sum / (float64(len(e.X)) * e.H)
}

// CDF evaluates the closed-form Gaussian-mixture CDF at x.
func (e *Exact) CDF(x float64) float64 {
	r := kernelCutoff * e.H
	lo := sort.SearchFloat64s(e.X, x-r)
	hi := sort.SearchFloat64s(e.X, x+r)
	// Points below x-r contribute Φ(≥8) ≈ 1; points above x+r contribute 0.
	sum := float64(lo)
	for _, xi := range e.X[lo:hi] {
		sum += stdNormCDF((x - xi) / e.H)
	}
	return sum / float64(len(e.X))
}

// Mass returns ∫_lb^ub D, clamping reversed bounds to zero mass.
func (e *Exact) Mass(lb, ub float64) float64 {
	if ub <= lb {
		return 0
	}
	m := e.CDF(ub) - e.CDF(lb)
	if m < 0 {
		return 0
	}
	return m
}

// Support returns the sample range padded by the kernel cutoff.
func (e *Exact) Support() (lo, hi float64) {
	pad := kernelCutoff * e.H
	return e.X[0] - pad, e.X[len(e.X)-1] + pad
}

// Quantile inverts the CDF by bisection (the paper's "Naive Bisection").
func (e *Exact) Quantile(p float64) float64 {
	return quantileByBisection(e, p)
}

// Binned is a grid-compressed Gaussian KDE: the sample is linearly binned
// onto a uniform grid and the kernel sum runs over bin centers weighted by
// bin mass. Its size is O(bins), independent of the training sample size.
//
// By default the estimator applies boundary reflection: the data extent
// [Lo, Hi] is treated as the support and kernel mass that would spill past
// an edge is reflected back inside. Without this, range predicates near a
// hard domain boundary (a minimum temperature, a price floor) are biased
// low by up to half a bandwidth of mass — a bias that does not shrink with
// sample size.
type Binned struct {
	Lo, Hi  float64   // grid extent (sample min/max)
	H       float64   // bandwidth
	Weights []float64 // bin masses, summing to 1
	N       int       // training sample size (for bookkeeping)
	Reflect bool      // boundary reflection at Lo and Hi
}

// DefaultBins is the grid resolution used when 0 is passed to NewBinned.
const DefaultBins = 1024

// NewBinned builds a binned Gaussian KDE with the given number of grid bins
// (0 means DefaultBins) and bandwidth (<= 0 means Silverman's rule).
func NewBinned(data []float64, bins int, h float64) (*Binned, error) {
	if len(data) == 0 {
		return nil, errors.New("kde: empty sample")
	}
	if bins <= 0 {
		bins = DefaultBins
	}
	if h <= 0 {
		h = SelectBandwidth(data, Silverman)
	}
	lo, hi := data[0], data[0]
	for _, v := range data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		// Degenerate (constant) data: a single-bin estimator.
		return &Binned{Lo: lo, Hi: hi, H: h, Weights: []float64{1}, N: len(data)}, nil
	}
	// Reflection assumes the bandwidth is small relative to the domain so
	// the two edges do not interact; otherwise fall back to plain KDE.
	reflect := h < (hi-lo)/4
	w := make([]float64, bins)
	step := (hi - lo) / float64(bins-1)
	inc := 1 / float64(len(data))
	for _, v := range data {
		// Linear binning: split each point's mass between the two nearest
		// grid nodes, preserving the first moment of the sample.
		pos := (v - lo) / step
		i := int(pos)
		if i >= bins-1 {
			w[bins-1] += inc
			continue
		}
		frac := pos - float64(i)
		w[i] += inc * (1 - frac)
		w[i+1] += inc * frac
	}
	return &Binned{Lo: lo, Hi: hi, H: h, Weights: w, N: len(data), Reflect: reflect}, nil
}

func (b *Binned) step() float64 {
	if len(b.Weights) <= 1 {
		return 0
	}
	return (b.Hi - b.Lo) / float64(len(b.Weights)-1)
}

// Density evaluates the pdf at x over the grid nodes within the cutoff.
func (b *Binned) Density(x float64) float64 {
	if len(b.Weights) == 1 {
		return gaussKernel((x-b.Lo)/b.H) / b.H
	}
	if b.Reflect && (x < b.Lo || x > b.Hi) {
		return 0
	}
	d := b.rawDensity(x)
	if b.Reflect {
		// Reflect the spilled edge mass back into the support.
		d += b.rawDensity(2*b.Lo - x)
		d += b.rawDensity(2*b.Hi - x)
	}
	return d
}

func (b *Binned) rawDensity(x float64) float64 {
	step := b.step()
	r := kernelCutoff * b.H
	lo := int(math.Ceil((x - r - b.Lo) / step))
	hi := int(math.Floor((x + r - b.Lo) / step))
	if lo < 0 {
		lo = 0
	}
	if hi > len(b.Weights)-1 {
		hi = len(b.Weights) - 1
	}
	sum := 0.0
	for i := lo; i <= hi; i++ {
		if b.Weights[i] == 0 {
			continue
		}
		xi := b.Lo + float64(i)*step
		sum += b.Weights[i] * gaussKernel((x-xi)/b.H)
	}
	return sum / b.H
}

// CDF evaluates the closed-form mixture CDF at x.
func (b *Binned) CDF(x float64) float64 {
	if len(b.Weights) == 1 {
		return stdNormCDF((x - b.Lo) / b.H)
	}
	if !b.Reflect {
		return b.rawCDF(x)
	}
	switch {
	case x <= b.Lo:
		return 0
	case x >= b.Hi:
		return 1
	}
	// F(x) = ∫_Lo^x [f_raw(t) + f_raw(2Lo−t) + f_raw(2Hi−t)] dt, where the
	// two reflection integrals substitute to raw-CDF differences:
	// lower: F_raw(Lo) − F_raw(2Lo−x); upper: F_raw(2Hi−Lo) − F_raw(2Hi−x).
	c := b.rawCDF(x) - b.rawCDF(2*b.Lo-x) +
		b.rawCDF(2*b.Hi-b.Lo) - b.rawCDF(2*b.Hi-x)
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

func (b *Binned) rawCDF(x float64) float64 {
	step := b.step()
	sum := 0.0
	for i, wi := range b.Weights {
		if wi == 0 {
			continue
		}
		xi := b.Lo + float64(i)*step
		u := (x - xi) / b.H
		switch {
		case u >= kernelCutoff:
			sum += wi
		case u > -kernelCutoff:
			sum += wi * stdNormCDF(u)
		}
	}
	return sum
}

// Mass returns ∫_lb^ub D, clamping reversed bounds to zero mass.
func (b *Binned) Mass(lb, ub float64) float64 {
	if ub <= lb {
		return 0
	}
	m := b.CDF(ub) - b.CDF(lb)
	if m < 0 {
		return 0
	}
	return m
}

// Support returns the region where the density is nonzero: exactly the
// data extent under reflection, padded by the kernel cutoff otherwise.
func (b *Binned) Support() (lo, hi float64) {
	if b.Reflect && len(b.Weights) > 1 {
		return b.Lo, b.Hi
	}
	pad := kernelCutoff * b.H
	return b.Lo - pad, b.Hi + pad
}

// Quantile inverts the CDF by bisection.
func (b *Binned) Quantile(p float64) float64 {
	return quantileByBisection(b, p)
}

// quantileByBisection solves CDF(x) = p on the estimator's support by
// bisection — Eq. 4 of the paper.
func quantileByBisection(e Estimator, p float64) float64 {
	lo, hi := e.Support()
	if p <= 0 {
		return lo
	}
	if p >= 1 {
		return hi
	}
	for i := 0; i < 200 && hi-lo > 1e-12*math.Max(1, math.Abs(hi)+math.Abs(lo)); i++ {
		mid := 0.5 * (lo + hi)
		if e.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}
