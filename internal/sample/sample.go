// Package sample implements the sampling strategies of the paper and its
// baselines: uniform reservoir sampling (DBEst relies "solely on reservoir
// sampling to generate uniform samples over the original table", §3),
// per-group reservoirs (a sample is recorded per each GROUP BY value, §2.3),
// stratified sampling (BlinkDB-style baselines), and hashed/universe
// sampling on join keys (VerdictDB/QuickR-style join samples, §2.2).
package sample

import (
	"errors"
	"hash/maphash"
	"math"
	"math/rand"

	"dbest/internal/table"
)

// Reservoir maintains a fixed-capacity uniform sample of a stream of row
// indices using Vitter's Algorithm L (optimal skip-based reservoir
// sampling), the algorithm family of the paper's citation [55].
type Reservoir struct {
	k     int
	seen  int
	items []int
	rng   *rand.Rand
	w     float64
	next  int // absolute index of the next item to admit
}

// NewReservoir creates a reservoir of capacity k seeded deterministically.
func NewReservoir(k int, seed int64) *Reservoir {
	r := &Reservoir{k: k, rng: rand.New(rand.NewSource(seed))}
	r.w = math.Exp(math.Log(r.rng.Float64()) / float64(k))
	r.next = -1
	return r
}

// Offer presents stream element i (a row index) to the reservoir. It
// reports whether i was admitted — either filling an empty slot or
// replacing a previously sampled element. The reservoir's state depends
// only on the sequence of Offer calls, so a stream may be offered across
// many sessions (train, then ingest more) and the sample is identical to
// offering the concatenated stream once.
func (r *Reservoir) Offer(i int) bool {
	if r.seen < r.k {
		r.items = append(r.items, i)
		r.seen++
		if r.seen == r.k {
			r.scheduleNext()
		}
		return true
	}
	r.seen++
	if r.seen-1 == r.next {
		r.items[r.rng.Intn(r.k)] = i
		r.scheduleNext()
		return true
	}
	return false
}

// Advance offers the next count stream elements, assuming each element's
// value is its stream position (the row-index streams every caller in this
// package uses). Past the fill phase it jumps straight between Algorithm L
// admission points instead of offering every element, so appending n rows
// costs O(k log(n/k)), not O(n). It returns how many elements were
// admitted into the reservoir.
func (r *Reservoir) Advance(count int) (admitted int) {
	end := r.seen + count
	for r.seen < r.k && r.seen < end {
		r.Offer(r.seen)
		admitted++
	}
	for r.seen < end {
		if r.next >= end {
			// The next admission lies beyond this batch: skip to the end.
			r.seen = end
			return admitted
		}
		r.seen = r.next
		r.Offer(r.seen)
		admitted++
	}
	return admitted
}

func (r *Reservoir) scheduleNext() {
	// Algorithm L: skip a Geometric-like number of items.
	skip := int(math.Floor(math.Log(r.rng.Float64())/math.Log(1-r.w))) + 1
	r.next = r.seen + skip - 1
	r.w *= math.Exp(math.Log(r.rng.Float64()) / float64(r.k))
}

// Indices returns the sampled row indices (order is not meaningful).
func (r *Reservoir) Indices() []int { return r.items }

// Seen returns how many elements have been offered.
func (r *Reservoir) Seen() int { return r.seen }

// Uniform draws a uniform sample of up to k row indices from a table with n
// rows, via a single reservoir pass.
func Uniform(n, k int, seed int64) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	r := NewReservoir(k, seed)
	for i := 0; i < n; i++ {
		r.Offer(i)
	}
	return r.Indices()
}

// UniformTable materializes a uniform sample of tb with up to k rows.
func UniformTable(tb *table.Table, k int, seed int64) *table.Table {
	return tb.SelectRows(Uniform(tb.NumRows(), k, seed))
}

// GroupReservoirs maintains one reservoir per GROUP BY value so each group's
// sample is uniform within the group. Capacity is per group.
type GroupReservoirs struct {
	perGroup int
	seed     int64
	groups   map[int64]*Reservoir
	counts   map[int64]int
}

// NewGroupReservoirs creates per-group reservoirs with the given per-group
// capacity.
func NewGroupReservoirs(perGroup int, seed int64) *GroupReservoirs {
	return &GroupReservoirs{
		perGroup: perGroup,
		seed:     seed,
		groups:   make(map[int64]*Reservoir),
		counts:   make(map[int64]int),
	}
}

// Offer presents row i belonging to group g.
func (g *GroupReservoirs) Offer(gval int64, i int) {
	r, ok := g.groups[gval]
	if !ok {
		r = NewReservoir(g.perGroup, g.seed+gval)
		g.groups[gval] = r
	}
	r.Offer(i)
	g.counts[gval]++
}

// Groups returns the distinct group values observed.
func (g *GroupReservoirs) Groups() []int64 {
	out := make([]int64, 0, len(g.groups))
	for k := range g.groups {
		out = append(out, k)
	}
	return out
}

// Indices returns the sampled row indices for group g, or nil if unseen.
func (g *GroupReservoirs) Indices(gval int64) []int {
	r, ok := g.groups[gval]
	if !ok {
		return nil
	}
	return r.Indices()
}

// Count returns the total number of rows observed for group g — the
// per-group N used to scale per-group COUNT/SUM answers.
func (g *GroupReservoirs) Count(gval int64) int { return g.counts[gval] }

// ByGroup scans tb once and returns per-group uniform samples keyed by the
// values of groupCol (must be an Int64 column), along with per-group row
// counts.
func ByGroup(tb *table.Table, groupCol string, perGroup int, seed int64) (map[int64][]int, map[int64]int, error) {
	c := tb.Column(groupCol)
	if c == nil {
		return nil, nil, errors.New("sample: no group column " + groupCol)
	}
	if c.Type != table.Int64 {
		return nil, nil, errors.New("sample: group column must be INT64")
	}
	gr := NewGroupReservoirs(perGroup, seed)
	for i, v := range c.Ints {
		gr.Offer(v, i)
	}
	out := make(map[int64][]int, len(gr.groups))
	for _, gv := range gr.Groups() {
		out[gv] = gr.Indices(gv)
	}
	return out, gr.counts, nil
}

// ByNominal scans tb once and returns per-value uniform samples keyed by
// the values of a String column, along with per-value row counts. It backs
// the paper's nominal-categorical support (§2.3), which "mimics the support
// for GROUP BY attributes by maintaining regression and density estimator
// models for each nominal value".
func ByNominal(tb *table.Table, col string, perValue int, seed int64) (map[string][]int, map[string]int, error) {
	c := tb.Column(col)
	if c == nil {
		return nil, nil, errors.New("sample: no nominal column " + col)
	}
	if c.Type != table.String {
		return nil, nil, errors.New("sample: nominal column must be STRING")
	}
	rs := make(map[string]*Reservoir)
	counts := make(map[string]int)
	next := int64(0)
	for i, v := range c.Strings {
		r, ok := rs[v]
		if !ok {
			r = NewReservoir(perValue, seed+next)
			next++
			rs[v] = r
		}
		r.Offer(i)
		counts[v]++
	}
	out := make(map[string][]int, len(rs))
	for v, r := range rs {
		out[v] = r.Indices()
	}
	return out, counts, nil
}

// Stratified draws a stratified sample over the strata defined by the values
// of stratCol (Int64): each stratum gets capacity proportional to
// sqrt(stratum size) scaled so the total is ~k, with a floor of minPer per
// stratum — the BlinkDB-flavoured allocation that protects rare groups.
func Stratified(tb *table.Table, stratCol string, k, minPer int, seed int64) (map[int64][]int, error) {
	c := tb.Column(stratCol)
	if c == nil {
		return nil, errors.New("sample: no stratification column " + stratCol)
	}
	if c.Type != table.Int64 {
		return nil, errors.New("sample: stratification column must be INT64")
	}
	sizes := make(map[int64]int)
	for _, v := range c.Ints {
		sizes[v]++
	}
	var totalSqrt float64
	for _, n := range sizes {
		totalSqrt += math.Sqrt(float64(n))
	}
	caps := make(map[int64]int, len(sizes))
	for g, n := range sizes {
		cap := int(float64(k) * math.Sqrt(float64(n)) / totalSqrt)
		if cap < minPer {
			cap = minPer
		}
		if cap > n {
			cap = n
		}
		caps[g] = cap
	}
	gr := make(map[int64]*Reservoir, len(sizes))
	for g, cp := range caps {
		gr[g] = NewReservoir(cp, seed+g)
	}
	for i, v := range c.Ints {
		gr[v].Offer(i)
	}
	out := make(map[int64][]int, len(sizes))
	for g, r := range gr {
		out[g] = r.Indices()
	}
	return out, nil
}

// Hashed performs universe ("hashed") sampling on a join-key column: a row
// is kept iff hash(key) mod denom < num. Applying the same (num, denom,
// seed) to both join sides preserves join pairs, which is what makes
// sample-joins statistically sound (VerdictDB/QuickR §2.2).
func Hashed(tb *table.Table, keyCol string, num, denom uint64, seed maphash.Seed) ([]int, error) {
	c := tb.Column(keyCol)
	if c == nil {
		return nil, errors.New("sample: no key column " + keyCol)
	}
	if c.Type != table.Int64 {
		return nil, errors.New("sample: hashed sampling requires an INT64 key")
	}
	if denom == 0 || num > denom {
		return nil, errors.New("sample: invalid sampling ratio")
	}
	var out []int
	var buf [8]byte
	for i, v := range c.Ints {
		u := uint64(v)
		for b := 0; b < 8; b++ {
			buf[b] = byte(u >> (8 * b))
		}
		h := maphash.Bytes(seed, buf[:])
		if h%denom < num {
			out = append(out, i)
		}
	}
	return out, nil
}
