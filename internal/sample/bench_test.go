package sample

import "testing"

func BenchmarkReservoir1M(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := NewReservoir(10_000, int64(i))
		for j := 0; j < 1_000_000; j++ {
			r.Offer(j)
		}
	}
}

func BenchmarkGroupReservoirs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gr := NewGroupReservoirs(1_000, int64(i))
		for j := 0; j < 500_000; j++ {
			gr.Offer(int64(j%57), j)
		}
	}
}
