package sample

import (
	"hash/maphash"
	"math"
	"testing"
	"testing/quick"

	"dbest/internal/table"
)

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := 0; i < 5; i++ {
		r.Offer(i)
	}
	if len(r.Indices()) != 5 {
		t.Fatalf("got %d items, want 5", len(r.Indices()))
	}
	if r.Seen() != 5 {
		t.Fatalf("Seen = %d", r.Seen())
	}
}

func TestReservoirCapacity(t *testing.T) {
	r := NewReservoir(100, 2)
	for i := 0; i < 100000; i++ {
		r.Offer(i)
	}
	if len(r.Indices()) != 100 {
		t.Fatalf("got %d items, want 100", len(r.Indices()))
	}
	// All indices must be valid and distinct.
	seen := map[int]bool{}
	for _, i := range r.Indices() {
		if i < 0 || i >= 100000 || seen[i] {
			t.Fatalf("invalid or duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each element of a 1000-stream should land in a 100-reservoir with
	// probability 0.1; count inclusion of a probe element over many trials.
	hits := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(100, int64(trial))
		for i := 0; i < 1000; i++ {
			r.Offer(i)
		}
		for _, i := range r.Indices() {
			if i == 777 {
				hits++
				break
			}
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.1) > 0.025 {
		t.Fatalf("inclusion probability = %v, want ≈ 0.1", p)
	}
}

// Property: reservoir inclusion probability is k/n for every position,
// checked via the mean of sampled indices ≈ (n−1)/2 (uniform positions).
func TestReservoirMeanIndexProperty(t *testing.T) {
	f := func(seed int64) bool {
		const n, k = 5000, 200
		r := NewReservoir(k, seed)
		for i := 0; i < n; i++ {
			r.Offer(i)
		}
		s := 0.0
		for _, i := range r.Indices() {
			s += float64(i)
		}
		mean := s / k
		// Std of the mean is ~n/sqrt(12k) ≈ 102; accept 4σ.
		return math.Abs(mean-float64(n-1)/2) < 410
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformWholeTable(t *testing.T) {
	idx := Uniform(10, 20, 1)
	if len(idx) != 10 {
		t.Fatalf("k >= n should return all rows, got %d", len(idx))
	}
	for i, v := range idx {
		if v != i {
			t.Fatalf("identity expected: idx[%d] = %d", i, v)
		}
	}
}

func TestUniformTable(t *testing.T) {
	tb := table.New("t")
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	tb.AddFloatColumn("x", xs)
	s := UniformTable(tb, 50, 3)
	if s.NumRows() != 50 {
		t.Fatalf("sample rows = %d, want 50", s.NumRows())
	}
}

func TestGroupReservoirs(t *testing.T) {
	gr := NewGroupReservoirs(10, 1)
	for i := 0; i < 1000; i++ {
		gr.Offer(int64(i%3), i)
	}
	if len(gr.Groups()) != 3 {
		t.Fatalf("groups = %d, want 3", len(gr.Groups()))
	}
	for g := int64(0); g < 3; g++ {
		idx := gr.Indices(g)
		if len(idx) != 10 {
			t.Fatalf("group %d sample = %d rows, want 10", g, len(idx))
		}
		for _, i := range idx {
			if int64(i%3) != g {
				t.Fatalf("row %d does not belong to group %d", i, g)
			}
		}
		// Counts: group 0 gets ceil(1000/3)=334, groups 1 and 2 get 333.
		want := 333
		if g == 0 {
			want = 334
		}
		if gr.Count(g) != want {
			t.Fatalf("Count(%d) = %d, want %d", g, gr.Count(g), want)
		}
	}
	if gr.Indices(99) != nil {
		t.Fatal("unseen group should return nil")
	}
}

func TestByGroup(t *testing.T) {
	tb := table.New("t")
	gs := make([]int64, 300)
	xs := make([]float64, 300)
	for i := range gs {
		gs[i] = int64(i % 5)
		xs[i] = float64(i)
	}
	tb.AddIntColumn("g", gs)
	tb.AddFloatColumn("x", xs)
	samples, counts, err := ByGroup(tb, "g", 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("groups = %d", len(samples))
	}
	for g, idx := range samples {
		if len(idx) != 20 {
			t.Fatalf("group %d: %d rows", g, len(idx))
		}
		if counts[g] != 60 {
			t.Fatalf("group %d count = %d, want 60", g, counts[g])
		}
	}
	if _, _, err := ByGroup(tb, "missing", 10, 0); err == nil {
		t.Fatal("want error for missing column")
	}
	if _, _, err := ByGroup(tb, "x", 10, 0); err == nil {
		t.Fatal("want error for non-int column")
	}
}

func TestStratified(t *testing.T) {
	// Highly skewed strata: 10 000 rows of group 0, 100 of group 1, 10 of
	// group 2. Stratified sampling must keep at least minPer of each.
	tb := table.New("t")
	var gs []int64
	for i := 0; i < 10000; i++ {
		gs = append(gs, 0)
	}
	for i := 0; i < 100; i++ {
		gs = append(gs, 1)
	}
	for i := 0; i < 10; i++ {
		gs = append(gs, 2)
	}
	tb.AddIntColumn("g", gs)
	s, err := Stratified(tb, "g", 500, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s[2]) != 10 {
		t.Fatalf("tiny stratum should be kept whole, got %d", len(s[2]))
	}
	if len(s[1]) < 20 {
		t.Fatalf("rare stratum under-sampled: %d < 20", len(s[1]))
	}
	if len(s[0]) <= len(s[1]) {
		t.Fatal("large stratum should get more capacity than the rare one")
	}
	if _, err := Stratified(tb, "missing", 100, 1, 1); err == nil {
		t.Fatal("want error for missing column")
	}
}

func TestHashedPreservesJoinPairs(t *testing.T) {
	// Sampling both sides with the same seed and ratio must retain exactly
	// the rows whose key hashes into the admitted band on BOTH sides, so
	// every retained left key that exists on the right is joinable.
	left := table.New("l")
	right := table.New("r")
	var lk, rk []int64
	for i := 0; i < 5000; i++ {
		lk = append(lk, int64(i%400))
	}
	for i := 0; i < 400; i++ {
		rk = append(rk, int64(i))
	}
	left.AddIntColumn("k", lk)
	right.AddIntColumn("k", rk)
	seed := maphash.MakeSeed()
	li, err := Hashed(left, "k", 1, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := Hashed(right, "k", 1, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	admitted := map[int64]bool{}
	for _, i := range ri {
		admitted[rk[i]] = true
	}
	for _, i := range li {
		if !admitted[lk[i]] {
			t.Fatalf("left key %d retained but right copy dropped", lk[i])
		}
	}
	// Ratio sanity: ~25% of the 400 distinct keys.
	if len(ri) < 50 || len(ri) > 150 {
		t.Fatalf("right sample = %d keys, want ≈ 100", len(ri))
	}
}

func TestHashedErrors(t *testing.T) {
	tb := table.New("t")
	tb.AddFloatColumn("x", []float64{1})
	seed := maphash.MakeSeed()
	if _, err := Hashed(tb, "missing", 1, 2, seed); err == nil {
		t.Fatal("want error for missing column")
	}
	if _, err := Hashed(tb, "x", 1, 2, seed); err == nil {
		t.Fatal("want error for float key")
	}
	tb.AddIntColumn("k", []int64{1})
	if _, err := Hashed(tb, "k", 1, 0, seed); err == nil {
		t.Fatal("want error for zero denominator")
	}
	if _, err := Hashed(tb, "k", 3, 2, seed); err == nil {
		t.Fatal("want error for num > denom")
	}
}

// Property: per-group reservoirs only ever contain rows of their own group.
func TestGroupReservoirInvariantProperty(t *testing.T) {
	f := func(seed int64, nGroups uint8) bool {
		g := int64(nGroups%7) + 2
		gr := NewGroupReservoirs(5, seed)
		for i := 0; i < 500; i++ {
			gr.Offer(int64(i)%g, i)
		}
		for _, gv := range gr.Groups() {
			for _, i := range gr.Indices(gv) {
				if int64(i)%g != gv {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Resumed-stream determinism: a reservoir fed in two sessions (train, then
// ingest more) must hold exactly the sample of the concatenated stream
// offered once. This is the invariant the ingestion subsystem's maintained
// reservoirs rely on.
func TestReservoirResumedStreamDeterminism(t *testing.T) {
	const k, first, second = 100, 1000, 500
	once := NewReservoir(k, 42)
	for i := 0; i < first+second; i++ {
		once.Offer(i)
	}
	resumed := NewReservoir(k, 42)
	for i := 0; i < first; i++ { // session 1: train
		resumed.Offer(i)
	}
	for i := first; i < first+second; i++ { // session 2: ingest
		resumed.Offer(i)
	}
	if resumed.Seen() != once.Seen() {
		t.Fatalf("Seen = %d, want %d", resumed.Seen(), once.Seen())
	}
	a, b := once.Indices(), resumed.Indices()
	if len(a) != len(b) {
		t.Fatalf("got %d items resumed vs %d at once", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d: resumed %d != at-once %d", i, b[i], a[i])
		}
	}
}

// Advance must admit exactly the same sample as offering each row index
// individually — it is the fast-forward used on ingest, so any divergence
// would silently decouple maintained reservoirs from the training sampler.
func TestReservoirAdvanceMatchesOffer(t *testing.T) {
	for _, batches := range [][]int{{1500}, {50, 50, 1400}, {1000, 500}, {3, 7, 990, 500}} {
		total := 0
		adv := NewReservoir(100, 7)
		for _, n := range batches {
			adv.Advance(n)
			total += n
		}
		ref := NewReservoir(100, 7)
		for i := 0; i < total; i++ {
			ref.Offer(i)
		}
		if adv.Seen() != ref.Seen() {
			t.Fatalf("batches %v: Seen = %d, want %d", batches, adv.Seen(), ref.Seen())
		}
		a, b := ref.Indices(), adv.Indices()
		if len(a) != len(b) {
			t.Fatalf("batches %v: %d items, want %d", batches, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("batches %v: item %d: %d != %d", batches, i, b[i], a[i])
			}
		}
	}
}

// Advance must also equal Uniform, which is what training uses.
func TestReservoirAdvanceMatchesUniform(t *testing.T) {
	const n, k, seed = 5000, 200, 3
	want := Uniform(n, k, seed)
	r := NewReservoir(k, seed)
	r.Advance(n)
	got := r.Indices()
	if len(got) != len(want) {
		t.Fatalf("got %d indices, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

// Uniformity over the appended region: after appending as many rows as the
// base stream, roughly half the reservoir should come from the appended
// half. Averaged over seeds to keep the test deterministic and tight.
func TestReservoirAppendedRegionUniformity(t *testing.T) {
	const k, base, appended = 100, 2000, 2000
	inAppended := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(k, int64(trial))
		r.Advance(base)     // train
		r.Advance(appended) // ingest
		for _, i := range r.Indices() {
			if i >= base {
				inAppended++
			}
		}
	}
	frac := float64(inAppended) / float64(trials*k)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("appended-region fraction = %.3f, want ~0.5", frac)
	}
}

// Offer reports admissions: the total admitted must equal Advance's count,
// and every stream shorter than capacity admits everything.
func TestReservoirOfferReportsAdmission(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := 0; i < 10; i++ {
		if !r.Offer(i) {
			t.Fatalf("fill-phase Offer(%d) not admitted", i)
		}
	}
	admitted := 0
	for i := 10; i < 1000; i++ {
		if r.Offer(i) {
			admitted++
		}
	}
	r2 := NewReservoir(10, 1)
	got := r2.Advance(10)
	got += r2.Advance(990)
	if got != 10+admitted {
		t.Fatalf("Advance admitted %d, Offer admitted %d", got, 10+admitted)
	}
}
