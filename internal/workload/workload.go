// Package workload generates the randomized query batches of the paper's
// evaluation (§4.1: "200 queries are randomly generated for each of COUNT,
// SUM, AVG, PERCENTILE, VARIANCE and STDDEV", with "the query range varying
// from 0.1%, 0.5%, 1% to 10% of the range-attribute's domain") and the
// relative-error metrics and histograms of §4.2–§4.6.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dbest/internal/exact"
	"dbest/internal/table"
)

// Query is one generated range-aggregate query.
type Query struct {
	AF     exact.AggFunc
	XCol   string
	YCol   string
	Lb, Ub float64
	P      float64 // percentile point
}

// SQL renders the query as one engine SQL statement over table tbl. COUNT
// renders as COUNT(*); range bounds are emitted as literals, so each
// distinct generated range is a distinct normalized query shape — exactly
// what a plan-cache load harness needs to control its shape population.
func (q Query) SQL(tbl string) string {
	col := q.YCol
	if q.AF == exact.Count {
		col = "*"
	}
	return fmt.Sprintf("SELECT %s(%s) FROM %s WHERE %s BETWEEN %g AND %g",
		q.AF, col, tbl, q.XCol, q.Lb, q.Ub)
}

// Request converts the query to an exact.Request (for ground truth and
// sample-based baselines), with optional GROUP BY.
func (q Query) Request(group string) exact.Request {
	return exact.Request{
		AF: q.AF, Y: q.YCol, P: q.P, Group: group,
		Predicates: []exact.Range{{Column: q.XCol, Lb: q.Lb, Ub: q.Ub}},
	}
}

// Spec describes a batch of random queries over one column pair.
type Spec struct {
	XCol, YCol string
	AFs        []exact.AggFunc
	// RangeFrac is the query-range width as a fraction of the x domain
	// (the paper's "selectivity": 0.001, 0.01, 0.1, ...).
	RangeFrac float64
	PerAF     int // queries per aggregate function
	Seed      int64
	P         float64 // percentile point (default 0.5)
}

// Generate builds PerAF random range queries per AF over the x domain of tb.
func Generate(tb *table.Table, spec Spec) ([]Query, error) {
	xs, err := tb.Floats(spec.XCol)
	if err != nil {
		return nil, err
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("workload: table %s is empty", tb.Name)
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		return nil, fmt.Errorf("workload: column %s has a degenerate domain", spec.XCol)
	}
	if spec.RangeFrac <= 0 || spec.RangeFrac > 1 {
		return nil, fmt.Errorf("workload: RangeFrac %v outside (0, 1]", spec.RangeFrac)
	}
	if spec.PerAF <= 0 {
		spec.PerAF = 1
	}
	p := spec.P
	if p == 0 {
		p = 0.5
	}
	rng := rand.New(rand.NewSource(spec.Seed + 41))
	width := (hi - lo) * spec.RangeFrac
	var out []Query
	for _, af := range spec.AFs {
		for i := 0; i < spec.PerAF; i++ {
			start := lo + rng.Float64()*(hi-lo-width)
			ycol := spec.YCol
			switch af {
			case exact.Percentile, exact.Variance, exact.StdDev:
				// These are the paper's density-based AFs (§2.3.1):
				// PERCENTILE(x, p) a la HIVE, and VARIANCE/STDDEV over the
				// predicate column itself, needing only D(x).
				ycol = spec.XCol
			}
			out = append(out, Query{
				AF: af, XCol: spec.XCol, YCol: ycol,
				Lb: start, Ub: start + width, P: p,
			})
		}
	}
	return out, nil
}

// RelErrFloor is the denominator floor of RelErr: truths with magnitude
// below it are measured against the floor instead, so the metric degrades
// continuously into a bounded absolute error near zero rather than blowing
// up (or, as an earlier version did, silently switching to |got| — an
// absolute error masquerading as relative at want == 0 exactly).
const RelErrFloor = 1.0

// RelErr is the relative error metric of the paper's figures, in the
// denominator-floored form |got − want| / max(|want|, RelErrFloor). For
// |want| >= 1 — every aggregate the harnesses measure — it is the plain
// relative error; below that the floor keeps it finite and monotone in
// |got − want|, which the router's observed-error feedback requires.
func RelErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Max(math.Abs(want), RelErrFloor)
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// ErrStats summarizes a batch of per-query relative errors.
type ErrStats struct {
	N        int
	Mean     float64
	Median   float64
	Max      float64
	Min      float64
	Variance float64
}

// Summarize computes ErrStats over relative errors.
func Summarize(errs []float64) ErrStats {
	st := ErrStats{N: len(errs)}
	if len(errs) == 0 {
		st.Mean, st.Median, st.Max, st.Min = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return st
	}
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	st.Min = sorted[0]
	st.Max = sorted[len(sorted)-1]
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		st.Median = sorted[mid]
	} else {
		st.Median = 0.5 * (sorted[mid-1] + sorted[mid])
	}
	st.Mean = Mean(errs)
	for _, v := range errs {
		d := v - st.Mean
		st.Variance += d * d
	}
	st.Variance /= float64(len(errs))
	return st
}

// Histogram bins values into equal-width buckets over [0, max] — the error
// histograms of Figs. 17, 22 and 24. Values above max land in the last bin.
type Histogram struct {
	Max    float64
	Counts []int
}

// NewHistogram builds a histogram of the values with the given bin count.
func NewHistogram(values []float64, bins int, max float64) *Histogram {
	if bins <= 0 {
		bins = 10
	}
	if max <= 0 {
		for _, v := range values {
			if v > max {
				max = v
			}
		}
		if max == 0 {
			max = 1
		}
	}
	h := &Histogram{Max: max, Counts: make([]int, bins)}
	for _, v := range values {
		i := int(v / max * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		h.Counts[i]++
	}
	return h
}

// Bucket returns the [lo, hi) bounds of bin i.
func (h *Histogram) Bucket(i int) (lo, hi float64) {
	w := h.Max / float64(len(h.Counts))
	return float64(i) * w, float64(i+1) * w
}

// FractionBelow reports the fraction of observations in bins strictly below
// threshold (e.g. "more than 80% of the 57 groups have a relative error
// < 7%", §4.6).
func (h *Histogram) FractionBelow(threshold float64) float64 {
	total := 0
	below := 0
	w := h.Max / float64(len(h.Counts))
	for i, c := range h.Counts {
		total += c
		if float64(i+1)*w <= threshold {
			below += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(below) / float64(total)
}
