package workload

import (
	"math"
	"testing"
	"testing/quick"

	"dbest/internal/exact"
	"dbest/internal/table"
)

func tbl() *table.Table {
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i) / 10 // domain [0, 99.9]
		ys[i] = float64(i)
	}
	tb := table.New("t")
	tb.AddFloatColumn("x", xs)
	tb.AddFloatColumn("y", ys)
	return tb
}

func TestGenerate(t *testing.T) {
	qs, err := Generate(tbl(), Spec{
		XCol: "x", YCol: "y",
		AFs:       []exact.AggFunc{exact.Count, exact.Sum, exact.Avg},
		RangeFrac: 0.01, PerAF: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 60 {
		t.Fatalf("got %d queries, want 60", len(qs))
	}
	for _, q := range qs {
		if q.Ub <= q.Lb {
			t.Fatalf("degenerate range %+v", q)
		}
		w := q.Ub - q.Lb
		if math.Abs(w-0.999) > 1e-9 {
			t.Fatalf("width = %v, want 0.999 (1%% of domain)", w)
		}
		if q.Lb < 0 || q.Ub > 99.9+1e-9 {
			t.Fatalf("range %v..%v outside domain", q.Lb, q.Ub)
		}
	}
}

func TestGeneratePercentileUsesXColumn(t *testing.T) {
	qs, err := Generate(tbl(), Spec{
		XCol: "x", YCol: "y",
		AFs:       []exact.AggFunc{exact.Percentile},
		RangeFrac: 0.1, PerAF: 3, Seed: 2, P: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.YCol != "x" {
			t.Fatalf("percentile must target the x column, got %q", q.YCol)
		}
		if q.P != 0.9 {
			t.Fatalf("P = %v", q.P)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	tb := tbl()
	if _, err := Generate(tb, Spec{XCol: "nope", YCol: "y", AFs: []exact.AggFunc{exact.Count}, RangeFrac: 0.1}); err == nil {
		t.Fatal("want error for missing column")
	}
	if _, err := Generate(tb, Spec{XCol: "x", YCol: "y", AFs: []exact.AggFunc{exact.Count}, RangeFrac: 0}); err == nil {
		t.Fatal("want error for zero RangeFrac")
	}
	if _, err := Generate(tb, Spec{XCol: "x", YCol: "y", AFs: []exact.AggFunc{exact.Count}, RangeFrac: 2}); err == nil {
		t.Fatal("want error for RangeFrac > 1")
	}
	empty := table.New("e")
	empty.AddFloatColumn("x", nil)
	empty.AddFloatColumn("y", nil)
	if _, err := Generate(empty, Spec{XCol: "x", YCol: "y", AFs: []exact.AggFunc{exact.Count}, RangeFrac: 0.1}); err == nil {
		t.Fatal("want error for empty table")
	}
	degen := table.New("d")
	degen.AddFloatColumn("x", []float64{5, 5})
	degen.AddFloatColumn("y", []float64{1, 2})
	if _, err := Generate(degen, Spec{XCol: "x", YCol: "y", AFs: []exact.AggFunc{exact.Count}, RangeFrac: 0.1}); err == nil {
		t.Fatal("want error for degenerate domain")
	}
}

func TestQueryRequest(t *testing.T) {
	q := Query{AF: exact.Sum, XCol: "x", YCol: "y", Lb: 1, Ub: 2, P: 0.5}
	req := q.Request("g")
	if req.AF != exact.Sum || req.Y != "y" || req.Group != "g" {
		t.Fatalf("req = %+v", req)
	}
	if len(req.Predicates) != 1 || req.Predicates[0] != (exact.Range{Column: "x", Lb: 1, Ub: 2}) {
		t.Fatalf("predicates = %+v", req.Predicates)
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Fatalf("RelErr = %v", RelErr(11, 10))
	}
	if RelErr(0, 0) != 0 {
		t.Fatalf("RelErr(0,0) = %v", RelErr(0, 0))
	}
	if RelErr(3, 0) != 3 {
		t.Fatalf("RelErr(3,0) = %v", RelErr(3, 0))
	}
	if RelErr(-11, -10) != 0.1 {
		t.Fatalf("RelErr(-11,-10) = %v", RelErr(-11, -10))
	}
	// Sub-floor truths are measured against the floor, not their own
	// magnitude: RelErr(0.5, 0.1) is 0.4, not the 4.0 an unfloored form
	// would report.
	if got := RelErr(0.5, 0.1); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("RelErr(0.5,0.1) = %v, want 0.4", got)
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{0.1, 0.2, 0.3, 0.4})
	if st.N != 4 || math.Abs(st.Mean-0.25) > 1e-12 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.Median-0.25) > 1e-12 || st.Min != 0.1 || st.Max != 0.4 {
		t.Fatalf("stats = %+v", st)
	}
	odd := Summarize([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Fatalf("median = %v", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.02, 0.05, 0.11, 0.5}, 10, 0.2)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("total = %d", total)
	}
	// The 0.5 value overflows into the last bin.
	if h.Counts[9] != 1 {
		t.Fatalf("overflow bin = %d", h.Counts[9])
	}
	lo, hi := h.Bucket(0)
	if lo != 0 || math.Abs(hi-0.02) > 1e-12 {
		t.Fatalf("bucket 0 = [%v, %v)", lo, hi)
	}
	// 4 of 5 observations are below 0.2 (bins 0..9 boundary math).
	if f := h.FractionBelow(0.12); math.Abs(f-0.8) > 1e-9 {
		t.Fatalf("FractionBelow(0.12) = %v", f)
	}
}

func TestHistogramDefaults(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3}, 0, 0)
	if len(h.Counts) != 10 || h.Max != 3 {
		t.Fatalf("h = %+v", h)
	}
	h2 := NewHistogram(nil, 5, 0)
	if h2.Max != 1 {
		t.Fatalf("empty-input max = %v", h2.Max)
	}
	if h2.FractionBelow(0.5) != 0 {
		t.Fatal("empty histogram FractionBelow should be 0")
	}
}

// Property: every generated range lies within the column domain and has the
// requested width.
func TestGenerateRangesProperty(t *testing.T) {
	tb := tbl()
	f := func(seed int64, fracPct uint8) bool {
		frac := (float64(fracPct%99) + 1) / 100
		qs, err := Generate(tb, Spec{
			XCol: "x", YCol: "y", AFs: []exact.AggFunc{exact.Avg},
			RangeFrac: frac, PerAF: 10, Seed: seed,
		})
		if err != nil {
			return false
		}
		for _, q := range qs {
			if q.Lb < -1e-9 || q.Ub > 99.9+1e-9 {
				return false
			}
			if math.Abs((q.Ub-q.Lb)-99.9*frac) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
